// Checkpoint plane: versioned snapshot/restore for whole experiments.
//
// The engine's event queue holds live closures, so a checkpoint cannot be a
// structural dump of the heap. Instead a checkpoint is a *verified replay
// recipe* (internal/checkpoint): the complete Config and seed rebuild the
// run, replay carries it to the captured instant, and the stored state
// sections act as an oracle — any divergence from the re-captured state is a
// typed StateMismatchError, never a silently wrong resume. The price is that
// a v1 restore costs one replay of the prefix; the payoff is that restore
// correctness is checked on every single resume.
//
// Byte-identical resume contract: checkpoint instants are folded into the
// scheduling-slice boundary sequence, which is then a pure function of the
// config. A restored run keeps Config.Checkpoint, so it walks the identical
// boundary sequence, re-writes byte-identical checkpoint files over the
// originals, and ends with a byte-identical Result — the property the CI
// soak-smoke job asserts with cmp(1).
package hermes

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"github.com/hermes-repro/hermes/internal/chaos"
	"github.com/hermes-repro/hermes/internal/checkpoint"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/statusd"
	"github.com/hermes-repro/hermes/internal/trace"
	"github.com/hermes-repro/hermes/internal/transport"
)

// CheckpointConfig arms the checkpoint plane for a run. A Dir with neither
// IntervalNs nor AtNs is the interrupt-only mode: nothing is written unless
// the run context is cancelled.
type CheckpointConfig struct {
	// Dir receives the checkpoint files (created if missing). The directory
	// path is part of the config fingerprint, so reference and resumed runs
	// must name it identically for byte-identical reports.
	Dir string
	// IntervalNs writes a checkpoint every IntervalNs of virtual time
	// (0 = no periodic checkpoints).
	IntervalNs int64 `json:",omitempty"`
	// AtNs writes checkpoints at these explicit virtual instants, each > 0.
	// Composes with IntervalNs.
	AtNs []int64 `json:",omitempty"`
}

// CheckpointInfo describes one checkpoint file a run wrote.
type CheckpointInfo struct {
	SimTimeNs int64  `json:"sim_time_ns"`
	Path      string `json:"path"`
	Bytes     int    `json:"bytes"`
	StateSHA  string `json:"state_sha"`
}

// InterruptedError reports a run stopped through its context after writing a
// final interrupt checkpoint; resume from Checkpoint.Path (or the run's
// checkpoint directory) with Restore. Unwrap yields the context error, so
// errors.Is(err, context.Canceled) still classifies the cause.
type InterruptedError struct {
	Checkpoint CheckpointInfo
	Err        error
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("hermes: run interrupted at t=%dns (checkpoint %s): %v",
		e.Checkpoint.SimTimeNs, e.Checkpoint.Path, e.Err)
}

func (e *InterruptedError) Unwrap() error { return e.Err }

// defaultRunCtx holds the SetDefaultRunContext process default, mirroring
// the SetDefaultStatus/SetDefaultWorkers precedent.
var defaultRunCtx atomic.Value // ctxBox

type ctxBox struct{ ctx context.Context }

// SetDefaultRunContext installs a process-wide context every subsequent Run
// observes at its scheduling-slice boundaries: when the context is
// cancelled, runs stop with the context's error — or, for checkpointed
// configs, write an interrupt checkpoint first and return an
// *InterruptedError. This is how the CLIs turn SIGINT/SIGTERM into a
// resumable stop. Pass nil to uninstall.
func SetDefaultRunContext(ctx context.Context) {
	defaultRunCtx.Store(ctxBox{ctx: ctx})
}

func defaultRunContext() context.Context {
	if v, ok := defaultRunCtx.Load().(ctxBox); ok {
		return v.ctx
	}
	return nil
}

// ckptPlan is a run's live checkpoint schedule: the canonical config bytes
// and fingerprint, the merged interval/explicit-instant cursor, and the
// record of what was written.
type ckptPlan struct {
	cfg     *CheckpointConfig
	cfgJSON json.RawMessage
	cfgSHA  string
	at      []int64 // sorted, deduped explicit instants
	atIdx   int
	nextIv  int64 // next interval instant, 0 = no interval
	infos   []CheckpointInfo
}

func newCkptPlan(cfg *Config) (*ckptPlan, error) {
	cc := cfg.Checkpoint
	if cc.Dir == "" {
		return nil, fmt.Errorf("hermes: Checkpoint.Dir is required")
	}
	if cc.IntervalNs < 0 {
		return nil, fmt.Errorf("hermes: Checkpoint.IntervalNs %d must be >= 0", cc.IntervalNs)
	}
	at := append([]int64(nil), cc.AtNs...)
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	dedup := at[:0]
	for _, t := range at {
		if t <= 0 {
			return nil, fmt.Errorf("hermes: Checkpoint.AtNs instants must be positive (got %d)", t)
		}
		if len(dedup) == 0 || dedup[len(dedup)-1] != t {
			dedup = append(dedup, t)
		}
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("hermes: checkpoint config: %w", err)
	}
	if err := os.MkdirAll(cc.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("hermes: checkpoint dir: %w", err)
	}
	p := &ckptPlan{cfg: cc, cfgJSON: b, cfgSHA: checkpoint.SHA(b), at: dedup}
	if cc.IntervalNs > 0 {
		p.nextIv = cc.IntervalNs
	}
	return p, nil
}

// nextDue returns the next scheduled checkpoint instant, merging the
// explicit instants with the interval recurrence.
func (p *ckptPlan) nextDue() (int64, bool) {
	due := int64(0)
	if p.atIdx < len(p.at) {
		due = p.at[p.atIdx]
	}
	if p.nextIv > 0 && (due == 0 || p.nextIv < due) {
		due = p.nextIv
	}
	return due, due > 0
}

// advance retires the instant just written; a coinciding explicit instant
// and interval tick retire together (one file, not two).
func (p *ckptPlan) advance(due int64) {
	if p.atIdx < len(p.at) && p.at[p.atIdx] == due {
		p.atIdx++
	}
	if p.nextIv > 0 && p.nextIv == due {
		p.nextIv += p.cfg.IntervalNs
	}
}

// replayPlan carries a restored checkpoint through runWith: replay to `to`,
// verify the re-captured state against snap, then (for Fork) mutate the run.
type replayPlan struct {
	to   sim.Time
	snap *checkpoint.Snapshot
	fork *ForkOptions
	done bool
}

// Snapshot section bodies. Every field is event-driven state — invariant to
// how the run between events is sliced into scheduling horizons — which is
// what makes loop-top capture and replay verification consistent. The loop's
// own boundary bookkeeping (lastArrival) is deliberately excluded.
type engineSnap struct {
	NowNs         int64  `json:"now_ns"`
	Seq           uint64 `json:"seq"`
	Fired         uint64 `json:"fired"`
	PendingByKind []int  `json:"pending_by_kind"`
	Cancelled     int    `json:"cancelled"`
}

type rngSnap struct {
	Draws uint64 `json:"draws"`
}

type workloadSnap struct {
	Started        int   `json:"started"`
	FlowsDone      int64 `json:"flows_done"`
	DeliveredBytes int64 `json:"delivered_bytes"`
}

// captureSnapshot serializes every observable state section at the current
// instant. Read-only: capturing must never perturb the run it captures.
func (r *run) captureSnapshot() (*checkpoint.Snapshot, error) {
	var snapErr error
	put := func(dst *json.RawMessage, v any) {
		if snapErr != nil {
			return
		}
		b, err := json.Marshal(v)
		if err != nil {
			snapErr = err
			return
		}
		*dst = b
	}
	s := &checkpoint.Snapshot{}
	byKind, cancelled := r.eng.PendingCensus()
	put(&s.Engine, engineSnap{
		NowNs: int64(r.eng.Now()), Seq: r.eng.Seq(), Fired: r.eng.Fired(),
		PendingByKind: byKind[:], Cancelled: cancelled,
	})
	put(&s.RNG, rngSnap{Draws: r.rng.Draws()})
	put(&s.Net, r.nw.Dump())
	put(&s.Transport, r.tr.Dump())
	if r.w.dumpState != nil {
		if ds := r.w.dumpState(); ds != nil {
			put(&s.Scheme, ds)
		}
	}
	put(&s.Workload, workloadSnap{
		Started: r.gen.Started(), FlowsDone: r.flowsDone, DeliveredBytes: r.deliveredBytes,
	})
	if r.runner != nil {
		put(&s.Chaos, r.runner.Dump())
	}
	if snapErr != nil {
		return nil, fmt.Errorf("hermes: checkpoint capture: %w", snapErr)
	}
	return s, nil
}

// writeCheckpoint captures the current state and writes one checkpoint file.
// kind is "scheduled" or "interrupt" (status-plane annotation only; the file
// bytes are identical either way).
func (r *run) writeCheckpoint(kind string) (CheckpointInfo, error) {
	snap, err := r.captureSnapshot()
	if err != nil {
		return CheckpointInfo{}, err
	}
	state, err := checkpoint.EncodeState(snap)
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("hermes: %w", err)
	}
	f := &checkpoint.File{
		Seed:      r.cfg.Seed,
		SimTimeNs: int64(r.eng.Now()),
		Config:    r.ckpt.cfgJSON,
		State:     state,
	}
	path := filepath.Join(r.ckpt.cfg.Dir, checkpoint.Filename(r.ckpt.cfgSHA, f.SimTimeNs))
	n, err := checkpoint.WriteFile(path, f)
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("hermes: %w", err)
	}
	info := CheckpointInfo{SimTimeNs: f.SimTimeNs, Path: path, Bytes: n, StateSHA: f.StateSHA}
	r.st.RecordCheckpoint(statusd.CheckpointEvent{
		Run: r.runLabel, Kind: kind, SimTimeNs: f.SimTimeNs, Path: path, Bytes: n,
	})
	return info, nil
}

// fireDueCheckpoints writes every scheduled checkpoint whose instant has
// been reached. The loop clamps horizons to nextDue, so the engine stops
// exactly on each due instant.
func (r *run) fireDueCheckpoints() error {
	if r.ckpt == nil {
		return nil
	}
	for {
		due, ok := r.ckpt.nextDue()
		if !ok || sim.Time(due) > r.eng.Now() {
			return nil
		}
		info, err := r.writeCheckpoint("scheduled")
		if err != nil {
			return err
		}
		r.ckpt.advance(due)
		r.ckpt.infos = append(r.ckpt.infos, info)
	}
}

// interrupted turns a context cancellation into a resumable stop: for
// checkpointed runs it writes a final interrupt checkpoint and wraps the
// cause in an *InterruptedError; otherwise the cause passes through.
func (r *run) interrupted(cause error) error {
	if r.ckpt == nil {
		return cause
	}
	info, err := r.writeCheckpoint("interrupt")
	if err != nil {
		return errors.Join(cause, err)
	}
	return &InterruptedError{Checkpoint: info, Err: cause}
}

// verifyReplay re-captures the state at the checkpoint instant and diffs it
// against the stored oracle; only a clean diff lets the run continue (and,
// for Fork, mutates the run). A divergence means the determinism contract
// broke — refusing here is the whole point of checkpoint-by-verified-replay.
func (r *run) verifyReplay() error {
	got, err := r.captureSnapshot()
	if err != nil {
		return err
	}
	if diffs := checkpoint.Diff(r.replay.snap, got); len(diffs) > 0 {
		return &checkpoint.StateMismatchError{SimTimeNs: int64(r.eng.Now()), Sections: diffs}
	}
	r.replay.done = true
	if f := r.replay.fork; f != nil {
		if err := r.applyFork(f); err != nil {
			return err
		}
	}
	return nil
}

// applyFork mutates the verified run at the fork instant: swap the scheme
// on every endpoint and/or graft a scenario onto the timeline.
func (r *run) applyFork(f *ForkOptions) error {
	if f.Scheme != "" && f.Scheme != r.cfg.Scheme {
		newCfg := r.cfg
		newCfg.Scheme = f.Scheme
		w2, err := buildScheme(r.nw, r.rng, newCfg, r.rd, r.flight)
		if err != nil {
			return err
		}
		if tracer := r.tracer; tracer != nil {
			inner := w2.balancerFor
			eng := r.eng
			w2.balancerFor = func(h *net.Host) transport.Balancer {
				return trace.Wrap(inner(h), tracer, eng)
			}
		}
		for _, ep := range r.tr.Endpoints {
			ep.SetBalancer(w2.balancerFor(ep.Host()))
		}
		// Retire the old scheme's periodic machinery (probe loops, monitor
		// sweeps) before the new scheme's spins up.
		if r.w.stop != nil {
			r.w.stop()
		}
		w2.afterTransport(r.nw, r.rng)
		r.w = w2
		r.cfg.Scheme = f.Scheme
		r.installStartHooks()
	} else if r.flightLate && r.w.attachFlight != nil {
		// Scenario-only fork: the scheme was built flight-blind during
		// replay (see setup); hook its series up before the recorder starts.
		r.w.attachFlight(r.flight)
	}
	if sc := r.cfg.forkScenario; sc != nil {
		cs, err := sc.toChaos(r.cfg.Topology)
		if err != nil {
			return err
		}
		r.runner = chaos.NewRunner(chaos.Env{Net: r.nw, Rng: r.rng}, cs)
		r.attachRunnerAudit(r.runner)
		if err := r.runner.Install(r.eng); err != nil {
			return fmt.Errorf("hermes: fork scenario %q: %w", sc.Name, err)
		}
		r.scenario = sc
		if r.flightLate {
			r.flight.Start()
			r.flightLate = false
		}
	}
	return nil
}

// forkableScheme gates scheme swaps: switch-resident schemes keep state in
// the fabric that the fork cannot unwire or rebuild mid-run.
func forkableScheme(s Scheme) error {
	switch s {
	case SchemeLetFlow, SchemeDRILL, SchemeCONGA, SchemeHULA:
		return fmt.Errorf("hermes: scheme %q keeps in-switch state and cannot be swapped mid-run; fork requires host-steered schemes on both sides", s)
	}
	for _, k := range Schemes() {
		if k == s {
			return nil
		}
	}
	return fmt.Errorf("hermes: unknown scheme %q", s)
}

func isScenarioSugar(k FailureKind) bool {
	return k == FailureFlap || k == FailureSpineDown || k == FailureLeafDown
}

// loadCheckpointFile reads a checkpoint from a file path, or from the most
// advanced valid checkpoint in a directory.
func loadCheckpointFile(path string) (*checkpoint.File, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("hermes: %w", err)
	}
	if fi.IsDir() {
		p, err := checkpoint.Latest(path)
		if err != nil {
			return nil, fmt.Errorf("hermes: %w", err)
		}
		path = p
	}
	return checkpoint.ReadFile(path)
}

// decodeForReplay turns a verified envelope into the Config and replayPlan
// runWith needs. The config is round-tripped through this build's schema and
// re-fingerprinted: if the schema drifted since the file was written, the
// bytes change and the restore refuses loudly instead of silently replaying
// a different experiment.
func decodeForReplay(f *checkpoint.File) (Config, *replayPlan, error) {
	var cfg Config
	if err := json.Unmarshal(f.Config, &cfg); err != nil {
		return Config{}, nil, &checkpoint.CorruptError{Reason: "config section", Err: err}
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return Config{}, nil, fmt.Errorf("hermes: checkpoint config: %w", err)
	}
	if got := checkpoint.SHA(b); got != f.ConfigSHA {
		return Config{}, nil, &checkpoint.ConfigMismatchError{Got: got, Want: f.ConfigSHA}
	}
	if f.Seed != cfg.Seed {
		return Config{}, nil, &checkpoint.CorruptError{Reason: fmt.Sprintf(
			"envelope seed %d disagrees with config seed %d", f.Seed, cfg.Seed)}
	}
	snap, err := f.DecodeState()
	if err != nil {
		return Config{}, nil, err
	}
	return cfg, &replayPlan{to: sim.Time(f.SimTimeNs), snap: snap}, nil
}

// Restore resumes the run captured in a checkpoint. path may be a checkpoint
// file or a directory (the most advanced valid checkpoint wins). The run is
// rebuilt from the embedded config, replayed to the captured instant,
// verified section-by-section against the stored state, and then continued
// to completion; the returned Result is byte-identical to the uninterrupted
// run's. Checkpointing stays armed, so the resumed run re-writes the
// schedule's files (byte-identical collisions with the originals).
func Restore(path string) (*Result, error) {
	f, err := loadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	cfg, rp, err := decodeForReplay(f)
	if err != nil {
		return nil, err
	}
	return runWith(cfg, rp)
}

// ForkOptions selects what a Fork changes at the checkpoint instant.
type ForkOptions struct {
	// Scheme, when non-empty and different from the captured run's, swaps
	// the load balancing scheme at the fork instant: every endpoint gets the
	// new balancer, the old scheme's periodic machinery stops, the new
	// scheme's starts. Both schemes must be host-steered (no
	// letflow/drill/conga/hula).
	Scheme Scheme
	// Scenario, when non-nil, grafts a failure timeline onto the forked run.
	// The captured run must not already carry one, and every event must
	// onset strictly after the checkpoint instant.
	Scenario *Scenario
}

// Fork replays a checkpoint like Restore, then runs a what-if: the same
// prefix of history, a different future. Use it to ask "what would REPS have
// done from here?" or to drop a failure onto a healthy run's timeline one
// instant before it mattered. The fork is a new experiment: its Result is
// not comparable byte-for-byte to the parent's, and it writes no checkpoints
// of its own.
func Fork(path string, opts ForkOptions) (*Result, error) {
	f, err := loadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	cfg, rp, err := decodeForReplay(f)
	if err != nil {
		return nil, err
	}
	if opts.Scheme == "" && opts.Scenario == nil {
		return nil, fmt.Errorf("hermes: Fork needs a new Scheme or a Scenario; use Restore to resume unchanged")
	}
	if opts.Scheme != "" && opts.Scheme != cfg.Scheme {
		if err := forkableScheme(cfg.Scheme); err != nil {
			return nil, err
		}
		if err := forkableScheme(opts.Scheme); err != nil {
			return nil, err
		}
	}
	if opts.Scenario != nil {
		if cfg.Scenario != nil || isScenarioSugar(cfg.Failure.Kind) {
			return nil, fmt.Errorf("hermes: Fork cannot graft a scenario onto a run that already has one")
		}
		for i := range opts.Scenario.Events {
			if opts.Scenario.Events[i].AtNs <= f.SimTimeNs {
				return nil, fmt.Errorf("hermes: fork scenario event %d onsets at t=%dns, not strictly after the checkpoint instant t=%dns",
					i, opts.Scenario.Events[i].AtNs, f.SimTimeNs)
			}
		}
		cfg.forkScenario = opts.Scenario
	}
	cfg.Checkpoint = nil
	rp.fork = &opts
	return runWith(cfg, rp)
}
