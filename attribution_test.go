package hermes

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/trace"
)

// attributionConfig is the acceptance scenario: the paper's testbed topology
// with a spine-0 blackhole between the racks. ECMP flows hashed onto the
// dead paths stall on RTO backoff; Hermes detects the blackhole and reroutes.
func attributionConfig(scheme Scheme) Config {
	return Config{
		Topology:       TestbedTopology(),
		Scheme:         scheme,
		Workload:       "web-search",
		Load:           0.5,
		Flows:          300,
		Seed:           3,
		Failure:        FailureSpec{Kind: FailureBlackhole, Spine: 0},
		Trace:          true,
		Telemetry:      scheme == SchemeHermes,
		DrainTimeoutNs: 2e9,
	}
}

// TestAttributionBlackholeAcceptance is the PR's acceptance criterion: under
// a blackhole, FCT attribution must show the RTO-stall share of the p99 tail
// at least 5x higher for ECMP than for Hermes, and the Perfetto export must
// be valid JSON with slices for at least 100 flows.
func TestAttributionBlackholeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed runs")
	}
	ecmpRes, err := Run(attributionConfig(SchemeECMP))
	if err != nil {
		t.Fatal(err)
	}
	hermesRes, err := Run(attributionConfig(SchemeHermes))
	if err != nil {
		t.Fatal(err)
	}

	ecmpTail := trace.TailAttribution(ecmpRes.Trace.Attribution(), 0.99)
	hermesTail := trace.TailAttribution(hermesRes.Trace.Attribution(), 0.99)
	t.Logf("p99-tail stall share: ecmp %.3f vs hermes %.3f", ecmpTail.StallShare, hermesTail.StallShare)
	if ecmpTail.StallShare <= 0.3 {
		t.Fatalf("ECMP tail stall share %.3f: blackhole not visible in attribution", ecmpTail.StallShare)
	}
	if ecmpTail.StallShare < 5*hermesTail.StallShare {
		t.Fatalf("stall share ecmp %.3f vs hermes %.3f: want >= 5x separation",
			ecmpTail.StallShare, hermesTail.StallShare)
	}

	// Hermes spans must carry audit reasons and the run must record verdicts.
	reasons := 0
	for _, sp := range hermesRes.Trace.Spans {
		if sp.Reason != "" {
			reasons++
		}
	}
	if reasons == 0 {
		t.Fatal("no span carries an audit reason: audit correlation broken")
	}
	if len(hermesRes.Trace.Verdicts) == 0 {
		t.Fatal("no failure verdicts lifted from the audit log")
	}
	hasFailureReason := false
	for _, sp := range hermesRes.Trace.Spans {
		if sp.Reason == telemetry.ReasonFailure || sp.Reason == telemetry.ReasonTimeout {
			hasFailureReason = true
			break
		}
	}
	if !hasFailureReason {
		t.Fatal("no span entered its path because of a failure/timeout despite the blackhole")
	}

	// The Perfetto export must be valid JSON with slices for >= 100 flows.
	var buf bytes.Buffer
	if err := ecmpRes.Trace.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Tid uint64  `json:"tid"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	sliceFlows := map[uint64]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			sliceFlows[e.Tid] = true
		}
	}
	if len(sliceFlows) < 100 {
		t.Fatalf("perfetto export has slices for %d flows, want >= 100", len(sliceFlows))
	}

	// The per-flow fabric decomposition rode along.
	if len(ecmpRes.Trace.FlowHops) == 0 {
		t.Fatal("trace carries no per-flow hop decomposition")
	}
}

// TestTraceDeterminismParallel: the same seed must produce byte-identical
// JSONL and Perfetto exports whether the run executes alone or inside a
// RunParallel worker pool.
func TestTraceDeterminismParallel(t *testing.T) {
	cfg := attributionConfig(SchemeHermes)
	cfg.Flows = 120

	seqRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunParallelOpts(context.Background(), cfg, []int64{cfg.Seed, cfg.Seed + 1},
		ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	export := func(rec *trace.Recorder) (string, string) {
		var j, p bytes.Buffer
		if err := rec.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := rec.WritePerfetto(&p); err != nil {
			t.Fatal(err)
		}
		return j.String(), p.String()
	}
	seqJSONL, seqPerfetto := export(seqRes.Trace)
	parJSONL, parPerfetto := export(parRes[0].Trace)
	if seqJSONL != parJSONL {
		t.Fatal("same seed produced different span JSONL under RunParallel")
	}
	if seqPerfetto != parPerfetto {
		t.Fatal("same seed produced different Perfetto output under RunParallel")
	}
	if otherJSONL, _ := export(parRes[1].Trace); otherJSONL == seqJSONL {
		t.Fatal("different seeds produced identical traces (seed not applied?)")
	}

	// A shared writer must still be rejected up front.
	bad := cfg
	bad.PerfettoWriter = &bytes.Buffer{}
	if _, err := RunParallel(bad, []int64{1, 2}); err == nil {
		t.Fatal("RunParallel accepted a shared PerfettoWriter")
	}
}

// TestAuditOverflowEndToEnd: a tiny audit cap on a real blackhole run must
// surface as a Dropped count on the live log, a dropped total in the report
// summary, and a truncation marker in the JSONL export.
func TestAuditOverflowEndToEnd(t *testing.T) {
	cfg := attributionConfig(SchemeHermes)
	cfg.Flows = 60
	cfg.Trace = false
	cfg.AuditMaxEntries = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := res.Telemetry.Audit
	if log.Len() != 5 || log.Dropped() == 0 {
		t.Fatalf("len=%d dropped=%d: cap not enforced", log.Len(), log.Dropped())
	}
	rep, err := BuildReport(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit.Entries != 5 || rep.Audit.Dropped != log.Dropped() {
		t.Fatalf("report audit summary = %+v", rep.Audit)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"truncated"`) {
		t.Fatal("JSONL export lacks the truncation marker")
	}
}
