package hermes

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// wiring bundles the scheme-specific assembly steps of Run.
type wiring struct {
	balancerFor    func(h *net.Host) transport.Balancer
	afterTransport func(nw *net.Network, rng *sim.RNG)
	fillTelemetry  func(res *Result, eng *sim.Engine)
}

func noAfter(*net.Network, *sim.RNG)   {}
func noTelemetry(*Result, *sim.Engine) {}

func buildScheme(nw *net.Network, rng *sim.RNG, cfg Config) (*wiring, error) {
	flowlet := sim.Time(cfg.FlowletTimeoutNs)
	if flowlet <= 0 {
		flowlet = 150 * sim.Microsecond
	}
	w := &wiring{afterTransport: noAfter, fillTelemetry: noTelemetry}

	switch cfg.Scheme {
	case SchemeECMP:
		e := &lb.ECMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemeWCMP:
		e := &lb.WCMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemePresto:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
		}

	case SchemeDRB:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Spray{Net: nw, SchemeName: "DRB"}
		}

	case SchemeCLOVE:
		params := lb.DefaultCloveParams()
		params.FlowletTimeout = flowlet
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Clove{Net: nw, Rng: rng, Params: params}
		}

	case SchemeFlowBender:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return lb.DefaultFlowBender(nw)
		}

	case SchemeLetFlow:
		for l := range nw.Leaves {
			lb.NewLetFlow(nw, l, rng, flowlet)
		}
		w.balancerFor = passThrough("LetFlow")

	case SchemeDRILL:
		for l := range nw.Leaves {
			lb.NewDRILL(nw, l, rng)
		}
		w.balancerFor = passThrough("DRILL")

	case SchemeEdgeFlowlet:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.EdgeFlowlet{Net: nw, Rng: rng, Timeout: flowlet}
		}

	case SchemeHULA:
		p := lb.DefaultHulaParams()
		p.FlowletTimeout = flowlet
		lb.InstallHula(nw, rng, p)
		w.balancerFor = passThrough("HULA")

	case SchemeCONGA:
		p := lb.DefaultCongaParams()
		p.FlowletTimeout = flowlet
		lb.InstallConga(nw, rng, p)
		w.balancerFor = passThrough("CONGA")

	case SchemeMPTCP:
		// MPTCP subflows are hashed like ECMP flows and never rerouted; the
		// multipath behaviour lives in the transport (StartMPTCP).
		e := &lb.ECMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemeHermes:
		return buildHermes(nw, rng, cfg)

	default:
		return nil, fmt.Errorf("hermes: unknown scheme %q", cfg.Scheme)
	}
	return w, nil
}

func passThrough(name string) func(*net.Host) transport.Balancer {
	return func(*net.Host) transport.Balancer { return &lb.PassThrough{Scheme: name} }
}

func buildHermes(nw *net.Network, rng *sim.RNG, cfg Config) (*wiring, error) {
	var params core.Params
	if cfg.HermesParams != nil {
		params = *cfg.HermesParams
	} else {
		params = core.DefaultParams(nw)
		if cfg.Protocol == "reno" || cfg.Protocol == "timely" {
			// §5.4: without DCTCP marking Hermes senses by RTT only and
			// relaxes the RTT thresholds by 1.5x (burstier, larger RTTs).
			params.UseECN = false
			params.TRTTHigh += params.TRTTHigh / 2
			params.DeltaRTT += params.DeltaRTT / 2
		}
	}

	monitors := make([]*core.Monitor, nw.Cfg.Leaves)
	for l := range monitors {
		monitors[l] = core.NewMonitor(nw, l, params)
	}
	instances := map[int]*core.Hermes{}

	w := &wiring{}
	w.balancerFor = func(h *net.Host) transport.Balancer {
		inst := core.New(monitors[h.Leaf], rng, h.ID)
		instances[h.ID] = inst
		return inst
	}

	var probers []*core.Prober
	w.afterTransport = func(nw *net.Network, rng *sim.RNG) {
		if params.ProbeInterval <= 0 {
			return
		}
		core.InstallProbeResponders(nw)
		// One probe agent per rack: the first host under each leaf.
		agents := make([]*net.Host, nw.Cfg.Leaves)
		for l := range agents {
			agents[l] = nw.Hosts[l*nw.Cfg.HostsPerLeaf]
		}
		for l := range agents {
			probers = append(probers, core.NewProber(monitors[l], rng, agents))
		}
	}

	w.fillTelemetry = func(res *Result, eng *sim.Engine) {
		for _, inst := range instances {
			res.Reroutes += inst.Reroutes
			res.TimeoutReroutes += inst.TimeoutReroutes
			res.FailureReroutes += inst.FailureReroutes
		}
		for _, p := range probers {
			res.ProbesSent += p.ProbesSent
			res.ProbeBytes += p.ProbeBytes
		}
		if res.SimDuration > 0 && nw.Cfg.HostRateBps > 0 && len(probers) > 0 {
			// Overhead of one agent's probe traffic over its access link.
			perAgent := float64(res.ProbeBytes) / float64(len(probers))
			bps := perAgent * 8 * float64(sim.Second) / float64(res.SimDuration)
			res.ProbeOverhead = bps / float64(nw.Cfg.HostRateBps)
		}
	}
	return w, nil
}
