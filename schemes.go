package hermes

import (
	"fmt"
	"sort"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/timeseries"
	"github.com/hermes-repro/hermes/internal/transport"
)

// wiring bundles the scheme-specific assembly steps of Run.
type wiring struct {
	balancerFor    func(h *net.Host) transport.Balancer
	afterTransport func(nw *net.Network, rng *sim.RNG)
	fillTelemetry  func(res *Result, eng *sim.Engine)

	// dumpState returns the scheme's checkpoint-visible control state (nil =
	// the scheme keeps no state beyond what the fabric and transport dumps
	// already cover). Everything returned must marshal deterministically.
	dumpState func() any
	// stop retires the scheme's periodic machinery (monitor windows, probe
	// loops) when a what-if fork replaces it mid-run. nil = nothing to stop.
	stop func()
	// attachFlight registers the scheme's flight-recorder series and hooks.
	// Kept separate from construction because hooking a scheme into the
	// recorder can change checkpoint-visible state (Hermes transition
	// tracking): a fork replay builds the scheme flight-blind to match the
	// parent run and attaches only at the fork instant. nil = no series.
	attachFlight func(*timeseries.Recorder)
}

func noAfter(*net.Network, *sim.RNG)   {}
func noTelemetry(*Result, *sim.Engine) {}

func buildScheme(nw *net.Network, rng *sim.RNG, cfg Config, rd *telemetry.RunData,
	flight *timeseries.Recorder) (*wiring, error) {
	flowlet := sim.Time(cfg.FlowletTimeoutNs)
	if flowlet <= 0 {
		flowlet = 150 * sim.Microsecond
	}
	w := &wiring{afterTransport: noAfter, fillTelemetry: noTelemetry}

	switch cfg.Scheme {
	case SchemeECMP:
		e := &lb.ECMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemeWCMP:
		e := &lb.WCMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemePresto:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
		}

	case SchemeDRB:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Spray{Net: nw, SchemeName: "DRB"}
		}

	case SchemeCLOVE:
		params := lb.DefaultCloveParams()
		params.FlowletTimeout = flowlet
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.Clove{Net: nw, Rng: rng, Params: params}
		}

	case SchemeFlowBender:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return lb.DefaultFlowBender(nw)
		}

	case SchemeLetFlow:
		for l := range nw.Leaves {
			lb.NewLetFlow(nw, l, rng, flowlet)
		}
		w.balancerFor = passThrough("LetFlow")

	case SchemeDRILL:
		for l := range nw.Leaves {
			lb.NewDRILL(nw, l, rng)
		}
		w.balancerFor = passThrough("DRILL")

	case SchemeEdgeFlowlet:
		w.balancerFor = func(*net.Host) transport.Balancer {
			return &lb.EdgeFlowlet{Net: nw, Rng: rng, Timeout: flowlet}
		}

	case SchemeHULA:
		p := lb.DefaultHulaParams()
		p.FlowletTimeout = flowlet
		lb.InstallHula(nw, rng, p)
		w.balancerFor = passThrough("HULA")

	case SchemeCONGA:
		p := lb.DefaultCongaParams()
		p.FlowletTimeout = flowlet
		lb.InstallConga(nw, rng, p)
		w.balancerFor = passThrough("CONGA")

	case SchemeMPTCP:
		// MPTCP subflows are hashed like ECMP flows and, like any ECMP flow,
		// pick their path once and are never rerouted — not even when the
		// path fails mid-flow (pinned by TestMPTCPSubflowsNeverRerouted); the
		// multipath behaviour lives in the transport (StartMPTCP).
		e := &lb.ECMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemeREPS:
		return buildReps(nw, rd, flight), nil

	case SchemeRepFlow:
		// Path selection is plain ECMP; the replication machinery lives in
		// the transport (StartRepFlow, installed by Run's generator hook)
		// and its observability in attachRepFlowObservability.
		e := &lb.ECMP{Net: nw}
		w.balancerFor = func(*net.Host) transport.Balancer { return e }

	case SchemeHermes:
		return buildHermes(nw, rng, cfg, rd, flight)

	default:
		return nil, fmt.Errorf("hermes: unknown scheme %q", cfg.Scheme)
	}
	return w, nil
}

func passThrough(name string) func(*net.Host) transport.Balancer {
	return func(*net.Host) transport.Balancer { return &lb.PassThrough{Scheme: name} }
}

// buildReps wires one REPS balancer per host and, when observability is on,
// registers the recycled-vs-fresh spray gauges and flight series. All gauges
// sum integer counters over a host-ordered slice (transport.New calls
// balancerFor in nw.Hosts order), so sampling is deterministic. Registration
// is gated on the scheme, keeping every other scheme's report byte-stable.
func buildReps(nw *net.Network, rd *telemetry.RunData,
	flight *timeseries.Recorder) *wiring {
	var instances []*lb.Reps
	w := &wiring{afterTransport: noAfter}
	w.balancerFor = func(h *net.Host) transport.Balancer {
		r := lb.NewReps(nw, 0)
		instances = append(instances, r)
		return r
	}

	sumOver := func(pick func(*lb.Reps) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for _, r := range instances {
				n += pick(r)
			}
			return float64(n)
		}
	}
	recycled := sumOver(func(r *lb.Reps) uint64 { return r.RecycledSprays })
	fresh := sumOver(func(r *lb.Reps) uint64 { return r.FreshSprays })
	evictions := sumOver(func(r *lb.Reps) uint64 { return r.Evictions })
	cached := func() float64 {
		var n int
		for _, r := range instances {
			n += r.CachedEntropies()
		}
		return float64(n)
	}
	hitRate := func() float64 {
		rec, fr := recycled(), fresh()
		if rec+fr == 0 {
			return 0
		}
		return rec / (rec + fr)
	}
	if rd != nil {
		rd.Registry.GaugeFunc("reps.recycled_sprays_total", recycled)
		rd.Registry.GaugeFunc("reps.fresh_sprays_total", fresh)
		rd.Registry.GaugeFunc("reps.evictions_total", evictions)
		rd.Registry.GaugeFunc("reps.cached_entropies", cached)
		rd.Registry.GaugeFunc("reps.cache_hit_rate", hitRate)
	}
	w.attachFlight = func(f *timeseries.Recorder) {
		f.Register("reps.recycled_sprays_total", recycled)
		f.Register("reps.fresh_sprays_total", fresh)
		f.Register("reps.evictions_total", evictions)
		f.Register("reps.cached_entropies", cached)
	}
	if flight != nil {
		w.attachFlight(flight)
	}

	w.fillTelemetry = func(res *Result, eng *sim.Engine) {
		for _, r := range instances {
			res.RecycledSprays += r.RecycledSprays
			res.FreshSprays += r.FreshSprays
			res.EntropyEvictions += r.Evictions
		}
	}
	w.dumpState = func() any {
		out := make([]*lb.RepsDump, len(instances))
		for i, r := range instances {
			out[i] = r.Dump()
		}
		return out
	}
	return w
}

// attachRepFlowObservability registers the transport's replication counters
// on the telemetry registry and flight recorder. Called by Run only for
// SchemeRepFlow, after the transport exists, so no other scheme's report
// gains these keys.
func attachRepFlowObservability(tr *transport.Transport, rd *telemetry.RunData,
	flight *timeseries.Recorder) {
	if rd != nil {
		rd.Registry.GaugeFunc("repflow.replicated_total",
			func() float64 { return float64(tr.RepFlowsStarted) })
		rd.Registry.GaugeFunc("repflow.replica_wins_total",
			func() float64 { return float64(tr.ReplicaWins) })
		rd.Registry.GaugeFunc("repflow.cancelled_total",
			func() float64 { return float64(tr.FlowsCancelled) })
		rd.Registry.GaugeFunc("repflow.redundant_bytes_total",
			func() float64 { return float64(tr.RedundantBytes) })
	}
	if flight != nil {
		flight.Register("repflow.replicated_total",
			func() float64 { return float64(tr.RepFlowsStarted) })
		flight.Register("repflow.replica_wins_total",
			func() float64 { return float64(tr.ReplicaWins) })
		flight.Register("repflow.cancelled_total",
			func() float64 { return float64(tr.FlowsCancelled) })
		flight.Register("repflow.redundant_bytes_total",
			func() float64 { return float64(tr.RedundantBytes) })
	}
}

func buildHermes(nw *net.Network, rng *sim.RNG, cfg Config, rd *telemetry.RunData,
	flight *timeseries.Recorder) (*wiring, error) {
	var params core.Params
	if cfg.HermesParams != nil {
		params = *cfg.HermesParams
	} else {
		params = core.DefaultParams(nw)
		if cfg.Protocol == "reno" || cfg.Protocol == "timely" {
			// §5.4: without DCTCP marking Hermes senses by RTT only and
			// relaxes the RTT thresholds by 1.5x (burstier, larger RTTs).
			params.UseECN = false
			params.TRTTHigh += params.TRTTHigh / 2
			params.DeltaRTT += params.DeltaRTT / 2
		}
	}

	var reg *telemetry.Registry
	var audit *telemetry.AuditLog
	if rd != nil {
		reg, audit = rd.Registry, rd.Audit
	}

	monitors := make([]*core.Monitor, nw.Cfg.Leaves)
	for l := range monitors {
		monitors[l] = core.NewMonitor(nw, l, params)
		monitors[l].Audit = audit
	}
	instances := map[int]*core.Hermes{}

	w := &wiring{}
	w.balancerFor = func(h *net.Host) transport.Balancer {
		inst := core.New(monitors[h.Leaf], rng, h.ID)
		inst.AttachTelemetry(reg, audit)
		instances[h.ID] = inst
		return inst
	}

	var probers []*core.Prober
	if reg != nil {
		attachHermesGauges(reg, monitors, instances, &probers)
	}
	w.attachFlight = func(f *timeseries.Recorder) {
		attachHermesFlight(f, monitors, instances)
	}
	if flight != nil {
		w.attachFlight(flight)
	}
	w.afterTransport = func(nw *net.Network, rng *sim.RNG) {
		if params.ProbeInterval <= 0 {
			return
		}
		core.InstallProbeResponders(nw)
		// One probe agent per rack: the first host under each leaf.
		agents := make([]*net.Host, nw.Cfg.Leaves)
		for l := range agents {
			agents[l] = nw.Hosts[l*nw.Cfg.HostsPerLeaf]
		}
		for l := range agents {
			probers = append(probers, core.NewProber(monitors[l], rng, agents))
		}
	}

	w.fillTelemetry = func(res *Result, eng *sim.Engine) {
		for _, inst := range instances {
			res.Reroutes += inst.Reroutes
			res.TimeoutReroutes += inst.TimeoutReroutes
			res.FailureReroutes += inst.FailureReroutes
		}
		for _, p := range probers {
			res.ProbesSent += p.ProbesSent
			res.ProbeBytes += p.ProbeBytes
		}
		if res.SimDuration > 0 && nw.Cfg.HostRateBps > 0 && len(probers) > 0 {
			// Overhead of one agent's probe traffic over its access link.
			perAgent := float64(res.ProbeBytes) / float64(len(probers))
			bps := perAgent * 8 * float64(sim.Second) / float64(res.SimDuration)
			res.ProbeOverhead = bps / float64(nw.Cfg.HostRateBps)
		}
	}
	w.dumpState = func() any {
		d := &hermesSchemeDump{}
		for _, m := range monitors {
			d.Monitors = append(d.Monitors, m.Dump())
		}
		for _, p := range probers {
			d.Probers = append(d.Probers, p.Dump())
		}
		hosts := make([]int, 0, len(instances))
		for h := range instances {
			hosts = append(hosts, h)
		}
		sort.Ints(hosts)
		for _, h := range hosts {
			inst := instances[h]
			d.Hosts = append(d.Hosts, hermesHostDump{
				Host: h, Reroutes: inst.Reroutes,
				TimeoutReroutes: inst.TimeoutReroutes,
				FailureReroutes: inst.FailureReroutes,
			})
		}
		return d
	}
	w.stop = func() {
		for _, p := range probers {
			p.Stop()
		}
		for _, m := range monitors {
			m.Stop()
		}
	}
	return w, nil
}

// hermesSchemeDump is the Hermes control plane's checkpoint section: every
// rack monitor's sensing table, every prober's overhead state, and the
// per-host reroute counters in host order.
type hermesSchemeDump struct {
	Monitors []*core.MonitorDump `json:"monitors"`
	Probers  []*core.ProberDump  `json:"probers"`
	Hosts    []hermesHostDump    `json:"hosts"`
}

type hermesHostDump struct {
	Host            int    `json:"host"`
	Reroutes        uint64 `json:"reroutes"`
	TimeoutReroutes uint64 `json:"timeout_reroutes"`
	FailureReroutes uint64 `json:"failure_reroutes"`
}

// attachHermesFlight wires the Hermes control plane into the flight
// recorder: a per-leaf Algorithm 1 path census (good/gray/congested/failed
// counts sampled every interval), the path-state transition log, and the
// cumulative reroute counters the chaos recovery analysis needs (first
// post-onset increase of timeout+failure reroutes = time-to-reroute). All
// sums are over integer counters, so map iteration order cannot perturb
// the sampled values. Monitor intake sites report transitions as they
// happen; the per-tick scan catches the one change that happens between
// events, quarantine expiry, so a failed->gray flip is recorded within one
// sampling interval.
func attachHermesFlight(flight *timeseries.Recorder, monitors []*core.Monitor,
	instances map[int]*core.Hermes) {
	sumOver := func(pick func(*core.Hermes) uint64) func() float64 {
		return func() float64 {
			var n uint64
			for _, inst := range instances {
				n += pick(inst)
			}
			return float64(n)
		}
	}
	flight.Register("hermes.reroutes_total",
		sumOver(func(i *core.Hermes) uint64 { return i.Reroutes }))
	flight.Register("hermes.timeout_reroutes_total",
		sumOver(func(i *core.Hermes) uint64 { return i.TimeoutReroutes }))
	flight.Register("hermes.failure_reroutes_total",
		sumOver(func(i *core.Hermes) uint64 { return i.FailureReroutes }))
	for l, m := range monitors {
		l, m := l, m
		leafLabel := fmt.Sprintf("%d", l)
		census := func(pick func(good, gray, congested, failed int) int) func() float64 {
			return func() float64 { return float64(pick(m.PathCensus())) }
		}
		flight.Register(telemetry.Key("hermes.paths_good", "leaf", leafLabel),
			census(func(g, _, _, _ int) int { return g }))
		flight.Register(telemetry.Key("hermes.paths_gray", "leaf", leafLabel),
			census(func(_, g, _, _ int) int { return g }))
		flight.Register(telemetry.Key("hermes.paths_congested", "leaf", leafLabel),
			census(func(_, _, c, _ int) int { return c }))
		flight.Register(telemetry.Key("hermes.paths_failed", "leaf", leafLabel),
			census(func(_, _, _, f int) int { return f }))
		m.OnTransition = func(dstLeaf, path int, from, to core.PathType, cause string) {
			flight.AddTransition(timeseries.Transition{
				AtNs: int64(m.Net.Eng.Now()), Leaf: l, Dst: dstLeaf, Path: path,
				From: from.String(), To: to.String(), Cause: cause,
			})
		}
		flight.AtTick(func() { m.ScanTransitions(timeseries.CauseHoldExpired) })
	}
}

// attachHermesGauges registers pull-style metrics over the Hermes control
// plane: reroute/probe totals, failure-mark events, and the Algorithm 1 path
// census (how many (dstLeaf, path) pairs each monitor currently classifies
// good/gray/congested/failed). Pull gauges cost nothing on the hot path; the
// sweeper evaluates them once per interval. All sums are over integer-valued
// counters, so map iteration order cannot perturb the result.
func attachHermesGauges(reg *telemetry.Registry, monitors []*core.Monitor,
	instances map[int]*core.Hermes, probers *[]*core.Prober) {
	reg.GaugeFunc("hermes.reroutes_total", func() float64 {
		var n uint64
		for _, inst := range instances {
			n += inst.Reroutes
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.timeout_reroutes_total", func() float64 {
		var n uint64
		for _, inst := range instances {
			n += inst.TimeoutReroutes
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.failure_reroutes_total", func() float64 {
		var n uint64
		for _, inst := range instances {
			n += inst.FailureReroutes
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.fail_marks_total", func() float64 {
		var n uint64
		for _, m := range monitors {
			n += m.FailMarkEvents
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.probes_sent_total", func() float64 {
		var n uint64
		for _, p := range *probers {
			n += p.ProbesSent
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.probes_lost_total", func() float64 {
		var n uint64
		for _, p := range *probers {
			n += p.ProbesLost
		}
		return float64(n)
	})
	reg.GaugeFunc("hermes.probe_bytes_total", func() float64 {
		var n uint64
		for _, p := range *probers {
			n += p.ProbeBytes
		}
		return float64(n)
	})
	census := func(pick func(good, gray, congested, failed int) int) func() float64 {
		return func() float64 {
			var n int
			for _, m := range monitors {
				n += pick(m.PathCensus())
			}
			return float64(n)
		}
	}
	reg.GaugeFunc("hermes.paths_good", census(func(g, _, _, _ int) int { return g }))
	reg.GaugeFunc("hermes.paths_gray", census(func(_, g, _, _ int) int { return g }))
	reg.GaugeFunc("hermes.paths_congested", census(func(_, _, c, _ int) int { return c }))
	reg.GaugeFunc("hermes.paths_failed", census(func(_, _, _, f int) int { return f }))
}
