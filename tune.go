package hermes

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/sim"
)

// The paper leaves "(automatic) optimal parameter configuration as an
// important future work" (§3.3, §6). TuneHermes implements it: greedy
// coordinate descent over a small set of Hermes knobs, scoring each
// candidate by the average FCT of a calibration workload across seeds.
// Deterministic: the same inputs always return the same tuned parameters.

// TuneDimension is one knob the tuner may adjust.
type TuneDimension struct {
	// Name labels the dimension in the trace.
	Name string
	// Values are the candidate settings, tried in order.
	Values []float64
	// Apply writes a candidate value into the parameter set.
	Apply func(p *core.Params, v float64)
}

// DefaultTuneDimensions returns the Table 4 knobs with candidate grids
// spanning the paper's recommended ranges, anchored at the derived defaults.
func DefaultTuneDimensions(base core.Params) []TuneDimension {
	hop := float64(base.DeltaRTT) // DeltaRTT defaults to one hop delay
	return []TuneDimension{
		{
			Name:   "T_RTT_high",
			Values: []float64{float64(base.TRTTHigh) - hop/2, float64(base.TRTTHigh), float64(base.TRTTHigh) + hop/2},
			Apply:  func(p *core.Params, v float64) { p.TRTTHigh = sim.Time(v) },
		},
		{
			Name:   "Delta_RTT",
			Values: []float64{hop / 2, hop, hop * 3 / 2},
			Apply:  func(p *core.Params, v float64) { p.DeltaRTT = sim.Time(v) },
		},
		{
			Name:   "Delta_ECN",
			Values: []float64{0.03, 0.05, 0.10},
			Apply:  func(p *core.Params, v float64) { p.DeltaECN = v },
		},
		{
			Name:   "S_bytes",
			Values: []float64{100_000, 600_000, 800_000},
			Apply:  func(p *core.Params, v float64) { p.SBytes = int64(v) },
		},
		{
			Name:   "R_frac",
			Values: []float64{0.2, 0.3, 0.4},
			Apply: func(p *core.Params, v float64) {
				// RBps is absolute; scale from the current 30% anchor.
				p.RBps = p.RBps / 0.3 * v
			},
		},
	}
}

// TuneStep records one candidate evaluation.
type TuneStep struct {
	Dimension string
	Value     float64
	ScoreMs   float64
	Accepted  bool
}

// TuneResult is the tuner's outcome.
type TuneResult struct {
	Params  core.Params
	ScoreMs float64
	Trace   []TuneStep
	Runs    int
}

// TuneHermes performs `passes` rounds of coordinate descent over dims,
// evaluating each candidate with RunSeeds on cfg (whose Scheme is forced to
// Hermes). cfg.Flows controls fidelity; small counts tune fast but noisily.
func TuneHermes(cfg Config, dims []TuneDimension, seeds []int64, passes int) (*TuneResult, error) {
	if passes <= 0 {
		passes = 1
	}
	cfg.Scheme = SchemeHermes
	base, err := DeriveHermesParams(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.HermesParams != nil {
		base = *cfg.HermesParams
	}
	if len(dims) == 0 {
		dims = DefaultTuneDimensions(base)
	}

	res := &TuneResult{Params: base}
	score := func(p core.Params) (float64, error) {
		c := cfg
		c.HermesParams = &p
		_, st, err := RunSeeds(c, seeds)
		if err != nil {
			return 0, err
		}
		res.Runs += len(seeds)
		return st.Mean, nil
	}

	best, err := score(base)
	if err != nil {
		return nil, err
	}
	res.ScoreMs = best

	for pass := 0; pass < passes; pass++ {
		for _, d := range dims {
			for _, v := range d.Values {
				cand := res.Params
				d.Apply(&cand, v)
				if cand == res.Params {
					continue // candidate equals current setting
				}
				s, err := score(cand)
				if err != nil {
					return nil, err
				}
				accepted := s < res.ScoreMs
				res.Trace = append(res.Trace, TuneStep{
					Dimension: d.Name, Value: v, ScoreMs: s, Accepted: accepted,
				})
				if accepted {
					res.Params = cand
					res.ScoreMs = s
				}
			}
		}
	}
	return res, nil
}

// String renders the tuning trace compactly.
func (r *TuneResult) String() string {
	s := fmt.Sprintf("tuned score %.3f ms after %d runs\n", r.ScoreMs, r.Runs)
	for _, st := range r.Trace {
		mark := " "
		if st.Accepted {
			mark = "*"
		}
		s += fmt.Sprintf("  %s %-12s = %-12g -> %.3f ms\n", mark, st.Dimension, st.Value, st.ScoreMs)
	}
	return s
}
