module github.com/hermes-repro/hermes

go 1.22
