package hermes

import (
	"encoding/json"
	"fmt"

	"github.com/hermes-repro/hermes/internal/metrics"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// Report is the serializable run record. It is an alias so importers outside
// the module can consume reports through the facade without reaching into
// internal packages.
type Report = telemetry.Report

// BuildReport assembles the serializable record of one finished run: the
// experiment configuration, FCT percentiles, every telemetry counter total,
// the swept time series and the decision-audit aggregate. It works for any
// scheme and any telemetry setting — with telemetry off the counters section
// only carries the run-level "run." values.
//
// Reports contain simulation time exclusively, so the same (Config, Seed)
// produces byte-identical WriteJSON/WriteCSV output.
func BuildReport(cfg Config, res *Result) (*telemetry.Report, error) {
	cfgCopy := cfg
	cfgCopy.TraceWriter = nil // not serializable, excluded by json:"-" anyway
	raw, err := json.Marshal(cfgCopy)
	if err != nil {
		return nil, fmt.Errorf("hermes: marshal config: %w", err)
	}

	rep := &telemetry.Report{
		Schema:        telemetry.ReportSchema,
		Scheme:        string(res.Scheme),
		Workload:      res.Workload,
		Load:          res.Load,
		Seed:          cfg.Seed,
		Config:        raw,
		SimDurationNs: int64(res.SimDuration),
		Events:        res.Events,
		FCT:           fctSummary(res.FCT),
		Counters:      map[string]float64{},
	}

	// Run-level derived values live under "run." so they sort apart from
	// the registry's subsystem metrics.
	rep.Counters["run.goodput_gbps"] = res.GoodputGbps
	rep.Counters["run.fabric_utilization"] = res.FabricUtilization
	rep.Counters["run.reroutes"] = float64(res.Reroutes)
	rep.Counters["run.timeout_reroutes"] = float64(res.TimeoutReroutes)
	rep.Counters["run.failure_reroutes"] = float64(res.FailureReroutes)
	rep.Counters["run.probes_sent"] = float64(res.ProbesSent)
	rep.Counters["run.probe_overhead"] = res.ProbeOverhead

	res.Telemetry.Fill(rep) // nil-safe: no-op with telemetry off
	return rep, nil
}

func fctSummary(r metrics.Report) telemetry.FCTSummary {
	return telemetry.FCTSummary{
		Overall:        bucketStats(r.Overall),
		Small:          bucketStats(r.Small),
		Medium:         bucketStats(r.Medium),
		Large:          bucketStats(r.Large),
		Flows:          r.Flows,
		Unfinished:     r.Unfinished,
		UnfinishedFrac: r.UnfinishedFrac,
	}
}

func bucketStats(s metrics.Stats) telemetry.BucketStats {
	return telemetry.BucketStats{
		Count:  s.Count,
		MeanMs: s.Mean / 1e6,
		P50Ms:  float64(s.P50) / 1e6,
		P95Ms:  float64(s.P95) / 1e6,
		P99Ms:  float64(s.P99) / 1e6,
	}
}
