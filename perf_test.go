package hermes

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestPerfResultPopulated: a run with Config.Perf set carries a populated
// perf block — every engine event accounted by kind, wall-clock attribution
// present — and the attached observatory aggregates it.
func TestPerfResultPopulated(t *testing.T) {
	obs := NewPerfObservatory()
	cfg := goldenConfig()
	cfg.Perf = &PerfOptions{SampleEvery: 8, Observatory: obs}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perf
	if p == nil {
		t.Fatal("Result.Perf nil with Config.Perf set")
	}
	if p.EventsTotal == 0 {
		t.Fatal("no events counted")
	}
	if p.SampleEvery != 8 {
		t.Fatalf("SampleEvery = %d, want 8", p.SampleEvery)
	}
	if len(p.ByKind) == 0 {
		t.Fatal("no per-kind stats")
	}
	var byKindSum uint64
	for _, ks := range p.ByKind {
		byKindSum += ks.Count
	}
	if byKindSum != p.EventsTotal {
		t.Fatalf("ByKind sums to %d, EventsTotal %d", byKindSum, p.EventsTotal)
	}
	if p.QueuePeak < 1 {
		t.Fatalf("QueuePeak = %d", p.QueuePeak)
	}
	if p.WallNs <= 0 || p.SimNs <= 0 {
		t.Fatalf("clocks: wall %d ns, sim %d ns", p.WallNs, p.SimNs)
	}
	if p.EventsPerSec <= 0 {
		t.Fatalf("EventsPerSec = %v", p.EventsPerSec)
	}
	if p.GOMAXPROCS < 1 || p.PeakHeapBytes == 0 {
		t.Fatalf("runtime sampling: gomaxprocs %d, peak heap %d", p.GOMAXPROCS, p.PeakHeapBytes)
	}

	s := obs.Summary()
	if s.RunsProfiled != 1 || s.EventsTotal != p.EventsTotal {
		t.Fatalf("observatory summary %+v does not match run (%d events)", s, p.EventsTotal)
	}

	// Without Config.Perf the block is absent from the Result and its JSON.
	cfg2 := goldenConfig()
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Perf != nil {
		t.Fatal("Result.Perf non-nil without Config.Perf")
	}
	data, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"Perf"`)) {
		t.Fatal("disabled run's Result JSON contains a Perf key")
	}
}

// TestPerfDoesNotChangeReport: profiling is purely observational — the
// canonical serialized report of a profiled run is byte-identical to the
// unprofiled run, sequentially and through the worker pool.
func TestPerfDoesNotChangeReport(t *testing.T) {
	cfg := goldenConfig()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, cfg, base)

	pcfg := cfg
	pcfg.Perf = &PerfOptions{SampleEvery: 2, Observatory: NewPerfObservatory()}
	prof, err := Run(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Config.Perf is json:"-" like Status, so even the report's config echo
	// and config hash are identical with profiling on.
	if got := reportBytes(t, pcfg, prof); !bytes.Equal(got, want) {
		t.Fatalf("profiled report differs from unprofiled (%d vs %d bytes)", len(got), len(want))
	}

	seeds := Seeds(1, 3)
	par, err := RunParallelOpts(context.Background(), pcfg, seeds,
		ParallelOptions{Workers: len(seeds)})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		seq, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := reportBytes(t, c, seq), reportBytes(t, c, par[i]); !bytes.Equal(a, b) {
			t.Fatalf("seed %d: profiled parallel report differs from unprofiled sequential", s)
		}
		if par[i].Perf == nil {
			t.Fatalf("seed %d: parallel run lost its perf block", s)
		}
	}
}

// TestPerfStatusPlane: with Config.Perf and a status tracker, /api/perf
// serves the observatory summary and /metrics carries a consistent
// hermes_perf_* family.
func TestPerfStatusPlane(t *testing.T) {
	obs := NewPerfObservatory()
	st := NewStatus()
	cfg := goldenConfig()
	cfg.Perf = &PerfOptions{Observatory: obs}
	cfg.Status = st
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := ServeStatus("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/api/perf")
	if err != nil {
		t.Fatal(err)
	}
	var s PerfSummary
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/perf status %d", resp.StatusCode)
	}
	if s.RunsProfiled != 1 || s.EventsTotal != res.Perf.EventsTotal {
		t.Fatalf("/api/perf summary %+v does not match the run (%d events)", s, res.Perf.EventsTotal)
	}
	if s.LastRun == nil || s.LastRun.EventsTotal != res.Perf.EventsTotal {
		t.Fatalf("/api/perf LastRun missing or stale: %+v", s.LastRun)
	}

	resp, err = http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	wantLine := "hermes_perf_events_total " + strconv.FormatUint(res.Perf.EventsTotal, 10) + "\n"
	if !strings.Contains(out, wantLine) {
		t.Fatalf("/metrics missing %q\n---\n%s", strings.TrimSpace(wantLine), out)
	}
	if !strings.Contains(out, "# TYPE hermes_perf_events_by_kind_total counter") ||
		!strings.Contains(out, `hermes_perf_events_by_kind_total{kind="`) {
		t.Fatalf("/metrics missing the per-kind perf family\n---\n%s", out)
	}
}

// TestPerfConcurrentSweep: profiled runs across the worker pool publish into
// one shared observatory while another goroutine continuously reads its
// metrics — the -race exercise for sampler and observatory concurrency.
func TestPerfConcurrentSweep(t *testing.T) {
	obs := NewPerfObservatory()
	cfg := goldenConfig()
	cfg.Flows = 15
	cfg.Perf = &PerfOptions{SampleEvery: 4, RuntimeIntervalMs: 1, Observatory: obs}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Metrics()
				obs.Summary()
			}
		}
	}()

	seeds := Seeds(1, 4)
	if _, err := RunParallelOpts(context.Background(), cfg, seeds,
		ParallelOptions{Workers: len(seeds)}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done

	if s := obs.Summary(); s.RunsProfiled != uint64(len(seeds)) {
		t.Fatalf("RunsProfiled = %d, want %d", s.RunsProfiled, len(seeds))
	}
}
