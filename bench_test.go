// Benchmarks: one per table and figure of the paper's evaluation (DESIGN.md
// maps each to its experiment). Every benchmark runs a reduced-scale version
// of the corresponding experiment per iteration and reports the headline
// metric via ReportMetric (avgFCTms, and unfinished%% where relevant), so
// `go test -bench=. -benchmem` regenerates the whole evaluation's shape.
// cmd/hermes-bench prints the full paper-style rows.
package hermes

import (
	"fmt"
	"testing"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

const benchFlows = 150

func benchTopo() Topology {
	return Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
}

// benchParams derives the Table 4 defaults for the benchmark fabric.
func benchParams() core.Params {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(0), benchTopo().toNet())
	if err != nil {
		panic(err)
	}
	return core.DefaultParams(nw)
}

// benchRun executes cfg b.N times and reports the average FCT.
func benchRun(b *testing.B, cfg Config) *Result {
	b.Helper()
	var last *Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.FCT.Overall.MeanMs(), "avgFCTms")
	b.ReportMetric(float64(last.Events)/b.Elapsed().Seconds()/float64(b.N), "events/s")
	return last
}

// --- Table 2 ---------------------------------------------------------------

func BenchmarkTable2Visibility(b *testing.B) {
	res := benchRun(b, Config{
		Topology: benchTopo(), Scheme: SchemeECMP, Workload: "web-search",
		Load: 0.6, Flows: benchFlows, MeasureVisibility: true,
	})
	b.ReportMetric(res.VisibilitySwitchPair, "switchPairVis")
	b.ReportMetric(res.VisibilityHostPair*1000, "hostPairVis(x1000)")
}

// --- Table 6 ---------------------------------------------------------------

func BenchmarkTable6Probing(b *testing.B) {
	res := benchRun(b, Config{
		Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
		Load: 0.5, Flows: benchFlows,
	})
	b.ReportMetric(100*res.ProbeOverhead, "probeOverhead%")
}

// --- Fig 9-11: testbed ------------------------------------------------------

func BenchmarkFig9TestbedSymmetric(b *testing.B) {
	for _, sch := range []Scheme{SchemeECMP, SchemeCLOVE, SchemePresto, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			benchRun(b, Config{
				Topology: TestbedTopology(), Scheme: sch, Workload: "web-search",
				Load: 0.6, Flows: benchFlows,
			})
		})
	}
}

func BenchmarkFig10TestbedAsymmetric(b *testing.B) {
	cut := FailureSpec{Kind: FailureCutCable, CutLeaf: 1, CutSpine: 1}
	for _, sch := range []Scheme{SchemeECMP, SchemeCLOVE, SchemePresto, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			benchRun(b, Config{
				Topology: TestbedTopology(), Scheme: sch, Workload: "web-search",
				Load: 0.6, Flows: benchFlows, Failure: cut,
			})
		})
	}
}

func BenchmarkFig11TestbedBreakdown(b *testing.B) {
	cut := FailureSpec{Kind: FailureCutCable, CutLeaf: 1, CutSpine: 1}
	res := benchRun(b, Config{
		Topology: TestbedTopology(), Scheme: SchemeHermes, Workload: "web-search",
		Load: 0.6, Flows: benchFlows, Failure: cut,
	})
	b.ReportMetric(res.FCT.Small.MeanMs(), "smallAvgMs")
	b.ReportMetric(res.FCT.Small.P99Ms(), "smallP99Ms")
	b.ReportMetric(res.FCT.Large.MeanMs(), "largeAvgMs")
}

// --- Fig 12: symmetric baseline ----------------------------------------------

func BenchmarkFig12Baseline(b *testing.B) {
	for _, wl := range []string{"web-search", "data-mining"} {
		for _, sch := range []Scheme{SchemeECMP, SchemeCONGA, SchemeHermes} {
			b.Run(fmt.Sprintf("%s/%s", wl, sch), func(b *testing.B) {
				benchRun(b, Config{
					Topology: benchTopo(), Scheme: sch, Workload: wl,
					Load: 0.6, Flows: benchFlows,
				})
			})
		}
	}
}

// --- Fig 13/14: asymmetric ----------------------------------------------------

func BenchmarkFig13AsymmetricWebSearch(b *testing.B) {
	for _, sch := range []Scheme{SchemeCONGA, SchemeLetFlow, SchemeCLOVE, SchemePresto, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			res := benchRun(b, Config{
				Topology: benchTopo(), Scheme: sch, Workload: "web-search",
				Load: 0.6, Flows: benchFlows,
				Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
			})
			b.ReportMetric(res.FCT.Small.P99Ms(), "smallP99Ms")
		})
	}
}

func BenchmarkFig14AsymmetricDataMining(b *testing.B) {
	for _, sch := range []Scheme{SchemeCONGA, SchemeLetFlow, SchemeCLOVE, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			res := benchRun(b, Config{
				Topology: benchTopo(), Scheme: sch, Workload: "data-mining",
				Load: 0.6, Flows: benchFlows,
				Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
			})
			b.ReportMetric(res.FCT.Large.MeanMs(), "largeAvgMs")
		})
	}
}

// --- Fig 15: CONGA flowlet-timeout sweep ---------------------------------------

func BenchmarkFig15CongaFlowletTimeout(b *testing.B) {
	for _, us := range []int64{50, 150, 500} {
		b.Run(fmt.Sprintf("%dus", us), func(b *testing.B) {
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeCONGA, Workload: "web-search",
				Load: 0.8, Flows: benchFlows,
				Failure:          FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
				FlowletTimeoutNs: us * 1000,
				ReorderTimeoutNs: 400_000,
			})
		})
	}
}

// --- Fig 16/17: switch failures -------------------------------------------------

func BenchmarkFig16RandomDrop(b *testing.B) {
	spec := FailureSpec{Kind: FailureRandomDrop, Spine: 1, DropRate: 0.02}
	for _, sch := range []Scheme{SchemeECMP, SchemeCONGA, SchemeLetFlow, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: sch, Workload: "web-search",
				Load: 0.5, Flows: benchFlows, Failure: spec,
			})
		})
	}
}

func BenchmarkFig17Blackhole(b *testing.B) {
	spec := FailureSpec{Kind: FailureBlackhole, Spine: 1, SrcLeaf: 0, DstLeaf: 3}
	for _, sch := range []Scheme{SchemeECMP, SchemeCONGA, SchemeLetFlow, SchemeHermes} {
		b.Run(string(sch), func(b *testing.B) {
			res := benchRun(b, Config{
				Topology: benchTopo(), Scheme: sch, Workload: "web-search",
				Load: 0.5, Flows: benchFlows, Failure: spec,
			})
			b.ReportMetric(100*res.FCT.UnfinishedFrac, "unfinished%")
		})
	}
}

// --- Fig 18: ablations ------------------------------------------------------------

func BenchmarkFig18aAblation(b *testing.B) {
	asym := FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9}
	variants := []struct {
		name               string
		noProbe, noReroute bool
	}{
		{"full", false, false},
		{"noProbe", true, false},
		{"noReroute", false, true},
		{"neither", true, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			params := benchParams()
			if v.noProbe {
				params.ProbeInterval = 0
			}
			params.DisableReroute = v.noReroute
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeHermes, Workload: "data-mining",
				Load: 0.6, Flows: benchFlows, Failure: asym,
				HermesParams: &params,
			})
		})
	}
}

func BenchmarkFig18bProbeInterval(b *testing.B) {
	asym := FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9}
	for _, us := range []int64{0, 100, 500} {
		b.Run(fmt.Sprintf("%dus", us), func(b *testing.B) {
			params := benchParams()
			params.ProbeInterval = us * 1000
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeHermes, Workload: "data-mining",
				Load: 0.6, Flows: benchFlows, Failure: asym,
				HermesParams: &params,
			})
		})
	}
}

// --- Fig 19: parameter sensitivity ----------------------------------------------

func BenchmarkFig19Sensitivity(b *testing.B) {
	asym := FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9}
	for _, us := range []int64{140, 180, 260} {
		b.Run(fmt.Sprintf("TRTTHigh=%dus", us), func(b *testing.B) {
			params := benchParams()
			params.TRTTHigh = us * 1000
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
				Load: 0.6, Flows: benchFlows, Failure: asym,
				HermesParams: &params,
			})
		})
	}
	for _, us := range []int64{40, 80, 160} {
		b.Run(fmt.Sprintf("DeltaRTT=%dus", us), func(b *testing.B) {
			params := benchParams()
			params.DeltaRTT = us * 1000
			benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
				Load: 0.6, Flows: benchFlows, Failure: asym,
				HermesParams: &params,
			})
		})
	}
}

// --- DESIGN.md ablation: cautious vs vigorous -----------------------------------

func BenchmarkAblationCaution(b *testing.B) {
	asym := FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9}
	for _, vigorous := range []bool{false, true} {
		name := "cautious"
		if vigorous {
			name = "vigorous"
		}
		b.Run(name, func(b *testing.B) {
			params := benchParams()
			params.Vigorous = vigorous
			res := benchRun(b, Config{
				Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
				Load: 0.7, Flows: benchFlows, Failure: asym,
				HermesParams: &params,
			})
			b.ReportMetric(float64(res.Reroutes), "reroutes")
		})
	}
}

// --- Telemetry overhead ----------------------------------------------------

// BenchmarkTelemetryOff vs BenchmarkTelemetryOn quantify the observability
// tax. With telemetry off every hook is a nil check, so Off must track the
// pre-instrumentation baseline (<2% on events/s); the Off/On gap bounds the
// full registry + sweeper + audit cost.
func BenchmarkTelemetryOff(b *testing.B) {
	benchRun(b, Config{
		Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
		Load: 0.6, Flows: benchFlows,
	})
}

func BenchmarkTelemetryOn(b *testing.B) {
	benchRun(b, Config{
		Topology: benchTopo(), Scheme: SchemeHermes, Workload: "web-search",
		Load: 0.6, Flows: benchFlows, Telemetry: true,
	})
}
