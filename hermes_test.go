package hermes

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/core"
)

// smallTopo is a reduced fabric for fast integration tests.
func smallTopo() Topology {
	return Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
}

// flowCount reduces a test's replay count under -short so the race-enabled
// CI pass stays inside its time budget while driving the same code paths.
// Comparative margins below were verified to hold at the reduced scales.
func flowCount(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	base := Config{Topology: smallTopo(), Scheme: SchemeECMP, Workload: "web-search", Load: 0.5, Flows: 10}
	bad := base
	bad.Flows = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero flows accepted")
	}
	bad = base
	bad.Load = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero load accepted")
	}
	bad = base
	bad.Workload = "bogus"
	if _, err := Run(bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = base
	bad.Scheme = "bogus"
	if _, err := Run(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = base
	bad.Protocol = "sctp"
	if _, err := Run(bad); err == nil {
		t.Error("unknown protocol accepted")
	}
	bad = base
	bad.Failure = FailureSpec{Kind: "meteor-strike"}
	if _, err := Run(bad); err == nil {
		t.Error("unknown failure kind accepted")
	}
}

func TestAllSchemesCompleteAllFlows(t *testing.T) {
	n := flowCount(120, 40)
	for _, sch := range Schemes() {
		sch := sch
		t.Run(string(sch), func(t *testing.T) {
			res := mustRun(t, Config{
				Topology: smallTopo(), Scheme: sch,
				Workload: "web-search", Load: 0.4, Flows: n, Seed: 5,
			})
			if res.FCT.Flows != n {
				t.Fatalf("recorded %d/%d flows", res.FCT.Flows, n)
			}
			if res.FCT.Unfinished != 0 {
				t.Fatalf("%d unfinished flows on a healthy fabric", res.FCT.Unfinished)
			}
			if res.FCT.Overall.Mean <= 0 {
				t.Fatal("zero mean FCT")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Scheme: SchemeHermes,
		Workload: "data-mining", Load: 0.5, Flows: 80, Seed: 99,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.FCT.Overall.Mean != b.FCT.Overall.Mean {
		t.Fatalf("same seed, different mean FCT: %v vs %v", a.FCT.Overall.Mean, b.FCT.Overall.Mean)
	}
	if a.Events != b.Events {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Events, b.Events)
	}
	if a.Reroutes != b.Reroutes {
		t.Fatalf("same seed, different reroutes: %d vs %d", a.Reroutes, b.Reroutes)
	}
}

func TestSeedsDiffer(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Scheme: SchemeECMP,
		Workload: "web-search", Load: 0.5, Flows: 80,
	}
	cfg.Seed = 1
	a := mustRun(t, cfg)
	cfg.Seed = 2
	b := mustRun(t, cfg)
	if a.FCT.Overall.Mean == b.FCT.Overall.Mean {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestHermesBeatsECMPUnderAsymmetry(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Workload: "data-mining", Load: 0.6, Flows: flowCount(300, 150), Seed: 3,
		Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
	}
	cfg.Scheme = SchemeECMP
	ecmp := mustRun(t, cfg)
	cfg.Scheme = SchemeHermes
	herm := mustRun(t, cfg)
	// The paper reports large gains over ECMP under asymmetry; require a
	// comfortable margin to keep the test robust across refactors.
	if herm.FCT.Overall.Mean >= 0.8*ecmp.FCT.Overall.Mean {
		t.Fatalf("Hermes %.3f ms vs ECMP %.3f ms: expected >20%% win under asymmetry",
			herm.FCT.Overall.MeanMs(), ecmp.FCT.Overall.MeanMs())
	}
}

func TestBlackholeHermesFinishesECMPDoesNot(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Workload: "web-search", Load: 0.5, Flows: flowCount(300, 150), Seed: 7,
		Failure: FailureSpec{Kind: FailureBlackhole, Spine: 1, SrcLeaf: 0, DstLeaf: 3},
	}
	cfg.Scheme = SchemeECMP
	ecmp := mustRun(t, cfg)
	cfg.Scheme = SchemeHermes
	herm := mustRun(t, cfg)
	if ecmp.FCT.Unfinished == 0 {
		t.Fatal("ECMP finished all flows through a blackhole (should strand some)")
	}
	if herm.FCT.Unfinished != 0 {
		t.Fatalf("Hermes stranded %d flows despite blackhole detection", herm.FCT.Unfinished)
	}
	if herm.FCT.Overall.Mean >= ecmp.FCT.Overall.Mean {
		t.Fatal("Hermes did not beat ECMP under a blackhole")
	}
}

func TestRandomDropHermesBeatsAll(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Workload: "web-search", Load: 0.5, Flows: flowCount(300, 150), Seed: 7,
		Failure: FailureSpec{Kind: FailureRandomDrop, Spine: 1, DropRate: 0.02},
	}
	means := map[Scheme]float64{}
	for _, sch := range []Scheme{SchemeECMP, SchemeCONGA, SchemeLetFlow, SchemeHermes} {
		cfg.Scheme = sch
		means[sch] = mustRun(t, cfg).FCT.Overall.Mean
	}
	if testing.Short() {
		// The ranking margins need the full replay count to be stable;
		// short mode (the -race pass) only exercises the scenario.
		return
	}
	for _, sch := range []Scheme{SchemeECMP, SchemeCONGA, SchemeLetFlow} {
		if means[SchemeHermes] >= means[sch] {
			t.Fatalf("Hermes (%.3g) not better than %s (%.3g) under random drops",
				means[SchemeHermes], sch, means[sch])
		}
	}
	// The headline claim: >32% better than every alternative. Use 20% as a
	// robust lower bound for the small test scale.
	for sch, m := range means {
		if sch == SchemeHermes {
			continue
		}
		if means[SchemeHermes] >= 0.8*m {
			t.Fatalf("Hermes margin over %s too small: %.3g vs %.3g", sch, means[SchemeHermes], m)
		}
	}
}

func TestHermesTelemetryPresent(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeHermes,
		Workload: "web-search", Load: 0.5, Flows: 100, Seed: 1,
	})
	if res.ProbesSent == 0 || res.ProbeBytes == 0 {
		t.Fatal("probing telemetry empty")
	}
	if res.ProbeOverhead <= 0 || res.ProbeOverhead > 0.05 {
		t.Fatalf("probe overhead %.4f outside (0, 5%%]", res.ProbeOverhead)
	}
}

func TestHermesAblationFlags(t *testing.T) {
	topo := smallTopo()
	base := Config{
		Topology: topo, Scheme: SchemeHermes,
		Workload: "data-mining", Load: 0.6, Flows: flowCount(200, 100), Seed: 11,
		Failure: FailureSpec{Kind: FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
	}
	full := mustRun(t, base)

	noProbe := base
	p := defaultParamsFor(t, topo)
	p.ProbeInterval = 0
	noProbe.HermesParams = &p
	np := mustRun(t, noProbe)
	if np.ProbesSent != 0 {
		t.Fatal("probe-disabled run still sent probes")
	}
	_ = full
}

// defaultParamsFor derives core defaults for a facade topology, for ablation
// overrides in tests.
func defaultParamsFor(t *testing.T, topo Topology) core.Params {
	t.Helper()
	// Mirror hermes.Run's derivation closely enough for tests: thresholds
	// scale with the topology's rates; exact values are irrelevant here.
	return core.Params{
		TECN: 0.4, TRTTLow: 80_000, TRTTHigh: 200_000,
		DeltaRTT: 76_000, DeltaECN: 0.05,
		RBps: 0.3 * float64(topo.HostRateBps), SBytes: 600_000,
		ProbeInterval: 500_000, ProbeTimeout: 10e6,
		Tau: 10e6, RetxFracThresh: 0.01, TimeoutsForBlackhole: 3,
		FailedHold: 1e9, ECNGain: 1.0 / 16, RTTGain: 1.0 / 8, UseECN: true,
	}
}

func TestVisibilityMeasurement(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeECMP,
		Workload: "web-search", Load: 0.6, Flows: 200, Seed: 1,
		MeasureVisibility: true,
	})
	if res.VisibilitySwitchPair <= 0 {
		t.Fatal("switch-pair visibility not measured")
	}
	// Table 2's key relationship: switch pairs see orders of magnitude more
	// concurrent flows per path than host pairs.
	ratio := res.VisibilitySwitchPair / res.VisibilityHostPair
	hosts := 4 * 4
	wantRatio := float64(hosts * (hosts - 4) / (4 * 3)) // hostPairs / leafPairs
	if ratio < wantRatio*0.99 || ratio > wantRatio*1.01 {
		t.Fatalf("visibility ratio %.1f, want ~%.1f", ratio, wantRatio)
	}
}

func TestRenoProtocolRuns(t *testing.T) {
	res := mustRun(t, Config{
		Topology: smallTopo(), Scheme: SchemeHermes, Protocol: "reno",
		Workload: "web-search", Load: 0.4, Flows: 100, Seed: 2,
	})
	if res.FCT.Unfinished != 0 {
		t.Fatalf("%d unfinished flows under Reno", res.FCT.Unfinished)
	}
}

func TestCutLinkAsymmetry(t *testing.T) {
	res := mustRun(t, Config{
		Topology: TestbedTopology(), Scheme: SchemeHermes,
		Workload: "web-search", Load: 0.5, Flows: 150, Seed: 4,
		Failure: FailureSpec{Kind: FailureCutLink, CutLeaf: 1, CutSpine: 1},
	})
	if res.FCT.Unfinished != 0 {
		t.Fatalf("%d unfinished flows after a link cut", res.FCT.Unfinished)
	}
}

func TestFlowletTimeoutOverride(t *testing.T) {
	cfg := Config{
		Topology: smallTopo(), Scheme: SchemeCONGA,
		Workload: "web-search", Load: 0.5, Flows: 100, Seed: 6,
	}
	cfg.FlowletTimeoutNs = 500_000
	a := mustRun(t, cfg)
	cfg.FlowletTimeoutNs = 50_000
	b := mustRun(t, cfg)
	if a.FCT.Overall.Mean == b.FCT.Overall.Mean {
		t.Fatal("flowlet timeout had no effect on CONGA")
	}
}
