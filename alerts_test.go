package hermes

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestAlertsOffByDefault pins the watchdog's zero-cost contract: with
// Config.Alerts nil no evaluator exists, Result.Alerts stays nil, and the
// marshaled result and config carry no alert keys at all — golden report
// bytes are untouched.
func TestAlertsOffByDefault(t *testing.T) {
	res := mustRun(t, chaosConfig(SchemeHermes, nil))
	if res.Alerts != nil {
		t.Fatalf("Result.Alerts = %+v without Config.Alerts", res.Alerts)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"Alerts"`) {
		t.Error("unarmed Result JSON mentions Alerts; omitempty contract broken")
	}
	cb, err := json.Marshal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cb), `"Alerts"`) {
		t.Error("zero Config JSON mentions Alerts; omitempty contract broken")
	}
}

// TestAlertsRequireRules: arming the watchdog with nothing to watch is a
// config error, not a silent no-op.
func TestAlertsRequireRules(t *testing.T) {
	cfg := chaosConfig(SchemeHermes, nil)
	cfg.Alerts = &AlertsConfig{}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no rules") {
		t.Fatalf("err = %v, want a no-rules-armed error", err)
	}
}

// TestAlertsSpineBlackholeAcceptance is the ISSUE acceptance gate: under the
// builtin spine-blackhole scenario the goodput-dip alert fires and resolves,
// and the gray-path-dwell fire time is consistent with the recovery plane's
// Recovery.TimeToDetect within one sample interval (a firing dwell episode
// covers the first sample boundary at/after the detection instant).
func TestAlertsSpineBlackholeAcceptance(t *testing.T) {
	scenario, err := BuiltinScenario("spine-blackhole", chaosTopo())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(SchemeHermes, scenario)
	cfg.Alerts = &AlertsConfig{Builtin: true}
	res := mustRun(t, cfg)
	if res.Alerts == nil || res.Alerts.Fired == 0 {
		t.Fatalf("watchdog armed but nothing fired: %+v", res.Alerts)
	}
	if res.Alerts.IntervalNs <= 0 {
		t.Fatalf("IntervalNs = %d", res.Alerts.IntervalNs)
	}

	dipFired, dipResolved := false, false
	for _, a := range res.Alerts.Alerts {
		if a.Rule != AlertGoodputDip || a.FiringNs == 0 {
			continue
		}
		dipFired = true
		if a.State == "resolved" {
			dipResolved = true
		}
	}
	if !dipFired {
		t.Error("goodput-dip never fired under a spine blackhole")
	}
	if !dipResolved {
		t.Error("goodput-dip never resolved after hermes rerouted")
	}

	cross := crossCheckAlertDetect(res)
	if cross[1] == 0 {
		t.Fatal("recovery plane detected nothing; acceptance scenario too weak")
	}
	if cross[0] != cross[1] {
		t.Errorf("alert/recovery detection disagree: %d/%d activations covered by a firing gray-path-dwell within one sample interval",
			cross[0], cross[1])
	}
}

// TestAlertsUserRules: a rule file without the builtin pack arms exactly the
// user's rules, and Result.Alerts carries them.
func TestAlertsUserRules(t *testing.T) {
	cfg := chaosConfig(SchemeHermes, nil)
	cfg.Alerts = &AlertsConfig{Rules: []AlertRule{
		{Name: "flight-recorder-dead", Series: "no.such.series", Op: "absent", Severity: "critical"},
	}}
	res := mustRun(t, cfg)
	if res.Alerts == nil || len(res.Alerts.Rules) != 1 {
		t.Fatalf("Alerts = %+v, want exactly the user rule", res.Alerts)
	}
	if res.Alerts.Fired == 0 || res.Alerts.Alerts[0].Rule != "flight-recorder-dead" {
		t.Fatalf("absence rule never fired: %+v", res.Alerts)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"Alerts"`) {
		t.Error("armed Result JSON lacks the Alerts report")
	}
}

// TestAlertsDeterministicParallel: alert reports are a pure function of
// (config, seed) — byte-identical between sequential Run and RunParallel.
func TestAlertsDeterministicParallel(t *testing.T) {
	scenario, err := BuiltinScenario("spine-blackhole", chaosTopo())
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(SchemeHermes, scenario)
	cfg.Alerts = &AlertsConfig{Builtin: true}
	seeds := Seeds(11, 2)

	seq := make([][]byte, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		res := mustRun(t, c)
		b, err := json.Marshal(res.Alerts)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = b
	}
	par, err := RunParallel(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range par {
		b, err := json.Marshal(res.Alerts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq[i], b) {
			t.Errorf("seed %d: alert report differs between sequential and parallel", seeds[i])
		}
	}
}

// TestChaosMatrixAlerts: arming the matrix populates the per-cell alert
// columns and the detect cross-check, and the slot-ordered alert log is
// byte-identical regardless of worker count.
func TestChaosMatrixAlerts(t *testing.T) {
	base := chaosConfig(SchemeHermes, nil)
	spineBH, err := BuiltinScenario("spine-blackhole", base.Topology)
	if err != nil {
		t.Fatal(err)
	}
	mc := ChaosMatrixConfig{
		Base:      base,
		Schemes:   []Scheme{SchemeHermes, SchemeECMP},
		Scenarios: []*Scenario{spineBH},
		Seeds:     Seeds(11, 2),
		Alerts:    &AlertsConfig{Builtin: true},
	}
	var logA bytes.Buffer
	mc.AlertLog = &logA
	m, err := RunChaosMatrix(context.Background(), mc)
	if err != nil {
		t.Fatal(err)
	}
	if !m.AlertsArmed {
		t.Fatal("AlertsArmed not set")
	}
	hermes := m.Cell(SchemeHermes, "spine-blackhole")
	if hermes.AlertsFired == 0 {
		t.Errorf("hermes cell has no alerts: %+v", hermes)
	}
	if hermes.AlertDetectTotal == 0 || hermes.AlertDetectAgree != hermes.AlertDetectTotal {
		t.Errorf("detect cross-check %d/%d, want full agreement",
			hermes.AlertDetectAgree, hermes.AlertDetectTotal)
	}
	if ecmp := m.Cell(SchemeECMP, "spine-blackhole"); ecmp.AlertDetectTotal != 0 {
		t.Errorf("ecmp has no detector but AlertDetectTotal = %d", ecmp.AlertDetectTotal)
	}

	// The log parses, covers every slot (clean baselines included), and the
	// labels follow slot order.
	runs, err := ReadAlertLog(bytes.NewReader(logA.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(mc.Schemes) * (len(mc.Scenarios) + 1) * len(mc.Seeds)
	if len(runs) != wantRuns {
		t.Fatalf("alert log has %d runs, want %d", len(runs), wantRuns)
	}
	if runs[0].Label != "hermes/clean/seed 11" || runs[2].Label != "hermes/spine-blackhole/seed 11" {
		t.Errorf("log labels out of slot order: %q, %q", runs[0].Label, runs[2].Label)
	}

	// Worker count must leak into neither the matrix nor the log bytes.
	mc2 := mc
	var logB bytes.Buffer
	mc2.AlertLog = &logB
	mc2.Options = ParallelOptions{Workers: 1}
	m2, err := RunChaosMatrix(context.Background(), mc2)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(m)
	jb, _ := json.Marshal(m2)
	if !bytes.Equal(ja, jb) {
		t.Error("matrix differs by worker count with alerts armed")
	}
	if !bytes.Equal(logA.Bytes(), logB.Bytes()) {
		t.Error("alert log differs by worker count")
	}

	// The armed scorecard gains the alert columns.
	var buf bytes.Buffer
	if err := m.RenderText(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"alerts(f/r)", "detect-agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("armed scorecard missing %q:\n%s", want, out)
		}
	}
}

// TestAlertLogRoundTripRoot exercises the root-package log wrappers.
func TestAlertLogRoundTripRoot(t *testing.T) {
	cfg := chaosConfig(SchemeHermes, nil)
	cfg.Alerts = &AlertsConfig{Rules: []AlertRule{
		{Name: "dead", Series: "no.such.series", Op: "absent"},
	}}
	res := mustRun(t, cfg)
	var buf bytes.Buffer
	if err := WriteAlertLog(&buf, "round/trip", res.Alerts); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadAlertLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Label != "round/trip" || runs[0].Report.Fired != res.Alerts.Fired {
		t.Fatalf("round trip = %+v", runs)
	}
	var out bytes.Buffer
	if err := RenderAlertText(&out, &runs[0].Report, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dead on no.such.series") {
		t.Errorf("render missing the episode:\n%s", out.String())
	}
}
