package hermes

import (
	"fmt"
	"io"

	"github.com/hermes-repro/hermes/internal/textplot"
)

// RenderText writes the human-readable recovery scorecard: one table per
// scenario, a dip-cost bar chart over the whole matrix, and the composite
// ranking. Width scales the charts (0 = default).
func (m *ChaosMatrix) RenderText(w io.Writer, width int) error {
	ms := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	partial := ""
	if m.Partial {
		partial = " [PARTIAL: sweep interrupted; cells cover completed runs only]"
	}
	if _, err := fmt.Fprintf(w,
		"chaos resilience matrix — recovery scorecard%s\nschemes=%v scenarios=%v seeds=%v\n\n",
		partial, m.Schemes, m.Scenarios, m.Seeds); err != nil {
		return err
	}

	for _, scn := range m.Scenarios {
		if _, err := fmt.Fprintf(w, "scenario %s\n", scn); err != nil {
			return err
		}
		// The alert columns exist only when the watchdog ran on every cell,
		// keeping the unarmed scorecard byte-stable.
		alertHdr, alertRow := "", ""
		if m.AlertsArmed {
			alertHdr = fmt.Sprintf(" %14s %13s", "alerts(f/r)", "detect-agree")
		}
		if _, err := fmt.Fprintf(w, "  %-10s %12s %12s %14s %18s %16s %6s%s\n",
			"scheme", "detect(ms)", "reroute(ms)", "worst-dip(ms)", "dip-cost(Gbps*ms)", "p99(ms)", "unfin", alertHdr); err != nil {
			return err
		}
		for _, s := range m.Schemes {
			c := m.Cell(s, scn)
			if c == nil {
				continue
			}
			p99 := fmt.Sprintf("%.2f (%+.1f%%)", c.P99Ms.Mean, c.P99InflationPct)
			if m.AlertsArmed {
				agree := "-"
				if c.AlertDetectTotal > 0 {
					agree = fmt.Sprintf("%d/%d", c.AlertDetectAgree, c.AlertDetectTotal)
				}
				alertRow = fmt.Sprintf(" %14s %13s",
					fmt.Sprintf("%d/%d", c.AlertsFired, c.AlertsResolved), agree)
			}
			if _, err := fmt.Fprintf(w, "  %-10s %12s %12s %14.2f %18.1f %16s %6d%s\n",
				string(s), ms(c.MeanDetectMs), ms(c.MeanRerouteMs),
				c.WorstDipMs.Mean, c.DipIntegral.Mean, p99, c.Unfinished, alertRow); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	series := make([]textplot.Series, 0, len(m.Schemes))
	for _, s := range m.Schemes {
		row := textplot.Series{Label: string(s)}
		for _, scn := range m.Scenarios {
			row.Values = append(row.Values, m.Cell(s, scn).DipIntegral.Mean)
		}
		series = append(series, row)
	}
	if err := textplot.Bars(w, "goodput-dip cost by scenario (Gbps*ms; lower = more resilient)",
		m.Scenarios, series, width); err != nil {
		return err
	}

	if _, err := fmt.Fprintln(w,
		"ranking (detection latency + dip cost + p99 inflation, normalized; lower = better)"); err != nil {
		return err
	}
	for i, r := range m.Ranking {
		detect := "-"
		if r.MeanDetectMs >= 0 {
			detect = fmt.Sprintf("%.2fms", r.MeanDetectMs)
		}
		if _, err := fmt.Fprintf(w, " %d. %-10s score=%.3f detect=%s worst-dip=%.2fms p99-inflation=%+.1f%%\n",
			i+1, string(r.Scheme), r.Score, detect, r.MeanWorstDipMs,
			r.MeanP99InflationPct); err != nil {
			return err
		}
	}
	return nil
}
