package hermes

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// statusConfig is a small scenario run: flight recorder + telemetry so every
// status surface (progress, metrics, series) carries data.
func statusConfig() Config {
	cfg := goldenConfig()
	cfg.Flows = 20
	cfg.DrainTimeoutNs = 100e6
	return cfg
}

// TestStatusDoesNotPerturbReports is the tentpole invariant: a sweep with a
// status tracker (and a live HTTP server polling it) produces byte-identical
// reports to the same sweep with the status plane off.
func TestStatusDoesNotPerturbReports(t *testing.T) {
	cfg := statusConfig()
	seeds := Seeds(1, 4)

	baseline, err := RunParallel(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	st := NewStatus()
	srv, err := ServeStatus("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Hammer the status plane while the sweep runs so observation is real.
	stopPoll := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			default:
				resp, err := http.Get(srv.URL() + "/api/progress")
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(srv.URL() + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()
	observed := cfg
	observed.Status = st
	watched, err := RunParallel(observed, seeds)
	close(stopPoll)
	if err != nil {
		t.Fatal(err)
	}

	for i := range seeds {
		cfgSeed := cfg
		cfgSeed.Seed = seeds[i]
		var a, b bytes.Buffer
		repA, err := BuildReport(cfgSeed, baseline[i])
		if err != nil {
			t.Fatal(err)
		}
		repB, err := BuildReport(cfgSeed, watched[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := repA.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := repB.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed %d: report differs with status plane attached (%d vs %d bytes)",
				seeds[i], a.Len(), b.Len())
		}
	}

	// And the tracker saw the whole sweep.
	p := st.Progress()
	if p.RunsDone != len(seeds) || p.RunsPlanned != len(seeds) || p.FracDone != 1 {
		t.Fatalf("tracker missed runs: %+v", p)
	}
	sums := st.Summaries()
	if len(sums) != len(seeds) {
		t.Fatalf("summaries = %d, want %d", len(sums), len(seeds))
	}
	for _, s := range sums {
		if s.Err != "" || s.Flows != cfg.Flows || s.SimDurationNs <= 0 {
			t.Fatalf("bad summary: %+v", s)
		}
		if !strings.HasPrefix(s.Label, "seed ") {
			t.Fatalf("pool label not threaded: %q", s.Label)
		}
	}
}

// TestStatusLiveEndpoints drives the HTTP surface against a real completed
// sweep: progress, report, manifest, metrics and the flight-recorder series.
func TestStatusLiveEndpoints(t *testing.T) {
	st := NewStatus()
	srv, err := ServeStatus("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := statusConfig()
	cfg.Status = st
	cfg.Scenario = mustScenario(t, "spine-blackhole", cfg.Topology)
	cfg.Failure = FailureSpec{}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	get := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	var progress struct {
		RunsDone int     `json:"runs_done"`
		PctDone  float64 `json:"pct_done"`
		SimNs    int64   `json:"sim_ns"`
	}
	get("/api/progress", &progress)
	if progress.RunsDone != 1 || progress.SimNs <= 0 {
		t.Fatalf("progress: %+v", progress)
	}

	var manifest Manifest
	get("/api/manifest", &manifest)
	if manifest.Module == "" || manifest.GoVersion == "" || manifest.StartTime == "" {
		t.Fatalf("manifest incomplete: %+v", manifest)
	}

	var report struct {
		Runs []struct {
			Label    string `json:"label"`
			Scenario string `json:"scenario"`
		} `json:"runs"`
	}
	get("/api/report", &report)
	if len(report.Runs) != 1 || report.Runs[0].Scenario != "spine-blackhole" {
		t.Fatalf("report: %+v", report)
	}

	// The scenario run attached its flight recorder: the retained window is
	// served with meta and the run's label.
	var series struct {
		Label   string               `json:"label"`
		TimesNs []int64              `json:"times_ns"`
		Series  map[string][]float64 `json:"series"`
		Meta    *struct {
			Scheme string `json:"scheme"`
		} `json:"meta"`
	}
	get("/api/series", &series)
	if len(series.TimesNs) == 0 || len(series.Series) == 0 {
		t.Fatalf("series empty: %d rows, %d series", len(series.TimesNs), len(series.Series))
	}
	if series.Meta == nil || series.Meta.Scheme != string(cfg.Scheme) {
		t.Fatalf("series meta: %+v", series.Meta)
	}

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"hermes_runs_completed_total 1",
		"hermes_build_info{",
		"hermes_sim_seconds_total ",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b.String())
		}
	}
}

func mustScenario(t *testing.T, name string, topo Topology) *Scenario {
	t.Helper()
	sc, err := BuiltinScenario(name, topo)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestChaosMatrixStatus: the matrix publishes cells to the tracker and stays
// deterministic while observed.
func TestChaosMatrixStatus(t *testing.T) {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9, HostDelayNs: 2000, FabricDelayNs: 2000}
	mc := ChaosMatrixConfig{
		Base: Config{Topology: topo, Workload: "web-search", Load: 0.4,
			Flows: 15, DrainTimeoutNs: 100e6},
		Schemes:   []Scheme{SchemeHermes, SchemeECMP},
		Scenarios: []*Scenario{mustScenario(t, "spine-blackhole", topo)},
		Seeds:     []int64{7, 8},
	}
	plain, err := RunChaosMatrix(context.Background(), mc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Manifest != nil {
		t.Fatal("RunChaosMatrix stamped a manifest; that is the CLI's job")
	}

	st := NewStatus()
	mc.Base.Status = st
	watched, err := RunChaosMatrix(context.Background(), mc)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(watched)
	if !bytes.Equal(a, b) {
		t.Fatal("chaos matrix differs with status tracker attached")
	}

	p := st.Progress()
	// 2 schemes x (1 scenario + clean baseline) x 2 seeds.
	if p.RunsPlanned != 8 || p.RunsDone != 8 || p.FracDone != 1 {
		t.Fatalf("matrix progress: %+v", p)
	}
	if p.Note == "" || !strings.Contains(p.Note, "chaos matrix") {
		t.Fatalf("matrix note: %q", p.Note)
	}
	labels := map[string]bool{}
	for _, s := range st.Summaries() {
		labels[s.Label] = true
	}
	for _, want := range []string{"hermes/clean/seed 7", "ecmp/spine-blackhole/seed 8"} {
		if !labels[want] {
			t.Fatalf("missing cell label %q in %v", want, labels)
		}
	}
}

// TestManifestStamping: WithConfig hashes the config and is stable; the
// version string is printable.
func TestManifestStamping(t *testing.T) {
	cfgJSON, err := json.Marshal(statusConfig())
	if err != nil {
		t.Fatal(err)
	}
	m1 := BuildManifest().WithConfig(cfgJSON, []int64{1, 2, 3})
	m2 := BuildManifest().WithConfig(cfgJSON, []int64{1, 2, 3})
	if m1.ConfigHash == "" || m1.ConfigHash != m2.ConfigHash {
		t.Fatalf("config hash unstable: %q vs %q", m1.ConfigHash, m2.ConfigHash)
	}
	other := BuildManifest().WithConfig(append(cfgJSON, ' '), nil)
	if other.ConfigHash == m1.ConfigHash {
		t.Fatal("different configs hashed identically")
	}
	if len(m1.Seeds) != 3 {
		t.Fatalf("manifest: %+v", m1)
	}
	// WithConfig stamps artifacts, and artifacts are byte-identical functions
	// of (Config, Seed): no wall clock allowed.
	if m1.StartTime != "" {
		t.Fatalf("artifact manifest leaked wall clock: %+v", m1)
	}
	if BuildManifest().StartTime == "" {
		t.Fatal("live manifest missing start time")
	}
	if VersionString() == "" {
		t.Fatal("empty version string")
	}
}
