// Package hermes is a from-scratch reproduction of "Resilient Datacenter
// Load Balancing in the Wild" (SIGCOMM 2017): the Hermes load balancer, the
// baselines it is evaluated against (ECMP, Presto*, DRB, LetFlow, DRILL,
// CONGA, CLOVE-ECN, FlowBender), and the packet-level leaf-spine fabric,
// DCTCP transport, workload generators and failure injectors the evaluation
// needs. The package is a facade: describe an experiment with Config, call
// Run, and read the FCT statistics from Result.
//
//	res, err := hermes.Run(hermes.Config{
//	    Topology: hermes.LargeScaleTopology(),
//	    Scheme:   hermes.SchemeHermes,
//	    Workload: "web-search",
//	    Load:     0.6,
//	    Flows:    2000,
//	    Seed:     1,
//	})
package hermes

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/chaos"
	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/failure"
	"github.com/hermes-repro/hermes/internal/metrics"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/perf"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/statusd"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/timeseries"
	"github.com/hermes-repro/hermes/internal/trace"
	"github.com/hermes-repro/hermes/internal/transport"
	"github.com/hermes-repro/hermes/internal/workload"
)

// Scheme names a load balancing scheme.
type Scheme string

// The schemes of Table 1.
const (
	SchemeECMP       Scheme = "ecmp"
	SchemePresto     Scheme = "presto" // Presto*: packet spraying + reorder buffer
	SchemeDRB        Scheme = "drb"
	SchemeLetFlow    Scheme = "letflow"
	SchemeDRILL      Scheme = "drill"
	SchemeCONGA      Scheme = "conga"
	SchemeCLOVE      Scheme = "clove" // CLOVE-ECN
	SchemeFlowBender Scheme = "flowbender"
	SchemeHermes     Scheme = "hermes"
	// SchemeEdgeFlowlet is the congestion-oblivious CLOVE variant
	// (Edge-Flowlet) the paper also evaluated.
	SchemeEdgeFlowlet Scheme = "edge-flowlet"
	// SchemeHULA is HULA [25], Table 1's programmable-switch scheme.
	SchemeHULA Scheme = "hula"
	// SchemeMPTCP is multipath TCP [31]: k subflows per logical flow over a
	// shared send buffer, hashed independently onto paths and never
	// rerouted. The paper discusses it (§5.1, §7) but could not simulate
	// it; this repository can.
	SchemeMPTCP Scheme = "mptcp"
	// SchemeWCMP is weighted-cost multipath: per-flow capacity-weighted
	// hashing, the static asymmetry-aware strawman (extension).
	SchemeWCMP Scheme = "wcmp"
	// SchemeREPS is recycled entropy packet spraying (extension; the
	// post-Hermes "next decade" spray): senders cache the entropies of
	// packets whose ACKs recently came back clean and respray those,
	// evicting on ECN/retransmit/RTO, with round-robin fresh entropies as
	// the fallback. See internal/lb/reps.go.
	SchemeREPS Scheme = "reps"
	// SchemeRepFlow is flow replication (extension): short flows (below
	// Config.RepFlowThresholdBytes) run as two independently ECMP-hashed
	// copies; the first to finish wins and the loser is cancelled. See
	// internal/transport/repflow.go.
	SchemeRepFlow Scheme = "repflow"
)

// Schemes lists every supported scheme.
func Schemes() []Scheme {
	return []Scheme{
		SchemeECMP, SchemeWCMP, SchemePresto, SchemeDRB, SchemeLetFlow,
		SchemeDRILL, SchemeCONGA, SchemeCLOVE, SchemeEdgeFlowlet, SchemeHULA,
		SchemeFlowBender, SchemeMPTCP, SchemeREPS, SchemeRepFlow, SchemeHermes,
	}
}

// Topology describes a leaf-spine fabric.
type Topology struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	HostRateBps   int64
	FabricRateBps int64

	HostDelayNs   int64
	FabricDelayNs int64

	// QueueFactor sizes port buffers as a multiple of the ECN threshold
	// (0 = default 5x). Use 2-3x to model shallow-buffer switches.
	QueueFactor int

	// CablesPerLink is the number of parallel physical cables per
	// leaf-spine pair (0/1 = one). Each cable is a distinct XPath path.
	CablesPerLink int
}

// TestbedTopology mirrors the paper's hardware testbed (Fig 8a): two racks
// of six servers, two spines, all links 1 Gbps with TWO parallel cables per
// leaf-spine pair — 6 Gbps down vs 4 Gbps up per leaf, the paper's 3:2
// oversubscription — and ~100 us base RTT. Each cable is a distinct path
// (4 paths between the racks), so cutting one cable leaves 3 of 4 paths and
// 75% of the bisection, exactly Fig 8b.
func TestbedTopology() Topology {
	return Topology{
		Leaves: 2, Spines: 2, HostsPerLeaf: 6,
		HostRateBps: 1_000_000_000, FabricRateBps: 1_000_000_000,
		CablesPerLink: 2,
		HostDelayNs:   5_000, FabricDelayNs: 5_000,
	}
}

// LargeScaleTopology mirrors the paper's simulation baseline (§5.3.1): an
// 8x8 leaf-spine with 128 hosts, 10 Gbps links everywhere and a 2:1 leaf
// oversubscription.
func LargeScaleTopology() Topology {
	return Topology{
		Leaves: 8, Spines: 8, HostsPerLeaf: 16,
		HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
		HostDelayNs: 2_000, FabricDelayNs: 2_000,
	}
}

// FailureKind selects a §5.3.3 switch malfunction or topology asymmetry.
type FailureKind string

// Supported failure injections.
const (
	FailureNone       FailureKind = ""
	FailureRandomDrop FailureKind = "random-drop"
	FailureBlackhole  FailureKind = "blackhole"
	// FailureSpineBlackhole silently drops everything transiting one spine
	// while its links stay up — routing still advertises the paths, so
	// hash-based schemes keep sending into the hole and spray-based schemes
	// lose packets on every flow. The worst §5.3.3-class malfunction.
	FailureSpineBlackhole FailureKind = "spine-blackhole"
	FailureDegrade        FailureKind = "degrade"
	FailureCutLink        FailureKind = "cut-link"
	// FailureCutCable removes a single physical cable of a multi-cable
	// leaf-spine link (the paper's testbed Fig 8b cut).
	FailureCutCable FailureKind = "cut-cable"
	// FailureDegradeLink reduces one specific leaf-spine link to
	// DegradedBps — e.g. the paper's testbed "link cut", which removes one
	// of two parallel 1 Gbps cables (2 Gbps -> 1 Gbps, 75% bisection).
	FailureDegradeLink FailureKind = "degrade-link"
	// FailureFlap periodically degrades and restores the CutLeaf/CutSpine
	// link (gray-failure extension). It is sugar for a repeating scenario
	// event: Run lowers it onto the chaos engine's Every/Duration machinery.
	FailureFlap FailureKind = "flap"
	// FailureDegradeSpine re-rates every link of one spine — the §2.1
	// "heterogeneous devices" asymmetry (e.g. one older slower spine tier).
	FailureDegradeSpine FailureKind = "degrade-spine"
	// FailureSpineDown takes a whole spine switch out of service: all its
	// links cut and everything transiting it dropped. As a static failure
	// it onsets at t=0; inside a Scenario it can onset and clear mid-run.
	FailureSpineDown FailureKind = "spine-down"
	// FailureLeafDown takes a leaf switch down (CutLeaf selects it, -1 =
	// random), isolating its whole rack including intra-rack traffic.
	FailureLeafDown FailureKind = "leaf-down"
)

// FailureSpec configures the injection.
type FailureSpec struct {
	Kind FailureKind

	// Spine selects the malfunctioning core switch; -1 picks one at random.
	Spine int
	// DropRate is the silent random-drop probability (default 0.02).
	DropRate float64
	// SrcLeaf/DstLeaf scope the blackhole's rack pair (default 0 -> last).
	SrcLeaf, DstLeaf int
	// Fraction of leaf-spine links degraded to DegradedBps (degrade).
	Fraction    float64
	DegradedBps int64
	// CutLeaf/CutSpine identify the removed link (cut-link), and CutCable
	// the single cable for cut-cable fabrics (-1 or 0 = cable 0).
	CutLeaf, CutSpine, CutCable int
	// FlapPeriodNs/FlapDownNs control the flap cycle (flap kind).
	FlapPeriodNs, FlapDownNs int64
}

// Config describes one experiment run.
type Config struct {
	Topology Topology
	Scheme   Scheme

	// Workload is "web-search" or "data-mining".
	Workload string
	// WorkloadFile, when set, loads a custom flow-size CDF from a text file
	// ("<bytes> <cumulative-prob>" per line) instead of Workload.
	WorkloadFile string
	// Load is the offered load as a fraction of bisection bandwidth.
	Load float64
	// Flows is the number of flows to generate.
	Flows int
	// Seed drives all randomness; same seed, same result.
	Seed int64

	// MaxFlowBytes truncates the size distribution (0 = workload default:
	// data-mining is capped at 35 MB to bound simulation cost; see
	// EXPERIMENTS.md).
	MaxFlowBytes int64

	// Protocol is "dctcp" (default) or "reno".
	Protocol string

	// FlowletTimeout overrides the flowlet gap for CONGA/LetFlow/CLOVE
	// (default 150 us).
	FlowletTimeoutNs int64

	// ReorderTimeoutNs sets the receive-side reordering buffer; -1 disables
	// it even for Presto*; 0 means scheme default (Presto* gets 400 us).
	ReorderTimeoutNs int64

	// HermesParams overrides the derived Table 4 defaults when non-nil.
	HermesParams *core.Params

	// Failure injects a malfunction or asymmetry.
	Failure FailureSpec

	// Scenario, when non-nil, drives the chaos engine: a declarative
	// timeline of failure events — several at once, mid-run onset and
	// recovery, repeats — deterministic per Seed. Setting it implies
	// TimeSeries (the flight recorder feeds Result.Recovery). Composes
	// with a static Failure, except flap/spine-down/leaf-down kinds,
	// which are themselves scenario sugar. (omitempty keeps reports from
	// scenario-less runs byte-stable.)
	Scenario *Scenario `json:",omitempty"`

	// DrainTimeoutNs bounds how long the run may continue after the last
	// flow arrival before unfinished flows are force-recorded (default 2 s
	// of virtual time).
	DrainTimeoutNs int64

	// MeasureVisibility enables the Table 2 sampler.
	MeasureVisibility bool

	// MPTCPSubflows sets the subflow count for SchemeMPTCP (default 4).
	MPTCPSubflows int

	// RepFlowThresholdBytes is the replicate-below size bound for
	// SchemeRepFlow (0 = transport.DefaultRepFlowThreshold, 100 KB). Flows
	// at or above it run unreplicated. (omitempty keeps reports from other
	// schemes byte-stable.)
	RepFlowThresholdBytes int64 `json:",omitempty"`

	// TraceWriter, when non-nil, receives a JSONL stream of per-flow load
	// balancing events and path-residency spans (placements, path changes,
	// retransmits, timeouts, ECN marks, drops) after the run completes.
	TraceWriter io.Writer `json:"-"`
	// PerfettoWriter, when non-nil, receives the same trace as Chrome
	// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
	// chrome://tracing: flows as tracks, spans as slices, transport signals
	// and Hermes verdicts as instants.
	PerfettoWriter io.Writer `json:"-"`
	// Trace enables trace recording without any writer: the recorder is
	// returned on Result.Trace for in-process analysis. Unlike the writer
	// fields it is safe under RunParallel — each run owns its recorder.
	// (omitempty keeps reports from untraced runs byte-stable.)
	Trace bool `json:",omitempty"`
	// TraceMaxEvents bounds trace memory (0 = 1e6 events).
	TraceMaxEvents int

	// Checks enables the simulation invariant harness: the engine verifies
	// monotone virtual time, stable same-instant event ordering and that no
	// cancelled or recycled event ever fires, and the run ends with a
	// fabric-wide packet-conservation audit (injected = delivered + dropped
	// + in flight). Run returns an error if any invariant is violated. Off
	// by default; the overhead is a few percent of event throughput.
	// (omitempty keeps reports from runs without the harness byte-stable.)
	Checks bool `json:",omitempty"`

	// Telemetry enables the run-wide metric registry, the periodic sweeper
	// and the Hermes decision audit log (Result.Telemetry). Off by default;
	// the instrumented hot paths then cost one nil check each.
	Telemetry bool
	// TelemetryIntervalNs is the sweep period in virtual nanoseconds
	// (0 = 1 ms).
	TelemetryIntervalNs int64
	// AuditMaxEntries caps the decision audit log
	// (0 = telemetry.DefaultAuditMaxEntries).
	AuditMaxEntries int

	// TimeSeries enables the flight recorder: bounded per-port queue/util
	// series, Hermes path-state occupancy and transition log, and transport
	// aggregates on Result.TimeSeries. Safe under RunParallel — each run
	// owns its recorder. (omitempty keeps reports byte-stable.)
	TimeSeries bool `json:",omitempty"`
	// TimeSeriesIntervalNs is the sampling period in virtual nanoseconds
	// (0 = timeseries.DefaultInterval, 100 us).
	TimeSeriesIntervalNs int64
	// TimeSeriesCap bounds the retained samples per series; older samples
	// fall off a ring (0 = timeseries.DefaultCap, or scenarioDefaultCap
	// when a Scenario is set — recovery metrics need the onset windows to
	// survive eviction).
	TimeSeriesCap int
	// TimeSeriesWriter, when non-nil, receives the recording as JSONL after
	// the run (implies TimeSeries). Like TraceWriter, writers are rejected
	// under RunParallel; use TimeSeries + Result.TimeSeries there.
	TimeSeriesWriter io.Writer `json:"-"`
	// TimeSeriesCSV, when non-nil, receives the recording as long-format
	// CSV after the run (implies TimeSeries).
	TimeSeriesCSV io.Writer `json:"-"`

	// Alerts, when non-nil, arms the SLO watchdog: declarative rules
	// (builtin pack and/or user rules) evaluated over the flight recorder
	// at every sample boundary, with a pending -> firing -> resolved
	// lifecycle reported on Result.Alerts. Implies TimeSeries. Evaluation
	// rides the virtual clock, so alert logs are byte-identical under
	// RunParallel. (omitempty keeps reports from unwatched runs
	// byte-stable.)
	Alerts *AlertsConfig `json:",omitempty"`

	// Status, when non-nil, attaches this run to a live status tracker:
	// progress, live metric snapshots and the flight recorder become
	// visible on the tracker's HTTP status plane (ServeStatus) while the
	// run executes. Publishing happens only at scheduling-slice boundaries
	// and run end — never on the per-packet hot path — and is purely
	// observational: results are byte-identical with or without it. Nil
	// falls back to the SetDefaultStatus process default, else disabled.
	Status *Status `json:"-"`

	// Perf, when non-nil, enables the performance observatory for this run:
	// the engine self-profiles event fires by kind (wall-time attribution
	// sampled 1-in-SampleEvery), a wall-clock sampler watches the Go runtime
	// (heap, GC, goroutines, CPU), and the run's Result carries a Perf block.
	// Like every observability layer it is off by default and costs one nil
	// check per event when disabled; when enabled it never changes
	// simulation behavior or report bytes — perf data is wall-clock and
	// machine-dependent, so it lives only in Result.Perf, the observatory
	// and the perf ledger, never in deterministic artifacts. Like Status,
	// the field is excluded from serialized configs (and hence from report
	// config hashes): profiling on vs off must not change artifact bytes.
	Perf *PerfOptions `json:"-"`

	// Checkpoint, when non-nil, arms the checkpoint plane: the run writes
	// versioned hermes-ckpt/v1 snapshot files (see internal/checkpoint) into
	// Dir at the configured interval and/or explicit instants, and — when the
	// run is interrupted through its context — at the interruption instant.
	// Checkpoint instants become scheduling-slice boundaries, so a
	// checkpointed config must keep checkpointing on restore for
	// byte-identical reports; Restore preserves it automatically.
	Checkpoint *CheckpointConfig `json:",omitempty"`

	// statusLabel names this run on the status plane. Set by the sweep
	// helpers (scheme/scenario/seed); Run derives one when empty.
	statusLabel string

	// ctx, when set by RunParallelOpts, lets a sweep interrupt this run at
	// its next scheduling slice. Unexported: single runs pick up the
	// SetDefaultRunContext process default.
	ctx context.Context

	// forkScenario is a scenario grafted onto a restored run at its fork
	// instant by Fork. Unlike Scenario it must not shape setup-time state —
	// the replay oracle was captured without it — so it is installed only
	// after replay verification. Unexported: only Fork sets it.
	forkScenario *Scenario
}

// scenarioDefaultCap is the flight-recorder ring cap scenario runs default
// to: ~3.3 s of samples at the stock 100 us interval, vs ~0.8 s from
// timeseries.DefaultCap. Recovery scoring reads pre-onset baselines out of
// the ring, so eviction of the onset window would silently zero the dip
// metrics and misattribute reroutes.
const scenarioDefaultCap = 32768

// Result carries everything a run measured.
type Result struct {
	Scheme   Scheme
	Workload string
	Load     float64

	FCT metrics.Report

	// SimDuration is the virtual time the run covered.
	SimDuration sim.Time
	// Events is the number of simulation events executed.
	Events uint64

	// VisibilitySwitchPair / VisibilityHostPair reproduce Table 2.
	VisibilitySwitchPair float64
	VisibilityHostPair   float64

	// Hermes telemetry (zero for other schemes).
	Reroutes        uint64
	TimeoutReroutes uint64
	FailureReroutes uint64
	ProbesSent      uint64
	ProbeBytes      uint64
	// ProbeOverhead is probe bytes/s over one access link's capacity.
	ProbeOverhead float64

	// REPS telemetry (zero for other schemes): sprays served from the
	// recycled-entropy cache vs fresh round-robin entropies, and cache
	// evictions triggered by ECN/retransmit/RTO signals.
	RecycledSprays   uint64 `json:",omitempty"`
	FreshSprays      uint64 `json:",omitempty"`
	EntropyEvictions uint64 `json:",omitempty"`

	// RepFlow telemetry (zero for other schemes): logical flows replicated,
	// races won by the replica copy, and payload bytes the cancelled losers
	// had injected (the scheme's bandwidth overhead).
	ReplicatedFlows uint64 `json:",omitempty"`
	ReplicaWins     uint64 `json:",omitempty"`
	RedundantBytes  uint64 `json:",omitempty"`

	// TraceCounts summarizes recorded trace events by kind (only when
	// Config.TraceWriter was set).
	TraceCounts map[string]int

	// GoodputGbps is the aggregate application-level goodput of finished
	// flows over the run, and FabricUtilization that goodput relative to
	// the intact bisection capacity.
	GoodputGbps       float64
	FabricUtilization float64

	// Telemetry holds the live registry, sweeper and audit log when
	// Config.Telemetry was set (nil otherwise). Use BuildReport to turn it
	// into a serializable Report.
	Telemetry *telemetry.RunData `json:"-"`

	// Trace holds the full trace recorder — events, path-residency spans,
	// per-flow per-hop delay aggregates and Hermes verdicts — when tracing
	// was enabled (nil otherwise).
	Trace *trace.Recorder `json:"-"`

	// TimeSeries holds the flight recorder — per-port queue/utilization
	// series, Hermes path census and transition log, transport aggregates —
	// when Config.TimeSeries (or a time-series writer) was set.
	TimeSeries *timeseries.Recorder `json:"-"`

	// Recovery scores every scenario failure activation — time-to-detect,
	// time-to-reroute, goodput-dip depth/duration/integral, post-clear
	// re-convergence — when Config.Scenario was set (nil otherwise).
	Recovery *Recovery `json:",omitempty"`

	// Alerts is the SLO watchdog's end-of-run report — every alert
	// episode with its lifecycle instants, cause and severity, plus the
	// lifecycle event log — when Config.Alerts was set (nil otherwise).
	Alerts *AlertReport `json:",omitempty"`

	// Perf is the run's performance-observatory block — events fired by
	// kind, sim-vs-wall ratio, queue peak, peak heap, GC time share — when
	// Config.Perf was set (nil otherwise). Wall-clock data: excluded from
	// BuildReport and every deterministic artifact.
	Perf *PerfReport `json:",omitempty"`

	// Checkpoints lists every scheduled checkpoint the run wrote, in
	// virtual-time order, when Config.Checkpoint was set. Interrupt
	// checkpoints travel on the InterruptedError instead. (omitempty keeps
	// reports from uncheckpointed runs byte-stable.)
	Checkpoints []CheckpointInfo `json:",omitempty"`
}

// Recovery and EventRecovery re-export the chaos engine's per-run resilience
// report so callers can name the types without reaching into internal/.
type (
	Recovery      = chaos.Recovery
	EventRecovery = chaos.EventRecovery
)

func (t Topology) toNet() net.Config {
	return net.Config{
		Leaves:        t.Leaves,
		Spines:        t.Spines,
		HostsPerLeaf:  t.HostsPerLeaf,
		HostRateBps:   t.HostRateBps,
		FabricRateBps: t.FabricRateBps,
		HostDelay:     t.HostDelayNs,
		FabricDelay:   t.FabricDelayNs,
		QueueFactor:   t.QueueFactor,
		CablesPerLink: t.CablesPerLink,
	}
}

// Run executes one experiment and returns its measurements.
func Run(cfg Config) (*Result, error) { return runWith(cfg, nil) }

// run carries one experiment's live state through setup, the scheduling
// loop and result assembly. Structuring the run this way is what lets the
// checkpoint plane (checkpoint.go) capture, verify and fork it: every
// component a snapshot must observe hangs off one value.
type run struct {
	cfg      Config
	spec     FailureSpec
	scenario *Scenario

	st       *Status
	sh       *statusd.RunHandle
	runLabel string

	eng *sim.Engine
	rng *sim.RNG
	nw  *net.Network
	tr  *transport.Transport
	gen *workload.Generator
	w   *wiring

	rd     *telemetry.RunData
	flight *timeseries.Recorder
	// flightLate marks a flight recorder that exists only because of a
	// forked-in scenario: it is created at setup (so wiring can register
	// series) but started only at the fork instant — recorder ticks are
	// engine events, and the replay oracle was captured without them.
	flightLate bool
	watchdog   *alert.Evaluator
	tracer     *trace.Recorder
	delayAcct  *net.DelayAccount
	vis        *metrics.VisibilitySampler
	runner     *chaos.Runner

	prof          *sim.Profile
	sampler       *perf.RuntimeSampler
	perfWallStart time.Time

	rec           *metrics.FCTRecorder
	dist          *workload.CDF
	baseBisection int64
	baseRTT       sim.Time
	hostRate      int64

	deliveredBytes int64
	flowsDone      int64
	groups         []*transport.MPTCPGroup
	repGroups      []*transport.RepFlowGroup
	lastArrival    sim.Time

	ckpt   *ckptPlan
	replay *replayPlan
}

// runWith executes one experiment, optionally replaying it up to a restored
// checkpoint first. Run, Restore and Fork all funnel through here.
func runWith(cfg Config, rp *replayPlan) (res *Result, err error) {
	r := &run{cfg: cfg, replay: rp}
	if err := r.validate(); err != nil {
		return nil, err
	}

	// Status publishing is observational only: the handle receives progress
	// at slice boundaries and the final summary, and a failed run (any error
	// from here on) is retired as such.
	r.st = statusFor(&r.cfg)
	r.runLabel = r.cfg.statusLabel
	if r.runLabel == "" {
		r.runLabel = fmt.Sprintf("%s/seed %d", r.cfg.Scheme, r.cfg.Seed)
	}
	if r.st != nil {
		r.sh = r.st.StartRun(r.runLabel, r.cfg.Flows)
		defer func() {
			if err != nil {
				r.sh.Fail(err)
			}
		}()
	}

	err = r.setup()
	if r.sampler != nil {
		// The deferred Stop is idempotent and covers every error return.
		defer r.sampler.Stop()
	}
	if err != nil {
		return nil, err
	}
	if err := r.loop(); err != nil {
		return nil, err
	}
	return r.finish()
}

// validate checks the config, lowers failure sugar and arms the checkpoint
// plan. It mutates only r.
func (r *run) validate() error {
	cfg := &r.cfg
	if cfg.Flows <= 0 {
		return fmt.Errorf("hermes: Flows must be positive")
	}
	if cfg.Load <= 0 || cfg.Load > 1.5 {
		return fmt.Errorf("hermes: Load %v out of range (0, 1.5]", cfg.Load)
	}
	if err := validateFailureSpec(cfg.Failure, cfg.Topology); err != nil {
		return fmt.Errorf("hermes: invalid Failure: %w", err)
	}
	// Timed failure kinds are sugar for a Scenario; lower them here so the
	// chaos runner is the single code path for everything time-varying.
	r.spec, r.scenario = cfg.Failure, cfg.Scenario
	switch r.spec.Kind {
	case FailureFlap, FailureSpineDown, FailureLeafDown:
		if r.scenario != nil {
			return fmt.Errorf("hermes: Failure kind %q is scenario sugar and cannot combine with Config.Scenario; add it as a scenario event instead", r.spec.Kind)
		}
		if r.spec.Kind == FailureFlap {
			r.scenario = flapScenario(r.spec, cfg.Topology)
		} else {
			r.scenario = switchDownScenario(r.spec)
		}
		r.spec = FailureSpec{}
	}
	if cfg.ctx == nil {
		cfg.ctx = defaultRunContext()
	}
	if cfg.Checkpoint != nil {
		p, err := newCkptPlan(cfg)
		if err != nil {
			return err
		}
		r.ckpt = p
	}
	return nil
}

// setup builds the whole simulation — fabric, scheme, transport, workload,
// observability — without running any virtual time.
func (r *run) setup() error {
	cfg := &r.cfg
	var err error
	if cfg.WorkloadFile != "" {
		r.dist, err = workload.LoadCDFFile(cfg.WorkloadFile)
	} else {
		r.dist, err = workload.ByName(cfg.Workload)
	}
	if err != nil {
		return err
	}
	maxBytes := cfg.MaxFlowBytes
	if maxBytes == 0 && r.dist == workload.DataMining {
		maxBytes = 35_000_000 // documented tail truncation
	}
	if maxBytes > 0 {
		r.dist = r.dist.Truncate(maxBytes)
	}

	eng := sim.NewEngine()
	r.eng = eng
	if cfg.Checks {
		eng.EnableChecks()
	}
	// Perf observatory: engine self-profiling plus a wall-clock Go runtime
	// sampler for the duration of the run (runWith defers the Stop).
	if cfg.Perf != nil {
		r.prof = eng.EnableProfile(cfg.Perf.SampleEvery)
		r.sampler = perf.StartRuntimeSampler(
			time.Duration(cfg.Perf.RuntimeIntervalMs) * time.Millisecond)
		r.perfWallStart = time.Now()
	}
	r.rng = sim.NewRNG(cfg.Seed)
	r.nw, err = net.NewLeafSpine(eng, r.rng, cfg.Topology.toNet())
	if err != nil {
		return err
	}
	nw := r.nw

	// Record the intact bisection first: the paper normalizes offered load
	// to the healthy fabric even in asymmetric and failure runs.
	r.baseBisection = nw.BisectionBps()

	// Topology-shaping failures must precede balancer construction so path
	// sets and weights see the final fabric.
	if err := injectTopologyFailure(nw, r.rng, r.spec); err != nil {
		return err
	}

	if cfg.Telemetry {
		r.rd = telemetry.NewRunData(eng, sim.Time(cfg.TelemetryIntervalNs), cfg.AuditMaxEntries)
		nw.AttachTelemetry(r.rd.Registry)
	}

	wantFlight := cfg.TimeSeries || cfg.TimeSeriesWriter != nil || cfg.TimeSeriesCSV != nil ||
		r.scenario != nil || cfg.Alerts != nil
	if wantFlight || cfg.forkScenario != nil {
		tsCap := cfg.TimeSeriesCap
		if tsCap == 0 && (r.scenario != nil || cfg.forkScenario != nil) {
			// Recovery metrics need the pre-onset baseline and the reroute
			// counters' pre-onset base to survive ring eviction; the stock
			// cap covers only ~0.8 s of samples. Runs longer than ~3 s
			// should still set TimeSeriesCap (or a coarser interval).
			tsCap = scenarioDefaultCap
		}
		r.flight = timeseries.NewRecorder(eng,
			sim.Time(cfg.TimeSeriesIntervalNs), tsCap, 0)
		nw.AttachFlightRecorder(r.flight)
		// Expose the live recording on the status plane (/api/series).
		r.st.AttachFlight(r.flight, r.runLabel)
		if cfg.Perf != nil {
			// Deterministic engine-health series (sim state sampled on the
			// sim clock — identical across reruns, unlike the wall-clock
			// runtime sampler, which never touches the recorder).
			r.flight.Register("perf.engine.pending", func() float64 { return float64(eng.Pending()) })
			r.flight.Register("perf.engine.fired", func() float64 { return float64(eng.Fired()) })
		}
		// A recorder that exists only for a forked-in scenario must not
		// tick before the fork instant; see flightLate.
		r.flightLate = !wantFlight
	}

	opts := transport.DefaultOptions()
	switch cfg.Protocol {
	case "", "dctcp":
	case "reno":
		opts.Protocol = transport.Reno
	case "timely":
		opts.Protocol = transport.Timely
	default:
		return fmt.Errorf("hermes: unknown protocol %q", cfg.Protocol)
	}
	switch {
	case cfg.ReorderTimeoutNs > 0:
		opts.ReorderTimeout = cfg.ReorderTimeoutNs
	case cfg.ReorderTimeoutNs == 0 && cfg.Scheme == SchemePresto:
		opts.ReorderTimeout = 400 * sim.Microsecond
	}

	// A late recorder (created only for a forked-in scenario) must stay
	// invisible to the scheme during replay: hooking Hermes into it changes
	// monitor transition state the parent run never had, and the replay
	// oracle would (rightly) refuse. applyFork attaches at the fork instant.
	schemeFlight := r.flight
	if r.flightLate {
		schemeFlight = nil
	}
	r.w, err = buildScheme(nw, r.rng, *cfg, r.rd, schemeFlight)
	if err != nil {
		return err
	}
	if cfg.TraceWriter != nil || cfg.PerfettoWriter != nil || cfg.Trace {
		max := cfg.TraceMaxEvents
		if max <= 0 {
			max = 1_000_000
		}
		tracer := &trace.Recorder{MaxEvents: max}
		r.tracer = tracer
		inner := r.w.balancerFor
		r.w.balancerFor = func(h *net.Host) transport.Balancer {
			return trace.Wrap(inner(h), tracer, eng)
		}
		r.delayAcct = nw.EnableDelayAccount()
		nw.SetTraceHooks(
			func(p *net.Packet) {
				if p.Kind == net.Data {
					tracer.NoteDrop(eng.Now(), p.Flow, p.Path)
				}
			},
			func(p *net.Packet) {
				if p.Kind == net.Data {
					tracer.NoteMark(eng.Now(), p.Flow, p.Path)
				}
			},
		)
	}
	r.tr = transport.New(nw, opts, r.w.balancerFor)
	if r.rd != nil {
		r.tr.AttachTelemetry(r.rd.Registry)
	}
	r.tr.AttachFlightRecorder(r.flight)
	r.w.afterTransport(nw, r.rng)

	// SLO watchdog: rules evaluate on the recorder's sample boundaries.
	// Wildcard rules re-resolve lazily, so probes registered later (scheme
	// census series) are still picked up.
	if cfg.Alerts != nil {
		rules, err := cfg.Alerts.rules(r.flight, nw)
		if err != nil {
			return err
		}
		r.watchdog, err = alert.New(r.flight, rules, cfg.Alerts.MaxEvents, 0)
		if err != nil {
			return fmt.Errorf("hermes: %w", err)
		}
		// Expose live alerts on the status plane (/api/alerts, ALERTS).
		r.st.AttachAlerts(r.watchdog, r.runLabel)
	}

	// Switch-malfunction failures can be installed any time before traffic.
	if err := injectSwitchFailure(nw, r.rng, r.spec); err != nil {
		return err
	}

	// Scenario events ride the engine timeline: inject/clear fire at their
	// scheduled virtual times, interleaved with traffic.
	if r.scenario != nil {
		cs, err := r.scenario.toChaos(cfg.Topology)
		if err != nil {
			return err
		}
		r.runner = chaos.NewRunner(chaos.Env{Net: nw, Rng: r.rng}, cs)
		r.attachRunnerAudit(r.runner)
		if err := r.runner.Install(eng); err != nil {
			return fmt.Errorf("hermes: scenario %q: %w", r.scenario.Name, err)
		}
	}

	r.rec = &metrics.FCTRecorder{}
	// Slowdown baseline: one base RTT plus line-rate serialization on the
	// access link — the conventional "ideal FCT" model for this literature.
	r.baseRTT = nw.ApproxBaseRTT()
	r.hostRate = nw.Cfg.HostRateBps
	baseRTT, hostRate := r.baseRTT, r.hostRate
	r.rec.IdealFCT = func(size int64) sim.Time {
		return baseRTT + sim.Time(size*8*sim.Second/hostRate)
	}
	r.tr.OnFlowDone = func(f *transport.Flow) {
		r.deliveredBytes += f.Size
		r.flowsDone++
		r.rec.Record(f.Size, f.FCT())
	}

	r.gen = &workload.Generator{
		Net: nw, Tr: r.tr, Rng: r.rng, Dist: r.dist,
		Load: cfg.Load, MaxFlows: cfg.Flows,
		BaseBisectionBps: r.baseBisection,
	}
	r.installStartHooks()
	r.gen.Start()
	if r.rd != nil {
		r.rd.Sweeper.Start()
	}
	if !r.flightLate {
		r.flight.Start()
	}

	if cfg.MeasureVisibility {
		r.vis = &metrics.VisibilitySampler{Tr: r.tr, Interval: sim.Millisecond}
		r.vis.Start(eng)
	}
	return nil
}

// attachRunnerAudit stamps chaos activations into the decision audit log so
// verdicts can be read against the failures that actually happened.
func (r *run) attachRunnerAudit(runner *chaos.Runner) {
	rd := r.rd
	if rd == nil {
		return
	}
	runner.OnEvent = func(a *chaos.Applied, cleared bool) {
		e := telemetry.AuditEntry{
			At: a.OnsetNs, Kind: telemetry.AuditChaos,
			Reason: telemetry.ReasonInject,
			Host:   -1, DstLeaf: -1, FromPath: -1, ToPath: -1,
			Note: a.Name + " " + a.Label,
		}
		if cleared {
			e.At, e.Reason = a.ClearNs, telemetry.ReasonClear
		}
		rd.Audit.Add(e)
	}
}

// installStartHooks wires the generator's flow-start path for the current
// scheme. Called at setup and again by applyFork when a what-if fork swaps
// the scheme mid-run.
func (r *run) installStartHooks() {
	switch r.cfg.Scheme {
	case SchemeMPTCP:
		k := r.cfg.MPTCPSubflows
		if k <= 0 {
			k = 4
		}
		r.gen.StartFlowFn = func(src, dst int, size int64) {
			g := r.tr.StartMPTCP(src, dst, size, k)
			g.OnDone = func(g *transport.MPTCPGroup) {
				r.deliveredBytes += g.Size
				r.flowsDone++
				r.rec.Record(g.Size, g.FCT())
			}
			r.groups = append(r.groups, g)
		}
	case SchemeRepFlow:
		thresh := r.cfg.RepFlowThresholdBytes
		if thresh <= 0 {
			thresh = transport.DefaultRepFlowThreshold
		}
		attachRepFlowObservability(r.tr, r.rd, r.flight)
		r.gen.StartFlowFn = func(src, dst int, size int64) {
			if size >= thresh {
				// Long flows run unreplicated and report through the
				// ordinary tr.OnFlowDone path.
				r.tr.StartFlow(src, dst, size)
				return
			}
			g := r.tr.StartRepFlow(src, dst, size)
			g.OnDone = func(g *transport.RepFlowGroup) {
				r.deliveredBytes += g.Size
				r.flowsDone++
				r.rec.Record(g.Size, g.FCT())
			}
			r.repGroups = append(r.repGroups, g)
		}
	default:
		r.gen.StartFlowFn = nil
	}
}

// loop runs the simulation in scheduling slices until all generated flows
// finish or the drain deadline after the last arrival passes. Checkpoint
// instants and the replay horizon become additional slice boundaries, so the
// boundary sequence is a pure function of the config — the property the
// byte-identical resume contract rests on.
func (r *run) loop() error {
	cfg, eng, gen, tr := &r.cfg, r.eng, r.gen, r.tr

	drain := cfg.DrainTimeoutNs
	if drain <= 0 {
		drain = 2 * sim.Second
	}

	const slice = 10 * sim.Millisecond
	for {
		if cfg.ctx != nil {
			if err := cfg.ctx.Err(); err != nil {
				return r.interrupted(err)
			}
		}
		// Loop-top state is the checkpoint instant for both scheduled and
		// interrupt captures, so replay verification happens here too.
		if r.replay != nil && !r.replay.done && eng.Now() >= r.replay.to {
			if err := r.verifyReplay(); err != nil {
				return err
			}
		}
		replaying := r.replay != nil && !r.replay.done
		if gen.Started() >= cfg.Flows && r.lastArrival == 0 {
			r.lastArrival = eng.Now()
		}
		if !replaying {
			if gen.Started() >= cfg.Flows &&
				(tr.ActiveCount() == 0 || eng.Now() > r.lastArrival+drain) {
				break
			}
			// now > 0 distinguishes a drained run from a pristine one whose
			// t=0 events have not fired yet (an interrupt checkpoint can
			// legitimately capture t=0).
			if eng.Pending() == 0 && eng.Now() > 0 {
				break
			}
		} else if eng.Pending() == 0 {
			return fmt.Errorf("hermes: replay drained at t=%dns before reaching checkpoint instant t=%dns: checkpoint does not belong to this run",
				int64(eng.Now()), int64(r.replay.to))
		}
		horizon := eng.Now() + slice
		if replaying && r.replay.to < horizon {
			horizon = r.replay.to
		}
		if r.ckpt != nil {
			if due, ok := r.ckpt.nextDue(); ok && sim.Time(due) < horizon {
				horizon = sim.Time(due)
			}
		}
		eng.Run(horizon)
		if err := r.fireDueCheckpoints(); err != nil {
			return err
		}
		if r.sh != nil {
			r.sh.Update(int64(eng.Now()), int64(gen.Started()), r.flowsDone, eng.Fired())
			if r.rd != nil {
				r.sh.SetMetrics(r.rd.Registry.Values())
			}
		}
	}
	return nil
}

// finish assembles the Result after the loop ends.
func (r *run) finish() (*Result, error) {
	cfg, eng, tr, rec := &r.cfg, r.eng, r.tr, r.rec
	flight, rd, scenario, runner := r.flight, r.rd, r.scenario, r.runner

	// Charge unfinished flows their elapsed time (Fig 17 accounting),
	// in deterministic order.
	leftovers := make([]*transport.Flow, 0, tr.ActiveCount())
	for _, f := range tr.ActiveFlows() {
		if f.Hidden {
			continue // MPTCP subflows are accounted through their group
		}
		leftovers = append(leftovers, f)
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].ID < leftovers[j].ID })
	for _, f := range leftovers {
		rec.RecordUnfinished(f.Size, eng.Now()-f.StartAt)
	}
	for _, g := range r.groups {
		if !g.Done {
			rec.RecordUnfinished(g.Size, eng.Now()-g.StartAt)
		}
	}
	for _, g := range r.repGroups {
		if !g.Done {
			rec.RecordUnfinished(g.Size, eng.Now()-g.StartAt)
		}
	}

	res := &Result{
		Scheme:      cfg.Scheme,
		Workload:    cfg.Workload,
		Load:        cfg.Load,
		FCT:         rec.Report(),
		SimDuration: eng.Now(),
		Events:      eng.Fired(),
	}
	if eng.Now() > 0 {
		res.GoodputGbps = float64(r.deliveredBytes) * 8 / float64(eng.Now())
		if r.baseBisection > 0 {
			res.FabricUtilization = res.GoodputGbps * 1e9 / float64(r.baseBisection)
		}
	}
	if r.vis != nil {
		r.vis.Stop()
		res.VisibilitySwitchPair = r.vis.SwitchPair()
		res.VisibilityHostPair = r.vis.HostPair()
	}
	r.w.fillTelemetry(res, eng)
	if cfg.Scheme == SchemeRepFlow {
		res.ReplicatedFlows = tr.RepFlowsStarted
		res.ReplicaWins = tr.ReplicaWins
		res.RedundantBytes = tr.RedundantBytes
	}
	if r.ckpt != nil {
		res.Checkpoints = r.ckpt.infos
	}
	if rd != nil {
		// Stop sweeping and take one final snapshot so every counter's end
		// state appears in the last series sample.
		rd.Sweeper.Stop()
		rd.Sweeper.Snap()
		res.Telemetry = rd
	}
	if flight != nil {
		// Stop sampling and take one final snapshot so the run's end state
		// always appears, then stamp identity for the exports.
		flight.Stop()
		flight.Snap()
		failureTag := string(cfg.Failure.Kind)
		if scenario != nil && cfg.Failure.Kind == FailureNone {
			failureTag = "scenario:" + scenario.Name
		}
		flight.Meta = timeseries.Meta{
			Schema:        timeseries.Schema,
			Scheme:        string(cfg.Scheme),
			Workload:      cfg.Workload,
			Load:          cfg.Load,
			Seed:          cfg.Seed,
			Failure:       failureTag,
			IntervalNs:    int64(flight.Interval),
			Cap:           flight.Cap,
			SimDurationNs: int64(eng.Now()),
		}
		res.TimeSeries = flight
		if runner != nil {
			if errs := runner.Finish(eng.Now()); len(errs) > 0 {
				return nil, fmt.Errorf("hermes: scenario %q: %w",
					scenario.Name, errors.Join(errs...))
			}
			trafficEnd := int64(r.lastArrival)
			if trafficEnd == 0 {
				trafficEnd = int64(eng.Now())
			}
			// Smooth goodput over ~5 ms of samples so elephant-flow bursts
			// do not end a dip that is still structurally there.
			smooth := int(5 * sim.Millisecond / flight.Interval)
			if smooth < chaos.DefaultSmooth {
				smooth = chaos.DefaultSmooth
			}
			res.Recovery = chaos.Compute(flight, runner.Log, chaos.Options{
				Cables: r.nw.Cables(), TrafficEndNs: trafficEnd,
				BaselineWindowNs: 10e6, Smooth: smooth,
			})
			res.Recovery.Scenario = scenario.Name
		}
		if cfg.TimeSeriesWriter != nil {
			if err := flight.WriteJSONL(cfg.TimeSeriesWriter); err != nil {
				return nil, err
			}
		}
		if cfg.TimeSeriesCSV != nil {
			if err := flight.WriteCSV(cfg.TimeSeriesCSV); err != nil {
				return nil, err
			}
		}
	}
	if r.watchdog != nil {
		res.Alerts = r.watchdog.Report()
	}
	if cfg.Checks {
		if vs := eng.Violations(); len(vs) > 0 {
			return nil, fmt.Errorf("hermes: engine invariants violated (%d): %s", len(vs), vs[0])
		}
		if err := r.nw.CheckConservation(); err != nil {
			return nil, err
		}
	}
	if tracer := r.tracer; tracer != nil {
		tracer.CloseOpenSpans(eng.Now())
		tracer.Meta = trace.Meta{
			Schema:        trace.SchemaV2,
			Scheme:        string(cfg.Scheme),
			Workload:      cfg.Workload,
			Load:          cfg.Load,
			Seed:          cfg.Seed,
			Failure:       string(cfg.Failure.Kind),
			BaseRTTNs:     int64(r.baseRTT),
			HostRateBps:   r.hostRate,
			SimDurationNs: int64(eng.Now()),
		}
		tracer.SetFlowHops(r.delayAcct)
		tracer.Flight = flight
		if rd != nil {
			tracer.AnnotateFromAudit(rd.Audit.Entries())
		}
		if cfg.TraceWriter != nil {
			if err := tracer.WriteJSONL(cfg.TraceWriter); err != nil {
				return nil, err
			}
		}
		if cfg.PerfettoWriter != nil {
			if err := tracer.WritePerfetto(cfg.PerfettoWriter); err != nil {
				return nil, err
			}
		}
		res.Trace = tracer
		res.TraceCounts = map[string]int{}
		for _, e := range tracer.Events {
			res.TraceCounts[string(e.Kind)]++
		}
		if tracer.Dropped > 0 {
			res.TraceCounts["dropped"] = tracer.Dropped
		}
	}
	if r.prof != nil {
		stats := r.sampler.Stop()
		res.Perf = perf.BuildRunReport(r.prof, int64(eng.Now()),
			time.Since(r.perfWallStart).Nanoseconds(), stats)
		obs := cfg.Perf.Observatory
		if obs == nil {
			obs = perf.Default()
		}
		if obs != nil {
			obs.AddRun(res.Perf)
			// Make the aggregate visible on the status plane (/api/perf,
			// perf.* metrics family) when a tracker is watching.
			r.st.AttachPerf(obs)
		}
	}
	if sh := r.sh; sh != nil {
		sum := statusd.RunSummary{
			Scheme: string(cfg.Scheme), Workload: cfg.Workload, Load: cfg.Load,
			Seed: cfg.Seed, SimDurationNs: int64(eng.Now()), Events: eng.Fired(),
			Flows: cfg.Flows, Unfinished: res.FCT.Unfinished,
			GoodputGbps: res.GoodputGbps,
			MeanMs:      res.FCT.Overall.MeanMs(), P99Ms: res.FCT.Overall.P99Ms(),
		}
		if scenario != nil {
			sum.Scenario = scenario.Name
		} else if cfg.Failure.Kind != FailureNone {
			sum.Scenario = string(cfg.Failure.Kind)
		}
		var finalVals map[string]float64
		var finalHists map[string]telemetry.HistogramStats
		if rd != nil {
			finalVals = rd.Registry.Values()
			finalHists = rd.Registry.Histograms()
		}
		sh.Finish(sum, finalVals, finalHists)
	}
	return res, nil
}

func injectTopologyFailure(nw *net.Network, rng *sim.RNG, spec FailureSpec) error {
	switch spec.Kind {
	case FailureNone, FailureRandomDrop, FailureBlackhole, FailureSpineBlackhole:
		return nil
	case FailureDegrade:
		frac, bps := spec.Fraction, spec.DegradedBps
		if frac <= 0 {
			frac = 0.2
		}
		if bps <= 0 {
			bps = 2_000_000_000
		}
		failure.DegradeLinks(nw, rng, frac, bps)
		return nil
	case FailureCutLink:
		failure.CutLink(nw, spec.CutLeaf, spec.CutSpine)
		return nil
	case FailureCutCable:
		cable := spec.CutCable
		if cable < 0 {
			cable = 0
		}
		failure.CutCable(nw, spec.CutLeaf, spec.CutSpine, cable)
		return nil
	case FailureDegradeLink:
		bps := spec.DegradedBps
		if bps <= 0 {
			bps = nw.FabricLinkRate(spec.CutLeaf, spec.CutSpine) / 2
		}
		nw.SetFabricLink(spec.CutLeaf, spec.CutSpine, bps)
		return nil
	case FailureDegradeSpine:
		bps := spec.DegradedBps
		if bps <= 0 {
			bps = 2_000_000_000
		}
		spine := spec.Spine
		if spine < 0 {
			spine = rng.Intn(nw.Cfg.Spines)
		}
		for l := 0; l < nw.Cfg.Leaves; l++ {
			nw.SetFabricLink(l, spine, bps)
		}
		return nil
	}
	return fmt.Errorf("hermes: unknown failure kind %q", spec.Kind)
}

func injectSwitchFailure(nw *net.Network, rng *sim.RNG, spec FailureSpec) error {
	pickSpine := func() *net.Switch {
		if spec.Spine >= 0 && spec.Spine < len(nw.Spines) {
			return nw.Spines[spec.Spine]
		}
		return nw.Spines[rng.Intn(len(nw.Spines))]
	}
	switch spec.Kind {
	case FailureRandomDrop:
		rate := spec.DropRate
		if rate <= 0 {
			rate = 0.02
		}
		(&failure.RandomDrop{Spine: pickSpine(), Rate: rate, Rng: rng}).Install()
	case FailureBlackhole:
		src, dst := spec.SrcLeaf, spec.DstLeaf
		if src == dst {
			src, dst = 0, nw.Cfg.Leaves-1
		}
		(&failure.Blackhole{
			Spine: pickSpine(),
			Match: failure.RackPairBlackhole(nw, src, dst),
		}).Install()
	case FailureSpineBlackhole:
		(&failure.Blackhole{
			Spine: pickSpine(),
			Match: func(src, dst int) bool { return true },
		}).Install()
	}
	return nil
}
