package hermes

import (
	"fmt"
	"sort"

	"github.com/hermes-repro/hermes/internal/chaos"
	"github.com/hermes-repro/hermes/internal/sim"
)

// ScenarioEvent is one timeline entry of a Scenario: a failure onset (Kind
// set on Failure) or a clear of an earlier one (Clear set). All times are
// virtual nanoseconds. The struct is plain JSON so scenarios can live in
// -config files and CLI flags.
type ScenarioEvent struct {
	// AtNs is the onset time.
	AtNs int64 `json:"at_ns"`
	// Name identifies the injection for Clear references and the recovery
	// report (auto-filled when empty).
	Name string `json:"name,omitempty"`
	// Clear names the inject event to revert; exclusive with Failure.
	Clear string `json:"clear,omitempty"`
	// DurationNs auto-clears the injection this long after each onset.
	DurationNs int64 `json:"duration_ns,omitempty"`
	// EveryNs repeats the injection with this period (flap); requires
	// DurationNs < EveryNs.
	EveryNs int64 `json:"every_ns,omitempty"`
	// Count bounds repetitions when EveryNs is set (0 = forever).
	Count int `json:"count,omitempty"`
	// Failure is the injection, reusing the static FailureSpec vocabulary
	// (all kinds except "flap", which IS the event machinery: use
	// EveryNs+DurationNs on a degrade-link or cut-link event).
	Failure FailureSpec `json:"failure,omitempty"`
}

// Scenario is a declarative failure timeline, deterministic per run seed:
// several failures may be active at once, and each may onset, clear, or
// repeat mid-run. Set it on Config.Scenario; the run then computes
// Result.Recovery from the flight recorder.
//
// Overlapping activations that re-rate the SAME link (two cut/degrade
// events on one leaf-spine pair) restore snapshots taken at their own
// onset, so clear them in reverse onset order or keep their scopes
// disjoint — hook-based failures (blackhole, random-drop) compose freely.
type Scenario struct {
	Name   string          `json:"name,omitempty"`
	Events []ScenarioEvent `json:"events"`
}

// toChaos lowers the JSON-able scenario to chaos injectors, applying the
// same parameter defaulting as the static failure path. Injector instances
// are freshly built per call, so one Scenario value is safe to share across
// RunParallel seeds.
func (s *Scenario) toChaos(topo Topology) (*chaos.Scenario, error) {
	out := &chaos.Scenario{Name: s.Name}
	for i, ev := range s.Events {
		ce := chaos.Event{
			At: sim.Time(ev.AtNs), Name: ev.Name, Clear: ev.Clear,
			Duration: sim.Time(ev.DurationNs), Every: sim.Time(ev.EveryNs),
			Count: ev.Count,
		}
		if ev.Clear == "" {
			if err := validateFailureSpec(ev.Failure, topo); err != nil {
				return nil, fmt.Errorf("hermes: scenario %q event %d: %w", s.Name, i, err)
			}
			inj, err := injectorFor(ev.Failure, topo)
			if err != nil {
				return nil, fmt.Errorf("hermes: scenario %q event %d: %w", s.Name, i, err)
			}
			ce.Inject = inj
		}
		out.Events = append(out.Events, ce)
	}
	return out, nil
}

// injectorFor builds the chaos injector for one failure spec, applying the
// facade's defaulting rules (zero rate -> 2%, same racks -> first/last...).
func injectorFor(spec FailureSpec, topo Topology) (chaos.Injector, error) {
	switch spec.Kind {
	case FailureRandomDrop:
		rate := spec.DropRate
		if rate == 0 {
			rate = 0.02
		}
		return &chaos.RandomDrop{Spine: spec.Spine, Rate: rate}, nil
	case FailureBlackhole:
		src, dst := spec.SrcLeaf, spec.DstLeaf
		if src == dst {
			src, dst = 0, topo.Leaves-1
		}
		return &chaos.Blackhole{Spine: spec.Spine, SrcLeaf: src, DstLeaf: dst}, nil
	case FailureSpineBlackhole:
		return &chaos.SpineBlackhole{Spine: spec.Spine}, nil
	case FailureDegrade:
		frac, bps := spec.Fraction, spec.DegradedBps
		if frac == 0 {
			frac = 0.2
		}
		if bps == 0 {
			bps = 2_000_000_000
		}
		return &chaos.DegradeFraction{Fraction: frac, Bps: bps}, nil
	case FailureCutLink:
		return &chaos.Link{Leaf: spec.CutLeaf, Spine: spec.CutSpine, Bps: 0}, nil
	case FailureCutCable:
		cable := spec.CutCable
		if cable < 0 {
			cable = 0
		}
		return &chaos.CutCable{Leaf: spec.CutLeaf, Spine: spec.CutSpine, Cable: cable}, nil
	case FailureDegradeLink:
		bps := spec.DegradedBps
		if bps == 0 {
			bps = topo.FabricRateBps / 2
		}
		return &chaos.Link{Leaf: spec.CutLeaf, Spine: spec.CutSpine, Bps: bps}, nil
	case FailureDegradeSpine:
		bps := spec.DegradedBps
		if bps == 0 {
			bps = 2_000_000_000
		}
		return &chaos.DegradeSpine{Spine: spec.Spine, Bps: bps}, nil
	case FailureSpineDown:
		return &chaos.SwitchDown{Leaf: false, Index: spec.Spine}, nil
	case FailureLeafDown:
		return &chaos.SwitchDown{Leaf: true, Index: spec.CutLeaf}, nil
	case FailureFlap:
		return nil, fmt.Errorf("kind %q is not a scenario injection: flapping IS the event machinery, use EveryNs+DurationNs on a degrade-link or cut-link event", spec.Kind)
	}
	return nil, fmt.Errorf("unknown failure kind %q", spec.Kind)
}

// validateFailureSpec hardens the facade against malformed failure
// parameters: out-of-range indices, negative rates and fractions are
// errors, never panics or silent clamps. Zero values keep their documented
// defaulting (rate 0 -> 2%, racks 0/0 -> first/last, spine -1 -> random).
func validateFailureSpec(spec FailureSpec, topo Topology) error {
	cables := topo.CablesPerLink
	if cables <= 0 {
		cables = 1
	}
	spineRange := func(spine int, what string) error {
		if spine < -1 || spine >= topo.Spines {
			return fmt.Errorf("%s: spine %d out of range [0, %d) (-1 = random)",
				what, spine, topo.Spines)
		}
		return nil
	}
	leafRange := func(leaf int, what, field string) error {
		if leaf < 0 || leaf >= topo.Leaves {
			return fmt.Errorf("%s: %s %d out of range [0, %d)", what, field, leaf, topo.Leaves)
		}
		return nil
	}
	cutLink := func(what string) error {
		if err := leafRange(spec.CutLeaf, what, "CutLeaf"); err != nil {
			return err
		}
		if spec.CutSpine < 0 || spec.CutSpine >= topo.Spines {
			return fmt.Errorf("%s: CutSpine %d out of range [0, %d)", what, spec.CutSpine, topo.Spines)
		}
		return nil
	}
	if spec.DegradedBps < 0 {
		return fmt.Errorf("%s: negative DegradedBps %d", spec.Kind, spec.DegradedBps)
	}

	switch spec.Kind {
	case FailureNone:
		return nil
	case FailureRandomDrop:
		if spec.DropRate < 0 || spec.DropRate > 1 {
			return fmt.Errorf("random-drop: DropRate %g out of range [0, 1]", spec.DropRate)
		}
		return spineRange(spec.Spine, "random-drop")
	case FailureBlackhole:
		if err := spineRange(spec.Spine, "blackhole"); err != nil {
			return err
		}
		if err := leafRange(spec.SrcLeaf, "blackhole", "SrcLeaf"); err != nil {
			return err
		}
		return leafRange(spec.DstLeaf, "blackhole", "DstLeaf")
	case FailureDegrade:
		if spec.Fraction < 0 || spec.Fraction > 1 {
			return fmt.Errorf("degrade: Fraction %g out of range [0, 1]", spec.Fraction)
		}
		return nil
	case FailureCutLink, FailureDegradeLink:
		return cutLink(string(spec.Kind))
	case FailureCutCable:
		if err := cutLink("cut-cable"); err != nil {
			return err
		}
		if spec.CutCable < -1 || spec.CutCable >= cables {
			return fmt.Errorf("cut-cable: CutCable %d out of range [0, %d)", spec.CutCable, cables)
		}
		return nil
	case FailureFlap:
		if err := cutLink("flap"); err != nil {
			return err
		}
		if spec.FlapPeriodNs < 0 || spec.FlapDownNs < 0 {
			return fmt.Errorf("flap: negative FlapPeriodNs/FlapDownNs")
		}
		if spec.FlapPeriodNs > 0 && spec.FlapDownNs >= spec.FlapPeriodNs {
			return fmt.Errorf("flap: FlapDownNs %d >= FlapPeriodNs %d",
				spec.FlapDownNs, spec.FlapPeriodNs)
		}
		return nil
	case FailureDegradeSpine, FailureSpineDown, FailureSpineBlackhole:
		return spineRange(spec.Spine, string(spec.Kind))
	case FailureLeafDown:
		if spec.CutLeaf < -1 || spec.CutLeaf >= topo.Leaves {
			return fmt.Errorf("leaf-down: CutLeaf %d out of range [0, %d) (-1 = random)",
				spec.CutLeaf, topo.Leaves)
		}
		return nil
	}
	return fmt.Errorf("unknown failure kind %q", spec.Kind)
}

// flapScenario lowers the static flap failure onto the scenario event
// machinery — the single code path for all timed failures. Defaults (500 ms
// period, half of it down) live here and only here.
func flapScenario(spec FailureSpec, topo Topology) *Scenario {
	period := spec.FlapPeriodNs
	if period <= 0 {
		period = int64(500 * sim.Millisecond)
	}
	down := spec.FlapDownNs
	if down <= 0 {
		down = period / 2
	}
	inner := FailureSpec{
		Kind: FailureDegradeLink, CutLeaf: spec.CutLeaf, CutSpine: spec.CutSpine,
		DegradedBps: spec.DegradedBps,
	}
	if spec.DegradedBps == 0 {
		inner.Kind = FailureCutLink // flap's documented 0 = cut
	}
	return &Scenario{Name: "flap", Events: []ScenarioEvent{{
		AtNs: period - down, Name: "flap",
		DurationNs: down, EveryNs: period,
		Failure: inner,
	}}}
}

// switchDownScenario lowers a static spine-down/leaf-down failure onto the
// scenario machinery: one injection at t=0 that never clears.
func switchDownScenario(spec FailureSpec) *Scenario {
	return &Scenario{Name: string(spec.Kind), Events: []ScenarioEvent{{
		AtNs: 0, Name: string(spec.Kind), Failure: spec,
	}}}
}

// ScenarioNames lists the built-in scenario library in stable order.
func ScenarioNames() []string {
	names := make([]string, 0, len(builtinScenarios))
	for name := range builtinScenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuiltinScenario returns a library scenario sized for the topology.
func BuiltinScenario(name string, topo Topology) (*Scenario, error) {
	fn, ok := builtinScenarios[name]
	if !ok {
		return nil, fmt.Errorf("hermes: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return fn(topo), nil
}

// Library onset: 20 ms, past slow-start and the arrival ramp so the
// pre-onset goodput baseline reflects steady state.
const scenarioOnsetNs = int64(20e6)

var builtinScenarios = map[string]func(Topology) *Scenario{
	// blackhole: the §5.3.3 rack-pair blackhole at spine 0, onset at 20 ms,
	// never cleared — half the cross-rack host pairs lose their spine-0
	// paths while everything else rides through.
	"blackhole": func(topo Topology) *Scenario {
		return &Scenario{Name: "blackhole", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "bh",
				Failure: FailureSpec{Kind: FailureBlackhole, Spine: 0}},
		}}
	},
	// spine-blackhole: spine 0 silently eats everything it carries from
	// 20 ms on, links up, never cleared — the acceptance scenario. Hermes
	// reroutes off the dead spine within a few RTOs; ECMP keeps hashing half
	// its flows into the hole and Presto* loses packets on every sprayed
	// flow, so both stay in the goodput dip until traffic ends.
	"spine-blackhole": func(topo Topology) *Scenario {
		return &Scenario{Name: "spine-blackhole", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "bh",
				Failure: FailureSpec{Kind: FailureSpineBlackhole, Spine: 0}},
		}}
	},
	// blackhole-recover: same, cleared at 45 ms — measures re-convergence
	// and the FailedHold stickiness after restoration.
	"blackhole-recover": func(topo Topology) *Scenario {
		return &Scenario{Name: "blackhole-recover", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "bh",
				Failure: FailureSpec{Kind: FailureBlackhole, Spine: 0}},
			{AtNs: 45e6, Clear: "bh"},
		}}
	},
	// drop-recover: the 2% silent random drop, 20..45 ms.
	"drop-recover": func(topo Topology) *Scenario {
		return &Scenario{Name: "drop-recover", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "drop",
				Failure: FailureSpec{Kind: FailureRandomDrop, Spine: 0, DropRate: 0.02}},
			{AtNs: 45e6, Clear: "drop"},
		}}
	},
	// multi: two simultaneous failures on different spines — a blackhole
	// and a random drop overlapping for 20 ms (the CI smoke scenario).
	"multi": func(topo Topology) *Scenario {
		return &Scenario{Name: "multi", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "bh",
				Failure: FailureSpec{Kind: FailureBlackhole, Spine: 0}},
			{AtNs: 25e6, Name: "drop",
				Failure: FailureSpec{Kind: FailureRandomDrop, Spine: topo.Spines - 1, DropRate: 0.02}},
			{AtNs: 45e6, Clear: "bh"},
			{AtNs: 50e6, Clear: "drop"},
		}}
	},
	// flap: a gray link flapping to 10% capacity, 8 ms down out of every
	// 20 ms, forever — detection AND recovery every cycle.
	"flap": func(topo Topology) *Scenario {
		return &Scenario{Name: "flap", Events: []ScenarioEvent{
			{AtNs: 12e6, Name: "flap", DurationNs: 8e6, EveryNs: 20e6,
				Failure: FailureSpec{Kind: FailureDegradeLink,
					DegradedBps: topo.FabricRateBps / 10}},
		}}
	},
	// spine-down-recover: a whole spine dies at 20 ms and returns at 45 ms.
	"spine-down-recover": func(topo Topology) *Scenario {
		return &Scenario{Name: "spine-down-recover", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "down",
				Failure: FailureSpec{Kind: FailureSpineDown, Spine: 0}},
			{AtNs: 45e6, Clear: "down"},
		}}
	},
	// degrade-recover: one link to half rate, 20..40 ms.
	"degrade-recover": func(topo Topology) *Scenario {
		return &Scenario{Name: "degrade-recover", Events: []ScenarioEvent{
			{AtNs: scenarioOnsetNs, Name: "deg",
				Failure: FailureSpec{Kind: FailureDegradeLink}},
			{AtNs: 40e6, Clear: "deg"},
		}}
	},
}

// RandomScenario generates a deterministic chaos timeline: intensity in
// [0, 1] scales the number of concurrent failures (1..3) and their
// severity. Onsets land in [2, 10) ms and every failure clears by ~35 ms,
// so size the run (Flows, Load) to outlast the timeline — a one-shot event
// past run end is an error by design. Rate-changing failures get distinct
// spines so their snapshots never collide; extras degrade to random drops.
func RandomScenario(topo Topology, seed int64, intensity float64) *Scenario {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	rng := sim.NewRNG(seed ^ 0x5eed)
	n := 1 + int(intensity*2.99)
	sc := &Scenario{Name: fmt.Sprintf("random-%d", seed)}
	kinds := []FailureKind{
		FailureBlackhole, FailureRandomDrop, FailureCutLink,
		FailureDegradeLink, FailureSpineDown,
	}
	usedSpines := map[int]bool{}
	pickFreeSpine := func() (int, bool) {
		if len(usedSpines) >= topo.Spines {
			return 0, false
		}
		for {
			s := rng.Intn(topo.Spines)
			if !usedSpines[s] {
				usedSpines[s] = true
				return s, true
			}
		}
	}
	for i := 0; i < n; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		onsetNs := int64(2e6) + int64(rng.Intn(8e6))
		durNs := int64(15e6) + int64(rng.Intn(10e6))
		spec := FailureSpec{Kind: kind}
		switch kind {
		case FailureBlackhole:
			spec.Spine = rng.Intn(topo.Spines)
			spec.SrcLeaf, spec.DstLeaf = rng.TwoDistinct(topo.Leaves)
		case FailureRandomDrop:
			spec.Spine = rng.Intn(topo.Spines)
			spec.DropRate = 0.01 + 0.04*intensity*rng.Float64()
		case FailureCutLink, FailureDegradeLink:
			spine, ok := pickFreeSpine()
			if !ok {
				spec = FailureSpec{Kind: FailureRandomDrop,
					Spine: rng.Intn(topo.Spines), DropRate: 0.02}
				break
			}
			spec.CutLeaf, spec.CutSpine = rng.Intn(topo.Leaves), spine
			spec.DegradedBps = topo.FabricRateBps / 10
		case FailureSpineDown:
			spine, ok := pickFreeSpine()
			if !ok {
				spec = FailureSpec{Kind: FailureRandomDrop,
					Spine: rng.Intn(topo.Spines), DropRate: 0.02}
				break
			}
			spec.Spine = spine
		}
		name := fmt.Sprintf("%s-%d", spec.Kind, i)
		sc.Events = append(sc.Events,
			ScenarioEvent{AtNs: onsetNs, Name: name, Failure: spec},
			ScenarioEvent{AtNs: onsetNs + durNs, Clear: name})
	}
	return sc
}
