package hermes

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// reportBytes serializes a result through the repo's canonical byte-stable
// encoding (the same one the golden test pins), so comparisons cover every
// field the report carries: FCT percentiles, counters, series, audit log.
func reportBytes(t *testing.T, cfg Config, res *Result) []byte {
	t.Helper()
	rep, err := BuildReport(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the determinism cross-check for the
// worker pool: RunParallel over N seeds must produce byte-identical
// serialized results to running the same seeds one at a time, for every
// scheme. A worker-count or scheduling-order leak into simulation state
// breaks this immediately.
func TestParallelMatchesSequential(t *testing.T) {
	seeds := Seeds(1, 3)
	if testing.Short() {
		seeds = Seeds(1, 2)
	}
	// REPS and RepFlow ride along: REPS' fresh-entropy fallback is a plain
	// round-robin counter and RepFlow's race resolution is pure event order,
	// so both must serialize byte-identically regardless of worker count.
	for _, scheme := range []Scheme{SchemeECMP, SchemeLetFlow, SchemeHermes, SchemeREPS, SchemeRepFlow} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig()
			cfg.Scheme = scheme

			seq := make([]*Result, len(seeds))
			for i, s := range seeds {
				c := cfg
				c.Seed = s
				res, err := Run(c)
				if err != nil {
					t.Fatalf("sequential seed %d: %v", s, err)
				}
				seq[i] = res
			}

			par, err := RunParallelOpts(context.Background(), cfg, seeds,
				ParallelOptions{Workers: len(seeds)})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}

			for i, s := range seeds {
				c := cfg
				c.Seed = s
				a, b := reportBytes(t, c, seq[i]), reportBytes(t, c, par[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("seed %d: parallel result differs from sequential (%d vs %d bytes)",
						s, len(b), len(a))
				}
			}
		})
	}
}

// TestParallelCancellation: a pre-cancelled context must abort the sweep
// with context.Canceled and no partial results.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunParallelOpts(ctx, goldenConfig(), Seeds(1, 4), ParallelOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelRejectsSharedTracer: one TraceWriter cannot be shared by
// concurrent runs; the pool must refuse rather than interleave JSONL.
func TestParallelRejectsSharedTracer(t *testing.T) {
	cfg := goldenConfig()
	cfg.TraceWriter = &bytes.Buffer{}
	if _, err := RunParallel(cfg, Seeds(1, 2)); err == nil {
		t.Fatal("shared TraceWriter accepted")
	}
}

// TestChecksCleanUnderFailures runs the full invariant harness
// (Config.Checks: engine time/ordering/lifecycle checks plus the packet
// conservation ledger) under the failure injectors most likely to unbalance
// the ledger — silent blackhole drops and a cut link — and requires a clean
// bill of health.
func TestChecksCleanUnderFailures(t *testing.T) {
	for _, f := range []FailureSpec{
		{Kind: FailureNone},
		{Kind: FailureBlackhole, Spine: 0},
		{Kind: FailureCutLink, CutLeaf: 0, CutSpine: 1},
	} {
		f := f
		name := string(f.Kind)
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig()
			cfg.Telemetry = false
			cfg.TelemetryIntervalNs = 0
			cfg.Failure = f
			cfg.Checks = true
			if _, err := Run(cfg); err != nil {
				t.Fatalf("invariant harness tripped: %v", err)
			}
		})
	}
}

// TestChecksCleanWithReplication points the same invariant harness at
// RepFlow: a cancelled loser's in-flight packets must drain through the
// ledger as ordinary deliveries (or accounted failure drops) — never as
// losses — and the disarmed RTO timer must not resurrect sender state. Both
// a silent blackhole and a random-dropping spine race cancellations against
// in-flight traffic.
func TestChecksCleanWithReplication(t *testing.T) {
	for _, f := range []FailureSpec{
		{Kind: FailureNone},
		{Kind: FailureBlackhole, Spine: 0},
		{Kind: FailureRandomDrop, Spine: 0, DropRate: 0.05},
	} {
		f := f
		name := string(f.Kind)
		if name == "" {
			name = "none"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig()
			cfg.Scheme = SchemeRepFlow
			cfg.Telemetry = false
			cfg.TelemetryIntervalNs = 0
			cfg.Failure = f
			cfg.Checks = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("invariant harness tripped: %v", err)
			}
			if res.ReplicatedFlows == 0 {
				t.Fatal("no flows replicated; the ledger was not exercised")
			}
		})
	}
}

// TestChecksOffByDefault pins that the harness really is opt-in: the zero
// config value must not enable it (it costs a branch per event).
func TestChecksOffByDefault(t *testing.T) {
	if goldenConfig().Checks {
		t.Fatal("Checks should default to false")
	}
}
