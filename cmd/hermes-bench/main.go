// hermes-bench regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index). Each experiment prints the same
// rows or series the paper reports; absolute numbers come from this
// repository's simulator, so compare shapes, orderings and ratios rather
// than raw values (EXPERIMENTS.md records both).
//
// Usage:
//
//	hermes-bench -exp fig12              # one experiment
//	hermes-bench -exp all                # the whole evaluation
//	hermes-bench -exp fig13 -flows 2000  # higher fidelity
//	hermes-bench -list                   # enumerate experiments
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/perf"
	"github.com/hermes-repro/hermes/internal/textplot"
)

// options are shared across experiments.
type options struct {
	flows int   // flows per data point
	seed  int64 // base seed
	full  bool  // paper-scale topology (8x8x16) instead of reduced (4x4x8)
}

// CSV mirroring: when -csv DIR is set, every table printed through
// header()/row() is also written as DIR/<experiment>_<n>.csv. When -plot is
// set, each table is additionally rendered as ASCII bars.
// sweepWorkers bounds the concurrent simulations a load sweep runs; the
// -workers flag overrides it (default GOMAXPROCS).
var sweepWorkers = runtime.GOMAXPROCS(0)

var (
	csvDir     string
	plotTables bool
	currentExp string
	tableSeq   int
	csvFile    *os.File

	plotCols   []string
	plotSeries []textplot.Series
)

func beginCSVTable(cols []string) {
	endCSVTable()
	tableSeq++
	plotCols = cols[1:]
	if csvDir == "" {
		return
	}
	name := filepath.Join(csvDir, fmt.Sprintf("%s_%d.csv", currentExp, tableSeq))
	f, err := os.Create(name)
	if err != nil {
		log.Fatalf("csv: %v", err)
	}
	csvFile = f
	fmt.Fprintln(f, strings.Join(cols, ","))
}

func csvRow(vals []string) {
	if csvFile != nil {
		fmt.Fprintln(csvFile, strings.Join(vals, ","))
	}
}

func plotRow(name string, vals []float64) {
	if !plotTables {
		return
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	plotSeries = append(plotSeries, textplot.Series{Label: name, Values: cp})
}

func endCSVTable() {
	if csvFile != nil {
		csvFile.Close()
		csvFile = nil
	}
	if plotTables && len(plotSeries) > 0 {
		fmt.Println()
		if err := textplot.Bars(os.Stdout, "(scaled bars)", plotCols, plotSeries, 40); err != nil {
			log.Fatal(err)
		}
	}
	plotSeries = nil
}

type experiment struct {
	name  string
	what  string
	runFn func(o options)
}

var registry []experiment

func register(name, what string, fn func(o options)) {
	registry = append(registry, experiment{name, what, fn})
}

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list) or 'all'")
		flows  = flag.Int("flows", 600, "flows per data point")
		seed   = flag.Int64("seed", 1, "base random seed")
		full   = flag.Bool("full", false, "use the paper's full 8x8x16 topology (slower)")
		list   = flag.Bool("list", false, "list experiments and exit")
		csvOut = flag.String("csv", "", "also write each table as CSV into this directory")
		plot   = flag.Bool("plot", false, "render each table as ASCII bars too")

		workers = flag.Int("workers", 0, "worker-pool size for multi-seed sweeps (0 = GOMAXPROCS)")

		telem   = flag.Bool("telemetry", false, "run every experiment with telemetry enabled")
		repDir  = flag.String("report", "", "write one telemetry report JSON per run into this directory (implies -telemetry)")
		audDir  = flag.String("audit", "", "write one Hermes audit JSONL per run into this directory (implies -telemetry)")
		trcDir  = flag.String("trace", "", "write one flow-trace JSONL per run into this directory (analyze with hermes-trace)")
		tsDir   = flag.String("timeseries", "", "write one flight-recorder time-series JSONL per run into this directory (view with hermes-trace -timeline)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

		perfBench  = flag.Bool("perf", false, "run the pinned microbenchmarks, append results to the perf ledger, then exit")
		perfCount  = flag.Int("perf-count", 5, "repetitions per pinned benchmark in -perf mode")
		perfLedger = flag.String("perf-ledger", "BENCH_perf.json", "perf ledger file read and appended by -perf")
		perfBase   = flag.Bool("perf-baseline", false, "in -perf mode, compare new measurements against the latest ledger entries")
		perfNote   = flag.String("perf-note", "", "free-form note stamped on ledger entries written by -perf")
		perfRuns   = flag.Bool("perf-runs", false, "profile every experiment run and print the perf observatory aggregate at exit")

		statusAddr  = flag.String("status", "", `serve the live status plane on this address while experiments run (e.g. ":8080"; see /api/progress, /metrics)`)
		progress    = flag.Bool("progress", false, "print a progress line (runs done, ETA) to stderr every few seconds")
		progressSec = flag.Int("progress-interval", 5, "seconds between -progress lines")
		version     = flag.Bool("version", false, "print build version and VCS revision, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(hermes.VersionString())
		return
	}
	if *perfBench {
		runPerfLedger(*perfLedger, *perfCount, *perfNote, *perfBase)
		return
	}
	if *perfRuns {
		perfRunsOn = true
		obs := hermes.NewPerfObservatory()
		hermes.SetDefaultPerfObservatory(obs)
		defer printPerfAggregate(obs)
	}
	plotTables = *plot
	hermes.SetDefaultWorkers(*workers)

	// SIGINT/SIGTERM cancel every pooled and in-flight simulation at its
	// next scheduling slice; mustRun funnels the cancellations through
	// interruptExit, which flushes the partial table before exiting non-zero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	benchCtx = ctx
	hermes.SetDefaultRunContext(ctx)
	if *statusAddr != "" || *progress {
		// Experiments build their Configs internally, so observability rides
		// the process-wide default tracker rather than Config.Status.
		st := hermes.NewStatus()
		statusTracker = st
		hermes.SetDefaultStatus(st)
		if *statusAddr != "" {
			srv, err := hermes.ServeStatus(*statusAddr, st)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "status plane on %s\n", srv.URL())
		}
		if *progress {
			stop := st.StartLogging(os.Stderr, time.Duration(*progressSec)*time.Second)
			defer stop()
		}
	}
	if *workers > 0 {
		sweepWorkers = *workers
	}
	if *csvOut != "" {
		if err := os.MkdirAll(*csvOut, 0o755); err != nil {
			log.Fatal(err)
		}
		csvDir = *csvOut
	}
	for _, d := range []struct {
		flag string
		dst  *string
	}{{*repDir, &reportDir}, {*audDir, &auditDir}, {*trcDir, &traceDir}, {*tsDir, &timeseriesDir}} {
		if d.flag == "" {
			continue
		}
		if err := os.MkdirAll(d.flag, 0o755); err != nil {
			log.Fatal(err)
		}
		*d.dst = d.flag
	}
	telemetryOn = *telem || reportDir != "" || auditDir != ""

	sort.Slice(registry, func(i, j int) bool { return registry[i].name < registry[j].name })

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range registry {
			fmt.Printf("  %-8s %s\n", e.name, e.what)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	if *cpuProf != "" {
		stop, err := perf.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		if err := perf.WriteHeapProfile(*memProf); err != nil {
			log.Fatal(err)
		}
	}()

	o := options{flows: *flows, seed: *seed, full: *full}
	if *exp == "all" {
		for _, e := range registry {
			runOne(e, o)
		}
		return
	}
	for _, e := range registry {
		if e.name == *exp {
			runOne(e, o)
			return
		}
	}
	log.Fatalf("unknown experiment %q (use -list)", *exp)
}

// statusTracker is the -status/-progress tracker (nil when neither is set).
var statusTracker *hermes.Status

// benchCtx carries the SIGINT/SIGTERM cancellation into every experiment
// that takes an explicit context (the chaos matrix sweep).
var benchCtx context.Context = context.Background()

// interruptOnce elects the single goroutine that reports an interrupt;
// sweeps run data points concurrently and every one of them fails with a
// cancellation at the same slice boundary.
var interruptOnce sync.Once

// interruptExit flushes the current experiment's partially-written table,
// reports where the run stopped, and exits 130. Never returns: losers of the
// race park until the winner's os.Exit tears the process down.
func interruptExit(err error) {
	interruptOnce.Do(func() {
		endCSVTable()
		fmt.Fprintf(os.Stderr, "\ninterrupted during %s (%v); partial tables flushed\n", currentExp, err)
		os.Exit(130)
	})
	select {}
}

func runOne(e experiment, o options) {
	fmt.Printf("\n================ %s: %s ================\n", e.name, e.what)
	statusTracker.Note(e.name + ": " + e.what)
	currentExp, tableSeq = e.name, 0
	start := time.Now()
	e.runFn(o)
	endCSVTable()
	fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.name, time.Since(start).Seconds())
}
