package main

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/metrics"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func init() {
	register("fig1", "flowlet switching cannot split stable flows (CONGA vs ideal rerouting)", fig1)
	register("fig2", "congestion mismatch: Presto spraying under asymmetry + UDP cross traffic", fig2)
	register("fig3", "congestion mismatch persists with capacity-proportional weights", fig3)
	register("fig4", "CONGA hidden terminal: flip-flopping on stale state", fig4)
}

func microFabric(leaves, spines, hpl int, hostBps, fabricBps int64) (*sim.Engine, *net.Network) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hpl,
		HostRateBps: hostBps, FabricRateBps: fabricBps,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		panic(err)
	}
	return eng, nw
}

// pinThen pins specific flows to specific paths until a deadline and then
// delegates to an inner balancer, letting the micro-benchmarks reproduce the
// paper's constructed placements exactly.
type pinThen struct {
	inner transport.Balancer
	eng   *sim.Engine
	until sim.Time
	pin   map[uint64]int
}

func (p *pinThen) Name() string { return p.inner.Name() }
func (p *pinThen) SelectPath(f *transport.Flow) int {
	if p.eng.Now() < p.until {
		if path, ok := p.pin[f.ID]; ok {
			return path
		}
	}
	return p.inner.SelectPath(f)
}
func (p *pinThen) OnSent(f *transport.Flow, path, bytes int)     { p.inner.OnSent(f, path, bytes) }
func (p *pinThen) OnAck(f *transport.Flow, e transport.AckEvent) { p.inner.OnAck(f, e) }
func (p *pinThen) OnRetransmit(f *transport.Flow, path int)      { p.inner.OnRetransmit(f, path) }
func (p *pinThen) OnTimeout(f *transport.Flow, path int)         { p.inner.OnTimeout(f, path) }
func (p *pinThen) OnFlowStart(f *transport.Flow)                 { p.inner.OnFlowStart(f) }
func (p *pinThen) OnFlowDone(f *transport.Flow)                  { p.inner.OnFlowDone(f) }

// fig1 reproduces Example 1: small flows A, B on path 0 and large flows C, D
// colliding on path 1. Once A and B finish, path 0 sits idle. A scheme that
// can only reroute on flowlet gaps never moves C or D (steady DCTCP produces
// no gaps); ideal rerouting almost halves the large flows' completion times.
func fig1(o options) {
	const (
		smallSize = 12_500_000
		largeSize = 62_500_000
		pinFor    = 5 * sim.Millisecond
	)
	type outcome struct {
		name           string
		largeA, largeB float64 // ms
	}
	run := func(name string, mk func(eng *sim.Engine, nw *net.Network) func(h *net.Host) transport.Balancer) outcome {
		eng, nw := microFabric(2, 2, 4, 10e9, 10e9)
		tr := transport.New(nw, transport.DefaultOptions(), mk(eng, nw))
		tr.StartFlow(0, 4, smallSize) // small A
		tr.StartFlow(1, 5, smallSize) // small B
		c := tr.StartFlow(2, 6, largeSize)
		d := tr.StartFlow(3, 7, largeSize)
		eng.Run(2 * sim.Second)
		return outcome{name, float64(c.FCT()) / 1e6, float64(d.FCT()) / 1e6}
	}

	// CONGA: pinned placement for the first 5 ms, then flowlet switching.
	conga := run("CONGA (flowlets)", func(eng *sim.Engine, nw *net.Network) func(h *net.Host) transport.Balancer {
		lb.InstallConga(nw, nw.Rng, lb.DefaultCongaParams())
		return func(h *net.Host) transport.Balancer {
			return &pinThen{
				inner: &lb.PassThrough{Scheme: "CONGA"},
				eng:   eng, until: pinFor,
				pin: map[uint64]int{1: 0, 2: 0, 3: 1, 4: 1},
			}
		}
	})

	// Hermes: same placement, then timely rerouting with relaxed R so the
	// reroute is not blocked by the two larges' high share (the paper's
	// large fabrics leave colliding larges well under the R gate).
	hermesOut := run("Hermes (timely)", func(eng *sim.Engine, nw *net.Network) func(h *net.Host) transport.Balancer {
		p := core.DefaultParams(nw)
		p.ProbeInterval = 100 * sim.Microsecond
		p.RBps = 0.6 * float64(nw.Cfg.HostRateBps)
		mons := []*core.Monitor{core.NewMonitor(nw, 0, p), core.NewMonitor(nw, 1, p)}
		core.InstallProbeResponders(nw)
		agents := []*net.Host{nw.Hosts[0], nw.Hosts[4]}
		core.NewProber(mons[0], nw.Rng, agents)
		core.NewProber(mons[1], nw.Rng, agents)
		return func(h *net.Host) transport.Balancer {
			return &pinThen{
				inner: core.New(mons[h.Leaf], nw.Rng, h.ID),
				eng:   eng, until: pinFor,
				pin: map[uint64]int{1: 0, 2: 0, 3: 1, 4: 1},
			}
		}
	})

	// Ideal: flow D is moved to path 0 at the moment the smalls are done
	// (approximated by a fixed 22 ms switch point, the smalls' completion).
	ideal := run("ideal rerouting", func(eng *sim.Engine, nw *net.Network) func(h *net.Host) transport.Balancer {
		return func(h *net.Host) transport.Balancer {
			pin := map[uint64]int{1: 0, 2: 0, 3: 1, 4: 1}
			if h.ID == 3 {
				// After the smalls complete, D's pin flips to path 0.
				return &switchAt{eng: eng, at: 23 * sim.Millisecond, before: 1, after: 0}
			}
			return &pinThen{inner: &lb.ECMP{Net: nw}, eng: eng, until: 1 << 62, pin: pin}
		}
	})

	fmt.Printf("%-20s %14s %14s\n", "scheme", "large C (ms)", "large D (ms)")
	for _, oc := range []outcome{conga, hermesOut, ideal} {
		fmt.Printf("%-20s %14.1f %14.1f\n", oc.name, oc.largeA, oc.largeB)
	}
	fmt.Println("expected shape: CONGA leaves both larges sharing one path (no flowlet")
	fmt.Println("gaps); ideal rerouting nearly halves one large's FCT; Hermes approaches it.")
}

// switchAt pins a flow to one path before a deadline and another after.
type switchAt struct {
	transport.BaseBalancer
	eng           *sim.Engine
	at            sim.Time
	before, after int
}

func (s *switchAt) Name() string { return "ideal" }
func (s *switchAt) SelectPath(*transport.Flow) int {
	if s.eng.Now() < s.at {
		return s.before
	}
	return s.after
}

// fig2 reproduces Example 2 (see examples/congestion_mismatch for the
// standalone version): equal-weight spraying over an asymmetric fabric with
// a 9 Gbps UDP flow pinned to the only shared path.
func fig2(o options) {
	eng, nw := microFabric(3, 2, 2, 10e9, 10e9)
	nw.SetFabricLink(0, 1, 0) // broken leaf0-spine1 link
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*"}
	})
	udp := &transport.UDPSender{Eng: eng, Host: nw.Hosts[0], Dst: 4, RateBps: 9e9, Paths: []int{0}}
	udp.Start()
	q := &metrics.QueueSampler{Port: nw.Spines[0].Downlink(2), Interval: 100 * sim.Microsecond}
	q.Start(eng)
	f := tr.StartFlow(2, 5, 50_000_000)
	eng.Run(2 * sim.Second)
	gbps := float64(f.AckedBytes()) * 8 / float64(f.FCT())
	fmt.Printf("flow A (sprayed DCTCP) goodput: %.2f Gbps — available: ~1 (shared) + 10 (idle)\n", gbps)
	fmt.Printf("spine0->leaf2 queue: mean %.0f B, max %d B, stddev %.0f B (oscillation)\n",
		q.MeanBytes(), q.MaxBytes(), q.StdDevBytes())
	fmt.Println("expected shape: goodput collapses toward ~1-2 Gbps; queue oscillates.")
}

// fig3 reproduces Example 3: 10:1 capacity-weighted spraying over a 10 Gbps
// and a 1 Gbps path still underutilizes the aggregate.
func fig3(o options) {
	eng, nw := microFabric(2, 2, 2, 11e9, 10e9)
	nw.SetFabricLink(0, 1, 1e9)
	nw.SetFabricLink(1, 1, 1e9)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
	})
	f := tr.StartFlow(0, 2, 50_000_000)
	eng.Run(2 * sim.Second)
	gbps := float64(f.AckedBytes()) * 8 / float64(f.FCT())
	fmt.Printf("flow A goodput: %.2f Gbps of an 11 Gbps aggregate\n", gbps)
	fmt.Println("expected shape: well under the aggregate (paper observes ~5 of 11 Gbps);")
	fmt.Println("ECN from the 1 Gbps path throttles the window driving the 10 Gbps path.")
}

// fig4 reproduces Example 4: a flow pausing past the flowlet timeout flips
// between spines on stale congestion state, spiking the victim queue.
func fig4(o options) {
	eng, nw := microFabric(3, 2, 2, 10e9, 10e9)
	lb.InstallConga(nw, nw.Rng, lb.DefaultCongaParams())
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.PassThrough{Scheme: "CONGA"}
	})
	tr.StartFlow(2, 4, 1_000_000_000) // steady flow B, leaf1 -> leaf2

	up0, up1 := nw.Leaves[0].Uplink(0), nw.Leaves[0].Uplink(1)
	var burstPaths []int
	flips := 0
	bursts := 0
	var burst func()
	burst = func() {
		b0, b1 := up0.TxBytes, up1.TxBytes
		tr.StartFlow(0, 5, 8_000_000)
		eng.Schedule(12*sim.Millisecond, func() {
			p := 0
			if up1.TxBytes-b1 > up0.TxBytes-b0 {
				p = 1
			}
			if n := len(burstPaths); n > 0 && burstPaths[n-1] != p {
				flips++
			}
			burstPaths = append(burstPaths, p)
		})
		bursts++
		if bursts < 12 {
			eng.Schedule(13*sim.Millisecond, burst)
		}
	}
	burst()
	q0 := &metrics.QueueSampler{Port: nw.Spines[0].Downlink(2), Interval: 100 * sim.Microsecond}
	q0.Start(eng)
	q1 := &metrics.QueueSampler{Port: nw.Spines[1].Downlink(2), Interval: 100 * sim.Microsecond}
	q1.Start(eng)
	eng.Run(200 * sim.Millisecond)
	fmt.Printf("flow A burst->spine assignment: %v (%d flips)\n", burstPaths, flips)
	fmt.Printf("spine0->leaf2 queue: mean %.0f B, max %d B, stddev %.0f B\n",
		q0.MeanBytes(), q0.MaxBytes(), q0.StdDevBytes())
	fmt.Printf("spine1->leaf2 queue: mean %.0f B, max %d B, stddev %.0f B\n",
		q1.MeanBytes(), q1.MaxBytes(), q1.StdDevBytes())
	fmt.Println("expected shape: A flips between spines on stale (aged) state, and the")
	fmt.Println("queue spikes whenever it lands on flow B's spine.")
}
