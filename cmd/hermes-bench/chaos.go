package main

import (
	"fmt"
	"log"
	"os"

	hermes "github.com/hermes-repro/hermes"
)

func init() {
	register("chaos", "[extra] chaos resilience matrix: schemes x failure scenarios x seeds, recovery scorecard (§5.3.2/§5.3.3)", chaosExp)
}

// chaosTopo is the matrix fabric: 2x2 at 1G hosts / 2G fabric links, where a
// spine blackhole is half of ECMP's hash space and part of every Presto*
// spray — small enough that the full matrix runs in seconds.
func chaosTopo() hermes.Topology {
	return hermes.Topology{
		Leaves: 2, Spines: 2, HostsPerLeaf: 4,
		HostRateBps: 1e9, FabricRateBps: 2e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
}

var chaosScenarioNames = []string{"spine-blackhole", "blackhole-recover", "drop-recover", "multi"}

func chaosExp(o options) {
	topo := chaosTopo()
	var scenarios []*hermes.Scenario
	for _, name := range chaosScenarioNames {
		sc, err := hermes.BuiltinScenario(name, topo)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}
	flows := o.flows
	if flows > 200 {
		flows = 200 // recovery metrics saturate long before bench's default
	}
	m, err := hermes.RunChaosMatrix(benchCtx, hermes.ChaosMatrixConfig{
		Base: hermes.Config{
			Topology: topo, Workload: "web-search", Load: 0.5,
			Flows: flows, DrainTimeoutNs: 300e6,
		},
		Schemes:   failureSchemes,
		Scenarios: scenarios,
		Seeds:     hermes.Seeds(o.seed, 3),
		Options:   hermes.ParallelOptions{Workers: sweepWorkers},
	})
	if err != nil && m == nil {
		log.Fatal(err)
	}
	if renderErr := m.RenderText(os.Stdout, 40); renderErr != nil {
		log.Fatal(renderErr)
	}

	// Long-format CSV mirror: one row per matrix cell.
	beginCSVTable([]string{"scheme", "scenario", "detect_ms", "reroute_ms",
		"worst_dip_ms", "dip_cost_gbps_ms", "p99_ms", "p99_inflation_pct", "unfinished"})
	for _, c := range m.Cells {
		csvRow([]string{string(c.Scheme), c.Scenario,
			fmt.Sprintf("%.3f", c.MeanDetectMs), fmt.Sprintf("%.3f", c.MeanRerouteMs),
			fmt.Sprintf("%.3f", c.WorstDipMs.Mean), fmt.Sprintf("%.3f", c.DipIntegral.Mean),
			fmt.Sprintf("%.3f", c.P99Ms.Mean), fmt.Sprintf("%.2f", c.P99InflationPct),
			fmt.Sprintf("%d", c.Unfinished)})
	}
	if err != nil {
		// Interrupted sweep: the partial scorecard and its CSV mirror are on
		// disk; report the cancellation with a non-zero exit.
		endCSVTable()
		fmt.Fprintf(os.Stderr, "\ninterrupted (%v); partial chaos matrix flushed\n", err)
		os.Exit(130)
	}
}
