package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/workload"
)

// simTopo returns the large-simulation fabric: the paper's 8x8x16 when
// -full, a proportionally reduced 4x4x8 otherwise.
func simTopo(o options) hermes.Topology {
	if o.full {
		return hermes.LargeScaleTopology()
	}
	return hermes.Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
}

// Telemetry capture: mustRun is the single chokepoint every experiment's
// runs flow through, so enabling telemetry here covers the whole evaluation.
// Sweeps run data points concurrently, hence the sequence-number mutex.
var (
	telemetryOn   bool
	perfRunsOn    bool
	reportDir     string
	auditDir      string
	traceDir      string
	timeseriesDir string
	artifactSeq   int
	artifactMu    sync.Mutex
)

func mustRun(cfg hermes.Config) *hermes.Result {
	if telemetryOn {
		cfg.Telemetry = true
	}
	if perfRunsOn && cfg.Perf == nil {
		// Reports go to the process-default observatory (set in main).
		cfg.Perf = &hermes.PerfOptions{}
	}
	if traceDir != "" {
		// Per-run in-memory recorder (Result.Trace): safe even when a sweep
		// runs data points concurrently, unlike a shared TraceWriter.
		cfg.Trace = true
	}
	if timeseriesDir != "" {
		// Same pattern: each run records into its own flight recorder.
		cfg.TimeSeries = true
	}
	res, err := hermes.Run(cfg)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		interruptExit(err)
	}
	if err != nil {
		log.Fatal(err)
	}
	saveRunArtifacts(cfg, res)
	return res
}

// saveRunArtifacts writes the per-run report, audit log, flow trace and
// flight-recorder time series when -report, -audit, -trace or -timeseries
// named directories.
func saveRunArtifacts(cfg hermes.Config, res *hermes.Result) {
	if reportDir == "" && auditDir == "" && traceDir == "" && timeseriesDir == "" {
		return
	}
	artifactMu.Lock()
	artifactSeq++
	n := artifactSeq
	exp := currentExp
	artifactMu.Unlock()
	base := fmt.Sprintf("%s_%03d_%s_load%03.0f", exp, n, cfg.Scheme, cfg.Load*100)
	if reportDir != "" {
		rep, err := hermes.BuildReport(cfg, res)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(reportDir, base+".json"))
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if auditDir != "" {
		f, err := os.Create(filepath.Join(auditDir, base+".jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Telemetry.Audit.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if traceDir != "" && res.Trace != nil {
		f, err := os.Create(filepath.Join(traceDir, base+".trace.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Trace.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if timeseriesDir != "" && res.TimeSeries != nil {
		f, err := os.Create(filepath.Join(timeseriesDir, base+".ts.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		if err := res.TimeSeries.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}

func degrade() hermes.FailureSpec {
	return hermes.FailureSpec{Kind: hermes.FailureDegrade, Fraction: 0.2, DegradedBps: 2e9}
}

// sweep runs one scheme across loads (in parallel, bounded by -workers; each
// run is an isolated deterministic simulation) and returns the results in
// load order.
func sweep(cfg hermes.Config, loads []float64) []*hermes.Result {
	out := make([]*hermes.Result, len(loads))
	sem := make(chan struct{}, sweepWorkers)
	var wg sync.WaitGroup
	for i, l := range loads {
		i, l := i, l
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Load = l
			out[i] = mustRun(c)
		}()
	}
	wg.Wait()
	return out
}

func header(loads []float64) {
	fmt.Printf("%-12s", "scheme")
	cols := []string{"scheme"}
	for _, l := range loads {
		fmt.Printf(" %9.0f%%", l*100)
		cols = append(cols, fmt.Sprintf("load%.0f", l*100))
	}
	fmt.Println()
	beginCSVTable(cols)
}

func row(name string, vals []float64) {
	fmt.Printf("%-12s", name)
	cells := []string{name}
	for _, v := range vals {
		fmt.Printf(" %10.3f", v)
		cells = append(cells, fmt.Sprintf("%.4f", v))
	}
	fmt.Println()
	csvRow(cells)
	plotRow(name, vals)
}

func means(rs []*hermes.Result, pick func(*hermes.Result) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = pick(r)
	}
	return out
}

var (
	overallMs = func(r *hermes.Result) float64 { return r.FCT.Overall.MeanMs() }
	smallMs   = func(r *hermes.Result) float64 { return r.FCT.Small.MeanMs() }
	smallP99  = func(r *hermes.Result) float64 { return r.FCT.Small.P99Ms() }
	largeMs   = func(r *hermes.Result) float64 { return r.FCT.Large.MeanMs() }
	unfinPct  = func(r *hermes.Result) float64 { return 100 * r.FCT.UnfinishedFrac }
)

func init() {
	register("table2", "visibility: avg concurrent flows per parallel path, switch pair vs host pair", table2)
	register("table6", "probing schemes: visibility vs overhead (analytic + measured)", table6)
	register("fig7", "workload flow-size CDFs", fig7)
	register("fig9", "[testbed] symmetric: overall avg FCT vs load", fig9)
	register("fig10", "[testbed] asymmetric (link cut): overall avg FCT vs load", fig10)
	register("fig11", "[testbed] asymmetric web-search: small/large flow breakdown", fig11)
	register("fig12", "[sim] symmetric baseline: overall avg FCT vs load, both workloads", fig12)
	register("fig13", "[sim] asymmetric web-search FCT statistics (normalized to Hermes)", fig13)
	register("fig14", "[sim] asymmetric data-mining FCT statistics (normalized to Hermes)", fig14)
	register("fig15", "[sim] CONGA flowlet-timeout sweep @80% load, reordering masked", fig15)
	register("fig16", "[sim] silent random packet drops (2% at one core switch)", fig16)
	register("fig17", "[sim] packet blackhole: avg FCT and unfinished flows", fig17)
	register("fig18a", "[sim] Hermes ablation: probing and rerouting contributions", fig18a)
	register("fig18b", "[sim] Hermes probe-interval sweep", fig18b)
	register("fig19", "[sim] sensitivity to T_RTT_high and Delta_RTT", fig19)
	register("ablation", "[extra] cautious vs vigorous rerouting (congestion mismatch cost)", ablationCaution)
}

// --- Table 2 ---------------------------------------------------------------

func table2(o options) {
	topo := simTopo(o)
	fmt.Println("avg concurrent flows observable per parallel path (Table 2 shape):")
	fmt.Printf("%-14s %12s %12s %12s %12s\n", "", "dm @60%", "dm @80%", "ws @60%", "ws @80%")
	var sw, hp [4]float64
	i := 0
	for _, wl := range []string{"data-mining", "web-search"} {
		for _, load := range []float64{0.6, 0.8} {
			res := mustRun(hermes.Config{
				Topology: topo, Scheme: hermes.SchemeECMP, Workload: wl,
				Load: load, Flows: o.flows, Seed: o.seed, MeasureVisibility: true,
			})
			sw[i], hp[i] = res.VisibilitySwitchPair, res.VisibilityHostPair
			i++
		}
	}
	fmt.Printf("%-14s %12.3f %12.3f %12.3f %12.3f\n", "switch pair", sw[0], sw[1], sw[2], sw[3])
	fmt.Printf("%-14s %12.5f %12.5f %12.5f %12.5f\n", "host pair", hp[0], hp[1], hp[2], hp[3])
	fmt.Println("expected shape: switch pairs see 2-3 orders of magnitude more flows per path.")
}

// --- Table 6 ---------------------------------------------------------------

func table6(o options) {
	// Analytic reproduction at the paper's scale: 100x100 leaf-spine,
	// 10 Gbps links, 64 B probes, 500 us interval, 1000 hosts per... the
	// paper uses 10^5 hosts (1000 per leaf's worth of probing amortization).
	const (
		leaves       = 100
		paths        = 100
		linkBps      = 10e9
		probeBytes   = 64 * 8 // bits
		intervalSec  = 500e-6
		hostsPerLeaf = 1000
	)
	probeRate := func(pathsProbed, destinations float64) float64 {
		return pathsProbed * destinations * probeBytes / intervalSec // bits/s per prober
	}
	bruteHost := probeRate(paths, float64(leaves-1)*hostsPerLeaf) // host probes every path to every host
	po2cHost := probeRate(3, float64(leaves-1)*hostsPerLeaf)
	hermesAgent := probeRate(3, leaves-1) // one agent per rack, per-leaf destinations

	fmt.Printf("%-22s %12s %16s %14s\n", "scheme", "visibility", "overhead (model)", "paper reports")
	fmt.Printf("%-22s %12s %16s %14s\n", "piggyback [23,24]", "<0.01", "~0", "NA")
	fmt.Printf("%-22s %12d %15.0fx %14s\n", "brute-force probing", paths, bruteHost/linkBps, "100x")
	fmt.Printf("%-22s %12s %15.1fx %14s\n", "power of two choices", ">3", po2cHost/linkBps, "3x")
	fmt.Printf("%-22s %12s %15.2f%% %14s\n", "Hermes (rack agents)", ">3", 100*hermesAgent/linkBps, "3%")
	fmt.Println("model: per-prober rate = pathsProbed x destinations x 64B / 500us; the paper's")
	fmt.Println("per-host rows normalize destinations differently, but the ratios it highlights")
	fmt.Println("(po2c ~30x cheaper than brute force; rack agents another ~100x cheaper) match.")

	// Measured: run Hermes on the reduced fabric and report actual
	// per-agent overhead and per-destination path coverage.
	res := mustRun(hermes.Config{
		Topology: simTopo(o), Scheme: hermes.SchemeHermes, Workload: "web-search",
		Load: 0.5, Flows: o.flows / 2, Seed: o.seed,
	})
	fmt.Printf("measured (reduced fabric): probe overhead %.3f%% of one access link, %d probes sent\n",
		100*res.ProbeOverhead, res.ProbesSent)
}

// --- Fig 7 -------------------------------------------------------------------

func fig7(o options) {
	for _, d := range []*workload.CDF{workload.WebSearch, workload.DataMining} {
		fmt.Printf("%s CDF (mean %.2f MB):\n", d.Name, d.Mean()/1e6)
		fmt.Printf("  %12s %8s\n", "size (B)", "CDF")
		for _, p := range d.Points() {
			fmt.Printf("  %12d %8.2f\n", p.Bytes, p.Prob)
		}
	}
}

// --- Testbed experiments (Fig 9-11) -----------------------------------------

var testbedSchemes = []hermes.Scheme{
	hermes.SchemeECMP, hermes.SchemeCLOVE, hermes.SchemePresto, hermes.SchemeHermes,
}

// testbedCfg applies the paper's testbed settings: CLOVE-ECN uses the best
// flowlet timeout the authors found on 1 Gbps hardware (800 us, §5.1).
func testbedCfg(cfg hermes.Config) hermes.Config {
	if cfg.Scheme == hermes.SchemeCLOVE {
		cfg.FlowletTimeoutNs = 800_000
	}
	return cfg
}

func fig9(o options) {
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	for _, wl := range []string{"web-search", "data-mining"} {
		fmt.Printf("\n[%s] overall avg FCT (ms), symmetric testbed:\n", wl)
		header(loads)
		for _, sch := range testbedSchemes {
			rs := sweep(testbedCfg(hermes.Config{
				Topology: hermes.TestbedTopology(), Scheme: sch, Workload: wl,
				Flows: o.flows, Seed: o.seed,
			}), loads)
			row(string(sch), means(rs, overallMs))
		}
	}
	fmt.Println("expected shape: Hermes 10-38% under ECMP, ~= Presto*, <= CLOVE-ECN by ~10%.")
}

func fig10(o options) {
	loads := []float64{0.3, 0.5, 0.6, 0.7}
	// The testbed "link cut" unplugs one of two parallel 1 Gbps cables
	// between leaf 1 and spine 1: 3 of 4 paths remain (Fig 8b).
	cut := hermes.FailureSpec{Kind: hermes.FailureCutCable, CutLeaf: 1, CutSpine: 1}
	for _, wl := range []string{"web-search", "data-mining"} {
		fmt.Printf("\n[%s] overall avg FCT (ms), testbed with leaf1-spine1 cut:\n", wl)
		header(loads)
		for _, sch := range testbedSchemes {
			rs := sweep(testbedCfg(hermes.Config{
				Topology: hermes.TestbedTopology(), Scheme: sch, Workload: wl,
				Flows: o.flows, Seed: o.seed, Failure: cut,
			}), loads)
			row(string(sch), means(rs, overallMs))
		}
	}
	fmt.Println("expected shape: ECMP deteriorates past ~40-50% load; Hermes leads;")
	fmt.Println("Presto* (capacity weights) suffers congestion mismatch at high load.")
}

func fig11(o options) {
	loads := []float64{0.3, 0.5, 0.6, 0.7}
	cut := hermes.FailureSpec{Kind: hermes.FailureCutCable, CutLeaf: 1, CutSpine: 1}
	type picked struct {
		name string
		pick func(*hermes.Result) float64
	}
	for _, p := range []picked{
		{"small flows avg FCT (ms)", smallMs},
		{"small flows 99th pct (ms)", smallP99},
		{"large flows avg FCT (ms)", largeMs},
	} {
		fmt.Printf("\n[web-search] %s, asymmetric testbed:\n", p.name)
		header(loads)
		for _, sch := range testbedSchemes {
			rs := sweep(testbedCfg(hermes.Config{
				Topology: hermes.TestbedTopology(), Scheme: sch, Workload: "web-search",
				Flows: o.flows, Seed: o.seed, Failure: cut,
			}), loads)
			row(string(sch), means(rs, p.pick))
		}
	}
}

// --- Large-scale simulations (Fig 12-19) -------------------------------------

var simSchemes = []hermes.Scheme{
	hermes.SchemeECMP, hermes.SchemePresto, hermes.SchemeCONGA,
	hermes.SchemeLetFlow, hermes.SchemeCLOVE, hermes.SchemeHermes,
	hermes.SchemeREPS, hermes.SchemeRepFlow,
}

func fig12(o options) {
	loads := []float64{0.3, 0.5, 0.7, 0.9}
	for _, wl := range []string{"web-search", "data-mining"} {
		fmt.Printf("\n[%s] overall avg FCT (ms), symmetric baseline:\n", wl)
		header(loads)
		for _, sch := range simSchemes {
			rs := sweep(hermes.Config{
				Topology: simTopo(o), Scheme: sch, Workload: wl,
				Flows: o.flows, Seed: o.seed,
			}, loads)
			row(string(sch), means(rs, overallMs))
		}
	}
	fmt.Println("expected shape: Hermes up to ~55% under ECMP (web-search), within ~17% of")
	fmt.Println("CONGA on web-search and slightly ahead of CONGA on data-mining.")
}

// asymSweeps runs every scheme once across the loads on the degraded fabric
// and prints one normalized table per requested statistic.
func asymSweeps(o options, wl string, loads []float64, stats []struct {
	what string
	pick func(*hermes.Result) float64
}) {
	results := map[hermes.Scheme][]*hermes.Result{}
	for _, sch := range simSchemes {
		results[sch] = sweep(hermes.Config{
			Topology: simTopo(o), Scheme: sch, Workload: wl,
			Flows: o.flows, Seed: o.seed, Failure: degrade(),
		}, loads)
	}
	for _, st := range stats {
		fmt.Printf("\n[%s] %s (normalized to Hermes):\n", wl, st.what)
		header(loads)
		baseVals := means(results[hermes.SchemeHermes], st.pick)
		for _, sch := range simSchemes {
			vals := means(results[sch], st.pick)
			for i := range vals {
				if baseVals[i] > 0 {
					vals[i] /= baseVals[i]
				}
			}
			row(string(sch), vals)
		}
	}
}

func fig13(o options) {
	loads := []float64{0.5, 0.7, 0.9}
	asymSweeps(o, "web-search", loads, []struct {
		what string
		pick func(*hermes.Result) float64
	}{
		{"overall avg FCT", overallMs},
		{"small flows avg FCT", smallMs},
		{"small flows 99th pct FCT", smallP99},
	})
	fmt.Println("expected shape: CONGA leads overall; flowlet schemes' small-flow tail")
	fmt.Println("degrades at high load; Hermes protects small flows (cautious rerouting).")
}

func fig14(o options) {
	loads := []float64{0.5, 0.7, 0.9}
	asymSweeps(o, "data-mining", loads, []struct {
		what string
		pick func(*hermes.Result) float64
	}{
		{"overall avg FCT", overallMs},
		{"large flows avg FCT", largeMs},
	})
	fmt.Println("expected shape: Hermes beats CONGA by 5-10% and CLOVE/LetFlow by 13-20%.")
}

func fig15(o options) {
	fmt.Println("[web-search] CONGA @80% load on the asymmetric fabric, reordering masked:")
	fmt.Printf("%-18s %12s\n", "flowlet timeout", "avg FCT (ms)")
	for _, us := range []int64{50, 150, 500} {
		res := mustRun(hermes.Config{
			Topology: simTopo(o), Scheme: hermes.SchemeCONGA, Workload: "web-search",
			Load: 0.8, Flows: o.flows, Seed: o.seed, Failure: degrade(),
			FlowletTimeoutNs: us * 1000,
			ReorderTimeoutNs: 400_000, // mask reordering, isolating mismatch
		})
		fmt.Printf("%15dus %12.3f\n", us, res.FCT.Overall.MeanMs())
	}
	fmt.Println("paper's shape: 150us beats 500us (more rerouting chances) but 50us is worst")
	fmt.Println("(congestion mismatch). In this simulator 500us >> 150us reproduces; the 50us")
	fmt.Println("penalty does not (see EXPERIMENTS.md and -exp fig15q).")
}

var failureSchemes = []hermes.Scheme{
	hermes.SchemeECMP, hermes.SchemePresto, hermes.SchemeCONGA,
	hermes.SchemeLetFlow, hermes.SchemeREPS, hermes.SchemeRepFlow,
	hermes.SchemeHermes,
}

func fig16(o options) {
	loads := []float64{0.3, 0.5, 0.7}
	spec := hermes.FailureSpec{Kind: hermes.FailureRandomDrop, Spine: 1, DropRate: 0.02}
	fmt.Println("[web-search] 2% silent random drops at one core switch; avg FCT (ms):")
	header(loads)
	for _, sch := range failureSchemes {
		rs := sweep(hermes.Config{
			Topology: simTopo(o), Scheme: sch, Workload: "web-search",
			Flows: o.flows, Seed: o.seed, Failure: spec,
		}, loads)
		row(string(sch), means(rs, overallMs))
	}
	fmt.Println("expected shape: Hermes ahead of everything by >32%; CONGA gains little")
	fmt.Println("over ECMP because utilization-based sensing is fooled by quiet lossy paths.")
}

func fig17(o options) {
	loads := []float64{0.3, 0.5, 0.7}
	topo := simTopo(o)
	spec := hermes.FailureSpec{Kind: hermes.FailureBlackhole, Spine: 1,
		SrcLeaf: 0, DstLeaf: topo.Leaves - 1}
	fmt.Println("[web-search] blackhole on half the rack0->rackN pairs at one core switch:")
	fmt.Println("\n(a) overall avg FCT (ms):")
	header(loads)
	all := map[hermes.Scheme][]*hermes.Result{}
	for _, sch := range failureSchemes {
		all[sch] = sweep(hermes.Config{
			Topology: topo, Scheme: sch, Workload: "web-search",
			Flows: o.flows, Seed: o.seed, Failure: spec,
		}, loads)
		row(string(sch), means(all[sch], overallMs))
	}
	fmt.Println("\n(b) unfinished flows (%):")
	header(loads)
	for _, sch := range failureSchemes {
		row(string(sch), means(all[sch], unfinPct))
	}
	fmt.Println("expected shape: Hermes detects the blackhole after 3 timeouts and finishes")
	fmt.Println("every flow; ECMP strands a fixed share of hashed flows, inflating its mean.")
}

func fig18a(o options) {
	fmt.Println("[data-mining] Hermes component ablation on the asymmetric fabric @60%:")
	fmt.Printf("%-22s %12s %12s %12s\n", "variant", "avg (ms)", "small (ms)", "large (ms)")
	variants := []struct {
		name               string
		noProbe, noReroute bool
	}{
		{"hermes (full)", false, false},
		{"without probing", true, false},
		{"without rerouting", false, true},
		{"without both", true, true},
	}
	for _, v := range variants {
		params := deriveParams(simTopo(o))
		if v.noProbe {
			params.ProbeInterval = 0
		}
		params.DisableReroute = v.noReroute
		res := mustRun(hermes.Config{
			Topology: simTopo(o), Scheme: hermes.SchemeHermes, Workload: "data-mining",
			Load: 0.6, Flows: o.flows, Seed: o.seed, Failure: degrade(),
			HermesParams: &params,
		})
		fmt.Printf("%-22s %12.3f %12.3f %12.3f\n", v.name,
			res.FCT.Overall.MeanMs(), res.FCT.Small.MeanMs(), res.FCT.Large.MeanMs())
	}
	fmt.Println("expected shape: probing ~20% and rerouting ~10% of the overall improvement.")
}

func fig18b(o options) {
	fmt.Println("[data-mining] probe-interval sweep on the asymmetric fabric @60%:")
	fmt.Printf("%-18s %12s\n", "probe interval", "avg FCT (ms)")
	for _, us := range []int64{0, 500, 100} {
		params := deriveParams(simTopo(o))
		params.ProbeInterval = sim.Time(us) * sim.Microsecond
		res := mustRun(hermes.Config{
			Topology: simTopo(o), Scheme: hermes.SchemeHermes, Workload: "data-mining",
			Load: 0.6, Flows: o.flows, Seed: o.seed, Failure: degrade(),
			HermesParams: &params,
		})
		label := fmt.Sprintf("%dus", us)
		if us == 0 {
			label = "no probing"
		}
		fmt.Printf("%-18s %12.3f\n", label, res.FCT.Overall.MeanMs())
	}
	fmt.Println("expected shape: 500us brings ~11-15% over no probing; 100us adds 1-3% more.")
}

func fig19(o options) {
	topo := simTopo(o)
	base := deriveParams(topo)
	fmt.Println("(a) sensitivity to T_RTT_high @60% load (asymmetric fabric), avg FCT (ms):")
	fmt.Printf("%-14s %12s %12s\n", "T_RTT_high", "web-search", "data-mining")
	for _, us := range []int64{140, 180, 220, 260} {
		vals := make([]float64, 2)
		for i, wl := range []string{"web-search", "data-mining"} {
			p := base
			p.TRTTHigh = sim.Time(us) * sim.Microsecond
			res := mustRun(hermes.Config{
				Topology: topo, Scheme: hermes.SchemeHermes, Workload: wl,
				Load: 0.6, Flows: o.flows, Seed: o.seed, Failure: degrade(),
				HermesParams: &p,
			})
			vals[i] = res.FCT.Overall.MeanMs()
		}
		fmt.Printf("%11dus %12.3f %12.3f\n", us, vals[0], vals[1])
	}
	fmt.Println("\n(b) sensitivity to Delta_RTT @60% load, avg FCT (ms):")
	fmt.Printf("%-14s %12s %12s\n", "Delta_RTT", "web-search", "data-mining")
	for _, us := range []int64{40, 80, 120, 160} {
		vals := make([]float64, 2)
		for i, wl := range []string{"web-search", "data-mining"} {
			p := base
			p.DeltaRTT = sim.Time(us) * sim.Microsecond
			res := mustRun(hermes.Config{
				Topology: topo, Scheme: hermes.SchemeHermes, Workload: wl,
				Load: 0.6, Flows: o.flows, Seed: o.seed, Failure: degrade(),
				HermesParams: &p,
			})
			vals[i] = res.FCT.Overall.MeanMs()
		}
		fmt.Printf("%11dus %12.3f %12.3f\n", us, vals[0], vals[1])
	}
	fmt.Println("expected shape: stable around the recommended settings; web-search favors")
	fmt.Println("conservative thresholds, data-mining favors aggressive ones.")
}

func ablationCaution(o options) {
	fmt.Println("[web-search] cautious vs vigorous rerouting @70% on the asymmetric fabric:")
	fmt.Printf("%-22s %12s %12s %14s\n", "variant", "avg (ms)", "small p99(ms)", "reroutes")
	for _, vigorous := range []bool{false, true} {
		params := deriveParams(simTopo(o))
		params.Vigorous = vigorous
		res := mustRun(hermes.Config{
			Topology: simTopo(o), Scheme: hermes.SchemeHermes, Workload: "web-search",
			Load: 0.7, Flows: o.flows, Seed: o.seed, Failure: degrade(),
			HermesParams: &params,
		})
		name := "cautious (Hermes)"
		if vigorous {
			name = "vigorous (no gates)"
		}
		fmt.Printf("%-22s %12.3f %12.3f %14d\n", name,
			res.FCT.Overall.MeanMs(), res.FCT.Small.P99Ms(), res.Reroutes)
	}
	fmt.Println("expected shape: vigorous rerouting inflates reroute counts and hurts FCT —")
	fmt.Println("the congestion-mismatch cost the caution gates (S, R, deltas) prevent.")
}

// deriveParams recomputes the Table 4 defaults for a facade topology by
// building a throwaway fabric.
func deriveParams(topo hermes.Topology) core.Params {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(0), net.Config{
		Leaves: topo.Leaves, Spines: topo.Spines, HostsPerLeaf: topo.HostsPerLeaf,
		HostRateBps: topo.HostRateBps, FabricRateBps: topo.FabricRateBps,
		HostDelay: topo.HostDelayNs, FabricDelay: topo.FabricDelayNs,
	})
	if err != nil {
		log.Fatal(err)
	}
	return core.DefaultParams(nw)
}
