package main

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/perf"
	"github.com/hermes-repro/hermes/internal/perf/pinned"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// runPerfLedger is the -perf mode: execute every pinned microbenchmark count
// times via testing.Benchmark, append one ledger entry per benchmark to
// ledgerPath, and — with -perf-baseline — compare each new measurement
// against the latest prior entry of the same benchmark. Regressions print a
// "REGRESSION:" line (CI turns those into warnings); the return value is the
// regression count, but the build never fails on it: shared runners are
// noisy.
func runPerfLedger(ledgerPath string, count int, note string, baseline bool) int {
	if count < 1 {
		count = 1
	}
	ledger, err := perf.LoadLedger(ledgerPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := telemetry.BuildManifest()
	fp := perf.HostFingerprint(m.VCSRevision, m.VCSModified)
	date := time.Now().UTC().Format(time.RFC3339)

	regressions := 0
	for _, bm := range pinned.Benchmarks() {
		fmt.Printf("%-40s", bm.Name)
		samples := make([]float64, 0, count)
		var last testing.BenchmarkResult
		for i := 0; i < count; i++ {
			last = testing.Benchmark(bm.Fn)
			samples = append(samples, float64(last.NsPerOp()))
		}
		entry := perf.LedgerEntry{
			Name:        bm.Name,
			Date:        date,
			NsOp:        medianOf(samples),
			BOp:         last.AllocedBytesPerOp(),
			AllocsOp:    last.AllocsPerOp(),
			N:           last.N,
			SamplesNsOp: samples,
			Fingerprint: fp,
			Note:        note,
		}
		fmt.Printf(" %8.0f ns/op %6d B/op %4d allocs/op (%d reps)\n",
			entry.NsOp, entry.BOp, entry.AllocsOp, count)
		if baseline {
			if prev := ledger.Latest(bm.Name); prev != nil {
				c := perf.CompareEntries(*prev, entry)
				fmt.Printf("  vs %s: %s\n", prev.Date, c.String())
				if c.Regression {
					regressions++
					fmt.Printf("REGRESSION: %s\n", c.String())
				}
			} else {
				fmt.Printf("  no baseline entry in %s yet\n", ledgerPath)
			}
		}
		ledger.Append(entry)
	}
	if err := ledger.Save(ledgerPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nperf ledger: %d entries across %d benchmarks -> %s\n",
		len(ledger.Entries), len(ledger.Names()), ledgerPath)
	return regressions
}

// medianOf returns the median of a sample set (ns/op is long-tailed under
// scheduler noise, so the median is steadier than the mean in the ledger).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// printPerfAggregate renders the -perf-runs observatory summary after all
// experiments finish: how much simulator work ran, at what throughput, and
// what it cost the Go runtime.
func printPerfAggregate(obs *hermes.PerfObservatory) {
	s := obs.Summary()
	if s.RunsProfiled == 0 {
		return
	}
	fmt.Printf("\n---------------- perf observatory (%d runs) ----------------\n", s.RunsProfiled)
	fmt.Printf("events fired     %d (queue peak %d)\n", s.EventsTotal, s.QueuePeak)
	fmt.Printf("sim/wall ratio   %.2fx (%.3fs simulated in %.3fs)\n",
		s.SimPerWall, float64(s.SimNs)/1e9, float64(s.WallNs)/1e9)
	fmt.Printf("peak heap        %.1f MiB, GC cycles %d, goroutines now %d\n",
		float64(s.PeakHeapBytes)/(1<<20), s.Runtime.GCCycles, s.Runtime.Goroutines)
	if len(s.EventsByKind) > 0 {
		kinds := make([]string, 0, len(s.EventsByKind))
		for k := range s.EventsByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool {
			return s.EventsByKind[kinds[i]] > s.EventsByKind[kinds[j]]
		})
		fmt.Printf("events by kind  ")
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, s.EventsByKind[k])
		}
		fmt.Println()
	}
}
