package main

import (
	"fmt"
	"log"
	"sort"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
	"github.com/hermes-repro/hermes/internal/workload"
)

func init() {
	register("incast", "[extra] partition/aggregate microbursts across schemes (§6 discussion)", incastExp)
	register("tune", "[extra] automatic Hermes parameter tuning (§3.3/§6 future work)", tuneExp)
	register("schemes", "[extra] full scheme roster incl. DRB/DRILL/FlowBender/Edge-Flowlet/HULA", allSchemesExp)
}

// incastExp measures the completion time of synchronized fan-in bursts under
// each scheme, with background web-search traffic. The paper notes Hermes
// needs one RTT to sense and so does not directly handle microbursts —
// per-packet local schemes (DRILL, packet spraying) should shine here.
func incastExp(o options) {
	type schemeSetup struct {
		name  string
		setup func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer
	}
	setups := []schemeSetup{
		{"ecmp", func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer {
			e := &lb.ECMP{Net: nw}
			return func(*net.Host) transport.Balancer { return e }
		}},
		{"presto", func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer {
			return func(*net.Host) transport.Balancer {
				return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
			}
		}},
		{"drill", func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer {
			for l := range nw.Leaves {
				lb.NewDRILL(nw, l, rng)
			}
			return func(*net.Host) transport.Balancer { return &lb.PassThrough{Scheme: "DRILL"} }
		}},
		{"conga", func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer {
			lb.InstallConga(nw, rng, lb.DefaultCongaParams())
			return func(*net.Host) transport.Balancer { return &lb.PassThrough{Scheme: "CONGA"} }
		}},
		{"hermes", func(nw *net.Network, rng *sim.RNG) func(h *net.Host) transport.Balancer {
			p := core.DefaultParams(nw)
			mons := make([]*core.Monitor, nw.Cfg.Leaves)
			agents := make([]*net.Host, nw.Cfg.Leaves)
			for l := range mons {
				mons[l] = core.NewMonitor(nw, l, p)
				agents[l] = nw.Hosts[l*nw.Cfg.HostsPerLeaf]
			}
			core.InstallProbeResponders(nw)
			for l := range mons {
				core.NewProber(mons[l], rng, agents)
			}
			return func(h *net.Host) transport.Balancer { return core.New(mons[h.Leaf], rng, h.ID) }
		}},
	}

	fmt.Printf("%-10s %14s %14s %14s\n", "scheme", "mean (ms)", "p50 (ms)", "worst (ms)")
	for _, su := range setups {
		eng := sim.NewEngine()
		rng := sim.NewRNG(o.seed)
		topo := simTopo(o)
		nw, err := net.NewLeafSpine(eng, rng, net.Config{
			Leaves: topo.Leaves, Spines: topo.Spines, HostsPerLeaf: topo.HostsPerLeaf,
			HostRateBps: topo.HostRateBps, FabricRateBps: topo.FabricRateBps,
			HostDelay: topo.HostDelayNs, FabricDelay: topo.FabricDelayNs,
		})
		if err != nil {
			log.Fatal(err)
		}
		tr := transport.New(nw, transport.DefaultOptions(), su.setup(nw, rng))

		// Background load at 40%.
		gen := &workload.Generator{Net: nw, Tr: tr, Rng: rng,
			Dist: workload.WebSearch, Load: 0.4, MaxFlows: o.flows / 2}
		gen.Start()

		var durs []float64
		ic := &workload.Incast{
			Net: nw, Tr: tr, Rng: rng,
			FanIn: 16, ChunkBytes: 64_000, Interval: 2 * sim.Millisecond, Events: 50,
			OnDone: func(ev int, d sim.Time) { durs = append(durs, float64(d)/1e6) },
		}
		ic.Start()
		eng.Run(3 * sim.Second)

		if len(durs) == 0 {
			fmt.Printf("%-10s no incasts completed\n", su.name)
			continue
		}
		sort.Float64s(durs)
		var sum float64
		for _, d := range durs {
			sum += d
		}
		fmt.Printf("%-10s %14.3f %14.3f %14.3f\n", su.name,
			sum/float64(len(durs)), durs[len(durs)/2], durs[len(durs)-1])
	}
	fmt.Println("expected shape: per-packet local schemes handle the burst itself best;")
	fmt.Println("Hermes needs >= 1 RTT to sense, so it is not a microburst solution (§6).")
}

// tuneExp runs the automatic parameter tuner the paper leaves as future
// work, on the asymmetric data-mining scenario.
func tuneExp(o options) {
	cfg := hermes.Config{
		Topology: simTopo(o), Workload: "data-mining",
		Load: 0.6, Flows: o.flows / 2, Failure: degrade(),
	}
	base, err := hermes.DeriveHermesParams(cfg.Topology)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived defaults: TRTTHigh=%dus DeltaRTT=%dus DeltaECN=%.2f S=%dKB R=%.1fGbps\n",
		base.TRTTHigh/1000, base.DeltaRTT/1000, base.DeltaECN, base.SBytes/1000, base.RBps/1e9)
	res, err := hermes.TuneHermes(cfg, nil, hermes.Seeds(o.seed, 2), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	p := res.Params
	fmt.Printf("tuned:            TRTTHigh=%dus DeltaRTT=%dus DeltaECN=%.2f S=%dKB R=%.1fGbps\n",
		p.TRTTHigh/1000, p.DeltaRTT/1000, p.DeltaECN, p.SBytes/1000, p.RBps/1e9)
}

// allSchemesExp runs the complete roster (including the schemes the paper
// lists in Table 1 but does not plot) on the symmetric baseline.
func allSchemesExp(o options) {
	fmt.Printf("%-14s %12s %12s %14s\n", "scheme", "avg (ms)", "small (ms)", "small p99(ms)")
	for _, sch := range hermes.Schemes() {
		res := mustRun(hermes.Config{
			Topology: simTopo(o), Scheme: sch, Workload: "web-search",
			Load: 0.6, Flows: o.flows, Seed: o.seed,
		})
		fmt.Printf("%-14s %12.3f %12.3f %14.3f\n", sch,
			res.FCT.Overall.MeanMs(), res.FCT.Small.MeanMs(), res.FCT.Small.P99Ms())
	}
}

func init() {
	register("scaling", "[extra] Hermes vs ECMP across fabric sizes; probe overhead scaling", scalingExp)
}

// scalingExp sweeps the fabric size at fixed per-link load, reporting how
// the Hermes/ECMP gap and the probing overhead evolve — the Table 6
// scalability argument measured rather than computed.
func scalingExp(o options) {
	fmt.Printf("%-14s %12s %12s %12s %14s\n",
		"fabric", "ecmp (ms)", "hermes (ms)", "gain", "probe ovh")
	for _, size := range []int{2, 4, 6, 8} {
		topo := hermes.Topology{
			Leaves: size, Spines: size, HostsPerLeaf: 8,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelayNs: 2000, FabricDelayNs: 2000,
		}
		flows := o.flows * size / 4 // keep per-pair pressure comparable
		cfg := hermes.Config{
			Topology: topo, Workload: "web-search",
			Load: 0.6, Flows: flows, Seed: o.seed,
		}
		cfg.Scheme = hermes.SchemeECMP
		e := mustRun(cfg)
		cfg.Scheme = hermes.SchemeHermes
		h := mustRun(cfg)
		gain := (e.FCT.Overall.Mean - h.FCT.Overall.Mean) / e.FCT.Overall.Mean
		fmt.Printf("%8dx%d     %12.3f %12.3f %11.1f%% %13.3f%%\n",
			size, size, e.FCT.Overall.MeanMs(), h.FCT.Overall.MeanMs(),
			100*gain, 100*h.ProbeOverhead)
	}
	fmt.Println("expected shape: the per-agent probe overhead stays a small fraction that")
	fmt.Println("grows only with the leaf count (rack agents); the Hermes-vs-ECMP gain is")
	fmt.Println("noisy at fixed per-pair flow counts — raise -flows for stable gains.")
}

func init() {
	register("transports", "[§5.4] different transport protocols: DCTCP vs TCP (and TIMELY ext.)", transportsExp)
}

// transportsExp reproduces the §5.4 "different transport protocols" study:
// with plain TCP (no ECN) Hermes senses by RTT only; the paper reports it
// within 10-25% of CONGA on web-search and near-identical on data-mining.
// TIMELY is this repository's extension.
func transportsExp(o options) {
	for _, proto := range []string{"dctcp", "reno", "timely"} {
		fmt.Printf("\n[%s] overall avg FCT (ms) @60%% load, asymmetric fabric:\n", proto)
		fmt.Printf("%-10s %14s %14s\n", "scheme", "web-search", "data-mining")
		for _, sch := range []hermes.Scheme{hermes.SchemeECMP, hermes.SchemeCONGA, hermes.SchemeHermes} {
			var vals [2]float64
			for i, wl := range []string{"web-search", "data-mining"} {
				cfg := hermes.Config{
					Topology: simTopo(o), Scheme: sch, Workload: wl, Protocol: proto,
					Load: 0.6, Flows: o.flows, Seed: o.seed, Failure: degrade(),
				}
				if sch == hermes.SchemeCONGA && proto != "dctcp" {
					// §5.4 uses a 500us flowlet timeout for bursty TCP.
					cfg.FlowletTimeoutNs = 500_000
				}
				vals[i] = mustRun(cfg).FCT.Overall.MeanMs()
			}
			fmt.Printf("%-10s %14.3f %14.3f\n", sch, vals[0], vals[1])
		}
	}
	fmt.Println("expected shape: orderings persist without ECN; Hermes trails CONGA a bit")
	fmt.Println("more under bursty TCP (more flowlet gaps for CONGA to exploit).")
}

func init() {
	register("fig15q", "[extra] fig15 sweep at shallow vs deep buffers (divergence hypothesis)", fig15q)
}

// fig15q re-runs the CONGA flowlet-timeout sweep at two buffer depths. The
// paper's 50us penalty (congestion mismatch) depends on mismatch-induced
// queue spikes turning into drops: deep buffers absorb them, shallow ones
// do not — which is the hypothesis EXPERIMENTS.md offers for the Fig 15
// divergence.
func fig15q(o options) {
	for _, qf := range []int{5, 2} {
		topo := simTopo(o)
		topo.QueueFactor = qf
		fmt.Printf("\nqueue depth = %dx ECN threshold:\n", qf)
		fmt.Printf("%-18s %12s\n", "flowlet timeout", "avg FCT (ms)")
		for _, us := range []int64{50, 150, 500} {
			res := mustRun(hermes.Config{
				Topology: topo, Scheme: hermes.SchemeCONGA, Workload: "web-search",
				Load: 0.8, Flows: o.flows, Seed: o.seed, Failure: degrade(),
				FlowletTimeoutNs: us * 1000,
				ReorderTimeoutNs: 400_000,
			})
			fmt.Printf("%15dus %12.3f\n", us, res.FCT.Overall.MeanMs())
		}
	}
}
