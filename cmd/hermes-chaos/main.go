// hermes-chaos runs the scheme x failure resilience matrix: every scheme
// under every chaos scenario across several seeds (plus one clean baseline
// per scheme), scored by detection latency, reroute latency, goodput-dip
// depth/duration/cost and p99 FCT inflation — the §5.3.2/§5.3.3 resilience
// questions as one scorecard.
//
// Examples:
//
//	hermes-chaos                                       # default matrix
//	hermes-chaos -schemes hermes,ecmp -scenarios spine-blackhole,multi
//	hermes-chaos -schemes hermes,reps,repflow,ecmp,presto -scenarios all
//	hermes-chaos -scenarios random -chaos-intensity 0.8 -seeds 5
//	hermes-chaos -json -out matrix.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/perf"
)

func main() {
	var (
		schemesFlag   = flag.String("schemes", "hermes,ecmp,presto,conga,letflow,reps,repflow", "comma-separated schemes to compare")
		scenariosFlag = flag.String("scenarios", "spine-blackhole,blackhole-recover,drop-recover,multi", `comma-separated builtin scenarios (see -list), "random", or "all" for every builtin`)
		listFlag      = flag.Bool("list", false, "list builtin scenarios and exit")
		topoName      = flag.String("topology", "chaos", `"chaos" (2x2, 1G hosts), "testbed" (2x2, 1G), "small" (4x4, 10G) or "large" (8x8, 10G)`)
		workload      = flag.String("workload", "web-search", "web-search|data-mining")
		load          = flag.Float64("load", 0.5, "offered load as a fraction of bisection bandwidth")
		flows         = flag.Int("flows", 100, "flows per run")
		seedBase      = flag.Int64("seed", 11, "base seed")
		seedCount     = flag.Int("seeds", 3, "seeds per cell")
		intensity     = flag.Float64("chaos-intensity", 0.5, `severity of the "random" scenario, 0..1`)
		workers       = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		width         = flag.Int("width", 40, "scorecard chart width")
		jsonOut       = flag.Bool("json", false, "emit the matrix as JSON instead of the text scorecard")
		outFile       = flag.String("out", "", "write the output to this file instead of stdout")
		ckptDir       = flag.String("checkpoint-dir", "", "on SIGINT/SIGTERM, each in-flight run writes a final checkpoint into this directory (resume individual runs with hermes-sim -resume <file>)")
		alertsOn      = flag.Bool("alerts", false, "arm the builtin SLO watchdog on every run; adds alert columns and the detect cross-check to the scorecard")
		alertLog      = flag.String("alert-log", "", "write every run's alert log as JSONL, in slot order (implies -alerts; view with hermes-trace -alerts)")
		statusAddr    = flag.String("status", "", `serve the live status plane on this address while the matrix runs (e.g. ":8080"; see /api/progress, /metrics, /api/series/stream)`)
		progress      = flag.Bool("progress", false, "print a progress line (runs done, ETA) to stderr every few seconds")
		progressSec   = flag.Int("progress-interval", 5, "seconds between -progress lines")
		perfOn        = flag.Bool("perf", false, "profile every matrix run and print the perf observatory aggregate to stderr")
		perfSample    = flag.Int("perf-sample", 0, "wall-time attribution stride: time 1 in N event fires (0 = 64 default)")
		cpuProfile    = flag.String("cpuprofile", "", "write a pprof CPU profile of the matrix to this file")
		memProfile    = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		version       = flag.Bool("version", false, "print build version and VCS revision, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(hermes.VersionString())
		return
	}

	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := perf.WriteHeapProfile(*memProfile); err != nil {
				log.Print(err)
			}
		}()
	}

	if *listFlag {
		fmt.Println("builtin scenarios:", strings.Join(hermes.ScenarioNames(), " "))
		fmt.Println(`plus "random" (use -chaos-intensity and -seed)`)
		return
	}

	var topo hermes.Topology
	switch *topoName {
	case "chaos":
		topo = hermes.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4,
			HostRateBps: 1e9, FabricRateBps: 2e9, HostDelayNs: 2000, FabricDelayNs: 2000}
	case "testbed":
		topo = hermes.TestbedTopology()
	case "small":
		topo = hermes.Topology{Leaves: 4, Spines: 4, HostsPerLeaf: 8,
			HostRateBps: 10e9, FabricRateBps: 10e9, HostDelayNs: 2000, FabricDelayNs: 2000}
	case "large":
		topo = hermes.LargeScaleTopology()
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}

	var schemes []hermes.Scheme
	for _, s := range strings.Split(*schemesFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			schemes = append(schemes, hermes.Scheme(s))
		}
	}
	var scenarios []*hermes.Scenario
	for _, name := range strings.Split(*scenariosFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "random" {
			scenarios = append(scenarios, hermes.RandomScenario(topo, *seedBase, *intensity))
			continue
		}
		if name == "all" {
			for _, n := range hermes.ScenarioNames() {
				sc, err := hermes.BuiltinScenario(n, topo)
				if err != nil {
					log.Fatal(err)
				}
				scenarios = append(scenarios, sc)
			}
			continue
		}
		sc, err := hermes.BuiltinScenario(name, topo)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}

	mc := hermes.ChaosMatrixConfig{
		Base: hermes.Config{
			Topology: topo, Workload: *workload, Load: *load,
			Flows: *flows, DrainTimeoutNs: 300e6,
		},
		Schemes:   schemes,
		Scenarios: scenarios,
		Seeds:     hermes.Seeds(*seedBase, *seedCount),
		Options:   hermes.ParallelOptions{Workers: *workers},
	}

	if *ckptDir != "" {
		// Dir-only checkpointing: nothing is written on the happy path, but
		// an interrupted run flushes one resumable checkpoint before dying.
		mc.Base.Checkpoint = &hermes.CheckpointConfig{Dir: *ckptDir}
	}

	if *alertLog != "" {
		*alertsOn = true
		f, err := os.Create(*alertLog)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "alert log written to %s (view with hermes-trace -alerts)\n", *alertLog)
		}()
		mc.AlertLog = f
	}
	if *alertsOn {
		mc.Alerts = &hermes.AlertsConfig{Builtin: true}
	}

	var obs *hermes.PerfObservatory
	if *perfOn {
		obs = hermes.NewPerfObservatory()
		mc.Base.Perf = &hermes.PerfOptions{SampleEvery: *perfSample, Observatory: obs}
		defer func() {
			s := obs.Summary()
			if s.RunsProfiled == 0 {
				return
			}
			fmt.Fprintf(os.Stderr,
				"perf: %d runs profiled, %d events (queue peak %d), sim/wall %.2fx, peak heap %.1f MiB, GC cycles %d\n",
				s.RunsProfiled, s.EventsTotal, s.QueuePeak, s.SimPerWall,
				float64(s.PeakHeapBytes)/(1<<20), s.Runtime.GCCycles)
		}()
	}

	var st *hermes.Status
	if *statusAddr != "" || *progress {
		st = hermes.NewStatus()
		mc.Base.Status = st
	}
	if *statusAddr != "" {
		srv, err := hermes.ServeStatus(*statusAddr, st)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status plane on %s\n", srv.URL())
	}
	if *progress {
		stop := st.StartLogging(os.Stderr, time.Duration(*progressSec)*time.Second)
		defer stop()
	}

	// SIGINT/SIGTERM drain the pool gracefully: the matrix comes back marked
	// Partial over whatever finished, the alert log holds the completed
	// runs, and (with -checkpoint-dir) every in-flight run leaves a final
	// checkpoint before dying.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	m, err := hermes.RunChaosMatrix(ctx, mc)
	if err != nil && m == nil {
		log.Fatal(err)
	}
	// Stamp provenance onto the emitted artifact (RunChaosMatrix itself
	// leaves Manifest nil so in-process matrices stay config-pure).
	if mj, merr := json.Marshal(mc); merr == nil {
		manifest := hermes.BuildManifest().WithConfig(mj, mc.Seeds)
		m.Manifest = &manifest
	}

	var w io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(m); encErr != nil {
			log.Fatal(encErr)
		}
	} else if renderErr := m.RenderText(w, *width); renderErr != nil {
		log.Fatal(renderErr)
	}
	if err != nil {
		// The partial artifact is flushed (os.File writes are unbuffered);
		// report the interruption and exit non-zero. Skipped defers only
		// lose the closing log lines.
		fmt.Fprintf(os.Stderr, "interrupted (%v); partial matrix emitted\n", err)
		if *ckptDir != "" {
			fmt.Fprintf(os.Stderr, "per-run interrupt checkpoints in %s (resume with hermes-sim -resume <file>)\n", *ckptDir)
		}
		os.Exit(130)
	}
}
