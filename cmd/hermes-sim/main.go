// hermes-sim runs a single load balancing experiment and prints its
// measurements as text or JSON.
//
// Examples:
//
//	hermes-sim -scheme hermes -workload web-search -load 0.6 -flows 1000
//	hermes-sim -scheme conga -failure random-drop -drop-rate 0.02 -json
//	hermes-sim -topology testbed -scheme presto -load 0.5
//	hermes-sim -scheme hermes -flows 50000 -soak -checkpoint-dir ckpts
//	hermes-sim -resume ckpts -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/perf"
)

func main() {
	var (
		topoName = flag.String("topology", "large", `"testbed" (2x2, 1G), "large" (8x8, 10G) or "small" (4x4, 10G)`)
		scheme   = flag.String("scheme", "hermes", "ecmp|presto|drb|letflow|drill|conga|clove|flowbender|mptcp|reps|repflow|hermes")
		workload = flag.String("workload", "web-search", "web-search|data-mining")
		wlFile   = flag.String("workload-file", "", "custom flow-size CDF file (overrides -workload)")
		load     = flag.Float64("load", 0.6, "offered load as a fraction of bisection bandwidth")
		flows    = flag.Int("flows", 1000, "number of flows to generate")
		seed     = flag.Int64("seed", 1, "random seed (same seed => same run)")
		protocol = flag.String("protocol", "dctcp", "dctcp|reno")
		flowlet  = flag.Int64("flowlet-us", 0, "flowlet timeout override in microseconds (CONGA/LetFlow/CLOVE)")
		maxFlow  = flag.Int64("max-flow-bytes", 0, "flow size cap (0 = workload default)")

		failKind = flag.String("failure", "", "''|random-drop|blackhole|spine-blackhole|degrade|cut-link|cut-cable|degrade-link|degrade-spine|flap|spine-down|leaf-down")
		spine    = flag.Int("spine", -1, "failed spine index (-1 = random)")
		dropRate = flag.Float64("drop-rate", 0.02, "silent random drop probability")
		frac     = flag.Float64("degrade-fraction", 0.2, "fraction of fabric links degraded")
		degBps   = flag.Int64("degrade-bps", 2e9, "degraded link rate")
		cutLeaf  = flag.Int("cut-leaf", 0, "leaf side of the cut link")
		cutSpine = flag.Int("cut-spine", 0, "spine side of the cut link")
		flapUs   = flag.Int64("flap-period-us", 0, "flap cycle period in microseconds (failure=flap)")
		flapDown = flag.Int64("flap-down-us", 0, "degraded time per flap cycle in microseconds (failure=flap)")

		scenarioName = flag.String("scenario", "", `chaos scenario: a builtin name (see -scenario list), or "random"`)
		scenarioFile = flag.String("scenario-file", "", "load a chaos Scenario timeline from a JSON file (overrides -scenario)")
		intensity    = flag.Float64("chaos-intensity", 0.5, "severity of -scenario random, 0..1")

		visibility   = flag.Bool("visibility", false, "measure Table 2 visibility")
		jsonOut      = flag.Bool("json", false, "emit JSON instead of text")
		traceFile    = flag.String("trace", "", "write per-flow JSONL trace to this file (analyze with hermes-trace)")
		perfettoFile = flag.String("perfetto", "", "write the trace as Chrome trace-event JSON (open in ui.perfetto.dev)")
		telem        = flag.Bool("telemetry", false, "enable the telemetry registry, sweeper and audit log")
		reportFile   = flag.String("report", "", "write the full run report here (.csv = CSV, else JSON; implies -telemetry)")
		auditFile    = flag.String("audit", "", "write the Hermes decision audit log as JSONL (implies -telemetry)")
		sweepUs      = flag.Int64("sweep-us", 1000, "telemetry sweep interval in microseconds")
		tsFile       = flag.String("timeseries", "", "write the flight-recorder time series as JSONL (view with hermes-trace -timeline)")
		tsCSVFile    = flag.String("timeseries-csv", "", "write the flight-recorder time series as CSV")
		tsUs         = flag.Int64("timeseries-us", 0, "flight-recorder sampling interval in microseconds (0 = 100us default)")
		tsCap        = flag.Int("timeseries-cap", 0, "max retained samples per series, ring-buffered (0 = default)")
		alertsOn     = flag.Bool("alerts", false, "arm the builtin SLO watchdog pack (goodput-dip, p99-fct-inflation, queue-saturation, gray-path-dwell)")
		alertRules   = flag.String("alert-rules", "", "arm user alert rules from a JSON file (array of rules; combines with -alerts)")
		alertLog     = flag.String("alert-log", "", "write the run's alert log as JSONL (view with hermes-trace -alerts)")
		subflows     = flag.Int("mptcp-subflows", 4, "subflows per logical flow (mptcp scheme)")
		repThresh    = flag.Int64("repflow-threshold", 0, "replicate flows smaller than this many bytes (repflow scheme; 0 = 100 KB default)")
		checks       = flag.Bool("checks", false, "arm the simulation invariant harness (engine + packet-conservation checks)")
		configFile   = flag.String("config", "", "load the full experiment Config from a JSON file (overrides other flags)")
		statusAddr   = flag.String("status", "", `serve the live status plane on this address while the run executes (e.g. ":8080"; see /api/progress, /metrics)`)
		perfOn       = flag.Bool("perf", false, "enable the performance observatory: engine self-profiling + runtime sampling, printed as a perf block")
		perfSample   = flag.Int("perf-sample", 0, "wall-time attribution stride: time 1 in N event fires (0 = 64 default)")
		soak         = flag.Bool("soak", false, "soak mode: periodic checkpoints + graceful SIGINT/SIGTERM (implies -checkpoint-dir, default interval 10ms sim time)")
		resumePath   = flag.String("resume", "", "resume from a checkpoint file, or the latest checkpoint in a directory (ignores experiment flags; the config is embedded)")
		ckptDir      = flag.String("checkpoint-dir", "", "write simulation checkpoints into this directory (resume with -resume)")
		ckptIvMs     = flag.Int64("checkpoint-interval-ms", 0, "checkpoint every this many milliseconds of simulated time")
		ckptAtMs     = flag.String("checkpoint-at-ms", "", "comma-separated simulated-time instants (ms) to checkpoint at")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		version      = flag.Bool("version", false, "print build version and VCS revision, then exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := perf.WriteHeapProfile(*memProfile); err != nil {
				log.Print(err)
			}
		}()
	}

	if *version {
		fmt.Println(hermes.VersionString())
		return
	}

	if *scenarioName == "list" {
		fmt.Println("builtin scenarios:", strings.Join(hermes.ScenarioNames(), " "))
		fmt.Println(`plus "random" (use -chaos-intensity and -seed)`)
		return
	}

	if *resumePath != "" &&
		(*configFile != "" || *traceFile != "" || *perfettoFile != "" || *tsFile != "" ||
			*tsCSVFile != "" || *reportFile != "" || *auditFile != "" || *telem) {
		log.Fatal("-resume replays the experiment from the config embedded in the checkpoint; it cannot be combined with -config, -telemetry or writer flags (-trace, -perfetto, -timeseries*, -report, -audit)")
	}

	var topo hermes.Topology
	switch *topoName {
	case "testbed":
		topo = hermes.TestbedTopology()
	case "large":
		topo = hermes.LargeScaleTopology()
	case "small":
		topo = hermes.Topology{Leaves: 4, Spines: 4, HostsPerLeaf: 8,
			HostRateBps: 10e9, FabricRateBps: 10e9, HostDelayNs: 2000, FabricDelayNs: 2000}
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}

	if *sweepUs <= 0 {
		log.Fatalf("-sweep-us %d: the sweep interval must be a positive number of microseconds", *sweepUs)
	}

	var traceW, perfettoW *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		traceW = f
	}
	if *perfettoFile != "" {
		f, err := os.Create(*perfettoFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		perfettoW = f
	}

	cfg := hermes.Config{
		Topology:              topo,
		Scheme:                hermes.Scheme(*scheme),
		Workload:              *workload,
		WorkloadFile:          *wlFile,
		Load:                  *load,
		Flows:                 *flows,
		Seed:                  *seed,
		Protocol:              *protocol,
		FlowletTimeoutNs:      *flowlet * 1000,
		MaxFlowBytes:          *maxFlow,
		MeasureVisibility:     *visibility,
		MPTCPSubflows:         *subflows,
		RepFlowThresholdBytes: *repThresh,
		Failure: hermes.FailureSpec{
			Kind:     hermes.FailureKind(*failKind),
			Spine:    *spine,
			DropRate: *dropRate,
			Fraction: *frac, DegradedBps: *degBps,
			CutLeaf: *cutLeaf, CutSpine: *cutSpine,
			FlapPeriodNs: *flapUs * 1000, FlapDownNs: *flapDown * 1000,
			SrcLeaf: 0, DstLeaf: topo.Leaves - 1,
		},
	}

	switch {
	case *scenarioFile != "":
		data, err := os.ReadFile(*scenarioFile)
		if err != nil {
			log.Fatal(err)
		}
		var sc hermes.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			log.Fatalf("parse %s: %v", *scenarioFile, err)
		}
		cfg.Scenario = &sc
	case *scenarioName == "random":
		cfg.Scenario = hermes.RandomScenario(topo, *seed, *intensity)
	case *scenarioName != "":
		sc, err := hermes.BuiltinScenario(*scenarioName, topo)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scenario = sc
	}

	if traceW != nil {
		cfg.TraceWriter = traceW
	}
	if perfettoW != nil {
		cfg.PerfettoWriter = perfettoW
	}
	if *reportFile != "" || *auditFile != "" {
		*telem = true
	}
	cfg.Telemetry = *telem
	cfg.TelemetryIntervalNs = *sweepUs * 1000
	cfg.Checks = *checks
	if *perfOn {
		cfg.Perf = &hermes.PerfOptions{SampleEvery: *perfSample}
	}

	var tsW, tsCSVW *os.File
	if *tsFile != "" {
		f, err := os.Create(*tsFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tsW = f
		cfg.TimeSeriesWriter = f
	}
	if *tsCSVFile != "" {
		f, err := os.Create(*tsCSVFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tsCSVW = f
		cfg.TimeSeriesCSV = f
	}
	cfg.TimeSeriesIntervalNs = *tsUs * 1000
	cfg.TimeSeriesCap = *tsCap

	if *alertsOn || *alertRules != "" {
		ac := &hermes.AlertsConfig{Builtin: *alertsOn}
		if *alertRules != "" {
			data, err := os.ReadFile(*alertRules)
			if err != nil {
				log.Fatal(err)
			}
			if err := json.Unmarshal(data, &ac.Rules); err != nil {
				log.Fatalf("parse %s: %v", *alertRules, err)
			}
			if err := hermes.ValidateAlertRules(ac.Rules); err != nil {
				log.Fatalf("%s: %v", *alertRules, err)
			}
		}
		cfg.Alerts = ac
	}

	if *configFile != "" {
		data, err := os.ReadFile(*configFile)
		if err != nil {
			log.Fatal(err)
		}
		var fileCfg hermes.Config
		if err := json.Unmarshal(data, &fileCfg); err != nil {
			log.Fatalf("parse %s: %v", *configFile, err)
		}
		fileCfg.TraceWriter = cfg.TraceWriter
		fileCfg.PerfettoWriter = cfg.PerfettoWriter
		if fileCfg.Scenario == nil {
			fileCfg.Scenario = cfg.Scenario
		}
		fileCfg.TimeSeriesWriter = cfg.TimeSeriesWriter
		fileCfg.TimeSeriesCSV = cfg.TimeSeriesCSV
		if fileCfg.TimeSeriesIntervalNs == 0 {
			fileCfg.TimeSeriesIntervalNs = cfg.TimeSeriesIntervalNs
		}
		if fileCfg.TimeSeriesCap == 0 {
			fileCfg.TimeSeriesCap = cfg.TimeSeriesCap
		}
		if *checks {
			fileCfg.Checks = true
		}
		if *telem {
			// -report/-audit/-telemetry stay in force over a config file.
			fileCfg.Telemetry = true
			if fileCfg.TelemetryIntervalNs == 0 {
				fileCfg.TelemetryIntervalNs = cfg.TelemetryIntervalNs
			}
		}
		if fileCfg.Perf == nil {
			fileCfg.Perf = cfg.Perf
		}
		if fileCfg.Alerts == nil {
			fileCfg.Alerts = cfg.Alerts
		}
		cfg = fileCfg
	}

	// Checkpointing (flags stay in force over a -config file, like -checks).
	// -soak is the long-run shape: arm periodic checkpoints and rely on the
	// graceful-signal path below to leave a resumable checkpoint on Ctrl-C.
	if *soak && *ckptDir == "" {
		*ckptDir = "hermes-checkpoints"
	}
	if *ckptDir != "" {
		ck := &hermes.CheckpointConfig{Dir: *ckptDir, IntervalNs: *ckptIvMs * 1e6}
		if *ckptAtMs != "" {
			for _, s := range strings.Split(*ckptAtMs, ",") {
				ms, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					log.Fatalf("-checkpoint-at-ms %q: %v", *ckptAtMs, err)
				}
				ck.AtNs = append(ck.AtNs, int64(ms*1e6))
			}
		}
		if *soak && ck.IntervalNs == 0 && len(ck.AtNs) == 0 {
			ck.IntervalNs = 10e6
		}
		cfg.Checkpoint = ck
	}

	if *statusAddr != "" {
		st := hermes.NewStatus()
		st.Plan(1)
		srv, err := hermes.ServeStatus(*statusAddr, st)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "status plane on %s\n", srv.URL())
		cfg.Status = st
		// A -resume run builds its Config from the checkpoint (which cannot
		// carry a tracker); the process-wide default routes it here too.
		hermes.SetDefaultStatus(st)
	}

	// SIGINT/SIGTERM cancel the run at its next scheduling slice; with
	// checkpointing armed the run flushes one final interrupt checkpoint
	// before reporting, so a soak is resumable from the instant it died.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hermes.SetDefaultRunContext(ctx)

	var res *hermes.Result
	var err error
	if *resumePath != "" {
		res, err = hermes.Restore(*resumePath)
	} else {
		res, err = hermes.Run(cfg)
	}
	var ie *hermes.InterruptedError
	if errors.As(err, &ie) {
		fmt.Fprintf(os.Stderr, "interrupted at t=%.1fms; checkpoint written to %s\n",
			float64(ie.Checkpoint.SimTimeNs)/1e6, ie.Checkpoint.Path)
		fmt.Fprintf(os.Stderr, "resume with: hermes-sim -resume %s\n", ie.Checkpoint.Path)
		os.Exit(130)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, ci := range res.Checkpoints {
		fmt.Fprintf(os.Stderr, "checkpoint t=%.1fms written to %s (%d bytes)\n",
			float64(ci.SimTimeNs)/1e6, ci.Path, ci.Bytes)
	}
	if res.TraceCounts != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", res.TraceCounts)
		if *traceFile != "" {
			fmt.Fprintf(os.Stderr, "trace JSONL written to %s\n", *traceFile)
		}
		if *perfettoFile != "" {
			fmt.Fprintf(os.Stderr, "perfetto trace written to %s (open in ui.perfetto.dev)\n", *perfettoFile)
		}
	}
	if res.TimeSeries != nil {
		fmt.Fprintf(os.Stderr, "timeseries: %d samples, %d series, %d transitions (%d samples truncated, %d transitions dropped)\n",
			res.TimeSeries.Len(), len(res.TimeSeries.Names()), len(res.TimeSeries.Transitions()),
			res.TimeSeries.TruncatedSamples(), res.TimeSeries.DroppedTransitions)
		if tsW != nil {
			fmt.Fprintf(os.Stderr, "timeseries JSONL written to %s (view with hermes-trace -timeline)\n", *tsFile)
		}
		if tsCSVW != nil {
			fmt.Fprintf(os.Stderr, "timeseries CSV written to %s\n", *tsCSVFile)
		}
	}

	var report *hermes.Report
	if cfg.Telemetry {
		report, err = hermes.BuildReport(cfg, res)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *reportFile != "" {
		// Written artifacts carry provenance; the in-process report stays a
		// pure function of (config, seed).
		if mj, merr := json.Marshal(cfg); merr == nil {
			m := hermes.BuildManifest().WithConfig(mj, []int64{cfg.Seed})
			report.Manifest = &m
		}
		if err := writeReport(report, *reportFile); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *reportFile)
	}
	if *alertLog != "" {
		if res.Alerts == nil {
			log.Fatal("-alert-log needs the watchdog armed (-alerts, -alert-rules or Config.Alerts)")
		}
		f, err := os.Create(*alertLog)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%s/seed %d", res.Scheme, cfg.Seed)
		if err := hermes.WriteAlertLog(f, label, res.Alerts); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "alert log written to %s (view with hermes-trace -alerts)\n", *alertLog)
	}
	if *auditFile != "" {
		f, err := os.Create(*auditFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Telemetry.Audit.WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "audit log (%d entries) written to %s\n",
			res.Telemetry.Audit.Len(), *auditFile)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("scheme=%s workload=%s load=%.2f flows=%d seed=%d\n",
		res.Scheme, res.Workload, res.Load, res.FCT.Flows, *seed)
	fmt.Printf("simulated %.1f ms, %d events\n",
		float64(res.SimDuration)/1e6, res.Events)
	fmt.Printf("%-24s %10s %10s %10s %10s\n", "bucket", "count", "mean(ms)", "p95(ms)", "p99(ms)")
	pr := func(name string, count int, mean, p95, p99 float64) {
		fmt.Printf("%-24s %10d %10.3f %10.3f %10.3f\n", name, count, mean, p95, p99)
	}
	pr("overall", res.FCT.Overall.Count, res.FCT.Overall.MeanMs(),
		float64(res.FCT.Overall.P95)/1e6, res.FCT.Overall.P99Ms())
	pr("small (<100KB)", res.FCT.Small.Count, res.FCT.Small.MeanMs(),
		float64(res.FCT.Small.P95)/1e6, res.FCT.Small.P99Ms())
	pr("medium", res.FCT.Medium.Count, res.FCT.Medium.MeanMs(),
		float64(res.FCT.Medium.P95)/1e6, res.FCT.Medium.P99Ms())
	pr("large (>10MB)", res.FCT.Large.Count, res.FCT.Large.MeanMs(),
		float64(res.FCT.Large.P95)/1e6, res.FCT.Large.P99Ms())
	if res.FCT.Slowdown.Count > 0 {
		fmt.Printf("slowdown: mean %.2f, p50 %.2f, p99 %.2f\n",
			res.FCT.Slowdown.Mean, res.FCT.Slowdown.P50, res.FCT.Slowdown.P99)
	}
	if res.FCT.Unfinished > 0 {
		fmt.Printf("unfinished: %d (%.2f%%)\n", res.FCT.Unfinished, 100*res.FCT.UnfinishedFrac)
	}
	if res.Scheme == hermes.SchemeHermes {
		fmt.Printf("hermes: reroutes=%d (timeout=%d failure=%d) probes=%d overhead=%.3f%%\n",
			res.Reroutes, res.TimeoutReroutes, res.FailureReroutes,
			res.ProbesSent, 100*res.ProbeOverhead)
	}
	if *visibility {
		fmt.Printf("visibility: switch-pair=%.3f host-pair=%.5f\n",
			res.VisibilitySwitchPair, res.VisibilityHostPair)
	}
	if res.Recovery != nil {
		ms := func(ns int64) string {
			if ns < 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fms", float64(ns)/1e6)
		}
		fmt.Printf("recovery: scenario=%s traffic-end=%.1fms\n",
			res.Recovery.Scenario, float64(res.Recovery.TrafficEndNs)/1e6)
		for _, e := range res.Recovery.Events {
			clear := "-"
			if e.ClearNs >= 0 {
				clear = fmt.Sprintf("%.1fms", float64(e.ClearNs)/1e6)
			}
			fmt.Printf("  %-28s onset=%.1fms clear=%s detect=%s reroute=%s dip(depth=%.2f dur=%s cost=%.1fGbps*ms) reconverge=%s restore=%s\n",
				e.Label, float64(e.OnsetNs)/1e6, clear,
				ms(e.TimeToDetectNs), ms(e.TimeToRerouteNs),
				e.DipDepth, ms(e.DipDurationNs), e.DipIntegralGbpsMs,
				ms(e.ReconvergeNs), ms(e.PathRestoreNs))
		}
	}
	if res.Alerts != nil {
		if err := hermes.RenderAlertText(os.Stdout, res.Alerts, 0); err != nil {
			log.Fatal(err)
		}
	}
	if res.Perf != nil {
		res.Perf.RenderText(os.Stdout)
	}
	if report != nil {
		fmt.Println()
		if err := report.RenderText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// writeReport serializes the report by extension: .csv gets the long-format
// CSV, anything else indented JSON.
func writeReport(rep *hermes.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = rep.WriteCSV(f)
	} else {
		err = rep.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
