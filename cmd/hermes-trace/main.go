// hermes-trace analyzes a flow trace written by hermes.Config.TraceWriter
// (hermes-sim -trace / hermes-bench -trace): it attributes each flow's
// completion time to base RTT, queueing, RTO stalls and reroute gaps, ranks
// the slowest flows, renders a per-port queue-occupancy heatmap from the
// matching run report, and converts traces to Perfetto-loadable JSON.
//
// Examples:
//
//	hermes-trace run.trace.jsonl
//	hermes-trace -report run.report.json -top 15 run.trace.jsonl
//	hermes-trace -perfetto run.perfetto.json run.trace.jsonl
//	hermes-trace -compare hermes.trace.jsonl ecmp.trace.jsonl
//	hermes-trace -timeline run.ts.jsonl
//	hermes-trace -alerts run.alerts.jsonl
//	hermes-trace -checkpoint ckpts/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/perf"
	"github.com/hermes-repro/hermes/internal/textplot"
	"github.com/hermes-repro/hermes/internal/trace"
)

func main() {
	var (
		reportFile  = flag.String("report", "", "run report JSON (adds the per-port queue-occupancy heatmap)")
		topN        = flag.Int("top", 10, "number of slowest flows to detail")
		pct         = flag.Float64("pct", 0.99, "tail percentile for the attribution summary (in [0,1))")
		perfetto    = flag.String("perfetto", "", "also convert the trace to Chrome trace-event JSON at this path")
		compareFile = flag.String("compare", "", "second trace: print a side-by-side attribution comparison instead of a full analysis")
		tsFile      = flag.String("timeline", "", "flight-recorder time series (.jsonl or .csv, from hermes-sim -timeseries): render sparklines, queue heatmap and path-state timelines")
		ledgerFile  = flag.String("perf-ledger", "", "perf ledger JSON (from hermes-bench -perf): render each benchmark's ns/op trajectory")
		alertsFile  = flag.String("alerts", "", "alert log JSONL (from hermes-sim/hermes-chaos -alert-log): render each run's episodes and state timeline")
		ckptFile    = flag.String("checkpoint", "", "checkpoint file or directory (from hermes-sim -checkpoint-dir): print its header, embedded experiment and state-section sizes")
		width       = flag.Int("width", 64, "chart width in cells")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the analysis to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		version     = flag.Bool("version", false, "print build version and VCS revision, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(hermes.VersionString())
		return
	}
	if *cpuProfile != "" {
		stop, err := perf.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := perf.WriteHeapProfile(*memProfile); err != nil {
				log.Print(err)
			}
		}()
	}
	if *ledgerFile != "" {
		if err := renderPerfLedger(os.Stdout, *ledgerFile, *width); err != nil {
			log.Fatal(err)
		}
		if flag.NArg() == 0 && *tsFile == "" && *alertsFile == "" {
			return
		}
	}
	if *ckptFile != "" {
		if err := inspectCheckpoint(os.Stdout, *ckptFile); err != nil {
			log.Fatal(err)
		}
		if flag.NArg() == 0 && *tsFile == "" && *alertsFile == "" {
			return
		}
	}
	if *alertsFile != "" {
		if err := renderAlertLog(os.Stdout, *alertsFile, *width); err != nil {
			log.Fatal(err)
		}
		if flag.NArg() == 0 && *tsFile == "" {
			return
		}
	}
	if *tsFile != "" {
		if err := timeline(os.Stdout, loadTimeseries(*tsFile), *width); err != nil {
			log.Fatal(err)
		}
		if flag.NArg() == 0 {
			return
		}
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hermes-trace [flags] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       hermes-trace -timeline run.ts.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *pct < 0 || *pct >= 1 {
		log.Fatalf("-pct %v out of range [0,1)", *pct)
	}

	rec := loadTrace(flag.Arg(0))

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WritePerfetto(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfetto trace written to %s (open in ui.perfetto.dev)\n", *perfetto)
	}

	if *compareFile != "" {
		other := loadTrace(*compareFile)
		if err := compare(os.Stdout, flag.Arg(0), rec, *compareFile, other, *pct); err != nil {
			log.Fatal(err)
		}
		return
	}

	var rep *hermes.Report
	if *reportFile != "" {
		data, err := os.ReadFile(*reportFile)
		if err != nil {
			log.Fatal(err)
		}
		rep = &hermes.Report{}
		if err := json.Unmarshal(data, rep); err != nil {
			log.Fatalf("parse %s: %v", *reportFile, err)
		}
	}
	if err := analyze(os.Stdout, rec, rep, *topN, *pct, *width); err != nil {
		log.Fatal(err)
	}
}

func loadTrace(path string) *trace.Recorder {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	return rec
}

// analyze prints the full attribution report for one trace.
func analyze(w io.Writer, rec *trace.Recorder, rep *hermes.Report, topN int, pct float64, width int) error {
	printHeader(w, rec)

	s := rec.Summarize()
	fmt.Fprintf(w, "%d events (%d flows, %d completed), %d spans",
		len(rec.Events), s.Flows, s.Completed, len(rec.Spans))
	if rec.Dropped > 0 || rec.DroppedSpans > 0 {
		fmt.Fprintf(w, " [TRUNCATED: %d events, %d spans dropped]", rec.Dropped, rec.DroppedSpans)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "moves/flow %.2f, retx %d, rto %d, ecn %d, drops %d\n",
		s.MovesPerFlow, s.Retransmits, s.Timeouts, s.ECNMarks, s.Drops)

	flows := rec.Attribution()
	if len(flows) == 0 {
		fmt.Fprintln(w, "no spans in trace: attribution unavailable (v1 trace?)")
		return nil
	}

	all := trace.TailAttribution(flows, 0)
	tail := trace.TailAttribution(flows, pct)
	fmt.Fprintf(w, "\nFCT attribution (share of summed completion time):\n")
	fmt.Fprintf(w, "%-14s %10s %14s\n", "component", "all flows",
		fmt.Sprintf("p%g tail", pct*100))
	row := func(name string, a, t float64) {
		fmt.Fprintf(w, "%-14s %9.1f%% %13.1f%%\n", name, 100*a, 100*t)
	}
	row("base", all.BaseShare, tail.BaseShare)
	row("queueing", all.QueueShare, tail.QueueShare)
	row("rto stall", all.StallShare, tail.StallShare)
	row("reroute gap", all.RerouteShare, tail.RerouteShare)
	fmt.Fprintf(w, "tail: %d flows with FCT >= %.3f ms (mean %.3f ms, %d unfinished)\n",
		tail.N, ms(int64(tail.CutoffNs)), ms(int64(tail.MeanFCTNs)), tail.Unfinished)

	top := trace.SlowestFlows(flows, topN)
	fmt.Fprintf(w, "\ntop %d slow flows:\n", len(top))
	fmt.Fprintf(w, "%8s %10s %10s %6s %6s %6s %6s %3s %3s %4s  %s\n",
		"flow", "size", "fct(ms)", "base%", "queue%", "stall%", "rrt%", "mv", "rto", "retx", "paths (reasons)")
	for _, b := range top {
		// Per-packet sprayers (Presto, DRB) visit thousands of paths per
		// flow; cap the listing so the table stays a table.
		const maxPaths = 12
		shown := b.Paths
		extra := 0
		if len(shown) > maxPaths {
			extra = len(shown) - maxPaths
			shown = shown[:maxPaths]
		}
		paths := make([]string, len(shown))
		for i, p := range shown {
			paths[i] = fmt.Sprint(p)
		}
		pathCol := "[" + strings.Join(paths, " ") + "]"
		if extra > 0 {
			pathCol += fmt.Sprintf(" +%d more", extra)
		}
		if len(b.Reasons) > 0 {
			pathCol += " (" + strings.Join(b.Reasons, ",") + ")"
		}
		if !b.Finished {
			pathCol += " UNFINISHED"
		}
		fmt.Fprintf(w, "%8d %10s %10.3f %5.1f%% %5.1f%% %5.1f%% %5.1f%% %3d %3d %4d  %s\n",
			b.Flow, bytesStr(b.Size), ms(int64(b.FCT)),
			100*b.Share(b.BaseNs), 100*b.Share(b.QueueNs),
			100*b.Share(b.StallNs), 100*b.Share(b.RerouteNs),
			b.Moves, b.Timeouts, b.Retx, pathCol)
	}

	printHopDecomposition(w, rec, width)
	if rep != nil {
		printQueueHeatmap(w, rep, width)
	}
	printVerdicts(w, rec)
	return nil
}

func printHeader(w io.Writer, rec *trace.Recorder) {
	m := rec.Meta
	if m.Schema == "" {
		fmt.Fprintln(w, "trace: (no meta header: v1 trace)")
		return
	}
	fmt.Fprintf(w, "trace: scheme=%s workload=%s load=%.2f seed=%d", m.Scheme, m.Workload, m.Load, m.Seed)
	if m.Failure != "" {
		fmt.Fprintf(w, " failure=%s", m.Failure)
	}
	fmt.Fprintf(w, "\nbase RTT %.1f us, host rate %.1f Gbps, simulated %.1f ms\n",
		float64(m.BaseRTTNs)/1e3, float64(m.HostRateBps)/1e9, float64(m.SimDurationNs)/1e6)
}

// printHopDecomposition aggregates the fabric's per-flow hop accounting into
// a where-did-queueing-happen bar chart.
func printHopDecomposition(w io.Writer, rec *trace.Recorder, width int) {
	if len(rec.FlowHops) == 0 {
		return
	}
	hopNames := []string{"host->leaf", "leaf->spine", "spine->leaf", "leaf->host"}
	var series []textplot.Series
	var totalQueue, totalSer, totalProp float64
	hopQ := make([]float64, len(hopNames))
	for _, fh := range rec.FlowHops {
		totalQueue += float64(fh.QueueNs)
		totalSer += float64(fh.SerNs)
		totalProp += float64(fh.PropNs)
		for i := range hopQ {
			if i < len(fh.HopQueueNs) {
				hopQ[i] += float64(fh.HopQueueNs[i])
			}
		}
	}
	for i, name := range hopNames {
		series = append(series, textplot.Series{Label: name, Values: []float64{hopQ[i] / 1e6}})
	}
	fmt.Fprintf(w, "\nfabric delay decomposition (all delivered data packets): queue %.3f ms, serialization %.3f ms, propagation %.3f ms\n",
		totalQueue/1e6, totalSer/1e6, totalProp/1e6)
	_ = textplot.Bars(w, "queueing by hop (ms):", []string{"ms"}, series, width)
}

// printQueueHeatmap renders the swept per-port queue depths from a run
// report as a time heatmap, one row per fabric port.
func printQueueHeatmap(w io.Writer, rep *hermes.Report, width int) {
	const prefix = "net.port.queue_bytes{port="
	var rows []textplot.Series
	for _, s := range rep.Series {
		if !strings.HasPrefix(s.Name, prefix) {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(s.Name, prefix), "}")
		rows = append(rows, textplot.Series{Label: label, Values: s.Values})
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "\nreport has no per-port queue series (run with -telemetry)")
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	fmt.Fprintln(w)
	_ = textplot.Heatmap(w, "per-port queue occupancy over time (bytes):", rows, width)
}

func printVerdicts(w io.Writer, rec *trace.Recorder) {
	if len(rec.Verdicts) == 0 {
		return
	}
	fmt.Fprintf(w, "\nhermes failure verdicts (%d):\n", len(rec.Verdicts))
	max := len(rec.Verdicts)
	if max > 20 {
		max = 20
	}
	for _, v := range rec.Verdicts[:max] {
		fmt.Fprintf(w, "  %10.3f ms  host %d -> leaf %d: path %d condemned (%s)\n",
			ms(int64(v.At)), v.Host, v.DstLeaf, v.Path, v.Reason)
	}
	if len(rec.Verdicts) > max {
		fmt.Fprintf(w, "  ... %d more\n", len(rec.Verdicts)-max)
	}
}

// compare prints the scheme-level attribution of two traces side by side —
// the Fig 8/17-style question "where does each scheme's tail time go".
func compare(w io.Writer, nameA string, a *trace.Recorder, nameB string, b *trace.Recorder, pct float64) error {
	labelA, labelB := a.Meta.Scheme, b.Meta.Scheme
	if labelA == "" {
		labelA = nameA
	}
	if labelB == "" {
		labelB = nameB
	}
	fa, fb := a.Attribution(), b.Attribution()
	ta, tb := trace.TailAttribution(fa, pct), trace.TailAttribution(fb, pct)
	aa, ab := trace.TailAttribution(fa, 0), trace.TailAttribution(fb, 0)

	fmt.Fprintf(w, "FCT attribution: %s vs %s (p%g tail | all flows)\n", labelA, labelB, pct*100)
	fmt.Fprintf(w, "%-14s %22s %22s\n", "component", labelA, labelB)
	row := func(name string, ta1, aa1, tb1, ab1 float64) {
		fmt.Fprintf(w, "%-14s %10.1f%% | %7.1f%% %10.1f%% | %7.1f%%\n",
			name, 100*ta1, 100*aa1, 100*tb1, 100*ab1)
	}
	row("base", ta.BaseShare, aa.BaseShare, tb.BaseShare, ab.BaseShare)
	row("queueing", ta.QueueShare, aa.QueueShare, tb.QueueShare, ab.QueueShare)
	row("rto stall", ta.StallShare, aa.StallShare, tb.StallShare, ab.StallShare)
	row("reroute gap", ta.RerouteShare, aa.RerouteShare, tb.RerouteShare, ab.RerouteShare)
	fmt.Fprintf(w, "tail mean FCT  %10.3f ms %21.3f ms\n", ms(int64(ta.MeanFCTNs)), ms(int64(tb.MeanFCTNs)))
	fmt.Fprintf(w, "tail unfinished %9d %24d\n", ta.Unfinished, tb.Unfinished)
	if tb.StallShare > 0 {
		fmt.Fprintf(w, "stall-share ratio (%s/%s): %.1fx\n", labelA, labelB, ta.StallShare/tb.StallShare)
	}
	return nil
}

// renderPerfLedger prints each pinned benchmark's ns/op trajectory from the
// perf ledger: a sparkline over entries (oldest left), the entry history,
// and — when at least two entries exist — the latest-vs-previous verdict
// from the same comparator CI uses.
func renderPerfLedger(w io.Writer, path string, width int) error {
	// Distinguish "no such file" from "a ledger with zero entries":
	// LoadLedger maps a missing file to an empty ledger (the right behavior
	// for hermes-bench appending its first entry), but for a viewer a typo'd
	// path should not masquerade as an empty history.
	if _, err := os.Stat(path); os.IsNotExist(err) {
		fmt.Fprintf(w, "perf ledger %s not found (hermes-bench -perf creates it; check the path)\n", path)
		return nil
	}
	ledger, err := perf.LoadLedger(path)
	if err != nil {
		return err
	}
	if len(ledger.Entries) == 0 {
		fmt.Fprintf(w, "perf ledger %s has no entries yet (seed it with hermes-bench -perf)\n", path)
		return nil
	}
	fmt.Fprintf(w, "perf ledger %s: %d entries\n", path, len(ledger.Entries))
	for _, name := range ledger.Names() {
		var history []perf.LedgerEntry
		for _, e := range ledger.Entries {
			if e.Name == name {
				history = append(history, e)
			}
		}
		fmt.Fprintf(w, "\n%s (%d measurements)\n", name, len(history))
		ns := make([]float64, len(history))
		for i, e := range history {
			ns[i] = e.NsOp
		}
		if err := textplot.Sparkline(w, "  ns/op", ns, width); err != nil {
			return err
		}
		for _, e := range history {
			rev := e.Fingerprint.Revision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if rev == "" {
				rev = "unknown"
			}
			line := fmt.Sprintf("  %s  %8.0f ns/op %6d B/op %4d allocs/op  rev %s", e.Date, e.NsOp, e.BOp, e.AllocsOp, rev)
			if e.Fingerprint.Dirty {
				line += "+dirty"
			}
			if e.Note != "" {
				line += "  (" + e.Note + ")"
			}
			fmt.Fprintln(w, line)
		}
		if len(history) >= 2 {
			c := perf.CompareEntries(history[len(history)-2], history[len(history)-1])
			fmt.Fprintf(w, "  latest vs previous: %s\n", c.String())
		}
	}
	return nil
}

// renderAlertLog prints every run of a JSONL alert log (hermes-sim or
// hermes-chaos -alert-log): the run label, episode lines, and the per-rule
// state timeline.
func renderAlertLog(w io.Writer, path string, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runs, err := hermes.ReadAlertLog(f)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Fprintf(w, "alert log %s has no runs (arm the watchdog with -alerts)\n", path)
		return nil
	}
	fmt.Fprintf(w, "alert log %s: %d run(s)\n", path, len(runs))
	for i := range runs {
		fmt.Fprintf(w, "\nrun %s\n", runs[i].Label)
		if err := hermes.RenderAlertText(w, &runs[i].Report, width); err != nil {
			return err
		}
	}
	return nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func bytesStr(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1f MB", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
