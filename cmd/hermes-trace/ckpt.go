package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	hermes "github.com/hermes-repro/hermes"
	"github.com/hermes-repro/hermes/internal/checkpoint"
)

// inspectCheckpoint prints a checkpoint envelope without replaying it: the
// header (version, fingerprints, frozen instant), the experiment the embedded
// config describes, and the per-section byte budget of the verification
// state. path may be a directory, in which case the latest checkpoint wins —
// the same resolution rule hermes-sim -resume uses.
func inspectCheckpoint(w io.Writer, path string) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		latest, err := checkpoint.Latest(path)
		if err != nil {
			return err
		}
		path = latest
	}
	f, err := checkpoint.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint %s\n", path)
	fmt.Fprintf(w, "  format      %s/v%d\n", f.Magic, f.Version)
	fmt.Fprintf(w, "  sim time    %.3f ms (t=%dns)\n", float64(f.SimTimeNs)/1e6, f.SimTimeNs)
	fmt.Fprintf(w, "  seed        %d\n", f.Seed)
	fmt.Fprintf(w, "  config sha  %s\n", f.ConfigSHA)
	fmt.Fprintf(w, "  state sha   %s\n", f.StateSHA)

	var cfg hermes.Config
	if err := json.Unmarshal(f.Config, &cfg); err != nil {
		return fmt.Errorf("checkpoint config: %w", err)
	}
	fmt.Fprintf(w, "  experiment  scheme=%s workload=%s load=%.2f flows=%d topology=%dx%dx%d\n",
		cfg.Scheme, cfg.Workload, cfg.Load, cfg.Flows,
		cfg.Topology.Leaves, cfg.Topology.Spines, cfg.Topology.HostsPerLeaf)
	if cfg.Scenario != nil {
		fmt.Fprintf(w, "  scenario    %s (%d events)\n", cfg.Scenario.Name, len(cfg.Scenario.Events))
	}
	if cfg.Checkpoint != nil {
		fmt.Fprintf(w, "  plan        dir=%s interval=%dns at=%v\n",
			cfg.Checkpoint.Dir, cfg.Checkpoint.IntervalNs, cfg.Checkpoint.AtNs)
	}

	// The state is the replay-verification oracle: section sizes show where
	// the observable simulation state lives at the frozen instant.
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(f.State, &sections); err != nil {
		return fmt.Errorf("checkpoint state: %w", err)
	}
	names := make([]string, 0, len(sections))
	total := 0
	for name, raw := range sections {
		names = append(names, name)
		total += len(raw)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  state       %d bytes across %d sections\n", total, len(sections))
	for _, name := range names {
		fmt.Fprintf(w, "    %-10s %8d bytes\n", name, len(sections[name]))
	}
	return nil
}
