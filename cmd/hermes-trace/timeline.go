package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/hermes-repro/hermes/internal/textplot"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// loadTimeseries reads a flight-recorder file written by hermes-sim
// -timeseries / -timeseries-csv or hermes-bench -timeseries, picking the
// parser by extension.
func loadTimeseries(path string) *timeseries.Recorder {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var rec *timeseries.Recorder
	if strings.HasSuffix(path, ".csv") {
		rec, err = timeseries.ReadCSV(f)
	} else {
		rec, err = timeseries.ReadJSONL(f)
	}
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return rec
}

// stateRank orders path characterizations for the timeline glyphs; it must
// match the glyph array in timeline below.
var stateRank = map[string]float64{"gray": 0, "good": 1, "congested": 2, "failed": 3}

// timeline renders the flight recorder as text: run identity, sparklines of
// the aggregate series, the per-port queue heatmap, per-path state timelines
// reconstructed from the transition log, and the transitions themselves.
func timeline(w io.Writer, rec *timeseries.Recorder, width int) error {
	m := rec.Meta
	if m.Schema != "" {
		fmt.Fprintf(w, "timeseries: scheme=%s workload=%s load=%.2f seed=%d", m.Scheme, m.Workload, m.Load, m.Seed)
		if m.Failure != "" {
			fmt.Fprintf(w, " failure=%s", m.Failure)
		}
		fmt.Fprintf(w, "\nsampled every %.0f us over %.1f ms", float64(m.IntervalNs)/1e3, float64(m.SimDurationNs)/1e6)
	}
	fmt.Fprintf(w, " (%d samples", rec.Len())
	if t := rec.TruncatedSamples(); t > 0 {
		fmt.Fprintf(w, ", %d truncated at the ring cap", t)
	}
	fmt.Fprintln(w, ")")

	// Aggregate sparklines: throughput, flow population, loss signals, and
	// the fabric-wide Hermes census summed over leaves.
	labelW := 0
	spark := func(label string, vals []float64) {
		if len(vals) == 0 {
			return
		}
		_ = textplot.Sparkline(w, fmt.Sprintf("%-*s", labelW, label), vals, width)
	}
	census := map[string][]float64{}
	for _, name := range rec.Names() {
		for _, state := range []string{"good", "gray", "congested", "failed"} {
			if strings.HasPrefix(name, "hermes.paths_"+state+"{") {
				census[state] = addSeries(census[state], rec.Series(name))
			}
		}
	}
	aggregates := []string{
		"net.tx_gbps", "net.drops_total", "net.ecn_marks_total",
		"transport.flows_active", "transport.inflight_bytes",
		"transport.retransmits_total", "transport.timeouts_total",
	}
	for _, name := range aggregates {
		if len(rec.Series(name)) > 0 && len(name) > labelW {
			labelW = len(name)
		}
	}
	for state := range census {
		if n := len("hermes.paths_" + state); n > labelW {
			labelW = n
		}
	}
	fmt.Fprintln(w)
	for _, name := range aggregates {
		spark(name, rec.Series(name))
	}
	for _, state := range []string{"good", "gray", "congested", "failed"} {
		spark("hermes.paths_"+state, census[state])
	}

	printTSQueueHeatmap(w, rec, width)
	printPathTimelines(w, rec, width)
	printTransitions(w, rec)
	return nil
}

func addSeries(acc, v []float64) []float64 {
	if acc == nil {
		acc = make([]float64, len(v))
	}
	for i := range v {
		if i < len(acc) {
			acc[i] += v[i]
		}
	}
	return acc
}

func printTSQueueHeatmap(w io.Writer, rec *timeseries.Recorder, width int) {
	const prefix = "net.port.queue_bytes{port="
	var rows []textplot.Series
	for _, name := range rec.Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(name, prefix), "}")
		rows = append(rows, textplot.Series{Label: label, Values: rec.Series(name)})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	fmt.Fprintln(w)
	_ = textplot.Heatmap(w, "per-port queue occupancy over time (bytes):", rows, width)
}

// printPathTimelines reconstructs each transitioning path's state over the
// retained sample window from the transition log and renders it one glyph
// per cell: '.' gray, 'g' good, 'c' congested, 'X' failed.
func printPathTimelines(w io.Writer, rec *timeseries.Recorder, width int) {
	trs := rec.Transitions()
	times := rec.Times()
	if len(trs) == 0 || len(times) == 0 {
		return
	}
	type key struct{ leaf, dst, path int }
	byPath := map[key][]timeseries.Transition{}
	var order []key
	for _, t := range trs {
		k := key{t.Leaf, t.Dst, t.Path}
		if _, ok := byPath[k]; !ok {
			order = append(order, k)
		}
		byPath[k] = append(byPath[k], t)
	}
	// Most severe excursion first, so failed/congested paths survive the row
	// cap; ties break on (leaf, dst, path) to keep the order deterministic.
	severity := func(k key) float64 {
		worst := 0.0
		for _, t := range byPath[k] {
			if r := stateRank[t.To]; r > worst {
				worst = r
			}
		}
		return worst
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if sa, sb := severity(a), severity(b); sa != sb {
			return sa > sb
		}
		if a.leaf != b.leaf {
			return a.leaf < b.leaf
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.path < b.path
	})
	const maxRows = 24
	shown := order
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	rows := make([]textplot.Series, 0, len(shown))
	for _, k := range shown {
		seq := byPath[k] // already in time order (single appender)
		vals := make([]float64, len(times))
		state := stateRank[seq[0].From]
		next := 0
		for i, at := range times {
			for next < len(seq) && seq[next].AtNs <= at {
				state = stateRank[seq[next].To]
				next++
			}
			vals[i] = state
		}
		rows = append(rows, textplot.Series{
			Label:  fmt.Sprintf("leaf%d dst%d path%d", k.leaf, k.dst, k.path),
			Values: vals,
		})
	}
	fmt.Fprintln(w)
	_ = textplot.Timeline(w,
		"path-state timelines ('.' gray, 'g' good, 'c' congested, 'X' failed):",
		rows, []byte{'.', 'g', 'c', 'X'}, width)
	if extra := len(order) - len(shown); extra > 0 {
		fmt.Fprintf(w, "... %d more transitioning paths\n", extra)
	}
}

func printTransitions(w io.Writer, rec *timeseries.Recorder) {
	trs := rec.Transitions()
	if len(trs) == 0 {
		return
	}
	fmt.Fprintf(w, "\npath-state transitions (%d", len(trs))
	if rec.DroppedTransitions > 0 {
		fmt.Fprintf(w, ", %d dropped at the cap", rec.DroppedTransitions)
	}
	fmt.Fprintln(w, "):")
	max := len(trs)
	if max > 20 {
		max = 20
	}
	for _, t := range trs[:max] {
		fmt.Fprintf(w, "  %10.3f ms  leaf %d -> dst %d path %d: %s -> %s (%s)\n",
			ms(t.AtNs), t.Leaf, t.Dst, t.Path, t.From, t.To, t.Cause)
	}
	if len(trs) > max {
		fmt.Fprintf(w, "  ... %d more\n", len(trs)-max)
	}
}
