// Tuning example: the paper leaves automatic Hermes parameter configuration
// as future work (§3.3, §6). This example derives the Table 4 defaults for a
// fabric, runs the coordinate-descent auto-tuner on an asymmetric
// data-mining workload, and compares default vs tuned performance across
// seeds.
package main

import (
	"flag"
	"fmt"
	"log"

	hermes "github.com/hermes-repro/hermes"
)

func main() {
	flows := flag.Int("flows", 250, "flows per tuning run")
	seeds := flag.Int("seeds", 2, "seeds per candidate evaluation")
	passes := flag.Int("passes", 1, "coordinate-descent passes")
	flag.Parse()

	topo := hermes.Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
	cfg := hermes.Config{
		Topology: topo, Scheme: hermes.SchemeHermes,
		Workload: "data-mining", Load: 0.6, Flows: *flows,
		Failure: hermes.FailureSpec{Kind: hermes.FailureDegrade, Fraction: 0.2, DegradedBps: 2e9},
	}

	base, err := hermes.DeriveHermesParams(topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived defaults (§3.3): TRTTHigh=%dus DeltaRTT=%dus DeltaECN=%.2f S=%dKB R=%.1fGbps\n",
		base.TRTTHigh/1000, base.DeltaRTT/1000, base.DeltaECN, base.SBytes/1000, base.RBps/1e9)

	_, defStats, err := hermes.RunSeeds(cfg, hermes.Seeds(100, *seeds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default params: avg FCT %.3f ms (stddev %.3f over %d seeds)\n\n",
		defStats.Mean, defStats.StdDev, defStats.N)

	fmt.Println("tuning (coordinate descent over the Table 4 knobs)...")
	res, err := hermes.TuneHermes(cfg, nil, hermes.Seeds(1, *seeds), *passes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	// Validate on held-out seeds.
	tuned := cfg
	tuned.HermesParams = &res.Params
	_, tunedStats, err := hermes.RunSeeds(tuned, hermes.Seeds(100, *seeds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out comparison: default %.3f ms vs tuned %.3f ms (%+.1f%%)\n",
		defStats.Mean, tunedStats.Mean,
		100*(tunedStats.Mean-defStats.Mean)/defStats.Mean)
	p := res.Params
	fmt.Printf("tuned params: TRTTHigh=%dus DeltaRTT=%dus DeltaECN=%.2f S=%dKB R=%.1fGbps\n",
		p.TRTTHigh/1000, p.DeltaRTT/1000, p.DeltaECN, p.SBytes/1000, p.RBps/1e9)
}
