// Congestion-mismatch micro-benchmarks (§2.2.2 of the paper):
//
//   - Example 2 (Fig 2): a DCTCP flow sprayed Presto-style over an
//     asymmetric fabric shares one path with a 9 Gbps UDP flow; the sprayed
//     flow's throughput collapses and the healthy path's queue oscillates.
//   - Example 3 (Fig 3): spraying proportionally to capacity over a 1 Gbps
//     and a 10 Gbps path still loses throughput, because one congestion
//     window straddles both paths.
//   - Example 4 (Fig 4): the CONGA hidden-terminal: a paused flow flips
//     between spines on stale congestion state, spiking the queue.
//
// These examples drive the internal packages directly (they are micro
// set-ups, not workload experiments).
package main

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/metrics"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func main() {
	example2()
	example3()
	example4()
}

// example2 reproduces Fig 2: flow A (DCTCP, leaf1->leaf2) is sprayed over
// both spines while flow B (UDP 9 Gbps, leaf0->leaf2) occupies spine0, and
// leaf0's link to spine1 is cut.
func example2() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		panic(err)
	}
	nw.SetFabricLink(0, 1, 0) // broken leaf0 <-> spine1

	const flowSize = 50_000_000
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*"} // equal weights, as in Fig 2
	})

	// Flow B: UDP 9 Gbps from leaf0 to leaf2, forced through spine0.
	udp := &transport.UDPSender{
		Eng: eng, Host: nw.Hosts[0], Dst: 4, RateBps: 9e9, Paths: []int{0},
	}
	udp.Start()

	// Queue sampling at spine0's port toward leaf2 (the Fig 2b signal).
	q := &metrics.QueueSampler{Port: nw.Spines[0].Downlink(2), Interval: 100 * sim.Microsecond}
	q.Start(eng)

	// Flow A: DCTCP from leaf1 to leaf2, sprayed over both spines.
	f := tr.StartFlow(2, 5, flowSize)
	eng.Run(2 * sim.Second)

	report("Example 2 (Fig 2): Presto under asymmetry + UDP cross traffic", f, eng, q)
	fmt.Printf("  expected: throughput far below the ~1 Gbps spine0 residual + 10 Gbps spine1 sum;\n")
	fmt.Printf("  the shared window is throttled by spine0's ECN while spine1 sits idle.\n\n")
}

// example3 reproduces Fig 3: capacity-proportional spraying over a 1 Gbps
// and a 10 Gbps path still underutilizes both.
func example3() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 11e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		panic(err)
	}
	nw.SetFabricLink(0, 1, 1e9) // heterogenous: spine1 path is 1 Gbps
	nw.SetFabricLink(1, 1, 1e9)

	const flowSize = 50_000_000
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true} // 10:1
	})
	q := &metrics.QueueSampler{Port: nw.Spines[1].Downlink(1), Interval: 100 * sim.Microsecond}
	q.Start(eng)

	f := tr.StartFlow(0, 2, flowSize)
	eng.Run(2 * sim.Second)

	report("Example 3 (Fig 3): capacity-weighted spraying over 10G+1G paths", f, eng, q)
	fmt.Printf("  expected: well under the 11 Gbps aggregate; marks on the 1 Gbps path\n")
	fmt.Printf("  cut the window that also drives the 10 Gbps path.\n\n")
}

// example4 reproduces Fig 4: flow A pauses 3 ms every 10 ms (forcing
// flowlet gaps); CONGA flips it between spines because the alternative
// path's stale state always reads zero, spiking the queue under flow B.
func example4() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		panic(err)
	}
	lb.InstallConga(nw, rng, lb.DefaultCongaParams())
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.PassThrough{Scheme: "CONGA"}
	})

	// Flow B: steady DCTCP from leaf1 to leaf2.
	fb := tr.StartFlow(2, 4, 1_000_000_000)

	// Flow A: DCTCP from leaf0 to leaf2, paused 3 ms every 10 ms, emulated
	// as repeated 8 MB bursts. Each pause exceeds the flowlet timeout, so
	// CONGA re-picks the path per burst. We attribute each burst to the
	// spine whose leaf0 uplink carried its bytes.
	up0, up1 := nw.Leaves[0].Uplink(0), nw.Leaves[0].Uplink(1)
	var burstPaths []int
	pathChanges := 0
	var burst func()
	bursts := 0
	burst = func() {
		b0, b1 := up0.TxBytes, up1.TxBytes
		tr.StartFlow(0, 5, 8_000_000)
		eng.Schedule(12*sim.Millisecond, func() {
			d0, d1 := up0.TxBytes-b0, up1.TxBytes-b1
			p := 0
			if d1 > d0 {
				p = 1
			}
			if n := len(burstPaths); n > 0 && burstPaths[n-1] != p {
				pathChanges++
			}
			burstPaths = append(burstPaths, p)
		})
		bursts++
		if bursts < 12 {
			eng.Schedule(13*sim.Millisecond, burst) // ~10ms send + 3ms pause
		}
	}
	burst()

	q0 := &metrics.QueueSampler{Port: nw.Spines[0].Downlink(2), Interval: 100 * sim.Microsecond}
	q0.Start(eng)
	q1 := &metrics.QueueSampler{Port: nw.Spines[1].Downlink(2), Interval: 100 * sim.Microsecond}
	q1.Start(eng)

	eng.Run(200 * sim.Millisecond)
	_ = fb
	fmt.Println("Example 4 (Fig 4): CONGA hidden terminal")
	fmt.Printf("  flow A burst->spine assignment: %v\n", burstPaths)
	fmt.Printf("  flow A spine changes across bursts: %d (flip-flopping on stale state)\n", pathChanges)
	fmt.Printf("  spine0->leaf2 queue: mean %.0f B, max %d B, stddev %.0f B\n",
		q0.MeanBytes(), q0.MaxBytes(), q0.StdDevBytes())
	fmt.Printf("  spine1->leaf2 queue: mean %.0f B, max %d B, stddev %.0f B\n",
		q1.MeanBytes(), q1.MaxBytes(), q1.StdDevBytes())
	fmt.Printf("  expected: repeated queue spikes when flow A lands on flow B's spine.\n")
}

func report(title string, f *transport.Flow, eng *sim.Engine, q *metrics.QueueSampler) {
	dur := f.EndAt
	if !f.Done {
		dur = eng.Now()
	}
	gbps := float64(f.AckedBytes()) * 8 / float64(dur-f.StartAt)
	fmt.Println(title)
	fmt.Printf("  flow A goodput: %.2f Gbps (acked %d MB in %d ms)\n",
		gbps, f.AckedBytes()/1e6, (dur-f.StartAt)/1e6)
	fmt.Printf("  bottleneck queue: mean %.0f B, max %d B, stddev %.0f B\n",
		q.MeanBytes(), q.MaxBytes(), q.StdDevBytes())
}
