// Quickstart: run a small symmetric fabric at 60% load under the web-search
// workload and compare ECMP against Hermes. This is the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	hermes "github.com/hermes-repro/hermes"
)

func main() {
	fmt.Println("Hermes quickstart: web-search @ 60% load, testbed-scale fabric")
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "scheme", "avg FCT(ms)", "small(ms)", "p99(ms)", "flows")
	for _, scheme := range []hermes.Scheme{hermes.SchemeECMP, hermes.SchemeHermes} {
		res, err := hermes.Run(hermes.Config{
			Topology: hermes.TestbedTopology(),
			Scheme:   scheme,
			Workload: "web-search",
			Load:     0.6,
			Flows:    400,
			Seed:     42,
		})
		if err != nil {
			log.Fatalf("run %s: %v", scheme, err)
		}
		fmt.Printf("%-10s %12.2f %12.2f %12.2f %10d\n",
			scheme,
			res.FCT.Overall.MeanMs(),
			res.FCT.Small.MeanMs(),
			res.FCT.Overall.P99Ms(),
			res.FCT.Flows)
	}
}
