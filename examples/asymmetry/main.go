// Asymmetry example (the Fig 13/14 scenario): 20% of leaf-spine links are
// degraded from 10 Gbps to 2 Gbps and every scheme is run over both
// workloads. Expect congestion-aware schemes to beat ECMP broadly, Hermes to
// lead on data-mining (timely rerouting resolves large-flow collisions that
// flowlet-based schemes cannot), and CONGA to lead on web-search (its
// in-switch visibility places bursts of small flows better).
package main

import (
	"flag"
	"fmt"
	"log"

	hermes "github.com/hermes-repro/hermes"
)

func main() {
	flows := flag.Int("flows", 500, "flows per run")
	load := flag.Float64("load", 0.6, "offered load (fraction of intact bisection)")
	seed := flag.Int64("seed", 3, "random seed")
	flag.Parse()

	topo := hermes.Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
	schemes := []hermes.Scheme{
		hermes.SchemeECMP, hermes.SchemePresto, hermes.SchemeCONGA,
		hermes.SchemeLetFlow, hermes.SchemeCLOVE, hermes.SchemeHermes,
	}
	for _, wl := range []string{"web-search", "data-mining"} {
		fmt.Printf("\n=== %s @ %.0f%% load, 20%% of fabric links degraded to 2 Gbps ===\n", wl, *load*100)
		fmt.Printf("%-10s %12s %12s %14s %12s\n", "scheme", "avg FCT(ms)", "small(ms)", "small p99(ms)", "large(ms)")
		for _, sch := range schemes {
			res, err := hermes.Run(hermes.Config{
				Topology: topo, Scheme: sch, Workload: wl,
				Load: *load, Flows: *flows, Seed: *seed,
				Failure: hermes.FailureSpec{
					Kind: hermes.FailureDegrade, Fraction: 0.2, DegradedBps: 2e9,
				},
			})
			if err != nil {
				log.Fatalf("%s: %v", sch, err)
			}
			fmt.Printf("%-10s %12.3f %12.3f %14.3f %12.2f\n",
				sch, res.FCT.Overall.MeanMs(), res.FCT.Small.MeanMs(),
				res.FCT.Small.P99Ms(), res.FCT.Large.MeanMs())
		}
	}
}
