// MPTCP example: the paper discusses MPTCP (§5.1, §7) but could not
// simulate it. This example runs the comparison the paper wanted: MPTCP vs
// single-path schemes on a symmetric fabric (where subflow multipathing
// shines) and under heavy incast-prone load (where maintaining several
// connections per flow backfires, §7).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hermes "github.com/hermes-repro/hermes"
)

func main() {
	flows := flag.Int("flows", 400, "flows per run")
	subflows := flag.Int("subflows", 4, "MPTCP subflows per logical flow")
	flag.Parse()

	topo := hermes.Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}

	fmt.Printf("=== symmetric fabric, web-search @ 60%% (MPTCP with %d subflows) ===\n", *subflows)
	rows, err := hermes.Comparison{
		Schemes: []hermes.Scheme{hermes.SchemeECMP, hermes.SchemeMPTCP, hermes.SchemeCONGA, hermes.SchemeHermes},
		Seeds:   hermes.Seeds(1, 2),
		Base: hermes.Config{
			Topology: topo, Workload: "web-search",
			Load: 0.6, Flows: *flows, MPTCPSubflows: *subflows,
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := hermes.WriteReport(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== same fabric @ 85%% load: small-flow tail ===\n")
	fmt.Printf("%-10s %14s %16s\n", "scheme", "small avg (ms)", "small p99 (ms)")
	for _, sch := range []hermes.Scheme{hermes.SchemeECMP, hermes.SchemeMPTCP, hermes.SchemeHermes} {
		res, err := hermes.Run(hermes.Config{
			Topology: topo, Scheme: sch, Workload: "web-search",
			Load: 0.85, Flows: *flows, Seed: 3, MPTCPSubflows: *subflows,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.3f %16.3f\n", sch,
			res.FCT.Small.MeanMs(), res.FCT.Small.P99Ms())
	}
	fmt.Println("\nexpected: MPTCP competitive on overall FCT (free multipathing, no")
	fmt.Println("congestion mismatch — subflows never reroute). The §7 incast penalty")
	fmt.Println("(several connections per flow) appears under synchronized fan-in")
	fmt.Println("rather than plain high load: see `hermes-bench -exp incast`.")
}
