// Failure example (the Fig 16/17 scenarios): one core switch either drops
// 2% of packets silently or blackholes half of the host pairs between two
// racks. Expect Hermes to detect both malfunctions and route around them
// (all flows finish, lowest FCT), ECMP to strand flows on the failed switch,
// and CONGA's utilization-based sensing to be fooled by the quiet-looking
// failed paths.
package main

import (
	"flag"
	"fmt"
	"log"

	hermes "github.com/hermes-repro/hermes"
)

func main() {
	flows := flag.Int("flows", 400, "flows per run")
	load := flag.Float64("load", 0.5, "offered load")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	topo := hermes.Topology{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelayNs: 2000, FabricDelayNs: 2000,
	}
	schemes := []hermes.Scheme{
		hermes.SchemeECMP, hermes.SchemePresto, hermes.SchemeCONGA,
		hermes.SchemeLetFlow, hermes.SchemeHermes,
	}
	scenarios := []struct {
		name string
		spec hermes.FailureSpec
	}{
		{"silent random drops (2% at spine 1)",
			hermes.FailureSpec{Kind: hermes.FailureRandomDrop, Spine: 1, DropRate: 0.02}},
		{"packet blackhole (half of rack0->rack3 pairs at spine 1)",
			hermes.FailureSpec{Kind: hermes.FailureBlackhole, Spine: 1, SrcLeaf: 0, DstLeaf: 3}},
	}
	for _, sc := range scenarios {
		fmt.Printf("\n=== %s, web-search @ %.0f%% load ===\n", sc.name, *load*100)
		fmt.Printf("%-10s %12s %12s %12s\n", "scheme", "avg FCT(ms)", "p99(ms)", "unfinished")
		for _, sch := range schemes {
			res, err := hermes.Run(hermes.Config{
				Topology: topo, Scheme: sch, Workload: "web-search",
				Load: *load, Flows: *flows, Seed: *seed, Failure: sc.spec,
			})
			if err != nil {
				log.Fatalf("%s: %v", sch, err)
			}
			fmt.Printf("%-10s %12.3f %12.2f %9d/%d\n",
				sch, res.FCT.Overall.MeanMs(), res.FCT.Overall.P99Ms(),
				res.FCT.Unfinished, res.FCT.Flows)
		}
	}
}
