package hermes_test

import (
	"fmt"

	hermes "github.com/hermes-repro/hermes"
)

// ExampleRun shows the minimal experiment: a small fabric, one scheme, one
// workload, deterministic seed.
func ExampleRun() {
	res, err := hermes.Run(hermes.Config{
		Topology: hermes.Topology{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelayNs: 1000, FabricDelayNs: 1000,
		},
		Scheme:   hermes.SchemeHermes,
		Workload: "web-search",
		Load:     0.3,
		Flows:    20,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("flows:", res.FCT.Flows, "unfinished:", res.FCT.Unfinished)
	// Output: flows: 20 unfinished: 0
}

// ExampleRunSeeds averages a metric across seeds, as the paper's 5-run
// averages do.
func ExampleRunSeeds() {
	cfg := hermes.Config{
		Topology: hermes.Topology{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelayNs: 1000, FabricDelayNs: 1000,
		},
		Scheme:   hermes.SchemeECMP,
		Workload: "data-mining",
		Load:     0.3,
		Flows:    15,
	}
	results, stats, err := hermes.RunSeeds(cfg, hermes.Seeds(1, 3))
	if err != nil {
		panic(err)
	}
	fmt.Println("runs:", len(results), "seeds:", stats.N)
	// Output: runs: 3 seeds: 3
}

// ExampleDeriveHermesParams derives the Table 4 defaults for a fabric.
func ExampleDeriveHermesParams() {
	p, err := hermes.DeriveHermesParams(hermes.LargeScaleTopology())
	if err != nil {
		panic(err)
	}
	fmt.Printf("T_ECN=%.0f%% S=%dKB\n", p.TECN*100, p.SBytes/1000)
	// Output: T_ECN=40% S=600KB
}
