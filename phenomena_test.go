package hermes

// Phenomenon regression tests: each §2.2.2 motivating observation of the
// paper is pinned as an executable assertion, so simulator changes that
// would break the reproduced dynamics fail loudly.

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Example 2 (Fig 2): a DCTCP flow sprayed equally over an asymmetric fabric
// with a 9 Gbps UDP flow on the only shared path collapses far below the
// ~11 Gbps of available capacity.
func TestPhenomenonCongestionMismatchUnderAsymmetry(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFabricLink(0, 1, 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*"}
	})
	udp := &transport.UDPSender{Eng: eng, Host: nw.Hosts[0], Dst: 4, RateBps: 9e9, Paths: []int{0}}
	udp.Start()
	f := tr.StartFlow(2, 5, 50_000_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	gbps := float64(f.Size) * 8 / float64(f.FCT())
	// The paper observes ~1 Gbps; anything under 4 demonstrates the
	// phenomenon (one idle 10G path is available throughout).
	if gbps > 4 {
		t.Fatalf("sprayed flow reached %.1f Gbps; congestion mismatch did not manifest", gbps)
	}
}

// Example 3 (Fig 3): capacity-proportional spraying over heterogeneous
// paths still loses throughput to the shared congestion window.
func TestPhenomenonMismatchWithCapacityWeights(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 11e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFabricLink(0, 1, 1e9)
	nw.SetFabricLink(1, 1, 1e9)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
	})
	f := tr.StartFlow(0, 2, 50_000_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	gbps := float64(f.Size) * 8 / float64(f.FCT())
	// 11 Gbps is available; the paper measures ~5. Assert well below 8.
	if gbps > 8 {
		t.Fatalf("weighted spray reached %.1f Gbps; mismatch did not manifest", gbps)
	}
}

// Example 4 (Fig 4): a flow with pauses exceeding the flowlet timeout
// flip-flops between spines under CONGA's aged state.
func TestPhenomenonCongaHiddenTerminalFlipFlop(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb.InstallConga(nw, rng, lb.DefaultCongaParams())
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.PassThrough{Scheme: "CONGA"}
	})
	tr.StartFlow(2, 4, 1_000_000_000) // steady flow B

	up0, up1 := nw.Leaves[0].Uplink(0), nw.Leaves[0].Uplink(1)
	var paths []int
	flips := 0
	bursts := 0
	var burst func()
	burst = func() {
		b0, b1 := up0.TxBytes, up1.TxBytes
		tr.StartFlow(0, 5, 8_000_000)
		eng.Schedule(12*sim.Millisecond, func() {
			p := 0
			if up1.TxBytes-b1 > up0.TxBytes-b0 {
				p = 1
			}
			if n := len(paths); n > 0 && paths[n-1] != p {
				flips++
			}
			paths = append(paths, p)
		})
		bursts++
		if bursts < 12 {
			eng.Schedule(13*sim.Millisecond, burst)
		}
	}
	burst()
	eng.Run(200 * sim.Millisecond)
	if flips < 4 {
		t.Fatalf("only %d flips in %v; the stale-state flip-flop did not reproduce", flips, paths)
	}
}

// Example 1 (Fig 1): after the small flows drain, flowlet-based CONGA
// cannot move either colliding large flow to the idle path; Hermes (and
// ideal rerouting) finish the large flows faster.
func TestPhenomenonFlowletPassivity(t *testing.T) {
	run := func(scheme Scheme) float64 {
		// 2x2 fabric: arrival order places smalls and larges; measure the
		// large bucket's mean FCT.
		res := mustRun(t, Config{
			Topology: Topology{
				Leaves: 2, Spines: 2, HostsPerLeaf: 4,
				HostRateBps: 10e9, FabricRateBps: 10e9,
				HostDelayNs: 2000, FabricDelayNs: 2000,
			},
			Scheme: scheme, Workload: "data-mining",
			Load: 0.7, Flows: 150, Seed: 21,
		})
		return res.FCT.Large.MeanMs()
	}
	conga := run(SchemeCONGA)
	hermesMs := run(SchemeHermes)
	// On the steady data-mining workload Hermes' timely rerouting must not
	// lose to flowlet passivity by any meaningful margin.
	if hermesMs > conga*1.3 {
		t.Fatalf("Hermes large flows %.2f ms vs CONGA %.2f ms; timely rerouting regressed", hermesMs, conga)
	}
}
