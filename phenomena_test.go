package hermes

// Phenomenon regression tests: each §2.2.2 motivating observation of the
// paper is pinned as an executable assertion, so simulator changes that
// would break the reproduced dynamics fail loudly.

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/failure"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Example 2 (Fig 2): a DCTCP flow sprayed equally over an asymmetric fabric
// with a 9 Gbps UDP flow on the only shared path collapses far below the
// ~11 Gbps of available capacity.
func TestPhenomenonCongestionMismatchUnderAsymmetry(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFabricLink(0, 1, 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*"}
	})
	udp := &transport.UDPSender{Eng: eng, Host: nw.Hosts[0], Dst: 4, RateBps: 9e9, Paths: []int{0}}
	udp.Start()
	f := tr.StartFlow(2, 5, 50_000_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	gbps := float64(f.Size) * 8 / float64(f.FCT())
	// The paper observes ~1 Gbps; anything under 4 demonstrates the
	// phenomenon (one idle 10G path is available throughout).
	if gbps > 4 {
		t.Fatalf("sprayed flow reached %.1f Gbps; congestion mismatch did not manifest", gbps)
	}
}

// Example 3 (Fig 3): capacity-proportional spraying over heterogeneous
// paths still loses throughput to the shared congestion window.
func TestPhenomenonMismatchWithCapacityWeights(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 11e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetFabricLink(0, 1, 1e9)
	nw.SetFabricLink(1, 1, 1e9)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
	})
	f := tr.StartFlow(0, 2, 50_000_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	gbps := float64(f.Size) * 8 / float64(f.FCT())
	// 11 Gbps is available; the paper measures ~5. Assert well below 8.
	if gbps > 8 {
		t.Fatalf("weighted spray reached %.1f Gbps; mismatch did not manifest", gbps)
	}
}

// Example 4 (Fig 4): a flow with pauses exceeding the flowlet timeout
// flip-flops between spines under CONGA's aged state.
func TestPhenomenonCongaHiddenTerminalFlipFlop(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb.InstallConga(nw, rng, lb.DefaultCongaParams())
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return &lb.PassThrough{Scheme: "CONGA"}
	})
	tr.StartFlow(2, 4, 1_000_000_000) // steady flow B

	up0, up1 := nw.Leaves[0].Uplink(0), nw.Leaves[0].Uplink(1)
	var paths []int
	flips := 0
	bursts := 0
	var burst func()
	burst = func() {
		b0, b1 := up0.TxBytes, up1.TxBytes
		tr.StartFlow(0, 5, 8_000_000)
		eng.Schedule(12*sim.Millisecond, func() {
			p := 0
			if up1.TxBytes-b1 > up0.TxBytes-b0 {
				p = 1
			}
			if n := len(paths); n > 0 && paths[n-1] != p {
				flips++
			}
			paths = append(paths, p)
		})
		bursts++
		if bursts < 12 {
			eng.Schedule(13*sim.Millisecond, burst)
		}
	}
	burst()
	eng.Run(200 * sim.Millisecond)
	if flips < 4 {
		t.Fatalf("only %d flips in %v; the stale-state flip-flop did not reproduce", flips, paths)
	}
}

// Example 1 (Fig 1): after the small flows drain, flowlet-based CONGA
// cannot move either colliding large flow to the idle path; Hermes (and
// ideal rerouting) finish the large flows faster.
func TestPhenomenonFlowletPassivity(t *testing.T) {
	run := func(scheme Scheme) float64 {
		// 2x2 fabric: arrival order places smalls and larges; measure the
		// large bucket's mean FCT.
		res := mustRun(t, Config{
			Topology: Topology{
				Leaves: 2, Spines: 2, HostsPerLeaf: 4,
				HostRateBps: 10e9, FabricRateBps: 10e9,
				HostDelayNs: 2000, FabricDelayNs: 2000,
			},
			Scheme: scheme, Workload: "data-mining",
			Load: 0.7, Flows: 150, Seed: 21,
		})
		return res.FCT.Large.MeanMs()
	}
	conga := run(SchemeCONGA)
	hermesMs := run(SchemeHermes)
	// On the steady data-mining workload Hermes' timely rerouting must not
	// lose to flowlet passivity by any meaningful margin.
	if hermesMs > conga*1.3 {
		t.Fatalf("Hermes large flows %.2f ms vs CONGA %.2f ms; timely rerouting regressed", hermesMs, conga)
	}
}

// REPS' defining phenomenon: the recycled-entropy cache is a self-steering
// spray. A blackholed spine stops returning ACKs, so its entropies stop
// re-entering the cache (and ECN/retransmit/RTO actively evict them); within
// an RTT-scale window the recycled spray distribution abandons the dead spine
// with no path-state machine and no probes.
func TestPhenomenonRepsRecyclesAwayFromBlackhole(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	byHost := map[int]*lb.Reps{}
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		r := lb.NewReps(nw, 0)
		byHost[h.ID] = r
		return r
	})
	sender := byHost[0]
	tr.StartFlow(0, 2, 1_000_000_000) // persistent; outlives the test window

	// Healthy warmup: both spines must be recycling.
	eng.Run(10 * sim.Millisecond)
	pre, _ := sender.SprayCounts()
	for p, n := range pre {
		if n == 0 {
			t.Fatalf("path %d recycled nothing during healthy warmup", p)
		}
	}

	// Spine 0 dies silently: links stay up, routing unchanged, no signal
	// except the missing ACKs.
	(&failure.Blackhole{
		Spine: nw.Spines[0],
		Match: func(src, dst int) bool { return true },
	}).Install()

	// Settle for a few RTTs — long enough for in-flight ACKs from the dead
	// spine to drain and the ~32-entry cache to turn over.
	rtt := nw.ApproxBaseRTT()
	eng.Run(eng.Now() + 5*rtt)
	start, _ := sender.SprayCounts()
	eng.Run(eng.Now() + 10*sim.Millisecond)
	end, _ := sender.SprayCounts()

	var dead, total uint64
	for p := range end {
		d := end[p] - start[p]
		total += d
		if nw.PathSpine(p) == 0 {
			dead += d
		}
	}
	if total == 0 {
		t.Fatal("no recycled sprays in the post-onset window; flow stalled")
	}
	if share := float64(dead) / float64(total); share > 0.01 {
		t.Fatalf("dead spine still drew %.2f%% of recycled sprays (%d/%d) after onset; cache did not self-steer",
			share*100, dead, total)
	}
}

// RepFlow's defining phenomenon: under a silently random-dropping spine, a
// short flow's clone on an independently hashed path rescues the tail —
// short-flow p99 beats single-path ECMP — while the redundancy bill is
// bounded (each loser sent at most one short flow's worth of bytes, and
// flows at or above the threshold are never replicated).
func TestPhenomenonRepFlowRescuesShortFlowTail(t *testing.T) {
	run := func(scheme Scheme) *Result {
		return mustRun(t, Config{
			Topology: Topology{
				Leaves: 2, Spines: 2, HostsPerLeaf: 4,
				HostRateBps: 10e9, FabricRateBps: 10e9,
				HostDelayNs: 2000, FabricDelayNs: 2000,
			},
			Scheme: scheme, Workload: "web-search",
			Load: 0.3, Flows: flowCount(300, 120), Seed: 7,
			Failure: FailureSpec{Kind: FailureRandomDrop, Spine: 0, DropRate: 0.04},
		})
	}
	ecmp := run(SchemeECMP)
	rep := run(SchemeRepFlow)

	if rep.ReplicatedFlows == 0 || rep.ReplicaWins == 0 {
		t.Fatalf("replication idle: %d replicated, %d replica wins",
			rep.ReplicatedFlows, rep.ReplicaWins)
	}
	// Tail rescue: losing the race against a drop-free clone must beat
	// serving an RTO on the only path.
	if rep.FCT.Small.P99 >= ecmp.FCT.Small.P99 {
		t.Fatalf("short-flow p99: repflow %.3f ms !< ecmp %.3f ms; replication did not rescue the tail",
			rep.FCT.Small.P99Ms(), ecmp.FCT.Small.P99Ms())
	}
	// Bounded overhead: every cancelled loser was a short flow, so the
	// redundant bytes cannot exceed one threshold's worth per replicated
	// flow (<= 2x goodput on short flows, zero on everything else).
	if rep.RedundantBytes >= rep.ReplicatedFlows*transport.DefaultRepFlowThreshold {
		t.Fatalf("redundant bytes %d >= %d replicated flows x %d threshold; overhead not confined to short flows",
			rep.RedundantBytes, rep.ReplicatedFlows, transport.DefaultRepFlowThreshold)
	}
}
