package hermes

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/checkpoint"
)

func ckptConfig(scheme Scheme, dir string) Config {
	cfg := chaosConfig(scheme, nil)
	cfg.Checks = true
	cfg.Checkpoint = &CheckpointConfig{Dir: dir, AtNs: []int64{5e6, 12e6}}
	return cfg
}

// TestCheckpointResumeByteIdentity is the tentpole acceptance check: for
// every host-steered scheme family, a run that writes checkpoints and a run
// restored from its latest checkpoint produce byte-identical marshaled
// Results — including the FCT report, goodput, telemetry counters and the
// Checkpoints manifest — with the invariant harness on.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	for _, s := range []Scheme{SchemeECMP, SchemePresto, SchemeHermes, SchemeREPS, SchemeRepFlow} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			dir := t.TempDir()
			ref := mustRun(t, ckptConfig(s, dir))
			if len(ref.Checkpoints) != 2 {
				t.Fatalf("Result.Checkpoints = %+v, want 2 entries", ref.Checkpoints)
			}
			for _, ci := range ref.Checkpoints {
				if _, err := os.Stat(ci.Path); err != nil {
					t.Fatalf("checkpoint file missing: %v", err)
				}
			}
			refJSON, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Restore(dir) // directory form: latest checkpoint wins
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			gotJSON, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if string(refJSON) != string(gotJSON) {
				t.Errorf("restored result diverges from reference run:\n ref %s\n got %s", refJSON, gotJSON)
			}
		})
	}
}

// countdownCtx is a deterministic interruption source: Err() stays nil for
// the first n polls and reports cancellation afterwards. The run loop polls
// once per scheduling slice, so the interrupt lands on a fixed slice
// boundary — no wall-clock races in the test.
type countdownCtx struct {
	context.Context
	calls, n int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// TestCheckpointInterruptAndResume kills a run mid-flight through its
// context, checks the typed InterruptedError (with its final interrupt
// checkpoint), and resumes from the directory: the final report must be
// byte-identical to the uninterrupted reference.
func TestCheckpointInterruptAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptConfig(SchemeHermes, dir)
	ref := mustRun(t, cfg)
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Boundaries run 5 ms, 12 ms, 22 ms, ...; the 4th poll (22 ms) cancels.
	killed := cfg
	killed.ctx = &countdownCtx{Context: context.Background(), n: 3}
	_, err = Run(killed)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("interrupted run returned %v, want *InterruptedError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("InterruptedError does not unwrap to context.Canceled: %v", err)
	}
	if ie.Checkpoint.SimTimeNs != 22e6 {
		t.Errorf("interrupt checkpoint at t=%dns, want 22ms boundary", ie.Checkpoint.SimTimeNs)
	}
	if _, err := os.Stat(ie.Checkpoint.Path); err != nil {
		t.Fatalf("interrupt checkpoint file missing: %v", err)
	}

	// Latest(dir) picks the interrupt checkpoint (greatest sim time).
	res, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore after interrupt: %v", err)
	}
	gotJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Errorf("kill-and-resume report diverges from uninterrupted reference:\n ref %s\n got %s", refJSON, gotJSON)
	}
}

// TestForkAtFailureOnset checkpoints a healthy Hermes run 1 ms before the
// spine-blackhole onset, then forks the frozen instant into REPS and RepFlow
// with the failure timeline grafted on — same history, different scheme,
// different future — and requires both what-ifs to complete with the
// conservation harness clean and a scored Recovery block.
func TestForkAtFailureOnset(t *testing.T) {
	dir := t.TempDir()
	cfg := chaosConfig(SchemeHermes, nil)
	cfg.Checks = true
	cfg.Checkpoint = &CheckpointConfig{Dir: dir, AtNs: []int64{19e6}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	sc, err := BuiltinScenario("spine-blackhole", chaosTopo())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{SchemeREPS, SchemeRepFlow} {
		res, err := Fork(dir, ForkOptions{Scheme: s, Scenario: sc})
		if err != nil {
			t.Fatalf("Fork into %s: %v", s, err)
		}
		if res.Scheme != s {
			t.Errorf("forked result scheme %q, want %q", res.Scheme, s)
		}
		if res.Recovery == nil || res.Recovery.Scenario != sc.Name {
			t.Errorf("fork into %s: Recovery = %+v, want scenario %q scored", s, res.Recovery, sc.Name)
		}
		if len(res.Checkpoints) != 0 {
			t.Errorf("fork wrote its own checkpoints: %+v", res.Checkpoints)
		}
	}
}

// TestPartialSweepOnCancellation pins the graceful-interrupt contract of the
// run pool: a pure cancellation hands back the completed results alongside
// the error instead of discarding them, and RunChaosMatrix aggregates what
// finished into a matrix marked Partial. (A pre-cancelled context is the
// deterministic extreme: zero runs finish, but the containers still arrive.)
func TestPartialSweepOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cfg := chaosConfig(SchemeECMP, nil)
	results, err := RunParallelOpts(ctx, cfg, Seeds(11, 3), ParallelOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool returned %v, want context.Canceled", err)
	}
	if results == nil || len(results) != 3 {
		t.Fatalf("cancelled pool returned results %v, want 3 (nil) slots", results)
	}

	_, st, err := RunSeedsOpts(ctx, cfg, Seeds(11, 3), ParallelOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunSeeds returned %v, want context.Canceled", err)
	}
	if st.N != 0 {
		t.Errorf("stats over a fully-cancelled sweep claim N=%d completed seeds", st.N)
	}

	sc, scErr := BuiltinScenario("spine-blackhole", cfg.Topology)
	if scErr != nil {
		t.Fatal(scErr)
	}
	m, err := RunChaosMatrix(ctx, ChaosMatrixConfig{
		Base: cfg, Schemes: []Scheme{SchemeECMP}, Scenarios: []*Scenario{sc}, Seeds: Seeds(11, 2),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled matrix returned %v, want context.Canceled", err)
	}
	if m == nil || !m.Partial {
		t.Fatalf("cancelled matrix = %+v, want a partial matrix alongside the error", m)
	}
	if c := m.Cell(SchemeECMP, sc.Name); c == nil || c.Runs != 0 {
		t.Errorf("fully-cancelled matrix cell = %+v, want present with 0 runs", c)
	}
}

// TestCheckpointRestoreRejections pins the loud-failure contract of the
// facade: schema-drifted configs are a ConfigMismatchError, tampered state
// that decodes cleanly still dies in replay verification as a
// StateMismatchError, and Fork's preconditions are enforced.
func TestCheckpointRestoreRejections(t *testing.T) {
	dir := t.TempDir()
	cfg := chaosConfig(SchemeECMP, nil)
	cfg.Checkpoint = &CheckpointConfig{Dir: dir, AtNs: []int64{2e6}}
	res := mustRun(t, cfg)
	if len(res.Checkpoints) != 1 {
		t.Fatalf("Result.Checkpoints = %+v, want 1 entry", res.Checkpoints)
	}
	path := res.Checkpoints[0].Path

	t.Run("config drift", func(t *testing.T) {
		f, err := checkpoint.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// An unknown field survives the file's own hash (WriteFile re-stamps
		// it) but vanishes in this build's round-trip, so the fingerprints
		// disagree — exactly what schema drift looks like.
		f.Config = json.RawMessage(strings.Replace(string(f.Config),
			`{"Topology"`, `{"Legacy":true,"Topology"`, 1))
		drifted := filepath.Join(t.TempDir(), "drifted.ckpt")
		if _, err := checkpoint.WriteFile(drifted, f); err != nil {
			t.Fatal(err)
		}
		var cm *checkpoint.ConfigMismatchError
		if _, err := Restore(drifted); !errors.As(err, &cm) {
			t.Fatalf("Restore(drifted config) = %v, want *ConfigMismatchError", err)
		}
	})

	t.Run("state tamper fails replay verification", func(t *testing.T) {
		f, err := checkpoint.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tampered := strings.Replace(string(f.State), `"rng":{"draws":`, `"rng":{"draws":9`, 1)
		if tampered == string(f.State) {
			t.Fatal("tamper target not found in state section")
		}
		f.State = json.RawMessage(tampered)
		bad := filepath.Join(t.TempDir(), "tampered.ckpt")
		if _, err := checkpoint.WriteFile(bad, f); err != nil {
			t.Fatal(err)
		}
		var sm *checkpoint.StateMismatchError
		if _, err := Restore(bad); !errors.As(err, &sm) {
			t.Fatalf("Restore(tampered state) = %v, want *StateMismatchError", err)
		}
		if len(sm.Sections) == 0 || sm.Sections[0].Section != "rng" {
			t.Errorf("mismatch sections = %+v, want the rng section named", sm.Sections)
		}
	})

	t.Run("fork preconditions", func(t *testing.T) {
		if _, err := Fork(path, ForkOptions{}); err == nil {
			t.Error("Fork with no changes accepted")
		}
		if _, err := Fork(path, ForkOptions{Scheme: SchemeLetFlow}); err == nil {
			t.Error("fork into a switch-resident scheme accepted")
		}
		early := &Scenario{Name: "early", Events: []ScenarioEvent{
			{AtNs: 1e6, Name: "bh", Failure: FailureSpec{Kind: FailureBlackhole, Spine: 0}},
		}}
		if _, err := Fork(path, ForkOptions{Scenario: early}); err == nil {
			t.Error("fork scenario onsetting before the checkpoint instant accepted")
		}
	})

	t.Run("missing path", func(t *testing.T) {
		if _, err := Restore(filepath.Join(dir, "nope.ckpt")); err == nil {
			t.Error("Restore of a missing file succeeded")
		}
	})
}
