package hermes

import (
	"sync/atomic"

	"github.com/hermes-repro/hermes/internal/statusd"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// Status is the live run observatory: attach one to Config.Status (or
// process-wide via SetDefaultStatus) and every run publishes progress,
// metrics and its flight recorder to it; serve it with ServeStatus to watch
// a sweep over HTTP while it executes. Purely observational — results and
// reports are byte-identical with a status tracker attached or not — and a
// nil *Status is the free disabled state.
type Status = statusd.Tracker

// StatusServer is the HTTP server ServeStatus returns.
type StatusServer = statusd.Server

// Manifest records build and VCS provenance for a run artifact: module
// version, VCS revision, config hash and seeds. See BuildManifest.
type Manifest = telemetry.Manifest

// NewStatus builds an enabled status tracker stamped with this build's
// manifest.
func NewStatus() *Status {
	return statusd.NewTracker(telemetry.BuildManifest())
}

// ServeStatus serves a tracker's status plane on addr (e.g. ":8080" or
// "127.0.0.1:0"; Addr reports the bound address). Endpoints: /api/progress,
// /api/report, /api/manifest, /api/series, /api/series/stream (SSE) and
// /metrics (Prometheus text exposition). Close the server to stop.
func ServeStatus(addr string, st *Status) (*StatusServer, error) {
	return statusd.NewServer(addr, st)
}

// BuildManifest returns this build's provenance (module version, VCS
// revision, process start time). Use Manifest.WithConfig to stamp a specific
// experiment's config hash and seed list before embedding it in an artifact.
func BuildManifest() Manifest {
	return telemetry.BuildManifest()
}

// VersionString is the one-line -version output.
func VersionString() string {
	return telemetry.BuildManifest().String()
}

// defaultStatus is the process-wide tracker installed by SetDefaultStatus.
// Runs whose Config.Status is nil publish here (when set); hermes-bench
// plumbs its -status flag through this so experiment helpers that build
// Configs internally are observable too.
var defaultStatus atomic.Pointer[Status]

// SetDefaultStatus installs st as the process-wide default status tracker
// used by runs whose Config.Status is nil. Pass nil to uninstall.
func SetDefaultStatus(st *Status) {
	defaultStatus.Store(st)
}

// statusFor resolves the tracker a run publishes to: the config's own, else
// the process default, else nil (disabled — every publish is a no-op).
func statusFor(cfg *Config) *Status {
	if cfg.Status != nil {
		return cfg.Status
	}
	return defaultStatus.Load()
}
