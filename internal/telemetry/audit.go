package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// AuditKind classifies a Hermes decision-log entry.
type AuditKind string

// Audit entry kinds.
const (
	// AuditPlace records an initial (or post-failure/timeout) placement.
	AuditPlace AuditKind = "place"
	// AuditReroute records a congestion-triggered cautious reroute.
	AuditReroute AuditKind = "reroute"
	// AuditVerdict records a path being marked failed by the monitor.
	AuditVerdict AuditKind = "verdict"
	// AuditChaos records a chaos-scenario failure activation or clear, so
	// the scheme's verdicts can be cross-referenced against the failures
	// that actually happened.
	AuditChaos AuditKind = "chaos"
)

// Audit reasons. Placement reasons say why a fresh path was needed; verdict
// reasons say which Algorithm 1 rule condemned the path.
const (
	ReasonFresh      = "fresh"       // new flow, first placement
	ReasonTimeout    = "timeout"     // RTO forced the flow off its path
	ReasonFailure    = "failure"     // current path carries a failed verdict
	ReasonCongestion = "congestion"  // cautious reroute off a congested path
	ReasonBlackhole  = "blackhole"   // consecutive data timeouts, no delivery
	ReasonSilentDrop = "silent-drop" // high retx fraction on uncongested path
	ReasonProbeLoss  = "probe-loss"  // consecutive probe losses
	ReasonInject     = "inject"      // chaos: a failure came up
	ReasonClear      = "clear"       // chaos: a failure was reverted
)

// AuditEntry is one Hermes decision with its triggering reason. Timestamps
// are simulation time only — wall clock never appears, so identical seeds
// produce identical logs.
type AuditEntry struct {
	At      int64     `json:"at_ns"`
	Kind    AuditKind `json:"kind"`
	Reason  string    `json:"reason"`
	Host    int       `json:"host"`
	Flow    uint64    `json:"flow,omitempty"`
	DstLeaf int       `json:"dst_leaf"`
	// FromPath is the path being left (-1 when there was none) and ToPath
	// the chosen one (-1 for verdicts, which condemn FromPath).
	FromPath int `json:"from_path"`
	ToPath   int `json:"to_path"`
	// Note carries free-text context for entries that are not host
	// decisions (chaos activations record their injector label here).
	Note string `json:"note,omitempty"`
}

// AuditLog accumulates decision entries up to MaxEntries; overflow is
// counted, never silent. The zero value is unusable — construct with
// NewAuditLog. A nil log swallows entries for free, which keeps the
// instrumented decision points branch-cheap when auditing is off.
type AuditLog struct {
	max     int
	entries []AuditEntry
	dropped uint64
}

// DefaultAuditMaxEntries bounds the log when no explicit cap is given.
const DefaultAuditMaxEntries = 100_000

// NewAuditLog builds a log holding at most max entries (<=0 = default).
func NewAuditLog(max int) *AuditLog {
	if max <= 0 {
		max = DefaultAuditMaxEntries
	}
	return &AuditLog{max: max}
}

// Add appends one entry, or counts it as dropped once the cap is reached.
func (l *AuditLog) Add(e AuditEntry) {
	if l == nil {
		return
	}
	if len(l.entries) >= l.max {
		l.dropped++
		return
	}
	l.entries = append(l.entries, e)
}

// Entries returns the recorded entries (shared slice; read-only).
func (l *AuditLog) Entries() []AuditEntry {
	if l == nil {
		return nil
	}
	return l.entries
}

// Len returns the number of recorded entries.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.entries)
}

// Dropped returns how many entries overflowed the cap.
func (l *AuditLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Filter returns the entries matching pred, in order.
func (l *AuditLog) Filter(pred func(AuditEntry) bool) []AuditEntry {
	var out []AuditEntry
	for _, e := range l.Entries() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// CountKind returns the number of entries of one kind.
func (l *AuditLog) CountKind(k AuditKind) int {
	n := 0
	for _, e := range l.Entries() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// CountReason returns the number of entries with one reason.
func (l *AuditLog) CountReason(reason string) int {
	n := 0
	for _, e := range l.Entries() {
		if e.Reason == reason {
			n++
		}
	}
	return n
}

// AuditSummary is the serializable aggregate of an audit log.
type AuditSummary struct {
	Entries  int            `json:"entries"`
	Dropped  uint64         `json:"dropped"`
	ByKind   map[string]int `json:"by_kind,omitempty"`
	ByReason map[string]int `json:"by_reason,omitempty"`
}

// Summary aggregates the log by kind and reason.
func (l *AuditLog) Summary() AuditSummary {
	s := AuditSummary{Entries: l.Len(), Dropped: l.Dropped()}
	if s.Entries == 0 {
		return s
	}
	s.ByKind = map[string]int{}
	s.ByReason = map[string]int{}
	for _, e := range l.Entries() {
		s.ByKind[string(e.Kind)]++
		s.ByReason[e.Reason]++
	}
	return s
}

// WriteJSONL emits one JSON object per entry, then a trailing summary line
// when entries were dropped, so truncation is visible in the export itself.
func (l *AuditLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Entries() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("telemetry: audit: %w", err)
		}
	}
	if d := l.Dropped(); d > 0 {
		if err := enc.Encode(struct {
			Kind    string `json:"kind"`
			Dropped uint64 `json:"dropped"`
		}{"truncated", d}); err != nil {
			return fmt.Errorf("telemetry: audit: %w", err)
		}
	}
	return nil
}
