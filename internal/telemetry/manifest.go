package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ManifestSchema identifies the manifest layout; bump on breaking changes.
const ManifestSchema = "hermes-manifest/v1"

// Manifest records the provenance of a run: which build produced it, from
// which VCS revision, with which configuration and seeds, started when. The
// build fields come from debug.ReadBuildInfo, so binaries built with module
// and VCS stamping (the default for `go build` inside a repository) carry
// their revision automatically.
//
// StartTime is the wall time the process first built a manifest, not
// simulation time. It is served on live surfaces (/api/manifest, status
// reports) but stripped by WithConfig, because written report artifacts
// are byte-identical functions of (Config, Seed) and must not embed wall
// clock.
type Manifest struct {
	Schema      string `json:"schema"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	StartTime   string `json:"start_time,omitempty"`

	// ConfigHash is the hex SHA-256 of the run's canonical config JSON, and
	// Seeds the seed list the artifact covers. Both are stamped per artifact
	// by WithConfig; the process-wide base manifest leaves them empty.
	ConfigHash string  `json:"config_hash,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
}

var (
	manifestOnce sync.Once
	baseManifest Manifest
)

// BuildManifest returns the process-wide base manifest (computed once; cheap
// afterwards).
func BuildManifest() Manifest {
	manifestOnce.Do(func() {
		m := Manifest{
			Schema:    ManifestSchema,
			GoVersion: runtime.Version(),
			StartTime: time.Now().UTC().Format(time.RFC3339),
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			m.Module = bi.Main.Path
			m.Version = bi.Main.Version
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					m.VCSRevision = s.Value
				case "vcs.time":
					m.VCSTime = s.Value
				case "vcs.modified":
					m.VCSModified = s.Value == "true"
				}
			}
		}
		baseManifest = m
	})
	return baseManifest
}

// WithConfig returns a copy of the manifest stamped with the hash of one
// experiment's config JSON and the seed list the artifact covers. The copy
// drops StartTime: WithConfig exists to stamp written artifacts, and those
// stay byte-identical across invocations of the same (Config, Seed).
func (m Manifest) WithConfig(configJSON []byte, seeds []int64) Manifest {
	m.StartTime = ""
	if len(configJSON) > 0 {
		sum := sha256.Sum256(configJSON)
		m.ConfigHash = hex.EncodeToString(sum[:])
	}
	if len(seeds) > 0 {
		m.Seeds = append([]int64(nil), seeds...)
	}
	return m
}

// String renders the one-line -version form.
func (m Manifest) String() string {
	version := m.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	rev := m.VCSRevision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	dirty := ""
	if m.VCSModified {
		dirty = "+dirty"
	}
	return fmt.Sprintf("%s %s (rev %s%s, %s)", m.Module, version, rev, dirty, m.GoVersion)
}
