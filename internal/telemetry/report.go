package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/textplot"
)

// ReportSchema identifies the report layout; bump on breaking changes. The
// golden-file test in the root package pins this schema.
const ReportSchema = "hermes-report/v1"

// BucketStats summarizes one FCT bucket in milliseconds.
type BucketStats struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// FCTSummary carries the run's flow-completion-time percentiles.
type FCTSummary struct {
	Overall        BucketStats `json:"overall"`
	Small          BucketStats `json:"small"`
	Medium         BucketStats `json:"medium"`
	Large          BucketStats `json:"large"`
	Flows          int         `json:"flows"`
	Unfinished     int         `json:"unfinished"`
	UnfinishedFrac float64     `json:"unfinished_frac"`
}

// Series is one named metric column, aligned with Report.SeriesTimesNs.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Report is the machine-readable record of one run: identity and config,
// FCT percentiles, counter totals, histogram summaries, swept time series
// and the decision-log aggregate. All timestamps are simulation time, so a
// report is a pure function of (config, seed).
type Report struct {
	Schema   string  `json:"schema"`
	Scheme   string  `json:"scheme"`
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	Seed     int64   `json:"seed"`

	// Config is the full experiment configuration as provided by the caller.
	Config json.RawMessage `json:"config,omitempty"`

	// Manifest records build/VCS provenance when the producer attached one
	// (CLIs do; the in-process API leaves it nil so reports stay a pure
	// function of (config, seed) across machines and commits).
	Manifest *Manifest `json:"manifest,omitempty"`

	SimDurationNs int64  `json:"sim_duration_ns"`
	Events        uint64 `json:"events"`

	FCT FCTSummary `json:"fct"`

	// Counters holds every counter/gauge total at run end (registry keys),
	// plus run-level derived values under the "run." prefix.
	Counters map[string]float64 `json:"counters,omitempty"`

	Histograms map[string]HistogramStats `json:"histograms,omitempty"`

	SeriesTimesNs []int64  `json:"series_times_ns,omitempty"`
	Series        []Series `json:"series,omitempty"`

	Audit AuditSummary `json:"audit"`
}

// RunData bundles the live telemetry objects of one run: the registry the
// instrumentation writes to, the sweeper that snapshots it, and the Hermes
// decision audit log. A nil *RunData is the disabled state.
type RunData struct {
	Registry *Registry
	Sweeper  *Sweeper
	Audit    *AuditLog
}

// NewRunData builds an enabled telemetry bundle on the given engine.
// interval <= 0 picks the default sweep period; auditMax <= 0 the default
// audit cap.
func NewRunData(eng *sim.Engine, interval sim.Time, auditMax int) *RunData {
	reg := NewRegistry()
	return &RunData{
		Registry: reg,
		Sweeper:  &Sweeper{Reg: reg, Eng: eng, Interval: interval},
		Audit:    NewAuditLog(auditMax),
	}
}

// Fill copies counter totals, histograms, time series and the audit summary
// into rep. Safe on a nil receiver.
func (rd *RunData) Fill(rep *Report) {
	if rd == nil {
		return
	}
	if rep.Counters == nil {
		rep.Counters = map[string]float64{}
	}
	for k, v := range rd.Registry.Values() {
		rep.Counters[k] = v
	}
	rep.Histograms = rd.Registry.Histograms()
	rep.SeriesTimesNs = rd.Sweeper.Times()
	cols := rd.Sweeper.Series()
	for _, name := range rd.Sweeper.SeriesNames() {
		rep.Series = append(rep.Series, Series{Name: name, Values: cols[name]})
	}
	rep.Audit = rd.Audit.Summary()
}

// WriteJSON emits the indented JSON form. encoding/json sorts map keys, so
// the bytes are deterministic for a deterministic run.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("telemetry: report: %w", err)
	}
	return nil
}

// WriteCSV emits the report as long-format CSV: one "counter" row per total
// and one "series" row per (metric, sweep instant) sample. Rows are sorted
// by metric key, so the bytes are deterministic.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "section,metric,time_ns,value"); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "counter,%s,,%g\n", csvEscape(k), r.Counters[k]); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		for i, v := range s.Values {
			if i >= len(r.SeriesTimesNs) {
				break
			}
			if _, err := fmt.Fprintf(w, "series,%s,%d,%g\n",
				csvEscape(s.Name), r.SeriesTimesNs[i], v); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape quotes a field containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// RenderText writes a human-readable summary: run identity, FCT table,
// headline counters, audit aggregate and ASCII sparklines of key series.
func (r *Report) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "report %s: scheme=%s workload=%s load=%.2f seed=%d\n",
		r.Schema, r.Scheme, r.Workload, r.Load, r.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "simulated %.1f ms, %d events\n",
		float64(r.SimDurationNs)/1e6, r.Events); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s\n", "fct bucket", "count", "mean(ms)", "p95(ms)", "p99(ms)")
	for _, row := range []struct {
		name string
		b    BucketStats
	}{
		{"overall", r.FCT.Overall}, {"small", r.FCT.Small},
		{"medium", r.FCT.Medium}, {"large", r.FCT.Large},
	} {
		fmt.Fprintf(w, "%-16s %8d %10.3f %10.3f %10.3f\n",
			row.name, row.b.Count, row.b.MeanMs, row.b.P95Ms, row.b.P99Ms)
	}
	if r.FCT.Unfinished > 0 {
		fmt.Fprintf(w, "unfinished: %d (%.2f%%)\n", r.FCT.Unfinished, 100*r.FCT.UnfinishedFrac)
	}

	// Headline counters: everything not drowned in per-port detail.
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		if !strings.Contains(k, "{") { // skip per-label instances
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-40s %14.0f\n", k, r.Counters[k])
		}
	}

	if r.Audit.Entries > 0 || r.Audit.Dropped > 0 {
		fmt.Fprintf(w, "audit: %d entries (%d dropped)\n", r.Audit.Entries, r.Audit.Dropped)
		for _, m := range []struct {
			label string
			v     map[string]int
		}{{"kind", r.Audit.ByKind}, {"reason", r.Audit.ByReason}} {
			ks := make([]string, 0, len(m.v))
			for k := range m.v {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			for _, k := range ks {
				fmt.Fprintf(w, "  %s/%-14s %8d\n", m.label, k, m.v[k])
			}
		}
	}

	// Sparkline the aggregate series that tell the run's story.
	for _, s := range r.Series {
		if !strings.HasSuffix(s.Name, "_total") || len(s.Values) < 2 {
			continue
		}
		fmt.Fprintln(w)
		if err := textplot.Line(w, s.Name, textplot.Downsample(s.Values, 64), 6); err != nil {
			return err
		}
	}
	return nil
}
