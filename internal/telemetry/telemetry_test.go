package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", []float64{1, 2})
	reg.GaugeFunc("f", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must be inert")
	}
	if reg.Values() != nil || reg.Histograms() != nil {
		t.Fatal("nil registry must export nothing")
	}

	var log *AuditLog
	log.Add(AuditEntry{Kind: AuditPlace})
	if log.Len() != 0 || log.Dropped() != 0 {
		t.Fatal("nil audit log must be inert")
	}
	var sw *Sweeper
	sw.Start()
	sw.Stop()
	sw.Snap()
	if sw.Times() != nil {
		t.Fatal("nil sweeper must be inert")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hermes.reroutes")
	b := reg.Counter("hermes.reroutes")
	if a != b {
		t.Fatal("same key must return the same counter")
	}
	a.Inc()
	b.Inc()
	if got := reg.Values()["hermes.reroutes"]; got != 2 {
		t.Fatalf("shared counter = %v, want 2", got)
	}
	// Label order must not matter.
	x := reg.Counter("net.port.drops", "port", "p0", "dir", "up")
	y := reg.Counter("net.port.drops", "dir", "up", "port", "p0")
	if x != y {
		t.Fatal("label order must not change identity")
	}
	if k := Key("m", "b", "2", "a", "1"); k != "m{a=1,b=2}" {
		t.Fatalf("Key = %q", k)
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cwnd", []float64{10, 100})
	for _, v := range []float64{5, 50, 500, 7} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 4 || s.Min != 5 || s.Max != 500 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 1 || s.Inf != 1 {
		t.Fatalf("buckets = %+v inf=%d", s.Buckets, s.Inf)
	}
	if got := h.Mean(); got != (5+50+500+7)/4.0 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSweeperSeries(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	c := reg.Counter("events")
	sw := &Sweeper{Reg: reg, Eng: eng, Interval: sim.Millisecond}
	sw.Start()
	eng.Schedule(500*sim.Microsecond, func() { c.Add(3) })
	eng.Schedule(1500*sim.Microsecond, func() { c.Add(4) })
	eng.Run(3500 * sim.Microsecond)
	sw.Stop()
	times := sw.Times()
	if len(times) != 3 {
		t.Fatalf("sweeps = %d, want 3", len(times))
	}
	got := sw.Series()["events"]
	want := []float64{3, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	// A metric registered after the first sweep gets zero-backfilled.
	late := reg.Counter("late")
	late.Inc()
	sw.Snap()
	ls := sw.Series()["late"]
	if len(ls) != 4 || ls[0] != 0 || ls[3] != 1 {
		t.Fatalf("late series = %v", ls)
	}
}

func TestSweeperCapRingAndBackfill(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	c := reg.Counter("events")
	sw := &Sweeper{Reg: reg, Eng: eng, Interval: sim.Millisecond, Cap: 3}
	sw.Start()
	for i := 1; i <= 5; i++ {
		c.Inc()
		eng.Run(sim.Time(i) * sim.Millisecond)
		if i == 4 {
			// Register a metric mid-run, after the ring has wrapped.
			reg.Counter("late").Add(9)
		}
	}
	sw.Stop()
	times := sw.Times()
	if len(times) != 3 || sw.Truncated() != 2 {
		t.Fatalf("retained %d sweeps (truncated %d), want 3 (2)", len(times), sw.Truncated())
	}
	// Oldest-first, newest survive: sweeps at 3, 4, 5 ms.
	if times[0] != int64(3*sim.Millisecond) || times[2] != int64(5*sim.Millisecond) {
		t.Fatalf("times = %v", times)
	}
	// Invariant: every series has exactly one value per retained sweep,
	// including the late-registered metric (zero before it existed).
	for name, vals := range sw.Series() {
		if len(vals) != len(times) {
			t.Fatalf("series %q has %d values, want %d", name, len(vals), len(times))
		}
	}
	if got := sw.Series()["events"]; got[0] != 3 || got[2] != 5 {
		t.Fatalf("events series = %v, want [3 4 5]", got)
	}
	if got := sw.Series()["late"]; got[0] != 0 || got[1] != 0 || got[2] != 9 {
		t.Fatalf("late series = %v, want [0 0 9]", got)
	}
}

func TestAuditLogCapAndSummary(t *testing.T) {
	log := NewAuditLog(2)
	log.Add(AuditEntry{At: 1, Kind: AuditPlace, Reason: ReasonFresh})
	log.Add(AuditEntry{At: 2, Kind: AuditReroute, Reason: ReasonCongestion})
	log.Add(AuditEntry{At: 3, Kind: AuditVerdict, Reason: ReasonBlackhole})
	if log.Len() != 2 || log.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", log.Len(), log.Dropped())
	}
	if log.CountKind(AuditPlace) != 1 || log.CountReason(ReasonCongestion) != 1 {
		t.Fatal("count queries wrong")
	}
	got := log.Filter(func(e AuditEntry) bool { return e.At > 1 })
	if len(got) != 1 || got[0].Kind != AuditReroute {
		t.Fatalf("filter = %+v", got)
	}
	s := log.Summary()
	if s.Entries != 2 || s.Dropped != 1 || s.ByKind["place"] != 1 {
		t.Fatalf("summary = %+v", s)
	}
	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // 2 entries + truncation marker
		t.Fatalf("jsonl lines = %d: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[2], `"truncated"`) || !strings.Contains(lines[2], `"dropped":1`) {
		t.Fatalf("missing truncation marker: %q", lines[2])
	}
}

// TestAuditLogOverflowTruncation exercises heavy overflow: the cap must hold
// exactly, every excess entry must be counted, and the JSONL export must end
// with a marker carrying the full drop count — truncation is never silent.
func TestAuditLogOverflowTruncation(t *testing.T) {
	log := NewAuditLog(3)
	for i := 0; i < 100; i++ {
		log.Add(AuditEntry{At: int64(i), Kind: AuditPlace, Reason: ReasonFresh, Flow: uint64(i)})
	}
	if log.Len() != 3 || log.Dropped() != 97 {
		t.Fatalf("len=%d dropped=%d, want 3/97", log.Len(), log.Dropped())
	}
	// The kept entries are the first three, not an arbitrary window.
	for i, e := range log.Entries() {
		if e.Flow != uint64(i) {
			t.Fatalf("entry %d = flow %d, want the earliest entries kept", i, e.Flow)
		}
	}
	if s := log.Summary(); s.Dropped != 97 || s.Entries != 3 {
		t.Fatalf("summary = %+v", s)
	}

	var buf bytes.Buffer
	if err := log.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 3 entries + marker", len(lines))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"truncated"`) || !strings.Contains(last, `"dropped":97`) {
		t.Fatalf("marker = %q", last)
	}

	// The zero/negative cap falls back to the documented default.
	d := NewAuditLog(0)
	if d.max != DefaultAuditMaxEntries {
		t.Fatalf("default cap = %d", d.max)
	}
	// An uncapped-but-unfilled log emits no marker.
	buf.Reset()
	d.Add(AuditEntry{Kind: AuditVerdict, Reason: ReasonBlackhole})
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "truncated") {
		t.Fatal("marker emitted without overflow")
	}
}

func TestReportDeterministicBytes(t *testing.T) {
	build := func() *Report {
		eng := sim.NewEngine()
		rd := NewRunData(eng, sim.Millisecond, 10)
		rd.Registry.Counter("b.two").Add(2)
		rd.Registry.Counter("a.one").Inc()
		rd.Registry.GaugeFunc("c.fn", func() float64 { return 9 })
		rd.Registry.Histogram("h", []float64{1}).Observe(0.5)
		rd.Audit.Add(AuditEntry{At: 5, Kind: AuditPlace, Reason: ReasonFresh})
		rd.Sweeper.Start()
		eng.Run(2 * sim.Millisecond)
		rd.Sweeper.Stop()
		rep := &Report{Schema: ReportSchema, Scheme: "hermes", Seed: 1}
		rd.Fill(rep)
		return rep
	}
	var j1, j2, c1, c2 bytes.Buffer
	r1, r2 := build(), build()
	if err := r1.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON reports differ between identical builds")
	}
	if err := r1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("CSV reports differ between identical builds")
	}
	if !strings.Contains(c1.String(), "counter,a.one,,1") {
		t.Fatalf("missing counter row:\n%s", c1.String())
	}
	if !strings.Contains(c1.String(), "series,b.two,1000000,2") {
		t.Fatalf("missing series row:\n%s", c1.String())
	}
	var txt bytes.Buffer
	if err := r1.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "audit: 1 entries") {
		t.Fatalf("text summary missing audit:\n%s", txt.String())
	}
}
