// Package telemetry is the fabric-wide observability layer: a registry of
// named, labelled counters/gauges/histograms fed by instrumentation hooks in
// net, transport and core; a periodic simulation-time Sweeper that snapshots
// the registry into time series; a Hermes decision AuditLog; and a Report
// that serializes a full run to JSON, CSV and human-readable text.
//
// Every instrument is nil-safe: a nil *Registry hands out nil instruments,
// and calling Inc/Add/Set/Observe on a nil instrument is a no-op. Hot paths
// therefore hold plain instrument pointers and pay only a nil check when
// telemetry is disabled.
package telemetry

import (
	"sort"
	"strings"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add increases the counter by n (negative deltas are ignored).
func (c *Counter) Add(n float64) {
	if c != nil && n > 0 {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a metric that can move in both directions.
type Gauge struct{ v float64 }

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates observations into fixed upper-bound buckets plus
// count/sum/min/max. An implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds []float64 // sorted upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// HistBucket is one exported histogram bucket.
type HistBucket struct {
	UpperBound float64 `json:"le"` // +Inf encoded as 0-count omission; see Snapshot
	Count      uint64  `json:"count"`
}

// HistogramStats is the serializable summary of a histogram.
type HistogramStats struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Inf     uint64       `json:"inf,omitempty"` // samples above the last bound
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Stats exports the histogram.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	s := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Inf: h.counts[len(h.bounds)]}
	for i, b := range h.bounds {
		s.Buckets = append(s.Buckets, HistBucket{UpperBound: b, Count: h.counts[i]})
	}
	return s
}

// Registry is the named-instrument store. Instruments are get-or-create by
// (name, labels) key, so independent call sites share one instrument. A nil
// Registry is the disabled state: it returns nil instruments and empty
// snapshots.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Key renders a metric identity as name{k=v,...} with label pairs sorted by
// key, so the same logical metric always maps to the same string.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	var pairs []kv
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for (name, labels), creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time — the
// cheapest way to expose an existing counter field without touching its hot
// path. Re-registering a key replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	r.funcs[Key(name, labels...)] = fn
}

// Histogram returns the histogram for (name, labels) with the given sorted
// upper bounds, creating it on first use (later bounds are ignored for an
// existing histogram).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	h, ok := r.hists[k]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[k] = h
	}
	return h
}

// Values evaluates every counter, gauge and gauge function into a flat map.
// Functions are evaluated in sorted-key order so any side effects (there
// should be none) are deterministic.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.funcs))
	for k, c := range r.counters {
		out[k] = c.v
	}
	for k, g := range r.gauges {
		out[k] = g.v
	}
	keys := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = r.funcs[k]()
	}
	return out
}

// Histograms exports every histogram's stats, keyed by metric key.
func (r *Registry) Histograms() map[string]HistogramStats {
	if r == nil || len(r.hists) == 0 {
		return nil
	}
	out := make(map[string]HistogramStats, len(r.hists))
	for k, h := range r.hists {
		out[k] = h.Stats()
	}
	return out
}
