package telemetry

import (
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// Sweeper periodically snapshots a Registry into per-metric time series on
// the simulation clock, backed by a timeseries.Columns store.
//
// Zero-backfill contract: every series always has exactly one value per
// retained sweep instant — len(Series()[k]) == len(Times()) for every k.
// A metric registered mid-run (between ticks) gets zeros for all sweeps
// that happened before it first appeared in the registry, and the contract
// continues to hold under ring truncation when Cap is set.
type Sweeper struct {
	Reg      *Registry
	Eng      *sim.Engine
	Interval sim.Time

	// Cap bounds the retained sweeps (ring buffer; oldest rows drop first).
	// <= 0 keeps every sweep — the default, which reports depend on.
	// Set before Start.
	Cap int

	cols    timeseries.Columns
	stopped bool
}

// DefaultSweepInterval is used when no interval is configured.
const DefaultSweepInterval = sim.Millisecond

// Start schedules the first sweep one interval from now. A nil sweeper is a
// no-op, so callers can Start/Stop unconditionally.
func (s *Sweeper) Start() {
	if s == nil || s.Reg == nil || s.Eng == nil {
		return
	}
	if s.Interval <= 0 {
		s.Interval = DefaultSweepInterval
	}
	s.Eng.ScheduleKind(s.Interval, sim.KindSample, s.tick)
}

// Stop ends sweeping after the current tick.
func (s *Sweeper) Stop() {
	if s != nil {
		s.stopped = true
	}
}

func (s *Sweeper) tick() {
	if s.stopped {
		return
	}
	s.Snap()
	s.Eng.ScheduleKind(s.Interval, sim.KindSample, s.tick)
}

// Snap takes one snapshot immediately (also used for a final sweep at run
// end so counter totals always appear in the last sample).
func (s *Sweeper) Snap() {
	if s == nil || s.Reg == nil {
		return
	}
	if s.cols.Len() == 0 {
		s.cols.Cap = s.Cap // no rows yet: the cap can still be (re)applied
	}
	s.cols.Append(s.Eng.Now())
	for k, v := range s.Reg.Values() {
		s.cols.Put(k, v)
	}
}

// Truncated returns the number of sweeps discarded to honor Cap.
func (s *Sweeper) Truncated() int {
	if s == nil {
		return 0
	}
	return s.cols.Truncated()
}

// Times returns the retained sweep instants in nanoseconds of simulation
// time, oldest first.
func (s *Sweeper) Times() []int64 {
	if s == nil {
		return nil
	}
	return s.cols.Times()
}

// Series returns the per-metric value columns, aligned with Times. The map
// is rebuilt per call; mutate freely.
func (s *Sweeper) Series() map[string][]float64 {
	if s == nil {
		return nil
	}
	names := s.cols.Names()
	out := make(map[string][]float64, len(names))
	for _, k := range names {
		out[k] = s.cols.Series(k)
	}
	return out
}

// SeriesNames returns the metric keys in sorted order (the deterministic
// iteration order for exports).
func (s *Sweeper) SeriesNames() []string {
	if s == nil {
		return nil
	}
	return s.cols.Names()
}
