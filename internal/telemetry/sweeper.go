package telemetry

import (
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Sweeper periodically snapshots a Registry into per-metric time series on
// the simulation clock. Metrics that appear after the first sweep are
// zero-backfilled so every series has one value per sweep instant.
type Sweeper struct {
	Reg      *Registry
	Eng      *sim.Engine
	Interval sim.Time

	times   []int64
	series  map[string][]float64
	stopped bool
}

// DefaultSweepInterval is used when no interval is configured.
const DefaultSweepInterval = sim.Millisecond

// Start schedules the first sweep one interval from now. A nil sweeper is a
// no-op, so callers can Start/Stop unconditionally.
func (s *Sweeper) Start() {
	if s == nil || s.Reg == nil || s.Eng == nil {
		return
	}
	if s.Interval <= 0 {
		s.Interval = DefaultSweepInterval
	}
	if s.series == nil {
		s.series = map[string][]float64{}
	}
	s.Eng.Schedule(s.Interval, s.tick)
}

// Stop ends sweeping after the current tick.
func (s *Sweeper) Stop() {
	if s != nil {
		s.stopped = true
	}
}

func (s *Sweeper) tick() {
	if s.stopped {
		return
	}
	s.Snap()
	s.Eng.Schedule(s.Interval, s.tick)
}

// Snap takes one snapshot immediately (also used for a final sweep at run
// end so counter totals always appear in the last sample).
func (s *Sweeper) Snap() {
	if s == nil || s.Reg == nil {
		return
	}
	if s.series == nil {
		s.series = map[string][]float64{}
	}
	n := len(s.times)
	s.times = append(s.times, s.Eng.Now())
	for k, v := range s.Reg.Values() {
		col, ok := s.series[k]
		if !ok && n > 0 {
			col = make([]float64, n) // zero-backfill a late metric
		}
		s.series[k] = append(col, v)
	}
}

// Times returns the sweep instants in nanoseconds of simulation time.
func (s *Sweeper) Times() []int64 {
	if s == nil {
		return nil
	}
	return s.times
}

// Series returns the per-metric value columns, aligned with Times.
func (s *Sweeper) Series() map[string][]float64 {
	if s == nil {
		return nil
	}
	return s.series
}

// SeriesNames returns the metric keys in sorted order (the deterministic
// iteration order for exports).
func (s *Sweeper) SeriesNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.series))
	for k := range s.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
