// Package alert is the declarative SLO watchdog over the flight recorder:
// rules reference a recorded series by name (exact, or a '*' glob over the
// full "name{label=value}" key space), apply a predicate — threshold,
// rate-of-change, dip/spike against a trailing baseline, absence — hold it
// for a configurable duration, and drive a Prometheus-shaped alert
// lifecycle (pending -> firing -> resolved), cause-tagged with the sample
// that tripped them.
//
// The evaluator runs on simulation-clock sample boundaries (it hangs off
// timeseries.Recorder.OnSample), so every judgement is a pure function of
// (config, seed): alert logs from a worker-pool run and a sequential run
// are byte-identical. When no rules are armed nothing is attached and the
// recorder hot path is untouched.
package alert

import (
	"fmt"
	"strings"
)

// Schema identifies the alert report/log layout; bump on breaking changes.
const Schema = "hermes-alerts/v1"

// Op is a rule predicate.
type Op string

const (
	// OpAbove fires while value > Value.
	OpAbove Op = "above"
	// OpBelow fires while value < Value.
	OpBelow Op = "below"
	// OpRateAbove fires while the signed per-second rate of change
	// (v - prev) / dt exceeds Value.
	OpRateAbove Op = "rate-above"
	// OpDip fires while value < (1-Value) x the trailing-window baseline
	// (Value 0.4 = "dipped more than 40% below baseline"). Requires
	// WindowNs; the baseline is frozen at breach onset so recovery is
	// judged against the pre-dip level.
	OpDip Op = "dip"
	// OpSpike fires while value > (1+Value) x the trailing-window
	// baseline (Value 1.0 = "more than doubled"). Requires WindowNs.
	OpSpike Op = "spike"
	// OpAbsent fires while the series does not exist in the recorder.
	// Exact series names only (a glob that matches nothing is vacuous,
	// not absent).
	OpAbsent Op = "absent"
)

// Severity ranks a rule. The zero value defaults to SeverityWarning.
type Severity string

const (
	SeverityInfo     Severity = "info"
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Rule is one declarative SLO condition over a recorded series.
//
// Naming convention (see DESIGN.md): rule names are lowercase
// kebab-case, lead with the signal ("goodput-dip", "queue-saturation"),
// and never embed the series name or threshold — those live in the rule
// body so dashboards keyed on alertname survive retuning.
type Rule struct {
	// Name labels the rule in alerts, logs and the ALERTS exposition.
	Name string `json:"name"`
	// Series is the flight-recorder series key: exact ("net.goodput_gbps")
	// or a '*' glob over full keys ("net.port.queue_bytes{*}").
	Series string `json:"series"`
	Op     Op     `json:"op"`
	// Value is the predicate parameter: threshold for above/below,
	// per-second rate for rate-above, fractional depth/height for
	// dip/spike. Unused for absent.
	Value float64 `json:"value,omitempty"`
	// ForNs is the hold: the predicate must stay true this long before
	// pending promotes to firing. 0 fires on the first breaching sample.
	ForNs int64 `json:"for_ns,omitempty"`
	// WindowNs sizes the trailing baseline window for dip/spike.
	WindowNs int64 `json:"window_ns,omitempty"`
	// MinValue gates dip/spike: baselines at or below it are noise and
	// never breach (e.g. goodput before traffic starts).
	MinValue float64 `json:"min_value,omitempty"`
	// Severity defaults to warning when empty.
	Severity Severity `json:"severity,omitempty"`
	// Help is a one-line human description, exported to # HELP.
	Help string `json:"help,omitempty"`
}

// severity returns the rule severity with the default applied.
func (r Rule) severity() Severity {
	if r.Severity == "" {
		return SeverityWarning
	}
	return r.Severity
}

// Validate reports the first problem with the rule, or nil.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert rule: empty name")
	}
	if r.Series == "" {
		return fmt.Errorf("alert rule %q: empty series", r.Name)
	}
	switch r.Op {
	case OpAbove, OpBelow, OpRateAbove:
	case OpDip, OpSpike:
		if r.WindowNs <= 0 {
			return fmt.Errorf("alert rule %q: op %q needs window_ns > 0", r.Name, r.Op)
		}
		if r.Value <= 0 {
			return fmt.Errorf("alert rule %q: op %q needs value > 0 (fractional depth)", r.Name, r.Op)
		}
	case OpAbsent:
		if strings.Contains(r.Series, "*") {
			return fmt.Errorf("alert rule %q: op absent needs an exact series name, not a glob", r.Name)
		}
	case "":
		return fmt.Errorf("alert rule %q: empty op", r.Name)
	default:
		return fmt.Errorf("alert rule %q: unknown op %q", r.Name, r.Op)
	}
	switch r.Severity {
	case "", SeverityInfo, SeverityWarning, SeverityCritical:
	default:
		return fmt.Errorf("alert rule %q: unknown severity %q", r.Name, r.Severity)
	}
	if r.ForNs < 0 {
		return fmt.Errorf("alert rule %q: negative for_ns", r.Name)
	}
	return nil
}

// matchGlob reports whether key matches pattern, where '*' matches any
// (possibly empty) substring of the full series key.
func matchGlob(pattern, key string) bool {
	segs := strings.Split(pattern, "*")
	if len(segs) == 1 {
		return pattern == key
	}
	if !strings.HasPrefix(key, segs[0]) {
		return false
	}
	key = key[len(segs[0]):]
	last := segs[len(segs)-1]
	for _, seg := range segs[1 : len(segs)-1] {
		if seg == "" {
			continue
		}
		i := strings.Index(key, seg)
		if i < 0 {
			return false
		}
		key = key[i+len(seg):]
	}
	return strings.HasSuffix(key, last) && len(key) >= len(last)
}
