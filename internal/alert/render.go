package alert

import (
	"fmt"
	"io"
	"sort"

	"github.com/hermes-repro/hermes/internal/textplot"
)

// RenderText writes the human-readable view of one alert report: a summary
// line, one line per episode, and a state timeline on the evaluator's
// sample grid — '.' idle, '~' pending, '#' firing. Deterministic for a
// given report.
func RenderText(w io.Writer, rep *Report, width int) error {
	if rep == nil {
		_, err := fmt.Fprintln(w, "alerts: none recorded")
		return err
	}
	armed := "" // parsed logs carry counters but not the rule set
	if len(rep.Rules) > 0 {
		armed = fmt.Sprintf("%d rule(s) armed — ", len(rep.Rules))
	}
	if _, err := fmt.Fprintf(w, "alerts: %sfired=%d resolved=%d pending=%d firing=%d cancelled=%d\n",
		armed, rep.Fired, rep.Resolved, rep.Pending, rep.Firing, rep.Cancelled); err != nil {
		return err
	}
	if rep.DroppedEvents > 0 || rep.DroppedAlerts > 0 {
		if _, err := fmt.Fprintf(w, "  capped: %d event(s) and %d episode(s) dropped\n",
			rep.DroppedEvents, rep.DroppedAlerts); err != nil {
			return err
		}
	}
	if len(rep.Alerts) == 0 {
		_, err := fmt.Fprintln(w, "  no episodes — every armed series stayed within its rule")
		return err
	}
	ms := func(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }
	const maxLines = 24
	shown := rep.Alerts
	if len(shown) > maxLines {
		shown = shown[:maxLines]
	}
	for _, a := range shown {
		span := "pending " + ms(a.PendingNs)
		if a.FiringNs != 0 {
			span += ", firing " + ms(a.FiringNs)
		}
		if a.ResolvedNs != 0 {
			span += ", ended " + ms(a.ResolvedNs)
		}
		if _, err := fmt.Fprintf(w, "  [%s/%s] %s on %s (%s): %s\n",
			a.Severity, a.State, a.Rule, a.Series, span, a.Cause); err != nil {
			return err
		}
	}
	if n := len(rep.Alerts) - len(shown); n > 0 {
		if _, err := fmt.Fprintf(w, "  ... %d more episode(s); see the JSON report or alert log\n", n); err != nil {
			return err
		}
	}
	return renderTimeline(w, rep, width)
}

// renderTimeline draws one row per (rule, series) pair that had an episode.
// Episode spans are half-open [PendingNs, ResolvedNs): at the resolving
// sample the condition had already cleared. Still-open episodes extend to
// the report's horizon.
func renderTimeline(w io.Writer, rep *Report, width int) error {
	iv := rep.IntervalNs
	if iv <= 0 {
		return nil
	}
	end := int64(0)
	for _, a := range rep.Alerts {
		for _, t := range []int64{a.PendingNs, a.FiringNs, a.ResolvedNs} {
			if t > end {
				end = t
			}
		}
	}
	for _, ev := range rep.Events {
		if ev.AtNs > end {
			end = ev.AtNs
		}
	}
	n := int(end/iv) + 1
	if n < 2 {
		n = 2
	}
	rows := map[string][]float64{}
	for _, a := range rep.Alerts {
		key := a.Rule + " " + a.Series
		vals := rows[key]
		if vals == nil {
			vals = make([]float64, n)
			rows[key] = vals
		}
		stop := a.ResolvedNs
		if stop == 0 {
			stop = end + iv
		}
		for t := a.PendingNs; t < stop; t += iv {
			i := int(t / iv)
			if i < 0 || i >= n {
				continue
			}
			code := 1.0
			if a.FiringNs != 0 && t >= a.FiringNs {
				code = 2
			}
			if vals[i] < code {
				vals[i] = code
			}
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]textplot.Series, 0, len(keys))
	for _, k := range keys {
		series = append(series, textplot.Series{Label: k, Values: rows[k]})
	}
	title := fmt.Sprintf("alert timeline (%.2fms/sample; '.' ok '~' pending '#' firing)", float64(iv)/1e6)
	return textplot.Timeline(w, title, series, []byte{'.', '~', '#'}, width)
}
