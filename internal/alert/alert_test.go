package alert

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// driveRecorder builds a recorder sampling every 100 ns with one series "x"
// whose value is vals[sample] (the last value repeats), arms rules on it and
// runs the engine until every value has been sampled.
func driveRecorder(t *testing.T, vals []float64, rules []Rule) *Evaluator {
	t.Helper()
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, 100, 0, 0)
	i := 0
	rec.Register("x", func() float64 {
		v := vals[len(vals)-1]
		if i < len(vals) {
			v = vals[i]
		}
		i++
		return v
	})
	ev, err := New(rec, rules, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	eng.Run(sim.Time(100*len(vals) + 50))
	return ev
}

func TestLifecycleHoldFiresAndResolves(t *testing.T) {
	// Samples at t=100..600: 0, 10, 10, 10, 0, 0 with a 200 ns hold.
	ev := driveRecorder(t, []float64{0, 10, 10, 10, 0, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5, ForNs: 200}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want one episode", rep.Alerts)
	}
	a := rep.Alerts[0]
	if a.PendingNs != 200 || a.FiringNs != 400 || a.ResolvedNs != 500 || a.State != StateResolved {
		t.Fatalf("episode = %+v, want pending@200 firing@400 resolved@500", a)
	}
	if a.Severity != SeverityWarning {
		t.Fatalf("severity = %q, want warning default", a.Severity)
	}
	if rep.Fired != 1 || rep.Resolved != 1 {
		t.Fatalf("fired/resolved = %d/%d, want 1/1", rep.Fired, rep.Resolved)
	}
	want := []string{StatePending, StateFiring, StateResolved}
	if len(rep.Events) != len(want) {
		t.Fatalf("events = %+v, want %v", rep.Events, want)
	}
	for i, e := range rep.Events {
		if e.To != want[i] {
			t.Fatalf("event %d: To = %q, want %q", i, e.To, want[i])
		}
	}
}

func TestLifecycleCancelBeforeHold(t *testing.T) {
	// One breaching sample, then clear: the hold never elapses.
	ev := driveRecorder(t, []float64{0, 10, 0, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5, ForNs: 300}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 || rep.Alerts[0].State != StateCancelled {
		t.Fatalf("alerts = %+v, want one cancelled episode", rep.Alerts)
	}
	if rep.Alerts[0].FiringNs != 0 || rep.Fired != 0 || rep.Cancelled != 1 {
		t.Fatalf("cancelled episode fired: %+v", rep.Alerts[0])
	}
}

func TestZeroHoldFiresOnFirstBreach(t *testing.T) {
	ev := driveRecorder(t, []float64{0, 10, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 || rep.Alerts[0].FiringNs != 200 || rep.Alerts[0].PendingNs != 200 {
		t.Fatalf("alerts = %+v, want firing at the first breaching sample", rep.Alerts)
	}
}

func TestDipFrozenBaseline(t *testing.T) {
	// Window 300 ns = 3 samples of 10 fill the ring; then a long dip to 2.
	// The baseline must stay frozen at 10 during the episode (the dip never
	// feeds the ring), so the episode resolves only at full recovery.
	vals := []float64{10, 10, 10, 2, 2, 2, 6, 10, 10}
	ev := driveRecorder(t, vals, []Rule{{
		Name: "d", Series: "x", Op: OpDip, Value: 0.5, WindowNs: 300, MinValue: 0.1,
	}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want one episode", rep.Alerts)
	}
	a := rep.Alerts[0]
	// Ring full after t=300; first dip sample t=400 (2 < 0.5*10).
	if a.PendingNs != 400 || a.Baseline != 10 {
		t.Fatalf("episode = %+v, want pending@400 baseline=10", a)
	}
	// 6 >= 0.5*10 is above the frozen floor, so the episode ends at t=700.
	if a.ResolvedNs != 700 || a.State != StateResolved {
		t.Fatalf("episode = %+v, want resolved@700 against the frozen baseline", a)
	}
	if a.Peak != 2 {
		t.Fatalf("peak = %v, want the dip minimum 2", a.Peak)
	}
}

func TestRateAbove(t *testing.T) {
	// dv/dt = 40 per 100 ns = 4e8/s between t=200 and t=300.
	ev := driveRecorder(t, []float64{0, 0, 40, 40, 40},
		[]Rule{{Name: "r", Series: "x", Op: OpRateAbove, Value: 1e8}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 || rep.Alerts[0].PendingNs != 300 {
		t.Fatalf("alerts = %+v, want one episode pending@300", rep.Alerts)
	}
	if rep.Alerts[0].ResolvedNs != 400 {
		t.Fatalf("episode = %+v, want resolved@400 when the rate flattens", rep.Alerts[0])
	}
}

func TestAbsentSeries(t *testing.T) {
	ev := driveRecorder(t, []float64{1, 1},
		[]Rule{{Name: "a", Series: "missing", Op: OpAbsent}})
	rep := ev.Report()
	if len(rep.Alerts) != 1 || rep.Alerts[0].State != StateFiring {
		t.Fatalf("alerts = %+v, want one firing absence episode", rep.Alerts)
	}
	if !strings.Contains(rep.Alerts[0].Cause, "absent") {
		t.Fatalf("cause = %q", rep.Alerts[0].Cause)
	}
}

func TestGlobBindsEveryMatchingSeries(t *testing.T) {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, 100, 0, 0)
	rec.Register("q{port=a}", func() float64 { return 10 })
	rec.Register("q{port=b}", func() float64 { return 0 })
	rec.Register("other", func() float64 { return 10 })
	ev, err := New(rec, []Rule{{Name: "g", Series: "q{*}", Op: OpAbove, Value: 5}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	eng.Run(250)
	rep := ev.Report()
	if len(rep.Alerts) != 1 || rep.Alerts[0].Series != "q{port=a}" {
		t.Fatalf("alerts = %+v, want exactly the q{port=a} episode", rep.Alerts)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"net.goodput_gbps", "net.goodput_gbps", true},
		{"net.goodput_gbps", "net.goodput", false},
		{"hermes.paths_gray{*}", "hermes.paths_gray{leaf=0}", true},
		{"hermes.paths_gray{*}", "hermes.paths_gray{}", true},
		{"hermes.paths_gray{*}", "hermes.paths_gray", false},
		{"*", "anything", true},
		{"*", "", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "acb", false},
		{"a*b*c", "a-b-c", true},
		{"a*b*c", "a-c-b", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pattern, c.key); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pattern, c.key, got, c.want)
		}
	}
}

func TestEventAndEpisodeCaps(t *testing.T) {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, 100, 0, 0)
	rec.Register("a", func() float64 { return 10 })
	rec.Register("b", func() float64 { return 10 })
	ev, err := New(rec, []Rule{{Name: "g", Series: "*", Op: OpAbove, Value: 5}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	eng.Run(350)
	rep := ev.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("alerts = %+v, want the cap to keep one episode", rep.Alerts)
	}
	if rep.DroppedAlerts != 1 {
		t.Fatalf("DroppedAlerts = %d, want the suppressed episode counted once", rep.DroppedAlerts)
	}
	if len(rep.Events) != 1 || rep.DroppedEvents == 0 {
		t.Fatalf("events = %+v dropped=%d, want one kept and the rest counted", rep.Events, rep.DroppedEvents)
	}
}

func TestValidateRejectsBadRules(t *testing.T) {
	bad := []Rule{
		{Series: "x", Op: OpAbove},                                      // no name
		{Name: "n", Op: OpAbove},                                        // no series
		{Name: "n", Series: "x"},                                        // no op
		{Name: "n", Series: "x", Op: "bogus"},                           // unknown op
		{Name: "n", Series: "x", Op: OpDip, Value: 0.5},                 // dip without window
		{Name: "n", Series: "x", Op: OpDip, WindowNs: 100},              // dip without depth
		{Name: "n", Series: "x{*}", Op: OpAbsent},                       // absent glob
		{Name: "n", Series: "x", Op: OpAbove, ForNs: -1},                // negative hold
		{Name: "n", Series: "x", Op: OpAbove, Severity: Severity("ur")}, // unknown severity
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d (%+v): Validate passed, want error", i, r)
		}
	}
	good := Rule{Name: "n", Series: "x", Op: OpAbove, Value: 1, ForNs: 100, Severity: SeverityCritical}
	if err := good.Validate(); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
}

func TestNewRejectsInvalidRule(t *testing.T) {
	rec := timeseries.NewRecorder(sim.NewEngine(), 100, 0, 0)
	if _, err := New(rec, []Rule{{Name: "n", Series: "x", Op: "bogus"}}, 0, 0); err == nil {
		t.Fatal("New accepted an invalid rule")
	}
}

func TestSnapshotSinceCursor(t *testing.T) {
	ev := driveRecorder(t, []float64{0, 10, 0, 10, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5}})
	s := ev.SnapshotSince(0)
	if len(s.Events) != 6 || s.NextEvent != 6 {
		t.Fatalf("snapshot = %+v, want 6 events (2 episodes x pending+firing+resolved)", s)
	}
	s2 := ev.SnapshotSince(s.NextEvent)
	if len(s2.Events) != 0 || s2.NextEvent != 6 {
		t.Fatalf("cursor resume = %+v, want no new events", s2)
	}
	// Invalid cursors (negative, past the end) clamp to a full read.
	for _, since := range []int{-1, 99} {
		if s := ev.SnapshotSince(since); len(s.Events) != 6 {
			t.Fatalf("SnapshotSince(%d) = %d events, want clamped full read", since, len(s.Events))
		}
	}
}

func TestRunLogRoundTrip(t *testing.T) {
	ev := driveRecorder(t, []float64{0, 10, 10, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5, ForNs: 100, Severity: SeverityCritical}})
	rep := ev.Report()
	var buf bytes.Buffer
	if err := WriteRunLog(&buf, "unit/seed 1", rep); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Label != "unit/seed 1" {
		t.Fatalf("runs = %+v", runs)
	}
	got := runs[0].Report
	if got.Fired != rep.Fired || got.Resolved != rep.Resolved || got.IntervalNs != rep.IntervalNs {
		t.Fatalf("counters = %+v, want %+v", got, rep)
	}
	if !reflect.DeepEqual(got.Alerts, rep.Alerts) || !reflect.DeepEqual(got.Events, rep.Events) {
		t.Fatalf("round trip mutated alerts/events:\ngot  %+v\nwant %+v", got, rep)
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"kind":"run","schema":"wrong/v9"}`,
		`{"kind":"alert","alert":{"rule":"r"}}`, // alert before run header
		`{"kind":"wat"}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadLog(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("ReadLog accepted %q", c)
		}
	}
}

func TestBuiltinPackValidates(t *testing.T) {
	for _, p := range []BuiltinParams{{}, {IntervalNs: 50_000, QueueCapBytes: 300_000}} {
		rules := Builtin(p)
		for _, r := range rules {
			if err := r.Validate(); err != nil {
				t.Errorf("builtin rule %q invalid: %v", r.Name, err)
			}
		}
		if p.QueueCapBytes > 0 {
			found := false
			for _, r := range rules {
				if r.Name == RuleQueueSaturation {
					found = true
				}
			}
			if !found {
				t.Error("queue-saturation missing despite QueueCapBytes")
			}
		}
	}
}

func TestRenderText(t *testing.T) {
	ev := driveRecorder(t, []float64{0, 10, 10, 0},
		[]Rule{{Name: "t", Series: "x", Op: OpAbove, Value: 5, ForNs: 100}})
	var buf bytes.Buffer
	if err := RenderText(&buf, ev.Report(), 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fired=1", "[warning/resolved] t on x", "alert timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := RenderText(&buf, nil, 0); err != nil || !strings.Contains(buf.String(), "none") {
		t.Fatalf("nil render = %q err=%v", buf.String(), err)
	}
}
