package alert

import (
	"sort"
	"strconv"
	"sync"

	"github.com/hermes-repro/hermes/internal/timeseries"
)

// Alert lifecycle states.
const (
	StatePending   = "pending"   // breached, hold not yet elapsed
	StateFiring    = "firing"    // breached for at least the hold
	StateResolved  = "resolved"  // fired, then the condition cleared
	StateCancelled = "cancelled" // breach cleared before the hold elapsed
)

// Bounds applied when the evaluator is built with zeros.
const (
	DefaultMaxEvents = 4096
	DefaultMaxAlerts = 1024
)

// Alert is one episode of a rule breaching on one series.
type Alert struct {
	Rule     string   `json:"rule"`
	Series   string   `json:"series"`
	Severity Severity `json:"severity"`
	State    string   `json:"state"`
	// PendingNs is the simulation instant of the first breaching sample.
	PendingNs int64 `json:"pending_ns"`
	// FiringNs is when the hold elapsed (0 = never fired).
	FiringNs int64 `json:"firing_ns,omitempty"`
	// ResolvedNs is when the episode ended, by resolution or cancellation
	// (0 = still open at run end).
	ResolvedNs int64 `json:"resolved_ns,omitempty"`
	// Value is the sample that tripped the rule.
	Value float64 `json:"value"`
	// Peak is the most extreme value observed during the episode (minimum
	// for dip/below, maximum otherwise).
	Peak float64 `json:"peak"`
	// Baseline is the frozen pre-breach baseline (dip/spike only).
	Baseline float64 `json:"baseline,omitempty"`
	// Cause describes the triggering sample, deterministically formatted.
	Cause string `json:"cause"`
}

// Event is one lifecycle edge, in simulation order.
type Event struct {
	AtNs     int64    `json:"at_ns"`
	Rule     string   `json:"rule"`
	Series   string   `json:"series"`
	Severity Severity `json:"severity"`
	From     string   `json:"from,omitempty"`
	To       string   `json:"to"`
	Value    float64  `json:"value"`
}

// Report is the end-of-run alert summary, embedded in Result.Alerts.
type Report struct {
	Schema     string  `json:"schema"`
	IntervalNs int64   `json:"interval_ns"`
	Rules      []Rule  `json:"rules"`
	Alerts     []Alert `json:"alerts,omitempty"`
	Events     []Event `json:"events,omitempty"`
	// Fired counts episodes that reached firing; Resolved those that then
	// cleared. Pending/Firing count episodes still open at run end.
	Fired         int `json:"fired"`
	Resolved      int `json:"resolved"`
	Pending       int `json:"pending,omitempty"`
	Firing        int `json:"firing,omitempty"`
	Cancelled     int `json:"cancelled,omitempty"`
	DroppedEvents int `json:"dropped_events,omitempty"`
	DroppedAlerts int `json:"dropped_alerts,omitempty"`
}

// Snapshot is a live view for the status plane.
type Snapshot struct {
	Alerts []Alert `json:"alerts"`
	// Events holds the lifecycle edges from the requested cursor on;
	// NextEvent is the cursor for the following poll.
	Events        []Event `json:"events"`
	NextEvent     int     `json:"next_event"`
	Pending       int     `json:"pending"`
	Firing        int     `json:"firing"`
	DroppedEvents int     `json:"dropped_events,omitempty"`
}

// seriesState is the per-(rule, series) evaluation state. It is touched
// only on the simulation goroutine.
type seriesState struct {
	ruleIdx  int
	series   string
	episode  int // index into episodes, -1 when no open episode
	ring     []float64
	ringPos  int
	ringFull bool
	baseline float64 // frozen while an episode is open (dip/spike)
	prev     float64
	prevNs   int64
	hasPrev  bool
	dropped  bool // episode suppressed at the cap; cleared when breach ends
}

// Evaluator applies a rule set to a recorder at every sample boundary.
// Episodes and events are guarded by mu so status-server goroutines can
// snapshot mid-run; all other state belongs to the simulation goroutine.
type Evaluator struct {
	rec        *timeseries.Recorder
	rules      []Rule
	maxEvents  int
	maxAlerts  int
	intervalNs int64

	states   []*seriesState
	stateIdx map[string]*seriesState // key: ruleIdx + "\x00" + series
	nProbes  int                     // probe count at last glob resolution

	mu            sync.Mutex
	episodes      []Alert
	events        []Event
	droppedEvents int
	droppedAlerts int
}

// New builds an evaluator over rec. Every rule is validated; maxEvents and
// maxAlerts bound the logs (<= 0 picks the defaults). The evaluator is
// registered on the recorder's sample hook — callers only need to keep the
// returned handle for Snapshot/Report.
func New(rec *timeseries.Recorder, rules []Rule, maxEvents, maxAlerts int) (*Evaluator, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	if maxAlerts <= 0 {
		maxAlerts = DefaultMaxAlerts
	}
	e := &Evaluator{
		rec:        rec,
		rules:      rules,
		maxEvents:  maxEvents,
		maxAlerts:  maxAlerts,
		intervalNs: int64(rec.Interval),
		stateIdx:   map[string]*seriesState{},
		nProbes:    -1,
	}
	rec.OnSample(e.Sample)
	return e, nil
}

// Rules returns the armed rule set.
func (e *Evaluator) Rules() []Rule { return e.rules }

// stateKey builds the per-(rule, series) index key.
func stateKey(ruleIdx int, series string) string {
	return strconv.Itoa(ruleIdx) + "\x00" + series
}

// resolve (re)binds every rule to its matching series. Exact names and
// absent rules bind unconditionally (absence is itself the signal); globs
// bind to the currently registered probes, re-checked whenever the probe
// count changes so late-registered series still get watched.
func (e *Evaluator) resolve() {
	names := e.rec.ProbeNames()
	if len(names) == e.nProbes {
		return
	}
	e.nProbes = len(names)
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, r := range e.rules {
		var matched []string
		if r.Op == OpAbsent || !hasGlob(r.Series) {
			matched = []string{r.Series}
		} else {
			for _, n := range sorted {
				if matchGlob(r.Series, n) {
					matched = append(matched, n)
				}
			}
		}
		for _, series := range matched {
			key := stateKey(i, series)
			if _, ok := e.stateIdx[key]; ok {
				continue
			}
			st := &seriesState{ruleIdx: i, series: series, episode: -1}
			if r.Op == OpDip || r.Op == OpSpike {
				n := int(r.WindowNs / e.intervalNs)
				if n < 1 {
					n = 1
				}
				st.ring = make([]float64, n)
			}
			e.stateIdx[key] = st
			e.states = append(e.states, st)
		}
	}
}

func hasGlob(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' {
			return true
		}
	}
	return false
}

// Sample evaluates every rule against the just-sealed row. It runs on the
// simulation goroutine via Recorder.OnSample.
func (e *Evaluator) Sample(atNs int64) {
	e.resolve()
	for _, st := range e.states {
		e.evalState(st, atNs)
	}
}

func (e *Evaluator) evalState(st *seriesState, atNs int64) {
	r := e.rules[st.ruleIdx]
	v, ok := e.rec.LatestValue(st.series)

	breach := false
	baseline := 0.0
	cause := ""
	switch r.Op {
	case OpAbove:
		breach = ok && v > r.Value
		if breach {
			cause = st.series + "=" + fmtF(v) + " above " + fmtF(r.Value)
		}
	case OpBelow:
		breach = ok && v < r.Value
		if breach {
			cause = st.series + "=" + fmtF(v) + " below " + fmtF(r.Value)
		}
	case OpRateAbove:
		if ok && st.hasPrev && atNs > st.prevNs {
			rate := (v - st.prev) / (float64(atNs-st.prevNs) / 1e9)
			breach = rate > r.Value
			if breach {
				cause = st.series + " rate " + fmtF(rate) + "/s above " + fmtF(r.Value) + "/s"
			}
		}
		if ok {
			st.prev, st.prevNs, st.hasPrev = v, atNs, true
		}
	case OpDip, OpSpike:
		open := st.episode >= 0
		if open {
			baseline = st.baseline
		} else if st.ringFull {
			sum := 0.0
			for _, x := range st.ring {
				sum += x
			}
			baseline = sum / float64(len(st.ring))
		}
		if (open || st.ringFull) && baseline > r.MinValue {
			if r.Op == OpDip {
				breach = ok && v < (1-r.Value)*baseline
				if breach {
					cause = st.series + "=" + fmtF(v) + " dipped below " + fmtF((1-r.Value)*baseline) + " (baseline " + fmtF(baseline) + ")"
				}
			} else {
				breach = ok && v > (1+r.Value)*baseline
				if breach {
					cause = st.series + "=" + fmtF(v) + " spiked above " + fmtF((1+r.Value)*baseline) + " (baseline " + fmtF(baseline) + ")"
				}
			}
		}
	case OpAbsent:
		breach = !ok
		if breach {
			cause = st.series + " absent from the recorder"
		}
	}

	e.lifecycle(st, r, atNs, v, baseline, breach, cause)

	// Feed the trailing baseline only with healthy samples outside an
	// episode, so a long dip cannot drag its own baseline down.
	if (r.Op == OpDip || r.Op == OpSpike) && ok && !breach && st.episode < 0 {
		st.ring[st.ringPos] = v
		st.ringPos++
		if st.ringPos == len(st.ring) {
			st.ringPos = 0
			st.ringFull = true
		}
	}
}

// lifecycle advances the episode state machine for one sample.
func (e *Evaluator) lifecycle(st *seriesState, r Rule, atNs int64, v, baseline float64, breach bool, cause string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if breach {
		if st.episode < 0 {
			if len(e.episodes) >= e.maxAlerts {
				if !st.dropped {
					st.dropped = true
					e.droppedAlerts++
				}
				return
			}
			st.baseline = baseline
			st.episode = len(e.episodes)
			e.episodes = append(e.episodes, Alert{
				Rule:      r.Name,
				Series:    st.series,
				Severity:  r.severity(),
				State:     StatePending,
				PendingNs: atNs,
				Value:     v,
				Peak:      v,
				Baseline:  baseline,
				Cause:     cause,
			})
			e.event(Event{AtNs: atNs, Rule: r.Name, Series: st.series, Severity: r.severity(), To: StatePending, Value: v})
		}
		ep := &e.episodes[st.episode]
		if r.Op == OpDip || r.Op == OpBelow {
			if v < ep.Peak {
				ep.Peak = v
			}
		} else if v > ep.Peak {
			ep.Peak = v
		}
		if ep.State == StatePending && atNs-ep.PendingNs >= r.ForNs {
			ep.State = StateFiring
			ep.FiringNs = atNs
			e.event(Event{AtNs: atNs, Rule: r.Name, Series: st.series, Severity: r.severity(), From: StatePending, To: StateFiring, Value: v})
		}
		return
	}
	st.dropped = false
	if st.episode < 0 {
		return
	}
	ep := &e.episodes[st.episode]
	to := StateResolved
	if ep.State == StatePending {
		to = StateCancelled
	}
	from := ep.State
	ep.State = to
	ep.ResolvedNs = atNs
	e.event(Event{AtNs: atNs, Rule: r.Name, Series: st.series, Severity: r.severity(), From: from, To: to, Value: v})
	st.episode = -1
}

// event appends one lifecycle edge, honoring the cap. Callers hold mu.
func (e *Evaluator) event(ev Event) {
	if len(e.events) >= e.maxEvents {
		e.droppedEvents++
		return
	}
	e.events = append(e.events, ev)
}

// SnapshotSince returns the current episodes plus the lifecycle events from
// cursor sinceEvent on. Safe for concurrent use with Sample.
func (e *Evaluator) SnapshotSince(sinceEvent int) Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sinceEvent < 0 || sinceEvent > len(e.events) {
		sinceEvent = 0
	}
	s := Snapshot{
		Alerts:        append([]Alert(nil), e.episodes...),
		Events:        append([]Event(nil), e.events[sinceEvent:]...),
		NextEvent:     len(e.events),
		DroppedEvents: e.droppedEvents,
	}
	for _, a := range e.episodes {
		switch a.State {
		case StatePending:
			s.Pending++
		case StateFiring:
			s.Firing++
		}
	}
	return s
}

// Report summarizes the run for Result.Alerts. Call after the run ends
// (it is also safe mid-run; the returned value is a copy).
func (e *Evaluator) Report() *Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := &Report{
		Schema:        Schema,
		IntervalNs:    e.intervalNs,
		Rules:         append([]Rule(nil), e.rules...),
		Alerts:        append([]Alert(nil), e.episodes...),
		Events:        append([]Event(nil), e.events...),
		DroppedEvents: e.droppedEvents,
		DroppedAlerts: e.droppedAlerts,
	}
	for _, a := range e.episodes {
		if a.FiringNs != 0 {
			rep.Fired++
		}
		switch a.State {
		case StatePending:
			rep.Pending++
		case StateFiring:
			rep.Firing++
		case StateResolved:
			rep.Resolved++
		case StateCancelled:
			rep.Cancelled++
		}
	}
	return rep
}

// fmtF formats a float deterministically for cause strings.
func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
