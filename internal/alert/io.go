package alert

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL alert log: one "run" header line per run (label + summary
// counters), followed by that run's alert lines and event lines. Runs are
// written in slot order by the chaos matrix regardless of worker
// scheduling, so the log is byte-identical parallel vs sequential.

// logLine is the union row. Kind selects which fields are set.
type logLine struct {
	Kind   string `json:"kind"` // "run" | "alert" | "event"
	Schema string `json:"schema,omitempty"`
	Label  string `json:"label,omitempty"`
	// Run header summary.
	IntervalNs    int64 `json:"interval_ns,omitempty"`
	Fired         int   `json:"fired,omitempty"`
	Resolved      int   `json:"resolved,omitempty"`
	Cancelled     int   `json:"cancelled,omitempty"`
	Pending       int   `json:"pending,omitempty"`
	Firing        int   `json:"firing,omitempty"`
	DroppedEvents int   `json:"dropped_events,omitempty"`
	DroppedAlerts int   `json:"dropped_alerts,omitempty"`

	Alert *Alert `json:"alert,omitempty"`
	Event *Event `json:"event,omitempty"`
}

// RunLog is one run's worth of a parsed alert log.
type RunLog struct {
	Label  string
	Report Report
}

// WriteRunLog appends one run's alerts to w as JSONL.
func WriteRunLog(w io.Writer, label string, rep *Report) error {
	if rep == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	head := logLine{
		Kind:          "run",
		Schema:        Schema,
		Label:         label,
		IntervalNs:    rep.IntervalNs,
		Fired:         rep.Fired,
		Resolved:      rep.Resolved,
		Cancelled:     rep.Cancelled,
		Pending:       rep.Pending,
		Firing:        rep.Firing,
		DroppedEvents: rep.DroppedEvents,
		DroppedAlerts: rep.DroppedAlerts,
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for i := range rep.Alerts {
		if err := enc.Encode(logLine{Kind: "alert", Alert: &rep.Alerts[i]}); err != nil {
			return err
		}
	}
	for i := range rep.Events {
		if err := enc.Encode(logLine{Kind: "event", Event: &rep.Events[i]}); err != nil {
			return err
		}
	}
	return nil
}

// ReadLog parses a JSONL alert log back into per-run reports.
func ReadLog(r io.Reader) ([]RunLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var runs []RunLog
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ll logLine
		if err := json.Unmarshal(sc.Bytes(), &ll); err != nil {
			return nil, fmt.Errorf("alert log line %d: %w", line, err)
		}
		switch ll.Kind {
		case "run":
			if ll.Schema != Schema {
				return nil, fmt.Errorf("alert log line %d: schema %q, want %q", line, ll.Schema, Schema)
			}
			runs = append(runs, RunLog{Label: ll.Label, Report: Report{
				Schema:        ll.Schema,
				IntervalNs:    ll.IntervalNs,
				Fired:         ll.Fired,
				Resolved:      ll.Resolved,
				Cancelled:     ll.Cancelled,
				Pending:       ll.Pending,
				Firing:        ll.Firing,
				DroppedEvents: ll.DroppedEvents,
				DroppedAlerts: ll.DroppedAlerts,
			}})
		case "alert":
			if len(runs) == 0 || ll.Alert == nil {
				return nil, fmt.Errorf("alert log line %d: alert before run header", line)
			}
			rep := &runs[len(runs)-1].Report
			rep.Alerts = append(rep.Alerts, *ll.Alert)
		case "event":
			if len(runs) == 0 || ll.Event == nil {
				return nil, fmt.Errorf("alert log line %d: event before run header", line)
			}
			rep := &runs[len(runs)-1].Report
			rep.Events = append(rep.Events, *ll.Event)
		default:
			return nil, fmt.Errorf("alert log line %d: unknown kind %q", line, ll.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}
