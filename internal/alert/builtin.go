package alert

// Builtin rule names, pinned so downstream consumers (the chaos scorecard
// detect cross-check, tests, dashboards) can key on them.
const (
	RuleGoodputDip      = "goodput-dip"
	RuleP99FCTInflation = "p99-fct-inflation"
	RuleQueueSaturation = "queue-saturation"
	RuleGrayPathDwell   = "gray-path-dwell"
)

// BuiltinParams sizes the builtin pack to the run it watches.
type BuiltinParams struct {
	// IntervalNs is the recorder sampling period; windows and holds are
	// expressed in sample intervals so the pack adapts to -timeseries-us.
	IntervalNs int64
	// QueueCapBytes is the largest fabric-port queue capacity; the
	// saturation threshold is 90% of it. <= 0 omits the queue rule.
	QueueCapBytes float64
}

// Builtin returns the standard SLO pack: goodput dip, p99-FCT inflation,
// queue saturation, and gray-path dwell. Thresholds are conservative —
// tuned to stay silent on a healthy testbed run and fire on the chaos
// scenarios' induced failures.
func Builtin(p BuiltinParams) []Rule {
	iv := p.IntervalNs
	if iv <= 0 {
		iv = 100_000 // timeseries.DefaultInterval
	}
	rules := []Rule{
		{
			Name:     RuleGoodputDip,
			Series:   "net.goodput_gbps",
			Op:       OpDip,
			Value:    0.4,
			WindowNs: 20 * iv,
			ForNs:    3 * iv,
			MinValue: 0.05,
			Severity: SeverityWarning,
			Help:     "aggregate goodput dipped >40% below its trailing baseline",
		},
		{
			Name:     RuleP99FCTInflation,
			Series:   "transport.fct_p99_ms",
			Op:       OpSpike,
			Value:    1.0,
			WindowNs: 20 * iv,
			ForNs:    3 * iv,
			MinValue: 0.01,
			Severity: SeverityWarning,
			Help:     "p99 flow completion time more than doubled vs its trailing baseline",
		},
		// Two entries share the gray-path-dwell name on purpose: the
		// recovery plane's detection instant is the first transition into
		// gray OR failed, and a probe-loss verdict can take a path straight
		// to failed without ever dwelling gray. Watching both censuses keeps
		// the watchdog consistent with Recovery.TimeToDetect.
		{
			Name:     RuleGrayPathDwell,
			Series:   "hermes.paths_gray{*}",
			Op:       OpAbove,
			Value:    0,
			Severity: SeverityCritical,
			Help:     "at least one path is characterized gray (sensing sees a failure)",
		},
		{
			Name:     RuleGrayPathDwell,
			Series:   "hermes.paths_failed{*}",
			Op:       OpAbove,
			Value:    0,
			Severity: SeverityCritical,
			Help:     "at least one path is characterized failed (sensing confirmed a failure)",
		},
	}
	if p.QueueCapBytes > 0 {
		rules = append(rules, Rule{
			Name:     RuleQueueSaturation,
			Series:   "net.port.queue_bytes{*}",
			Op:       OpAbove,
			Value:    0.9 * p.QueueCapBytes,
			Severity: SeverityCritical,
			Help:     "a fabric port queue exceeded 90% of its capacity",
		})
	}
	return rules
}
