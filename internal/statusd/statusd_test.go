package statusd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

func testManifest() telemetry.Manifest {
	return telemetry.Manifest{
		Schema:      telemetry.ManifestSchema,
		Module:      "github.com/hermes-repro/hermes",
		Version:     "v0.6.0-test",
		GoVersion:   "go1.22",
		VCSRevision: "deadbeef",
	}
}

// TestNilTrackerIsNoOp: the disabled state is a nil pointer; every method
// must be callable on it.
func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.Plan(3)
	tr.Note("x")
	h := tr.StartRun("r", 10)
	if h != nil {
		t.Fatalf("nil tracker returned a live handle")
	}
	h.Update(1, 2, 3, 4)
	h.SetMetrics(map[string]float64{"a": 1})
	h.Finish(RunSummary{}, nil, nil)
	h.Fail(errors.New("boom"))
	tr.AttachFlight(nil, "")
	if p := tr.Progress(); p.ETAMs != -1 || p.RunsPlanned != 0 {
		t.Fatalf("nil progress = %+v", p)
	}
	if err := tr.WriteMetrics(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	tr.StartLogging(&strings.Builder{}, time.Second)()
}

// TestProgressMath: finished runs weigh 1, in-flight runs weigh their flow
// fraction, and the ETA extrapolates from the completed fraction.
func TestProgressMath(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.Plan(4)

	for i := 0; i < 2; i++ {
		h := tr.StartRun(fmt.Sprintf("done-%d", i), 100)
		h.Update(50_000_000, 100, 100, 5000)
		h.Finish(RunSummary{Seed: int64(i), SimDurationNs: 50_000_000, Events: 5000, Flows: 100},
			map[string]float64{"net.drops": 3}, nil)
	}
	h := tr.StartRun("half", 10)
	h.Update(25_000_000, 8, 5, 1234)

	p := tr.Progress()
	if p.RunsPlanned != 4 || p.RunsDone != 2 || p.RunsActive != 1 {
		t.Fatalf("counts: %+v", p)
	}
	want := (2.0 + 0.5) / 4.0
	if p.FracDone != want {
		t.Fatalf("FracDone = %v, want %v", p.FracDone, want)
	}
	if p.PctDone != 100*want {
		t.Fatalf("PctDone = %v", p.PctDone)
	}
	if p.ETAMs < 0 {
		t.Fatalf("ETA unknown with fraction %v", p.FracDone)
	}
	if p.SimNs != 2*50_000_000+25_000_000 {
		t.Fatalf("SimNs = %d", p.SimNs)
	}
	if p.Events != 2*5000+1234 {
		t.Fatalf("Events = %d", p.Events)
	}
	if len(p.Active) != 1 || p.Active[0].Label != "half" || p.Active[0].Frac != 0.5 {
		t.Fatalf("active: %+v", p.Active)
	}
	if p.LastDone != "done-1" {
		t.Fatalf("LastDone = %q", p.LastDone)
	}

	// Finishing the rest drives the fraction to 1 and the ETA to 0.
	h.Update(50_000_000, 10, 10, 2000)
	h.Finish(RunSummary{Seed: 2}, nil, nil)
	h2 := tr.StartRun("fails", 10)
	h2.Fail(errors.New("synthetic"))
	p = tr.Progress()
	if p.FracDone != 1 || p.ETAMs != 0 || p.RunsFailed != 1 {
		t.Fatalf("terminal progress: %+v", p)
	}
	if got := len(tr.Summaries()); got != 4 {
		t.Fatalf("summaries = %d, want 4", got)
	}
}

// TestProgressPlanFloor: even if Plan was never called (or undercounted), the
// denominator never drops below what the tracker has already seen.
func TestProgressPlanFloor(t *testing.T) {
	tr := NewTracker(testManifest())
	h := tr.StartRun("only", 0)
	h.Finish(RunSummary{}, nil, nil)
	if p := tr.Progress(); p.FracDone != 1 {
		t.Fatalf("unplanned run should still complete the fraction: %+v", p)
	}
}

var metricLine = regexp.MustCompile(
	`^(?:# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (?:[-+]?(?:[0-9.eE+-]+|Inf)|NaN))$`)

// TestWriteMetricsExposition: every line parses as Prometheus text format,
// expected families appear exactly once, and registry keys are translated.
func TestWriteMetricsExposition(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.Plan(2)
	h := tr.StartRun("s/1", 10)
	h.SetMetrics(map[string]float64{
		`net.port.tx_bytes{port=l0-s1}`: 1000,
		`net.port.tx_bytes{port=l0-s2}`: 2000,
		`net.drops`:                     1,
	})
	done := tr.StartRun("s/0", 10)
	done.Finish(RunSummary{SimDurationNs: 1e7, Events: 42, Flows: 10},
		map[string]float64{`net.drops`: 4},
		map[string]telemetry.HistogramStats{
			"fct_ms": {
				Count: 3, Sum: 6, Min: 1, Max: 3, Inf: 1,
				Buckets: []telemetry.HistBucket{{UpperBound: 1, Count: 1}, {UpperBound: 2, Count: 1}},
			},
		})

	var b strings.Builder
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	typeCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typeCount[strings.Fields(rest)[0]]++
		}
	}
	for fam, n := range typeCount {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}
	for _, want := range []string{
		"hermes_runs_planned 2\n",
		"hermes_runs_completed_total 1\n",
		"hermes_runs_active 1\n",
		`hermes_build_info{version="v0.6.0-test",revision="deadbeef",goversion="go1.22"} 1` + "\n",
		`hermes_net_port_tx_bytes{port="l0-s1"} 1000` + "\n",
		`hermes_net_port_tx_bytes{port="l0-s2"} 2000` + "\n",
		"hermes_net_drops 5\n", // 4 from the finished run + 1 live
		`hermes_fct_ms_bucket{le="1"} 1` + "\n",
		`hermes_fct_ms_bucket{le="2"} 2` + "\n",
		`hermes_fct_ms_bucket{le="+Inf"} 3` + "\n",
		"hermes_fct_ms_sum 6\n",
		"hermes_fct_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", strings.TrimRight(want, "\n"), out)
		}
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content-type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// TestHandlerEndpoints drives the mux through httptest: progress, manifest,
// report, metrics and the no-recorder series 404.
func TestHandlerEndpoints(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.Plan(3)
	tr.Note("phase one")
	h := tr.StartRun("leaf/seed 1", 5)
	h.Update(7_000_000, 3, 2, 99)
	done := tr.StartRun("leaf/seed 0", 5)
	done.Finish(RunSummary{Seed: 0, GoodputGbps: 8.5}, nil, nil)

	srv := httptest.NewServer(Handler(tr, 10*time.Millisecond))
	defer srv.Close()

	var p Progress
	getJSON(t, srv, "/api/progress", &p)
	if p.RunsPlanned != 3 || p.RunsDone != 1 || p.RunsActive != 1 || p.Note != "phase one" {
		t.Fatalf("progress: %+v", p)
	}
	if len(p.Active) != 1 || p.Active[0].SimNs != 7_000_000 {
		t.Fatalf("active: %+v", p.Active)
	}

	var m telemetry.Manifest
	getJSON(t, srv, "/api/manifest", &m)
	if m.VCSRevision != "deadbeef" || m.Schema != telemetry.ManifestSchema {
		t.Fatalf("manifest: %+v", m)
	}

	var rep StatusReport
	getJSON(t, srv, "/api/report", &rep)
	if len(rep.Runs) != 1 || rep.Runs[0].GoodputGbps != 8.5 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Manifest.Version != "v0.6.0-test" {
		t.Fatalf("report manifest: %+v", rep.Manifest)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("metrics content-type: %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "hermes_runs_planned 3") {
		t.Fatalf("metrics body:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/api/series")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("series without recorder: status %d, want 404", resp.StatusCode)
	}

	// /api/checkpoints is an empty array before any write, never a 404 —
	// polling operators shouldn't have to special-case "not armed yet".
	var cks []CheckpointEvent
	getJSON(t, srv, "/api/checkpoints", &cks)
	if cks == nil || len(cks) != 0 {
		t.Fatalf("checkpoints before any write: %#v, want []", cks)
	}
	tr.RecordCheckpoint(CheckpointEvent{
		Run: "leaf/seed 1", Kind: "scheduled", SimTimeNs: 5_000_000,
		Path: "/tmp/ckpt-abc-t000005000000.ckpt", Bytes: 1234,
	})
	getJSON(t, srv, "/api/checkpoints", &cks)
	if len(cks) != 1 || cks[0].Kind != "scheduled" || cks[0].SimTimeNs != 5_000_000 {
		t.Fatalf("checkpoints after write: %+v", cks)
	}
	if cks[0].WallUnix == 0 {
		t.Fatalf("checkpoint event not wall-stamped: %+v", cks[0])
	}

	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var b strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&b)
	return b.String(), err
}

// newTestRecording builds a cap-4 recording holding rows 6..9 of 10.
func newTestRecording() *timeseries.Recorder {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 4, 16)
	v := 0.0
	rec.Register("x", func() float64 { return v })
	for i := 0; i < 10; i++ {
		v = float64(i)
		rec.Snap()
	}
	return rec
}

// TestSeriesEndpoint: full snapshot on a zero cursor, empty delta when the
// cursor is current, reset delta when the cursor fell off the ring.
func TestSeriesEndpoint(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.AttachFlight(newTestRecording(), "leaf/seed 7")
	srv := httptest.NewServer(Handler(tr, 10*time.Millisecond))
	defer srv.Close()

	var full SeriesPayload
	getJSON(t, srv, "/api/series", &full)
	if full.Label != "leaf/seed 7" || full.Generation != 1 {
		t.Fatalf("payload identity: %+v", full)
	}
	if full.Rows() != 4 || full.Meta == nil || full.Reset {
		t.Fatalf("full snapshot: rows=%d meta=%v reset=%v", full.Rows(), full.Meta, full.Reset)
	}
	if full.Series["x"][0] != 6 {
		t.Fatalf("retained window starts at %v, want 6", full.Series["x"][0])
	}

	var idle SeriesPayload
	getJSON(t, srv, fmt.Sprintf("/api/series?seq=%d&transition=%d", full.Cursor.Seq, full.Cursor.Transition), &idle)
	if idle.Rows() != 0 || idle.Reset {
		t.Fatalf("idle delta: %+v", idle)
	}

	var stale SeriesPayload
	getJSON(t, srv, "/api/series?seq=2", &stale)
	if !stale.Reset || stale.Rows() != 4 || stale.TruncatedSamples != 6 {
		t.Fatalf("stale-cursor delta: reset=%v rows=%d truncated=%d",
			stale.Reset, stale.Rows(), stale.TruncatedSamples)
	}
}

// readSSE reads frames from an event stream until one "delta" event arrives
// (skipping keepalive comments), returning its id and decoded payload.
func readSSE(t *testing.T, body *bufio.Reader) (id string, p SeriesPayload) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var isDelta bool
	for time.Now().Before(deadline) {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case line == "event: delta":
			isDelta = true
		case strings.HasPrefix(line, "data: ") && isDelta:
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				t.Fatalf("stream payload: %v", err)
			}
			return id, p
		case line == "" || strings.HasPrefix(line, ":"):
			// frame boundary or keepalive
		}
	}
	t.Fatal("no delta event within deadline")
	return
}

// TestStreamCursorResume: an SSE client that reconnects with a Last-Event-ID
// that fell off the ring gets one reset delta carrying the retained window,
// and its next cursor is clean.
func TestStreamCursorResume(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.AttachFlight(newTestRecording(), "leaf/seed 7")
	srv := httptest.NewServer(Handler(tr, 5*time.Millisecond))
	defer srv.Close()

	// Fresh connect: the first delta is the full retained window.
	req, _ := http.NewRequest("GET", srv.URL+"/api/series/stream", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type: %q", ct)
	}
	id, p := readSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if p.Rows() != 4 || p.Reset {
		t.Fatalf("fresh stream delta: rows=%d reset=%v", p.Rows(), p.Reset)
	}
	if id != "10:0:1" {
		t.Fatalf("event id = %q, want 10:0:1", id)
	}

	// Reconnect claiming a position the ring has already evicted.
	req, _ = http.NewRequest("GET", srv.URL+"/api/series/stream", nil)
	req.Header.Set("Last-Event-ID", "3:0:1")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, p = readSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if !p.Reset {
		t.Fatal("resume past truncation: expected reset=true")
	}
	if p.Rows() != 4 || p.Series["x"][0] != 6 {
		t.Fatalf("resume delta: rows=%d first=%v", p.Rows(), p.Series["x"])
	}
	if p.Cursor.Seq != 10 {
		t.Fatalf("resume cursor: %+v", p.Cursor)
	}

	// Reconnect at the live edge: the stream stays quiet (keepalives only)
	// until the recording is replaced by a new generation.
	req, _ = http.NewRequest("GET", srv.URL+"/api/series/stream", nil)
	req.Header.Set("Last-Event-ID", "10:0:1")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachFlight(newTestRecording(), "spine/seed 8")
	_, p = readSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if p.Label != "spine/seed 8" || p.Generation != 2 {
		t.Fatalf("generation switch: %+v", p)
	}
	if p.Rows() != 4 {
		t.Fatalf("new recording delta: rows=%d", p.Rows())
	}
}

// TestServerLifecycle: NewServer binds, serves, reports a usable URL, closes.
func TestServerLifecycle(t *testing.T) {
	tr := NewTracker(testManifest())
	s, err := NewServer("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" || !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("addr=%q url=%q", s.Addr(), s.URL())
	}
	resp, err := http.Get(s.URL() + "/api/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(s.URL() + "/api/progress"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

// TestProgressLine: the -progress text surface.
func TestProgressLine(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.Plan(2)
	h := tr.StartRun("a/seed 0", 4)
	h.Finish(RunSummary{SimDurationNs: 2_000_000}, nil, nil)
	line := tr.ProgressLine()
	if !strings.Contains(line, "1/2 runs (50.0%)") {
		t.Fatalf("progress line: %q", line)
	}
	var b strings.Builder
	stop := tr.StartLogging(&b, time.Hour)
	stop()
	stop() // idempotent
	if !strings.Contains(b.String(), "1/2 runs") {
		t.Fatalf("StartLogging final line: %q", b.String())
	}
}
