package statusd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/perf"
)

// TestPerfExposition: the hermes_perf_* family is absent without an attached
// observatory, present and well-formed with one, and /api/perf mirrors the
// same observatory (404 before attach).
func TestPerfExposition(t *testing.T) {
	tr := NewTracker(testManifest())

	var b strings.Builder
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "hermes_perf_") {
		t.Fatalf("perf family present without an observatory:\n%s", b.String())
	}

	srv := httptest.NewServer(Handler(tr, 0))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/perf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/api/perf without observatory: status %d, want 404", resp.StatusCode)
	}

	obs := perf.NewObservatory()
	obs.AddRun(&perf.RunReport{
		EventsTotal: 42, QueuePeak: 7, SimNs: 1000, WallNs: 500,
		ByKind: []perf.KindStat{
			{Kind: "port_tx", Count: 30},
			{Kind: "rto", Count: 12},
		},
	})
	tr.AttachPerf(obs)

	b.Reset()
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	typeCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typeCount[strings.Fields(rest)[0]]++
		}
	}
	for fam, n := range typeCount {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}
	for _, want := range []string{
		"# TYPE hermes_perf_runs_profiled_total counter\n",
		"hermes_perf_runs_profiled_total 1\n",
		"hermes_perf_events_total 42\n",
		`hermes_perf_events_by_kind_total{kind="port_tx"} 30` + "\n",
		`hermes_perf_events_by_kind_total{kind="rto"} 12` + "\n",
		"hermes_perf_queue_peak 7\n",
		"hermes_perf_sim_per_wall 2\n",
		"# TYPE hermes_perf_goroutines gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", strings.TrimRight(want, "\n"), out)
		}
	}

	var s perf.Summary
	getJSON(t, srv, "/api/perf", &s)
	if s.RunsProfiled != 1 || s.EventsTotal != 42 || s.EventsByKind["port_tx"] != 30 {
		t.Fatalf("/api/perf summary: %+v", s)
	}
	if s.Runtime.GOMAXPROCS < 1 || s.Runtime.GoVersion == "" {
		t.Fatalf("/api/perf runtime snapshot not live: %+v", s.Runtime)
	}

	// A nil tracker accepts AttachPerf and keeps serving nothing.
	var nilTr *Tracker
	nilTr.AttachPerf(obs)
	if nilTr.Perf() != nil {
		t.Fatal("nil tracker returned an observatory")
	}
	// Attaching nil leaves the previous observatory in place only if one is
	// given; a nil attach is ignored.
	tr.AttachPerf(nil)
	if tr.Perf() != obs {
		t.Fatal("nil AttachPerf displaced the live observatory")
	}
}

func TestPerfSummaryJSONShape(t *testing.T) {
	obs := perf.NewObservatory()
	data, err := json.Marshal(obs.Summary())
	if err != nil {
		t.Fatal(err)
	}
	// An empty observatory omits the optional maps but keeps the aggregate
	// counters, so dashboards can poll before the first profiled run lands.
	for _, want := range []string{`"RunsProfiled":0`, `"Runtime":{`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("summary JSON missing %s: %s", want, data)
		}
	}
}
