package statusd

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/hermes-repro/hermes/internal/telemetry"
)

// WriteMetrics renders the tracker as Prometheus text exposition (format
// version 0.0.4): the progress plane as typed hermes_* series, then every
// telemetry-registry metric — completed-run totals summed across runs,
// overlaid with each in-flight run's latest snapshot — and the accumulated
// histograms. Registry keys like net.port.tx_bytes{port=l0-s1} become
// hermes_net_port_tx_bytes{port="l0-s1"}.
func (t *Tracker) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	p := t.Progress()
	m := t.Manifest()

	var b strings.Builder
	info := func(name, help, typ string, v float64, labels ...string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		b.WriteString(name)
		writeLabels(&b, labels)
		b.WriteByte(' ')
		b.WriteString(formatValue(v))
		b.WriteByte('\n')
	}
	info("hermes_build_info", "Build provenance; value is always 1.", "gauge", 1,
		"version", m.Version, "revision", m.VCSRevision, "goversion", m.GoVersion)
	info("hermes_runs_planned", "Simulation runs planned so far.", "gauge", float64(p.RunsPlanned))
	info("hermes_runs_completed_total", "Simulation runs finished successfully.", "counter", float64(p.RunsDone))
	info("hermes_runs_failed_total", "Simulation runs that returned an error.", "counter", float64(p.RunsFailed))
	info("hermes_runs_active", "Simulations currently executing.", "gauge", float64(p.RunsActive))
	info("hermes_progress_fraction", "Completed fraction of the planned work (0..1).", "gauge", p.FracDone)
	eta := -1.0
	if p.ETAMs >= 0 {
		eta = float64(p.ETAMs) / 1e3
	}
	info("hermes_eta_seconds", "Estimated wall seconds to completion (-1 = unknown).", "gauge", eta)
	info("hermes_wall_seconds_total", "Wall seconds since the tracker started.", "counter", float64(p.WallMs)/1e3)
	info("hermes_sim_seconds_total", "Virtual seconds simulated (completed + in-flight runs).", "counter", float64(p.SimNs)/1e9)
	info("hermes_sim_events_total", "Simulation events fired (completed + in-flight runs).", "counter", float64(p.Events))

	// SLO watchdog: Prometheus-convention ALERTS series, present only when
	// a run with Config.Alerts attached its evaluator. One sample per OPEN
	// episode (value 1 while pending or firing) — each (rule, series) pair
	// has at most one open episode, so label sets never collide.
	if ev, _, _ := t.Alerts(); ev != nil {
		s := ev.SnapshotSince(0)
		fmt.Fprintf(&b, "# HELP ALERTS SLO watchdog alerts currently pending or firing (value is always 1).\n# TYPE ALERTS gauge\n")
		for _, a := range s.Alerts {
			if a.State != "pending" && a.State != "firing" {
				continue
			}
			b.WriteString("ALERTS")
			writeLabels(&b, []string{
				"alertname", a.Rule, "severity", string(a.Severity),
				"state", a.State, "series", a.Series,
			})
			b.WriteString(" 1\n")
		}
		info("hermes_alerts_pending", "Alert episodes currently in the pending state.", "gauge", float64(s.Pending))
		info("hermes_alerts_firing", "Alert episodes currently in the firing state.", "gauge", float64(s.Firing))
	}

	// Performance observatory: the perf.* family, present only when a run
	// with Config.Perf attached its observatory. Samples arrive pre-sorted
	// and grouped per family, so one HELP/TYPE pair per distinct name
	// suffices.
	if obs := t.Perf(); obs != nil {
		lastName := ""
		for _, pm := range obs.Metrics() {
			name := "hermes_" + sanitizeName(pm.Name)
			if name != lastName {
				fmt.Fprintf(&b, "# HELP %s Performance observatory aggregate %s.\n", name, pm.Name)
				fmt.Fprintf(&b, "# TYPE %s %s\n", name, pm.Type)
				lastName = name
			}
			b.WriteString(name)
			var kv []string
			lks := make([]string, 0, len(pm.Labels))
			for k := range pm.Labels {
				lks = append(lks, k)
			}
			sort.Strings(lks)
			for _, k := range lks {
				kv = append(kv, k, pm.Labels[k])
			}
			writeLabels(&b, kv)
			b.WriteByte(' ')
			b.WriteString(formatValue(pm.Value))
			b.WriteByte('\n')
		}
	}

	// Registry metrics: completed-run sums plus live snapshots.
	merged := map[string]float64{}
	t.mu.Lock()
	for k, v := range t.doneMetrics {
		merged[k] += v
	}
	handles := make([]*RunHandle, 0, len(t.active))
	for h := range t.active {
		handles = append(handles, h)
	}
	hists := make(map[string]telemetry.HistogramStats, len(t.doneHists))
	for k, v := range t.doneHists {
		hs := v
		hs.Buckets = append([]telemetry.HistBucket(nil), v.Buckets...)
		hists[k] = hs
	}
	t.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		for k, v := range h.metrics {
			merged[k] += v
		}
		h.mu.Unlock()
	}

	// Group by sanitized metric name so each family gets exactly one TYPE
	// line with its samples contiguous, as the exposition format requires.
	type sample struct {
		labels []string
		value  float64
	}
	families := map[string][]sample{}
	for k, v := range merged {
		name, labels := splitKey(k)
		families[name] = append(families[name], sample{labels, v})
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "# HELP %s Telemetry registry metric, summed over completed runs plus live snapshots.\n", name)
		fmt.Fprintf(&b, "# TYPE %s untyped\n", name)
		samples := families[name]
		sort.Slice(samples, func(i, j int) bool {
			return strings.Join(samples[i].labels, ",") < strings.Join(samples[j].labels, ",")
		})
		for _, s := range samples {
			b.WriteString(name)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}

	hkeys := make([]string, 0, len(hists))
	for k := range hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		writeHistogram(&b, k, hists[k])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one accumulated histogram in Prometheus histogram
// shape: cumulative _bucket{le=...} series, then _sum and _count.
func writeHistogram(b *strings.Builder, key string, hs telemetry.HistogramStats) {
	name, labels := splitKey(key)
	fmt.Fprintf(b, "# HELP %s Telemetry registry histogram, accumulated across completed runs.\n", name)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	emit := func(le string, count uint64) {
		b.WriteString(name + "_bucket")
		writeLabels(b, append(append([]string{}, labels...), "le", le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(count, 10))
		b.WriteByte('\n')
	}
	for _, bucket := range hs.Buckets {
		cum += bucket.Count
		emit(formatValue(bucket.UpperBound), cum)
	}
	emit("+Inf", cum+hs.Inf)
	b.WriteString(name + "_sum")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %s\n", formatValue(hs.Sum))
	b.WriteString(name + "_count")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %d\n", hs.Count)
}

// splitKey converts a registry key name{k=v,...} into a sanitized metric
// name and a flat [k1, v1, k2, v2, ...] label list.
func splitKey(key string) (string, []string) {
	name, rest, found := strings.Cut(key, "{")
	name = "hermes_" + sanitizeName(name)
	if !found {
		return name, nil
	}
	rest = strings.TrimSuffix(rest, "}")
	var labels []string
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			continue
		}
		labels = append(labels, k, v)
	}
	return name, labels
}

// sanitizeName maps an arbitrary metric name onto [a-zA-Z0-9_:].
func sanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...} from a flat key/value list, escaping label
// values per the exposition format. Empty-valued labels are dropped.
func writeLabels(b *strings.Builder, kv []string) {
	wrote := false
	for i := 0; i+1 < len(kv); i += 2 {
		k, v := kv[i], kv[i+1]
		if v == "" {
			continue
		}
		if !wrote {
			b.WriteByte('{')
		} else {
			b.WriteByte(',')
		}
		wrote = true
		b.WriteString(sanitizeName(k))
		b.WriteString(`="`)
		r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
		b.WriteString(r.Replace(v))
		b.WriteByte('"')
	}
	if wrote {
		b.WriteByte('}')
	}
}

// formatValue renders a float the way Prometheus clients expect.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
