// Package statusd is the live run observatory: a Tracker that aggregates
// progress, metrics and flight-recorder access across the runs of one
// process, and an HTTP Server that exposes it while simulations execute —
// /api/progress (completion and ETA), /metrics (Prometheus text
// exposition), /api/series and /api/series/stream (flight-recorder
// snapshots and SSE deltas), /api/manifest (build provenance) and
// /api/report (per-run summaries so far).
//
// The tracker is purely observational. Simulations publish to it at
// scheduling-slice boundaries and run end — never from the per-packet hot
// path — and readers only copy state under the tracker lock, so attaching a
// tracker (or serving it over HTTP) cannot perturb results: reports are
// byte-identical with the status plane on or off. A nil *Tracker is the
// disabled state; every method is a no-op.
package statusd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/perf"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// RunSummary is the completed-run record kept for /api/report.
type RunSummary struct {
	Label         string  `json:"label"`
	Scheme        string  `json:"scheme,omitempty"`
	Workload      string  `json:"workload,omitempty"`
	Scenario      string  `json:"scenario,omitempty"`
	Load          float64 `json:"load,omitempty"`
	Seed          int64   `json:"seed"`
	SimDurationNs int64   `json:"sim_duration_ns"`
	Events        uint64  `json:"events"`
	Flows         int     `json:"flows"`
	Unfinished    int     `json:"unfinished,omitempty"`
	GoodputGbps   float64 `json:"goodput_gbps"`
	MeanMs        float64 `json:"fct_mean_ms"`
	P99Ms         float64 `json:"fct_p99_ms"`
	WallMs        int64   `json:"wall_ms"`
	Err           string  `json:"error,omitempty"`
}

// ActiveRun is one in-flight simulation as /api/progress reports it.
type ActiveRun struct {
	Label        string  `json:"label"`
	SimNs        int64   `json:"sim_ns"`
	FlowsStarted int64   `json:"flows_started"`
	FlowsDone    int64   `json:"flows_done"`
	FlowsTotal   int64   `json:"flows_total"`
	Frac         float64 `json:"frac"`
	WallMs       int64   `json:"wall_ms"`
}

// Progress is the /api/progress payload.
type Progress struct {
	StartUnix int64  `json:"start_unix"`
	WallMs    int64  `json:"wall_ms"`
	Note      string `json:"note,omitempty"`

	RunsPlanned int `json:"runs_planned"`
	RunsDone    int `json:"runs_done"`
	RunsFailed  int `json:"runs_failed,omitempty"`
	RunsActive  int `json:"runs_active"`

	Active   []ActiveRun `json:"active,omitempty"`
	LastDone string      `json:"last_done,omitempty"`

	// FracDone weights finished runs 1 and in-flight runs by their flow
	// progress; PctDone is the same as a percentage.
	FracDone float64 `json:"frac_done"`
	PctDone  float64 `json:"pct_done"`
	// ETAMs extrapolates wall time per completed fraction (-1 = unknown).
	ETAMs int64 `json:"eta_ms"`

	// SimNs and Events accumulate over completed plus in-flight runs;
	// SimPerWall is virtual seconds simulated per wall second.
	SimNs      int64   `json:"sim_ns"`
	Events     uint64  `json:"events"`
	SimPerWall float64 `json:"sim_per_wall"`
}

// RunHandle is one simulation's channel into the tracker. The owning run
// goroutine calls Update/SetMetrics/Finish/Fail; everything is cheap enough
// for slice-boundary cadence. A nil handle is a no-op.
type RunHandle struct {
	t     *Tracker
	label string
	start time.Time

	simNs        atomic.Int64
	flowsStarted atomic.Int64
	flowsDone    atomic.Int64
	flowsTotal   int64
	events       atomic.Uint64

	mu      sync.Mutex
	metrics map[string]float64 // latest live registry snapshot
}

// Tracker aggregates progress and metrics for every run that attaches to it.
// Safe for concurrent use: many runs publish while HTTP handlers read.
type Tracker struct {
	manifest  telemetry.Manifest
	startWall time.Time

	planned atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64

	mu          sync.Mutex
	note        string
	active      map[*RunHandle]struct{}
	lastDone    string
	summaries   []RunSummary
	doneSimNs   int64
	doneEvents  uint64
	doneFlows   int64
	doneMetrics map[string]float64
	doneHists   map[string]telemetry.HistogramStats
	flight      *timeseries.Recorder
	flightLabel string
	flightGen   uint64 // bumped per attach so streams notice replacement
	perfObs     *perf.Observatory
	alerts      *alert.Evaluator
	alertsLabel string
	alertsGen   uint64 // bumped per attach so streams notice replacement
	checkpoints []CheckpointEvent
}

// NewTracker builds an enabled tracker stamped with the build manifest.
func NewTracker(m telemetry.Manifest) *Tracker {
	return &Tracker{
		manifest:    m,
		startWall:   time.Now(),
		active:      map[*RunHandle]struct{}{},
		doneMetrics: map[string]float64{},
		doneHists:   map[string]telemetry.HistogramStats{},
	}
}

// Manifest returns the build manifest the tracker was created with.
func (t *Tracker) Manifest() telemetry.Manifest {
	if t == nil {
		return telemetry.Manifest{}
	}
	return t.manifest
}

// Plan announces n upcoming runs (cumulative across sweeps).
func (t *Tracker) Plan(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.planned.Add(int64(n))
}

// Note sets the free-form phase description shown in /api/progress.
func (t *Tracker) Note(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.note = s
	t.mu.Unlock()
}

// StartRun registers an in-flight simulation. flowsTotal sizes the intra-run
// progress fraction (<= 0 leaves it unknown).
func (t *Tracker) StartRun(label string, flowsTotal int) *RunHandle {
	if t == nil {
		return nil
	}
	h := &RunHandle{t: t, label: label, start: time.Now(), flowsTotal: int64(flowsTotal)}
	t.mu.Lock()
	t.active[h] = struct{}{}
	t.mu.Unlock()
	return h
}

// Update publishes the run's position: virtual time reached, flows started
// and finished, events fired. Called at scheduling-slice boundaries.
func (h *RunHandle) Update(simNs, flowsStarted, flowsDone int64, events uint64) {
	if h == nil {
		return
	}
	h.simNs.Store(simNs)
	h.flowsStarted.Store(flowsStarted)
	h.flowsDone.Store(flowsDone)
	h.events.Store(events)
}

// SetMetrics publishes a live snapshot of the run's telemetry registry
// values, replacing the previous one.
func (h *RunHandle) SetMetrics(vals map[string]float64) {
	if h == nil || vals == nil {
		return
	}
	h.mu.Lock()
	h.metrics = vals
	h.mu.Unlock()
}

func (h *RunHandle) frac() float64 {
	if h.flowsTotal <= 0 {
		return 0
	}
	f := float64(h.flowsDone.Load()) / float64(h.flowsTotal)
	if f > 1 {
		f = 1
	}
	return f
}

// Finish retires the run as successful: its summary joins /api/report, its
// final registry totals and histograms accumulate into /metrics.
func (h *RunHandle) Finish(sum RunSummary, finalMetrics map[string]float64, hists map[string]telemetry.HistogramStats) {
	if h == nil {
		return
	}
	t := h.t
	sum.Label = h.label
	sum.WallMs = time.Since(h.start).Milliseconds()
	t.mu.Lock()
	delete(t.active, h)
	t.lastDone = h.label
	t.summaries = append(t.summaries, sum)
	t.doneSimNs += sum.SimDurationNs
	t.doneEvents += sum.Events
	t.doneFlows += int64(sum.Flows)
	for k, v := range finalMetrics {
		t.doneMetrics[k] += v
	}
	for k, hs := range hists {
		t.doneHists[k] = mergeHist(t.doneHists[k], hs)
	}
	t.mu.Unlock()
	t.done.Add(1)
}

// Fail retires the run as errored.
func (h *RunHandle) Fail(err error) {
	if h == nil {
		return
	}
	t := h.t
	sum := RunSummary{Label: h.label, WallMs: time.Since(h.start).Milliseconds()}
	if err != nil {
		sum.Err = err.Error()
	}
	t.mu.Lock()
	delete(t.active, h)
	t.summaries = append(t.summaries, sum)
	t.mu.Unlock()
	t.failed.Add(1)
}

// mergeHist accumulates one run's histogram into the process aggregate.
func mergeHist(acc, hs telemetry.HistogramStats) telemetry.HistogramStats {
	if acc.Count == 0 {
		return hs
	}
	if hs.Count == 0 {
		return acc
	}
	if hs.Min < acc.Min {
		acc.Min = hs.Min
	}
	if hs.Max > acc.Max {
		acc.Max = hs.Max
	}
	acc.Count += hs.Count
	acc.Sum += hs.Sum
	acc.Inf += hs.Inf
	if len(acc.Buckets) == len(hs.Buckets) {
		for i := range acc.Buckets {
			acc.Buckets[i].Count += hs.Buckets[i].Count
		}
	}
	return acc
}

// AttachFlight makes rec the recording served by /api/series and streamed by
// /api/series/stream (latest attach wins; runs without a flight recorder
// leave the previous recording in place for post-run inspection).
func (t *Tracker) AttachFlight(rec *timeseries.Recorder, label string) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	t.flight = rec
	t.flightLabel = label
	t.flightGen++
	t.mu.Unlock()
}

// AttachPerf makes obs the performance observatory served by /api/perf and
// exported as the perf.* metrics family (latest attach wins). Runs with
// Config.Perf attach their observatory automatically.
func (t *Tracker) AttachPerf(obs *perf.Observatory) {
	if t == nil || obs == nil {
		return
	}
	t.mu.Lock()
	t.perfObs = obs
	t.mu.Unlock()
}

// Perf returns the attached performance observatory, or nil.
func (t *Tracker) Perf() *perf.Observatory {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perfObs
}

// AttachAlerts makes ev the alert evaluator served by /api/alerts, streamed
// by /api/alerts/stream and exported as ALERTS on /metrics (latest attach
// wins; runs without alerts leave the previous evaluator in place for
// post-run inspection).
func (t *Tracker) AttachAlerts(ev *alert.Evaluator, label string) {
	if t == nil || ev == nil {
		return
	}
	t.mu.Lock()
	t.alerts = ev
	t.alertsLabel = label
	t.alertsGen++
	t.mu.Unlock()
}

// Alerts returns the attached alert evaluator, its label and an attach
// generation (readers use the generation to notice replacement mid-stream).
func (t *Tracker) Alerts() (*alert.Evaluator, string, uint64) {
	if t == nil {
		return nil, "", 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alerts, t.alertsLabel, t.alertsGen
}

// CheckpointEvent is one checkpoint write as /api/checkpoints reports it:
// which run wrote it, whether it was scheduled or an interrupt capture, the
// virtual instant, and where the file landed.
type CheckpointEvent struct {
	Run       string `json:"run"`
	Kind      string `json:"kind"` // "scheduled" or "interrupt"
	SimTimeNs int64  `json:"sim_time_ns"`
	Path      string `json:"path"`
	Bytes     int    `json:"bytes"`
	WallUnix  int64  `json:"wall_unix"`
}

// RecordCheckpoint appends one checkpoint write to the process log served by
// /api/checkpoints.
func (t *Tracker) RecordCheckpoint(ev CheckpointEvent) {
	if t == nil {
		return
	}
	ev.WallUnix = time.Now().Unix()
	t.mu.Lock()
	t.checkpoints = append(t.checkpoints, ev)
	t.mu.Unlock()
}

// Checkpoints returns a copy of the checkpoint-write log.
func (t *Tracker) Checkpoints() []CheckpointEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]CheckpointEvent(nil), t.checkpoints...)
}

// Flight returns the currently attached recording, its label and an attach
// generation (readers use the generation to notice replacement mid-stream).
func (t *Tracker) Flight() (*timeseries.Recorder, string, uint64) {
	if t == nil {
		return nil, "", 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flight, t.flightLabel, t.flightGen
}

// Progress assembles the /api/progress payload.
func (t *Tracker) Progress() Progress {
	if t == nil {
		return Progress{ETAMs: -1}
	}
	now := time.Now()
	p := Progress{
		StartUnix:   t.startWall.Unix(),
		WallMs:      now.Sub(t.startWall).Milliseconds(),
		RunsPlanned: int(t.planned.Load()),
		RunsDone:    int(t.done.Load()),
		RunsFailed:  int(t.failed.Load()),
		ETAMs:       -1,
	}

	t.mu.Lock()
	p.Note = t.note
	p.LastDone = t.lastDone
	p.SimNs = t.doneSimNs
	p.Events = t.doneEvents
	var activeFrac float64
	for h := range t.active {
		a := ActiveRun{
			Label:        h.label,
			SimNs:        h.simNs.Load(),
			FlowsStarted: h.flowsStarted.Load(),
			FlowsDone:    h.flowsDone.Load(),
			FlowsTotal:   h.flowsTotal,
			Frac:         h.frac(),
			WallMs:       now.Sub(h.start).Milliseconds(),
		}
		p.Active = append(p.Active, a)
		p.SimNs += a.SimNs
		p.Events += h.events.Load()
		activeFrac += a.Frac
	}
	t.mu.Unlock()

	sort.Slice(p.Active, func(i, j int) bool { return p.Active[i].Label < p.Active[j].Label })
	p.RunsActive = len(p.Active)
	planned := p.RunsPlanned
	if floor := p.RunsDone + p.RunsFailed + p.RunsActive; planned < floor {
		planned = floor
	}
	if planned > 0 {
		p.FracDone = (float64(p.RunsDone+p.RunsFailed) + activeFrac) / float64(planned)
		if p.FracDone > 1 {
			p.FracDone = 1
		}
		p.PctDone = 100 * p.FracDone
		if p.FracDone > 0 && p.FracDone < 1 {
			p.ETAMs = int64(float64(p.WallMs) * (1 - p.FracDone) / p.FracDone)
		}
		if p.FracDone >= 1 {
			p.ETAMs = 0
		}
	}
	if p.WallMs > 0 {
		p.SimPerWall = float64(p.SimNs) / 1e6 / float64(p.WallMs)
	}
	return p
}

// Summaries returns a copy of the completed-run records.
func (t *Tracker) Summaries() []RunSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RunSummary(nil), t.summaries...)
}

// StatusReport is the /api/report payload: what the process has produced so
// far, refreshing as runs complete.
type StatusReport struct {
	Manifest telemetry.Manifest `json:"manifest"`
	Progress Progress           `json:"progress"`
	Runs     []RunSummary       `json:"runs"`
}

// Report assembles the /api/report payload.
func (t *Tracker) Report() StatusReport {
	return StatusReport{
		Manifest: t.Manifest(),
		Progress: t.Progress(),
		Runs:     t.Summaries(),
	}
}

// StartLogging prints one plain-text progress line to w every interval until
// the returned stop function is called (which prints a final line). This is
// the -progress surface: useful exactly when no status server is attached.
func (t *Tracker) StartLogging(w io.Writer, every time.Duration) (stop func()) {
	if t == nil || w == nil {
		return func() {}
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintln(w, t.ProgressLine())
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			fmt.Fprintln(w, t.ProgressLine())
		})
	}
}

// ProgressLine renders one human-readable progress line.
func (t *Tracker) ProgressLine() string {
	p := t.Progress()
	eta := "-"
	if p.ETAMs >= 0 {
		eta = (time.Duration(p.ETAMs) * time.Millisecond).Round(time.Second).String()
	}
	line := fmt.Sprintf("progress: %d/%d runs (%.1f%%) eta %s sim %.1fms @%.2fx",
		p.RunsDone, p.RunsPlanned, p.PctDone, eta, float64(p.SimNs)/1e6, p.SimPerWall)
	if p.RunsFailed > 0 {
		line += fmt.Sprintf(" failed=%d", p.RunsFailed)
	}
	if len(p.Active) > 0 {
		line += " active " + p.Active[0].Label
		if len(p.Active) > 1 {
			line += fmt.Sprintf(" (+%d)", len(p.Active)-1)
		}
	}
	return line
}
