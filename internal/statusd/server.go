package statusd

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// DefaultPollInterval is how often the SSE stream checks the live recording
// for news when the handler is built with interval <= 0.
const DefaultPollInterval = 250 * time.Millisecond

// SeriesPayload wraps a flight-recorder delta with the identity of the
// recording it came from (/api/series and every SSE "delta" event).
type SeriesPayload struct {
	// Label names the run whose recording is attached; Generation bumps
	// every time a new run's recorder replaces it, so stream consumers can
	// tell "same recording, more rows" from "new recording, fresh cursor".
	Label      string `json:"label"`
	Generation uint64 `json:"generation"`
	timeseries.Delta
}

// Handler builds the status-plane HTTP mux for a tracker. pollInterval
// paces the SSE stream (<= 0 picks DefaultPollInterval). Exposed separately
// from Server so tests can drive it through httptest.
func Handler(t *Tracker, pollInterval time.Duration) http.Handler {
	if pollInterval <= 0 {
		pollInterval = DefaultPollInterval
	}
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // client gone; nothing to do
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "hermes status plane — %s\n\n", t.Manifest().String())
		fmt.Fprintln(w, "GET /api/progress       runs done/total, per-run flow progress, ETA")
		fmt.Fprintln(w, "GET /api/report         manifest + progress + completed-run summaries")
		fmt.Fprintln(w, "GET /api/manifest       build and VCS provenance")
		fmt.Fprintln(w, "GET /api/series         flight-recorder snapshot (?seq=N&transition=M for deltas)")
		fmt.Fprintln(w, "GET /api/series/stream  the same as live SSE deltas (resumes via Last-Event-ID)")
		fmt.Fprintln(w, "GET /api/alerts         SLO watchdog state (?since=N for event deltas)")
		fmt.Fprintln(w, "GET /api/alerts/stream  alert lifecycle edges as live SSE deltas")
		fmt.Fprintln(w, "GET /api/perf           performance observatory summary (runs with Config.Perf)")
		fmt.Fprintln(w, "GET /api/checkpoints    checkpoint files written so far (runs with Config.Checkpoint)")
		fmt.Fprintln(w, "GET /metrics            Prometheus text exposition (includes ALERTS when armed)")
	})
	mux.HandleFunc("/api/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Progress())
	})
	mux.HandleFunc("/api/manifest", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Manifest())
	})
	mux.HandleFunc("/api/report", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Report())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.WriteMetrics(w) //nolint:errcheck // client gone; nothing to do
	})
	mux.HandleFunc("/api/series", func(w http.ResponseWriter, r *http.Request) {
		rec, label, gen := t.Flight()
		if rec == nil {
			http.Error(w, `{"error":"no flight recorder attached (runs record when TimeSeries or a Scenario is enabled)"}`,
				http.StatusNotFound)
			return
		}
		cur := cursorFromQuery(r)
		writeJSON(w, SeriesPayload{Label: label, Generation: gen, Delta: rec.SnapshotSince(cur)})
	})
	mux.HandleFunc("/api/series/stream", func(w http.ResponseWriter, r *http.Request) {
		streamSeries(w, r, t, pollInterval)
	})
	mux.HandleFunc("/api/alerts", func(w http.ResponseWriter, r *http.Request) {
		ev, label, gen := t.Alerts()
		if ev == nil {
			http.Error(w, `{"error":"no alert evaluator attached (runs watch when Config.Alerts is set)"}`,
				http.StatusNotFound)
			return
		}
		since := 0
		if v := r.URL.Query().Get("since"); v != "" {
			since, _ = strconv.Atoi(v)
		}
		writeJSON(w, AlertsPayload{Label: label, Generation: gen, Snapshot: ev.SnapshotSince(since)})
	})
	mux.HandleFunc("/api/alerts/stream", func(w http.ResponseWriter, r *http.Request) {
		streamAlerts(w, r, t, pollInterval)
	})
	mux.HandleFunc("/api/checkpoints", func(w http.ResponseWriter, r *http.Request) {
		// Always a JSON array (possibly empty): an operator polling a soak
		// run shouldn't have to distinguish "none yet" from "not armed".
		cks := t.Checkpoints()
		if cks == nil {
			cks = []CheckpointEvent{}
		}
		writeJSON(w, cks)
	})
	mux.HandleFunc("/api/perf", func(w http.ResponseWriter, r *http.Request) {
		obs := t.Perf()
		if obs == nil {
			http.Error(w, `{"error":"no perf observatory attached (runs profile when Config.Perf is set)"}`,
				http.StatusNotFound)
			return
		}
		writeJSON(w, obs.Summary())
	})
	return mux
}

// cursorFromQuery reads ?seq=N&transition=M (both default 0).
func cursorFromQuery(r *http.Request) timeseries.Cursor {
	var c timeseries.Cursor
	if v := r.URL.Query().Get("seq"); v != "" {
		c.Seq, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := r.URL.Query().Get("transition"); v != "" {
		c.Transition, _ = strconv.Atoi(v)
	}
	return c
}

// parseEventID decodes the "seq:transition:generation" SSE event id.
func parseEventID(id string) (timeseries.Cursor, uint64, bool) {
	parts := strings.Split(id, ":")
	if len(parts) != 3 {
		return timeseries.Cursor{}, 0, false
	}
	seq, err1 := strconv.ParseUint(parts[0], 10, 64)
	tr, err2 := strconv.Atoi(parts[1])
	gen, err3 := strconv.ParseUint(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return timeseries.Cursor{}, 0, false
	}
	return timeseries.Cursor{Seq: seq, Transition: tr}, gen, true
}

// streamSeries serves the flight recording as Server-Sent Events: one
// "delta" event whenever the recording has sealed new rows or transitions,
// keepalive comments otherwise. Event ids are "seq:transition:generation";
// a reconnecting client resumes from Last-Event-ID (or ?seq=&transition=),
// and a cursor that fell off the ring yields one delta with reset=true
// carrying the whole retained window.
func streamSeries(w http.ResponseWriter, r *http.Request, t *Tracker, pollInterval time.Duration) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	cur := cursorFromQuery(r)
	var haveGen uint64
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if c, gen, ok := parseEventID(id); ok {
			cur, haveGen = c, gen
		}
	}

	ctx := r.Context()
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	idle := 0
	for {
		rec, label, gen := t.Flight()
		if rec != nil {
			if haveGen != 0 && gen != haveGen {
				// A new run's recording replaced the one the client was
				// following; restart its cursor from the beginning.
				cur = timeseries.Cursor{}
			}
			d := rec.SnapshotSince(cur)
			if d.Rows() > 0 || len(d.Transitions) > 0 || d.Reset || haveGen != gen {
				payload, err := json.Marshal(SeriesPayload{Label: label, Generation: gen, Delta: d})
				if err == nil {
					fmt.Fprintf(w, "id: %d:%d:%d\nevent: delta\ndata: %s\n\n",
						d.Cursor.Seq, d.Cursor.Transition, gen, payload)
					flusher.Flush()
				}
				idle = 0
			}
			cur, haveGen = d.Cursor, gen
		}
		idle++
		if idle >= 4 {
			// Keep proxies and clients convinced the stream is alive.
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
			idle = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// AlertsPayload wraps a watchdog snapshot with the identity of the run it
// came from (/api/alerts and every alerts-stream SSE event).
type AlertsPayload struct {
	Label      string `json:"label"`
	Generation uint64 `json:"generation"`
	alert.Snapshot
}

// parseAlertEventID decodes the "nextEvent:generation" SSE event id used by
// the alerts stream.
func parseAlertEventID(id string) (int, uint64, bool) {
	parts := strings.Split(id, ":")
	if len(parts) != 2 {
		return 0, 0, false
	}
	next, err1 := strconv.Atoi(parts[0])
	gen, err2 := strconv.ParseUint(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return next, gen, true
}

// streamAlerts serves the SLO watchdog as Server-Sent Events: one "alerts"
// event whenever new lifecycle edges appeared (or a new run's evaluator
// replaced the followed one, which restarts the event cursor), keepalive
// comments otherwise. Event ids are "nextEvent:generation"; a reconnecting
// client resumes from Last-Event-ID or ?since=N.
func streamAlerts(w http.ResponseWriter, r *http.Request, t *Tracker, pollInterval time.Duration) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.Atoi(v)
	}
	var haveGen uint64
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		if next, gen, ok := parseAlertEventID(id); ok {
			since, haveGen = next, gen
		}
	}

	ctx := r.Context()
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	idle := 0
	for {
		ev, label, gen := t.Alerts()
		if ev != nil {
			if haveGen != 0 && gen != haveGen {
				since = 0
			}
			s := ev.SnapshotSince(since)
			if len(s.Events) > 0 || haveGen != gen {
				payload, err := json.Marshal(AlertsPayload{Label: label, Generation: gen, Snapshot: s})
				if err == nil {
					fmt.Fprintf(w, "id: %d:%d\nevent: alerts\ndata: %s\n\n",
						s.NextEvent, gen, payload)
					flusher.Flush()
				}
				idle = 0
			}
			since, haveGen = s.NextEvent, gen
		}
		idle++
		if idle >= 4 {
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
			idle = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// Server is the embeddable HTTP status server: NewServer binds the address
// and serves a Tracker until Close.
type Server struct {
	T *Tracker

	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (e.g. ":8080", "127.0.0.1:0") and serves the
// tracker's status plane in a background goroutine.
func NewServer(addr string, t *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("statusd: listen %s: %w", addr, err)
	}
	s := &Server{T: t, ln: ln, srv: &http.Server{Handler: Handler(t, 0)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	addr := s.Addr()
	if addr == "" {
		return ""
	}
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
			addr = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return "http://" + addr
}

// Close stops the listener and interrupts in-flight streams.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
