package statusd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hermes-repro/hermes/internal/alert"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// newTestWatchdog drives one armed evaluator through a short recording:
// series "x" breaches >5 twice, the first episode resolves and the second is
// still firing when the run ends (samples at t=1ms..5ms: 0, 10, 10, 0, 10).
func newTestWatchdog(t *testing.T) *alert.Evaluator {
	t.Helper()
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 0, 16)
	vals := []float64{0, 10, 10, 0, 10}
	i := 0
	rec.Register("x", func() float64 {
		v := vals[len(vals)-1]
		if i < len(vals) {
			v = vals[i]
		}
		i++
		return v
	})
	ev, err := alert.New(rec, []alert.Rule{{
		Name: "x-high", Series: "x", Op: alert.OpAbove, Value: 5,
		Severity: alert.SeverityCritical,
	}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	eng.Run(sim.Time(int64(len(vals))*int64(sim.Millisecond) + 1))
	return ev
}

// TestAlertsEndpoint: 404 before any evaluator attaches, then the full
// snapshot, the ?since event cursor, and the generation bump on re-attach.
func TestAlertsEndpoint(t *testing.T) {
	tr := NewTracker(testManifest())
	srv := httptest.NewServer(Handler(tr, 10*time.Millisecond))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/api/alerts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("alerts without evaluator: status %d, want 404", resp.StatusCode)
	}

	tr.AttachAlerts(newTestWatchdog(t), "leaf/seed 7")

	var full AlertsPayload
	getJSON(t, srv, "/api/alerts", &full)
	if full.Label != "leaf/seed 7" || full.Generation != 1 {
		t.Fatalf("payload identity: %+v", full)
	}
	if len(full.Alerts) != 2 || full.Firing != 1 || full.Pending != 0 {
		t.Fatalf("snapshot: alerts=%d firing=%d pending=%d", len(full.Alerts), full.Firing, full.Pending)
	}
	if full.Alerts[0].Rule != "x-high" || full.Alerts[0].State != alert.StateResolved {
		t.Fatalf("first episode: %+v", full.Alerts[0])
	}
	if len(full.Events) == 0 || full.NextEvent != len(full.Events) {
		t.Fatalf("events=%d next=%d", len(full.Events), full.NextEvent)
	}

	// Polling from the returned cursor yields no new events but keeps the
	// episode list.
	var idle AlertsPayload
	getJSON(t, srv, fmt.Sprintf("/api/alerts?since=%d", full.NextEvent), &idle)
	if len(idle.Events) != 0 || idle.NextEvent != full.NextEvent || len(idle.Alerts) != 2 {
		t.Fatalf("idle delta: events=%d next=%d alerts=%d", len(idle.Events), idle.NextEvent, len(idle.Alerts))
	}

	// An out-of-range cursor clamps to a full replay rather than erroring.
	var replay AlertsPayload
	getJSON(t, srv, "/api/alerts?since=9999", &replay)
	if len(replay.Events) != len(full.Events) {
		t.Fatalf("clamped replay: events=%d, want %d", len(replay.Events), len(full.Events))
	}

	// A new run's evaluator replaces the old one and bumps the generation.
	tr.AttachAlerts(newTestWatchdog(t), "spine/seed 8")
	var next AlertsPayload
	getJSON(t, srv, "/api/alerts", &next)
	if next.Label != "spine/seed 8" || next.Generation != 2 {
		t.Fatalf("after re-attach: %+v", next)
	}
}

// TestMetricsAlertExposition: armed trackers export Prometheus-convention
// ALERTS samples for open episodes plus the pending/firing gauges, and every
// line still parses as text exposition format.
func TestMetricsAlertExposition(t *testing.T) {
	tr := NewTracker(testManifest())

	var before strings.Builder
	if err := tr.WriteMetrics(&before); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.String(), "ALERTS") {
		t.Fatal("unarmed tracker exports ALERTS")
	}

	tr.AttachAlerts(newTestWatchdog(t), "leaf/seed 7")
	var b strings.Builder
	if err := tr.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# HELP ALERTS ",
		"# TYPE ALERTS gauge\n",
		`ALERTS{alertname="x-high",severity="critical",state="firing",series="x"} 1` + "\n",
		"hermes_alerts_pending 0\n",
		"hermes_alerts_firing 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", strings.TrimRight(want, "\n"), out)
		}
	}
	// Only OPEN episodes become ALERTS samples; the resolved one must not.
	if strings.Contains(out, `state="resolved"`) {
		t.Errorf("resolved episode leaked into ALERTS:\n%s", out)
	}
}

// readAlertSSE reads frames until one "alerts" event arrives, returning its
// id and decoded payload.
func readAlertSSE(t *testing.T, body *bufio.Reader) (id string, p AlertsPayload) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var isAlerts bool
	for time.Now().Before(deadline) {
		line, err := body.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case line == "event: alerts":
			isAlerts = true
		case strings.HasPrefix(line, "data: ") && isAlerts:
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				t.Fatalf("stream payload: %v", err)
			}
			return id, p
		case line == "" || strings.HasPrefix(line, ":"):
			// frame boundary or keepalive
		}
	}
	t.Fatal("no alerts event within deadline")
	return
}

// TestAlertsStream: a fresh SSE client gets the full event backlog, and a
// client resumed at the live edge wakes when a new run's evaluator replaces
// the followed one.
func TestAlertsStream(t *testing.T) {
	tr := NewTracker(testManifest())
	tr.AttachAlerts(newTestWatchdog(t), "leaf/seed 7")
	srv := httptest.NewServer(Handler(tr, 5*time.Millisecond))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/api/alerts/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type: %q", ct)
	}
	id, p := readAlertSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if p.Label != "leaf/seed 7" || len(p.Events) == 0 {
		t.Fatalf("fresh stream event: %+v", p)
	}
	if id != fmt.Sprintf("%d:1", p.NextEvent) {
		t.Fatalf("event id = %q, want %d:1", id, p.NextEvent)
	}

	// Resume at the live edge, then swap in a new run: the stream must emit
	// the new generation with its cursor restarted from zero.
	req, _ := http.NewRequest("GET", srv.URL+"/api/alerts/stream", nil)
	req.Header.Set("Last-Event-ID", id)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachAlerts(newTestWatchdog(t), "spine/seed 8")
	_, p = readAlertSSE(t, bufio.NewReader(resp.Body))
	resp.Body.Close()
	if p.Label != "spine/seed 8" || p.Generation != 2 {
		t.Fatalf("generation switch: %+v", p)
	}
	if len(p.Events) == 0 {
		t.Fatal("new generation event carries no backlog")
	}
}

// TestSnapshotSinceConcurrentSwap exercises the flight-recorder cursor
// contract under the race detector: HTTP-style readers keep polling
// SnapshotSince with per-generation cursors while runs seal rows and
// AttachFlight swaps recorders (bumping the generation), mirroring what the
// status server does during a matrix run. Run with -race to make it bite.
func TestSnapshotSinceConcurrentSwap(t *testing.T) {
	const (
		generations = 5
		rowsPerRun  = 200
		ringCap     = 8
	)
	tr := NewTracker(testManifest())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursors := map[uint64]timeseries.Cursor{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, label, gen := tr.Flight()
				if rec == nil {
					continue
				}
				if label == "" {
					t.Error("attached recording has no label")
					return
				}
				cur := cursors[gen]
				d := rec.SnapshotSince(cur)
				if d.Cursor.Seq < cur.Seq {
					t.Errorf("gen %d: cursor went backwards %d -> %d", gen, cur.Seq, d.Cursor.Seq)
					return
				}
				if n := d.Rows(); n > ringCap {
					t.Errorf("gen %d: delta has %d rows, ring caps at %d", gen, n, ringCap)
					return
				}
				for name, vals := range d.Series {
					if len(vals) != d.Rows() {
						t.Errorf("gen %d: series %s has %d values for %d rows", gen, name, len(vals), d.Rows())
						return
					}
				}
				cursors[gen] = d.Cursor
			}
		}()
	}

	for g := 0; g < generations; g++ {
		eng := sim.NewEngine()
		rec := timeseries.NewRecorder(eng, sim.Millisecond, ringCap, 16)
		v := 0.0
		rec.Register("x", func() float64 { return v })
		rec.Register("y", func() float64 { return 2 * v })
		tr.AttachFlight(rec, fmt.Sprintf("swap/seed %d", g))
		for i := 0; i < rowsPerRun; i++ {
			v = float64(i)
			rec.Snap()
		}
	}
	close(stop)
	wg.Wait()
}
