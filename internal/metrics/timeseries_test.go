package metrics

import (
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func TestThroughputSampler(t *testing.T) {
	eng := sim.NewEngine()
	port := net.NewPort(eng, "t", net.PortConfig{RateBps: 10e9, ECNK: -1}, func(*net.Packet) {})
	ts := &ThroughputSampler{Port: port, Interval: 100 * sim.Microsecond}
	ts.Start(eng)
	// Offer exactly line rate for 2 ms: 1500 B every 1.2 us.
	var inject func()
	n := 0
	inject = func() {
		if n >= 1500 {
			return
		}
		n++
		port.Enqueue(&net.Packet{Kind: net.Data, Wire: 1500})
		eng.Schedule(1200, inject)
	}
	inject()
	eng.Run(2 * sim.Millisecond)
	ts.Stop()
	if len(ts.Samples) < 10 {
		t.Fatalf("only %d samples", len(ts.Samples))
	}
	mean := ts.MeanGbps()
	if mean < 8 || mean > 10.5 {
		t.Fatalf("mean goodput %.2f Gbps, want ~10", mean)
	}
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time_us,gbps\n") {
		t.Fatal("CSV header missing")
	}
	if strings.Count(sb.String(), "\n") != len(ts.Samples)+1 {
		t.Fatal("CSV row count mismatch")
	}
}

func TestQueueCSV(t *testing.T) {
	q := &QueueSampler{Samples: []QueueSample{{At: 1000, Bytes: 42}}}
	var sb strings.Builder
	if err := q.WriteQueueCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1,42") {
		t.Fatalf("CSV content wrong: %q", sb.String())
	}
}
