package metrics

import (
	"fmt"
	"io"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// ThroughputSample is one interval's goodput observation for a port.
type ThroughputSample struct {
	At   sim.Time
	Gbps float64
}

// ThroughputSampler periodically differences a port's TxBytes counter into
// a goodput time series (the signal behind Figures 2b/3b's rate plots).
type ThroughputSampler struct {
	Port     *net.Port
	Interval sim.Time
	Samples  []ThroughputSample

	eng  *sim.Engine
	prev uint64
	stop bool
}

// Start begins sampling until Stop.
func (t *ThroughputSampler) Start(eng *sim.Engine) {
	t.eng = eng
	t.prev = t.Port.TxBytes
	t.eng.ScheduleKind(t.Interval, sim.KindSample, t.tick)
}

// Stop ends sampling.
func (t *ThroughputSampler) Stop() { t.stop = true }

func (t *ThroughputSampler) tick() {
	if t.stop {
		return
	}
	cur := t.Port.TxBytes
	gbps := float64(cur-t.prev) * 8 / float64(t.Interval)
	t.prev = cur
	t.Samples = append(t.Samples, ThroughputSample{At: t.eng.Now(), Gbps: gbps})
	t.eng.ScheduleKind(t.Interval, sim.KindSample, t.tick)
}

// MeanGbps returns the average sampled goodput.
func (t *ThroughputSampler) MeanGbps() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range t.Samples {
		sum += s.Gbps
	}
	return sum / float64(len(t.Samples))
}

// WriteCSV emits "time_us,gbps" rows for external plotting.
func (t *ThroughputSampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_us,gbps"); err != nil {
		return err
	}
	for _, s := range t.Samples {
		if _, err := fmt.Fprintf(w, "%d,%.4f\n", s.At/1000, s.Gbps); err != nil {
			return err
		}
	}
	return nil
}

// WriteQueueCSV emits "time_us,bytes" rows for a queue sampler.
func (q *QueueSampler) WriteQueueCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_us,bytes"); err != nil {
		return err
	}
	for _, s := range q.Samples {
		if _, err := fmt.Fprintf(w, "%d,%d\n", s.At/1000, s.Bytes); err != nil {
			return err
		}
	}
	return nil
}
