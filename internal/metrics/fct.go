// Package metrics collects the statistics the paper reports: flow completion
// times overall and broken down into small (<100 KB) and large (>10 MB)
// flows, tail percentiles, unfinished-flow fractions, queue occupancy time
// series and the visibility measure of Table 2.
package metrics

import (
	"math"
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Flow-size buckets used throughout the evaluation (§5.1).
const (
	SmallFlowBytes = 100_000    // flows under 100 KB are "small"
	LargeFlowBytes = 10_000_000 // flows over 10 MB are "large"
)

// FCTSample records one finished (or force-closed) flow.
type FCTSample struct {
	Size     int64
	FCT      sim.Time
	Finished bool
}

// FCTRecorder accumulates completion times. Setting IdealFCT enables
// slowdown statistics: each flow's FCT divided by what it would take alone
// on an idle fabric (the "FCT slowdown" metric common in this literature).
type FCTRecorder struct {
	samples []FCTSample

	// IdealFCT, when non-nil, returns the unloaded completion time for a
	// flow of the given size.
	IdealFCT func(size int64) sim.Time
}

// Record adds a finished flow.
func (r *FCTRecorder) Record(size int64, fct sim.Time) {
	r.samples = append(r.samples, FCTSample{Size: size, FCT: fct, Finished: true})
}

// RecordUnfinished adds a flow that did not complete before the simulation
// horizon; elapsed is the time it has been running. Following the paper's
// blackhole analysis, unfinished flows are charged their elapsed time, which
// inflates the average exactly as Figure 17 describes.
func (r *FCTRecorder) RecordUnfinished(size int64, elapsed sim.Time) {
	r.samples = append(r.samples, FCTSample{Size: size, FCT: elapsed, Finished: false})
}

// Len returns the number of recorded flows.
func (r *FCTRecorder) Len() int { return len(r.samples) }

// Stats summarizes flow completion times for one bucket.
type Stats struct {
	Count int
	Mean  float64 // nanoseconds
	P50   sim.Time
	P95   sim.Time
	P99   sim.Time
}

// MeanMs returns the mean in milliseconds (convenience for reports).
func (s Stats) MeanMs() float64 { return s.Mean / 1e6 }

// P99Ms returns the 99th percentile in milliseconds.
func (s Stats) P99Ms() float64 { return float64(s.P99) / 1e6 }

// nearestRank returns the nearest-rank percentile index for n sorted values.
func nearestRank(p float64, n int) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

func computeStats(fcts []sim.Time) Stats {
	if len(fcts) == 0 {
		return Stats{}
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	var sum float64
	for _, f := range fcts {
		sum += float64(f)
	}
	pct := func(p float64) sim.Time {
		return fcts[nearestRank(p, len(fcts))]
	}
	return Stats{
		Count: len(fcts),
		Mean:  sum / float64(len(fcts)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
	}
}

// SlowdownStats summarizes FCT slowdown (measured FCT over unloaded FCT).
type SlowdownStats struct {
	Count int
	Mean  float64
	P50   float64
	P99   float64
}

// Report is the full FCT summary of one experiment run.
type Report struct {
	Overall Stats
	Small   Stats // flows < 100 KB
	Medium  Stats // flows in [100 KB, 10 MB]
	Large   Stats // flows > 10 MB

	// Slowdown is populated when the recorder has an IdealFCT model.
	Slowdown SlowdownStats

	Flows      int
	Unfinished int
	// UnfinishedFrac is the fraction of flows that never completed
	// (Fig 17b).
	UnfinishedFrac float64
}

// Report computes the summary over everything recorded so far.
func (r *FCTRecorder) Report() Report {
	var all, small, medium, large []sim.Time
	unfinished := 0
	for _, s := range r.samples {
		all = append(all, s.FCT)
		switch {
		case s.Size < SmallFlowBytes:
			small = append(small, s.FCT)
		case s.Size > LargeFlowBytes:
			large = append(large, s.FCT)
		default:
			medium = append(medium, s.FCT)
		}
		if !s.Finished {
			unfinished++
		}
	}
	rep := Report{
		Overall:    computeStats(all),
		Small:      computeStats(small),
		Medium:     computeStats(medium),
		Large:      computeStats(large),
		Flows:      len(r.samples),
		Unfinished: unfinished,
	}
	if len(r.samples) > 0 {
		rep.UnfinishedFrac = float64(unfinished) / float64(len(r.samples))
	}
	if r.IdealFCT != nil {
		rep.Slowdown = r.slowdown()
	}
	return rep
}

func (r *FCTRecorder) slowdown() SlowdownStats {
	vals := make([]float64, 0, len(r.samples))
	for _, s := range r.samples {
		ideal := r.IdealFCT(s.Size)
		if ideal <= 0 {
			continue
		}
		sd := float64(s.FCT) / float64(ideal)
		if sd < 1 {
			sd = 1 // measurement granularity; a flow cannot beat the ideal
		}
		vals = append(vals, sd)
	}
	if len(vals) == 0 {
		return SlowdownStats{}
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	pct := func(p float64) float64 { return vals[nearestRank(p, len(vals))] }
	return SlowdownStats{
		Count: len(vals),
		Mean:  sum / float64(len(vals)),
		P50:   pct(0.50),
		P99:   pct(0.99),
	}
}
