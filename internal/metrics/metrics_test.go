package metrics

import (
	"testing"
	"testing/quick"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func TestFCTBuckets(t *testing.T) {
	r := &FCTRecorder{}
	r.Record(50_000, 1*sim.Millisecond)       // small
	r.Record(500_000, 2*sim.Millisecond)      // medium
	r.Record(50_000_000, 100*sim.Millisecond) // large
	r.Record(99_999, 3*sim.Millisecond)       // small (boundary)
	r.Record(10_000_001, 90*sim.Millisecond)  // large (boundary)
	rep := r.Report()
	if rep.Small.Count != 2 || rep.Medium.Count != 1 || rep.Large.Count != 2 {
		t.Fatalf("bucket counts = %d/%d/%d", rep.Small.Count, rep.Medium.Count, rep.Large.Count)
	}
	if rep.Overall.Count != 5 || rep.Flows != 5 {
		t.Fatal("overall count wrong")
	}
	if rep.Unfinished != 0 || rep.UnfinishedFrac != 0 {
		t.Fatal("spurious unfinished flows")
	}
}

func TestFCTStats(t *testing.T) {
	r := &FCTRecorder{}
	for i := 1; i <= 100; i++ {
		r.Record(1000, sim.Time(i)*sim.Millisecond)
	}
	rep := r.Report()
	if rep.Overall.Mean != 50.5*1e6 {
		t.Fatalf("mean = %v, want 50.5 ms", rep.Overall.Mean)
	}
	if rep.Overall.P50 != 50*sim.Millisecond {
		t.Fatalf("p50 = %v", rep.Overall.P50)
	}
	if rep.Overall.P99 != 99*sim.Millisecond {
		t.Fatalf("p99 = %v", rep.Overall.P99)
	}
}

func TestFCTUnfinishedAccounting(t *testing.T) {
	r := &FCTRecorder{}
	r.Record(1000, sim.Millisecond)
	r.RecordUnfinished(1000, 500*sim.Millisecond)
	rep := r.Report()
	if rep.Unfinished != 1 {
		t.Fatal("unfinished not counted")
	}
	if rep.UnfinishedFrac != 0.5 {
		t.Fatalf("unfinished fraction = %v", rep.UnfinishedFrac)
	}
	// The unfinished flow's elapsed time must inflate the mean (Fig 17).
	if rep.Overall.Mean < float64(250*sim.Millisecond) {
		t.Fatal("unfinished elapsed time not charged to the mean")
	}
}

func TestEmptyReport(t *testing.T) {
	r := &FCTRecorder{}
	rep := r.Report()
	if rep.Overall.Count != 0 || rep.Flows != 0 || rep.UnfinishedFrac != 0 {
		t.Fatal("empty recorder produced non-zero report")
	}
}

// Property: percentiles are ordered p50 <= p95 <= p99 and within range.
func TestPercentileOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		r := &FCTRecorder{}
		var min, max sim.Time = 1 << 62, 0
		for _, v := range raw {
			fct := sim.Time(v)
			r.Record(1000, fct)
			if fct < min {
				min = fct
			}
			if fct > max {
				max = fct
			}
		}
		rep := r.Report()
		s := rep.Overall
		return s.P50 <= s.P95 && s.P95 <= s.P99 && s.P50 >= min && s.P99 <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueSampler(t *testing.T) {
	eng := sim.NewEngine()
	var delivered []*net.Packet
	port := net.NewPort(eng, "q", net.PortConfig{RateBps: 1e9, ECNK: -1},
		func(p *net.Packet) { delivered = append(delivered, p) })
	qs := &QueueSampler{Port: port, Interval: 10 * sim.Microsecond}
	qs.Start(eng)
	// Enqueue a burst at t=0: the queue drains over ~1.2 ms.
	for i := 0; i < 100; i++ {
		port.Enqueue(&net.Packet{Kind: net.Data, Wire: 1500})
	}
	eng.Run(2 * sim.Millisecond)
	qs.Stop()
	if qs.MaxBytes() == 0 {
		t.Fatal("sampler never observed the queue")
	}
	if qs.MeanBytes() <= 0 || qs.StdDevBytes() <= 0 {
		t.Fatal("mean/stddev not computed")
	}
	if qs.MaxBytes() > 150_000 {
		t.Fatalf("max %d exceeds physical queue", qs.MaxBytes())
	}
}

func TestStatsMsHelpers(t *testing.T) {
	s := Stats{Mean: 2e6, P99: 5 * sim.Millisecond}
	if s.MeanMs() != 2.0 {
		t.Fatalf("MeanMs = %v", s.MeanMs())
	}
	if s.P99Ms() != 5.0 {
		t.Fatalf("P99Ms = %v", s.P99Ms())
	}
}

func TestSlowdownStats(t *testing.T) {
	r := &FCTRecorder{IdealFCT: func(size int64) sim.Time { return sim.Time(size) }}
	r.Record(1000, 2000) // slowdown 2
	r.Record(1000, 4000) // slowdown 4
	r.Record(1000, 500)  // clamped to 1
	rep := r.Report()
	if rep.Slowdown.Count != 3 {
		t.Fatalf("slowdown count = %d", rep.Slowdown.Count)
	}
	want := (2.0 + 4.0 + 1.0) / 3
	if rep.Slowdown.Mean != want {
		t.Fatalf("slowdown mean = %v, want %v", rep.Slowdown.Mean, want)
	}
	if rep.Slowdown.P50 != 2 || rep.Slowdown.P99 != 4 {
		t.Fatalf("slowdown percentiles = %v/%v", rep.Slowdown.P50, rep.Slowdown.P99)
	}
}

func TestSlowdownDisabledWithoutModel(t *testing.T) {
	r := &FCTRecorder{}
	r.Record(1000, 2000)
	if rep := r.Report(); rep.Slowdown.Count != 0 {
		t.Fatal("slowdown computed without an ideal model")
	}
}

func TestVisibilitySamplerDirect(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bal := nullBal{}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer { return bal })
	vs := &VisibilitySampler{Tr: tr, Interval: sim.Millisecond}
	vs.Start(eng)
	// Two long inter-leaf flows stay active across many samples.
	tr.StartFlow(0, 2, 1<<40)
	tr.StartFlow(1, 3, 1<<40)
	eng.Run(20 * sim.Millisecond)
	vs.Stop()
	// 2 active flows / (2 leaf pairs x 2 paths) = 0.5 per path.
	if got := vs.SwitchPair(); got < 0.4 || got > 0.6 {
		t.Fatalf("switch-pair visibility = %.3f, want ~0.5", got)
	}
	// Host pairs: 2 flows / (4x2 pairs x 2 paths) = 0.125.
	if got := vs.HostPair(); got < 0.1 || got > 0.15 {
		t.Fatalf("host-pair visibility = %.3f, want ~0.125", got)
	}
	if vs.SwitchPair() <= vs.HostPair() {
		t.Fatal("switch-pair visibility must exceed host-pair visibility")
	}
}

type nullBal struct{ transport.BaseBalancer }

func (nullBal) Name() string                   { return "null" }
func (nullBal) SelectPath(*transport.Flow) int { return 0 }
