package metrics

import (
	"math"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// QueueSample is one observation of a port's data-queue depth.
type QueueSample struct {
	At    sim.Time
	Bytes int
}

// QueueSampler periodically records a port's queue occupancy (the signal
// behind Figures 2b, 3b and 4b).
type QueueSampler struct {
	Port     *net.Port
	Interval sim.Time
	Samples  []QueueSample

	eng  *sim.Engine
	stop bool
}

// Start begins sampling on the engine until Stop is called.
func (q *QueueSampler) Start(eng *sim.Engine) {
	q.eng = eng
	q.tick()
}

// Stop ends sampling.
func (q *QueueSampler) Stop() { q.stop = true }

func (q *QueueSampler) tick() {
	if q.stop {
		return
	}
	q.Samples = append(q.Samples, QueueSample{At: q.eng.Now(), Bytes: q.Port.QueuedBytes()})
	q.eng.ScheduleKind(q.Interval, sim.KindSample, q.tick)
}

// MaxBytes returns the maximum sampled occupancy.
func (q *QueueSampler) MaxBytes() int {
	max := 0
	for _, s := range q.Samples {
		if s.Bytes > max {
			max = s.Bytes
		}
	}
	return max
}

// MeanBytes returns the average sampled occupancy.
func (q *QueueSampler) MeanBytes() float64 {
	if len(q.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range q.Samples {
		sum += float64(s.Bytes)
	}
	return sum / float64(len(q.Samples))
}

// StdDevBytes returns the standard deviation of occupancy — the
// "queue oscillation" measure of §2.2.2.
func (q *QueueSampler) StdDevBytes() float64 {
	n := len(q.Samples)
	if n == 0 {
		return 0
	}
	mean := q.MeanBytes()
	var ss float64
	for _, s := range q.Samples {
		d := float64(s.Bytes) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// VisibilitySampler measures Table 2: the average number of concurrent
// flows observable per parallel path, at switch-pair granularity (all flows
// between two leaves) and at host-pair granularity (flows between two
// specific hosts).
type VisibilitySampler struct {
	Tr       *transport.Transport
	Interval sim.Time

	samples    int
	switchPair float64 // running sum of flows/(leafPairs*paths)
	hostPair   float64 // running sum of flows/(hostPairs*paths)

	eng  *sim.Engine
	stop bool
}

// Start begins sampling.
func (v *VisibilitySampler) Start(eng *sim.Engine) {
	v.eng = eng
	v.tick()
}

// Stop ends sampling.
func (v *VisibilitySampler) Stop() { v.stop = true }

func (v *VisibilitySampler) tick() {
	if v.stop {
		return
	}
	nw := v.Tr.Net
	leaves := nw.Cfg.Leaves
	hosts := len(nw.Hosts)
	paths := nw.NPaths()
	interLeaf := 0
	for _, f := range v.Tr.ActiveFlows() {
		if f.SrcLeaf != f.DstLeaf {
			interLeaf++
		}
	}
	leafPairs := leaves * (leaves - 1)
	hostPairs := hosts * (hosts - nw.Cfg.HostsPerLeaf)
	if leafPairs > 0 && paths > 0 {
		v.switchPair += float64(interLeaf) / float64(leafPairs*paths)
	}
	if hostPairs > 0 && paths > 0 {
		v.hostPair += float64(interLeaf) / float64(hostPairs*paths)
	}
	v.samples++
	v.eng.ScheduleKind(v.Interval, sim.KindSample, v.tick)
}

// SwitchPair returns the average concurrent flows per parallel path visible
// to a source ToR switch (Table 2, row 1).
func (v *VisibilitySampler) SwitchPair() float64 {
	if v.samples == 0 {
		return 0
	}
	return v.switchPair / float64(v.samples)
}

// HostPair returns the same measure for an end-host pair (Table 2, row 2).
func (v *VisibilitySampler) HostPair() float64 {
	if v.samples == 0 {
		return 0
	}
	return v.hostPair / float64(v.samples)
}
