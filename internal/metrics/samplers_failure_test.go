package metrics

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/failure"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// failureStack builds a small loaded fabric with ECMP so the samplers watch
// real traffic while a failure is injected mid-run.
func failureStack(t *testing.T) (*sim.Engine, *net.Network, *transport.Transport) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(7), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9,
		HostDelay: 2000, FabricDelay: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &lb.ECMP{Net: nw}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer { return e })
	return eng, nw, tr
}

// checkWellFormed verifies the invariants every sample stream must keep
// regardless of what the fabric does: strictly increasing timestamps spaced
// one interval apart, and in-range values.
func checkQueueSamples(t *testing.T, qs *QueueSampler, interval sim.Time) {
	t.Helper()
	if len(qs.Samples) == 0 {
		t.Fatal("queue sampler recorded nothing")
	}
	for i, s := range qs.Samples {
		if s.Bytes < 0 {
			t.Fatalf("sample %d: negative queue %d", i, s.Bytes)
		}
		if i > 0 && s.At != qs.Samples[i-1].At+interval {
			t.Fatalf("sample %d: timestamp %d not one interval after %d",
				i, s.At, qs.Samples[i-1].At)
		}
	}
}

func checkThroughputSamples(t *testing.T, ts *ThroughputSampler, maxGbps float64, interval sim.Time) {
	t.Helper()
	if len(ts.Samples) == 0 {
		t.Fatal("throughput sampler recorded nothing")
	}
	// A packet whose transmission starts right at a window boundary is
	// charged to that window whole, so allow one wire packet of slack.
	slack := float64((net.MSS+net.HeaderBytes)*8) / float64(interval)
	for i, s := range ts.Samples {
		// TxBytes is cumulative, so a negative rate would mean the counter
		// ran backwards.
		if s.Gbps < 0 {
			t.Fatalf("sample %d: negative goodput %f", i, s.Gbps)
		}
		if s.Gbps > maxGbps+slack {
			t.Fatalf("sample %d: %f Gbps exceeds line rate %f", i, s.Gbps, maxGbps)
		}
		if i > 0 && s.At != ts.Samples[i-1].At+interval {
			t.Fatalf("sample %d: timestamp %d not one interval after %d",
				i, s.At, ts.Samples[i-1].At)
		}
	}
}

func TestSamplersUnderLinkCut(t *testing.T) {
	eng, nw, tr := failureStack(t)
	port := nw.UplinkPort(0, 0) // leaf0 -> spine0, the link we will cut
	const interval = 50 * sim.Microsecond
	qs := &QueueSampler{Port: port, Interval: interval}
	ts := &ThroughputSampler{Port: port, Interval: interval}
	qs.Start(eng)
	ts.Start(eng)

	// Keep both uplinks busy with long cross-rack flows in both directions.
	for i := 0; i < 4; i++ {
		tr.StartFlow(i%2, 2+i%2, 4_000_000)
	}
	eng.Schedule(5*sim.Millisecond, func() { failure.CutLink(nw, 0, 0) })
	eng.Run(15 * sim.Millisecond)
	qs.Stop()
	ts.Stop()

	checkQueueSamples(t, qs, interval)
	checkThroughputSamples(t, ts, 1.0, interval)
	if ts.MeanGbps() <= 0 {
		t.Fatal("no traffic ever crossed the sampled port")
	}
	// The dead link stops transmitting: the tail of both series must go
	// flat at zero (drained queue, zero rate).
	tailQ := qs.Samples[len(qs.Samples)-1]
	tailT := ts.Samples[len(ts.Samples)-1]
	if tailQ.Bytes != 0 {
		t.Fatalf("cut port still queues %d bytes at run end", tailQ.Bytes)
	}
	if tailT.Gbps != 0 {
		t.Fatalf("cut port still transmits %f Gbps at run end", tailT.Gbps)
	}
}

func TestSamplersUnderDegradation(t *testing.T) {
	eng, nw, tr := failureStack(t)
	port := nw.UplinkPort(0, 0)
	const interval = 50 * sim.Microsecond
	qs := &QueueSampler{Port: port, Interval: interval}
	ts := &ThroughputSampler{Port: port, Interval: interval}
	qs.Start(eng)
	ts.Start(eng)

	for i := 0; i < 4; i++ {
		tr.StartFlow(i%2, 2+i%2, 4_000_000)
	}
	// Degrade the sampled link to a tenth of its rate mid-run.
	eng.Schedule(5*sim.Millisecond, func() { nw.SetFabricLink(0, 0, 100e6) })
	eng.Run(15 * sim.Millisecond)
	qs.Stop()
	ts.Stop()

	checkQueueSamples(t, qs, interval)
	checkThroughputSamples(t, ts, 1.0, interval) // bound: pre-degrade line rate
	if ts.MeanGbps() <= 0 {
		t.Fatal("no traffic ever crossed the sampled port")
	}
	// After degradation the port can never exceed the new rate; check the
	// tail half of the series against it.
	slack := float64((net.MSS+net.HeaderBytes)*8) / float64(interval)
	half := len(ts.Samples) / 2
	for _, s := range ts.Samples[half:] {
		if s.Gbps > 0.1+slack {
			t.Fatalf("degraded port transmitted %f Gbps after re-rate", s.Gbps)
		}
	}
}
