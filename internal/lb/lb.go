// Package lb implements every load balancing scheme the paper evaluates
// against Hermes (Table 1): host-based ECMP, Presto*, DRB, CLOVE-ECN and
// FlowBender as transport.Balancer implementations, and in-switch LetFlow,
// CONGA and DRILL as net.SwitchBalancer implementations installed on leaf
// switches. Hermes itself lives in internal/core.
package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/transport"
)

// mix64 is the splitmix64 finalizer used for flow hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPath deterministically maps a flow id onto one of n paths.
func hashPath(flow uint64, n int) int {
	if n <= 0 {
		return net.PathAny
	}
	return int(mix64(flow) % uint64(n))
}

// ECMP hashes each flow onto a path once and never reroutes — the
// production default the paper uses as the baseline.
type ECMP struct {
	transport.BaseBalancer
	Net *net.Network
}

// Name implements transport.Balancer.
func (e *ECMP) Name() string { return "ECMP" }

// SelectPath implements transport.Balancer.
func (e *ECMP) SelectPath(f *transport.Flow) int {
	if f.Started() {
		return f.CurPath
	}
	paths := e.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}
	return paths[hashPath(f.ID, len(paths))]
}

// PassThrough defers every decision to the in-switch balancer (used for
// CONGA, LetFlow and DRILL runs).
type PassThrough struct {
	transport.BaseBalancer
	Scheme string
}

// Name implements transport.Balancer.
func (p *PassThrough) Name() string { return p.Scheme }

// SelectPath implements transport.Balancer.
func (p *PassThrough) SelectPath(*transport.Flow) int { return net.PathAny }

// Spray is per-packet weighted round-robin spraying: with equal weights it
// is DRB; with topology-proportional weights and the transport's reordering
// buffer enabled it is Presto* (the paper sprays single packets rather than
// flowcells and masks reordering, §5.1). Weighted selection uses the smooth
// weighted round-robin algorithm, so the schedule is deterministic.
type Spray struct {
	transport.BaseBalancer
	Net        *net.Network
	SchemeName string
	// WeightByCapacity assigns static per-path weights proportional to the
	// bottleneck capacity of each path (the topology-dependent weights the
	// paper grants Presto* in asymmetric runs).
	WeightByCapacity bool

	perDst map[int]*wrrState // keyed by destination leaf
}

type wrrState struct {
	paths   []int
	weight  []float64
	current []float64
	total   float64
}

// Name implements transport.Balancer.
func (s *Spray) Name() string { return s.SchemeName }

// SelectPath implements transport.Balancer.
func (s *Spray) SelectPath(f *transport.Flow) int {
	if s.perDst == nil {
		s.perDst = map[int]*wrrState{}
	}
	st := s.perDst[f.DstLeaf]
	if st == nil {
		st = s.newState(f.SrcLeaf, f.DstLeaf)
		s.perDst[f.DstLeaf] = st
	}
	if len(st.paths) == 0 {
		return net.PathAny
	}
	// Smooth WRR: raise every current by its weight, pick the max, then
	// lower the winner by the total.
	best := 0
	for i := range st.paths {
		st.current[i] += st.weight[i]
		if st.current[i] > st.current[best] {
			best = i
		}
	}
	st.current[best] -= st.total
	return st.paths[best]
}

func (s *Spray) newState(srcLeaf, dstLeaf int) *wrrState {
	paths := s.Net.AvailablePaths(srcLeaf, dstLeaf)
	st := &wrrState{paths: paths}
	st.weight = make([]float64, len(paths))
	st.current = make([]float64, len(paths))
	for i, p := range paths {
		w := 1.0
		if s.WeightByCapacity {
			w = float64(s.Net.PathCapacityBps(srcLeaf, dstLeaf, p))
		}
		st.weight[i] = w
		st.total += w
	}
	return st
}

// WCMP is weighted-cost multipath: per-flow random path selection with
// probabilities proportional to path capacity. It is the static
// asymmetry-aware strawman between ECMP (unweighted) and Presto* (per-packet
// weighted): flows never reroute, so it shares ECMP's failure blindness.
type WCMP struct {
	transport.BaseBalancer
	Net *net.Network
}

// Name implements transport.Balancer.
func (w *WCMP) Name() string { return "WCMP" }

// SelectPath implements transport.Balancer.
func (w *WCMP) SelectPath(f *transport.Flow) int {
	if f.Started() {
		return f.CurPath
	}
	paths := w.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}
	var total int64
	for _, p := range paths {
		total += w.Net.PathCapacityBps(f.SrcLeaf, f.DstLeaf, p)
	}
	if total <= 0 {
		return paths[hashPath(f.ID, len(paths))]
	}
	// Deterministic per flow: derive the draw from the flow id hash so that
	// retried selections stay stable, like a real weighted hash group.
	u := int64(mix64(f.ID) % uint64(total))
	for _, p := range paths {
		u -= w.Net.PathCapacityBps(f.SrcLeaf, f.DstLeaf, p)
		if u < 0 {
			return p
		}
	}
	return paths[len(paths)-1]
}
