package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// HulaParams tunes the HULA reproduction.
type HulaParams struct {
	// ProbeInterval is how often the best-path tables refresh (HULA floods
	// utilization probes on this period).
	ProbeInterval sim.Time
	// FlowletTimeout opens a new flowlet.
	FlowletTimeout sim.Time
}

// DefaultHulaParams returns the settings from [25].
func DefaultHulaParams() HulaParams {
	return HulaParams{
		ProbeInterval:  200 * sim.Microsecond,
		FlowletTimeout: 150 * sim.Microsecond,
	}
}

// Hula reproduces HULA [25]: switches keep only the current best path (and
// its utilization) toward each destination ToR, refreshed by periodic
// utilization probes, and pin flowlets to it. This implementation refreshes
// the tables directly from the fabric ports' DRE estimators once per probe
// interval — probe propagation is idealized to one interval of staleness,
// and probe bandwidth (a few Mbps) is not charged. Unlike CONGA there is no
// per-path table: only the argmin survives, which is HULA's scalability
// trade-off.
type Hula struct {
	Net    *net.Network
	Leaf   int
	Rng    *sim.RNG
	Params HulaParams

	bestPath []int // per destination leaf
	flowlets map[uint64]*flowletEntry
}

// InstallHula sets up HULA on every leaf switch.
func InstallHula(nw *net.Network, rng *sim.RNG, p HulaParams) []*Hula {
	out := make([]*Hula, nw.Cfg.Leaves)
	for l := range nw.Leaves {
		h := &Hula{
			Net: nw, Leaf: l, Rng: rng, Params: p,
			bestPath: make([]int, nw.Cfg.Leaves),
			flowlets: map[uint64]*flowletEntry{},
		}
		for d := range h.bestPath {
			h.bestPath[d] = -1
		}
		nw.Leaves[l].Balancer = h
		h.refresh()
		out[l] = h
	}
	return out
}

// refresh recomputes the best path toward every destination leaf from the
// current port utilizations, then re-arms itself.
func (h *Hula) refresh() {
	now := h.Net.Eng.Now()
	sw := h.Net.Leaves[h.Leaf]
	for d := 0; d < h.Net.Cfg.Leaves; d++ {
		if d == h.Leaf {
			continue
		}
		paths := h.Net.AvailablePaths(h.Leaf, d)
		best, bestUtil := -1, 0.0
		for _, p := range paths {
			up := sw.Uplink(p).UtilFraction(now)
			down := h.Net.DownlinkPort(p, d).UtilFraction(now)
			u := up
			if down > u {
				u = down
			}
			if best < 0 || u < bestUtil {
				best, bestUtil = p, u
			}
		}
		h.bestPath[d] = best
	}
	h.Net.Eng.ScheduleKind(h.Params.ProbeInterval, sim.KindTimer, h.refresh)
}

// SelectUplink implements net.SwitchBalancer.
func (h *Hula) SelectUplink(pkt *net.Packet, dstLeaf int) int {
	now := h.Net.Eng.Now()
	e := h.flowlets[pkt.Flow]
	if e == nil {
		e = &flowletEntry{path: net.PathAny}
		h.flowlets[pkt.Flow] = e
	}
	paths := h.Net.AvailablePaths(h.Leaf, dstLeaf)
	if len(paths) == 0 {
		return 0
	}
	if e.path == net.PathAny || now-e.last > h.Params.FlowletTimeout || !contains(paths, e.path) {
		if best := h.bestPath[dstLeaf]; best >= 0 && contains(paths, best) {
			e.path = best
		} else {
			e.path = paths[h.Rng.Intn(len(paths))]
		}
	}
	e.last = now
	return e.path
}

// OnDepart implements net.SwitchBalancer.
func (h *Hula) OnDepart(*net.Packet, int) {}

// OnArrive implements net.SwitchBalancer.
func (h *Hula) OnArrive(*net.Packet, int) {}

// ensure interface compliance for host-side no-op pairing.
var _ net.SwitchBalancer = (*Hula)(nil)
var _ transport.Balancer = (*EdgeFlowlet)(nil)
