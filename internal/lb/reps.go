package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/transport"
)

// REPS (recycled entropy packet spraying) is the post-Hermes spraying scheme:
// instead of spraying obliviously like Presto*/DRB, each sender caches the
// "entropies" (here: path indices) of packets whose ACKs recently came back
// clean, and prefers to respray those. Paths that deliver keep re-entering
// the cache; paths that blackhole or congest stop contributing ACKs (and are
// actively evicted on ECN, fast retransmit and RTO), so within roughly one
// round-trip of in-flight data the spray distribution steers itself away from
// a failed or congested spine with no explicit path-state machine. When the
// cache runs dry the sender falls back to fresh entropies chosen round-robin
// over the currently available paths.
//
// The cache is per (sender host, destination leaf), mirroring how the real
// scheme scopes entropies to a destination: ACK signals from one rack pair
// never steer another pair's traffic.

// DefaultRepsCacheCap bounds each (host, dstLeaf) entropy cache. One window
// of a short flow is ~10 segments, so 32 recycled entropies comfortably cover
// the spray decisions of the flows a host runs concurrently to one rack
// while still draining stale entries quickly after a failure.
const DefaultRepsCacheCap = 32

// EntropyCache is a bounded FIFO of path entropies backed by a ring buffer.
// Put on a full cache overwrites the oldest entry; Evict removes every copy
// of one entropy. The zero value is unusable; use NewEntropyCache.
type EntropyCache struct {
	buf  []int
	head int // index of the oldest entry
	n    int
}

// NewEntropyCache returns a cache bounded to capacity entries (minimum 1).
func NewEntropyCache(capacity int) *EntropyCache {
	if capacity < 1 {
		capacity = 1
	}
	return &EntropyCache{buf: make([]int, capacity)}
}

// Len returns the number of cached entropies.
func (c *EntropyCache) Len() int { return c.n }

// Cap returns the cache bound.
func (c *EntropyCache) Cap() int { return len(c.buf) }

// Put appends an entropy, dropping the oldest entry when full.
func (c *EntropyCache) Put(e int) {
	tail := (c.head + c.n) % len(c.buf)
	c.buf[tail] = e
	if c.n == len(c.buf) {
		c.head = (c.head + 1) % len(c.buf) // overwrote the oldest
	} else {
		c.n++
	}
}

// Pop removes and returns the oldest entropy; ok is false when empty.
func (c *EntropyCache) Pop() (e int, ok bool) {
	if c.n == 0 {
		return 0, false
	}
	e = c.buf[c.head]
	c.head = (c.head + 1) % len(c.buf)
	c.n--
	return e, true
}

// Evict removes every cached copy of entropy e, preserving the FIFO order of
// the survivors, and returns how many entries it removed.
func (c *EntropyCache) Evict(e int) int {
	kept, removed := 0, 0
	for i := 0; i < c.n; i++ {
		v := c.buf[(c.head+i)%len(c.buf)]
		if v == e {
			removed++
			continue
		}
		c.buf[(c.head+kept)%len(c.buf)] = v
		kept++
	}
	c.n = kept
	return removed
}

// Reps is the per-host REPS balancer.
type Reps struct {
	transport.BaseBalancer
	Net *net.Network

	// Spray outcome counters, exposed for telemetry and tests.
	RecycledSprays uint64 // segments sent on a cached entropy
	FreshSprays    uint64 // segments sent on a round-robin fresh entropy
	Evictions      uint64 // cache entries removed by ECN/retransmit/RTO
	StaleSkips     uint64 // popped entropies whose path was no longer up

	cacheCap       int
	perDst         []*EntropyCache // indexed by destination leaf
	rr             uint64          // fresh-entropy round-robin cursor
	recycledByPath []uint64
	freshByPath    []uint64
}

// NewReps builds a REPS balancer for one host. cacheCap <= 0 selects
// DefaultRepsCacheCap.
func NewReps(nw *net.Network, cacheCap int) *Reps {
	if cacheCap <= 0 {
		cacheCap = DefaultRepsCacheCap
	}
	return &Reps{
		Net:            nw,
		cacheCap:       cacheCap,
		perDst:         make([]*EntropyCache, nw.Cfg.Leaves),
		recycledByPath: make([]uint64, nw.NPaths()),
		freshByPath:    make([]uint64, nw.NPaths()),
	}
}

// Name implements transport.Balancer.
func (r *Reps) Name() string { return "REPS" }

func (r *Reps) cache(dstLeaf int) *EntropyCache {
	c := r.perDst[dstLeaf]
	if c == nil {
		c = NewEntropyCache(r.cacheCap)
		r.perDst[dstLeaf] = c
	}
	return c
}

// SelectPath implements transport.Balancer: recycle the oldest cached
// entropy for this destination, else spray a fresh one round-robin.
func (r *Reps) SelectPath(f *transport.Flow) int {
	paths := r.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}
	c := r.cache(f.DstLeaf)
	for {
		e, ok := c.Pop()
		if !ok {
			break
		}
		if !pathIn(paths, e) {
			// Routing withdrew the path since the entropy was cached.
			r.StaleSkips++
			continue
		}
		r.RecycledSprays++
		r.recycledByPath[e]++
		return e
	}
	r.rr++
	p := paths[int(r.rr%uint64(len(paths)))]
	r.FreshSprays++
	r.freshByPath[p]++
	return p
}

// OnAck implements transport.Balancer: a clean delivery recycles the packet's
// entropy; an ECN echo evicts every cached copy of that path.
func (r *Reps) OnAck(f *transport.Flow, ev transport.AckEvent) {
	if ev.Path < 0 {
		return
	}
	if ev.ECE {
		r.Evictions += uint64(r.cache(f.DstLeaf).Evict(ev.Path))
		return
	}
	if ev.Dup {
		return
	}
	r.cache(f.DstLeaf).Put(ev.Path)
}

// OnRetransmit implements transport.Balancer: a fast retransmit marks the
// suspect path's entropies dead.
func (r *Reps) OnRetransmit(f *transport.Flow, path int) {
	r.evictPath(f.DstLeaf, path)
}

// OnTimeout implements transport.Balancer: an RTO is the strongest failure
// signal; purge the path from the destination's cache.
func (r *Reps) OnTimeout(f *transport.Flow, path int) {
	r.evictPath(f.DstLeaf, path)
}

func (r *Reps) evictPath(dstLeaf, path int) {
	if path < 0 || dstLeaf < 0 || dstLeaf >= len(r.perDst) {
		return
	}
	r.Evictions += uint64(r.cache(dstLeaf).Evict(path))
}

// CachedEntropies returns the total entropies currently cached across
// destinations (telemetry gauge).
func (r *Reps) CachedEntropies() int {
	total := 0
	for _, c := range r.perDst {
		if c != nil {
			total += c.Len()
		}
	}
	return total
}

// Entropies returns the cached entropies for one destination leaf in FIFO
// order (oldest first) — the checkpoint-comparable view of the cache, and
// the exact-restore contract surface for chaos injectors.
func (c *EntropyCache) Entropies() []int {
	out := make([]int, 0, c.n)
	for i := 0; i < c.n; i++ {
		out = append(out, c.buf[(c.head+i)%len(c.buf)])
	}
	return out
}

// RepsDump is one REPS balancer's checkpoint-visible state: the outcome
// counters, the round-robin cursor, and every destination cache's contents
// in FIFO order (nil for never-touched destinations).
type RepsDump struct {
	RecycledSprays uint64  `json:"recycled_sprays"`
	FreshSprays    uint64  `json:"fresh_sprays"`
	Evictions      uint64  `json:"evictions"`
	StaleSkips     uint64  `json:"stale_skips"`
	RR             uint64  `json:"rr"`
	Caches         [][]int `json:"caches"` // indexed by destination leaf
}

// Dump captures the balancer state; read-only.
func (r *Reps) Dump() *RepsDump {
	d := &RepsDump{
		RecycledSprays: r.RecycledSprays,
		FreshSprays:    r.FreshSprays,
		Evictions:      r.Evictions,
		StaleSkips:     r.StaleSkips,
		RR:             r.rr,
		Caches:         make([][]int, len(r.perDst)),
	}
	for dst, c := range r.perDst {
		if c != nil {
			d.Caches[dst] = c.Entropies()
		}
	}
	return d
}

// SprayCounts returns copies of the per-path recycled and fresh spray
// counters (indexed by path).
func (r *Reps) SprayCounts() (recycled, fresh []uint64) {
	recycled = append([]uint64(nil), r.recycledByPath...)
	fresh = append([]uint64(nil), r.freshByPath...)
	return recycled, fresh
}

func pathIn(paths []int, p int) bool {
	for _, q := range paths {
		if q == p {
			return true
		}
	}
	return false
}
