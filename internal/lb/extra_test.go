package lb

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func TestEdgeFlowletStickyAndRandom(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	e := &EdgeFlowlet{Net: nw, Rng: sim.NewRNG(2), Timeout: 150 * sim.Microsecond}
	f := mkFlow(1, 0, 2, nw)
	p1 := e.SelectPath(f)
	for i := 0; i < 10; i++ {
		eng.Run(eng.Now() + 50*sim.Microsecond)
		if e.SelectPath(f) != p1 {
			t.Fatal("path changed within a flowlet")
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		eng.Run(eng.Now() + 200*sim.Microsecond)
		seen[e.SelectPath(f)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random flowlet re-picks covered only %d paths", len(seen))
	}
}

func TestEdgeFlowletCleansUpOnDone(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	e := &EdgeFlowlet{Net: nw, Rng: sim.NewRNG(2), Timeout: 150 * sim.Microsecond}
	f := mkFlow(1, 0, 2, nw)
	e.SelectPath(f)
	if len(e.flowlets) != 1 {
		t.Fatal("flowlet entry not created")
	}
	e.OnFlowDone(f)
	if len(e.flowlets) != 0 {
		t.Fatal("flowlet entry leaked after flow completion")
	}
}

func TestHulaPrefersLeastUtilizedPath(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	hulas := InstallHula(nw, sim.NewRNG(3), DefaultHulaParams())
	h := hulas[0]
	// Saturate uplink 0's DRE with line-rate traffic for a while.
	up := nw.Leaves[0].Uplink(0)
	for i := 0; i < 2000; i++ {
		up.Enqueue(&net.Packet{Kind: net.Data, Wire: 1500, Src: 0, Dst: 2})
		eng.Run(eng.Now() + 1200)
	}
	// Let a refresh happen with the DRE hot.
	eng.Run(eng.Now() + DefaultHulaParams().ProbeInterval + sim.Microsecond)
	pkt := &net.Packet{Flow: 42, Src: 0, Dst: 2}
	if got := h.SelectUplink(pkt, 1); got != 1 {
		t.Fatalf("HULA picked busy uplink %d", got)
	}
}

func TestHulaFlowletSticky(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	hulas := InstallHula(nw, sim.NewRNG(3), DefaultHulaParams())
	h := hulas[0]
	pkt := &net.Packet{Flow: 7, Src: 0, Dst: 2}
	p1 := h.SelectUplink(pkt, 1)
	for i := 0; i < 10; i++ {
		eng.Run(eng.Now() + 30*sim.Microsecond)
		if h.SelectUplink(pkt, 1) != p1 {
			t.Fatal("HULA changed path within a flowlet")
		}
	}
}

func TestHulaTablesRefreshOverTime(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	hulas := InstallHula(nw, sim.NewRNG(3), DefaultHulaParams())
	h := hulas[0]
	if h.bestPath[1] < 0 {
		t.Fatal("initial refresh did not populate the table")
	}
	// Load uplink for whichever path is currently best; after refreshes the
	// best path must flip away from it.
	old := h.bestPath[1]
	up := nw.Leaves[0].Uplink(old)
	for i := 0; i < 3000; i++ {
		up.Enqueue(&net.Packet{Kind: net.Data, Wire: 1500, Src: 0, Dst: 2})
		eng.Run(eng.Now() + 1200)
	}
	eng.Run(eng.Now() + 2*DefaultHulaParams().ProbeInterval)
	if h.bestPath[1] == old {
		t.Fatal("best path did not move off the loaded uplink")
	}
}

func TestWCMPWeightsByCapacity(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	nw.SetFabricLink(0, 1, 2e9)
	nw.SetFabricLink(1, 1, 2e9)
	w := &WCMP{Net: nw}
	counts := [2]int{}
	for id := uint64(0); id < 6000; id++ {
		counts[w.SelectPath(mkFlow(id, 0, 2, nw))]++
	}
	// 10:2 capacity split => ~5/6 on path 0.
	frac := float64(counts[0]) / 6000
	if frac < 0.78 || frac > 0.88 {
		t.Fatalf("10G path got %.2f of flows, want ~0.83", frac)
	}
	// Per-flow determinism.
	for id := uint64(0); id < 50; id++ {
		if w.SelectPath(mkFlow(id, 0, 2, nw)) != w.SelectPath(mkFlow(id, 0, 2, nw)) {
			t.Fatal("WCMP not deterministic per flow id")
		}
	}
}
