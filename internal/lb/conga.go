package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// CongaParams tunes the CONGA reproduction.
type CongaParams struct {
	// FlowletTimeout opens a new flowlet after this inactivity gap. The
	// paper tunes 150 us for DCTCP traffic (§5.1) and sweeps 50/150/500 us
	// in Fig 15.
	FlowletTimeout sim.Time
	// AgingTime invalidates remote congestion entries that have not been
	// refreshed — 10 ms as suggested by [5]. Stale entries read as zero,
	// which is precisely what produces the Fig 4 hidden-terminal flipping.
	AgingTime sim.Time
	// QuantLevels is the congestion metric resolution (3 bits => 8).
	QuantLevels int
}

// DefaultCongaParams returns the §5.1 settings.
func DefaultCongaParams() CongaParams {
	return CongaParams{
		FlowletTimeout: 150 * sim.Microsecond,
		AgingTime:      10 * sim.Millisecond,
		QuantLevels:    8,
	}
}

// Conga reproduces CONGA [5] at one leaf switch: leaf-to-leaf congestion
// feedback built from per-port DRE utilization estimators, piggybacked on
// reverse traffic, with flowlet-granularity path choice minimizing the
// max of local and remote congestion along each uplink.
type Conga struct {
	Net    *net.Network
	Leaf   int
	Rng    *sim.RNG
	Params CongaParams

	flowlets map[uint64]*flowletEntry
	// fromLeaf[src][path]: congestion measured here for traffic arriving
	// from leaf src over path (the destination-side table). Entries age just
	// like the sender-side table: with no arrivals, a path reads as empty —
	// the stale-information behaviour behind Fig 4.
	fromLeaf [][]congaEntry
	// toLeaf[dst][path]: congestion of the path toward leaf dst, learned
	// via feedback; ages to zero.
	toLeaf [][]congaEntry
	// fbIdx[dst] rotates which path's measurement is fed back next.
	fbIdx []int
}

type congaEntry struct {
	metric uint8
	at     sim.Time
	valid  bool
}

// InstallConga sets up CONGA on every leaf switch and hooks the DRE
// stamping on all fabric ports (leaf uplinks and spine downlinks), matching
// the in-network metric collection of the real system.
func InstallConga(nw *net.Network, rng *sim.RNG, p CongaParams) []*Conga {
	out := make([]*Conga, nw.Cfg.Leaves)
	for l := range nw.Leaves {
		out[l] = NewConga(nw, l, rng, p)
	}
	// Spine downlink stamping: the packet's CE field accumulates the max
	// utilization over both fabric hops.
	for l := 0; l < nw.Cfg.Leaves; l++ {
		for q := 0; q < nw.NPaths(); q++ {
			port := nw.DownlinkPort(q, l)
			port.OnTx = stampCE(nw, port, p.QuantLevels)
		}
	}
	return out
}

// NewConga builds and installs the per-leaf instance, including uplink DRE
// stamping.
func NewConga(nw *net.Network, leaf int, rng *sim.RNG, p CongaParams) *Conga {
	c := &Conga{Net: nw, Leaf: leaf, Rng: rng, Params: p, flowlets: map[uint64]*flowletEntry{}}
	L, S := nw.Cfg.Leaves, nw.NPaths()
	c.fromLeaf = make([][]congaEntry, L)
	c.toLeaf = make([][]congaEntry, L)
	c.fbIdx = make([]int, L)
	for i := 0; i < L; i++ {
		c.fromLeaf[i] = make([]congaEntry, S)
		c.toLeaf[i] = make([]congaEntry, S)
	}
	sw := nw.Leaves[leaf]
	sw.Balancer = c
	for s := 0; s < S; s++ {
		port := sw.Uplink(s)
		port.OnTx = stampCE(nw, port, p.QuantLevels)
	}
	c.scheduleSweep()
	return c
}

func stampCE(nw *net.Network, port *net.Port, levels int) func(*net.Packet) {
	return func(pkt *net.Packet) {
		q := port.DREQuant(nw.Eng.Now(), levels)
		if q > pkt.CongaCE {
			pkt.CongaCE = q
		}
	}
}

func (c *Conga) scheduleSweep() {
	c.Net.Eng.ScheduleKind(100*sim.Millisecond, sim.KindTimer, func() {
		now := c.Net.Eng.Now()
		for id, e := range c.flowlets {
			if now-e.last > 10*c.Params.FlowletTimeout+10*sim.Millisecond {
				delete(c.flowlets, id)
			}
		}
		c.scheduleSweep()
	})
}

// remote returns the (aged) remote congestion metric toward dstLeaf over
// path p: entries older than AgingTime read as zero — CONGA assumes an
// unreported path is idle.
func (c *Conga) remote(dstLeaf, p int, now sim.Time) uint8 {
	e := c.toLeaf[dstLeaf][p]
	if !e.valid || now-e.at > c.Params.AgingTime {
		return 0
	}
	return e.metric
}

// SelectUplink implements net.SwitchBalancer: flowlet-granularity argmin of
// max(local DRE, remote metric).
func (c *Conga) SelectUplink(pkt *net.Packet, dstLeaf int) int {
	now := c.Net.Eng.Now()
	e := c.flowlets[pkt.Flow]
	if e == nil {
		e = &flowletEntry{path: net.PathAny}
		c.flowlets[pkt.Flow] = e
	}
	paths := c.Net.AvailablePaths(c.Leaf, dstLeaf)
	if len(paths) == 0 {
		return 0
	}
	if e.path == net.PathAny || now-e.last > c.Params.FlowletTimeout || !contains(paths, e.path) {
		e.path = c.bestPath(paths, dstLeaf, now)
	}
	e.last = now
	return e.path
}

func (c *Conga) bestPath(paths []int, dstLeaf int, now sim.Time) int {
	sw := c.Net.Leaves[c.Leaf]
	best := -1
	var bestMetric uint8
	nBest := 0
	for _, p := range paths {
		local := sw.Uplink(p).DREQuant(now, c.Params.QuantLevels)
		m := local
		if r := c.remote(dstLeaf, p, now); r > m {
			m = r
		}
		switch {
		case best < 0 || m < bestMetric:
			best, bestMetric, nBest = p, m, 1
		case m == bestMetric:
			// Reservoir-sample among ties for unbiased random tie-break.
			nBest++
			if c.Rng.Intn(nBest) == 0 {
				best = p
			}
		}
	}
	return best
}

// OnDepart implements net.SwitchBalancer: reset the CE accumulator and
// piggyback one feedback entry about traffic we received from dstLeaf.
func (c *Conga) OnDepart(pkt *net.Packet, dstLeaf int) {
	pkt.CongaCE = 0
	s := c.fbIdx[dstLeaf] % c.Net.NPaths()
	c.fbIdx[dstLeaf]++
	pkt.FbValid = true
	pkt.FbPath = uint8(s)
	pkt.FbMetric = c.agedFrom(dstLeaf, s, c.Net.Eng.Now())
}

// agedFrom reads the destination-side measurement with aging applied.
func (c *Conga) agedFrom(srcLeaf, path int, now sim.Time) uint8 {
	e := c.fromLeaf[srcLeaf][path]
	if !e.valid || now-e.at > c.Params.AgingTime {
		return 0
	}
	return e.metric
}

// OnArrive implements net.SwitchBalancer: harvest the forward-path metric
// and apply any piggybacked feedback.
func (c *Conga) OnArrive(pkt *net.Packet, srcLeaf int) {
	if pkt.Path >= 0 && pkt.Path < c.Net.NPaths() {
		c.fromLeaf[srcLeaf][pkt.Path] = congaEntry{
			metric: pkt.CongaCE,
			at:     c.Net.Eng.Now(),
			valid:  true,
		}
	}
	if pkt.FbValid {
		c.toLeaf[srcLeaf][pkt.FbPath] = congaEntry{
			metric: pkt.FbMetric,
			at:     c.Net.Eng.Now(),
			valid:  true,
		}
	}
}
