package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// LetFlow [14] is flowlet switching in its purest form: on every flowlet
// gap the leaf switch re-hashes the flow onto a uniformly random uplink.
// Balance emerges from flowlets elastically shrinking on congested paths.
// One instance serves one leaf switch.
type LetFlow struct {
	Net  *net.Network
	Leaf int
	Rng  *sim.RNG
	// Timeout is the flowlet inactivity gap (150 us in §5.1).
	Timeout sim.Time

	table map[uint64]*flowletEntry
	sweep *sim.Event
}

// NewLetFlow builds the per-leaf instance and installs it on the switch.
func NewLetFlow(nw *net.Network, leaf int, rng *sim.RNG, timeout sim.Time) *LetFlow {
	l := &LetFlow{Net: nw, Leaf: leaf, Rng: rng, Timeout: timeout, table: map[uint64]*flowletEntry{}}
	nw.Leaves[leaf].Balancer = l
	l.scheduleSweep()
	return l
}

func (l *LetFlow) scheduleSweep() {
	// Evict long-idle flowlet entries so the table does not grow without
	// bound across a run.
	l.sweep = l.Net.Eng.ScheduleKind(100*sim.Millisecond, sim.KindTimer, func() {
		now := l.Net.Eng.Now()
		for id, e := range l.table {
			if now-e.last > 10*l.Timeout+10*sim.Millisecond {
				delete(l.table, id)
			}
		}
		l.scheduleSweep()
	})
}

// SelectUplink implements net.SwitchBalancer.
func (l *LetFlow) SelectUplink(pkt *net.Packet, dstLeaf int) int {
	now := l.Net.Eng.Now()
	e := l.table[pkt.Flow]
	if e == nil {
		e = &flowletEntry{path: net.PathAny}
		l.table[pkt.Flow] = e
	}
	paths := l.Net.AvailablePaths(l.Leaf, dstLeaf)
	if len(paths) == 0 {
		return 0
	}
	if e.path == net.PathAny || now-e.last > l.Timeout || !contains(paths, e.path) {
		e.path = paths[l.Rng.Intn(len(paths))]
	}
	e.last = now
	return e.path
}

// OnDepart implements net.SwitchBalancer.
func (l *LetFlow) OnDepart(*net.Packet, int) {}

// OnArrive implements net.SwitchBalancer.
func (l *LetFlow) OnArrive(*net.Packet, int) {}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// DRILL [16] makes a per-packet, purely local decision: compare the queue
// depth of two random uplinks and the previously best one, and send the
// packet to the shortest. It has no global awareness, which is why it
// suffers under asymmetry (§7).
type DRILL struct {
	Net  *net.Network
	Leaf int
	Rng  *sim.RNG

	lastBest map[int]int // per destination leaf
}

// NewDRILL builds the per-leaf instance and installs it on the switch.
func NewDRILL(nw *net.Network, leaf int, rng *sim.RNG) *DRILL {
	d := &DRILL{Net: nw, Leaf: leaf, Rng: rng, lastBest: map[int]int{}}
	nw.Leaves[leaf].Balancer = d
	return d
}

// SelectUplink implements net.SwitchBalancer.
func (d *DRILL) SelectUplink(pkt *net.Packet, dstLeaf int) int {
	paths := d.Net.AvailablePaths(d.Leaf, dstLeaf)
	switch len(paths) {
	case 0:
		return 0
	case 1:
		return paths[0]
	}
	sw := d.Net.Leaves[d.Leaf]
	a, b := d.Rng.TwoDistinct(len(paths))
	cands := []int{paths[a], paths[b]}
	if best, ok := d.lastBest[dstLeaf]; ok && contains(paths, best) {
		cands = append(cands, best)
	}
	best := cands[0]
	for _, p := range cands[1:] {
		if sw.Uplink(p).QueuedBytes() < sw.Uplink(best).QueuedBytes() {
			best = p
		}
	}
	d.lastBest[dstLeaf] = best
	return best
}

// OnDepart implements net.SwitchBalancer.
func (d *DRILL) OnDepart(*net.Packet, int) {}

// OnArrive implements net.SwitchBalancer.
func (d *DRILL) OnArrive(*net.Packet, int) {}
