package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// EdgeFlowlet is the congestion-oblivious CLOVE variant the paper also
// evaluated (§5.1): flowlet switching at the end host with uniformly random
// path choice — LetFlow's logic moved to the edge. The paper reports
// CLOVE-ECN slightly ahead of Edge-Flowlet in most cases.
type EdgeFlowlet struct {
	transport.BaseBalancer
	Net *net.Network
	Rng *sim.RNG
	// Timeout is the flowlet inactivity gap.
	Timeout sim.Time

	flowlets map[uint64]*flowletEntry
}

// Name implements transport.Balancer.
func (e *EdgeFlowlet) Name() string { return "Edge-Flowlet" }

// SelectPath implements transport.Balancer.
func (e *EdgeFlowlet) SelectPath(f *transport.Flow) int {
	if e.flowlets == nil {
		e.flowlets = map[uint64]*flowletEntry{}
	}
	now := e.Net.Eng.Now()
	fe := e.flowlets[f.ID]
	if fe == nil {
		fe = &flowletEntry{path: net.PathAny}
		e.flowlets[f.ID] = fe
	}
	paths := e.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}
	if fe.path == net.PathAny || now-fe.last > e.Timeout || !contains(paths, fe.path) {
		fe.path = paths[e.Rng.Intn(len(paths))]
	}
	fe.last = now
	return fe.path
}

// OnFlowDone implements transport.Balancer.
func (e *EdgeFlowlet) OnFlowDone(f *transport.Flow) { delete(e.flowlets, f.ID) }
