package lb

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func testNet(t *testing.T, leaves, spines, hpl int) (*sim.Engine, *net.Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hpl,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func mkFlow(id uint64, src, dst int, nw *net.Network) *transport.Flow {
	return &transport.Flow{
		ID: id, Src: src, Dst: dst,
		SrcLeaf: nw.LeafOf(src), DstLeaf: nw.LeafOf(dst),
		CurPath: net.PathAny,
	}
}

func TestECMPSticky(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	e := &ECMP{Net: nw}
	f := mkFlow(1, 0, 2, nw)
	p1 := e.SelectPath(f)
	if p1 < 0 || p1 >= 4 {
		t.Fatalf("path %d out of range", p1)
	}
	// ECMP's per-flow hashing is stateless, so repeated selections of the
	// same unstarted flow must agree; started-flow stickiness is covered by
	// the full-stack facade tests (ECMP consults Flow.Started()).
	f.CurPath = p1
	for i := 0; i < 10; i++ {
		if got := e.SelectPath(f); got != p1 {
			t.Fatal("ECMP re-hashed a flow inconsistently")
		}
	}
}

func TestECMPDeterministicPerFlowID(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	e := &ECMP{Net: nw}
	for id := uint64(1); id < 100; id++ {
		a := e.SelectPath(mkFlow(id, 0, 2, nw))
		b := e.SelectPath(mkFlow(id, 0, 2, nw))
		if a != b {
			t.Fatal("same flow id hashed differently")
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	e := &ECMP{Net: nw}
	counts := make([]int, 4)
	for id := uint64(0); id < 400; id++ {
		counts[e.SelectPath(mkFlow(id, 0, 2, nw))]++
	}
	for p, c := range counts {
		if c < 50 || c > 150 {
			t.Fatalf("path %d got %d/400 flows; hash badly skewed", p, c)
		}
	}
}

func TestECMPAvoidsCutLinks(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	nw.SetFabricLink(0, 1, 0)
	e := &ECMP{Net: nw}
	for id := uint64(0); id < 100; id++ {
		if p := e.SelectPath(mkFlow(id, 0, 2, nw)); p == 1 {
			t.Fatal("ECMP routed onto a cut link")
		}
	}
}

func TestSprayEqualWeightsRoundRobin(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	s := &Spray{Net: nw, SchemeName: "DRB"}
	f := mkFlow(1, 0, 2, nw)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[s.SelectPath(f)]++
	}
	for p, c := range counts {
		if c != 100 {
			t.Fatalf("path %d got %d/400, want exactly 100 (round robin)", p, c)
		}
	}
}

func TestSprayWeightedByCapacity(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	nw.SetFabricLink(0, 1, 2e9) // path1 at 2 Gbps vs path0 at 10 Gbps
	nw.SetFabricLink(1, 1, 2e9)
	s := &Spray{Net: nw, SchemeName: "Presto*", WeightByCapacity: true}
	f := mkFlow(1, 0, 2, nw)
	counts := make([]int, 2)
	for i := 0; i < 600; i++ {
		counts[s.SelectPath(f)]++
	}
	// 10:2 capacity ratio -> 500:100.
	if counts[0] != 500 || counts[1] != 100 {
		t.Fatalf("weighted spray = %v, want [500 100]", counts)
	}
}

func TestSprayPerDestinationState(t *testing.T) {
	_, nw := testNet(t, 3, 2, 2)
	s := &Spray{Net: nw, SchemeName: "DRB"}
	f1 := mkFlow(1, 0, 2, nw) // -> leaf1
	f2 := mkFlow(2, 0, 4, nw) // -> leaf2
	a := s.SelectPath(f1)
	b := s.SelectPath(f2)
	// Fresh WRR state per destination: both start at the same point.
	if a != b {
		t.Fatalf("per-destination state not independent: %d vs %d", a, b)
	}
}

func TestCloveFlowletStickinessAndExpiry(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	c := &Clove{Net: nw, Rng: sim.NewRNG(2), Params: DefaultCloveParams()}
	f := mkFlow(1, 0, 2, nw)
	p1 := c.SelectPath(f)
	// Within the flowlet gap the path must not change.
	for i := 0; i < 5; i++ {
		eng.Run(eng.Now() + 10*sim.Microsecond)
		if got := c.SelectPath(f); got != p1 {
			t.Fatal("path changed within a flowlet")
		}
	}
	// After the gap a new flowlet may pick a different path; over many
	// expiries all paths must eventually be used.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		eng.Run(eng.Now() + c.Params.FlowletTimeout + sim.Microsecond)
		seen[c.SelectPath(f)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("flowlet re-picks covered only %d paths", len(seen))
	}
}

func TestCloveWeightsShiftAwayFromMarkedPath(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	c := &Clove{Net: nw, Rng: sim.NewRNG(2), Params: DefaultCloveParams()}
	f := mkFlow(1, 0, 2, nw)
	c.SelectPath(f) // initialize state
	before := c.Weights(0, 1)
	for i := 0; i < 50; i++ {
		c.OnAck(f, transport.AckEvent{Path: 2, ECE: true})
	}
	after := c.Weights(0, 1)
	if after[2] >= before[2] {
		t.Fatalf("marked path weight did not fall: %v -> %v", before[2], after[2])
	}
	var sum float64
	for _, w := range after {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("weights no longer normalized: sum=%v", sum)
	}
	// Unmarked ACKs slowly restore the weight.
	for i := 0; i < 2000; i++ {
		c.OnAck(f, transport.AckEvent{Path: 2, ECE: false})
	}
	restored := c.Weights(0, 1)
	if restored[2] <= after[2] {
		t.Fatal("weight did not recover on clean ACKs")
	}
}

func TestFlowBenderBendsOnMarks(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	b := DefaultFlowBender(nw)
	f := mkFlow(1, 0, 2, nw)
	p1 := b.SelectPath(f)
	// Clean ACKs: no bend.
	for i := 0; i < 100; i++ {
		b.OnAck(f, transport.AckEvent{Path: p1})
	}
	if b.SelectPath(f) != p1 {
		t.Fatal("bent without congestion")
	}
	// One full window of marked ACKs: must bend.
	for i := 0; i < b.WindowAcks; i++ {
		b.OnAck(f, transport.AckEvent{Path: p1, ECE: true})
	}
	p2 := b.SelectPath(f)
	if p2 == p1 {
		t.Fatal("did not bend after a fully marked window")
	}
	// An RTO also bends.
	b.OnTimeout(f, p2)
	if b.SelectPath(f) == p2 {
		t.Fatal("did not bend after timeout")
	}
}

func TestLetFlowFlowletBehaviour(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	lf := NewLetFlow(nw, 0, sim.NewRNG(3), 150*sim.Microsecond)
	pkt := &net.Packet{Flow: 9, Src: 0, Dst: 2}
	p1 := lf.SelectUplink(pkt, 1)
	for i := 0; i < 10; i++ {
		eng.Run(eng.Now() + 50*sim.Microsecond)
		if lf.SelectUplink(pkt, 1) != p1 {
			t.Fatal("flowlet changed path without a gap")
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		eng.Run(eng.Now() + 200*sim.Microsecond)
		seen[lf.SelectUplink(pkt, 1)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random re-picks covered only %d paths", len(seen))
	}
}

func TestLetFlowAvoidsCutLink(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	lf := NewLetFlow(nw, 0, sim.NewRNG(3), 150*sim.Microsecond)
	nw.SetFabricLink(0, 2, 0)
	pkt := &net.Packet{Flow: 9, Src: 0, Dst: 2}
	for i := 0; i < 100; i++ {
		eng.Run(eng.Now() + 200*sim.Microsecond)
		if lf.SelectUplink(pkt, 1) == 2 {
			t.Fatal("LetFlow chose a cut link")
		}
	}
}

func TestDRILLPrefersShortQueue(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	d := NewDRILL(nw, 0, sim.NewRNG(4))
	// Pile bytes onto uplink 0.
	for i := 0; i < 50; i++ {
		nw.Leaves[0].Uplink(0).Enqueue(&net.Packet{Kind: net.Data, Wire: 1500, Dst: 2, Src: 0})
	}
	// With only 2 paths both candidates are always compared, so DRILL must
	// always choose the empty uplink 1.
	pkt := &net.Packet{Flow: 1, Src: 0, Dst: 2}
	for i := 0; i < 20; i++ {
		if d.SelectUplink(pkt, 1) != 1 {
			t.Fatal("DRILL chose the longer queue")
		}
	}
	_ = eng
}

func TestCongaFlowletSticky(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	congas := InstallConga(nw, sim.NewRNG(5), DefaultCongaParams())
	c := congas[0]
	pkt := &net.Packet{Flow: 3, Src: 0, Dst: 2}
	p1 := c.SelectUplink(pkt, 1)
	for i := 0; i < 10; i++ {
		eng.Run(eng.Now() + 20*sim.Microsecond)
		if c.SelectUplink(pkt, 1) != p1 {
			t.Fatal("CONGA changed path within a flowlet")
		}
	}
}

func TestCongaAvoidsCongestedUplink(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	congas := InstallConga(nw, sim.NewRNG(5), DefaultCongaParams())
	c := congas[0]
	// Saturate uplink 0's DRE.
	up := nw.Leaves[0].Uplink(0)
	for i := 0; i < 2000; i++ {
		up.Enqueue(&net.Packet{Kind: net.Data, Wire: 1500, Src: 0, Dst: 2})
		eng.Run(eng.Now() + 1200) // line-rate pacing
	}
	pkt := &net.Packet{Flow: 99, Src: 0, Dst: 2}
	if got := c.SelectUplink(pkt, 1); got != 1 {
		t.Fatalf("CONGA picked busy uplink %d", got)
	}
}

func TestCongaFeedbackLoop(t *testing.T) {
	// Metric stamped on the forward path must arrive back at the source
	// leaf via the piggybacked feedback on reverse traffic.
	eng, nw := testNet(t, 2, 2, 2)
	congas := InstallConga(nw, sim.NewRNG(5), DefaultCongaParams())
	src, dst := congas[0], congas[1]
	_ = dst
	// Drive forward traffic through spine 0 at high rate so its DRE rises,
	// and reverse traffic to carry feedback.
	deliver := 0
	nw.Hosts[2].Handle(net.Data, func(p *net.Packet) {
		deliver++
		// Echo a reverse packet per arrival (like an ACK).
		nw.Hosts[2].Send(&net.Packet{Kind: net.Ack, Flow: p.Flow, Src: 2, Dst: p.Src, Wire: 40, Path: p.Path})
	})
	for i := 0; i < 3000; i++ {
		nw.Hosts[0].Send(&net.Packet{Kind: net.Data, Flow: 1, Src: 0, Dst: 2, Wire: 1500, Path: 0})
		eng.Run(eng.Now() + 1200)
	}
	eng.Run(eng.Now() + sim.Millisecond)
	if deliver == 0 {
		t.Fatal("no traffic delivered")
	}
	// The source leaf's remote table for (leaf1, path0) must be non-zero.
	if got := src.remote(1, 0, eng.Now()); got == 0 {
		t.Fatal("feedback never reached the source leaf")
	}
	// And it must age back to zero.
	eng.Run(eng.Now() + 20*sim.Millisecond)
	if got := src.remote(1, 0, eng.Now()); got != 0 {
		t.Fatalf("remote metric %d did not age out", got)
	}
}

func TestPassThroughAlwaysPathAny(t *testing.T) {
	p := &PassThrough{Scheme: "CONGA"}
	if p.SelectPath(&transport.Flow{}) != net.PathAny {
		t.Fatal("PassThrough must defer to the switch")
	}
	if p.Name() != "CONGA" {
		t.Fatal("name not propagated")
	}
}

func TestHashPathBounds(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for id := uint64(0); id < 1000; id++ {
			p := hashPath(id, n)
			if p < 0 || p >= n {
				t.Fatalf("hashPath(%d, %d) = %d out of range", id, n, p)
			}
		}
	}
	if hashPath(1, 0) != net.PathAny {
		t.Fatal("hashPath with no paths must return PathAny")
	}
}

func TestSprayNoPathsFallsBack(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	nw.SetFabricLink(0, 0, 0)
	nw.SetFabricLink(0, 1, 0) // leaf0 fully disconnected from the fabric
	s := &Spray{Net: nw, SchemeName: "DRB"}
	if got := s.SelectPath(mkFlow(1, 0, 2, nw)); got != net.PathAny {
		t.Fatalf("spray with no paths returned %d, want PathAny", got)
	}
}

func TestCloveSinglePathDegenerate(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	nw.SetFabricLink(0, 1, 0)
	c := &Clove{Net: nw, Rng: sim.NewRNG(1), Params: DefaultCloveParams()}
	f := mkFlow(1, 0, 2, nw)
	for i := 0; i < 50; i++ {
		eng.Run(eng.Now() + 200*sim.Microsecond)
		if got := c.SelectPath(f); got != 0 {
			t.Fatalf("single-path CLOVE chose %d", got)
		}
	}
	// Weight updates on a single path must not panic or distort.
	c.OnAck(f, transport.AckEvent{Path: 0, ECE: true})
	if w := c.Weights(0, 1); len(w) != 1 || w[0] <= 0 {
		t.Fatalf("degenerate weights: %v", w)
	}
}

func TestCongaIgnoresOutOfRangeFeedback(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	congas := InstallConga(nw, sim.NewRNG(1), DefaultCongaParams())
	// A packet with PathAny (never routed) must not corrupt tables.
	congas[1].OnArrive(&net.Packet{Flow: 1, Src: 0, Dst: 2, Path: net.PathAny}, 0)
	congas[1].OnArrive(&net.Packet{Flow: 1, Src: 0, Dst: 2, Path: 999}, 0)
	// Sanity: a valid arrival still lands.
	congas[1].OnArrive(&net.Packet{Flow: 1, Src: 0, Dst: 2, Path: 1, CongaCE: 5}, 0)
	if congas[1].agedFrom(0, 1, nw.Eng.Now()) != 5 {
		t.Fatal("valid measurement lost")
	}
}

func TestFlowBenderStateCleanup(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	b := DefaultFlowBender(nw)
	f := mkFlow(1, 0, 2, nw)
	b.SelectPath(f)
	b.OnAck(f, transport.AckEvent{Path: 0})
	if len(b.state) != 1 {
		t.Fatal("state not created")
	}
	b.OnFlowDone(f)
	if len(b.state) != 0 {
		t.Fatal("state leaked")
	}
}

func TestLetFlowSweepEvictsStaleEntries(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	lf := NewLetFlow(nw, 0, sim.NewRNG(1), 150*sim.Microsecond)
	pkt := &net.Packet{Flow: 5, Src: 0, Dst: 2}
	lf.SelectUplink(pkt, 1)
	if len(lf.table) != 1 {
		t.Fatal("entry not created")
	}
	// After the 100 ms sweep plus the staleness horizon, it is evicted.
	eng.Run(eng.Now() + 300*sim.Millisecond)
	if len(lf.table) != 0 {
		t.Fatalf("stale flowlet entry survived the sweep: %d", len(lf.table))
	}
}
