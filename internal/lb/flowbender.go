package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/transport"
)

// FlowBender [23] keeps a flow on one path but "bends" it to a new random
// path whenever the per-window ECN-marked fraction exceeds a threshold or
// an RTO fires. Rerouting is blind — the new path is a fresh hash, chosen
// without any knowledge of its condition — which is why the paper files it
// under reactive-and-random (Table 1).
type FlowBender struct {
	transport.BaseBalancer
	Net *net.Network

	// MarkThreshold is the ECN fraction that triggers a bend (default 5%).
	MarkThreshold float64
	// WindowAcks is the number of ACKs per evaluation window.
	WindowAcks int

	state map[uint64]*benderState
}

type benderState struct {
	v      uint64 // rerouting counter: path = hash(flow ^ v)
	acks   int
	marked int
}

// DefaultFlowBender returns the settings from [23].
func DefaultFlowBender(nw *net.Network) *FlowBender {
	return &FlowBender{Net: nw, MarkThreshold: 0.05, WindowAcks: 32}
}

// Name implements transport.Balancer.
func (b *FlowBender) Name() string { return "FlowBender" }

func (b *FlowBender) st(f *transport.Flow) *benderState {
	if b.state == nil {
		b.state = map[uint64]*benderState{}
	}
	s := b.state[f.ID]
	if s == nil {
		s = &benderState{}
		b.state[f.ID] = s
	}
	return s
}

// SelectPath implements transport.Balancer.
func (b *FlowBender) SelectPath(f *transport.Flow) int {
	paths := b.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}
	s := b.st(f)
	return paths[hashPath(f.ID^(s.v*0x9e3779b97f4a7c15+s.v), len(paths))]
}

// OnAck implements transport.Balancer: evaluates the marked fraction once
// per window of ACKs.
func (b *FlowBender) OnAck(f *transport.Flow, ev transport.AckEvent) {
	s := b.st(f)
	s.acks++
	if ev.ECE {
		s.marked++
	}
	if s.acks >= b.WindowAcks {
		if float64(s.marked)/float64(s.acks) > b.MarkThreshold {
			s.v++
		}
		s.acks, s.marked = 0, 0
	}
}

// OnTimeout implements transport.Balancer: an RTO always bends.
func (b *FlowBender) OnTimeout(f *transport.Flow, _ int) {
	b.st(f).v++
}

// OnFlowDone implements transport.Balancer.
func (b *FlowBender) OnFlowDone(f *transport.Flow) { delete(b.state, f.ID) }
