package lb

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// CloveParams tunes CLOVE-ECN's weight adaptation.
type CloveParams struct {
	// FlowletTimeout is the inactivity gap that opens a new flowlet
	// (150 us in the paper's simulations, 800 us on the 1 Gbps testbed).
	FlowletTimeout sim.Time
	// Beta is the multiplicative weight decrease applied to a path when an
	// ECN-marked ACK arrives for it.
	Beta float64
	// Recover is the additive pull toward uniform weights applied on every
	// unmarked ACK, restoring weight to paths that have drained.
	Recover float64
}

// DefaultCloveParams returns the simulation settings.
func DefaultCloveParams() CloveParams {
	return CloveParams{
		FlowletTimeout: 150 * sim.Microsecond,
		Beta:           0.06,
		Recover:        0.002,
	}
}

// Clove implements CLOVE-ECN [24]: an edge-based scheme that sprays
// flowlets with per-path weights learned purely from piggybacked ECN echoes
// — congestion-aware but limited to the visibility of its own ACK stream,
// which is the deficiency Table 2 and §5 highlight.
type Clove struct {
	transport.BaseBalancer
	Net    *net.Network
	Rng    *sim.RNG
	Params CloveParams

	perDst   map[int]*cloveDst
	flowlets map[uint64]*flowletEntry
}

type cloveDst struct {
	paths   []int
	weight  []float64
	pathIdx map[int]int // path id -> slice index
}

type flowletEntry struct {
	path int
	last sim.Time
}

// Name implements transport.Balancer.
func (c *Clove) Name() string { return "CLOVE-ECN" }

func (c *Clove) dst(srcLeaf, dstLeaf int) *cloveDst {
	if c.perDst == nil {
		c.perDst = map[int]*cloveDst{}
	}
	d := c.perDst[dstLeaf]
	if d == nil {
		paths := c.Net.AvailablePaths(srcLeaf, dstLeaf)
		d = &cloveDst{paths: paths, pathIdx: map[int]int{}}
		d.weight = make([]float64, len(paths))
		for i, p := range paths {
			d.weight[i] = 1 / float64(len(paths))
			d.pathIdx[p] = i
		}
		c.perDst[dstLeaf] = d
	}
	return d
}

// SelectPath implements transport.Balancer: weighted flowlet spraying.
func (c *Clove) SelectPath(f *transport.Flow) int {
	now := c.Net.Eng.Now()
	if c.flowlets == nil {
		c.flowlets = map[uint64]*flowletEntry{}
	}
	e := c.flowlets[f.ID]
	if e == nil {
		e = &flowletEntry{path: net.PathAny}
		c.flowlets[f.ID] = e
	}
	d := c.dst(f.SrcLeaf, f.DstLeaf)
	if len(d.paths) == 0 {
		return net.PathAny
	}
	if e.path == net.PathAny || now-e.last > c.Params.FlowletTimeout {
		e.path = d.paths[c.weightedPick(d)]
	}
	e.last = now
	return e.path
}

// weightedPick draws a path index proportionally to the current weights.
func (c *Clove) weightedPick(d *cloveDst) int {
	var total float64
	for _, w := range d.weight {
		total += w
	}
	u := c.Rng.Float64() * total
	for i, w := range d.weight {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(d.weight) - 1
}

// OnAck implements transport.Balancer: ECN echoes shift weight away from
// marked paths; unmarked ACKs slowly restore uniformity.
func (c *Clove) OnAck(f *transport.Flow, ev transport.AckEvent) {
	d := c.dst(f.SrcLeaf, f.DstLeaf)
	i, ok := d.pathIdx[ev.Path]
	if !ok || len(d.paths) < 2 {
		return
	}
	if ev.ECE {
		moved := d.weight[i] * c.Params.Beta
		d.weight[i] -= moved
		share := moved / float64(len(d.paths)-1)
		for j := range d.weight {
			if j != i {
				d.weight[j] += share
			}
		}
	} else {
		uniform := 1 / float64(len(d.paths))
		d.weight[i] += c.Params.Recover * (uniform - d.weight[i])
		// Renormalize to keep the total at 1.
		var total float64
		for _, w := range d.weight {
			total += w
		}
		for j := range d.weight {
			d.weight[j] /= total
		}
	}
}

// OnFlowDone implements transport.Balancer.
func (c *Clove) OnFlowDone(f *transport.Flow) { delete(c.flowlets, f.ID) }

// Weights exposes the current weight vector toward a destination leaf (for
// tests).
func (c *Clove) Weights(srcLeaf, dstLeaf int) []float64 {
	d := c.dst(srcLeaf, dstLeaf)
	out := make([]float64, len(d.weight))
	copy(out, d.weight)
	return out
}
