package lb

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/transport"
)

func TestEntropyCacheFIFO(t *testing.T) {
	c := NewEntropyCache(8)
	if _, ok := c.Pop(); ok {
		t.Fatal("empty cache popped a value")
	}
	for _, e := range []int{3, 1, 4} {
		c.Put(e)
	}
	if c.Len() != 3 || c.Cap() != 8 {
		t.Fatalf("len=%d cap=%d, want 3/8", c.Len(), c.Cap())
	}
	for _, want := range []int{3, 1, 4} {
		got, ok := c.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v, want %d", got, ok, want)
		}
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after draining")
	}
}

func TestEntropyCacheOverwritesOldest(t *testing.T) {
	c := NewEntropyCache(3)
	for e := 1; e <= 5; e++ {
		c.Put(e)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want bound 3", c.Len())
	}
	for _, want := range []int{3, 4, 5} {
		if got, _ := c.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d (oldest must be overwritten)", got, want)
		}
	}
}

func TestEntropyCacheEvict(t *testing.T) {
	c := NewEntropyCache(8)
	for _, e := range []int{1, 2, 1, 3, 1} {
		c.Put(e)
	}
	if got := c.Evict(1); got != 3 {
		t.Fatalf("Evict removed %d entries, want 3", got)
	}
	for _, want := range []int{2, 3} {
		if got, _ := c.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d (survivor order must hold)", got, want)
		}
	}
	// An evicted entropy is gone for good until re-Put.
	c.Put(1)
	if got, ok := c.Pop(); !ok || got != 1 {
		t.Fatal("re-Put after Evict must work")
	}
	if got := c.Evict(9); got != 0 {
		t.Fatalf("Evict of absent entropy removed %d", got)
	}
}

func TestEntropyCacheMinCapacity(t *testing.T) {
	c := NewEntropyCache(0)
	if c.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", c.Cap())
	}
	c.Put(7)
	c.Put(8)
	if got, _ := c.Pop(); got != 8 {
		t.Fatalf("Pop = %d, want 8 (single slot keeps the newest)", got)
	}
}

func TestRepsRecyclesAckedEntropy(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	r := NewReps(nw, 0)
	f := mkFlow(1, 0, 2, nw)
	r.OnAck(f, transport.AckEvent{Path: 2, NewlyAcked: 1000})
	if got := r.SelectPath(f); got != 2 {
		t.Fatalf("SelectPath = %d, want recycled entropy 2", got)
	}
	if r.RecycledSprays != 1 || r.FreshSprays != 0 {
		t.Fatalf("recycled=%d fresh=%d, want 1/0", r.RecycledSprays, r.FreshSprays)
	}
	recycled, _ := r.SprayCounts()
	if recycled[2] != 1 {
		t.Fatal("per-path recycled counter not bumped")
	}
}

func TestRepsFreshRoundRobinWhenEmpty(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	r := NewReps(nw, 0)
	f := mkFlow(1, 0, 2, nw)
	seen := make(map[int]int)
	for i := 0; i < 8; i++ {
		seen[r.SelectPath(f)]++
	}
	if r.FreshSprays != 8 || r.RecycledSprays != 0 {
		t.Fatalf("fresh=%d recycled=%d, want 8/0", r.FreshSprays, r.RecycledSprays)
	}
	for p := 0; p < 4; p++ {
		if seen[p] != 2 {
			t.Fatalf("path %d sprayed %d/8 times; fresh fallback must round-robin", p, seen[p])
		}
	}
}

func TestRepsEvictsOnCongestionAndLoss(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	r := NewReps(nw, 0)
	f := mkFlow(1, 0, 2, nw)

	r.OnAck(f, transport.AckEvent{Path: 1, NewlyAcked: 1000})
	r.OnAck(f, transport.AckEvent{Path: 1, ECE: true}) // ECN echo purges path 1
	if r.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 after ECE", r.Evictions)
	}
	r.OnAck(f, transport.AckEvent{Path: 3, NewlyAcked: 1000})
	r.OnTimeout(f, 3) // RTO purges path 3
	if r.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 after RTO", r.Evictions)
	}
	r.OnAck(f, transport.AckEvent{Path: 0, NewlyAcked: 1000})
	r.OnRetransmit(f, 0) // fast retransmit purges path 0
	if r.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3 after fast retransmit", r.Evictions)
	}
	if r.CachedEntropies() != 0 {
		t.Fatalf("%d stale entropies survive eviction", r.CachedEntropies())
	}
	// Dup ACKs must not recycle: the delivery they signal is out of order.
	r.OnAck(f, transport.AckEvent{Path: 2, Dup: true})
	if r.CachedEntropies() != 0 {
		t.Fatal("dup ACK recycled an entropy")
	}
}

func TestRepsSkipsWithdrawnPaths(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	r := NewReps(nw, 0)
	f := mkFlow(1, 0, 2, nw)
	r.OnAck(f, transport.AckEvent{Path: 2, NewlyAcked: 1000})
	nw.SetFabricLink(0, 2, 0) // routing withdraws spine 2
	p := r.SelectPath(f)
	if p == 2 {
		t.Fatal("recycled an entropy onto a withdrawn path")
	}
	if r.StaleSkips != 1 || r.FreshSprays != 1 {
		t.Fatalf("staleSkips=%d fresh=%d, want 1/1", r.StaleSkips, r.FreshSprays)
	}
}

// FuzzEntropyCache drives the ring buffer against a plain-slice model.
// Invariants: Len never exceeds Cap, Pop yields exactly the model's FIFO
// order (with oldest-overwrite on full Put), and Evict removes precisely the
// model's matching entries while preserving survivor order.
func FuzzEntropyCache(f *testing.F) {
	f.Add(3, []byte{0, 1, 0, 2, 1, 0, 3, 2, 1})
	f.Add(1, []byte{0, 0, 0, 1, 1})
	f.Add(8, []byte{0, 5, 0, 5, 2, 5, 1, 0, 5, 2, 5, 1, 1})
	f.Fuzz(func(t *testing.T, capacity int, ops []byte) {
		if capacity < 0 || capacity > 64 {
			return
		}
		c := NewEntropyCache(capacity)
		bound := c.Cap()
		var model []int
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%3, int(ops[i+1]%8)
			switch op {
			case 0: // Put
				c.Put(arg)
				model = append(model, arg)
				if len(model) > bound {
					model = model[1:] // oldest overwritten
				}
			case 1: // Pop
				got, ok := c.Pop()
				if ok != (len(model) > 0) {
					t.Fatalf("Pop ok=%v with model len %d", ok, len(model))
				}
				if ok {
					if got != model[0] {
						t.Fatalf("Pop = %d, model head %d", got, model[0])
					}
					model = model[1:]
				}
			case 2: // Evict
				removed := c.Evict(arg)
				kept := model[:0]
				want := 0
				for _, v := range model {
					if v == arg {
						want++
					} else {
						kept = append(kept, v)
					}
				}
				model = kept
				if removed != want {
					t.Fatalf("Evict(%d) removed %d, model says %d", arg, removed, want)
				}
			}
			if c.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", c.Len(), len(model))
			}
			if c.Len() > bound {
				t.Fatalf("Len %d exceeds bound %d", c.Len(), bound)
			}
		}
		// Drain: remaining contents must equal the model exactly.
		for _, want := range model {
			got, ok := c.Pop()
			if !ok || got != want {
				t.Fatalf("drain Pop = %d,%v, want %d", got, ok, want)
			}
		}
		if _, ok := c.Pop(); ok {
			t.Fatal("cache not empty after drain")
		}
	})
}
