package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/transport"
)

// TestSpanLifecycle drives a flow through place → move → done and checks
// the resulting residency spans.
func TestSpanLifecycle(t *testing.T) {
	rec := &Recorder{}
	rec.noteStart(0, 1, 100_000)
	rec.notePath(10, 1, 3)
	rec.noteAck(1000, 1, transport.AckEvent{NewlyAcked: 1460, QueueNs: 50})
	rec.noteAck(2000, 1, transport.AckEvent{NewlyAcked: 1460, QueueNs: 70, ECE: true})
	rec.notePath(5000, 1, 1)
	rec.noteAck(6000, 1, transport.AckEvent{NewlyAcked: 1460})
	rec.noteDone(9000, 1, 100_000)

	spans := rec.SpansFor(1)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	first, second := spans[0], spans[1]
	if first.Path != 3 || first.Start != 10 || first.End != 5000 || first.Final {
		t.Fatalf("first span = %+v", first)
	}
	if first.Bytes != 2920 || first.QueueNs != 120 || first.EcnMarks != 1 {
		t.Fatalf("first span payload = %+v", first)
	}
	if first.FirstAck != 1000 {
		t.Fatalf("first span FirstAck = %d", first.FirstAck)
	}
	if second.Path != 1 || second.Start != 5000 || second.End != 9000 || !second.Final {
		t.Fatalf("second span = %+v", second)
	}
	if second.FirstAck != 6000 || second.Bytes != 1460 {
		t.Fatalf("second span payload = %+v", second)
	}
}

// TestSpanStallAccounting checks that RTO fires charge the idle gap since
// the last cumulative-ACK progress to the open span.
func TestSpanStallAccounting(t *testing.T) {
	rec := &Recorder{}
	rec.noteStart(0, 1, 100_000)
	rec.notePath(0, 1, 0)
	rec.noteAck(1000, 1, transport.AckEvent{NewlyAcked: 1460})
	rec.noteTimeout(11_000, 1, 0) // 10 µs since last progress
	rec.noteTimeout(31_000, 1, 0) // 20 µs more (backoff doubled)
	rec.noteAck(32_000, 1, transport.AckEvent{NewlyAcked: 1460})
	rec.noteDone(33_000, 1, 100_000)

	sp := rec.SpansFor(1)[0]
	if sp.Timeouts != 2 || sp.StallNs != 30_000 {
		t.Fatalf("span = %+v, want 2 timeouts / 30µs stall", sp)
	}
	evs := rec.For(1)
	var stalls []sim.Time
	for _, e := range evs {
		if e.Kind == Timeout {
			stalls = append(stalls, e.Stall)
		}
	}
	if !reflect.DeepEqual(stalls, []sim.Time{10_000, 20_000}) {
		t.Fatalf("rto event stalls = %v", stalls)
	}
}

// TestCloseOpenSpans checks horizon-closing: mid-stall flows are charged the
// trailing gap, healthy in-flight flows are not.
func TestCloseOpenSpans(t *testing.T) {
	rec := &Recorder{}
	// Flow 1: stalled since its RTO at t=2000.
	rec.noteStart(0, 1, 1000)
	rec.notePath(0, 1, 0)
	rec.noteTimeout(2000, 1, 0)
	// Flow 2: healthy, acked recently.
	rec.noteStart(0, 2, 1000)
	rec.notePath(0, 2, 1)
	rec.noteAck(9000, 2, transport.AckEvent{NewlyAcked: 500})

	rec.CloseOpenSpans(10_000)
	s1 := rec.SpansFor(1)[0]
	s2 := rec.SpansFor(2)[0]
	if s1.End != 10_000 || s1.StallNs != 2000+8000 || s1.Final {
		t.Fatalf("stalled span = %+v", s1)
	}
	if s2.End != 10_000 || s2.StallNs != 0 || s2.Final {
		t.Fatalf("healthy span = %+v", s2)
	}
	// Idempotent: nothing left open.
	rec.CloseOpenSpans(20_000)
	if rec.SpansFor(1)[0].End != 10_000 {
		t.Fatal("CloseOpenSpans not idempotent")
	}
}

// TestSpanDropCounter checks NoteDrop/NoteMark event emission and the span
// drop counter.
func TestSpanDropCounter(t *testing.T) {
	rec := &Recorder{}
	rec.noteStart(0, 1, 1000)
	rec.notePath(0, 1, 2)
	rec.NoteDrop(500, 1, 2)
	rec.NoteMark(600, 1, 2)
	if rec.Count(Drop) != 1 || rec.Count(ECNMark) != 1 {
		t.Fatal("drop/mark events not recorded")
	}
	if sp := rec.SpansFor(1)[0]; sp.Drops != 1 {
		t.Fatalf("span drops = %d", sp.Drops)
	}
}

// TestJSONLRoundTrip writes a fully populated trace and reads it back.
func TestJSONLRoundTrip(t *testing.T) {
	rec := &Recorder{MaxEvents: 3}
	rec.Meta = Meta{Schema: SchemaV2, Scheme: "hermes", Load: 0.5, Seed: 7,
		BaseRTTNs: 20_000, HostRateBps: 10_000_000_000}
	rec.noteStart(0, 1, 5000)
	rec.notePath(0, 1, 0)
	rec.noteAck(1000, 1, transport.AckEvent{NewlyAcked: 5000, QueueNs: 42})
	rec.noteDone(1000, 1, 5000) // event dropped by cap, span still closes
	rec.FlowHops = []FlowHops{{Flow: 1, DataPkts: 4, QueueNs: 42, SerNs: 10,
		HopQueueNs: [net.MaxHops]int64{42, 0, 0, 0},
		HopPkts:    [net.MaxHops]uint64{4, 4, 4, 4}}}
	rec.Verdicts = []Verdict{{At: 900, Host: 0, DstLeaf: 1, Path: 2, Reason: "blackhole"}}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != rec.Meta {
		t.Fatalf("meta round-trip: %+v != %+v", got.Meta, rec.Meta)
	}
	if !reflect.DeepEqual(got.Events, rec.Events) {
		t.Fatalf("events round-trip:\n%+v\n%+v", got.Events, rec.Events)
	}
	if !reflect.DeepEqual(got.Spans, rec.Spans) {
		t.Fatalf("spans round-trip:\n%+v\n%+v", got.Spans, rec.Spans)
	}
	if !reflect.DeepEqual(got.FlowHops, rec.FlowHops) {
		t.Fatalf("hops round-trip:\n%+v\n%+v", got.FlowHops, rec.FlowHops)
	}
	if !reflect.DeepEqual(got.Verdicts, rec.Verdicts) {
		t.Fatalf("verdicts round-trip:\n%+v\n%+v", got.Verdicts, rec.Verdicts)
	}
	if got.Dropped != rec.Dropped {
		t.Fatalf("dropped round-trip: %d != %d", got.Dropped, rec.Dropped)
	}
}

// TestAnnotateFromAudit checks span↔audit correlation and verdict lifting.
func TestAnnotateFromAudit(t *testing.T) {
	rec := &Recorder{}
	rec.noteStart(0, 1, 1000)
	rec.notePath(0, 1, 2)
	rec.notePath(5000, 1, 3)
	rec.noteDone(9000, 1, 1000)

	rec.AnnotateFromAudit([]telemetry.AuditEntry{
		{At: 0, Kind: telemetry.AuditPlace, Reason: telemetry.ReasonFresh,
			Flow: 1, FromPath: -1, ToPath: 2},
		{At: 4000, Kind: telemetry.AuditVerdict, Reason: telemetry.ReasonBlackhole,
			Host: 0, DstLeaf: 1, FromPath: 2, ToPath: -1},
		{At: 5000, Kind: telemetry.AuditPlace, Reason: telemetry.ReasonFailure,
			Flow: 1, FromPath: 2, ToPath: 3},
	})
	spans := rec.SpansFor(1)
	if spans[0].Reason != telemetry.ReasonFresh {
		t.Fatalf("first span reason = %q", spans[0].Reason)
	}
	if spans[1].Reason != telemetry.ReasonFailure {
		t.Fatalf("second span reason = %q", spans[1].Reason)
	}
	if len(rec.Verdicts) != 1 || rec.Verdicts[0].Reason != telemetry.ReasonBlackhole ||
		rec.Verdicts[0].Path != 2 {
		t.Fatalf("verdicts = %+v", rec.Verdicts)
	}
}

// TestPerfettoExport validates the Chrome trace-event JSON shape.
func TestPerfettoExport(t *testing.T) {
	rec := &Recorder{}
	rec.Meta = Meta{Schema: SchemaV2, Scheme: "hermes"}
	rec.noteStart(0, 1, 64_000)
	rec.notePath(0, 1, 0)
	rec.noteTimeout(3000, 1, 0)
	rec.notePath(3000, 1, 1)
	rec.noteAck(4000, 1, transport.AckEvent{NewlyAcked: 64_000})
	rec.noteDone(4000, 1, 64_000)
	rec.Verdicts = []Verdict{{At: 2900, Host: 0, DstLeaf: 1, Path: 0, Reason: "blackhole"}}

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	var slices, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
			if e["dur"] == nil || e["ts"] == nil {
				t.Fatalf("slice without ts/dur: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if slices != 2 {
		t.Fatalf("%d slices, want 2 spans", slices)
	}
	if instants != 2 { // one rto + one verdict
		t.Fatalf("%d instants, want 2", instants)
	}
	if meta < 3 { // process_name + thread_name + monitor process
		t.Fatalf("%d metadata records", meta)
	}
	if !strings.Contains(buf.String(), `"verdict: blackhole"`) {
		t.Fatal("verdict instant missing")
	}
}

// TestAttribution checks the four-way FCT decomposition and its clamping
// invariant on a hand-built trace.
func TestAttribution(t *testing.T) {
	rec := &Recorder{}
	rec.Meta = Meta{Schema: SchemaV2, BaseRTTNs: 10_000, HostRateBps: 8_000_000_000}
	// Flow 1: 8 KB (base = 10µs RTT + 8µs ser = 18µs), one RTO stall of
	// 40µs, one move with first ack 25µs after the move (reroute gap 15µs),
	// finishing at t=100µs.
	rec.noteStart(0, 1, 8000)
	rec.notePath(0, 1, 0)
	rec.noteAck(5_000, 1, transport.AckEvent{NewlyAcked: 4000, QueueNs: 2_000})
	rec.noteTimeout(45_000, 1, 0)
	rec.notePath(45_000, 1, 1)
	rec.noteAck(70_000, 1, transport.AckEvent{NewlyAcked: 2000})
	rec.noteAck(100_000, 1, transport.AckEvent{NewlyAcked: 2000})
	rec.noteDone(100_000, 1, 8000)

	flows := rec.Attribution()
	if len(flows) != 1 {
		t.Fatalf("%d breakdowns", len(flows))
	}
	b := flows[0]
	if !b.Finished || b.FCT != 100_000 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.StallNs != 40_000 {
		t.Fatalf("stall = %d, want 40µs", b.StallNs)
	}
	if b.BaseNs != 18_000 {
		t.Fatalf("base = %d, want 18µs", b.BaseNs)
	}
	if b.RerouteNs != 15_000 {
		t.Fatalf("reroute = %d, want 15µs", b.RerouteNs)
	}
	if sum := b.BaseNs + b.QueueNs + b.StallNs + b.RerouteNs; sum != b.FCT {
		t.Fatalf("components sum to %d, FCT %d", sum, b.FCT)
	}
	if b.Moves != 1 || b.Timeouts != 1 || b.SumPktQueueNs != 2_000 {
		t.Fatalf("counters = %+v", b)
	}
	if !reflect.DeepEqual(b.Paths, []int{0, 1}) {
		t.Fatalf("paths = %v", b.Paths)
	}
}

// TestAttributionClamping: a stall larger than the FCT cannot push any
// component negative.
func TestAttributionClamping(t *testing.T) {
	rec := &Recorder{}
	rec.Meta = Meta{Schema: SchemaV2, BaseRTTNs: 1_000_000, HostRateBps: 1}
	rec.noteStart(0, 1, 1000)
	rec.notePath(0, 1, 0)
	rec.noteDone(5000, 1, 1000)
	b := rec.Attribution()[0]
	if b.FCT != 5000 || b.BaseNs != 5000 || b.QueueNs != 0 || b.StallNs != 0 {
		t.Fatalf("clamped breakdown = %+v", b)
	}
	if sum := b.BaseNs + b.QueueNs + b.StallNs + b.RerouteNs; sum != b.FCT {
		t.Fatalf("components sum to %d, FCT %d", sum, b.FCT)
	}
}

// TestTailAttribution checks percentile selection and share weighting.
func TestTailAttribution(t *testing.T) {
	flows := make([]FlowBreakdown, 100)
	for i := range flows {
		fct := sim.Time((i + 1) * 1000)
		flows[i] = FlowBreakdown{Flow: uint64(i), FCT: fct, QueueNs: fct}
	}
	// Flow 99 (the p99 tail) is all stall instead.
	flows[99].QueueNs = 0
	flows[99].StallNs = flows[99].FCT

	ts := TailAttribution(flows, 0.99)
	if ts.N != 1 || ts.CutoffNs != 100_000 {
		t.Fatalf("tail = %+v", ts)
	}
	if ts.StallShare != 1 || ts.QueueShare != 0 {
		t.Fatalf("shares = %+v", ts)
	}
	all := TailAttribution(flows, 0)
	if all.N != 100 || all.CutoffNs != 0 {
		t.Fatalf("full aggregate = %+v", all)
	}
	if all.StallShare <= 0 || all.QueueShare <= 0.9 {
		t.Fatalf("full shares = %+v", all)
	}
	if e := TailAttribution(nil, 0.99); e.N != 0 {
		t.Fatal("empty input not handled")
	}
}

// TestSlowestFlows checks ordering and truncation.
func TestSlowestFlows(t *testing.T) {
	flows := []FlowBreakdown{
		{Flow: 1, FCT: 10}, {Flow: 2, FCT: 30}, {Flow: 3, FCT: 20}, {Flow: 4, FCT: 30},
	}
	top := SlowestFlows(flows, 3)
	if len(top) != 3 || top[0].Flow != 2 || top[1].Flow != 4 || top[2].Flow != 3 {
		t.Fatalf("top = %+v", top)
	}
	if flows[0].Flow != 1 {
		t.Fatal("input mutated")
	}
}

// TestSpanCapIndependent: the MaxEvents cap also bounds spans, counted
// separately, with the marker carrying both.
func TestSpanCapIndependent(t *testing.T) {
	rec := &Recorder{MaxEvents: 2}
	for f := uint64(1); f <= 4; f++ {
		rec.noteStart(sim.Time(f), f, 100)
		rec.notePath(sim.Time(f), f, 0)
	}
	if len(rec.Spans) != 2 || rec.DroppedSpans != 2 {
		t.Fatalf("spans/droppedSpans = %d/%d", len(rec.Spans), rec.DroppedSpans)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped_spans":2`) {
		t.Fatal("span truncation not marked")
	}
}
