package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func tracedStack(t *testing.T) (*sim.Engine, *net.Network, *transport.Transport, *Recorder) {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return Wrap(&lb.ECMP{Net: nw}, rec, eng)
	})
	return eng, nw, tr, rec
}

func TestTraceLifecycle(t *testing.T) {
	eng, _, tr, rec := tracedStack(t)
	f := tr.StartFlow(0, 2, 500_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	events := rec.For(f.ID)
	if len(events) < 3 {
		t.Fatalf("only %d events traced", len(events))
	}
	if events[0].Kind != FlowStart || events[0].Size != 500_000 {
		t.Fatalf("first event = %+v, want start", events[0])
	}
	if events[1].Kind != Placement {
		t.Fatalf("second event = %+v, want placement", events[1])
	}
	if events[len(events)-1].Kind != FlowDone {
		t.Fatalf("last event = %+v, want done", events[len(events)-1])
	}
	// Timestamps are monotone.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("trace timestamps not monotone")
		}
	}
	// ECMP never moves: exactly one placement, zero moves.
	if rec.Count(PathChange) != 0 {
		t.Fatal("ECMP flow changed paths")
	}
	if got := rec.PathVisits(f.ID); len(got) != 1 {
		t.Fatalf("path visits = %v, want exactly one", got)
	}
}

func TestTraceRecordsTimeoutsAndRetransmits(t *testing.T) {
	eng, nw, tr, rec := tracedStack(t)
	dropEarlyData := func(p *net.Packet) bool {
		return eng.Now() < 30*sim.Millisecond && p.Kind == net.Data
	}
	nw.Spines[0].AddDropFn(dropEarlyData)
	nw.Spines[1].AddDropFn(dropEarlyData)
	f := tr.StartFlow(0, 2, 200_000)
	eng.Run(sim.Second)
	if !f.Done {
		t.Fatal("flow unfinished")
	}
	if rec.Count(Timeout) == 0 {
		t.Fatal("no RTO events traced despite a 30 ms blackout")
	}
}

func TestTraceJSONL(t *testing.T) {
	eng, _, tr, rec := tracedStack(t)
	tr.StartFlow(0, 2, 10_000)
	eng.Run(sim.Second)
	var sb strings.Builder
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if want := len(rec.Events) + len(rec.Spans); len(lines) != want {
		t.Fatalf("%d JSONL lines for %d events + %d spans",
			len(lines), len(rec.Events), len(rec.Spans))
	}
	if !strings.Contains(lines[0], `"kind":"start"`) {
		t.Fatalf("unexpected first line: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"kind":"span"`) {
		t.Fatalf("unexpected last line: %s", lines[len(lines)-1])
	}
}

func TestTraceMaxEvents(t *testing.T) {
	eng, _, tr, rec := tracedStack(t)
	rec.MaxEvents = 2
	tr.StartFlow(0, 2, 1_000_000)
	eng.Run(sim.Second)
	if len(rec.Events) != 2 {
		t.Fatalf("recorded %d events with MaxEvents=2", len(rec.Events))
	}
}

func TestSummarize(t *testing.T) {
	rec := &Recorder{}
	rec.add(Event{At: 0, Flow: 1, Kind: FlowStart, Size: 100})
	rec.add(Event{At: 1, Flow: 1, Kind: Placement, Path: 0})
	rec.add(Event{At: 2, Flow: 1, Kind: PathChange, Path: 1})
	rec.add(Event{At: 3, Flow: 1, Kind: PathChange, Path: 0})
	rec.add(Event{At: 4, Flow: 1, Kind: Retransmit, Path: 0})
	rec.add(Event{At: 10, Flow: 1, Kind: FlowDone, Size: 100})
	rec.add(Event{At: 5, Flow: 2, Kind: FlowStart, Size: 50})
	rec.add(Event{At: 6, Flow: 2, Kind: Placement, Path: 2})
	rec.add(Event{At: 7, Flow: 2, Kind: Timeout, Path: 2})
	s := rec.Summarize()
	if s.Flows != 2 || s.Completed != 1 {
		t.Fatalf("flows/completed = %d/%d", s.Flows, s.Completed)
	}
	if s.PathChanges != 2 || s.MovesPerFlow != 2 {
		t.Fatalf("moves = %d (%.1f/flow)", s.PathChanges, s.MovesPerFlow)
	}
	if s.Retransmits != 1 || s.Timeouts != 1 {
		t.Fatal("loss counters wrong")
	}
	if s.MeanLifetime != 10 {
		t.Fatalf("mean lifetime = %d", s.MeanLifetime)
	}
	if s.MaxMovesFlow != 1 || s.MaxMovesCount != 2 {
		t.Fatalf("max-moves = flow %d (%d)", s.MaxMovesFlow, s.MaxMovesCount)
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	eng, _, tr, rec := tracedStack(t)
	for i := 0; i < 10; i++ {
		tr.StartFlow(0, 2, 50_000)
	}
	eng.Run(sim.Second)
	s := rec.Summarize()
	if s.Flows != 10 || s.Completed != 10 {
		t.Fatalf("flows/completed = %d/%d", s.Flows, s.Completed)
	}
	if s.MeanLifetime <= 0 {
		t.Fatal("mean lifetime not computed")
	}
	// ECMP: exactly one placement per flow, zero moves.
	if s.Placements != 10 || s.PathChanges != 0 {
		t.Fatalf("placements/moves = %d/%d", s.Placements, s.PathChanges)
	}
}

func TestMaxEventsCountsDropped(t *testing.T) {
	rec := &Recorder{MaxEvents: 3}
	for i := 0; i < 7; i++ {
		rec.add(Event{At: sim.Time(i), Flow: 1, Kind: Retransmit})
	}
	if len(rec.Events) != 3 {
		t.Fatalf("kept %d events, want 3", len(rec.Events))
	}
	if rec.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4", rec.Dropped)
	}
	if s := rec.Summarize(); s.Dropped != 4 {
		t.Fatalf("Summary.Dropped = %d, want 4", s.Dropped)
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 3 events + truncation marker", len(lines))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"truncated"`) || !strings.Contains(last, `"dropped":4`) {
		t.Fatalf("missing truncation marker, got %q", last)
	}
}

func TestUncappedRecorderNeverDrops(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 100; i++ {
		rec.add(Event{At: sim.Time(i), Flow: 1, Kind: Retransmit})
	}
	if len(rec.Events) != 100 || rec.Dropped != 0 {
		t.Fatalf("events/dropped = %d/%d, want 100/0", len(rec.Events), rec.Dropped)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "truncated") {
		t.Fatal("truncation marker emitted for a complete trace")
	}
}
