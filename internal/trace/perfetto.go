package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the trace opens in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Layout:
//
//   - process "flows": one thread (track) per flow; each path-residency span
//     is a complete slice named after its path, with bytes/retx/stall/queue
//     in args; retx/rto/ecn/drop events are instants on the flow's track.
//   - process "hermes monitor": one thread per host; each failed-path
//     verdict is an instant.
//
// Timestamps are microseconds of simulation time (the trace-event format's
// unit); sub-microsecond precision survives as fractions.

//   - process "timeseries": one counter track (ph "C") per flight-recorder
//     series with at least one nonzero sample — queue depths, utilization,
//     Hermes path census, transport aggregates.
//   - process "hermes paths": one thread per source leaf; each path-state
//     transition is an instant named from->to with dst/path/cause in args.

const (
	pidFlows       = 1
	pidMonitor     = 2
	pidTimeseries  = 3
	pidTransitions = 4
)

type pfEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type pfDoc struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WritePerfetto emits the trace as Chrome trace-event JSON.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	doc := pfDoc{DisplayTimeUnit: "ns"}
	add := func(e pfEvent) { doc.TraceEvents = append(doc.TraceEvents, e) }

	procName := "flows"
	if r.Meta.Scheme != "" {
		procName = "flows (" + r.Meta.Scheme + ")"
	}
	add(pfEvent{Name: "process_name", Ph: "M", Pid: pidFlows,
		Args: map[string]any{"name": procName}})

	// Track names: "flow N (size)" where the start event is known.
	sizes := map[uint64]int64{}
	for _, e := range r.Events {
		if e.Kind == FlowStart {
			sizes[e.Flow] = e.Size
		}
	}
	flows := map[uint64]bool{}
	for _, s := range r.Spans {
		flows[s.Flow] = true
	}
	for _, e := range r.Events {
		flows[e.Flow] = true
	}
	ids := make([]uint64, 0, len(flows))
	for f := range flows {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		name := fmt.Sprintf("flow %d", f)
		if sz, ok := sizes[f]; ok {
			name = fmt.Sprintf("flow %d (%d B)", f, sz)
		}
		add(pfEvent{Name: "thread_name", Ph: "M", Pid: pidFlows, Tid: f,
			Args: map[string]any{"name": name}})
	}

	for _, s := range r.Spans {
		dur := us(int64(s.End - s.Start))
		args := map[string]any{
			"path":        s.Path,
			"bytes_acked": s.Bytes,
		}
		if s.Retx > 0 {
			args["retx"] = s.Retx
		}
		if s.Timeouts > 0 {
			args["rto"] = s.Timeouts
			args["stall_ns"] = int64(s.StallNs)
		}
		if s.EcnMarks > 0 {
			args["ecn_marks"] = s.EcnMarks
		}
		if s.Drops > 0 {
			args["drops"] = s.Drops
		}
		if s.QueueNs > 0 {
			args["queue_ns"] = int64(s.QueueNs)
		}
		if s.Reason != "" {
			args["reason"] = s.Reason
		}
		add(pfEvent{
			Name: fmt.Sprintf("path %d", s.Path), Ph: "X", Cat: "span",
			Ts: us(int64(s.Start)), Dur: &dur, Pid: pidFlows, Tid: s.Flow,
			Args: args,
		})
	}

	for _, e := range r.Events {
		switch e.Kind {
		case Retransmit, Timeout, ECNMark, Drop:
			args := map[string]any{"path": e.Path}
			if e.Stall > 0 {
				args["stall_ns"] = int64(e.Stall)
			}
			add(pfEvent{Name: string(e.Kind), Ph: "i", Cat: "signal", S: "t",
				Ts: us(int64(e.At)), Pid: pidFlows, Tid: e.Flow, Args: args})
		}
	}

	if len(r.Verdicts) > 0 {
		add(pfEvent{Name: "process_name", Ph: "M", Pid: pidMonitor,
			Args: map[string]any{"name": "hermes monitor"}})
		named := map[uint64]bool{}
		for _, v := range r.Verdicts {
			tid := uint64(v.Host)
			if !named[tid] {
				named[tid] = true
				add(pfEvent{Name: "thread_name", Ph: "M", Pid: pidMonitor, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("host %d", v.Host)}})
			}
			add(pfEvent{
				Name: fmt.Sprintf("verdict: %s", v.Reason), Ph: "i", Cat: "verdict",
				S: "t", Ts: us(int64(v.At)), Pid: pidMonitor, Tid: tid,
				Args: map[string]any{"path": v.Path, "dst_leaf": v.DstLeaf},
			})
		}
	}

	r.addFlightEvents(add)

	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: perfetto: %w", err)
	}
	return nil
}

// addFlightEvents renders the flight recorder (when attached) as counter
// tracks plus path-state transition instants.
func (r *Recorder) addFlightEvents(add func(pfEvent)) {
	fl := r.Flight
	if fl == nil {
		return
	}
	times := fl.Times()
	if len(times) > 0 {
		named := false
		for _, name := range fl.Names() {
			vals := fl.Series(name)
			nonzero := false
			for _, v := range vals {
				if v != 0 {
					nonzero = true
					break
				}
			}
			if !nonzero {
				continue // all-zero tracks only bloat the trace
			}
			if !named {
				named = true
				add(pfEvent{Name: "process_name", Ph: "M", Pid: pidTimeseries,
					Args: map[string]any{"name": "timeseries"}})
			}
			for i, v := range vals {
				add(pfEvent{Name: name, Ph: "C", Cat: "timeseries",
					Ts: us(times[i]), Pid: pidTimeseries,
					Args: map[string]any{"value": v}})
			}
		}
	}

	trs := fl.Transitions()
	if len(trs) == 0 {
		return
	}
	add(pfEvent{Name: "process_name", Ph: "M", Pid: pidTransitions,
		Args: map[string]any{"name": "hermes paths"}})
	named := map[uint64]bool{}
	for _, t := range trs {
		tid := uint64(t.Leaf)
		if !named[tid] {
			named[tid] = true
			add(pfEvent{Name: "thread_name", Ph: "M", Pid: pidTransitions, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("leaf %d", t.Leaf)}})
		}
		add(pfEvent{
			Name: fmt.Sprintf("%s->%s", t.From, t.To), Ph: "i", Cat: "path-state",
			S: "t", Ts: us(t.AtNs), Pid: pidTransitions, Tid: tid,
			Args: map[string]any{"dst_leaf": t.Dst, "path": t.Path, "cause": t.Cause},
		})
	}
}
