package trace

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// SchemaV2 identifies the span-bearing trace format. v1 traces (flat event
// lists with no meta line) are still readable; they simply lack spans and
// calibration constants, so attribution degrades to event counting.
const SchemaV2 = "hermes-trace/v2"

// Meta is the trace header: which run produced it and the calibration
// constants attribution needs. All times are nanoseconds, rates bits/s.
type Meta struct {
	Schema   string  `json:"schema"`
	Scheme   string  `json:"scheme,omitempty"`
	Workload string  `json:"workload,omitempty"`
	Load     float64 `json:"load,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Failure  string  `json:"failure,omitempty"`
	// BaseRTTNs is the unloaded round-trip across the fabric; the floor any
	// FCT decomposition subtracts before blaming queues.
	BaseRTTNs int64 `json:"base_rtt_ns,omitempty"`
	// HostRateBps is the access-link rate, fixing the ideal serialization
	// time of a flow of a given size.
	HostRateBps   int64 `json:"host_rate_bps,omitempty"`
	SimDurationNs int64 `json:"sim_duration_ns,omitempty"`
}

// FlowHops is the fabric's delay decomposition for one flow: where its
// packets spent time, hop by hop. Hop 0 is the host->leaf access link, hop
// net.MaxHops-1 the final leaf->host link. This is ground truth measured at
// every output port (net.DelayAccount), complementing the span view built
// from ACK echoes.
type FlowHops struct {
	Flow       uint64              `json:"flow"`
	DataPkts   uint64              `json:"data_pkts"`
	RetxPkts   uint64              `json:"retx_pkts,omitempty"`
	MarkedPkts uint64              `json:"marked_pkts,omitempty"`
	QueueNs    int64               `json:"queue_ns"`
	SerNs      int64               `json:"ser_ns"`
	PropNs     int64               `json:"prop_ns"`
	HopQueueNs [net.MaxHops]int64  `json:"hop_queue_ns"`
	HopPkts    [net.MaxHops]uint64 `json:"hop_pkts"`
	AckPkts    uint64              `json:"ack_pkts,omitempty"`
	AckQueueNs int64               `json:"ack_queue_ns,omitempty"`
}

// FlowHopsFrom converts one fabric aggregate into its trace record.
func FlowHopsFrom(fd *net.FlowDelay) FlowHops {
	fh := FlowHops{
		Flow:       fd.Flow,
		DataPkts:   fd.DataPkts,
		RetxPkts:   fd.RetxPkts,
		MarkedPkts: fd.MarkedPkts,
		QueueNs:    int64(fd.QueueNs),
		SerNs:      int64(fd.SerNs),
		PropNs:     int64(fd.PropNs),
		AckPkts:    fd.AckPkts,
		AckQueueNs: int64(fd.AckQueueNs),
	}
	for i := 0; i < net.MaxHops; i++ {
		fh.HopQueueNs[i] = int64(fd.HopQueueNs[i])
		fh.HopPkts[i] = fd.HopPkts[i]
	}
	return fh
}

// SetFlowHops stores the fabric's per-flow aggregates (sorted by flow ID by
// DelayAccount.Flows, keeping exports deterministic).
func (r *Recorder) SetFlowHops(acct *net.DelayAccount) {
	if acct == nil {
		return
	}
	flows := acct.Flows()
	r.FlowHops = make([]FlowHops, 0, len(flows))
	for _, fd := range flows {
		r.FlowHops = append(r.FlowHops, FlowHopsFrom(fd))
	}
}

// Verdict is a Hermes monitor path-condemnation, lifted from the audit log
// so trace consumers see failure detections on the same timeline as flow
// spans.
type Verdict struct {
	At      sim.Time `json:"at_ns"`
	Host    int      `json:"host"`
	DstLeaf int      `json:"dst_leaf"`
	Path    int      `json:"path"`
	Reason  string   `json:"reason"`
}

// AnnotateFromAudit correlates the recorder's spans with a Hermes audit log:
// each placement/reroute entry stamps its Algorithm-1 reason onto the span
// it opened (matched by flow, target path and time order), and each verdict
// becomes a Verdict record. Safe to call with entries from any scheme —
// non-Hermes logs are empty.
func (r *Recorder) AnnotateFromAudit(entries []telemetry.AuditEntry) {
	byFlow := map[uint64][]int{}
	for i, sp := range r.Spans {
		byFlow[sp.Flow] = append(byFlow[sp.Flow], i)
	}
	for _, e := range entries {
		switch e.Kind {
		case telemetry.AuditVerdict:
			r.Verdicts = append(r.Verdicts, Verdict{
				At: sim.Time(e.At), Host: e.Host, DstLeaf: e.DstLeaf,
				Path: e.FromPath, Reason: e.Reason,
			})
		case telemetry.AuditPlace, telemetry.AuditReroute:
			if e.Flow == 0 {
				continue
			}
			for _, idx := range byFlow[e.Flow] {
				sp := &r.Spans[idx]
				if sp.Reason == "" && sp.Path == e.ToPath && sp.Start >= sim.Time(e.At) {
					sp.Reason = e.Reason
					break
				}
			}
		}
	}
}
