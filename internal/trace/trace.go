// Package trace records per-flow load balancing timelines — placements,
// path changes, retransmissions, timeouts and completions — by decorating
// any transport.Balancer. Traces explain *why* a scheme produced its FCTs:
// e.g. counting how often CONGA's flowlets actually moved, or which paths a
// Hermes flow visited before a blackhole verdict.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Kind labels a trace event.
type Kind string

// Event kinds.
const (
	FlowStart  Kind = "start"
	Placement  Kind = "place" // first path assignment
	PathChange Kind = "move"  // subsequent path changes
	Retransmit Kind = "retx"  // fast retransmit
	Timeout    Kind = "rto"   // retransmission timeout
	FlowDone   Kind = "done"
)

// Event is one timeline entry.
type Event struct {
	At   sim.Time `json:"at_ns"`
	Flow uint64   `json:"flow"`
	Kind Kind     `json:"kind"`
	Path int      `json:"path"`
	// Size carries the flow size on start/done events.
	Size int64 `json:"size,omitempty"`
}

// Recorder accumulates events. The zero value is ready to use. It is not
// safe for concurrent use; the simulator is single-threaded.
type Recorder struct {
	Events []Event

	// MaxEvents bounds memory; once reached, further events only bump
	// Dropped (0 = unlimited).
	MaxEvents int
	// Dropped counts events discarded after the MaxEvents cap was hit, so a
	// truncated trace is distinguishable from a complete one.
	Dropped int
}

func (r *Recorder) add(e Event) {
	if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, e)
}

// For returns the events of one flow, in order.
func (r *Recorder) For(flow uint64) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Flow == flow {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of a kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteJSONL emits one JSON object per line. A truncated trace ends with a
// {"kind":"truncated","dropped":N} marker so consumers can tell the timeline
// is incomplete.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if r.Dropped > 0 {
		marker := struct {
			Kind    string `json:"kind"`
			Dropped int    `json:"dropped"`
		}{"truncated", r.Dropped}
		if err := enc.Encode(marker); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// PathVisits returns the distinct paths a flow used, in first-visit order.
func (r *Recorder) PathVisits(flow uint64) []int {
	var out []int
	seen := map[int]bool{}
	for _, e := range r.Events {
		if e.Flow != flow || (e.Kind != Placement && e.Kind != PathChange) {
			continue
		}
		if !seen[e.Path] {
			seen[e.Path] = true
			out = append(out, e.Path)
		}
	}
	return out
}

// Wrap decorates a balancer so that every decision and transport signal is
// recorded. eng supplies timestamps.
func Wrap(inner transport.Balancer, rec *Recorder, eng *sim.Engine) transport.Balancer {
	return &tracer{inner: inner, rec: rec, eng: eng, lastPath: map[uint64]int{}}
}

type tracer struct {
	inner    transport.Balancer
	rec      *Recorder
	eng      *sim.Engine
	lastPath map[uint64]int
}

func (t *tracer) Name() string { return t.inner.Name() }

func (t *tracer) SelectPath(f *transport.Flow) int {
	p := t.inner.SelectPath(f)
	last, seen := t.lastPath[f.ID]
	if !seen {
		t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: Placement, Path: p})
		t.lastPath[f.ID] = p
	} else if p != last {
		t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: PathChange, Path: p})
		t.lastPath[f.ID] = p
	}
	return p
}

func (t *tracer) OnSent(f *transport.Flow, path, bytes int) { t.inner.OnSent(f, path, bytes) }
func (t *tracer) OnAck(f *transport.Flow, ev transport.AckEvent) {
	t.inner.OnAck(f, ev)
}
func (t *tracer) OnRetransmit(f *transport.Flow, path int) {
	t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: Retransmit, Path: path})
	t.inner.OnRetransmit(f, path)
}
func (t *tracer) OnTimeout(f *transport.Flow, path int) {
	t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: Timeout, Path: path})
	t.inner.OnTimeout(f, path)
}
func (t *tracer) OnFlowStart(f *transport.Flow) {
	t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: FlowStart, Size: f.Size})
	t.inner.OnFlowStart(f)
}
func (t *tracer) OnFlowDone(f *transport.Flow) {
	t.rec.add(Event{At: t.eng.Now(), Flow: f.ID, Kind: FlowDone, Size: f.Size})
	delete(t.lastPath, f.ID)
	t.inner.OnFlowDone(f)
}

// Summary aggregates a recorder's events into per-scheme behavioural
// statistics: how often flows moved, how long they lived, how failures
// clustered. This is the quantitative companion to eyeballing JSONL.
type Summary struct {
	Flows       int
	Completed   int
	Placements  int
	PathChanges int
	Retransmits int
	Timeouts    int
	// Dropped mirrors Recorder.Dropped: events lost to the MaxEvents cap.
	Dropped int

	// MovesPerFlow is the mean number of path changes per completed flow.
	MovesPerFlow float64
	// MeanLifetime is the mean start-to-done duration of completed flows.
	MeanLifetime sim.Time
	// MaxMovesFlow identifies the most-rerouted flow and its move count.
	MaxMovesFlow  uint64
	MaxMovesCount int
}

// Summarize computes the Summary for everything recorded.
func (r *Recorder) Summarize() Summary {
	s := Summary{Dropped: r.Dropped}
	starts := map[uint64]sim.Time{}
	moves := map[uint64]int{}
	var lifetimes sim.Time
	for _, e := range r.Events {
		switch e.Kind {
		case FlowStart:
			s.Flows++
			starts[e.Flow] = e.At
		case Placement:
			s.Placements++
		case PathChange:
			s.PathChanges++
			moves[e.Flow]++
		case Retransmit:
			s.Retransmits++
		case Timeout:
			s.Timeouts++
		case FlowDone:
			s.Completed++
			if st, ok := starts[e.Flow]; ok {
				lifetimes += e.At - st
			}
		}
	}
	if s.Completed > 0 {
		s.MovesPerFlow = float64(s.PathChanges) / float64(s.Completed)
		s.MeanLifetime = lifetimes / sim.Time(s.Completed)
	}
	for f, m := range moves {
		if m > s.MaxMovesCount || (m == s.MaxMovesCount && f < s.MaxMovesFlow) {
			s.MaxMovesCount = m
			s.MaxMovesFlow = f
		}
	}
	return s
}
