// Package trace records per-flow load balancing timelines — placements,
// path changes, retransmissions, timeouts, ECN marks, drops and completions
// — by decorating any transport.Balancer, and aggregates them into
// path-residency spans: one span per placement→move interval annotated with
// bytes delivered, retransmissions, ECN marks and summed queue delay.
// Traces explain *why* a scheme produced its FCTs: e.g. counting how often
// CONGA's flowlets actually moved, which paths a Hermes flow visited before
// a blackhole verdict, or how much of a tail flow's completion time was RTO
// stall versus queueing (see Attribution).
package trace

import (
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/timeseries"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Kind labels a trace event.
type Kind string

// Event kinds.
const (
	FlowStart  Kind = "start"
	Placement  Kind = "place" // first path assignment
	PathChange Kind = "move"  // subsequent path changes
	Retransmit Kind = "retx"  // fast retransmit
	Timeout    Kind = "rto"   // retransmission timeout
	ECNMark    Kind = "ecn"   // the fabric ECN-marked a data packet
	Drop       Kind = "drop"  // the fabric dropped a data packet
	FlowDone   Kind = "done"
)

// Event is one timeline entry.
type Event struct {
	At   sim.Time `json:"at_ns"`
	Flow uint64   `json:"flow"`
	Kind Kind     `json:"kind"`
	Path int      `json:"path"`
	// Size carries the flow size on start/done events.
	Size int64 `json:"size,omitempty"`
	// Stall carries, on rto events, the idle time since the flow last made
	// cumulative-ACK progress — the stall the timeout ends.
	Stall sim.Time `json:"stall_ns,omitempty"`
}

// Span is one path-residency interval: the stretch of a flow's life between
// choosing a path and leaving it (or finishing). Spans carry the attribution
// payload the flat event list cannot: how much was delivered there, how much
// queueing the delivered packets saw, and how long the flow sat stalled.
type Span struct {
	Flow  uint64   `json:"flow"`
	Path  int      `json:"path"`
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`

	// Bytes is the payload newly acknowledged while on this path.
	Bytes int64 `json:"bytes_acked"`
	// FirstAck is when the first new byte was acknowledged on this path
	// (0 = none ever was — e.g. a blackholed placement).
	FirstAck sim.Time `json:"first_ack_ns,omitempty"`

	Retx     int `json:"retx,omitempty"`
	Timeouts int `json:"rto,omitempty"`
	// StallNs sums the idle gaps ended by this span's RTO fires (plus the
	// trailing gap for flows force-closed while stalled).
	StallNs sim.Time `json:"stall_ns,omitempty"`
	// EcnMarks counts delivered data packets whose ACK echoed CE.
	EcnMarks int `json:"ecn,omitempty"`
	// Drops counts fabric drops of this flow's packets during the span.
	Drops int `json:"drops,omitempty"`
	// QueueNs sums the forward-path queue delay echoed by every ACK received
	// during the span (a per-packet sum, not wall-clock time).
	QueueNs sim.Time `json:"queue_ns,omitempty"`

	// Reason is the audit-log reason the flow entered this path ("fresh",
	// "timeout", "failure", "congestion"); filled by AnnotateFromAudit for
	// Hermes runs, empty otherwise.
	Reason string `json:"reason,omitempty"`
	// Final marks the span that ended with flow completion; a last span
	// without Final belongs to a flow force-closed at the simulation horizon.
	Final bool `json:"final,omitempty"`
}

// flowState is the recorder's live bookkeeping for one open flow.
type flowState struct {
	span         int // index into Spans, -1 when none is open
	path         int
	placed       bool
	size         int64
	start        sim.Time
	lastProgress sim.Time
}

// Recorder accumulates events and spans. The zero value is ready to use. It
// is not safe for concurrent use; the simulator is single-threaded.
type Recorder struct {
	Events []Event
	Spans  []Span

	// MaxEvents bounds memory; once reached, further events (and spans,
	// independently) only bump the drop counters (0 = unlimited).
	MaxEvents int
	// Dropped counts events discarded after the MaxEvents cap was hit, so a
	// truncated trace is distinguishable from a complete one.
	Dropped int
	// DroppedSpans counts spans discarded for the same reason.
	DroppedSpans int

	// Meta identifies the run and carries the calibration constants the
	// attribution needs (base RTT, access-link rate). Filled by the run
	// harness; a zero Meta is omitted from exports.
	Meta Meta

	// FlowHops holds the fabric's per-flow per-hop delay aggregates
	// (SetFlowHops; net.DelayAccount is the source).
	FlowHops []FlowHops
	// Verdicts holds the Hermes monitor's failed-path verdicts
	// (AnnotateFromAudit).
	Verdicts []Verdict

	// Flight, when non-nil, is the run's time-series flight recorder; the
	// Perfetto export renders its series as counter tracks and its
	// path-state transitions as instants.
	Flight *timeseries.Recorder

	open map[uint64]*flowState
}

func (r *Recorder) add(e Event) {
	if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, e)
}

func (r *Recorder) state(flow uint64) *flowState {
	if r.open == nil {
		r.open = map[uint64]*flowState{}
	}
	st, ok := r.open[flow]
	if !ok {
		st = &flowState{span: -1}
		r.open[flow] = st
	}
	return st
}

func (r *Recorder) openSpan(st *flowState, at sim.Time, flow uint64, path int) {
	if r.MaxEvents > 0 && len(r.Spans) >= r.MaxEvents {
		r.DroppedSpans++
		st.span = -1
		return
	}
	r.Spans = append(r.Spans, Span{Flow: flow, Path: path, Start: at})
	st.span = len(r.Spans) - 1
}

func (r *Recorder) closeSpan(st *flowState, at sim.Time, final bool) {
	if st.span < 0 {
		return
	}
	sp := &r.Spans[st.span]
	sp.End = at
	sp.Final = final
	st.span = -1
}

func (r *Recorder) noteStart(at sim.Time, flow uint64, size int64) {
	st := r.state(flow)
	st.size = size
	st.start = at
	st.lastProgress = at
	r.add(Event{At: at, Flow: flow, Kind: FlowStart, Size: size})
}

// notePath records the balancer's path choice, opening a new residency span
// when it differs from the current one.
func (r *Recorder) notePath(at sim.Time, flow uint64, path int) {
	st := r.state(flow)
	if st.placed && st.path == path {
		return
	}
	kind := Placement
	if st.placed {
		kind = PathChange
		r.closeSpan(st, at, false)
	}
	st.placed = true
	st.path = path
	r.add(Event{At: at, Flow: flow, Kind: kind, Path: path})
	r.openSpan(st, at, flow, path)
}

func (r *Recorder) noteAck(at sim.Time, flow uint64, ev transport.AckEvent) {
	st, ok := r.open[flow]
	if !ok {
		return
	}
	if st.span >= 0 {
		sp := &r.Spans[st.span]
		sp.QueueNs += ev.QueueNs
		if ev.ECE {
			sp.EcnMarks++
		}
		if ev.NewlyAcked > 0 {
			sp.Bytes += ev.NewlyAcked
			if sp.FirstAck == 0 {
				sp.FirstAck = at
			}
		}
	}
	if ev.NewlyAcked > 0 {
		st.lastProgress = at
	}
}

func (r *Recorder) noteRetx(at sim.Time, flow uint64, path int) {
	r.add(Event{At: at, Flow: flow, Kind: Retransmit, Path: path})
	if st, ok := r.open[flow]; ok && st.span >= 0 {
		r.Spans[st.span].Retx++
	}
}

func (r *Recorder) noteTimeout(at sim.Time, flow uint64, path int) {
	st := r.state(flow)
	stall := at - st.lastProgress
	if stall < 0 {
		stall = 0
	}
	r.add(Event{At: at, Flow: flow, Kind: Timeout, Path: path, Stall: stall})
	if st.span >= 0 {
		sp := &r.Spans[st.span]
		sp.Timeouts++
		sp.StallNs += stall
	}
	st.lastProgress = at
}

func (r *Recorder) noteDone(at sim.Time, flow uint64, size int64) {
	r.add(Event{At: at, Flow: flow, Kind: FlowDone, Size: size})
	if st, ok := r.open[flow]; ok {
		r.closeSpan(st, at, true)
		delete(r.open, flow)
	}
}

// NoteDrop records a fabric drop of one of flow's packets (fed by
// net.Network.SetTraceHooks).
func (r *Recorder) NoteDrop(at sim.Time, flow uint64, path int) {
	r.add(Event{At: at, Flow: flow, Kind: Drop, Path: path})
	if st, ok := r.open[flow]; ok && st.span >= 0 {
		r.Spans[st.span].Drops++
	}
}

// NoteMark records a fabric ECN mark on one of flow's packets. Mark events
// are fabric-side observations; the span's EcnMarks counter instead counts
// delivered marked packets (ACK echoes), so the two can differ when marked
// packets are dropped downstream.
func (r *Recorder) NoteMark(at sim.Time, flow uint64, path int) {
	r.add(Event{At: at, Flow: flow, Kind: ECNMark, Path: path})
}

// CloseOpenSpans force-closes the spans of unfinished flows at the
// simulation horizon (deterministically, in flow order). A span that was
// mid-stall — it has timeouts and no progress since the last one — is
// charged the trailing idle gap, mirroring the unfinished-flow FCT
// accounting.
func (r *Recorder) CloseOpenSpans(at sim.Time) {
	flows := make([]uint64, 0, len(r.open))
	for f, st := range r.open {
		if st.span >= 0 {
			flows = append(flows, f)
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		st := r.open[f]
		sp := &r.Spans[st.span]
		if sp.Timeouts > 0 && at > st.lastProgress {
			sp.StallNs += at - st.lastProgress
		}
		r.closeSpan(st, at, false)
	}
}

// For returns the events of one flow, in order.
func (r *Recorder) For(flow uint64) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Flow == flow {
			out = append(out, e)
		}
	}
	return out
}

// SpansFor returns the spans of one flow, in order.
func (r *Recorder) SpansFor(flow uint64) []Span {
	var out []Span
	for _, s := range r.Spans {
		if s.Flow == flow {
			out = append(out, s)
		}
	}
	return out
}

// Count returns the number of events of a kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// PathVisits returns the distinct paths a flow used, in first-visit order.
func (r *Recorder) PathVisits(flow uint64) []int {
	var out []int
	seen := map[int]bool{}
	for _, e := range r.Events {
		if e.Flow != flow || (e.Kind != Placement && e.Kind != PathChange) {
			continue
		}
		if !seen[e.Path] {
			seen[e.Path] = true
			out = append(out, e.Path)
		}
	}
	return out
}

// Wrap decorates a balancer so that every decision and transport signal is
// recorded. eng supplies timestamps.
func Wrap(inner transport.Balancer, rec *Recorder, eng *sim.Engine) transport.Balancer {
	return &tracer{inner: inner, rec: rec, eng: eng}
}

type tracer struct {
	inner transport.Balancer
	rec   *Recorder
	eng   *sim.Engine
}

func (t *tracer) Name() string { return t.inner.Name() }

func (t *tracer) SelectPath(f *transport.Flow) int {
	p := t.inner.SelectPath(f)
	t.rec.notePath(t.eng.Now(), f.ID, p)
	return p
}

func (t *tracer) OnSent(f *transport.Flow, path, bytes int) { t.inner.OnSent(f, path, bytes) }
func (t *tracer) OnAck(f *transport.Flow, ev transport.AckEvent) {
	t.rec.noteAck(t.eng.Now(), f.ID, ev)
	t.inner.OnAck(f, ev)
}
func (t *tracer) OnRetransmit(f *transport.Flow, path int) {
	t.rec.noteRetx(t.eng.Now(), f.ID, path)
	t.inner.OnRetransmit(f, path)
}
func (t *tracer) OnTimeout(f *transport.Flow, path int) {
	t.rec.noteTimeout(t.eng.Now(), f.ID, path)
	t.inner.OnTimeout(f, path)
}
func (t *tracer) OnFlowStart(f *transport.Flow) {
	t.rec.noteStart(t.eng.Now(), f.ID, f.Size)
	t.inner.OnFlowStart(f)
}
func (t *tracer) OnFlowDone(f *transport.Flow) {
	t.rec.noteDone(t.eng.Now(), f.ID, f.Size)
	t.inner.OnFlowDone(f)
}

// Summary aggregates a recorder's events into per-scheme behavioural
// statistics: how often flows moved, how long they lived, how failures
// clustered. This is the quantitative companion to eyeballing JSONL.
type Summary struct {
	Flows       int
	Completed   int
	Placements  int
	PathChanges int
	Retransmits int
	Timeouts    int
	ECNMarks    int
	Drops       int
	// Dropped mirrors Recorder.Dropped: events lost to the MaxEvents cap.
	Dropped int

	// MovesPerFlow is the mean number of path changes per completed flow.
	MovesPerFlow float64
	// MeanLifetime is the mean start-to-done duration of completed flows.
	MeanLifetime sim.Time
	// MaxMovesFlow identifies the most-rerouted flow and its move count.
	MaxMovesFlow  uint64
	MaxMovesCount int
}

// Summarize computes the Summary for everything recorded.
func (r *Recorder) Summarize() Summary {
	s := Summary{Dropped: r.Dropped}
	starts := map[uint64]sim.Time{}
	moves := map[uint64]int{}
	var lifetimes sim.Time
	for _, e := range r.Events {
		switch e.Kind {
		case FlowStart:
			s.Flows++
			starts[e.Flow] = e.At
		case Placement:
			s.Placements++
		case PathChange:
			s.PathChanges++
			moves[e.Flow]++
		case Retransmit:
			s.Retransmits++
		case Timeout:
			s.Timeouts++
		case ECNMark:
			s.ECNMarks++
		case Drop:
			s.Drops++
		case FlowDone:
			s.Completed++
			if st, ok := starts[e.Flow]; ok {
				lifetimes += e.At - st
			}
		}
	}
	if s.Completed > 0 {
		s.MovesPerFlow = float64(s.PathChanges) / float64(s.Completed)
		s.MeanLifetime = lifetimes / sim.Time(s.Completed)
	}
	for f, m := range moves {
		if m > s.MaxMovesCount || (m == s.MaxMovesCount && f < s.MaxMovesFlow) {
			s.MaxMovesCount = m
			s.MaxMovesFlow = f
		}
	}
	return s
}
