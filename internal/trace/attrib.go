package trace

import (
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
)

// FCT attribution: decompose each flow's completion time into
//
//	FCT = base + queueing + RTO stall + reroute gap
//
// where base is the ideal unloaded FCT (one base RTT plus the flow's
// serialization time at the access link), stall is the measured idle time
// ended by RTO fires, and the reroute gap is the dead time after each path
// change before the first byte is acknowledged on the new path (in excess of
// one base RTT, which re-placement legitimately costs). The components are
// clamped in sequence — stall, then base, then reroute, queueing as the
// remainder — so they always sum exactly to the FCT and are non-negative.
// Stall is measured (not inferred), so it is clamped first; queueing absorbs
// estimation error, which is the honest place for it since it is the one
// component we do not measure end-to-end per flow.

// FlowBreakdown is the attribution of one flow's completion time.
type FlowBreakdown struct {
	Flow     uint64
	Size     int64
	Start    sim.Time
	End      sim.Time
	FCT      sim.Time
	Finished bool

	Moves    int
	Retx     int
	Timeouts int
	Drops    int
	EcnMarks int

	// The four components; they sum exactly to FCT.
	BaseNs    sim.Time
	QueueNs   sim.Time
	StallNs   sim.Time
	RerouteNs sim.Time

	// SumPktQueueNs is the unclamped per-packet queue-delay sum echoed by
	// ACKs (a cross-check: many queued packets overlap in time, so this can
	// legitimately exceed QueueNs).
	SumPktQueueNs sim.Time

	// Paths visited, in order, and the audit reasons for entering them
	// (reasons only for annotated Hermes traces).
	Paths   []int
	Reasons []string
}

// Share returns component/FCT, guarding the zero-FCT corner.
func (b FlowBreakdown) Share(c sim.Time) float64 {
	if b.FCT <= 0 {
		return 0
	}
	return float64(c) / float64(b.FCT)
}

// Attribution computes per-flow breakdowns for every flow with recorded
// spans, in flow-ID order. Calibration (base RTT, host rate) comes from the
// recorder's Meta; with a zero Meta the base component is 0 and everything
// lands in queueing/stall.
func (r *Recorder) Attribution() []FlowBreakdown {
	type flowMeta struct {
		size       int64
		start, end sim.Time
		started    bool
		finished   bool
	}
	fm := map[uint64]*flowMeta{}
	get := func(f uint64) *flowMeta {
		m, ok := fm[f]
		if !ok {
			m = &flowMeta{}
			fm[f] = m
		}
		return m
	}
	for _, e := range r.Events {
		switch e.Kind {
		case FlowStart:
			m := get(e.Flow)
			m.started = true
			m.start = e.At
			m.size = e.Size
		case FlowDone:
			m := get(e.Flow)
			m.finished = true
			m.end = e.At
		}
	}

	spans := map[uint64][]Span{}
	order := []uint64{}
	for _, s := range r.Spans {
		if _, ok := spans[s.Flow]; !ok {
			order = append(order, s.Flow)
		}
		spans[s.Flow] = append(spans[s.Flow], s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	baseRTT := sim.Time(r.Meta.BaseRTTNs)
	out := make([]FlowBreakdown, 0, len(order))
	for _, f := range order {
		ss := spans[f]
		m := get(f)
		b := FlowBreakdown{Flow: f, Size: m.size, Moves: len(ss) - 1}
		if m.started {
			b.Start = m.start
		} else {
			b.Start = ss[0].Start
		}
		if m.finished {
			b.End = m.end
			b.Finished = true
		} else {
			b.End = ss[len(ss)-1].End
		}
		b.FCT = b.End - b.Start
		if b.FCT < 0 {
			b.FCT = 0
		}

		var stall, reroute, pktQueue sim.Time
		for i, sp := range ss {
			stall += sp.StallNs
			pktQueue += sp.QueueNs
			b.Retx += sp.Retx
			b.Timeouts += sp.Timeouts
			b.Drops += sp.Drops
			b.EcnMarks += sp.EcnMarks
			b.Paths = append(b.Paths, sp.Path)
			if sp.Reason != "" {
				b.Reasons = append(b.Reasons, sp.Reason)
			}
			if i > 0 && sp.FirstAck > 0 {
				if g := sp.FirstAck - sp.Start - baseRTT; g > 0 {
					reroute += g
				}
			}
		}
		b.SumPktQueueNs = pktQueue

		base := baseRTT
		if r.Meta.HostRateBps > 0 {
			base += sim.Time(m.size * 8 * int64(sim.Second) / r.Meta.HostRateBps)
		}

		// Sequential clamping: components sum exactly to FCT.
		if stall > b.FCT {
			stall = b.FCT
		}
		rem := b.FCT - stall
		if base > rem {
			base = rem
		}
		rem -= base
		if reroute > rem {
			reroute = rem
		}
		b.StallNs = stall
		b.BaseNs = base
		b.RerouteNs = reroute
		b.QueueNs = rem - reroute
		out = append(out, b)
	}
	return out
}

// SlowestFlows returns the n highest-FCT breakdowns, slowest first (ties by
// flow ID for determinism).
func SlowestFlows(flows []FlowBreakdown, n int) []FlowBreakdown {
	out := make([]FlowBreakdown, len(flows))
	copy(out, flows)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FCT != out[j].FCT {
			return out[i].FCT > out[j].FCT
		}
		return out[i].Flow < out[j].Flow
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TailShares aggregates attribution over the flows at or above a percentile
// cutoff: what fraction of the tail's total completion time each component
// explains.
type TailShares struct {
	// N is the number of tail flows aggregated; Unfinished how many of them
	// never completed.
	N          int
	Unfinished int
	// CutoffNs is the FCT at the requested percentile.
	CutoffNs sim.Time
	// MeanFCTNs is the tail flows' mean completion time.
	MeanFCTNs sim.Time

	BaseShare    float64
	QueueShare   float64
	StallShare   float64
	RerouteShare float64
}

// TailAttribution aggregates the breakdowns of the flows whose FCT is at or
// above the pct percentile (pct in [0,1); 0 aggregates every flow). Shares
// are ratios of summed components to summed FCT, so long flows weigh more —
// the question answered is "where did the tail's time go", not "what did the
// average flow experience".
func TailAttribution(flows []FlowBreakdown, pct float64) TailShares {
	var ts TailShares
	if len(flows) == 0 {
		return ts
	}
	fcts := make([]sim.Time, len(flows))
	for i, b := range flows {
		fcts[i] = b.FCT
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	if pct > 0 {
		idx := int(pct * float64(len(fcts)))
		if idx >= len(fcts) {
			idx = len(fcts) - 1
		}
		ts.CutoffNs = fcts[idx]
	}

	var fct, base, queue, stall, reroute sim.Time
	for _, b := range flows {
		if b.FCT < ts.CutoffNs {
			continue
		}
		ts.N++
		if !b.Finished {
			ts.Unfinished++
		}
		fct += b.FCT
		base += b.BaseNs
		queue += b.QueueNs
		stall += b.StallNs
		reroute += b.RerouteNs
	}
	if ts.N > 0 {
		ts.MeanFCTNs = fct / sim.Time(ts.N)
	}
	if fct > 0 {
		ts.BaseShare = float64(base) / float64(fct)
		ts.QueueShare = float64(queue) / float64(fct)
		ts.StallShare = float64(stall) / float64(fct)
		ts.RerouteShare = float64(reroute) / float64(fct)
	}
	return ts
}
