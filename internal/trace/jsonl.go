package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL layout (one object per line, discriminated by "kind"):
//
//	{"kind":"meta", ...}      — at most one, first; absent in v1 traces
//	{"kind":"start"|"place"|"move"|"retx"|"rto"|"ecn"|"drop"|"done", ...}
//	{"kind":"span", ...}      — path-residency spans, after the events
//	{"kind":"hops", ...}      — per-flow fabric delay decomposition
//	{"kind":"verdict", ...}   — Hermes monitor path condemnations
//	{"kind":"truncated", ...} — trailing marker when caps dropped records

type metaLine struct {
	Kind string `json:"kind"`
	Meta
}

type spanLine struct {
	Kind string `json:"kind"`
	Span
}

type hopsLine struct {
	Kind string `json:"kind"`
	FlowHops
}

type verdictLine struct {
	Kind string `json:"kind"`
	Verdict
}

type truncLine struct {
	Kind         string `json:"kind"`
	Dropped      int    `json:"dropped,omitempty"`
	DroppedSpans int    `json:"dropped_spans,omitempty"`
}

// WriteJSONL emits the full trace — meta header, events, spans, per-flow hop
// aggregates, verdicts — one JSON object per line, with a trailing
// truncation marker when the MaxEvents cap dropped anything.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	fail := func(err error) error { return fmt.Errorf("trace: jsonl: %w", err) }
	if r.Meta.Schema != "" {
		if err := enc.Encode(metaLine{"meta", r.Meta}); err != nil {
			return fail(err)
		}
	}
	for _, e := range r.Events {
		if err := enc.Encode(e); err != nil {
			return fail(err)
		}
	}
	for _, s := range r.Spans {
		if err := enc.Encode(spanLine{"span", s}); err != nil {
			return fail(err)
		}
	}
	for _, h := range r.FlowHops {
		if err := enc.Encode(hopsLine{"hops", h}); err != nil {
			return fail(err)
		}
	}
	for _, v := range r.Verdicts {
		if err := enc.Encode(verdictLine{"verdict", v}); err != nil {
			return fail(err)
		}
	}
	if r.Dropped > 0 || r.DroppedSpans > 0 {
		if err := enc.Encode(truncLine{"truncated", r.Dropped, r.DroppedSpans}); err != nil {
			return fail(err)
		}
	}
	return fail0(bw.Flush())
}

func fail0(err error) error {
	if err != nil {
		return fmt.Errorf("trace: jsonl: %w", err)
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL back into a Recorder
// (events, spans, hops, verdicts and drop counters; live flow bookkeeping is
// not reconstructed — a read trace is for analysis, not resumption). v1
// traces (bare event lines) load with empty Meta and no spans.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	r := &Recorder{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		var err error
		switch probe.Kind {
		case "meta":
			var m metaLine
			if err = json.Unmarshal(line, &m); err == nil {
				r.Meta = m.Meta
			}
		case "span":
			var s spanLine
			if err = json.Unmarshal(line, &s); err == nil {
				r.Spans = append(r.Spans, s.Span)
			}
		case "hops":
			var h hopsLine
			if err = json.Unmarshal(line, &h); err == nil {
				r.FlowHops = append(r.FlowHops, h.FlowHops)
			}
		case "verdict":
			var v verdictLine
			if err = json.Unmarshal(line, &v); err == nil {
				r.Verdicts = append(r.Verdicts, v.Verdict)
			}
		case "truncated":
			var t truncLine
			if err = json.Unmarshal(line, &t); err == nil {
				r.Dropped = t.Dropped
				r.DroppedSpans = t.DroppedSpans
			}
		default:
			var e Event
			if err = json.Unmarshal(line, &e); err == nil {
				r.Events = append(r.Events, e)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl: %w", err)
	}
	return r, nil
}
