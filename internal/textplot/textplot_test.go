package textplot

import (
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	var sb strings.Builder
	err := Bars(&sb, "title", []string{"30%", "50%"}, []Series{
		{Label: "ecmp", Values: []float64{2, 4}},
		{Label: "hermes", Values: []float64{1, 2}},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	if strings.Count(out, "ecmp") != 2 || strings.Count(out, "hermes") != 2 {
		t.Fatalf("rows missing:\n%s", out)
	}
	// The maximum (4) fills the width; half of it gets half the blocks.
	lines := strings.Split(out, "\n")
	var maxLine, halfLine string
	for _, l := range lines {
		if strings.Contains(l, "4.000") {
			maxLine = l
		}
		if strings.Contains(l, "2.000") && strings.Contains(l, "ecmp") {
			halfLine = l
		}
	}
	if strings.Count(maxLine, "#") != 20 {
		t.Fatalf("max bar has %d blocks, want 20: %q", strings.Count(maxLine, "#"), maxLine)
	}
	if strings.Count(halfLine, "#") != 10 {
		t.Fatalf("half bar has %d blocks, want 10: %q", strings.Count(halfLine, "#"), halfLine)
	}
}

func TestBarsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Bars(&sb, "", nil, []Series{{Label: "x", Values: []float64{0}}}, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("zero data not handled")
	}
}

func TestLine(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	if err := Line(&sb, "queue", xs, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "*") != len(xs) {
		t.Fatalf("want %d points, got %d:\n%s", len(xs), strings.Count(out, "*"), out)
	}
	if !strings.Contains(out, "5.00") || !strings.Contains(out, "0.00") {
		t.Fatalf("y-range annotations missing:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	var sb strings.Builder
	err := Heatmap(&sb, "occupancy", []Series{
		{Label: "leaf0->spine0", Values: []float64{0, 1, 2, 3, 4}},
		{Label: "leaf0->spine1", Values: []float64{4, 4, 4, 4, 4}},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "occupancy") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The saturated row is all darkest cells; the ramp row starts blank.
	if !strings.Contains(lines[2], "|@@@@@|") {
		t.Fatalf("saturated row wrong: %q", lines[2])
	}
	if !strings.Contains(lines[1], "| ") || !strings.Contains(lines[1], "@|") {
		t.Fatalf("ramp row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "scale:") {
		t.Fatalf("legend missing: %q", lines[3])
	}

	// Nonzero values never render as blank cells.
	sb.Reset()
	if err := Heatmap(&sb, "", []Series{{Label: "x", Values: []float64{0.001, 100}}}, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "| @|") {
		t.Fatalf("tiny value rendered blank:\n%s", sb.String())
	}

	// Zero data degrades gracefully.
	sb.Reset()
	if err := Heatmap(&sb, "", []Series{{Label: "x", Values: []float64{0}}}, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("zero data not handled")
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := Downsample(xs, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	// Bucket means ascend.
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("downsample not order-preserving for a ramp")
		}
	}
	// Short inputs pass through.
	if got := Downsample(xs[:5], 10); len(got) != 5 {
		t.Fatal("short input modified")
	}
}
