package textplot

import (
	"strings"
	"testing"
)

func TestBars(t *testing.T) {
	var sb strings.Builder
	err := Bars(&sb, "title", []string{"30%", "50%"}, []Series{
		{Label: "ecmp", Values: []float64{2, 4}},
		{Label: "hermes", Values: []float64{1, 2}},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	if strings.Count(out, "ecmp") != 2 || strings.Count(out, "hermes") != 2 {
		t.Fatalf("rows missing:\n%s", out)
	}
	// The maximum (4) fills the width; half of it gets half the blocks.
	lines := strings.Split(out, "\n")
	var maxLine, halfLine string
	for _, l := range lines {
		if strings.Contains(l, "4.000") {
			maxLine = l
		}
		if strings.Contains(l, "2.000") && strings.Contains(l, "ecmp") {
			halfLine = l
		}
	}
	if strings.Count(maxLine, "#") != 20 {
		t.Fatalf("max bar has %d blocks, want 20: %q", strings.Count(maxLine, "#"), maxLine)
	}
	if strings.Count(halfLine, "#") != 10 {
		t.Fatalf("half bar has %d blocks, want 10: %q", strings.Count(halfLine, "#"), halfLine)
	}
}

func TestBarsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Bars(&sb, "", nil, []Series{{Label: "x", Values: []float64{0}}}, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("zero data not handled")
	}
}

func TestLine(t *testing.T) {
	var sb strings.Builder
	xs := []float64{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	if err := Line(&sb, "queue", xs, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "*") != len(xs) {
		t.Fatalf("want %d points, got %d:\n%s", len(xs), strings.Count(out, "*"), out)
	}
	if !strings.Contains(out, "5.00") || !strings.Contains(out, "0.00") {
		t.Fatalf("y-range annotations missing:\n%s", out)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := Downsample(xs, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	// Bucket means ascend.
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("downsample not order-preserving for a ramp")
		}
	}
	// Short inputs pass through.
	if got := Downsample(xs[:5], 10); len(got) != 5 {
		t.Fatal("short input modified")
	}
}
