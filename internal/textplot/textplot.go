// Package textplot renders small ASCII charts so hermes-bench can show
// figure-shaped output (grouped bars per load, one row per scheme) next to
// the numeric tables it prints.
package textplot

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labelled sequence of values (e.g. one scheme across loads).
type Series struct {
	Label  string
	Values []float64
}

// Bars renders horizontal bars, one block per series value, scaled to the
// global maximum. Labels column is sized to the longest label.
//
//	ecmp     load30% |#############              3.81
//	hermes   load30% |#########                  2.51
func Bars(w io.Writer, title string, cols []string, series []Series, width int) error {
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for _, s := range series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	colW := 0
	for _, c := range cols {
		if len(c) > colW {
			colW = len(c)
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	if max <= 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	for _, s := range series {
		for i, v := range s.Values {
			col := ""
			if i < len(cols) {
				col = cols[i]
			}
			n := int(v / max * float64(width))
			if n < 1 && v > 0 {
				n = 1
			}
			if _, err := fmt.Fprintf(w, "%-*s %-*s |%-*s %8.3f\n",
				labelW, s.Label, colW, col, width, strings.Repeat("#", n), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Line renders a single series as a fixed-height ASCII line chart with the
// y-range annotated — enough to see a queue-occupancy or throughput shape.
func Line(w io.Writer, title string, xs []float64, height int) error {
	if height <= 0 {
		height = 8
	}
	if len(xs) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	span := max - min
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	for i, v := range xs {
		row := 0
		if span > 0 {
			row = int((v - min) / span * float64(height-1))
		}
		grid[height-1-row][i] = '*'
	}
	for r, rowBytes := range grid {
		edge := " "
		switch r {
		case 0:
			edge = fmt.Sprintf("%10.2f |", max)
		case height - 1:
			edge = fmt.Sprintf("%10.2f |", min)
		default:
			edge = strings.Repeat(" ", 11) + "|"
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", edge, rowBytes); err != nil {
			return err
		}
	}
	return nil
}

// heatRamp is the intensity scale for Heatmap cells, lightest to darkest.
var heatRamp = []byte(" .:-=+*#%@")

// Heatmap renders rows of values as one character cell each, shaded by
// intensity relative to the global maximum:
//
//	leaf0->spine0.0 |..::-==++**##%%@@|
//	leaf0->spine0.1 |      ..  .::-=  |
//
// Rows longer than width are bucket-averaged down (Downsample); the legend
// line maps the ramp to the value range.
func Heatmap(w io.Writer, title string, rows []Series, width int) error {
	if width <= 0 {
		width = 60
	}
	var max float64
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		for _, v := range r.Values {
			if v > max {
				max = v
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	if max <= 0 || len(rows) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	for _, r := range rows {
		vals := Downsample(r.Values, width)
		cells := make([]byte, len(vals))
		for i, v := range vals {
			idx := int(v / max * float64(len(heatRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			// Any nonzero value gets at least the faintest mark.
			if idx == 0 && v > 0 {
				idx = 1
			}
			cells[i] = heatRamp[idx]
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, r.Label, cells); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  scale: %q = 0 .. %q = %.3g\n",
		labelW, "", heatRamp[0], heatRamp[len(heatRamp)-1], max)
	return err
}

// Sparkline renders a series as a single line of ramp characters scaled to
// its own maximum, with the label and min/max annotated:
//
//	net.tx_gbps      |  .:-=+**##%%@@=-.  | 0 .. 9.41
func Sparkline(w io.Writer, label string, xs []float64, width int) error {
	if width <= 0 {
		width = 60
	}
	if len(xs) == 0 {
		_, err := fmt.Fprintf(w, "%s (no data)\n", label)
		return err
	}
	min, max := xs[0], xs[0]
	for _, v := range xs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	vals := Downsample(xs, width)
	cells := make([]byte, len(vals))
	for i, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(heatRamp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(heatRamp) {
			idx = len(heatRamp) - 1
		}
		if idx == 0 && v > 0 {
			idx = 1
		}
		cells[i] = heatRamp[idx]
	}
	_, err := fmt.Fprintf(w, "%s |%s| %.3g .. %.3g\n", label, cells, min, max)
	return err
}

// Timeline renders rows of small-integer state codes as one glyph per cell,
// using glyphs[code] (out-of-range codes print '?'). Rows longer than width
// are reduced bucket-max (DownsampleMax), so a brief excursion to a higher
// state — e.g. a path turning failed for one probe interval — survives the
// shrink instead of averaging away:
//
//	dst1 path0 |ggggggggGGGG!!!!!!!!GGGGGGGG|
func Timeline(w io.Writer, title string, rows []Series, glyphs []byte, width int) error {
	if width <= 0 {
		width = 60
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range rows {
		vals := DownsampleMax(r.Values, width)
		cells := make([]byte, len(vals))
		for i, v := range vals {
			code := int(v)
			if code < 0 || code >= len(glyphs) {
				cells[i] = '?'
				continue
			}
			cells[i] = glyphs[code]
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, r.Label, cells); err != nil {
			return err
		}
	}
	return nil
}

// Downsample reduces xs to at most n points by bucket-averaging, so long
// time series fit a terminal width.
func Downsample(xs []float64, n int) []float64 {
	if len(xs) <= n || n <= 0 {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(xs)/n, (i+1)*len(xs)/n
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range xs[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// DownsampleMax reduces xs to at most n points keeping each bucket's
// maximum — the right reduction for state codes and peak-style series,
// where averaging would invent values that never occurred.
func DownsampleMax(xs []float64, n int) []float64 {
	if len(xs) <= n || n <= 0 {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(xs)/n, (i+1)*len(xs)/n
		if hi == lo {
			hi = lo + 1
		}
		m := xs[lo]
		for _, v := range xs[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}
