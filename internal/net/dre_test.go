package net

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hermes-repro/hermes/internal/sim"
)

func TestDREConvergesToRate(t *testing.T) {
	d := NewDRE(200 * sim.Microsecond)
	// Feed 1250 bytes every 1 us => 10 Gbps.
	var now sim.Time
	for i := 0; i < 5000; i++ {
		d.Add(1250, now)
		now += sim.Microsecond
	}
	got := d.RateBps(now)
	want := 10e9
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("rate = %.3g, want ~%.3g", got, want)
	}
}

func TestDREDecaysToZero(t *testing.T) {
	d := NewDRE(200 * sim.Microsecond)
	d.Add(1_000_000, 0)
	if r := d.RateBps(10 * sim.Millisecond); r > 1 {
		t.Fatalf("rate after 50 tau = %.3g, want ~0", r)
	}
}

func TestDREMonotoneDecay(t *testing.T) {
	d := NewDRE(0)
	d.Add(100_000, 0)
	prev := d.RateBps(0)
	for _, dt := range []sim.Time{10_000, 50_000, 200_000, 1_000_000} {
		r := d.RateBps(dt)
		if r > prev {
			t.Fatalf("rate increased with idle time: %.3g -> %.3g", prev, r)
		}
		prev = r
	}
}

func TestDREQuantizeBounds(t *testing.T) {
	f := func(bytes uint32, capKbps uint32) bool {
		d := NewDRE(0)
		d.Add(int(bytes%10_000_000), 0)
		q := d.Quantize(0, int64(capKbps)*1000, 8)
		return q <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDREQuantizeZeroCapacity(t *testing.T) {
	d := NewDRE(0)
	if q := d.Quantize(0, 0, 8); q != 7 {
		t.Fatalf("zero-capacity quantization = %d, want saturated 7", q)
	}
}

func TestDREQuantizeIdleIsZero(t *testing.T) {
	d := NewDRE(0)
	if q := d.Quantize(0, 10e9, 8); q != 0 {
		t.Fatalf("idle quantization = %d, want 0", q)
	}
}

// Property: adding bytes never decreases the instantaneous rate.
func TestDREAddIncreasesRate(t *testing.T) {
	f := func(adds []uint16) bool {
		d := NewDRE(0)
		var now sim.Time
		for _, a := range adds {
			before := d.RateBps(now)
			d.Add(int(a)+1, now)
			if d.RateBps(now) < before {
				return false
			}
			now += 1000
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
