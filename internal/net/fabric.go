package net

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Handler consumes packets delivered to a host.
type Handler func(*Packet)

// SwitchBalancer is the plug-in point for in-switch load balancing at leaf
// switches (CONGA, LetFlow, DRILL). Host-based schemes leave it nil and pin
// paths via Packet.Path instead.
type SwitchBalancer interface {
	// SelectUplink picks the spine index for a packet entering the fabric,
	// consulted only when the packet does not pin a path itself.
	SelectUplink(pkt *Packet, dstLeaf int) int
	// OnDepart runs for every packet entering the fabric at this leaf,
	// before uplink selection (CONGA stamps feedback here).
	OnDepart(pkt *Packet, dstLeaf int)
	// OnArrive runs for every packet leaving the fabric at this leaf
	// (CONGA harvests congestion metrics and feedback here).
	OnArrive(pkt *Packet, srcLeaf int)
}

// Host is an end system attached to a leaf switch.
type Host struct {
	ID   int
	Leaf int

	net      *Network
	uplink   *Port
	handlers [nKinds]Handler
}

// Handle registers the consumer for a packet kind at this host.
func (h *Host) Handle(k Kind, fn Handler) { h.handlers[k] = fn }

// Send injects a packet into the fabric through the host's access link.
// Ownership of the packet transfers to the fabric: once delivered (or
// dropped) it is recycled into the network's packet pool, so callers must
// not retain or re-send it.
func (h *Host) Send(pkt *Packet) {
	h.net.injected++
	h.uplink.Enqueue(pkt)
}

// Uplink exposes the access-link port (for utilization accounting).
func (h *Host) Uplink() *Port { return h.uplink }

// Network returns the fabric this host is attached to.
func (h *Host) Network() *Network { return h.net }

func (h *Host) deliver(pkt *Packet) {
	h.net.delivered++
	if pkt.Kind == Data || pkt.Kind == UDPData {
		h.net.deliveredPayload += uint64(pkt.Payload)
	}
	if h.net.acct != nil {
		h.net.acct.observe(pkt)
	}
	if fn := h.handlers[pkt.Kind]; fn != nil {
		fn(pkt)
	}
	// The packet's life ends at the sink: recycle it once the handler
	// returns. Handlers that need fields past their return must copy them.
	h.net.FreePacket(pkt)
}

// Switch is a leaf or spine switch.
type Switch struct {
	IsLeaf bool
	Index  int // leaf index or spine index

	net *Network

	// Leaf: up[s] reaches spine s, down[i] reaches the i-th local host.
	// Spine: down[l] reaches leaf l; up is nil.
	up   []*Port
	down []*Port

	// dropFns are the registered malfunction hooks (§2.1): a packet is
	// silently dropped when ANY hook claims it. Every hook sees every
	// transiting packet — there is no short-circuit — so co-resident
	// injectors (e.g. a blackhole and a random-drop on the same spine)
	// each observe the full stream and keep accurate counters. Register
	// with AddDropFn, unregister with RemoveDropFn.
	dropFns    []dropHook
	nextDropID int

	// Drops counts packets the malfunction hooks swallowed (silent switch
	// drops). Part of the packet-conservation invariant.
	Drops uint64

	// Balancer, on leaf switches, performs in-switch path selection.
	Balancer SwitchBalancer
}

// dropHook is one registered malfunction predicate with a handle for
// removal.
type dropHook struct {
	id int
	fn func(*Packet) bool
}

// AddDropFn registers a malfunction hook on this switch and returns a handle
// for RemoveDropFn. Hooks compose: each one is consulted for every transiting
// packet, and the packet is dropped if any claims it.
func (s *Switch) AddDropFn(fn func(*Packet) bool) int {
	s.nextDropID++
	s.dropFns = append(s.dropFns, dropHook{id: s.nextDropID, fn: fn})
	return s.nextDropID
}

// RemoveDropFn unregisters the hook with the given handle. Unknown handles
// are ignored (clearing an injector twice is harmless).
func (s *Switch) RemoveDropFn(id int) {
	for i, h := range s.dropFns {
		if h.id == id {
			s.dropFns = append(s.dropFns[:i], s.dropFns[i+1:]...)
			return
		}
	}
}

// DropFnCount returns the number of registered malfunction hooks.
func (s *Switch) DropFnCount() int { return len(s.dropFns) }

// ConsultDropFns runs every registered hook against pkt (no short-circuit,
// so each injector sees the full packet stream) and reports whether any
// claimed it. It does not count the drop or free the packet; receive() does.
func (s *Switch) ConsultDropFns(pkt *Packet) bool {
	drop := false
	for _, h := range s.dropFns {
		if h.fn(pkt) {
			drop = true
		}
	}
	return drop
}

// Uplink returns the port toward spine s (leaf switches only).
func (s *Switch) Uplink(spine int) *Port { return s.up[spine] }

// Downlink returns the port toward local host slot i (leaf) or leaf i (spine).
func (s *Switch) Downlink(i int) *Port { return s.down[i] }

func (s *Switch) receive(pkt *Packet) {
	if len(s.dropFns) > 0 && s.ConsultDropFns(pkt) {
		s.Drops++
		if s.net.onSwitchDrop != nil {
			s.net.onSwitchDrop(pkt)
		}
		s.net.FreePacket(pkt)
		return
	}
	n := s.net
	if !s.IsLeaf {
		// Spine: forward down toward the destination leaf over the same
		// cable index the packet arrived on (cables are independent links).
		s.down[n.LeafOf(pkt.Dst)*n.Cfg.cables()+n.PathCable(pkt.Path)].Enqueue(pkt)
		return
	}
	dstLeaf := n.LeafOf(pkt.Dst)
	if dstLeaf == s.Index {
		// Down direction (from fabric or local host) toward the host.
		if srcLeaf := n.LeafOf(pkt.Src); srcLeaf != s.Index && s.Balancer != nil {
			s.Balancer.OnArrive(pkt, srcLeaf)
		}
		s.down[pkt.Dst-n.firstHost(s.Index)].Enqueue(pkt)
		return
	}
	// Up direction: pick a spine.
	if s.Balancer != nil {
		s.Balancer.OnDepart(pkt, dstLeaf)
	}
	path := pkt.Path
	if path < 0 {
		if s.Balancer != nil {
			path = s.Balancer.SelectUplink(pkt, dstLeaf)
		} else {
			// Default ECMP hash on the flow id.
			path = int(hash64(pkt.Flow) % uint64(len(s.up)))
		}
		pkt.Path = path
	}
	if path < 0 || path >= len(s.up) {
		path = int(hash64(pkt.Flow) % uint64(len(s.up)))
		pkt.Path = path
	}
	s.up[path].Enqueue(pkt)
}

// hash64 is a 64-bit mix (splitmix64 finalizer) used for flow hashing.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Config describes a leaf-spine fabric.
type Config struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	HostRateBps   int64
	FabricRateBps int64

	HostDelay   sim.Time // one-way propagation, host <-> leaf
	FabricDelay sim.Time // one-way propagation, leaf <-> spine

	// QueueFactor sizes each port's drop-tail queue as QueueFactor x the
	// ECN threshold (0 = default 5). Shallow-buffer switches (2-3x) drop on
	// transient spikes that deep buffers absorb.
	QueueFactor int

	// CablesPerLink is the number of parallel physical cables per
	// leaf-spine pair (0/1 = one). The paper's testbed wires two 1 Gbps
	// cables per pair; XPath enumerates each cable as a distinct path, so
	// a "link cut" removes one path of four rather than a whole spine.
	CablesPerLink int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Leaves < 2:
		return fmt.Errorf("net: need at least 2 leaves, got %d", c.Leaves)
	case c.Spines < 1:
		return fmt.Errorf("net: need at least 1 spine, got %d", c.Spines)
	case c.HostsPerLeaf < 1:
		return fmt.Errorf("net: need at least 1 host per leaf, got %d", c.HostsPerLeaf)
	case c.HostRateBps <= 0 || c.FabricRateBps <= 0:
		return fmt.Errorf("net: link rates must be positive")
	case c.CablesPerLink < 0:
		return fmt.Errorf("net: CablesPerLink must be non-negative")
	}
	return nil
}

// cables returns the effective cables-per-link count.
func (c Config) cables() int {
	if c.CablesPerLink <= 0 {
		return 1
	}
	return c.CablesPerLink
}

// Network is a fully wired leaf-spine fabric.
type Network struct {
	Eng *sim.Engine
	Rng *sim.RNG
	Cfg Config

	Hosts  []*Host
	Leaves []*Switch
	Spines []*Switch

	// fabric[l][p] is the current capacity of cable/path p at leaf l
	// (both directions), where p = spine*cables + cable.
	fabric [][]int64

	pathCache map[int][]int // srcLeaf*L+dstLeaf -> usable path indices

	// Packet pool: packets recycled at their sink (final host delivery or
	// any drop) plus a block of never-used structs. AllocPacket hands them
	// back out, so a warm steady state allocates no packets at all.
	pktFree  []*Packet
	pktChunk []Packet

	// Conservation counters (plain adds; always on).
	injected  uint64 // packets entering the fabric via Host.Send
	delivered uint64 // packets reaching their destination host
	// deliveredPayload sums the payload bytes of Data/UDPData packets
	// delivered to hosts: application goodput, excluding headers, ACKs,
	// probes and in-flight retransmit duplicates of already-lost bytes.
	deliveredPayload uint64

	// acct, when non-nil, aggregates per-flow per-hop delay decomposition at
	// every host delivery (EnableDelayAccount).
	acct *DelayAccount
	// onSwitchDrop mirrors the per-port drop hook for silent DropFn drops
	// (SetTraceHooks).
	onSwitchDrop func(*Packet)
}

// SetTraceHooks installs fabric-wide observers for the two packet fates the
// trace layer cannot see through ACKs: drops (drop-tail, down links and
// silent switch drops) and ECN marks at the marking port. Either hook may be
// nil. Off by default; each costs one nil check on its own (already rare)
// path, keeping the forwarding hot path untouched.
func (n *Network) SetTraceHooks(onDrop, onMark func(*Packet)) {
	n.onSwitchDrop = onDrop
	n.ForEachPort(func(p *Port) {
		p.onDrop = onDrop
		p.onMark = onMark
	})
}

// AllocPacket returns a packet from the network's free list (or a fresh
// one). The contents are UNDEFINED: callers must overwrite the whole struct,
// conventionally with `*pkt = Packet{...}`. Ownership passes back to the
// pool when the fabric delivers or drops the packet.
func (n *Network) AllocPacket() *Packet {
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		return p
	}
	if len(n.pktChunk) == 0 {
		n.pktChunk = make([]Packet, 128)
	}
	p := &n.pktChunk[0]
	n.pktChunk = n.pktChunk[1:]
	return p
}

// FreePacket returns a packet to the pool. Called by the fabric at every
// packet sink; call it directly only for packets that never entered the
// fabric (ownership rules in Host.Send).
func (n *Network) FreePacket(p *Packet) {
	n.pktFree = append(n.pktFree, p)
}

// NewLeafSpine builds the fabric described by cfg.
func NewLeafSpine(eng *sim.Engine, rng *sim.RNG, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{Eng: eng, Rng: rng, Cfg: cfg, pathCache: map[int][]int{}}
	for l := 0; l < cfg.Leaves; l++ {
		n.Leaves = append(n.Leaves, &Switch{IsLeaf: true, Index: l, net: n})
	}
	for s := 0; s < cfg.Spines; s++ {
		n.Spines = append(n.Spines, &Switch{Index: s, net: n})
	}
	for id := 0; id < cfg.Leaves*cfg.HostsPerLeaf; id++ {
		n.Hosts = append(n.Hosts, &Host{ID: id, Leaf: id / cfg.HostsPerLeaf, net: n})
	}
	qf := cfg.QueueFactor
	hostPort := PortConfig{RateBps: cfg.HostRateBps, PropDelay: cfg.HostDelay, ECNK: -1,
		QueueCap: qf * DefaultECNK(cfg.HostRateBps)}
	fabricPort := PortConfig{RateBps: cfg.FabricRateBps, PropDelay: cfg.FabricDelay, ECNK: -1,
		QueueCap: qf * DefaultECNK(cfg.FabricRateBps)}

	// newPort wires every fabric port into the shared packet pool so drops
	// recycle their packet.
	newPort := func(name string, cfg PortConfig, deliver func(*Packet)) *Port {
		pt := NewPort(eng, name, cfg, deliver)
		pt.recycle = n.FreePacket
		return pt
	}

	C := cfg.cables()
	n.fabric = make([][]int64, cfg.Leaves)
	for l, leaf := range n.Leaves {
		n.fabric[l] = make([]int64, cfg.Spines*C)
		for s := range n.Spines {
			sp := n.Spines[s]
			for c := 0; c < C; c++ {
				p := s*C + c
				n.fabric[l][p] = cfg.FabricRateBps
				leaf.up = append(leaf.up, newPort(
					fmt.Sprintf("leaf%d->spine%d.%d", l, s, c), fabricPort, sp.receive))
				// spine.down is indexed leaf*C + cable.
				sp.down = append(sp.down, newPort(
					fmt.Sprintf("spine%d->leaf%d.%d", s, l, c), fabricPort, leaf.receive))
			}
		}
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			h := n.Hosts[l*cfg.HostsPerLeaf+i]
			h.uplink = newPort(fmt.Sprintf("host%d->leaf%d", h.ID, l), hostPort, leaf.receive)
			leaf.down = append(leaf.down, newPort(fmt.Sprintf("leaf%d->host%d", l, h.ID), hostPort, h.deliver))
		}
	}
	return n, nil
}

// ForEachPort visits every port of the fabric in a deterministic order.
func (n *Network) ForEachPort(fn func(*Port)) {
	for _, leaf := range n.Leaves {
		for _, p := range leaf.up {
			fn(p)
		}
		for _, p := range leaf.down {
			fn(p)
		}
	}
	for _, sp := range n.Spines {
		for _, p := range sp.down {
			fn(p)
		}
	}
	for _, h := range n.Hosts {
		fn(h.uplink)
	}
}

// MaxFabricQueueCap returns the largest drop-tail queue capacity among the
// fabric (leaf-spine) ports — the ports that carry per-port queue series on
// the flight recorder. Alert thresholds (queue-saturation) size against it.
func (n *Network) MaxFabricQueueCap() int {
	max := 0
	for _, leaf := range n.Leaves {
		for _, p := range leaf.up {
			if p.queueCap > max {
				max = p.queueCap
			}
		}
	}
	for _, sp := range n.Spines {
		for _, p := range sp.down {
			if p.queueCap > max {
				max = p.queueCap
			}
		}
	}
	return max
}

// PacketStats summarizes the fabric-wide packet ledger.
type PacketStats struct {
	Injected    uint64 // packets that entered via Host.Send
	Delivered   uint64 // packets delivered to a destination host
	PortDrops   uint64 // drop-tail, down-link drops across all ports
	SwitchDrops uint64 // silent DropFn drops (blackholes, random drops)
	InFlight    int64  // packets currently queued, transmitting or propagating
}

// PacketStats computes the current ledger by summing the per-port and
// per-switch counters.
func (n *Network) PacketStats() PacketStats {
	st := PacketStats{Injected: n.injected, Delivered: n.delivered}
	n.ForEachPort(func(p *Port) {
		st.PortDrops += p.Drops
		st.InFlight += p.holding
	})
	for _, sw := range n.Leaves {
		st.SwitchDrops += sw.Drops
	}
	for _, sw := range n.Spines {
		st.SwitchDrops += sw.Drops
	}
	return st
}

// CheckConservation verifies the packet-conservation invariant: every packet
// injected has been delivered, dropped, or is still in flight. A violation
// means the fabric (or a pooling bug) leaked or duplicated a packet.
func (n *Network) CheckConservation() error {
	st := n.PacketStats()
	accounted := st.Delivered + st.PortDrops + st.SwitchDrops + uint64(st.InFlight)
	if st.InFlight < 0 || st.Injected != accounted {
		return fmt.Errorf("net: packet conservation violated: injected %d != delivered %d + portDrops %d + switchDrops %d + inFlight %d",
			st.Injected, st.Delivered, st.PortDrops, st.SwitchDrops, st.InFlight)
	}
	return nil
}

// PathSpine maps a path index to its spine switch index.
func (n *Network) PathSpine(path int) int { return path / n.Cfg.cables() }

// PathCable maps a path index to its cable index within the spine link.
func (n *Network) PathCable(path int) int { return path % n.Cfg.cables() }

// UplinkPort returns leaf's port for the given path.
func (n *Network) UplinkPort(leaf, path int) *Port { return n.Leaves[leaf].up[path] }

// DownlinkPort returns the spine-side port of the given path toward leaf.
func (n *Network) DownlinkPort(path, leaf int) *Port {
	return n.Spines[n.PathSpine(path)].down[leaf*n.Cfg.cables()+n.PathCable(path)]
}

// LeafOf returns the leaf index of a host id.
func (n *Network) LeafOf(host int) int { return host / n.Cfg.HostsPerLeaf }

func (n *Network) firstHost(leaf int) int { return leaf * n.Cfg.HostsPerLeaf }

// NPaths returns the number of parallel paths between distinct leaves
// (spines x cables per link).
func (n *Network) NPaths() int { return n.Cfg.Spines * n.Cfg.cables() }

// SetFabricLink re-rates both directions of every cable of the leaf<->spine
// link. A zero rate cuts the link entirely.
func (n *Network) SetFabricLink(leaf, spine int, rateBps int64) {
	for c := 0; c < n.Cfg.cables(); c++ {
		n.SetCable(leaf, spine, c, rateBps)
	}
}

// SetCable re-rates both directions of one physical cable of a leaf<->spine
// link (the paper's testbed link cut removes exactly one cable).
func (n *Network) SetCable(leaf, spine, cable int, rateBps int64) {
	p := spine*n.Cfg.cables() + cable
	n.fabric[leaf][p] = rateBps
	n.Leaves[leaf].up[p].SetRateBps(rateBps)
	n.Spines[spine].down[leaf*n.Cfg.cables()+cable].SetRateBps(rateBps)
	n.pathCache = map[int][]int{}
}

// DeliveredPayloadBytes returns the cumulative application payload bytes
// delivered to destination hosts (goodput numerator).
func (n *Network) DeliveredPayloadBytes() uint64 { return n.deliveredPayload }

// Cables returns the number of parallel physical cables per leaf-spine pair.
func (n *Network) Cables() int { return n.Cfg.cables() }

// CableRate returns the current capacity of one cable of a leaf<->spine link.
func (n *Network) CableRate(leaf, spine, cable int) int64 {
	return n.fabric[leaf][spine*n.Cfg.cables()+cable]
}

// FabricLinkRate returns the current total leaf<->spine capacity across all
// cables of the pair.
func (n *Network) FabricLinkRate(leaf, spine int) int64 {
	var total int64
	for c := 0; c < n.Cfg.cables(); c++ {
		total += n.fabric[leaf][spine*n.Cfg.cables()+c]
	}
	return total
}

// AvailablePaths lists the path indices usable between two distinct leaves
// (both hops up and down must be alive). The returned slice is shared; do
// not mutate it.
func (n *Network) AvailablePaths(srcLeaf, dstLeaf int) []int {
	key := srcLeaf*n.Cfg.Leaves + dstLeaf
	if ps, ok := n.pathCache[key]; ok {
		return ps
	}
	var ps []int
	for p := 0; p < n.NPaths(); p++ {
		if n.fabric[srcLeaf][p] > 0 && n.fabric[dstLeaf][p] > 0 {
			ps = append(ps, p)
		}
	}
	n.pathCache[key] = ps
	return ps
}

// PathCapacityBps returns the bottleneck fabric capacity of path p between
// two leaves.
func (n *Network) PathCapacityBps(srcLeaf, dstLeaf, p int) int64 {
	up, down := n.fabric[srcLeaf][p], n.fabric[dstLeaf][p]
	if up < down {
		return up
	}
	return down
}

// BisectionBps returns the aggregate usable leaf->spine capacity, the
// normalization base for offered load.
func (n *Network) BisectionBps() int64 {
	var total int64
	for l := range n.fabric {
		for s := range n.fabric[l] {
			total += n.fabric[l][s]
		}
	}
	return total / 2 // half the fabric carries each direction on average
}

// ApproxBaseRTT estimates the unloaded inter-leaf RTT for a full-size data
// segment and its pure ACK: four store-and-forward hops each way plus
// propagation.
func (n *Network) ApproxBaseRTT() sim.Time {
	tx := func(bytes int, rate int64) sim.Time {
		return sim.Time(int64(bytes) * 8 * sim.Second / rate)
	}
	fwd := 2*n.Cfg.HostDelay + 2*n.Cfg.FabricDelay +
		2*tx(MaxPacketBytes, n.Cfg.HostRateBps) + 2*tx(MaxPacketBytes, n.Cfg.FabricRateBps)
	rev := 2*n.Cfg.HostDelay + 2*n.Cfg.FabricDelay +
		2*tx(AckBytes, n.Cfg.HostRateBps) + 2*tx(AckBytes, n.Cfg.FabricRateBps)
	return fwd + rev
}

// OneHopDelay returns the queueing delay of one fully loaded fabric hop,
// the paper's guideline for T_RTT_high and Delta_RTT (§3.3): ECN marking
// threshold divided by link capacity.
func (n *Network) OneHopDelay() sim.Time {
	k := DefaultECNK(n.Cfg.FabricRateBps)
	return sim.Time(int64(k) * 8 * sim.Second / n.Cfg.FabricRateBps)
}
