// Package net models a source-routed leaf-spine datacenter fabric at packet
// granularity: hosts, leaf and spine switches, unidirectional links with
// drop-tail output queues, strict two-level priority, ECN/RED marking, and
// per-port DRE utilization estimators. Explicit path control mirrors the
// XPath mechanism the Hermes prototype uses: every packet may carry the
// spine index it must traverse, and switches honor it.
package net

import "github.com/hermes-repro/hermes/internal/sim"

// Kind discriminates packet types handled by hosts and switches.
type Kind uint8

const (
	// Data is a TCP/DCTCP data segment.
	Data Kind = iota
	// Ack is a pure TCP acknowledgment; it travels in the high-priority
	// queue as in the Hermes testbed configuration.
	Ack
	// Probe is a Hermes active probe. It shares the data queue so that it
	// samples the congestion data packets would experience.
	Probe
	// ProbeEcho is the reply to a Probe; high priority, so the reverse trip
	// adds minimal noise to the RTT measurement.
	ProbeEcho
	// UDPData is an unreliable constant-rate segment (used by the
	// congestion-mismatch micro-benchmarks).
	UDPData
	nKinds
)

// Wire overheads in bytes.
const (
	HeaderBytes    = 40   // IP + TCP headers
	MSS            = 1460 // TCP payload bytes per full segment
	AckBytes       = 40   // pure ACK wire size
	ProbeBytes     = 64   // Hermes probe wire size (§3.1.3)
	MaxPacketBytes = MSS + HeaderBytes
)

// PathAny lets switches pick the uplink (used by switch-local balancers such
// as CONGA, LetFlow and DRILL, and for intra-leaf traffic).
const PathAny = -1

// Packet is the unit of transmission. A single struct covers all kinds to
// keep the hot path allocation-light; unused fields are zero.
type Packet struct {
	Kind Kind
	Flow uint64
	Src  int // source host id
	Dst  int // destination host id

	Seq     int64 // first payload byte (Data/UDPData); echoed seq for probes
	Payload int   // payload bytes carried
	Wire    int   // total bytes on the wire

	// ECN state.
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced (set by queues past the threshold)

	// Path is the spine index this packet must traverse, or PathAny.
	Path int

	// SentAt is stamped by the sender when the packet leaves the host.
	SentAt sim.Time
	// Retx marks retransmitted segments (excluded from RTT sampling).
	Retx bool

	// ACK fields: cumulative ack plus a timestamp/path/CE echo of the data
	// packet that triggered this ACK (TCP-timestamp-style, giving the
	// sender one exact per-path RTT and ECN sample per delivered packet).
	AckSeq   int64
	EchoSent sim.Time
	EchoPath int
	EchoCE   bool

	// CONGA metadata (see internal/lb/conga.go): the max DRE quantization
	// observed along the forward path, plus one piggybacked feedback entry.
	CongaCE  uint8
	FbValid  bool
	FbPath   uint8
	FbMetric uint8

	// Delay decomposition (FCT attribution). Ports stamp these as the packet
	// crosses the fabric: plain field writes on pooled structs, so the hot
	// path stays allocation-free. All values accumulate across hops and are
	// reset by the whole-struct overwrite every sender performs.
	EnqAt   sim.Time // enqueue instant on the port currently holding the packet
	QueueNs sim.Time // total time spent waiting in output queues
	SerNs   sim.Time // total serialization (transmission) time
	PropNs  sim.Time // total propagation time
	Hops    uint8    // store-and-forward hops traversed so far
	// HopQueue records the queue wait of each hop in traversal order. For
	// inter-leaf traffic the indices are host->leaf, leaf->spine,
	// spine->leaf, leaf->host; intra-leaf traffic uses the first two.
	HopQueue [MaxHops]sim.Time

	// EchoQueue echoes the acked data packet's total forward queueing delay
	// (its QueueNs at delivery) back to the sender, the per-packet signal
	// the FCT attribution spans aggregate.
	EchoQueue sim.Time
}

// MaxHops is the longest store-and-forward path through a leaf-spine fabric
// (host->leaf, leaf->spine, spine->leaf, leaf->host).
const MaxHops = 4

// IsHighPriority reports whether the packet travels in the strict
// high-priority queue (pure ACKs and probe echoes, per §4 of the paper).
func (p *Packet) IsHighPriority() bool {
	return p.Kind == Ack || p.Kind == ProbeEcho
}
