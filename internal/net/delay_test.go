package net

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

// delayFabric builds a 2x2x2 fabric and returns the engine and network.
func delayFabric(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := NewLeafSpine(eng, sim.NewRNG(1), Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func txNs(wire int, rateBps int64) sim.Time {
	return sim.Time(int64(wire) * 8 * sim.Second / rateBps)
}

// TestDelayDecompositionIdleFabric checks that a packet crossing an idle
// fabric accumulates exactly four hops of serialization and propagation and
// zero queueing.
func TestDelayDecompositionIdleFabric(t *testing.T) {
	eng, nw := delayFabric(t)
	var got Packet
	nw.Hosts[2].Handle(Data, func(p *Packet) { got = *p })
	pkt := nw.AllocPacket()
	*pkt = Packet{Kind: Data, Flow: 7, Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0}
	nw.Hosts[0].Send(pkt)
	eng.RunAll()

	ser := 4 * txNs(MaxPacketBytes, 10_000_000_000)
	if got.SerNs != ser {
		t.Fatalf("SerNs = %d, want %d", got.SerNs, ser)
	}
	if got.PropNs != 4000 {
		t.Fatalf("PropNs = %d, want 4000", got.PropNs)
	}
	if got.QueueNs != 0 {
		t.Fatalf("QueueNs = %d on an idle fabric", got.QueueNs)
	}
	if got.Hops != 4 {
		t.Fatalf("Hops = %d, want 4", got.Hops)
	}
}

// TestDelayDecompositionQueueing checks that a packet held behind another at
// the access link is charged the wait on hop 0 and nowhere else.
func TestDelayDecompositionQueueing(t *testing.T) {
	eng, nw := delayFabric(t)
	var pkts []Packet
	nw.Hosts[2].Handle(Data, func(p *Packet) { pkts = append(pkts, *p) })
	for i := 0; i < 2; i++ {
		pkt := nw.AllocPacket()
		*pkt = Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0}
		nw.Hosts[0].Send(pkt)
	}
	eng.RunAll()
	if len(pkts) != 2 {
		t.Fatalf("delivered %d packets", len(pkts))
	}
	ser := txNs(MaxPacketBytes, 10_000_000_000)
	second := pkts[1]
	if second.QueueNs != ser {
		t.Fatalf("QueueNs = %d, want one serialization time %d", second.QueueNs, ser)
	}
	if second.HopQueue[0] != ser || second.HopQueue[1] != 0 {
		t.Fatalf("HopQueue = %v, want wait only on hop 0", second.HopQueue)
	}
}

// TestDelayAccountAggregates checks the per-flow fabric-wide aggregation.
func TestDelayAccountAggregates(t *testing.T) {
	eng, nw := delayFabric(t)
	acct := nw.EnableDelayAccount()
	nw.Hosts[2].Handle(Data, func(p *Packet) {})
	for i := 0; i < 3; i++ {
		pkt := nw.AllocPacket()
		*pkt = Packet{Kind: Data, Flow: 5, Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0, Retx: i == 2}
		nw.Hosts[0].Send(pkt)
	}
	eng.RunAll()
	fd := acct.Flow(5)
	if fd == nil || fd.DataPkts != 3 || fd.RetxPkts != 1 {
		t.Fatalf("flow aggregate = %+v, want 3 data / 1 retx", fd)
	}
	if fd.SerNs != 3*4*txNs(MaxPacketBytes, 10_000_000_000) {
		t.Fatalf("SerNs = %d", fd.SerNs)
	}
	if fd.HopPkts[0] != 3 || fd.HopPkts[3] != 3 {
		t.Fatalf("HopPkts = %v", fd.HopPkts)
	}
	// Packets 2 and 3 each waited behind their predecessor at hop 0.
	if fd.HopQueueNs[0] == 0 || fd.QueueNs != fd.HopQueueNs[0] {
		t.Fatalf("queue decomposition = %+v", fd)
	}
	if flows := acct.Flows(); len(flows) != 1 || flows[0].Flow != 5 {
		t.Fatalf("Flows() = %v", flows)
	}
}

// TestTraceHooksObserveDropsAndMarks checks the fabric-wide drop and
// ECN-mark observers.
func TestTraceHooksObserveDropsAndMarks(t *testing.T) {
	eng, nw := delayFabric(t)
	var drops, marks []uint64
	nw.SetTraceHooks(
		func(p *Packet) { drops = append(drops, p.Flow) },
		func(p *Packet) { marks = append(marks, p.Flow) },
	)
	nw.Hosts[2].Handle(Data, func(p *Packet) {})

	// Cut path 1 entirely: a packet pinned to it dies at the leaf uplink.
	nw.SetCable(0, 0, 1, 0)
	pkt := nw.AllocPacket()
	*pkt = Packet{Kind: Data, Flow: 42, Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 1}
	nw.Hosts[0].Send(pkt)
	eng.RunAll()
	if len(drops) != 1 || drops[0] != 42 {
		t.Fatalf("drop hook saw %v, want flow 42", drops)
	}

	// Flood one path far past the ECN threshold (95 KB at 10 Gbps): the
	// marking port must report each marked packet.
	for i := 0; i < 120; i++ {
		p := nw.AllocPacket()
		*p = Packet{Kind: Data, Flow: 9, Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0, ECT: true}
		nw.Hosts[0].Send(p)
	}
	eng.RunAll()
	if len(marks) == 0 {
		t.Fatal("no ECN marks observed despite a 120-packet burst")
	}
	for _, f := range marks {
		if f != 9 {
			t.Fatalf("mark hook saw flow %d", f)
		}
	}
}
