package net

import (
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
)

// FlowDelay aggregates the delay decomposition of every packet of one flow
// that reached its destination host. Forward-path (Data) and reverse-path
// (Ack) packets are accounted separately: data queueing is the congestion a
// load balancer can steer around, ACK queueing only inflates the measured
// RTT.
type FlowDelay struct {
	Flow uint64

	// Data-packet totals (forward path).
	DataPkts   uint64
	RetxPkts   uint64 // delivered retransmitted segments
	MarkedPkts uint64 // delivered segments carrying CE
	QueueNs    sim.Time
	SerNs      sim.Time
	PropNs     sim.Time

	// HopQueueNs decomposes data-packet queueing by hop in traversal order
	// (host->leaf, leaf->spine, spine->leaf, leaf->host for inter-leaf
	// traffic); HopPkts counts the packets that traversed each hop.
	HopQueueNs [MaxHops]sim.Time
	HopPkts    [MaxHops]uint64

	// ACK totals (reverse path).
	AckPkts    uint64
	AckQueueNs sim.Time
}

// DelayAccount collects per-flow delay decompositions fabric-wide. Enable it
// with Network.EnableDelayAccount before traffic starts; with it disabled
// the delivery path pays a single nil check.
type DelayAccount struct {
	flows map[uint64]*FlowDelay
}

// EnableDelayAccount switches on per-flow delay aggregation at every host
// delivery and returns the account (idempotent).
func (n *Network) EnableDelayAccount() *DelayAccount {
	if n.acct == nil {
		n.acct = &DelayAccount{flows: map[uint64]*FlowDelay{}}
	}
	return n.acct
}

// observe folds one delivered packet into its flow's aggregate. Probe
// traffic is ignored: probes sample paths, they do not belong to a flow's
// completion time.
func (a *DelayAccount) observe(pkt *Packet) {
	switch pkt.Kind {
	case Data, UDPData:
		fd := a.get(pkt.Flow)
		fd.DataPkts++
		if pkt.Retx {
			fd.RetxPkts++
		}
		if pkt.CE {
			fd.MarkedPkts++
		}
		fd.QueueNs += pkt.QueueNs
		fd.SerNs += pkt.SerNs
		fd.PropNs += pkt.PropNs
		hops := int(pkt.Hops)
		if hops > MaxHops {
			hops = MaxHops
		}
		for i := 0; i < hops; i++ {
			fd.HopQueueNs[i] += pkt.HopQueue[i]
			fd.HopPkts[i]++
		}
	case Ack:
		fd := a.get(pkt.Flow)
		fd.AckPkts++
		fd.AckQueueNs += pkt.QueueNs
	}
}

func (a *DelayAccount) get(flow uint64) *FlowDelay {
	fd, ok := a.flows[flow]
	if !ok {
		fd = &FlowDelay{Flow: flow}
		a.flows[flow] = fd
	}
	return fd
}

// Flow returns one flow's aggregate, or nil if no packet of it was
// delivered.
func (a *DelayAccount) Flow(id uint64) *FlowDelay {
	if a == nil {
		return nil
	}
	return a.flows[id]
}

// Flows returns every aggregate sorted by flow ID — the deterministic
// iteration order for exports.
func (a *DelayAccount) Flows() []*FlowDelay {
	if a == nil {
		return nil
	}
	out := make([]*FlowDelay, 0, len(a.flows))
	for _, fd := range a.flows {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}
