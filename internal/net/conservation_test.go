package net

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

// conservationFabric builds a 2x2x2 fabric with deliberately shallow queues
// so a burst overflows the drop-tail and exercises the drop accounting.
func conservationFabric(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := NewLeafSpine(eng, sim.NewRNG(1), Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
		HostDelay: 1000, FabricDelay: 1000,
		QueueFactor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

// TestConservationBurst drives a burst large enough to overflow the shallow
// queues: afterwards every injected packet must be accounted for as
// delivered or dropped, with nothing in flight.
func TestConservationBurst(t *testing.T) {
	eng, nw := conservationFabric(t)
	const n = 400
	delivered := 0
	nw.Hosts[2].Handle(Data, func(p *Packet) { delivered++ })
	for i := 0; i < n; i++ {
		pkt := nw.AllocPacket()
		*pkt = Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
	}
	eng.RunAll()

	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := nw.PacketStats()
	if st.Injected != n {
		t.Fatalf("injected = %d, want %d", st.Injected, n)
	}
	if st.InFlight != 0 {
		t.Fatalf("in flight after drain = %d, want 0", st.InFlight)
	}
	if st.PortDrops == 0 {
		t.Fatal("burst did not overflow the queue; drop accounting untested")
	}
	if uint64(delivered) != st.Delivered {
		t.Fatalf("handler saw %d deliveries, ledger says %d", delivered, st.Delivered)
	}
}

// TestConservationMidFlight checks the ledger balances while packets are
// still queued, transmitting and propagating — the InFlight term.
func TestConservationMidFlight(t *testing.T) {
	eng, nw := conservationFabric(t)
	for i := 0; i < 16; i++ {
		pkt := nw.AllocPacket()
		*pkt = Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
	}
	// Advance just past the first hop's serialization so part of the burst
	// is mid-fabric.
	eng.Run(5 * sim.Microsecond)
	st := nw.PacketStats()
	if st.InFlight == 0 {
		t.Fatal("expected packets in flight mid-run")
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	eng.RunAll()
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestConservationSwitchDrops covers the silent-drop path: a blackholed
// spine swallows packets via DropFn, and the ledger must count them.
func TestConservationSwitchDrops(t *testing.T) {
	eng, nw := conservationFabric(t)
	nw.Spines[0].AddDropFn(func(p *Packet) bool { return p.Kind == Data })
	const n = 50
	for i := 0; i < n; i++ {
		pkt := nw.AllocPacket()
		*pkt = Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0}
		nw.Hosts[0].Send(pkt)
	}
	eng.RunAll()
	st := nw.PacketStats()
	if st.SwitchDrops != n {
		t.Fatalf("switch drops = %d, want %d", st.SwitchDrops, n)
	}
	if err := nw.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestConservationDetectsImbalance forges a ledger imbalance and verifies
// CheckConservation actually reports it — the check must not be a tautology.
func TestConservationDetectsImbalance(t *testing.T) {
	eng, nw := conservationFabric(t)
	pkt := nw.AllocPacket()
	*pkt = Packet{Kind: Data, Src: 0, Dst: 2, Wire: MaxPacketBytes}
	nw.Hosts[0].Send(pkt)
	eng.RunAll()
	if err := nw.CheckConservation(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	nw.injected++ // simulate a leaked packet
	if err := nw.CheckConservation(); err == nil {
		t.Fatal("forged imbalance not detected")
	}
}
