package net

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

func newTestPort(t *testing.T, rate int64, prop sim.Time) (*sim.Engine, *Port, *[]*Packet) {
	t.Helper()
	eng := sim.NewEngine()
	var got []*Packet
	p := NewPort(eng, "test", PortConfig{RateBps: rate, PropDelay: prop, ECNK: -1},
		func(pkt *Packet) { got = append(got, pkt) })
	return eng, p, &got
}

func TestPortDeliveryTiming(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 10*sim.Microsecond)
	pkt := &Packet{Kind: Data, Wire: 1500}
	p.Enqueue(pkt)
	eng.RunAll()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	// 1500 B at 1 Gbps = 12 us serialization + 10 us propagation.
	want := sim.Time(12_000 + 10_000)
	if eng.Now() != want {
		t.Fatalf("delivery at %d ns, want %d", eng.Now(), want)
	}
}

func TestPortFIFOWithinClass(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	for i := 0; i < 10; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 100, Seq: int64(i)})
	}
	eng.RunAll()
	for i, pkt := range *got {
		if pkt.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d; FIFO violated", i, pkt.Seq)
		}
	}
}

func TestPortStrictPriority(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	// Fill the data queue first, then enqueue an ACK: the ACK must overtake
	// all but the in-flight data packet.
	for i := 0; i < 5; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 1500, Seq: int64(i)})
	}
	p.Enqueue(&Packet{Kind: Ack, Wire: 40})
	eng.RunAll()
	if (*got)[0].Kind != Data {
		t.Fatal("in-flight data packet should complete first")
	}
	if (*got)[1].Kind != Ack {
		t.Fatalf("ACK did not overtake queued data: %v", (*got)[1].Kind)
	}
}

func TestPortDropTail(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	// Queue capacity for 1 Gbps defaults to 5*30000 = 150000 bytes.
	n := 0
	for i := 0; i < 200; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 1500})
		n++
	}
	eng.RunAll()
	if p.Drops == 0 {
		t.Fatal("no drops despite 300 KB offered to a 150 KB queue")
	}
	if len(*got)+int(p.Drops) != n {
		t.Fatalf("delivered %d + dropped %d != enqueued %d", len(*got), p.Drops, n)
	}
}

func TestPortECNMarking(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	// ECN threshold at 1 Gbps is 30 KB: the first ~20 packets must be
	// unmarked, later ones marked.
	for i := 0; i < 60; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 1500, ECT: true})
	}
	eng.RunAll()
	if p.ECNMarks == 0 {
		t.Fatal("no ECN marks despite queue exceeding threshold")
	}
	if (*got)[0].CE {
		t.Fatal("first packet marked despite empty queue")
	}
	last := (*got)[len(*got)-1]
	_ = last
	marked := 0
	for _, pkt := range *got {
		if pkt.CE {
			marked++
		}
	}
	if marked != int(p.ECNMarks) {
		t.Fatalf("marked %d packets but counter says %d", marked, p.ECNMarks)
	}
}

func TestPortNoECNWithoutECT(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	for i := 0; i < 60; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 1500, ECT: false})
	}
	eng.RunAll()
	for _, pkt := range *got {
		if pkt.CE {
			t.Fatal("non-ECT packet was CE-marked")
		}
	}
}

func TestPortHighPriorityNeverDropped(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	for i := 0; i < 300; i++ {
		p.Enqueue(&Packet{Kind: Ack, Wire: 40})
	}
	eng.RunAll()
	if len(*got) != 300 {
		t.Fatalf("high-priority class dropped packets: %d/300", len(*got))
	}
}

func TestPortDownDropsEverything(t *testing.T) {
	eng, p, got := newTestPort(t, 1_000_000_000, 0)
	p.SetRateBps(0)
	p.Enqueue(&Packet{Kind: Data, Wire: 100})
	p.Enqueue(&Packet{Kind: Ack, Wire: 40})
	eng.RunAll()
	if len(*got) != 0 || p.Drops != 2 {
		t.Fatalf("cut link delivered %d, dropped %d", len(*got), p.Drops)
	}
}

func TestPortOnTxHook(t *testing.T) {
	eng, p, _ := newTestPort(t, 1_000_000_000, 0)
	seen := 0
	p.OnTx = func(pkt *Packet) { seen++ }
	for i := 0; i < 5; i++ {
		p.Enqueue(&Packet{Kind: Data, Wire: 100})
	}
	eng.RunAll()
	if seen != 5 {
		t.Fatalf("OnTx fired %d times, want 5", seen)
	}
}

func TestPortThroughputAtCapacity(t *testing.T) {
	eng, p, got := newTestPort(t, 10_000_000_000, 0)
	// Saturate: 1000 packets of 1500 B at 10 Gbps should take 1500*8*100 ns
	// each = 1.2 us => 1.2 ms total.
	var inject func(i int)
	inject = func(i int) {
		if i >= 1000 {
			return
		}
		p.Enqueue(&Packet{Kind: Data, Wire: 1500})
		eng.Schedule(1200, func() { inject(i + 1) }) // matched to line rate
	}
	inject(0)
	eng.RunAll()
	if len(*got) != 1000 {
		t.Fatalf("delivered %d/1000 at line rate", len(*got))
	}
	wantDur := sim.Time(1000 * 1200)
	if eng.Now() < wantDur || eng.Now() > wantDur+2400 {
		t.Fatalf("1000 packets took %d ns, want ~%d", eng.Now(), wantDur)
	}
}

func TestDefaultECNK(t *testing.T) {
	cases := []struct {
		rate int64
		want int
	}{
		{1_000_000_000, 30_000},
		{10_000_000_000, 95_000},
		{500_000_000, 15_000},
		{0, 0},
	}
	for _, c := range cases {
		if got := DefaultECNK(c.rate); got != c.want {
			t.Errorf("DefaultECNK(%d) = %d, want %d", c.rate, got, c.want)
		}
	}
	// Interpolation must be monotone between 1 and 10 Gbps.
	prev := DefaultECNK(1_000_000_000)
	for r := int64(2e9); r <= 10e9; r += 1e9 {
		k := DefaultECNK(r)
		if k < prev {
			t.Fatalf("ECN threshold not monotone at %d bps", r)
		}
		prev = k
	}
}
