package net

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

func testNet(t *testing.T, leaves, spines, hpl int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := NewLeafSpine(eng, sim.NewRNG(1), Config{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hpl,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Leaves: 1, Spines: 1, HostsPerLeaf: 1, HostRateBps: 1, FabricRateBps: 1},
		{Leaves: 2, Spines: 0, HostsPerLeaf: 1, HostRateBps: 1, FabricRateBps: 1},
		{Leaves: 2, Spines: 1, HostsPerLeaf: 0, HostRateBps: 1, FabricRateBps: 1},
		{Leaves: 2, Spines: 1, HostsPerLeaf: 1, HostRateBps: 0, FabricRateBps: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but is invalid", i)
		}
	}
}

func TestLeafOf(t *testing.T) {
	_, nw := testNet(t, 4, 2, 8)
	if nw.LeafOf(0) != 0 || nw.LeafOf(7) != 0 || nw.LeafOf(8) != 1 || nw.LeafOf(31) != 3 {
		t.Fatal("LeafOf mapping wrong")
	}
}

func deliverTo(nw *Network, dst int) *[]*Packet {
	var got []*Packet
	for k := Kind(0); k < nKinds; k++ {
		k := k
		nw.Hosts[dst].Handle(k, func(p *Packet) { got = append(got, p) })
	}
	return &got
}

func TestInterLeafForwardingHonorsPath(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	got := deliverTo(nw, 2)
	for path := 0; path < 4; path++ {
		nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: path})
	}
	eng.RunAll()
	if len(*got) != 4 {
		t.Fatalf("delivered %d/4", len(*got))
	}
	for s := 0; s < 4; s++ {
		if nw.Spines[s].Downlink(1).TxPackets != 1 {
			t.Fatalf("spine %d carried %d packets, want exactly 1",
				s, nw.Spines[s].Downlink(1).TxPackets)
		}
	}
}

func TestIntraLeafStaysLocal(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	got := deliverTo(nw, 1)
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 1, Wire: 100, Path: PathAny})
	eng.RunAll()
	if len(*got) != 1 {
		t.Fatal("intra-leaf packet not delivered")
	}
	for s := range nw.Spines {
		if nw.Spines[s].Downlink(0).TxPackets != 0 {
			t.Fatal("intra-leaf packet traversed a spine")
		}
	}
}

func TestDefaultECMPHashIsPerFlow(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	got := deliverTo(nw, 2)
	for i := 0; i < 20; i++ {
		nw.Hosts[0].Send(&Packet{Kind: Data, Flow: 77, Src: 0, Dst: 2, Wire: 100, Path: PathAny})
	}
	eng.RunAll()
	if len(*got) != 20 {
		t.Fatalf("delivered %d/20", len(*got))
	}
	first := (*got)[0].Path
	for _, p := range *got {
		if p.Path != first {
			t.Fatal("same flow hashed to different spines")
		}
	}
}

func TestAvailablePathsAfterCut(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	if got := len(nw.AvailablePaths(0, 1)); got != 4 {
		t.Fatalf("paths = %d, want 4", got)
	}
	nw.SetFabricLink(0, 2, 0)
	paths := nw.AvailablePaths(0, 1)
	if len(paths) != 3 {
		t.Fatalf("paths after cut = %d, want 3", len(paths))
	}
	for _, p := range paths {
		if p == 2 {
			t.Fatal("cut path still listed")
		}
	}
	// The reverse direction loses the same spine.
	if len(nw.AvailablePaths(1, 0)) != 3 {
		t.Fatal("reverse path set inconsistent")
	}
}

func TestPathCapacity(t *testing.T) {
	_, nw := testNet(t, 2, 4, 2)
	nw.SetFabricLink(0, 1, 2e9)
	if got := nw.PathCapacityBps(0, 1, 1); got != 2e9 {
		t.Fatalf("bottleneck capacity = %d, want 2e9", got)
	}
	if got := nw.PathCapacityBps(1, 0, 1); got != 2e9 {
		t.Fatal("bottleneck not symmetric")
	}
	if got := nw.PathCapacityBps(0, 1, 0); got != 10e9 {
		t.Fatalf("healthy path capacity = %d", got)
	}
}

func TestBisection(t *testing.T) {
	_, nw := testNet(t, 4, 4, 2)
	// 4 leaves x 4 spines x 10G / 2.
	if got := nw.BisectionBps(); got != 80e9 {
		t.Fatalf("bisection = %d, want 80e9", got)
	}
	nw.SetFabricLink(0, 0, 0)
	if got := nw.BisectionBps(); got != 75e9 {
		t.Fatalf("bisection after cut = %d, want 75e9", got)
	}
}

func TestSpineDropFn(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	got := deliverTo(nw, 2)
	dropped := 0
	nw.Spines[0].AddDropFn(func(p *Packet) bool { dropped++; return true })
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: 0})
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: 1})
	eng.RunAll()
	if dropped != 1 || len(*got) != 1 {
		t.Fatalf("dropped=%d delivered=%d, want 1/1", dropped, len(*got))
	}
}

func TestSwitchBalancerSelectUplink(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	got := deliverTo(nw, 2)
	fixed := &fixedBalancer{path: 3}
	nw.Leaves[0].Balancer = fixed
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: PathAny})
	eng.RunAll()
	if len(*got) != 1 || (*got)[0].Path != 3 {
		t.Fatal("switch balancer choice not honored")
	}
	if fixed.departs != 1 {
		t.Fatal("OnDepart not invoked")
	}
	// Arrivals fire at the destination leaf.
	nw.Leaves[1].Balancer = fixed
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: PathAny})
	eng.RunAll()
	if fixed.arrives != 1 {
		t.Fatalf("OnArrive fired %d times, want 1", fixed.arrives)
	}
}

type fixedBalancer struct {
	path             int
	departs, arrives int
}

func (f *fixedBalancer) SelectUplink(*Packet, int) int { return f.path }
func (f *fixedBalancer) OnDepart(*Packet, int)         { f.departs++ }
func (f *fixedBalancer) OnArrive(*Packet, int)         { f.arrives++ }

func TestApproxBaseRTTPositive(t *testing.T) {
	_, nw := testNet(t, 2, 2, 2)
	rtt := nw.ApproxBaseRTT()
	if rtt <= 0 || rtt > sim.Millisecond {
		t.Fatalf("base RTT estimate %d ns implausible", rtt)
	}
	if nw.OneHopDelay() <= 0 {
		t.Fatal("one-hop delay must be positive")
	}
}

func TestEndToEndBaseRTTMatchesEstimate(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	var rtt sim.Time
	nw.Hosts[2].Handle(Data, func(p *Packet) {
		nw.Hosts[2].Send(&Packet{Kind: Ack, Src: 2, Dst: 0, Wire: AckBytes, Path: p.Path})
	})
	nw.Hosts[0].Handle(Ack, func(p *Packet) { rtt = eng.Now() })
	nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: 0})
	eng.RunAll()
	est := nw.ApproxBaseRTT()
	if rtt == 0 {
		t.Fatal("no ACK came back")
	}
	diff := rtt - est
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(est) {
		t.Fatalf("measured base RTT %d vs estimate %d (>10%% off)", rtt, est)
	}
}

func testCabledNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := NewLeafSpine(eng, sim.NewRNG(1), Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, CablesPerLink: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func TestCablesNPaths(t *testing.T) {
	_, nw := testCabledNet(t)
	if nw.NPaths() != 4 {
		t.Fatalf("NPaths = %d, want 4 (2 spines x 2 cables)", nw.NPaths())
	}
	if len(nw.AvailablePaths(0, 1)) != 4 {
		t.Fatal("available paths != 4")
	}
	if nw.PathSpine(3) != 1 || nw.PathCable(3) != 1 {
		t.Fatal("path decomposition wrong")
	}
	if nw.PathSpine(1) != 0 || nw.PathCable(1) != 1 {
		t.Fatal("path decomposition wrong for path 1")
	}
}

func TestCablesIndependentForwarding(t *testing.T) {
	eng, nw := testCabledNet(t)
	got := deliverTo(nw, 2)
	for p := 0; p < 4; p++ {
		nw.Hosts[0].Send(&Packet{Kind: Data, Src: 0, Dst: 2, Wire: 100, Path: p})
	}
	eng.RunAll()
	if len(*got) != 4 {
		t.Fatalf("delivered %d/4", len(*got))
	}
	// Each path's spine-side downlink carried exactly one packet.
	for p := 0; p < 4; p++ {
		if nw.DownlinkPort(p, 1).TxPackets != 1 {
			t.Fatalf("path %d downlink carried %d packets, want 1", p, nw.DownlinkPort(p, 1).TxPackets)
		}
	}
}

func TestCutCableLeavesSiblingAlive(t *testing.T) {
	_, nw := testCabledNet(t)
	nw.SetCable(1, 1, 1, 0) // unplug one of leaf1-spine1's two cables
	paths := nw.AvailablePaths(0, 1)
	if len(paths) != 3 {
		t.Fatalf("paths after cable cut = %d, want 3", len(paths))
	}
	for _, p := range paths {
		if p == 3 {
			t.Fatal("cut cable still listed")
		}
	}
	// The sibling cable of the same spine remains usable.
	found := false
	for _, p := range paths {
		if nw.PathSpine(p) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("whole spine lost after a single cable cut")
	}
	// Total pair capacity halves; bisection drops to 75%.
	if nw.FabricLinkRate(1, 1) != 1e9 {
		t.Fatalf("pair capacity = %d, want 1e9", nw.FabricLinkRate(1, 1))
	}
	if got := nw.BisectionBps(); got != 3_500_000_000 {
		// 2 leaves x 4 cables x 1G = 8G minus 1G cut = 7G; /2 = 3.5G.
		t.Fatalf("bisection = %d, want 3.5e9", got)
	}
}
