package net

import (
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// AttachFlightRecorder registers the fabric's time-series surface on the
// flight recorder: per-fabric-port queue depth (instantaneous and interval
// peak), utilization, ECN-mark and drop rates, plus fabric-wide aggregates.
// Host access ports contribute to the aggregates only, keeping the series
// count proportional to the fabric.
//
// All probes are pull-style and sampled once per recorder interval, so the
// data-plane hot path is untouched except for the one peak-tracking branch
// armed by EnablePeakSampling. Rate probes are stateful (delta since the
// previous sample), which the recorder's once-per-instant contract makes
// well-defined.
func (n *Network) AttachFlightRecorder(rec *timeseries.Recorder) {
	if rec == nil {
		return
	}
	interval := float64(rec.Interval)
	if interval <= 0 {
		interval = float64(timeseries.DefaultInterval)
	}

	var fabricPorts, allPorts []*Port
	for _, leaf := range n.Leaves {
		fabricPorts = append(fabricPorts, leaf.up...)
		allPorts = append(allPorts, leaf.up...)
		allPorts = append(allPorts, leaf.down...)
	}
	for _, sp := range n.Spines {
		fabricPorts = append(fabricPorts, sp.down...)
		allPorts = append(allPorts, sp.down...)
	}
	for _, h := range n.Hosts {
		allPorts = append(allPorts, h.uplink)
	}

	// Fabric-wide aggregates: offered throughput plus cumulative loss/marks.
	var lastTx uint64
	rec.Register("net.tx_gbps", func() float64 {
		var tx uint64
		for _, p := range allPorts {
			tx += p.TxBytes
		}
		d := tx - lastTx
		lastTx = tx
		return float64(d) * 8 / interval // bytes per ns-interval -> Gbit/s
	})
	// Goodput: application payload bytes landing at destination hosts. The
	// recovery analysis dips on this series rather than tx_gbps because the
	// latter counts headers, ACKs, probes and retransmits on every port, all
	// of which INCREASE under failure and mask the dip.
	goodput := deltaProbe(func() uint64 { return n.deliveredPayload })
	rec.Register("net.goodput_gbps",
		func() float64 { return goodput() * 8 / interval })
	rec.Register("net.drops_total", func() float64 {
		var t uint64
		for _, p := range allPorts {
			t += p.Drops
		}
		return float64(t)
	})
	rec.Register("net.ecn_marks_total", func() float64 {
		var t uint64
		for _, p := range allPorts {
			t += p.ECNMarks
		}
		return float64(t)
	})

	for _, p := range fabricPorts {
		p := p
		p.EnablePeakSampling()
		rec.Register(telemetry.Key("net.port.queue_bytes", "port", p.Name),
			func() float64 { return float64(p.loBytes) })
		rec.Register(telemetry.Key("net.port.queue_peak_bytes", "port", p.Name),
			func() float64 { return float64(p.TakeQueuePeak()) })
		rec.Register(telemetry.Key("net.port.util", "port", p.Name),
			utilProbe(p, interval))
		rec.Register(telemetry.Key("net.port.ecn_mark_rate", "port", p.Name),
			deltaProbe(func() uint64 { return p.ECNMarks }))
		rec.Register(telemetry.Key("net.port.drop_rate", "port", p.Name),
			deltaProbe(func() uint64 { return p.Drops }))
	}
}

// utilProbe returns the fraction of the last interval the port spent
// transmitting (busy-time delta over interval; can exceed 1 transiently when
// a serialization slot straddles the sample edge).
func utilProbe(p *Port, intervalNs float64) func() float64 {
	var last int64
	return func() float64 {
		busy := int64(p.busyTime)
		d := busy - last
		last = busy
		return float64(d) / intervalNs
	}
}

// deltaProbe turns a cumulative counter into a per-interval rate series.
func deltaProbe(read func() uint64) func() float64 {
	var last uint64
	return func() float64 {
		v := read()
		d := v - last
		last = v
		return float64(d)
	}
}
