package net

import "github.com/hermes-repro/hermes/internal/sim"

// Port is one direction of a link: an output queue plus a transmitter. It
// implements strict two-level priority (ACKs/probe-echoes above data), a
// drop-tail data queue, instantaneous-queue ECN marking as configured for
// DCTCP, and a DRE that tracks link utilization for CONGA-style sensing.
type Port struct {
	eng *sim.Engine

	// Name identifies the port in diagnostics, e.g. "leaf0->spine2".
	Name string

	rateBps   int64    // link capacity in bits per second
	propDelay sim.Time // one-way propagation delay
	queueCap  int      // data-queue capacity in bytes
	ecnK      int      // ECN marking threshold in bytes (0 disables)

	deliver func(*Packet) // invoked at the far end after propagation
	// recycle, when non-nil, receives packets this port drops so a pool can
	// reuse them. Set by Network on fabric ports; nil on standalone ports.
	recycle func(*Packet)

	hi, lo           pktRing
	hiBytes, loBytes int
	busy             bool
	// holding counts packets this port currently owns: queued, transmitting,
	// or propagating toward the far end. The conservation invariant sums it
	// fabric-wide.
	holding int64

	// OnTx, if set, runs when a packet starts transmission on this port
	// (after the DRE update). CONGA uses it to stamp congestion metrics.
	OnTx func(*Packet)

	// onDrop/onMark, when non-nil, observe every packet this port drops or
	// ECN-marks. Installed fabric-wide by Network.SetTraceHooks; each costs
	// one nil check on its (rare) path when tracing is off.
	onDrop func(*Packet)
	onMark func(*Packet)

	dre DRE

	// Counters.
	TxBytes   uint64
	TxPackets uint64
	Drops     uint64
	ECNMarks  uint64

	// hiWater is the deepest data-queue occupancy seen, busyTime the total
	// virtual time spent transmitting. Both are plain adds on the hot path
	// so they stay on even when the telemetry registry is disabled.
	hiWater  int
	busyTime sim.Time

	// peakOn arms interval peak tracking for the flight recorder: when set,
	// samplePeak follows the deepest data-queue occupancy since the last
	// TakeQueuePeak. One predictable branch in Enqueue when disarmed.
	peakOn     bool
	samplePeak int
}

// PortConfig carries the physical parameters of a port.
type PortConfig struct {
	RateBps   int64
	PropDelay sim.Time
	QueueCap  int // bytes; <=0 picks a rate-based default
	ECNK      int // bytes; <0 picks a rate-based default, 0 disables
}

// DefaultECNK returns the instantaneous-queue marking threshold used for a
// link of the given capacity: 30 KB at 1 Gbps (the paper's testbed uses
// 30 KB with ~100us base RTT), 95 KB (= 65 full segments) at 10 Gbps, with
// linear interpolation in between and proportional scaling outside.
func DefaultECNK(rateBps int64) int {
	const (
		oneG = 1_000_000_000
		tenG = 10_000_000_000
		kLo  = 30_000
		kHi  = 95_000
	)
	switch {
	case rateBps <= 0:
		return 0
	case rateBps <= oneG:
		return int(float64(kLo) * float64(rateBps) / float64(oneG))
	case rateBps >= tenG:
		return int(float64(kHi) * float64(rateBps) / float64(tenG))
	default:
		frac := float64(rateBps-oneG) / float64(tenG-oneG)
		return kLo + int(frac*(kHi-kLo))
	}
}

// DefaultQueueCap returns the drop-tail data-queue capacity for a link of
// the given rate: about five times the ECN threshold, which leaves DCTCP
// headroom while still allowing overload drops.
func DefaultQueueCap(rateBps int64) int {
	k := DefaultECNK(rateBps)
	if k == 0 {
		return 150_000
	}
	return 5 * k
}

// NewPort builds a port. deliver is called with each packet propDelay after
// its transmission completes.
func NewPort(eng *sim.Engine, name string, cfg PortConfig, deliver func(*Packet)) *Port {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap(cfg.RateBps)
	}
	if cfg.ECNK < 0 {
		cfg.ECNK = DefaultECNK(cfg.RateBps)
	}
	return &Port{
		eng:       eng,
		Name:      name,
		rateBps:   cfg.RateBps,
		propDelay: cfg.PropDelay,
		queueCap:  cfg.QueueCap,
		ecnK:      cfg.ECNK,
		deliver:   deliver,
		dre:       NewDRE(DefaultDRETau),
	}
}

// RateBps returns the configured capacity in bits per second.
func (p *Port) RateBps() int64 { return p.rateBps }

// SetRateBps re-configures the link capacity (used to model degraded links
// in asymmetric topologies) and rescales the ECN threshold and queue size,
// preserving the configured queue-depth-to-threshold ratio.
func (p *Port) SetRateBps(rate int64) {
	factor := 5
	if p.ecnK > 0 && p.queueCap > 0 {
		factor = p.queueCap / p.ecnK
		if factor < 1 {
			factor = 1
		}
	}
	p.rateBps = rate
	p.ecnK = DefaultECNK(rate)
	if p.ecnK > 0 {
		p.queueCap = factor * p.ecnK
	} else {
		p.queueCap = DefaultQueueCap(rate)
	}
}

// QueueCapBytes returns the drop-tail data-queue capacity in bytes. Alert
// thresholds (queue-saturation) are sized against it.
func (p *Port) QueueCapBytes() int { return p.queueCap }

// PropDelay returns the one-way propagation delay.
func (p *Port) PropDelay() sim.Time { return p.propDelay }

// SetPropDelay re-configures the propagation delay (used to model long or
// skewed paths in tests and micro-benchmarks).
func (p *Port) SetPropDelay(d sim.Time) { p.propDelay = d }

// Down reports whether the link is cut (zero capacity).
func (p *Port) Down() bool { return p.rateBps <= 0 }

// QueuedBytes returns the bytes waiting in the data queue (DRILL's signal).
func (p *Port) QueuedBytes() int { return p.loBytes }

// QueueHiWater returns the high-watermark of the data-queue depth in bytes.
func (p *Port) QueueHiWater() int { return p.hiWater }

// BusyTime returns the cumulative virtual time this port spent transmitting
// (its utilization integral; divide by elapsed time for mean utilization).
func (p *Port) BusyTime() sim.Time { return p.busyTime }

// UtilQuantized returns the CONGA 3-bit utilization metric of this port.
func (p *Port) UtilQuantized(now sim.Time) uint8 {
	return p.dre.Quantize(now, p.rateBps, 8)
}

// DREQuant returns the DRE utilization metric quantized to the given number
// of levels.
func (p *Port) DREQuant(now sim.Time, levels int) uint8 {
	return p.dre.Quantize(now, p.rateBps, levels)
}

// UtilFraction returns the estimated utilization of the port in [0, ~1+].
func (p *Port) UtilFraction(now sim.Time) float64 {
	if p.rateBps <= 0 {
		return 1
	}
	return p.dre.RateBps(now) / float64(p.rateBps)
}

// EnablePeakSampling arms per-interval queue-peak tracking for the flight
// recorder.
func (p *Port) EnablePeakSampling() {
	p.peakOn = true
	p.samplePeak = p.loBytes
}

// TakeQueuePeak returns the deepest data-queue occupancy since the previous
// call and resets the tracker to the current depth (read-and-reset; sampled
// once per recorder interval).
func (p *Port) TakeQueuePeak() int {
	peak := p.samplePeak
	p.samplePeak = p.loBytes
	return peak
}

// Enqueue accepts a packet for transmission. Data-class packets beyond the
// queue capacity are dropped silently (drop-tail); ECN-capable packets are
// marked when the instantaneous data-queue depth exceeds the threshold.
func (p *Port) Enqueue(pkt *Packet) {
	if p.Down() {
		p.Drops++
		p.drop(pkt)
		return
	}
	pkt.EnqAt = p.eng.Now()
	if pkt.IsHighPriority() {
		p.hi.push(pkt)
		p.hiBytes += pkt.Wire
	} else {
		if p.loBytes+pkt.Wire > p.queueCap {
			p.Drops++
			p.drop(pkt)
			return
		}
		p.lo.push(pkt)
		p.loBytes += pkt.Wire
		if p.loBytes > p.hiWater {
			p.hiWater = p.loBytes
		}
		if p.peakOn && p.loBytes > p.samplePeak {
			p.samplePeak = p.loBytes
		}
		if p.ecnK > 0 && pkt.ECT && p.loBytes > p.ecnK {
			pkt.CE = true
			p.ECNMarks++
			if p.onMark != nil {
				p.onMark(pkt)
			}
		}
	}
	p.holding++
	if !p.busy {
		p.transmitNext()
	}
}

// drop hands a refused packet to the pool, if any, after notifying the trace
// hook.
func (p *Port) drop(pkt *Packet) {
	if p.onDrop != nil {
		p.onDrop(pkt)
	}
	if p.recycle != nil {
		p.recycle(pkt)
	}
}

// Holding returns the number of packets this port currently owns (queued,
// transmitting, or propagating toward the far end).
func (p *Port) Holding() int64 { return p.holding }

func (p *Port) transmitNext() {
	var pkt *Packet
	switch {
	case p.hi.n > 0:
		pkt = p.hi.pop()
		p.hiBytes -= pkt.Wire
	case p.lo.n > 0:
		pkt = p.lo.pop()
		p.loBytes -= pkt.Wire
	default:
		p.busy = false
		return
	}
	p.busy = true
	now := p.eng.Now()
	p.dre.Add(pkt.Wire, now)
	if p.OnTx != nil {
		p.OnTx(pkt)
	}
	txTime := sim.Time(int64(pkt.Wire) * 8 * sim.Second / p.rateBps)
	p.busyTime += txTime
	// Delay decomposition: this hop's queue wait, serialization and the
	// propagation leg about to start. Plain adds on pooled fields.
	wait := now - pkt.EnqAt
	pkt.QueueNs += wait
	if pkt.Hops < MaxHops {
		pkt.HopQueue[pkt.Hops] = wait
	}
	pkt.SerNs += txTime
	pkt.PropNs += p.propDelay
	pkt.Hops++
	// Pre-bound callbacks keep the two hottest scheduling sites in the whole
	// simulator free of closure allocations.
	p.eng.ScheduleCallKind(txTime, sim.KindPortTx, portTxDone, p, pkt)
}

// portTxDone fires when a packet's last bit leaves the transmitter: start
// the propagation leg and pull the next packet from the queues.
func portTxDone(a1, a2 any) {
	p, pkt := a1.(*Port), a2.(*Packet)
	p.TxBytes += uint64(pkt.Wire)
	p.TxPackets++
	p.eng.ScheduleCallKind(p.propDelay, sim.KindPropagate, portPropagated, p, pkt)
	p.transmitNext()
}

// portPropagated fires when the packet reaches the far end of the link.
func portPropagated(a1, a2 any) {
	p, pkt := a1.(*Port), a2.(*Packet)
	p.holding--
	p.deliver(pkt)
}

// pktRing is a growable FIFO ring buffer of packets: O(1) push and pop, no
// per-dequeue memmove (queues hold hundreds of packets at 10 Gbps).
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
