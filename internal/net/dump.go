package net

// PortDump is one port's checkpoint-visible state: identity, configured
// rate, and the cumulative counters plus instantaneous queue occupancy that
// fingerprint its position in a deterministic run.
type PortDump struct {
	Name        string `json:"name"`
	RateBps     int64  `json:"rate_bps"`
	TxBytes     uint64 `json:"tx_bytes"`
	TxPackets   uint64 `json:"tx_packets"`
	Drops       uint64 `json:"drops"`
	ECNMarks    uint64 `json:"ecn_marks"`
	QueuedBytes int64  `json:"queued_bytes"`
	Holding     int64  `json:"holding"`
	BusyNs      int64  `json:"busy_ns"`
}

// Dump is the fabric's full observable state for checkpoint verification:
// every cable rate, every port in ForEachPort order, the packet ledger, the
// per-switch silent-drop counters and drop-hook census, and the packet-pool
// bookkeeping. All of it is deterministic per seed, so two replays of the
// same run agree byte-for-byte.
type Dump struct {
	CableRates       [][][]int64 `json:"cable_rates"` // [leaf][spine][cable]
	Ports            []PortDump  `json:"ports"`
	Injected         uint64      `json:"injected"`
	Delivered        uint64      `json:"delivered"`
	DeliveredPayload uint64      `json:"delivered_payload"`
	SwitchDrops      []uint64    `json:"switch_drops"` // leaves then spines
	DropHooks        []int       `json:"drop_hooks"`   // leaves then spines
	PoolFree         int         `json:"pool_free"`
}

// Dump captures the fabric state. It is read-only: no RNG draws, no event
// scheduling, no counter resets.
func (n *Network) Dump() *Dump {
	d := &Dump{
		Injected:         n.injected,
		Delivered:        n.delivered,
		DeliveredPayload: n.deliveredPayload,
		PoolFree:         len(n.pktFree),
	}
	d.CableRates = make([][][]int64, n.Cfg.Leaves)
	for l := 0; l < n.Cfg.Leaves; l++ {
		d.CableRates[l] = make([][]int64, n.Cfg.Spines)
		for s := 0; s < n.Cfg.Spines; s++ {
			rates := make([]int64, n.Cables())
			for c := range rates {
				rates[c] = n.CableRate(l, s, c)
			}
			d.CableRates[l][s] = rates
		}
	}
	n.ForEachPort(func(p *Port) {
		d.Ports = append(d.Ports, PortDump{
			Name:        p.Name,
			RateBps:     p.RateBps(),
			TxBytes:     p.TxBytes,
			TxPackets:   p.TxPackets,
			Drops:       p.Drops,
			ECNMarks:    p.ECNMarks,
			QueuedBytes: int64(p.QueuedBytes()),
			Holding:     p.Holding(),
			BusyNs:      p.BusyTime(),
		})
	})
	for _, sw := range n.Leaves {
		d.SwitchDrops = append(d.SwitchDrops, sw.Drops)
		d.DropHooks = append(d.DropHooks, sw.DropFnCount())
	}
	for _, sw := range n.Spines {
		d.SwitchDrops = append(d.SwitchDrops, sw.Drops)
		d.DropHooks = append(d.DropHooks, sw.DropFnCount())
	}
	return d
}
