package net

import "github.com/hermes-repro/hermes/internal/telemetry"

// AttachTelemetry registers the fabric's observability surface on reg:
// fabric-wide totals (tx bytes, drops, ECN marks, queue high-watermark) and
// per-port gauges for every fabric port (leaf uplinks and spine downlinks)
// covering queue depth, high-watermark, drops, ECN marks, tx bytes and busy
// time. Host access ports contribute to the totals only, keeping the series
// count proportional to the fabric rather than the host count.
//
// Everything is registered as pull-style GaugeFuncs over the ports' existing
// counters, so the data-plane hot path is untouched: the cost is paid at
// sweep time, and only when telemetry is enabled.
func (n *Network) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var fabricPorts, allPorts []*Port
	for _, leaf := range n.Leaves {
		fabricPorts = append(fabricPorts, leaf.up...)
		allPorts = append(allPorts, leaf.up...)
		allPorts = append(allPorts, leaf.down...)
	}
	for _, sp := range n.Spines {
		fabricPorts = append(fabricPorts, sp.down...)
		allPorts = append(allPorts, sp.down...)
	}
	for _, h := range n.Hosts {
		allPorts = append(allPorts, h.uplink)
	}

	sum := func(pick func(*Port) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, p := range allPorts {
				t += pick(p)
			}
			return t
		}
	}
	reg.GaugeFunc("net.tx_bytes_total", sum(func(p *Port) float64 { return float64(p.TxBytes) }))
	reg.GaugeFunc("net.tx_packets_total", sum(func(p *Port) float64 { return float64(p.TxPackets) }))
	reg.GaugeFunc("net.drops_total", sum(func(p *Port) float64 { return float64(p.Drops) }))
	reg.GaugeFunc("net.ecn_marks_total", sum(func(p *Port) float64 { return float64(p.ECNMarks) }))
	reg.GaugeFunc("net.queue_hiwater_bytes_max", func() float64 {
		var m float64
		for _, p := range allPorts {
			if v := float64(p.hiWater); v > m {
				m = v
			}
		}
		return m
	})

	for _, p := range fabricPorts {
		p := p
		reg.GaugeFunc("net.port.queue_bytes", func() float64 { return float64(p.loBytes) }, "port", p.Name)
		reg.GaugeFunc("net.port.queue_hiwater_bytes", func() float64 { return float64(p.hiWater) }, "port", p.Name)
		reg.GaugeFunc("net.port.drops", func() float64 { return float64(p.Drops) }, "port", p.Name)
		reg.GaugeFunc("net.port.ecn_marks", func() float64 { return float64(p.ECNMarks) }, "port", p.Name)
		reg.GaugeFunc("net.port.tx_bytes", func() float64 { return float64(p.TxBytes) }, "port", p.Name)
		reg.GaugeFunc("net.port.busy_ns", func() float64 { return float64(p.busyTime) }, "port", p.Name)
	}
}
