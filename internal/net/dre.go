package net

import (
	"math"

	"github.com/hermes-repro/hermes/internal/sim"
)

// DRE is a Discounting Rate Estimator as used by CONGA and by Hermes' flow
// and path rate tracking (r_f and r_p in Table 3). It accumulates bytes and
// decays them exponentially with time constant tau, so Rate converges to the
// recent average sending rate. Decay is applied lazily on access, which
// avoids periodic timer events.
type DRE struct {
	x    float64  // decayed byte count
	last sim.Time // time of last update
	tau  float64  // time constant in nanoseconds
}

// DefaultDRETau is the estimator time constant. CONGA uses ~100-200us; the
// same constant works for host-side flow-rate estimation.
const DefaultDRETau = 200 * sim.Microsecond

// NewDRE returns an estimator with the given time constant (nanoseconds).
// A non-positive tau falls back to DefaultDRETau.
func NewDRE(tau sim.Time) DRE {
	if tau <= 0 {
		tau = DefaultDRETau
	}
	return DRE{tau: float64(tau)}
}

func (d *DRE) decay(now sim.Time) {
	if now <= d.last {
		return
	}
	dt := float64(now - d.last)
	d.x *= math.Exp(-dt / d.tau)
	d.last = now
}

// Add records bytes transmitted at time now.
func (d *DRE) Add(bytes int, now sim.Time) {
	d.decay(now)
	d.x += float64(bytes)
}

// RateBps returns the estimated sending rate in bits per second at time now.
func (d *DRE) RateBps(now sim.Time) float64 {
	d.decay(now)
	return d.x / d.tau * 8e9
}

// Quantize maps the estimated utilization of a link with capacity capBps to
// [0, levels-1], CONGA-style (3 bits => levels == 8).
func (d *DRE) Quantize(now sim.Time, capBps int64, levels int) uint8 {
	if capBps <= 0 {
		return uint8(levels - 1)
	}
	u := d.RateBps(now) / float64(capBps)
	q := int(u * float64(levels))
	if q >= levels {
		q = levels - 1
	}
	if q < 0 {
		q = 0
	}
	return uint8(q)
}
