package net_test

import (
	"testing"

	hnet "github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/perf/pinned"
	"github.com/hermes-repro/hermes/internal/sim"
)

// The benchmark bodies live in internal/perf/pinned so `hermes-bench -perf`
// can run the exact same code and append the result to the perf ledger.
// These wrappers keep the canonical `go test -bench` names.

func BenchmarkPacketForward(b *testing.B)          { pinned.PacketForward(b) }
func BenchmarkPacketForwardPipelined(b *testing.B) { pinned.PacketForwardPipelined(b) }

// TestPacketForwardAllocGuard pins the headline hot-path number mechanically:
// forwarding one full-size packet across a warm fabric costs exactly one
// allocation (the packet literal itself) — with profiling off AND on, since
// the profiled fire path uses only fixed arrays and time.Now.
func TestPacketForwardAllocGuard(t *testing.T) {
	for _, mode := range []struct {
		name    string
		profile bool
	}{{"profile-off", false}, {"profile-on", true}} {
		t.Run(mode.name, func(t *testing.T) {
			eng := sim.NewEngine()
			nw, err := hnet.NewLeafSpine(eng, sim.NewRNG(1), hnet.Config{
				Leaves: 2, Spines: 2, HostsPerLeaf: 2,
				HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
				HostDelay: 1000, FabricDelay: 1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if mode.profile {
				eng.EnableProfile(4)
			}
			nw.Hosts[2].Handle(hnet.Data, func(p *hnet.Packet) {})
			// Warm the engine free list and the port queues before measuring.
			seq := uint64(0)
			send := func() {
				pkt := &hnet.Packet{Kind: hnet.Data, Flow: seq, Src: 0, Dst: 2, Wire: hnet.MaxPacketBytes, Path: int(seq % 2)}
				seq++
				nw.Hosts[0].Send(pkt)
				eng.RunAll()
			}
			for i := 0; i < 100; i++ {
				send()
			}
			if got := testing.AllocsPerRun(200, send); got != 1 {
				t.Fatalf("packet forward allocs/op = %v, want exactly 1 (the packet literal)", got)
			}
		})
	}
}
