package net

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

// benchFabric builds the smallest cross-leaf fabric that exercises the full
// forwarding hot path: host uplink -> leaf -> spine -> leaf -> host, four
// store-and-forward hops with two engine events each.
func benchFabric(b *testing.B) (*sim.Engine, *Network) {
	b.Helper()
	eng := sim.NewEngine()
	nw, err := NewLeafSpine(eng, sim.NewRNG(1), Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, nw
}

// BenchmarkPacketForward measures the allocation cost of forwarding one
// full-size data packet across the fabric (the simulator's dominant hot
// path). The alloc/op figure is the headline number in BENCH_sim.json.
func BenchmarkPacketForward(b *testing.B) {
	eng, nw := benchFabric(b)
	delivered := 0
	nw.Hosts[2].Handle(Data, func(p *Packet) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
		eng.RunAll()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d packets", delivered, b.N)
	}
}

// BenchmarkPacketForwardPipelined keeps a window of packets in flight so the
// ports stay busy, amortizing engine bookkeeping the way a loaded run does.
func BenchmarkPacketForwardPipelined(b *testing.B) {
	eng, nw := benchFabric(b)
	delivered := 0
	nw.Hosts[2].Handle(Data, func(p *Packet) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	const window = 32
	for i := 0; i < b.N; i++ {
		pkt := &Packet{Kind: Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
		if i%window == window-1 {
			eng.RunAll()
		}
	}
	eng.RunAll()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d packets", delivered, b.N)
	}
}
