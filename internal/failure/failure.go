// Package failure injects the switch malfunctions of §2.1: silent random
// packet drops and deterministic packet blackholes at a core (spine) switch,
// plus link degradation helpers for asymmetric topologies. Injectors
// register through the switch's drop-hook chain, so several can coexist on
// one switch; timed onset/clear sequencing lives in internal/chaos.
package failure

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// RandomDrop makes the given spine switch silently drop each transiting
// packet with probability rate (the paper uses 2% on one randomly selected
// core switch, §5.3.3). High-priority control traffic (ACKs, probe echoes)
// is dropped too — the malfunction is below the queueing layer.
type RandomDrop struct {
	Spine *net.Switch
	Rate  float64
	Rng   *sim.RNG

	Dropped uint64
	Seen    uint64

	hook      int
	installed bool
}

// Install hooks the drop function onto the switch (idempotent).
func (r *RandomDrop) Install() {
	if r.installed {
		return
	}
	r.installed = true
	r.hook = r.Spine.AddDropFn(func(p *net.Packet) bool {
		r.Seen++
		if r.Rng.Float64() < r.Rate {
			r.Dropped++
			return true
		}
		return false
	})
}

// Uninstall removes the hook, restoring the switch to health.
func (r *RandomDrop) Uninstall() {
	if !r.installed {
		return
	}
	r.installed = false
	r.Spine.RemoveDropFn(r.hook)
}

// Blackhole deterministically drops packets whose (src, dst) pair matches
// the configured predicate at one spine switch — modeling TCAM-deficit
// blackholes that match specific IP pairs [19]. The §5.3.3 scenario drops
// half of the source-destination pairs from one rack to another.
type Blackhole struct {
	Spine *net.Switch
	Match func(src, dst int) bool

	Dropped uint64

	hook      int
	installed bool
}

// Install hooks the drop function onto the switch (idempotent).
func (b *Blackhole) Install() {
	if b.installed {
		return
	}
	b.installed = true
	b.hook = b.Spine.AddDropFn(func(p *net.Packet) bool {
		if b.Match(p.Src, p.Dst) {
			b.Dropped++
			return true
		}
		return false
	})
}

// Uninstall removes the hook, restoring the switch to health.
func (b *Blackhole) Uninstall() {
	if !b.installed {
		return
	}
	b.installed = false
	b.Spine.RemoveDropFn(b.hook)
}

// RackPairBlackhole returns the §5.3.3 predicate: drop traffic (in both
// directions) between half of the host pairs from rack srcLeaf to rack
// dstLeaf. The "half" is chosen deterministically by parity of the host
// pair, mirroring a pattern-matching TCAM fault.
func RackPairBlackhole(nw *net.Network, srcLeaf, dstLeaf int) func(src, dst int) bool {
	return func(src, dst int) bool {
		s, d := src, dst
		// Normalize direction so ACKs of affected flows die too.
		if nw.LeafOf(s) == dstLeaf && nw.LeafOf(d) == srcLeaf {
			s, d = d, s
		}
		if nw.LeafOf(s) != srcLeaf || nw.LeafOf(d) != dstLeaf {
			return false
		}
		return (s+d)%2 == 0
	}
}

// DegradeLinks reduces the capacity of a fraction of randomly selected
// leaf-to-spine links to degradedBps (the §5.3.2 asymmetry: 20% of links at
// 2 Gbps). It returns the degraded (leaf, spine) pairs.
func DegradeLinks(nw *net.Network, rng *sim.RNG, fraction float64, degradedBps int64) [][2]int {
	type link struct{ l, s int }
	var all []link
	for l := 0; l < nw.Cfg.Leaves; l++ {
		for s := 0; s < nw.Cfg.Spines; s++ {
			all = append(all, link{l, s})
		}
	}
	n := int(fraction * float64(len(all)))
	perm := rng.Perm(len(all))
	var out [][2]int
	for i := 0; i < n; i++ {
		lk := all[perm[i]]
		nw.SetFabricLink(lk.l, lk.s, degradedBps)
		out = append(out, [2]int{lk.l, lk.s})
	}
	return out
}

// CutLink removes a leaf-spine link (all parallel cables) entirely.
func CutLink(nw *net.Network, leaf, spine int) {
	nw.SetFabricLink(leaf, spine, 0)
}

// CutCable removes one physical cable of a leaf-spine link — the paper's
// testbed asymmetry (Fig 8b): one of the two leaf1-spine1 cables is
// unplugged, leaving 3 of 4 paths and 75% of the bisection.
func CutCable(nw *net.Network, leaf, spine, cable int) {
	nw.SetCable(leaf, spine, cable, 0)
}
