package failure

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func testNet(t *testing.T) *net.Network {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRandomDropRate(t *testing.T) {
	nw := testNet(t)
	rd := &RandomDrop{Spine: nw.Spines[0], Rate: 0.1, Rng: sim.NewRNG(2)}
	rd.Install()
	drops := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if nw.Spines[0].ConsultDropFns(&net.Packet{}) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("drop fraction = %.3f, want ~0.10", frac)
	}
	if rd.Dropped != uint64(drops) || rd.Seen != n {
		t.Fatal("counters inconsistent")
	}
}

func TestBlackholePredicate(t *testing.T) {
	nw := testNet(t)
	match := RackPairBlackhole(nw, 0, 3)
	// Hosts 0..3 are rack 0, hosts 12..15 are rack 3.
	affected, clean := 0, 0
	for s := 0; s < 4; s++ {
		for d := 12; d < 16; d++ {
			if match(s, d) {
				affected++
				// The reverse direction (ACK path) must match too.
				if !match(d, s) {
					t.Fatalf("reverse of affected pair (%d,%d) not matched", s, d)
				}
			} else {
				clean++
			}
		}
	}
	if affected != 8 || clean != 8 {
		t.Fatalf("affected=%d clean=%d, want half of 16 pairs", affected, clean)
	}
	// Unrelated rack pairs must never match.
	if match(0, 5) || match(4, 12) || match(12, 4) {
		t.Fatal("predicate matched traffic outside the rack pair")
	}
}

func TestBlackholeInstall(t *testing.T) {
	nw := testNet(t)
	b := &Blackhole{Spine: nw.Spines[1], Match: RackPairBlackhole(nw, 0, 3)}
	b.Install()
	pkt := &net.Packet{Src: 0, Dst: 12}
	if !nw.Spines[1].ConsultDropFns(pkt) {
		t.Fatal("matching packet not dropped")
	}
	if nw.Spines[1].ConsultDropFns(&net.Packet{Src: 0, Dst: 13}) {
		t.Fatal("non-matching pair dropped")
	}
	if b.Dropped != 1 {
		t.Fatalf("dropped counter = %d", b.Dropped)
	}
}

// TestCoResidentInjectorsBothCount is the regression test for the DropFn
// clobbering bug: installing a second injector on the same spine used to
// overwrite the first hook entirely. With the drop-hook chain, a blackhole
// and a random-drop installed together must BOTH observe the full packet
// stream and keep accurate counters.
func TestCoResidentInjectorsBothCount(t *testing.T) {
	nw := testNet(t)
	sp := nw.Spines[0]
	bh := &Blackhole{Spine: sp, Match: func(src, dst int) bool { return src == 0 && dst == 12 }}
	rd := &RandomDrop{Spine: sp, Rate: 0.5, Rng: sim.NewRNG(9)}
	bh.Install()
	rd.Install()
	if got := sp.DropFnCount(); got != 2 {
		t.Fatalf("DropFnCount = %d after two installs, want 2", got)
	}

	const n = 10_000
	matched := 0
	for i := 0; i < n; i++ {
		pkt := &net.Packet{Src: i % 4, Dst: 12 + i%4}
		wasMatch := pkt.Src == 0 && pkt.Dst == 12
		dropped := sp.ConsultDropFns(pkt)
		if wasMatch {
			matched++
			if !dropped {
				t.Fatal("blackholed packet survived with co-resident random drop")
			}
		}
	}
	if bh.Dropped != uint64(matched) || matched == 0 {
		t.Fatalf("blackhole dropped %d, want %d", bh.Dropped, matched)
	}
	// The random dropper must have seen EVERY packet, including the ones the
	// blackhole also claimed, and dropped roughly half.
	if rd.Seen != n {
		t.Fatalf("random drop saw %d packets, want %d", rd.Seen, n)
	}
	frac := float64(rd.Dropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("random drop fraction = %.3f with co-resident blackhole, want ~0.5", frac)
	}

	// Uninstalling both restores a healthy switch.
	bh.Uninstall()
	rd.Uninstall()
	if got := sp.DropFnCount(); got != 0 {
		t.Fatalf("DropFnCount = %d after uninstall, want 0", got)
	}
	if sp.ConsultDropFns(&net.Packet{Src: 0, Dst: 12}) {
		t.Fatal("packet dropped after both injectors uninstalled")
	}
}

func TestUninstallIsIdempotentAndOrderIndependent(t *testing.T) {
	nw := testNet(t)
	sp := nw.Spines[2]
	a := &RandomDrop{Spine: sp, Rate: 1, Rng: sim.NewRNG(1)}
	b := &RandomDrop{Spine: sp, Rate: 0, Rng: sim.NewRNG(2)}
	a.Install()
	b.Install()
	a.Install() // double install must not duplicate the hook
	if got := sp.DropFnCount(); got != 2 {
		t.Fatalf("DropFnCount = %d, want 2", got)
	}
	a.Uninstall() // remove first-installed hook while second stays
	if got := sp.DropFnCount(); got != 1 {
		t.Fatalf("DropFnCount = %d after removing a, want 1", got)
	}
	if sp.ConsultDropFns(&net.Packet{}) {
		t.Fatal("rate-0 survivor hook dropped a packet")
	}
	if b.Seen != 1 {
		t.Fatalf("survivor hook saw %d packets, want 1", b.Seen)
	}
	a.Uninstall() // idempotent
	b.Uninstall()
	if got := sp.DropFnCount(); got != 0 {
		t.Fatalf("DropFnCount = %d, want 0", got)
	}
}

func TestDegradeLinks(t *testing.T) {
	nw := testNet(t)
	degraded := DegradeLinks(nw, sim.NewRNG(3), 0.25, 2e9)
	// 16 fabric links; 25% -> 4 degraded.
	if len(degraded) != 4 {
		t.Fatalf("degraded %d links, want 4", len(degraded))
	}
	count := 0
	for l := 0; l < 4; l++ {
		for s := 0; s < 4; s++ {
			if nw.FabricLinkRate(l, s) == 2e9 {
				count++
			}
		}
	}
	if count != 4 {
		t.Fatalf("%d links at 2 Gbps, want 4", count)
	}
}

func TestDegradeLinksDeterministic(t *testing.T) {
	a := DegradeLinks(testNet(t), sim.NewRNG(7), 0.2, 2e9)
	b := DegradeLinks(testNet(t), sim.NewRNG(7), 0.2, 2e9)
	if len(a) != len(b) {
		t.Fatal("same seed degraded different link counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed degraded different links")
		}
	}
}

func TestCutLink(t *testing.T) {
	nw := testNet(t)
	CutLink(nw, 1, 2)
	if nw.FabricLinkRate(1, 2) != 0 {
		t.Fatal("link not cut")
	}
	if len(nw.AvailablePaths(1, 0)) != 3 {
		t.Fatal("path set not updated after cut")
	}
}
