package failure

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func testNet(t *testing.T) *net.Network {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRandomDropRate(t *testing.T) {
	nw := testNet(t)
	rd := &RandomDrop{Spine: nw.Spines[0], Rate: 0.1, Rng: sim.NewRNG(2)}
	rd.Install()
	drops := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if nw.Spines[0].DropFn(&net.Packet{}) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("drop fraction = %.3f, want ~0.10", frac)
	}
	if rd.Dropped != uint64(drops) || rd.Seen != n {
		t.Fatal("counters inconsistent")
	}
}

func TestBlackholePredicate(t *testing.T) {
	nw := testNet(t)
	match := RackPairBlackhole(nw, 0, 3)
	// Hosts 0..3 are rack 0, hosts 12..15 are rack 3.
	affected, clean := 0, 0
	for s := 0; s < 4; s++ {
		for d := 12; d < 16; d++ {
			if match(s, d) {
				affected++
				// The reverse direction (ACK path) must match too.
				if !match(d, s) {
					t.Fatalf("reverse of affected pair (%d,%d) not matched", s, d)
				}
			} else {
				clean++
			}
		}
	}
	if affected != 8 || clean != 8 {
		t.Fatalf("affected=%d clean=%d, want half of 16 pairs", affected, clean)
	}
	// Unrelated rack pairs must never match.
	if match(0, 5) || match(4, 12) || match(12, 4) {
		t.Fatal("predicate matched traffic outside the rack pair")
	}
}

func TestBlackholeInstall(t *testing.T) {
	nw := testNet(t)
	b := &Blackhole{Spine: nw.Spines[1], Match: RackPairBlackhole(nw, 0, 3)}
	b.Install()
	pkt := &net.Packet{Src: 0, Dst: 12}
	if !nw.Spines[1].DropFn(pkt) {
		t.Fatal("matching packet not dropped")
	}
	if nw.Spines[1].DropFn(&net.Packet{Src: 0, Dst: 13}) {
		t.Fatal("non-matching pair dropped")
	}
	if b.Dropped != 1 {
		t.Fatalf("dropped counter = %d", b.Dropped)
	}
}

func TestDegradeLinks(t *testing.T) {
	nw := testNet(t)
	degraded := DegradeLinks(nw, sim.NewRNG(3), 0.25, 2e9)
	// 16 fabric links; 25% -> 4 degraded.
	if len(degraded) != 4 {
		t.Fatalf("degraded %d links, want 4", len(degraded))
	}
	count := 0
	for l := 0; l < 4; l++ {
		for s := 0; s < 4; s++ {
			if nw.FabricLinkRate(l, s) == 2e9 {
				count++
			}
		}
	}
	if count != 4 {
		t.Fatalf("%d links at 2 Gbps, want 4", count)
	}
}

func TestDegradeLinksDeterministic(t *testing.T) {
	a := DegradeLinks(testNet(t), sim.NewRNG(7), 0.2, 2e9)
	b := DegradeLinks(testNet(t), sim.NewRNG(7), 0.2, 2e9)
	if len(a) != len(b) {
		t.Fatal("same seed degraded different link counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed degraded different links")
		}
	}
}

func TestCutLink(t *testing.T) {
	nw := testNet(t)
	CutLink(nw, 1, 2)
	if nw.FabricLinkRate(1, 2) != 0 {
		t.Fatal("link not cut")
	}
	if len(nw.AvailablePaths(1, 0)) != 3 {
		t.Fatal("path set not updated after cut")
	}
}

func TestFlapCycles(t *testing.T) {
	nw := testNet(t)
	f := &Flap{Net: nw, Leaf: 0, Spine: 1,
		Period: 10 * sim.Millisecond, DownFor: 4 * sim.Millisecond,
		DegradedBps: 0, Cycles: 3}
	f.Start()
	eng := nw.Eng
	// At t=7ms the link should be down (first dip spans 6..10ms).
	eng.Run(7 * sim.Millisecond)
	if nw.FabricLinkRate(0, 1) != 0 {
		t.Fatal("link not degraded during dip")
	}
	eng.Run(11 * sim.Millisecond)
	if nw.FabricLinkRate(0, 1) != 10e9 {
		t.Fatal("link not restored after dip")
	}
	// After 3 cycles it must stay up forever.
	eng.Run(sim.Second)
	if nw.FabricLinkRate(0, 1) != 10e9 {
		t.Fatal("flapping did not stop after Cycles")
	}
}
