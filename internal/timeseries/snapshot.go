package timeseries

// Cursor addresses a position in a live recording for incremental reads.
// Seq counts rows ever appended (retained or ring-evicted), so it is
// monotone even under truncation; Transition indexes the append-only
// transition log. The zero Cursor means "from the beginning".
type Cursor struct {
	Seq        uint64 `json:"seq"`
	Transition int    `json:"transition"`
}

// Delta is one incremental read of a live recording: every sealed row and
// transition recorded since the request cursor, plus the cursor to resume
// from. All slices are copies — safe to hold after the recorder moves on.
type Delta struct {
	// Meta is included on from-the-beginning reads only. During a live run
	// the identity fields are still blank (the harness stamps them at run
	// end); interval and cap are always valid.
	Meta *Meta `json:"meta,omitempty"`
	// Reset reports that the request cursor preceded the oldest retained
	// row — the ring evicted samples the reader never saw — so TimesNs
	// restarts at the oldest retained instant rather than the cursor.
	Reset bool `json:"reset,omitempty"`
	// Cursor resumes the next read after everything carried here.
	Cursor Cursor `json:"cursor"`

	TimesNs []int64              `json:"times_ns,omitempty"`
	Series  map[string][]float64 `json:"series,omitempty"`

	Transitions []Transition `json:"transitions,omitempty"`

	TruncatedSamples   int `json:"truncated_samples,omitempty"`
	DroppedTransitions int `json:"dropped_transitions,omitempty"`
}

// Rows returns the number of sample rows the delta carries.
func (d *Delta) Rows() int { return len(d.TimesNs) }

// SnapshotSince copies every sealed row and transition recorded since c.
// It never blocks the simulation beyond one row append, and a zero cursor
// returns the full retained window. Readers poll: SnapshotSince(prev.Cursor)
// yields only news, an empty delta (Rows()==0, no transitions) means nothing
// happened since.
//
// Safe for concurrent use with a running simulation; nil-safe.
func (r *Recorder) SnapshotSince(c Cursor) Delta {
	if r == nil {
		return Delta{Cursor: c}
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	d := Delta{}
	if c == (Cursor{}) {
		m := r.Meta
		if m.Schema == "" {
			m.Schema = Schema
		}
		if m.IntervalNs == 0 {
			m.IntervalNs = int64(r.Interval)
		}
		if m.Cap == 0 {
			m.Cap = r.Cap
		}
		d.Meta = &m
	}

	n := r.cols.Len()
	oldest := uint64(r.cols.Truncated())
	newest := oldest + uint64(n)
	from := c.Seq
	switch {
	case from < oldest:
		// The reader's position fell off the ring: restart at the oldest
		// retained row and tell it so (a zero cursor is a fresh read, not
		// a resume, so it reports no reset).
		d.Reset = c.Seq != 0
		from = oldest
	case from > newest:
		// A cursor from a previous (longer) recording; treat as stale.
		d.Reset = true
		from = oldest
	}
	if off := int(from - oldest); off < n {
		d.TimesNs = make([]int64, 0, n-off)
		times := r.cols.Times()
		d.TimesNs = append(d.TimesNs, times[off:]...)
		d.Series = make(map[string][]float64, len(r.cols.names))
		for _, name := range r.cols.Names() {
			vals := r.cols.Series(name)
			d.Series[name] = append([]float64(nil), vals[off:]...)
		}
	}
	d.Cursor.Seq = newest

	tfrom := c.Transition
	if tfrom < 0 || tfrom > len(r.transitions) {
		tfrom = 0
	}
	if tfrom < len(r.transitions) {
		d.Transitions = append([]Transition(nil), r.transitions[tfrom:]...)
	}
	d.Cursor.Transition = len(r.transitions)

	d.TruncatedSamples = r.cols.Truncated()
	d.DroppedTransitions = r.DroppedTransitions
	return d
}
