package timeseries

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSONL layout: one self-describing object per line, keyed by "k" —
// a "meta" header, one "times" line with the shared sample instants,
// one "series" line per column (sorted by name), then the "transition"
// log in record order. The format round-trips: WriteJSONL(ReadJSONL(x))
// is byte-identical to x, which the CI smoke job checks.

type metaLine struct {
	K string `json:"k"`
	Meta
	TruncatedSamples   int `json:"truncated_samples,omitempty"`
	DroppedTransitions int `json:"dropped_transitions,omitempty"`
}

type timesLine struct {
	K  string  `json:"k"`
	Ns []int64 `json:"ns"`
}

type seriesLine struct {
	K    string    `json:"k"`
	Name string    `json:"name"`
	V    []float64 `json:"v"`
}

type transitionLine struct {
	K string `json:"k"`
	Transition
}

// WriteJSONL serializes the recording. Output is a pure function of the
// recorder's contents, so identical runs produce identical bytes.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := r.Meta
	if meta.Schema == "" {
		meta.Schema = Schema
	}
	if err := enc.Encode(metaLine{
		K: "meta", Meta: meta,
		TruncatedSamples:   r.TruncatedSamples(),
		DroppedTransitions: r.DroppedTransitions,
	}); err != nil {
		return err
	}
	if err := enc.Encode(timesLine{K: "times", Ns: r.Times()}); err != nil {
		return err
	}
	for _, name := range r.Names() {
		if err := enc.Encode(seriesLine{K: "series", Name: name, V: r.Series(name)}); err != nil {
			return err
		}
	}
	for _, t := range r.Transitions() {
		if err := enc.Encode(transitionLine{K: "transition", Transition: t}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reconstructs a recording written by WriteJSONL. The result is
// read-only (no engine attached): accessors and writers work, Start does not.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	r := &Recorder{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("timeseries: line %d: %w", lineNo, err)
		}
		switch kind.K {
		case "meta":
			var m metaLine
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("timeseries: line %d: %w", lineNo, err)
			}
			r.Meta = m.Meta
			r.Cap = m.Cap
			r.cols.Cap = m.Cap
			r.cols.truncated = m.TruncatedSamples
			r.DroppedTransitions = m.DroppedTransitions
		case "times":
			var t timesLine
			if err := json.Unmarshal(line, &t); err != nil {
				return nil, fmt.Errorf("timeseries: line %d: %w", lineNo, err)
			}
			r.cols.times = t.Ns
		case "series":
			var s seriesLine
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("timeseries: line %d: %w", lineNo, err)
			}
			if len(s.V) != len(r.cols.times) {
				return nil, fmt.Errorf("timeseries: line %d: series %q has %d values, want %d",
					lineNo, s.Name, len(s.V), len(r.cols.times))
			}
			r.cols.addColumn(s.Name, s.V)
		case "transition":
			var t transitionLine
			if err := json.Unmarshal(line, &t); err != nil {
				return nil, fmt.Errorf("timeseries: line %d: %w", lineNo, err)
			}
			r.transitions = append(r.transitions, t.Transition)
		default:
			return nil, fmt.Errorf("timeseries: line %d: unknown record kind %q", lineNo, kind.K)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// addColumn installs a fully-materialized chronological column (loader path;
// the ring origin of a loaded recording is always 0).
func (c *Columns) addColumn(name string, v []float64) {
	if c.index == nil {
		c.index = map[string]int{}
	}
	if i, ok := c.index[name]; ok {
		c.cols[i] = v
		return
	}
	c.index[name] = len(c.cols)
	c.names = append(c.names, name)
	c.cols = append(c.cols, v)
}

// CSV layout: header "section,metric,time_ns,value", then meta rows, one
// "time" row per instant, one "series" row per (column, instant), and one
// "transition" row per log entry with the tuple packed into the metric
// column as leaf;dst;path;from;to;cause (semicolons: causes contain ':').
// Like JSONL, WriteCSV(ReadCSV(x)) is byte-identical to x.

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV serializes the recording as a flat table for spreadsheet use.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	write := func(rec ...string) { cw.Write(rec) } //nolint:errcheck // surfaced by cw.Error below
	write("section", "metric", "time_ns", "value")
	meta := r.Meta
	if meta.Schema == "" {
		meta.Schema = Schema
	}
	write("meta", "schema", "0", meta.Schema)
	write("meta", "scheme", "0", meta.Scheme)
	write("meta", "workload", "0", meta.Workload)
	write("meta", "load", "0", fmtF(meta.Load))
	write("meta", "seed", "0", strconv.FormatInt(meta.Seed, 10))
	write("meta", "failure", "0", meta.Failure)
	write("meta", "interval_ns", "0", strconv.FormatInt(meta.IntervalNs, 10))
	write("meta", "cap", "0", strconv.Itoa(meta.Cap))
	write("meta", "sim_duration_ns", "0", strconv.FormatInt(meta.SimDurationNs, 10))
	write("meta", "truncated_samples", "0", strconv.Itoa(r.TruncatedSamples()))
	write("meta", "dropped_transitions", "0", strconv.Itoa(r.DroppedTransitions))
	times := r.Times()
	for _, ns := range times {
		write("time", "", strconv.FormatInt(ns, 10), "")
	}
	for _, name := range r.Names() {
		vals := r.Series(name)
		for i, ns := range times {
			write("series", name, strconv.FormatInt(ns, 10), fmtF(vals[i]))
		}
	}
	for _, t := range r.Transitions() {
		tuple := fmt.Sprintf("%d;%d;%d;%s;%s;%s", t.Leaf, t.Dst, t.Path, t.From, t.To, t.Cause)
		write("transition", tuple, strconv.FormatInt(t.AtNs, 10), "")
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reconstructs a recording written by WriteCSV.
func ReadCSV(rd io.Reader) (*Recorder, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = 4
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 || recs[0][0] != "section" {
		return nil, fmt.Errorf("timeseries: missing CSV header")
	}
	r := &Recorder{}
	series := map[string][]float64{}
	var order []string
	for _, rec := range recs[1:] {
		section, metric, tns, val := rec[0], rec[1], rec[2], rec[3]
		switch section {
		case "meta":
			if err := r.applyMetaCSV(metric, val); err != nil {
				return nil, err
			}
		case "time":
			ns, err := strconv.ParseInt(tns, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: bad time row %q: %w", tns, err)
			}
			r.cols.times = append(r.cols.times, ns)
		case "series":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: series %q: bad value %q: %w", metric, val, err)
			}
			if _, ok := series[metric]; !ok {
				order = append(order, metric)
			}
			series[metric] = append(series[metric], v)
		case "transition":
			t, err := parseTransitionTuple(metric)
			if err != nil {
				return nil, err
			}
			t.AtNs, err = strconv.ParseInt(tns, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("timeseries: bad transition time %q: %w", tns, err)
			}
			r.transitions = append(r.transitions, t)
		default:
			return nil, fmt.Errorf("timeseries: unknown CSV section %q", section)
		}
	}
	for _, name := range order {
		v := series[name]
		if len(v) != len(r.cols.times) {
			return nil, fmt.Errorf("timeseries: series %q has %d values, want %d",
				name, len(v), len(r.cols.times))
		}
		r.cols.addColumn(name, v)
	}
	return r, nil
}

func (r *Recorder) applyMetaCSV(field, val string) error {
	var err error
	switch field {
	case "schema":
		r.Meta.Schema = val
	case "scheme":
		r.Meta.Scheme = val
	case "workload":
		r.Meta.Workload = val
	case "failure":
		r.Meta.Failure = val
	case "load":
		r.Meta.Load, err = strconv.ParseFloat(val, 64)
	case "seed":
		r.Meta.Seed, err = strconv.ParseInt(val, 10, 64)
	case "interval_ns":
		r.Meta.IntervalNs, err = strconv.ParseInt(val, 10, 64)
	case "sim_duration_ns":
		r.Meta.SimDurationNs, err = strconv.ParseInt(val, 10, 64)
	case "cap":
		r.Meta.Cap, err = strconv.Atoi(val)
		r.Cap = r.Meta.Cap
		r.cols.Cap = r.Meta.Cap
	case "truncated_samples":
		r.cols.truncated, err = strconv.Atoi(val)
	case "dropped_transitions":
		r.DroppedTransitions, err = strconv.Atoi(val)
	default:
		return fmt.Errorf("timeseries: unknown meta field %q", field)
	}
	if err != nil {
		return fmt.Errorf("timeseries: meta %s: bad value %q: %w", field, val, err)
	}
	return nil
}

func parseTransitionTuple(s string) (Transition, error) {
	parts := strings.SplitN(s, ";", 6)
	if len(parts) != 6 {
		return Transition{}, fmt.Errorf("timeseries: bad transition tuple %q", s)
	}
	var t Transition
	var err error
	if t.Leaf, err = strconv.Atoi(parts[0]); err != nil {
		return Transition{}, fmt.Errorf("timeseries: bad transition leaf in %q: %w", s, err)
	}
	if t.Dst, err = strconv.Atoi(parts[1]); err != nil {
		return Transition{}, fmt.Errorf("timeseries: bad transition dst in %q: %w", s, err)
	}
	if t.Path, err = strconv.Atoi(parts[2]); err != nil {
		return Transition{}, fmt.Errorf("timeseries: bad transition path in %q: %w", s, err)
	}
	t.From, t.To, t.Cause = parts[3], parts[4], parts[5]
	return t, nil
}
