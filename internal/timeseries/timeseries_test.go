package timeseries

import (
	"bytes"
	"math"
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

func TestColumnsAppendPut(t *testing.T) {
	var c Columns
	c.Append(10)
	c.Put("a", 1)
	c.Append(20)
	c.Put("a", 2)
	c.Put("b", 7)
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.Times(); got[0] != 10 || got[1] != 20 {
		t.Fatalf("Times = %v", got)
	}
	if got := c.Series("a"); got[0] != 1 || got[1] != 2 {
		t.Fatalf("Series a = %v", got)
	}
	// b was registered at the second instant: earlier rows are zero-backfilled.
	if got := c.Series("b"); got[0] != 0 || got[1] != 7 {
		t.Fatalf("Series b = %v, want [0 7]", got)
	}
	if got := c.Series("missing"); got != nil {
		t.Fatalf("Series missing = %v, want nil", got)
	}
}

func TestColumnsEveryColumnMatchesLen(t *testing.T) {
	var c Columns
	c.Cap = 5
	for i := 0; i < 13; i++ {
		c.Append(int64(i))
		c.Put("early", float64(i))
		if i == 7 {
			// Register a column mid-run, after the ring has already wrapped.
			c.Put("late", 100)
		}
		if i > 9 {
			c.Put("late", float64(100+i))
		}
	}
	for _, name := range c.Names() {
		if got := len(c.Series(name)); got != c.Len() {
			t.Fatalf("series %q has %d values, want Len()=%d", name, got, c.Len())
		}
	}
}

func TestColumnsRingTruncation(t *testing.T) {
	var c Columns
	c.Cap = 4
	for i := 0; i < 10; i++ {
		c.Append(int64(i * 10))
		c.Put("v", float64(i))
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want cap 4", got)
	}
	if got := c.Truncated(); got != 6 {
		t.Fatalf("Truncated = %d, want 6", got)
	}
	wantT := []int64{60, 70, 80, 90}
	wantV := []float64{6, 7, 8, 9}
	times, vals := c.Times(), c.Series("v")
	for i := range wantT {
		if times[i] != wantT[i] || vals[i] != wantV[i] {
			t.Fatalf("row %d = (%d, %g), want (%d, %g)", i, times[i], vals[i], wantT[i], wantV[i])
		}
	}
}

func TestColumnsPutBeforeAppendIsNoop(t *testing.T) {
	var c Columns
	c.Put("a", 1)
	if c.Len() != 0 || len(c.Names()) != 0 {
		t.Fatalf("Put before Append created state: len=%d names=%v", c.Len(), c.Names())
	}
}

func TestRecorderSamplesOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, 100, 0, 0)
	n := 0.0
	r.Register("n", func() float64 { n++; return n })
	ticks := 0
	r.AtTick(func() { ticks++ })
	r.Start()
	eng.Run(450)
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 samples in 450 ticks at interval 100", got)
	}
	if got := r.Times(); got[0] != 100 || got[3] != 400 {
		t.Fatalf("Times = %v", got)
	}
	// Probe called exactly once per retained instant (stateful probes are safe).
	if got := r.Series("n"); got[0] != 1 || got[3] != 4 {
		t.Fatalf("Series n = %v, want [1 2 3 4]", got)
	}
	if ticks != 4 {
		t.Fatalf("tick hooks ran %d times, want 4", ticks)
	}
	r.Stop()
	eng.Run(1000)
	if got := r.Len(); got != 4 {
		t.Fatalf("Len after Stop = %d, want 4", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Register("x", func() float64 { return 0 })
	r.AtTick(func() {})
	r.AddTransition(Transition{})
	r.Start()
	r.Stop()
	r.Snap()
	if r.Len() != 0 || r.Times() != nil || r.Names() != nil || r.Series("x") != nil || r.Transitions() != nil {
		t.Fatal("nil recorder leaked state")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteCSV: err=%v len=%d", err, buf.Len())
	}
}

func TestRecorderRegisterReplaces(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, 100, 0, 0)
	r.Register("x", func() float64 { return 1 })
	r.Register("x", func() float64 { return 2 })
	r.Snap()
	if got := r.Series("x"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Series x = %v, want [2]", got)
	}
	if got := len(r.Names()); got != 1 {
		t.Fatalf("Names = %v, want one entry", r.Names())
	}
}

func TestTransitionLogCap(t *testing.T) {
	r := NewRecorder(sim.NewEngine(), 100, 0, 3)
	for i := 0; i < 5; i++ {
		r.AddTransition(Transition{AtNs: int64(i)})
	}
	if got := len(r.Transitions()); got != 3 {
		t.Fatalf("kept %d transitions, want 3", got)
	}
	if r.DroppedTransitions != 2 {
		t.Fatalf("DroppedTransitions = %d, want 2", r.DroppedTransitions)
	}
}

func sampleRecorder(t *testing.T) *Recorder {
	t.Helper()
	eng := sim.NewEngine()
	r := NewRecorder(eng, 100, 6, 0)
	r.Meta = Meta{
		Scheme: "hermes", Workload: "websearch", Load: 0.6, Seed: 42,
		Failure: "flap", IntervalNs: 100, Cap: 6, SimDurationNs: 900,
	}
	i := 0.0
	r.Register("net.queue_bytes{port=leaf0->spine0.0}", func() float64 { i++; return i * 1500 })
	r.Register("hermes.paths_good{leaf=0}", func() float64 { return 4 - i/4 })
	r.Start()
	eng.Run(950)
	r.AddTransition(Transition{AtNs: 300, Leaf: 0, Dst: 1, Path: 2, From: "gray", To: "good", Cause: CauseAck})
	r.AddTransition(Transition{AtNs: 700, Leaf: 0, Dst: 1, Path: 2, From: "good", To: "failed", Cause: CauseVerdict + "probe-loss"})
	return r
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sampleRecorder(t)
	var a bytes.Buffer
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := got.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL round trip not byte-identical:\n--- wrote ---\n%s--- reread ---\n%s", a.String(), b.String())
	}
	if got.TruncatedSamples() != r.TruncatedSamples() {
		t.Fatalf("truncated = %d, want %d", got.TruncatedSamples(), r.TruncatedSamples())
	}
	if len(got.Transitions()) != 2 || got.Transitions()[1].Cause != "verdict:probe-loss" {
		t.Fatalf("transitions = %+v", got.Transitions())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sampleRecorder(t)
	var a bytes.Buffer
	if err := r.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := got.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("CSV round trip not byte-identical:\n--- wrote ---\n%s--- reread ---\n%s", a.String(), b.String())
	}
	if got.Meta.Scheme != "hermes" || got.Meta.Seed != 42 || math.Abs(got.Meta.Load-0.6) > 1e-12 {
		t.Fatalf("meta = %+v", got.Meta)
	}
}

func TestReadJSONLRejectsRaggedSeries(t *testing.T) {
	in := `{"k":"meta","schema":"hermes-timeseries/v1","interval_ns":100,"cap":0}
{"k":"times","ns":[1,2,3]}
{"k":"series","name":"x","v":[1,2]}
`
	if _, err := ReadJSONL(bytes.NewReader([]byte(in))); err == nil {
		t.Fatal("want error for series shorter than times")
	}
}
