// Package timeseries is the simulation-clock flight recorder: bounded,
// deterministic time series of per-entity fabric state (queue depths, link
// utilization, ECN-mark and drop rates), Hermes path-state occupancy, and
// transport aggregates, plus an event log of Hermes path-state transitions
// with their cause. It is the temporal complement of internal/telemetry
// (end-of-run aggregates) and internal/trace (per-flow spans): the layer
// that answers "what did the fabric look like at t, and when did Algorithm 1
// change its mind".
//
// Everything is driven by the virtual clock and bounded by ring caps, so a
// recording is a pure function of (config, seed) with O(cap) memory no
// matter how long the run is.
package timeseries

import "sort"

// Columns is a set of named float64 series aligned on shared sample
// instants, with an optional ring cap. When the cap is reached the oldest
// row is discarded for each new one and Truncated counts the loss; with
// Cap <= 0 rows accumulate without bound (the telemetry.Sweeper default).
//
// Columns created after rows already exist are zero-backfilled so that
// every column always has exactly Len() values — one per retained instant —
// including under ring truncation.
type Columns struct {
	// Cap bounds the retained rows (<= 0 = unbounded). Set before the
	// first Append; changing it later is not supported.
	Cap int

	times []int64
	names []string // registration order
	index map[string]int
	cols  [][]float64

	head      int // ring start, meaningful once saturated
	truncated int
}

// Len returns the number of retained rows.
func (c *Columns) Len() int { return len(c.times) }

// Truncated returns the number of rows discarded to honor Cap.
func (c *Columns) Truncated() int { return c.truncated }

// saturated reports whether the ring is full and appends now overwrite.
func (c *Columns) saturated() bool { return c.Cap > 0 && len(c.times) == c.Cap }

// cur returns the storage index of the most recently appended row.
func (c *Columns) cur() int {
	if c.saturated() {
		return (c.head + c.Cap - 1) % c.Cap
	}
	return len(c.times) - 1
}

// Append opens a new row at instant at, zero-filled across every column.
// Call Put afterwards to set the row's values.
func (c *Columns) Append(at int64) {
	if c.saturated() {
		// Overwrite the oldest slot and advance the ring start.
		slot := c.head
		c.times[slot] = at
		for _, col := range c.cols {
			col[slot] = 0
		}
		c.head = (c.head + 1) % c.Cap
		c.truncated++
		return
	}
	c.times = append(c.times, at)
	for i := range c.cols {
		c.cols[i] = append(c.cols[i], 0)
	}
}

// Put sets the named column's value for the current (most recent) row,
// creating the column zero-backfilled over all earlier retained rows on
// first use. Put before any Append is a no-op.
func (c *Columns) Put(name string, v float64) {
	if len(c.times) == 0 {
		return
	}
	i, ok := c.index[name]
	if !ok {
		if c.index == nil {
			c.index = map[string]int{}
		}
		i = len(c.cols)
		c.index[name] = i
		c.names = append(c.names, name)
		// Match the times geometry exactly: same length, same ring origin.
		c.cols = append(c.cols, make([]float64, len(c.times)))
	}
	c.cols[i][c.cur()] = v
}

// Times returns the retained sample instants in chronological order.
func (c *Columns) Times() []int64 {
	n := len(c.times)
	out := make([]int64, n)
	for i := range out {
		out[i] = c.times[(c.head+i)%n]
	}
	return out
}

// Names returns the column names in sorted order (the deterministic
// iteration order for exports).
func (c *Columns) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	sort.Strings(out)
	return out
}

// Series returns the named column in chronological order, or nil when the
// column does not exist.
func (c *Columns) Series(name string) []float64 {
	i, ok := c.index[name]
	if !ok {
		return nil
	}
	col := c.cols[i]
	n := len(col)
	out := make([]float64, n)
	for j := range out {
		out[j] = col[(c.head+j)%n]
	}
	return out
}
