package timeseries

import (
	"sync"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Defaults for the flight recorder.
const (
	// DefaultInterval is the sampling period when none is configured:
	// fine enough to see queue buildup at 10 Gbps, coarse enough that a
	// 2 s run fits the default ring.
	DefaultInterval = 100 * sim.Microsecond
	// DefaultCap bounds the retained samples per series.
	DefaultCap = 8192
	// DefaultMaxTransitions bounds the path-state transition log.
	DefaultMaxTransitions = 65536
)

// Schema identifies the recording layout; bump on breaking changes.
const Schema = "hermes-timeseries/v1"

// Meta identifies the run a recording came from. All fields are simulation
// values, so two runs of the same (config, seed) produce identical metas.
type Meta struct {
	Schema        string  `json:"schema"`
	Scheme        string  `json:"scheme,omitempty"`
	Workload      string  `json:"workload,omitempty"`
	Load          float64 `json:"load,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Failure       string  `json:"failure,omitempty"`
	IntervalNs    int64   `json:"interval_ns"`
	Cap           int     `json:"cap"`
	SimDurationNs int64   `json:"sim_duration_ns,omitempty"`
}

// Transition is one Hermes path-state change: the rack monitor at Leaf
// re-characterized (Dst, Path) from From to To because of Cause.
type Transition struct {
	AtNs  int64  `json:"at_ns"`
	Leaf  int    `json:"leaf"`
	Dst   int    `json:"dst"`
	Path  int    `json:"path"`
	From  string `json:"from"`
	To    string `json:"to"`
	Cause string `json:"cause"`
}

// Transition causes. Verdict transitions carry "verdict:" plus the
// telemetry audit reason (blackhole, probe-loss, silent-drop).
const (
	CauseAck         = "ack"          // RTT/ECN sample echoed by a data ACK
	CauseProbe       = "probe"        // RTT/ECN sample from an active probe
	CauseTimeout     = "timeout"      // RTO-driven signal intake
	CauseHoldExpired = "hold-expired" // failure quarantine lapsed at a sweep
	CauseVerdict     = "verdict:"     // prefix; suffixed with the audit reason
)

// probe is one registered pull-style sampler.
type probe struct {
	name string
	fn   func() float64
}

// Recorder is the flight recorder for one run. Registered probes are
// sampled every Interval of virtual time into ring-capped aligned series;
// transitions are appended as they happen, bounded by MaxTransitions.
//
// A nil *Recorder is the disabled state: every method is a no-op, so
// instrumentation sites can call unconditionally.
//
// The recorder is written by exactly one goroutine (the simulation), but may
// be read concurrently by status-server goroutines through the accessors and
// SnapshotSince. mu seals each row: Snap evaluates every probe first, then
// publishes the complete row under the lock, so a concurrent reader never
// observes a torn (appended-but-half-filled) sample.
type Recorder struct {
	Eng      *sim.Engine
	Interval sim.Time // sampling period (<= 0 picks DefaultInterval)
	Cap      int      // retained samples per series (<= 0 picks DefaultCap)
	// MaxTransitions caps the transition log (<= 0 picks the default;
	// negative after New means unbounded is not supported).
	MaxTransitions int

	// Meta is stamped by the run harness before export.
	Meta Meta

	mu          sync.Mutex
	cols        Columns
	probes      []probe
	probeIdx    map[string]int
	tickFns     []func()
	onSample    []func(atNs int64)
	scratch     []float64 // probe values staged outside the lock
	transitions []Transition
	// DroppedTransitions counts log entries discarded at the cap. Written
	// under mu; read it only from the simulation goroutine or after the run.
	DroppedTransitions int
	stopped            bool
}

// NewRecorder builds an enabled recorder on the engine with defaulted
// interval and caps.
func NewRecorder(eng *sim.Engine, interval sim.Time, cap, maxTransitions int) *Recorder {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	if maxTransitions <= 0 {
		maxTransitions = DefaultMaxTransitions
	}
	r := &Recorder{Eng: eng, Interval: interval, Cap: cap, MaxTransitions: maxTransitions}
	r.cols.Cap = cap
	return r
}

// Register adds (or replaces) a pull-style sampler evaluated once per
// sample instant, in registration order. Unlike telemetry.GaugeFunc probes,
// a recorder probe may carry state — it is called exactly once per retained
// instant, so read-and-reset samplers (interval peaks, counter deltas) are
// well-defined.
func (r *Recorder) Register(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	if i, ok := r.probeIdx[name]; ok {
		r.probes[i].fn = fn
		return
	}
	if r.probeIdx == nil {
		r.probeIdx = map[string]int{}
	}
	r.probeIdx[name] = len(r.probes)
	r.probes = append(r.probes, probe{name, fn})
}

// AtTick registers a hook run at the start of every sample instant, before
// probes are read. The monitor transition sweeps hang here so quarantine
// expiries are caught within one interval.
func (r *Recorder) AtTick(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.tickFns = append(r.tickFns, fn)
}

// OnSample registers a hook run on the simulation goroutine after every
// sealed sample row, with the row's instant. The alert evaluator hangs here:
// by the time the hook runs the row is published and the recorder lock is
// released, so the hook may call LatestValue and the snapshot accessors
// freely.
func (r *Recorder) OnSample(fn func(atNs int64)) {
	if r == nil || fn == nil {
		return
	}
	r.onSample = append(r.onSample, fn)
}

// ProbeNames returns the registered probe names in registration order. Only
// call from the simulation goroutine (the slice is appended to by Register).
func (r *Recorder) ProbeNames() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.name
	}
	return out
}

// LatestValue returns the named series' value at the most recent sample
// row, or ok=false when the series does not exist or no row has been
// appended yet. Safe for concurrent use with Snap.
func (r *Recorder) LatestValue(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cols.Len() == 0 {
		return 0, false
	}
	i, ok := r.cols.index[name]
	if !ok {
		return 0, false
	}
	return r.cols.cols[i][r.cols.cur()], true
}

// AddTransition appends one path-state transition, honoring the cap.
func (r *Recorder) AddTransition(t Transition) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.MaxTransitions > 0 && len(r.transitions) >= r.MaxTransitions {
		r.DroppedTransitions++
		return
	}
	r.transitions = append(r.transitions, t)
}

// Start schedules the first sample one interval from now.
func (r *Recorder) Start() {
	if r == nil || r.Eng == nil {
		return
	}
	if r.Interval <= 0 {
		r.Interval = DefaultInterval
	}
	r.Eng.ScheduleKind(r.Interval, sim.KindSample, r.tick)
}

// Stop ends sampling after the current tick.
func (r *Recorder) Stop() {
	if r != nil {
		r.stopped = true
	}
}

func (r *Recorder) tick() {
	if r.stopped {
		return
	}
	r.Snap()
	r.Eng.ScheduleKind(r.Interval, sim.KindSample, r.tick)
}

// Snap takes one sample immediately (also used for the final sweep at run
// end so the last interval always appears).
//
// Tick hooks and probes run before the lock is taken — they read and mutate
// simulation state, which concurrent snapshot readers never touch — and the
// completed row is then published atomically, so SnapshotSince observes only
// sealed rows.
func (r *Recorder) Snap() {
	if r == nil || r.Eng == nil {
		return
	}
	for _, fn := range r.tickFns {
		fn()
	}
	r.scratch = r.scratch[:0]
	for _, p := range r.probes {
		r.scratch = append(r.scratch, p.fn())
	}
	at := int64(r.Eng.Now())
	r.mu.Lock()
	r.cols.Append(at)
	for i, p := range r.probes {
		r.cols.Put(p.name, r.scratch[i])
	}
	r.mu.Unlock()
	// Sample hooks (the alert evaluator) run after the row is sealed and
	// the lock released: they read the row back through LatestValue.
	for _, fn := range r.onSample {
		fn(at)
	}
}

// Len returns the number of retained sample instants.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cols.Len()
}

// TruncatedSamples returns the instants discarded at the ring cap.
func (r *Recorder) TruncatedSamples() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cols.Truncated()
}

// Times returns the retained sample instants in chronological order.
func (r *Recorder) Times() []int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cols.Times()
}

// Names returns the series names in sorted order.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cols.Names()
}

// Series returns one named series aligned with Times (nil when absent).
func (r *Recorder) Series(name string) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cols.Series(name)
}

// Transitions returns the path-state transition log in record order. The
// slice is shared with the recorder; do not mutate it.
func (r *Recorder) Transitions() []Transition {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.transitions
}
