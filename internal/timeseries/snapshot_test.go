package timeseries

import (
	"sync"
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

// TestSnapshotSinceIncremental: a poll loop over a growing recording sees
// every row exactly once, with cursors that chain.
func TestSnapshotSinceIncremental(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, sim.Millisecond, 100, 0)
	v := 0.0
	r.Register("x", func() float64 { return v })

	var c Cursor
	var got []float64
	for i := 0; i < 5; i++ {
		v = float64(i)
		r.Snap()
		d := r.SnapshotSince(c)
		if d.Rows() != 1 {
			t.Fatalf("poll %d: got %d rows, want 1", i, d.Rows())
		}
		if d.Reset {
			t.Fatalf("poll %d: unexpected reset", i)
		}
		got = append(got, d.Series["x"][0])
		c = d.Cursor
	}
	for i, g := range got {
		if g != float64(i) {
			t.Fatalf("row %d = %v, want %d", i, g, i)
		}
	}
	// Nothing new: empty delta, cursor stable.
	d := r.SnapshotSince(c)
	if d.Rows() != 0 || len(d.Transitions) != 0 || d.Cursor != c {
		t.Fatalf("idle poll returned data: %+v", d)
	}
	// Zero cursor returns the whole window plus meta.
	full := r.SnapshotSince(Cursor{})
	if full.Rows() != 5 || full.Meta == nil {
		t.Fatalf("full snapshot: rows=%d meta=%v", full.Rows(), full.Meta)
	}
	if full.Meta.IntervalNs != int64(sim.Millisecond) || full.Meta.Cap != 100 {
		t.Fatalf("meta not defaulted: %+v", full.Meta)
	}
}

// TestSnapshotSinceRingTruncation: a cursor that fell off the ring resumes
// at the oldest retained row with Reset set — the SSE resume contract.
func TestSnapshotSinceRingTruncation(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, sim.Millisecond, 4, 0)
	v := 0.0
	r.Register("x", func() float64 { return v })

	v = 0
	r.Snap()
	first := r.SnapshotSince(Cursor{})
	if first.Rows() != 1 || first.Reset {
		t.Fatalf("first delta: %+v", first)
	}

	// Push 9 more rows through a cap-4 ring: rows 0..5 are gone.
	for i := 1; i < 10; i++ {
		v = float64(i)
		r.Snap()
	}
	d := r.SnapshotSince(first.Cursor)
	if !d.Reset {
		t.Fatal("expected Reset after ring truncation")
	}
	if d.Rows() != 4 {
		t.Fatalf("got %d rows after truncation, want the 4 retained", d.Rows())
	}
	want := []float64{6, 7, 8, 9}
	for i, w := range want {
		if d.Series["x"][i] != w {
			t.Fatalf("retained window = %v, want %v", d.Series["x"], want)
		}
	}
	if d.TruncatedSamples != 6 {
		t.Fatalf("TruncatedSamples = %d, want 6", d.TruncatedSamples)
	}
	if d.Cursor.Seq != 10 {
		t.Fatalf("cursor seq = %d, want 10", d.Cursor.Seq)
	}
	// Resuming from the new cursor is clean again.
	if nxt := r.SnapshotSince(d.Cursor); nxt.Rows() != 0 || nxt.Reset {
		t.Fatalf("resume after reset not clean: %+v", nxt)
	}
}

// TestSnapshotSinceTransitions: the transition cursor is independent of the
// row cursor and survives row truncation.
func TestSnapshotSinceTransitions(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, sim.Millisecond, 4, 3)
	r.AddTransition(Transition{AtNs: 1, Path: 0, From: "good", To: "gray"})
	d := r.SnapshotSince(Cursor{})
	if len(d.Transitions) != 1 || d.Cursor.Transition != 1 {
		t.Fatalf("first transition delta: %+v", d)
	}
	r.AddTransition(Transition{AtNs: 2, Path: 1, From: "gray", To: "failed"})
	r.AddTransition(Transition{AtNs: 3, Path: 2, From: "good", To: "gray"})
	r.AddTransition(Transition{AtNs: 4, Path: 3, From: "good", To: "gray"}) // over cap: dropped
	d = r.SnapshotSince(d.Cursor)
	if len(d.Transitions) != 2 || d.Cursor.Transition != 3 {
		t.Fatalf("second transition delta: %+v", d)
	}
	if d.DroppedTransitions != 1 {
		t.Fatalf("DroppedTransitions = %d, want 1", d.DroppedTransitions)
	}
}

// TestConcurrentSnapshotNoTornRows is the sealed-row regression test: one
// goroutine samples (as the simulation does) while another polls
// SnapshotSince. Two probes always return the same value, so any row where
// the columns disagree — a row published before every probe value landed —
// is a torn read. Run under -race this also proves the locking is sound.
func TestConcurrentSnapshotNoTornRows(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, sim.Millisecond, 64, 0) // small cap: wrap constantly
	v := 0.0
	r.Register("a", func() float64 { return v })
	r.Register("b", func() float64 { return v })

	const rows = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rows; i++ {
			v = float64(i + 1)
			r.Snap()
			if i%64 == 0 {
				r.AddTransition(Transition{AtNs: int64(i), Path: i % 4, From: "good", To: "gray", Cause: CauseProbe})
			}
		}
	}()

	var c Cursor
	polls, seen := 0, 0
	check := func(d Delta) {
		a, b := d.Series["a"], d.Series["b"]
		if len(a) != d.Rows() || len(b) != d.Rows() {
			t.Errorf("ragged delta: %d times, %d a, %d b", d.Rows(), len(a), len(b))
			return
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("torn row: a=%v b=%v", a[i], b[i])
			}
			if a[i] == 0 {
				t.Errorf("unsealed (zero) row observed")
			}
		}
	}
	for {
		select {
		case <-stop:
		default:
		}
		d := r.SnapshotSince(c)
		check(d)
		seen += d.Rows()
		c = d.Cursor
		polls++
		select {
		case <-stop:
			// Drain the tail once the writer is done.
			d := r.SnapshotSince(c)
			check(d)
			if got := int(d.Cursor.Seq); got != rows {
				t.Fatalf("final seq = %d, want %d", got, rows)
			}
			if polls < 2 {
				t.Fatalf("reader only polled %d times", polls)
			}
			return
		default:
		}
	}
}
