package core

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func testNet(t *testing.T, leaves, spines, hpl int) (*sim.Engine, *net.Network) {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hpl,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw
}

func testMonitor(t *testing.T) (*sim.Engine, *net.Network, *Monitor) {
	eng, nw := testNet(t, 2, 4, 2)
	p := DefaultParams(nw)
	m := NewMonitor(nw, 0, p)
	return eng, nw, m
}

// feed pushes n delivery samples with the given CE flag and RTT.
func feed(m *Monitor, dst, path, n int, ece bool, rtt sim.Time) {
	for i := 0; i < n; i++ {
		m.OnDelivery(dst, path, ece, rtt)
	}
}

// --- Algorithm 1: path characterization (Table 5) ------------------------

func TestClassifyGoodPath(t *testing.T) {
	_, _, m := testMonitor(t)
	feed(m, 1, 0, 50, false, m.P.TRTTLow-5*sim.Microsecond)
	if got := m.Type(1, 0); got != Good {
		t.Fatalf("low ECN + low RTT = %v, want good", got)
	}
}

func TestClassifyCongestedPath(t *testing.T) {
	_, _, m := testMonitor(t)
	feed(m, 1, 0, 100, true, m.P.TRTTHigh+50*sim.Microsecond)
	if got := m.Type(1, 0); got != Congested {
		t.Fatalf("high ECN + high RTT = %v, want congested", got)
	}
}

func TestClassifyGrayHighECNLowRTT(t *testing.T) {
	// High ECN fraction but low RTT: possibly too few samples or one
	// overloaded hop — gray (Table 5 row 2).
	_, _, m := testMonitor(t)
	feed(m, 1, 0, 100, true, m.P.TRTTLow-5*sim.Microsecond)
	if got := m.Type(1, 0); got != Gray {
		t.Fatalf("high ECN + low RTT = %v, want gray", got)
	}
}

func TestClassifyGrayLowECNHighRTT(t *testing.T) {
	// Low ECN but high RTT: possibly host-stack latency — gray (row 3).
	_, _, m := testMonitor(t)
	feed(m, 1, 0, 100, false, m.P.TRTTHigh+50*sim.Microsecond)
	if got := m.Type(1, 0); got != Gray {
		t.Fatalf("low ECN + high RTT = %v, want gray", got)
	}
}

func TestClassifyGrayModerate(t *testing.T) {
	// Moderate RTT between the thresholds — gray (row 4).
	_, _, m := testMonitor(t)
	mid := (m.P.TRTTLow + m.P.TRTTHigh) / 2
	feed(m, 1, 0, 100, false, mid)
	if got := m.Type(1, 0); got != Gray {
		t.Fatalf("moderate = %v, want gray", got)
	}
}

func TestClassifyUnknownIsGray(t *testing.T) {
	_, _, m := testMonitor(t)
	if got := m.Type(1, 3); got != Gray {
		t.Fatalf("unmeasured path = %v, want gray", got)
	}
}

func TestRTTOnlyModeIgnoresECN(t *testing.T) {
	eng, nw := testNet(t, 2, 4, 2)
	p := DefaultParams(nw)
	p.UseECN = false
	m := NewMonitor(nw, 0, p)
	_ = eng
	// Heavy marking but low RTT: in RTT-only mode this is good.
	feed(m, 1, 0, 100, true, p.TRTTLow-sim.Microsecond)
	if got := m.Type(1, 0); got != Good {
		t.Fatalf("RTT-only mode = %v, want good", got)
	}
}

// --- §3.1.2: failure sensing ---------------------------------------------

func TestRandomDropDetection(t *testing.T) {
	eng, _, m := testMonitor(t)
	// An uncongested path (low ECN, low RTT) with >1% retransmissions over
	// a window of >=32 packets must be flagged failed.
	for i := 0; i < 100; i++ {
		m.OnSent(1, 0, 1460)
		m.OnDelivery(1, 0, false, m.P.TRTTLow-sim.Microsecond)
	}
	m.OnRetransmit(1, 0)
	m.OnRetransmit(1, 0)
	eng.Run(m.P.Tau + sim.Millisecond) // roll the window
	if got := m.Type(1, 0); got != Failed {
		t.Fatalf("lossy uncongested path = %v, want failed", got)
	}
}

func TestCongestedLossesNotFlaggedAsFailure(t *testing.T) {
	eng, _, m := testMonitor(t)
	// Same retransmission fraction but with heavy ECN marking: congestion,
	// not a malfunction.
	for i := 0; i < 100; i++ {
		m.OnSent(1, 0, 1460)
		m.OnDelivery(1, 0, true, m.P.TRTTHigh+50*sim.Microsecond)
	}
	m.OnRetransmit(1, 0)
	m.OnRetransmit(1, 0)
	eng.Run(m.P.Tau + sim.Millisecond)
	if got := m.Type(1, 0); got == Failed {
		t.Fatal("congested path misdiagnosed as failed")
	}
}

func TestLowLossNotFlagged(t *testing.T) {
	eng, _, m := testMonitor(t)
	for i := 0; i < 200; i++ {
		m.OnSent(1, 0, 1460)
		m.OnDelivery(1, 0, false, m.P.TRTTLow-sim.Microsecond)
	}
	m.OnRetransmit(1, 0) // 0.5% < 1% threshold
	eng.Run(m.P.Tau + sim.Millisecond)
	if got := m.Type(1, 0); got == Failed {
		t.Fatal("sub-threshold loss flagged as failure")
	}
}

func TestSmallSampleNotJudged(t *testing.T) {
	eng, _, m := testMonitor(t)
	// Only a handful of packets: one retransmission must not fail the path.
	for i := 0; i < 5; i++ {
		m.OnSent(1, 0, 1460)
	}
	m.OnRetransmit(1, 0)
	eng.Run(m.P.Tau + sim.Millisecond)
	if got := m.Type(1, 0); got == Failed {
		t.Fatal("tiny sample produced a failure verdict")
	}
}

func TestMonitorBlackholeAfterConsecutiveTimeouts(t *testing.T) {
	_, _, m := testMonitor(t)
	for i := 0; i < m.P.TimeoutsForBlackhole+1; i++ {
		m.OnTimeout(1, 2)
	}
	if got := m.Type(1, 2); got != Failed {
		t.Fatalf("path after %d timeouts = %v, want failed", m.P.TimeoutsForBlackhole+1, got)
	}
}

func TestDeliveryResetsTimeoutCount(t *testing.T) {
	_, _, m := testMonitor(t)
	for i := 0; i < 10; i++ {
		m.OnTimeout(1, 2)
		m.OnDelivery(1, 2, false, 50*sim.Microsecond) // intervening ACK
	}
	if got := m.Type(1, 2); got == Failed {
		t.Fatal("timeouts with intervening deliveries declared a blackhole")
	}
}

func TestProbeLossCountsTowardFailure(t *testing.T) {
	eng, _, m := testMonitor(t)
	for i := 0; i < 40; i++ {
		m.OnProbeResult(1, 0, false, false, m.P.TRTTLow-sim.Microsecond)
	}
	for i := 0; i < 2; i++ {
		m.OnProbeResult(1, 0, true, false, 0)
	}
	eng.Run(m.P.Tau + sim.Millisecond)
	if got := m.Type(1, 0); got != Failed {
		t.Fatalf("probe losses on clean path = %v, want failed", got)
	}
}

// --- Hermes (Algorithm 2) -------------------------------------------------

func testHermes(t *testing.T) (*sim.Engine, *net.Network, *Monitor, *Hermes) {
	eng, nw := testNet(t, 2, 4, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0 // probing tested separately
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	return eng, nw, m, h
}

func mkFlow(id uint64, nw *net.Network) *transport.Flow {
	return &transport.Flow{
		ID: id, Src: 0, Dst: 2,
		SrcLeaf: 0, DstLeaf: 1,
		Size: 10_000_000, CurPath: net.PathAny,
	}
}

func TestInitialPlacementPrefersGood(t *testing.T) {
	_, nw, m, h := testHermes(t)
	// Path 1 good, others congested.
	feed(m, 1, 1, 50, false, m.P.TRTTLow-sim.Microsecond)
	for _, p := range []int{0, 2, 3} {
		feed(m, 1, p, 50, true, m.P.TRTTHigh+50*sim.Microsecond)
	}
	f := mkFlow(1, nw)
	if got := h.SelectPath(f); got != 1 {
		t.Fatalf("initial placement = %d, want the good path 1", got)
	}
}

func TestInitialPlacementLeastLoadedAmongGood(t *testing.T) {
	_, nw, m, h := testHermes(t)
	now := m.Net.Eng.Now()
	for p := 0; p < 4; p++ {
		feed(m, 1, p, 50, false, m.P.TRTTLow-sim.Microsecond)
	}
	// Load paths 0,1,2 locally; path 3 idle.
	for _, p := range []int{0, 1, 2} {
		for i := 0; i < 100; i++ {
			m.OnSent(1, p, 1460)
		}
	}
	_ = now
	f := mkFlow(1, nw)
	if got := h.SelectPath(f); got != 3 {
		t.Fatalf("placement = %d, want least-loaded good path 3", got)
	}
}

func TestIntraLeafUsesPathAny(t *testing.T) {
	_, _, _, h := testHermes(t)
	f := &transport.Flow{ID: 1, Src: 0, Dst: 1, SrcLeaf: 0, DstLeaf: 0}
	if got := h.SelectPath(f); got != net.PathAny {
		t.Fatalf("intra-leaf path = %d, want PathAny", got)
	}
}

func TestTimeoutTriggersRerouteAndClearsFlag(t *testing.T) {
	// Full stack: a flow whose packets all die suffers an RTO; the next
	// SelectPath must treat it as fresh, clear the flag and count the
	// reroute.
	eng, nw := testNet(t, 2, 4, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	// Every spine drops data during the first 30 ms, forcing RTOs.
	for s := range nw.Spines {
		nw.Spines[s].AddDropFn(func(pk *net.Packet) bool {
			return eng.Now() < 30*sim.Millisecond && pk.Kind == net.Data
		})
	}
	f := tr.StartFlow(0, 2, 100_000)
	eng.Run(200 * sim.Millisecond)
	if !f.Done {
		t.Fatal("flow did not finish after drops lifted")
	}
	if h.TimeoutReroutes == 0 {
		t.Fatal("RTO did not trigger a timeout reroute")
	}
	if f.TimedOut {
		t.Fatal("TimedOut flag left set")
	}
}

func TestCongestedPathCautiousReroute(t *testing.T) {
	// Full stack test: a real flow on a congested path with the gates open
	// must move to the notably better path.
	eng, nw := testNet(t, 2, 2, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	p.SBytes = 1000 // open the size gate quickly
	p.RBps = 1e18   // rate gate studied separately (TestRerouteGatesRespectSAndR)
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	// Make path 0 look congested and path 1 notably better before a flow
	// starts, then hold the state by continuous feeding.
	congest := func() {
		feed(m, 1, 0, 20, true, p.TRTTHigh+100*sim.Microsecond)
		feed(m, 1, 1, 20, false, p.TRTTLow-sim.Microsecond)
	}
	congest()
	f := tr.StartFlow(0, 2, 5_000_000)
	if f.CurPath != 1 {
		t.Fatalf("flow placed on %d, want the good path 1", f.CurPath)
	}
	// Now flip the path states: path 1 congested, path 0 notably better.
	swap := func() {
		feed(m, 1, 1, 40, true, p.TRTTHigh+100*sim.Microsecond)
		feed(m, 1, 0, 40, false, p.TRTTLow-sim.Microsecond)
	}
	for i := 0; i < 20; i++ {
		eng.Run(eng.Now() + 100*sim.Microsecond)
		swap()
		if f.Done {
			break
		}
	}
	eng.Run(eng.Now() + 100*sim.Millisecond)
	if h.Reroutes == 0 {
		t.Fatal("no congestion-triggered reroute despite notably better path")
	}
}

type passBal struct{ transport.BaseBalancer }

func (passBal) Name() string                   { return "pass" }
func (passBal) SelectPath(*transport.Flow) int { return net.PathAny }

func TestRerouteGatesRespectSAndR(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	p.SBytes = 1 << 40 // size gate never opens
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	feed(m, 1, 0, 40, true, p.TRTTHigh+100*sim.Microsecond)
	feed(m, 1, 1, 40, false, p.TRTTLow-sim.Microsecond)
	f := tr.StartFlow(0, 2, 5_000_000)
	start := f.CurPath
	for i := 0; i < 20; i++ {
		eng.Run(eng.Now() + 100*sim.Microsecond)
		// Keep the current path congested-looking, the other good.
		feed(m, 1, start, 40, true, p.TRTTHigh+100*sim.Microsecond)
		feed(m, 1, 1-start, 40, false, p.TRTTLow-sim.Microsecond)
	}
	if h.Reroutes != 0 {
		t.Fatal("rerouted despite closed S gate")
	}
}

func TestPairBlackholeDetection(t *testing.T) {
	_, nw, m, h := testHermes(t)
	f := mkFlow(1, nw)
	f.CurPath = 0
	for i := 0; i < m.P.TimeoutsForBlackhole; i++ {
		h.OnTimeout(f, 0)
	}
	if !h.pathFailed(f, 0) {
		t.Fatal("pair not marked blackholed after 3 timeouts")
	}
	// Another destination under the same leaf is unaffected.
	f2 := &transport.Flow{ID: 2, Src: 0, Dst: 3, SrcLeaf: 0, DstLeaf: 1, CurPath: net.PathAny}
	if h.pathFailed(f2, 0) && m.Type(1, 0) != Failed {
		t.Fatal("blackhole verdict leaked to an unaffected pair")
	}
}

func TestAckResetsPairTimeoutCount(t *testing.T) {
	_, nw, _, h := testHermes(t)
	f := mkFlow(1, nw)
	for i := 0; i < 10; i++ {
		h.OnTimeout(f, 0)
		if i < 2 {
			h.OnAck(f, transport.AckEvent{Path: 0, RTT: 50 * sim.Microsecond})
		} else {
			break
		}
	}
	// Interleaved ACKs kept resetting: after 2 rounds + 1 timeout the pair
	// is not yet blackholed.
	if h.pathFailed(f, 0) {
		t.Fatal("pair blackholed despite intervening ACKs")
	}
}

func TestVigorousModeAlwaysChasesBest(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	p.Vigorous = true
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	feed(m, 1, 0, 40, false, 100*sim.Microsecond)
	feed(m, 1, 1, 40, false, 50*sim.Microsecond)
	f := tr.StartFlow(0, 2, 1_000_000)
	// Flip RTT ordering repeatedly: vigorous mode must follow every flip.
	for i := 0; i < 10; i++ {
		feed(m, 1, i%2, 40, false, 30*sim.Microsecond)
		feed(m, 1, 1-i%2, 40, false, 200*sim.Microsecond)
		eng.Run(eng.Now() + 50*sim.Microsecond)
	}
	eng.Run(eng.Now() + 100*sim.Millisecond)
	if !f.Done {
		t.Fatal("flow did not finish")
	}
	if h.Reroutes < 3 {
		t.Fatalf("vigorous mode rerouted only %d times", h.Reroutes)
	}
}

func TestDisableRerouteBlocksCongestionMoves(t *testing.T) {
	eng, nw := testNet(t, 2, 2, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	p.SBytes = 1
	p.DisableReroute = true
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	f := tr.StartFlow(0, 2, 3_000_000)
	cur := f.CurPath
	for i := 0; i < 20; i++ {
		feed(m, 1, cur, 40, true, p.TRTTHigh+100*sim.Microsecond)
		feed(m, 1, 1-cur, 40, false, p.TRTTLow-sim.Microsecond)
		eng.Run(eng.Now() + 100*sim.Microsecond)
	}
	if h.Reroutes != 0 {
		t.Fatal("DisableReroute did not block congestion rerouting")
	}
}

// --- Prober ----------------------------------------------------------------

func proberSetup(t *testing.T, interval sim.Time) (*sim.Engine, *net.Network, []*Monitor, []*Prober) {
	eng, nw := testNet(t, 3, 4, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = interval
	InstallProbeResponders(nw)
	agents := []*net.Host{nw.Hosts[0], nw.Hosts[2], nw.Hosts[4]}
	var mons []*Monitor
	var probers []*Prober
	for l := 0; l < 3; l++ {
		m := NewMonitor(nw, l, p)
		mons = append(mons, m)
		probers = append(probers, NewProber(m, sim.NewRNG(int64(l)), agents))
	}
	return eng, nw, mons, probers
}

func TestProberPopulatesMonitor(t *testing.T) {
	eng, _, mons, probers := proberSetup(t, 500*sim.Microsecond)
	eng.Run(20 * sim.Millisecond)
	if probers[0].ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if probers[0].ProbesLost != 0 {
		t.Fatalf("probes lost on a healthy fabric: %d", probers[0].ProbesLost)
	}
	// At least some paths to each destination leaf must have RTT samples.
	for d := 1; d < 3; d++ {
		sampled := 0
		for s := 0; s < 4; s++ {
			if mons[0].State(d, s).RTT() > 0 {
				sampled++
			}
		}
		if sampled < 3 {
			t.Fatalf("only %d paths to leaf %d sampled; power-of-two-choices should cover >= 3", sampled, d)
		}
	}
}

func TestProberCoversAtLeastThreePathsPerInterval(t *testing.T) {
	eng, _, _, probers := proberSetup(t, 500*sim.Microsecond)
	eng.Run(5*sim.Millisecond + 100*sim.Microsecond)
	// Each interval probes 2 remote leaves x (2 or 3) paths; over 10
	// intervals that is 40-60 probes.
	sent := probers[0].ProbesSent
	if sent < 40 || sent > 66 {
		t.Fatalf("prober sent %d probes in 10 intervals, want 40..66", sent)
	}
}

func TestProberDetectsLossyPath(t *testing.T) {
	eng, nw, mons, _ := proberSetup(t, 500*sim.Microsecond)
	// Drop every data-class packet through spine 2 (probes ride the data
	// class; echoes are high priority but also traverse it).
	nw.Spines[2].AddDropFn(func(p *net.Packet) bool { return p.Kind == net.Probe })
	eng.Run(100 * sim.Millisecond)
	if got := mons[0].Type(1, 2); got != Failed {
		t.Fatalf("fully probe-dropping path = %v, want failed", got)
	}
	// Healthy paths stay usable.
	if mons[0].Type(1, 0) == Failed {
		t.Fatal("healthy path misdiagnosed")
	}
}

func TestProbeOverheadSmall(t *testing.T) {
	eng, nw, _, probers := proberSetup(t, 500*sim.Microsecond)
	eng.Run(100 * sim.Millisecond)
	bps := float64(probers[0].ProbeBytes) * 8 / 0.1
	frac := bps / float64(nw.Cfg.HostRateBps)
	// §3.1.3: per-agent overhead should be far below brute force; with 2
	// remote leaves and 3 probes each per 500us this is ~6 Mbps per agent.
	if frac > 0.01 {
		t.Fatalf("probe overhead %.4f of access link, want < 1%%", frac)
	}
}

func TestMonitorSizedByNPathsWithCables(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, CablesPerLink: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(nw)
	m := NewMonitor(nw, 0, p)
	// All four cable-paths must be addressable.
	for q := 0; q < 4; q++ {
		m.OnDelivery(1, q, false, 100*sim.Microsecond)
		if m.State(1, q).RTT() == 0 {
			t.Fatalf("path %d state not tracked", q)
		}
	}
	// Out-of-range stays rejected.
	m.OnDelivery(1, 4, false, 100*sim.Microsecond) // must not panic
}

func TestProberCoversCablePaths(t *testing.T) {
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, CablesPerLink: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(nw)
	InstallProbeResponders(nw)
	m := NewMonitor(nw, 0, p)
	agents := []*net.Host{nw.Hosts[0], nw.Hosts[2]}
	NewProber(m, sim.NewRNG(2), agents)
	eng.Run(50 * sim.Millisecond)
	sampled := 0
	for q := 0; q < 4; q++ {
		if m.State(1, q).RTT() > 0 {
			sampled++
		}
	}
	if sampled < 3 {
		t.Fatalf("probing covered only %d of 4 cable paths", sampled)
	}
}
