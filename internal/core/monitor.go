package core

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
)

// PathState is the sensing state Hermes keeps per (destination leaf, path):
// the Table 3 variables f_ECN, t_RTT, n_timeout, f_retransmission and r_p.
type PathState struct {
	// Congestion signals (EWMA-smoothed).
	ecn        float64 // fraction of ECN-marked deliveries
	rtt        float64 // smoothed RTT, ns
	ecnSamples int
	rttSamples int

	// Failure signals, windowed over Tau.
	winPkts int // deliveries + probe outcomes observed this window
	winRetx int // retransmission + probe-loss events this window

	// Blackhole detection: consecutive timeouts with no intervening ACK.
	consecTimeouts int
	// Consecutive probe losses with no intervening success or delivery.
	consecProbeLoss int

	// Aggregate local sending rate on this path (r_p).
	dre net.DRE

	failedUntil sim.Time // quarantine horizon; 0 when healthy

	// lastType is the characterization last reported through OnTransition.
	// Its zero value is Gray, matching the initial classification of a path
	// with no samples, so the first report is always a real change.
	lastType PathType
}

// ECNFraction returns the smoothed marked fraction.
func (ps *PathState) ECNFraction() float64 { return ps.ecn }

// RTT returns the smoothed RTT in nanoseconds (0 before any sample).
func (ps *PathState) RTT() sim.Time { return sim.Time(ps.rtt) }

// RateBps returns the aggregate local sending rate on the path (r_p).
func (ps *PathState) RateBps(now sim.Time) float64 { return ps.dre.RateBps(now) }

// Monitor is the per-rack sensing module: one instance is shared by every
// hypervisor (host) under a leaf, mirroring how Hermes shares probe results
// rack-wide (§3.1.3). It aggregates data-plane signals from all local flows
// with active probe measurements and characterizes each (dstLeaf, path)
// according to Algorithm 1.
type Monitor struct {
	Net     *net.Network
	SrcLeaf int
	P       Params

	paths [][]*PathState // [dstLeaf][path]

	// Telemetry.
	Reroutes       uint64
	FailMarkEvents uint64

	// Audit, when non-nil, receives a verdict entry for every failed-path
	// mark with the Algorithm 1 rule that fired as its reason.
	Audit *telemetry.AuditLog

	// OnTransition, when non-nil, observes every change in a path's
	// Algorithm 1 characterization together with the signal that caused it
	// ("ack", "probe", "verdict:<reason>", "hold-expired"). Classification
	// is pull-computed, so transitions are detected at the intake sites that
	// can change it and by periodic ScanTransitions sweeps for quarantine
	// expiry. One nil check per intake event when disabled.
	OnTransition func(dstLeaf, path int, from, to PathType, cause string)

	stopped bool
}

// NewMonitor builds the monitor for one source leaf.
func NewMonitor(nw *net.Network, srcLeaf int, p Params) *Monitor {
	m := &Monitor{Net: nw, SrcLeaf: srcLeaf, P: p}
	L, S := nw.Cfg.Leaves, nw.NPaths()
	m.paths = make([][]*PathState, L)
	for d := 0; d < L; d++ {
		m.paths[d] = make([]*PathState, S)
		for s := 0; s < S; s++ {
			m.paths[d][s] = &PathState{dre: net.NewDRE(0)}
		}
	}
	m.scheduleWindow()
	return m
}

func (m *Monitor) scheduleWindow() {
	m.Net.Eng.ScheduleKind(m.P.Tau, sim.KindProbe, func() {
		if m.stopped {
			return
		}
		m.rollWindow()
		m.scheduleWindow()
	})
}

// Stop retires the monitor: its periodic window roll stops rescheduling and
// transition scans go quiet. A what-if fork calls this on the outgoing
// scheme's monitors so the replaced Hermes instance leaves no periodic
// machinery behind.
func (m *Monitor) Stop() {
	m.stopped = true
	m.OnTransition = nil
}

// rollWindow evaluates the per-Tau failure condition of Algorithm 1 line 8:
// a high retransmission fraction on a path that is not congested indicates
// silent random drops.
func (m *Monitor) rollWindow() {
	now := m.Net.Eng.Now()
	for d := range m.paths {
		for s, ps := range m.paths[d] {
			if ps.winPkts >= 32 { // demand a meaningful sample before judging
				frac := float64(ps.winRetx) / float64(ps.winPkts)
				// Congestion causes retransmissions too (§3.1.2), and under
				// DCTCP a congested path always shows elevated ECN marking
				// well before drop-tail losses. Only a path that looks
				// clearly uncongested — low ECN and sub-congestion RTT —
				// while still losing packets is a malfunctioning switch.
				uncongested := sim.Time(ps.rtt) < m.P.TRTTHigh &&
					(!m.P.UseECN || ps.ecn < m.P.TECN/2)
				if frac > m.P.RetxFracThresh && uncongested {
					m.markFailed(d, s, ps, telemetry.ReasonSilentDrop, now)
				}
			}
			ps.winPkts, ps.winRetx = 0, 0
		}
	}
}

func (m *Monitor) markFailed(dstLeaf, path int, ps *PathState, reason string, now sim.Time) {
	// All verdicts quarantine for FailedHold and then re-evaluate: a real
	// blackhole re-triggers within ~3 RTOs, a congestion false-positive
	// recovers instead of cascading.
	ps.failedUntil = now + m.P.FailedHold
	m.FailMarkEvents++
	m.Audit.Add(telemetry.AuditEntry{
		At: now, Kind: telemetry.AuditVerdict, Reason: reason,
		Host: -1, DstLeaf: dstLeaf, FromPath: path, ToPath: -1,
	})
	m.noteTransition(dstLeaf, path, ps, "verdict:"+reason)
}

// noteTransition reports a characterization change on (dstLeaf, path), if
// any, through OnTransition. Called at every intake site that can move the
// classification and by ScanTransitions.
func (m *Monitor) noteTransition(dstLeaf, path int, ps *PathState, cause string) {
	if m.OnTransition == nil {
		return
	}
	t := m.Type(dstLeaf, path)
	if t == ps.lastType {
		return
	}
	from := ps.lastType
	ps.lastType = t
	m.OnTransition(dstLeaf, path, from, t, cause)
}

// ScanTransitions sweeps every tracked (dstLeaf, path) pair for
// characterization changes not driven by signal intake — in practice
// quarantine expiry, the only way a path's type moves between events. The
// flight recorder calls this once per sampling tick.
func (m *Monitor) ScanTransitions(cause string) {
	if m.OnTransition == nil {
		return
	}
	for d := range m.paths {
		if d == m.SrcLeaf {
			continue
		}
		for s, ps := range m.paths[d] {
			m.noteTransition(d, s, ps, cause)
		}
	}
}

// State returns the path state for direct inspection (tests, telemetry).
func (m *Monitor) State(dstLeaf, path int) *PathState { return m.paths[dstLeaf][path] }

// PathCensus classifies every (dstLeaf, path) pair this monitor tracks and
// returns the counts per verdict — the sweeper samples this into the
// good/gray/congested/failed time series.
func (m *Monitor) PathCensus() (good, gray, congested, failed int) {
	for d := range m.paths {
		if d == m.SrcLeaf {
			continue
		}
		for s := range m.paths[d] {
			switch m.Type(d, s) {
			case Good:
				good++
			case Gray:
				gray++
			case Congested:
				congested++
			case Failed:
				failed++
			}
		}
	}
	return
}

// classifyCongestion applies the congestion half of Algorithm 1.
func (m *Monitor) classifyCongestion(ps *PathState) PathType {
	rtt := sim.Time(ps.rtt)
	if ps.rttSamples == 0 {
		return Gray // nothing measured yet
	}
	ecn := ps.ecn
	if !m.P.UseECN {
		// RTT-only mode (§5.4 with plain TCP): treat RTT as the sole signal.
		switch {
		case rtt < m.P.TRTTLow:
			return Good
		case rtt > m.P.TRTTHigh:
			return Congested
		default:
			return Gray
		}
	}
	switch {
	case ecn < m.P.TECN && rtt < m.P.TRTTLow:
		return Good
	case ecn > m.P.TECN && rtt > m.P.TRTTHigh:
		return Congested
	default:
		return Gray
	}
}

// Type characterizes a (dstLeaf, path) pair per Algorithm 1.
func (m *Monitor) Type(dstLeaf, path int) PathType {
	ps := m.paths[dstLeaf][path]
	if m.Net.Eng.Now() < ps.failedUntil {
		return Failed
	}
	return m.classifyCongestion(ps)
}

// --- Data-plane signal intake -------------------------------------------

// OnSent records a data transmission on a path (denominator of the
// retransmission fraction, and the r_p estimator).
func (m *Monitor) OnSent(dstLeaf, path int, bytes int) {
	if !m.valid(dstLeaf, path) {
		return
	}
	ps := m.paths[dstLeaf][path]
	ps.winPkts++
	ps.dre.Add(bytes, m.Net.Eng.Now())
}

// OnDelivery records an ACK-derived sample: the echoed data packet's path,
// its CE mark and, when valid, its RTT.
func (m *Monitor) OnDelivery(dstLeaf, path int, ece bool, rtt sim.Time) {
	if !m.valid(dstLeaf, path) {
		return
	}
	ps := m.paths[dstLeaf][path]
	m.deliverSample(ps, ece, rtt)
	m.noteTransition(dstLeaf, path, ps, "ack")
}

// deliverSample folds one successful round-trip measurement into the path
// state (shared by ACK echoes and probe successes, which differ only in the
// transition cause they report).
func (m *Monitor) deliverSample(ps *PathState, ece bool, rtt sim.Time) {
	ps.consecProbeLoss = 0
	mark := 0.0
	if ece {
		mark = 1
	}
	ps.ecn = (1-m.P.ECNGain)*ps.ecn + m.P.ECNGain*mark
	ps.ecnSamples++
	if rtt > 0 {
		if ps.rttSamples == 0 {
			ps.rtt = float64(rtt)
		} else {
			ps.rtt = (1-m.P.RTTGain)*ps.rtt + m.P.RTTGain*float64(rtt)
		}
		ps.rttSamples++
	}
	ps.consecTimeouts = 0
}

// OnRetransmit records a loss event attributed to a path.
func (m *Monitor) OnRetransmit(dstLeaf, path int) {
	if !m.valid(dstLeaf, path) {
		return
	}
	m.paths[dstLeaf][path].winRetx++
}

// OnTimeout records an RTO on a path; after TimeoutsForBlackhole
// consecutive timeouts with no delivery the path is declared blackholed at
// rack scope. (Pair-granularity blackholes are additionally tracked per
// host in Hermes itself.)
func (m *Monitor) OnTimeout(dstLeaf, path int) {
	if !m.valid(dstLeaf, path) {
		return
	}
	ps := m.paths[dstLeaf][path]
	ps.consecTimeouts++
	if ps.consecTimeouts > m.P.TimeoutsForBlackhole {
		m.markFailed(dstLeaf, path, ps, telemetry.ReasonBlackhole, m.Net.Eng.Now())
		ps.consecTimeouts = 0
	}
}

// OnProbeResult feeds one probe measurement into the path state. Lost
// probes count as a retransmission-equivalent signal: deterministic or
// random drops hit probes exactly as they hit data.
func (m *Monitor) OnProbeResult(dstLeaf, path int, lost, ece bool, rtt sim.Time) {
	if !m.valid(dstLeaf, path) {
		return
	}
	ps := m.paths[dstLeaf][path]
	ps.winPkts++
	if lost {
		ps.winRetx++
		ps.consecProbeLoss++
		// A run of probe losses with no intervening delivery means the
		// path drops everything — the probe-based analogue of the
		// 3-timeouts blackhole rule (§3.1.2).
		if ps.consecProbeLoss >= ProbeLossesForFailure {
			m.markFailed(dstLeaf, path, ps, telemetry.ReasonProbeLoss, m.Net.Eng.Now())
		}
		return
	}
	m.deliverSample(ps, ece, rtt)
	m.noteTransition(dstLeaf, path, ps, "probe")
}

// ProbeLossesForFailure is the consecutive-probe-loss count that declares a
// path failed when no data deliveries interleave.
const ProbeLossesForFailure = 5

func (m *Monitor) valid(dstLeaf, path int) bool {
	return dstLeaf >= 0 && dstLeaf < len(m.paths) && path >= 0 && path < len(m.paths[dstLeaf])
}
