// Package core implements Hermes, the paper's contribution: comprehensive
// sensing of path conditions (congestion via ECN fraction and RTT, failures
// via timeout and retransmission monitoring, §3.1), active probing guided by
// the power of two choices with per-rack probe agents (§3.1.3), and timely
// yet cautious rerouting at packet granularity (Algorithm 2, §3.2).
package core

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Params are the Hermes knobs of Table 4 plus the ablation switches used in
// §5.4. Durations are virtual nanoseconds; fractions are in [0, 1].
type Params struct {
	// TECN is the ECN-fraction threshold identifying a congested path (40%).
	TECN float64
	// TRTTLow bounds the RTT of a good path (base RTT + 20-40 us).
	TRTTLow sim.Time
	// TRTTHigh is the RTT beyond which a path with high ECN is congested
	// (base RTT + 1.5x one-hop delay; 180 us in the paper's simulations).
	TRTTHigh sim.Time
	// DeltaRTT is the "notably better" RTT margin (one hop delay).
	DeltaRTT sim.Time
	// DeltaECN is the "notably better" ECN-fraction margin (3-10%).
	DeltaECN float64
	// RBps is the flow sending-rate ceiling above which Hermes will not
	// reroute (20-40% of the access link capacity).
	RBps float64
	// SBytes is the minimum bytes a flow must have sent before a
	// congestion-triggered reroute is worthwhile (100-800 KB).
	SBytes int64
	// ProbeInterval is the active probing period (100-500 us); zero
	// disables probing (the Fig 18 ablation).
	ProbeInterval sim.Time
	// ProbeTimeout declares an unanswered probe lost.
	ProbeTimeout sim.Time
	// Tau is the failure-detection window (10 ms): retransmission fractions
	// are evaluated once per Tau.
	Tau sim.Time
	// RetxFracThresh flags a path as failing when its retransmission
	// fraction exceeds it while the path is not congested (1% under DCTCP).
	RetxFracThresh float64
	// TimeoutsForBlackhole is the consecutive-timeout count that, with no
	// ACKs observed on the path, declares a blackhole (3).
	TimeoutsForBlackhole int
	// FailedHold keeps a failed path quarantined before re-evaluation.
	FailedHold sim.Time
	// RerouteCooldown is the minimum spacing between congestion-triggered
	// reroutes of one flow. The path signals are EWMAs fed by ACKs, so they
	// need a few RTTs to reflect a move; rerouting again before they
	// converge turns packet-granularity rerouting into oscillation (most
	// visible on slow links, where each move also costs a deep-queue's
	// worth of reordering).
	RerouteCooldown sim.Time
	// ECNGain and RTTGain are the EWMA gains for the path signals.
	ECNGain, RTTGain float64

	// Ablation switches (§5.4 / DESIGN.md):
	// DisableReroute turns off congestion-triggered rerouting (Algorithm 2
	// lines 13-23); initial placement and failure handling remain.
	DisableReroute bool
	// Vigorous removes the caution gates: every packet goes to the best
	// path currently known, demonstrating congestion mismatch.
	Vigorous bool
	// UseECN gates ECN-based sensing; false makes Hermes rely on RTT only,
	// as in the §5.4 plain-TCP experiment.
	UseECN bool
}

// DefaultParams derives the Table 4 recommended settings from the fabric's
// base RTT and one-hop delay, exactly as §3.3 prescribes.
func DefaultParams(nw *net.Network) Params {
	base := nw.ApproxBaseRTT()
	hop := nw.OneHopDelay()
	return Params{
		TECN:                 0.40,
		TRTTLow:              base + 20*sim.Microsecond,
		TRTTHigh:             base + hop + hop/2,
		DeltaRTT:             hop,
		DeltaECN:             0.05,
		RBps:                 0.30 * float64(nw.Cfg.HostRateBps),
		SBytes:               600_000,
		ProbeInterval:        500 * sim.Microsecond,
		ProbeTimeout:         10 * sim.Millisecond,
		Tau:                  10 * sim.Millisecond,
		RetxFracThresh:       0.01,
		TimeoutsForBlackhole: 3,
		FailedHold:           sim.Second,
		RerouteCooldown:      8 * hop,
		ECNGain:              1.0 / 16,
		RTTGain:              1.0 / 8,
		UseECN:               true,
	}
}

// PathType is the Algorithm 1 characterization of a path.
type PathType uint8

const (
	// Gray covers all the ambiguous signal combinations of Table 5.
	Gray PathType = iota
	// Good paths have low RTT and low ECN fraction: safe reroute targets.
	Good
	// Congested paths have both high ECN fraction and high RTT.
	Congested
	// Failed paths exhibit blackhole or random-drop symptoms (§3.1.2).
	Failed
)

// String implements fmt.Stringer.
func (t PathType) String() string {
	switch t {
	case Good:
		return "good"
	case Congested:
		return "congested"
	case Failed:
		return "failed"
	default:
		return "gray"
	}
}
