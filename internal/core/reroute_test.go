package core

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/transport"
)

// hermesStack builds a 2-leaf fabric with a real transport wired to Hermes
// on host 0 and pass-through receivers elsewhere.
func hermesStack(t *testing.T, spines int, tweak func(*Params)) (*sim.Engine, *net.Network, *Monitor, *Hermes, *transport.Transport) {
	t.Helper()
	eng, nw := testNet(t, 2, spines, 2)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	if tweak != nil {
		tweak(&p)
	}
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(2), 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(host *net.Host) transport.Balancer {
		if host.ID == 0 {
			return h
		}
		return &passBal{}
	})
	return eng, nw, m, h, tr
}

func TestNotablyBetterRequiresBothMargins(t *testing.T) {
	eng, _, m, h, tr := hermesStack(t, 2, func(p *Params) {
		p.SBytes = 1
		p.RBps = 1e18
	})
	f := tr.StartFlow(0, 2, 5_000_000)
	cur := f.CurPath
	other := 1 - cur
	// Current path congested; alternative better in RTT but NOT in ECN
	// fraction (both heavily marked): the ECN margin must block the move.
	for i := 0; i < 30; i++ {
		feed(m, 1, cur, 40, true, m.P.TRTTHigh+200*sim.Microsecond)
		feed(m, 1, other, 40, true, m.P.TRTTLow-sim.Microsecond)
		eng.Run(eng.Now() + 100*sim.Microsecond)
	}
	if h.Reroutes != 0 {
		t.Fatal("rerouted with only the RTT margin satisfied")
	}
}

func TestFailedPathExcludedFromPlacement(t *testing.T) {
	_, nw, m, h := testHermes(t)
	// Paths 0..2 failed at rack scope; 3 is good.
	now := m.Net.Eng.Now()
	for p := 0; p < 3; p++ {
		m.markFailed(1, p, m.State(1, p), telemetry.ReasonSilentDrop, now)
	}
	feed(m, 1, 3, 50, false, m.P.TRTTLow-sim.Microsecond)
	f := mkFlow(1, nw)
	for i := 0; i < 20; i++ {
		if got := h.SelectPath(f); got != 3 {
			t.Fatalf("placed on failed path %d", got)
		}
		f.CurPath = net.PathAny // force re-placement
	}
}

func TestAllPathsFailedStillPicksSomething(t *testing.T) {
	_, nw, m, h := testHermes(t)
	now := m.Net.Eng.Now()
	for p := 0; p < 4; p++ {
		m.markFailed(1, p, m.State(1, p), telemetry.ReasonSilentDrop, now)
	}
	f := mkFlow(1, nw)
	got := h.SelectPath(f)
	if got < 0 || got >= 4 {
		t.Fatalf("no last-resort path: %d", got)
	}
}

func TestCapacityWeightedFallback(t *testing.T) {
	// With every path congested, fresh placement falls back to a
	// capacity-weighted random choice: a 2 Gbps path should receive about
	// 1/6 of placements next to a 10 Gbps path.
	eng, nw := testNet(t, 2, 2, 2)
	nw.SetFabricLink(0, 1, 2e9)
	nw.SetFabricLink(1, 1, 2e9)
	p := DefaultParams(nw)
	p.ProbeInterval = 0
	m := NewMonitor(nw, 0, p)
	h := New(m, sim.NewRNG(3), 0)
	_ = eng
	// Make both paths look congested.
	for q := 0; q < 2; q++ {
		feed(m, 1, q, 100, true, p.TRTTHigh+100*sim.Microsecond)
	}
	counts := [2]int{}
	for i := 0; i < 3000; i++ {
		f := mkFlow(uint64(i), nw)
		counts[h.SelectPath(f)]++
	}
	frac := float64(counts[1]) / 3000
	if frac < 0.10 || frac > 0.24 {
		t.Fatalf("2G path got %.2f of placements, want ~1/6", frac)
	}
}

func TestQuarantineExpires(t *testing.T) {
	eng, _, m := testMonitor(t)
	ps := m.State(1, 0)
	m.markFailed(1, 0, ps, telemetry.ReasonSilentDrop, eng.Now())
	if m.Type(1, 0) != Failed {
		t.Fatal("not quarantined")
	}
	eng.Run(eng.Now() + m.P.FailedHold + sim.Millisecond)
	if m.Type(1, 0) == Failed {
		t.Fatal("quarantine never expired")
	}
}

func TestBlackholeQuarantineRenews(t *testing.T) {
	eng, _, m := testMonitor(t)
	trigger := func() {
		for i := 0; i <= m.P.TimeoutsForBlackhole; i++ {
			m.OnTimeout(1, 0)
		}
	}
	trigger()
	if m.Type(1, 0) != Failed {
		t.Fatal("blackhole not quarantined")
	}
	// The quarantine expires (congestion false-positives must recover)...
	eng.Run(eng.Now() + m.P.FailedHold + sim.Millisecond)
	if m.Type(1, 0) == Failed {
		t.Fatal("quarantine never expired")
	}
	// ...but a real blackhole re-triggers immediately on renewed evidence.
	trigger()
	if m.Type(1, 0) != Failed {
		t.Fatal("re-detection failed")
	}
}

func TestRerouteAccountingMatchesPathChanges(t *testing.T) {
	// End-to-end: Hermes reroute counters never exceed the transport's
	// observed path changes plus initial placements.
	eng, nw, m, h, tr := hermesStack(t, 4, func(p *Params) {
		p.SBytes = 1
		p.RBps = 1e18
	})
	_ = nw
	var flows []*transport.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, tr.StartFlow(0, 2, 500_000))
	}
	for i := 0; i < 50; i++ {
		// Rotate which path looks congested.
		for q := 0; q < 4; q++ {
			if q == i%4 {
				feed(m, 1, q, 30, true, m.P.TRTTHigh+100*sim.Microsecond)
			} else {
				feed(m, 1, q, 30, false, m.P.TRTTLow-sim.Microsecond)
			}
		}
		eng.Run(eng.Now() + 200*sim.Microsecond)
	}
	eng.Run(eng.Now() + 500*sim.Millisecond)
	var changes int
	for _, f := range flows {
		if !f.Done {
			t.Fatal("flow unfinished")
		}
		changes += f.PathChanges
	}
	if int(h.Reroutes) > changes {
		t.Fatalf("reroute counter %d exceeds observed path changes %d", h.Reroutes, changes)
	}
}

func TestHermesIgnoresForeignLeafState(t *testing.T) {
	// A Hermes instance only consults its own rack's monitor; state fed for
	// another destination leaf must not affect placement toward this one.
	_, nw, m, h := testHermes(t)
	// dstLeaf 1 path 0 good; state for an out-of-range leaf is rejected.
	m.OnDelivery(7, 0, true, sim.Second) // invalid dst leaf: dropped
	feed(m, 1, 0, 50, false, m.P.TRTTLow-sim.Microsecond)
	f := mkFlow(1, nw)
	if got := h.SelectPath(f); got != 0 {
		t.Fatalf("placement = %d, want 0", got)
	}
}

func TestRerouteCooldownSpacesMoves(t *testing.T) {
	eng, _, m, h, tr := hermesStack(t, 2, func(p *Params) {
		p.SBytes = 1
		p.RBps = 1e18
	})
	f := tr.StartFlow(0, 2, 20_000_000)
	cur := f.CurPath
	// Oscillate the "notably better" relation every 100 us — far faster
	// than the cooldown. Without the cooldown this would ping-pong.
	for i := 0; i < 60; i++ {
		a, b := f.CurPath, 1-f.CurPath
		feed(m, 1, a, 40, true, m.P.TRTTHigh+200*sim.Microsecond)
		feed(m, 1, b, 40, false, m.P.TRTTLow-sim.Microsecond)
		eng.Run(eng.Now() + 100*sim.Microsecond)
	}
	elapsed := eng.Now()
	maxMoves := uint64(elapsed/m.P.RerouteCooldown) + 1
	if h.Reroutes == 0 {
		t.Fatal("no reroutes at all; cooldown too strict")
	}
	if h.Reroutes > maxMoves {
		t.Fatalf("%d reroutes in %v with cooldown %v; spacing not enforced",
			h.Reroutes, elapsed, m.P.RerouteCooldown)
	}
	_ = cur
}
