package core

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/telemetry"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Hermes is the per-host (hypervisor) balancer instance. Hosts under the
// same leaf share one Monitor — the rack-level sensing pool fed by probes
// and by every local flow's transport signals — while blackhole suspicion is
// tracked per destination host, since blackholes match specific
// source-destination pairs (§3.1.2).
type Hermes struct {
	transport.BaseBalancer
	Mon  *Monitor
	Rng  *sim.RNG
	Host int

	pairFail    map[pairKey]*pairState
	lastReroute map[uint64]sim.Time

	// Telemetry.
	Reroutes        uint64
	TimeoutReroutes uint64
	FailureReroutes uint64

	// Audit, when non-nil, receives one entry per placement and reroute
	// decision — the queryable record of Algorithm 2's verdicts.
	Audit *telemetry.AuditLog
	// cNoBetter counts congestion episodes where every alternative failed
	// the "notably better" margins — the cautious design refusing a blind
	// move (the congestion-mismatch detector). cCautionHeld counts decisions
	// suppressed by the sent-bytes/rate/cooldown gates.
	cNoBetter    *telemetry.Counter
	cCautionHeld *telemetry.Counter
}

type pairKey struct {
	dst  int
	path int
}

type pairState struct {
	consecTimeouts int
	failedUntil    sim.Time
}

// New builds the per-host instance over a shared rack monitor.
func New(mon *Monitor, rng *sim.RNG, host int) *Hermes {
	return &Hermes{
		Mon: mon, Rng: rng, Host: host,
		pairFail:    map[pairKey]*pairState{},
		lastReroute: map[uint64]sim.Time{},
	}
}

// Name implements transport.Balancer.
func (h *Hermes) Name() string { return "Hermes" }

// AttachTelemetry wires the decision audit log and the caution counters.
// Counters are get-or-create by name, so every instance under one registry
// shares them. Safe to skip entirely: a nil registry and audit cost one nil
// check per decision.
func (h *Hermes) AttachTelemetry(reg *telemetry.Registry, audit *telemetry.AuditLog) {
	h.Audit = audit
	h.cNoBetter = reg.Counter("hermes.reroute.no_better_path")
	h.cCautionHeld = reg.Counter("hermes.reroute.caution_held")
}

// audit records one decision entry (no-op when auditing is off).
func (h *Hermes) audit(at sim.Time, kind telemetry.AuditKind, reason string, f *transport.Flow, from, to int) {
	h.Audit.Add(telemetry.AuditEntry{
		At: at, Kind: kind, Reason: reason,
		Host: h.Host, Flow: f.ID, DstLeaf: f.DstLeaf,
		FromPath: from, ToPath: to,
	})
}

func (h *Hermes) pathFailed(f *transport.Flow, p int) bool {
	if h.Mon.Type(f.DstLeaf, p) == Failed {
		return true
	}
	if s := h.pairFail[pairKey{f.Dst, p}]; s != nil && h.Mon.Net.Eng.Now() < s.failedUntil {
		return true
	}
	return false
}

// SelectPath implements Algorithm 2 ("Timely yet Cautious Rerouting"): it
// runs for every data packet.
func (h *Hermes) SelectPath(f *transport.Flow) int {
	if f.SrcLeaf == f.DstLeaf {
		return net.PathAny
	}
	m := h.Mon
	now := m.Net.Eng.Now()
	paths := m.Net.AvailablePaths(f.SrcLeaf, f.DstLeaf)
	if len(paths) == 0 {
		return net.PathAny
	}

	cur := f.CurPath
	needFresh := !f.Started() || f.TimedOut || cur < 0 || h.pathFailed(f, cur)
	if needFresh {
		// Lines 3-12: new flow, timeout, or failed path: place on the good
		// path with the least local sending rate, falling back to gray,
		// then to any non-failed path.
		reason := telemetry.ReasonFresh
		if f.Started() {
			if f.TimedOut {
				h.TimeoutReroutes++
				reason = telemetry.ReasonTimeout
			} else {
				h.FailureReroutes++
				reason = telemetry.ReasonFailure
			}
		}
		f.TimedOut = false
		p := h.placeFresh(f, paths, now)
		h.audit(now, telemetry.AuditPlace, reason, f, cur, p)
		return p
	}

	if m.P.Vigorous {
		// Ablation: always jump to the best-looking path instantly.
		return h.vigorousBest(f, paths, now, cur)
	}

	if m.P.DisableReroute {
		return cur
	}

	// Lines 13-23: congestion-triggered cautious rerouting.
	if m.Type(f.DstLeaf, cur) != Congested {
		return cur
	}
	if f.SentBytes() <= m.P.SBytes || f.RateBps(now) >= m.P.RBps {
		h.cCautionHeld.Inc()
		return cur // caution gates: too little sent, or already fast
	}
	if last, ok := h.lastReroute[f.ID]; ok && now-last < m.P.RerouteCooldown {
		h.cCautionHeld.Inc()
		return cur // signals from the previous move have not converged yet
	}
	curPS := m.State(f.DstLeaf, cur)
	pick := h.bestNotablyBetter(f, paths, now, curPS, Good)
	if pick < 0 {
		pick = h.bestNotablyBetter(f, paths, now, curPS, Gray)
	}
	if pick >= 0 && pick != cur {
		h.Reroutes++
		h.lastReroute[f.ID] = now
		h.audit(now, telemetry.AuditReroute, telemetry.ReasonCongestion, f, cur, pick)
		return pick
	}
	// The current path is congested but nothing clears the notably-better
	// margins: moving would risk the congestion mismatch of §2.2, so stay.
	h.cNoBetter.Inc()
	return cur
}

// placeFresh picks the initial (or post-failure) path: least-loaded good,
// else least-loaded gray, else random non-failed, else random.
func (h *Hermes) placeFresh(f *transport.Flow, paths []int, now sim.Time) int {
	if p := h.leastLoaded(f, paths, now, Good); p >= 0 {
		return p
	}
	if p := h.leastLoaded(f, paths, now, Gray); p >= 0 {
		return p
	}
	var live []int
	for _, p := range paths {
		if !h.pathFailed(f, p) {
			live = append(live, p)
		}
	}
	if len(live) > 0 {
		return h.capacityWeighted(f, live)
	}
	return h.capacityWeighted(f, paths)
}

// capacityWeighted picks a path with probability proportional to its
// bottleneck capacity. The paper's XPath path set enumerates physical
// cables, so its uniform random fallback (Algorithm 2 line 12) is already
// capacity-proportional; this model folds parallel cables into one link of
// the summed rate, and weighting restores the same behaviour.
func (h *Hermes) capacityWeighted(f *transport.Flow, paths []int) int {
	var total int64
	for _, p := range paths {
		total += h.Mon.Net.PathCapacityBps(f.SrcLeaf, f.DstLeaf, p)
	}
	if total <= 0 {
		return paths[h.Rng.Intn(len(paths))]
	}
	u := h.Rng.Int63() % total
	for _, p := range paths {
		u -= h.Mon.Net.PathCapacityBps(f.SrcLeaf, f.DstLeaf, p)
		if u < 0 {
			return p
		}
	}
	return paths[len(paths)-1]
}

// localLoad is the placement metric: the aggregate local sending rate r_p
// normalized by the path's bottleneck capacity. Normalization matters on
// asymmetric fabrics — a 2 Gbps path with little local traffic is not
// "emptier" than a 10 Gbps path carrying twice the bytes.
func (h *Hermes) localLoad(f *transport.Flow, p int, now sim.Time) float64 {
	capBps := h.Mon.Net.PathCapacityBps(f.SrcLeaf, f.DstLeaf, p)
	if capBps <= 0 {
		return 1e18
	}
	return h.Mon.State(f.DstLeaf, p).RateBps(now) / float64(capBps)
}

// leastLoaded returns the path of the wanted type with the smallest
// normalized local sending rate, or -1 if none match.
func (h *Hermes) leastLoaded(f *transport.Flow, paths []int, now sim.Time, want PathType) int {
	best := -1
	var bestRate float64
	for _, p := range paths {
		if h.pathFailed(f, p) || h.Mon.Type(f.DstLeaf, p) != want {
			continue
		}
		r := h.localLoad(f, p, now)
		if best < 0 || r < bestRate {
			best, bestRate = p, r
		}
	}
	return best
}

// bestNotablyBetter returns the least-loaded path of the wanted type that
// beats the current path by both margins (Delta_RTT and Delta_ECN), or -1.
func (h *Hermes) bestNotablyBetter(f *transport.Flow, paths []int, now sim.Time, cur *PathState, want PathType) int {
	m := h.Mon
	best := -1
	var bestRate float64
	for _, p := range paths {
		if h.pathFailed(f, p) || m.Type(f.DstLeaf, p) != want {
			continue
		}
		ps := m.State(f.DstLeaf, p)
		if cur.RTT()-ps.RTT() <= m.P.DeltaRTT {
			continue
		}
		if m.P.UseECN && cur.ECNFraction()-ps.ECNFraction() <= m.P.DeltaECN {
			continue
		}
		r := h.localLoad(f, p, now)
		if best < 0 || r < bestRate {
			best, bestRate = p, r
		}
	}
	return best
}

// vigorousBest implements the no-caution ablation: the path with the lowest
// smoothed RTT wins every packet.
func (h *Hermes) vigorousBest(f *transport.Flow, paths []int, now sim.Time, cur int) int {
	m := h.Mon
	best, bestRTT := cur, sim.Time(1<<62)
	if cur >= 0 && !h.pathFailed(f, cur) {
		bestRTT = m.State(f.DstLeaf, cur).RTT()
	}
	for _, p := range paths {
		if h.pathFailed(f, p) {
			continue
		}
		if rtt := m.State(f.DstLeaf, p).RTT(); rtt < bestRTT {
			best, bestRTT = p, rtt
		}
	}
	if best != cur {
		h.Reroutes++
	}
	_ = now
	return best
}

// --- Transport signal plumbing ------------------------------------------

// OnSent implements transport.Balancer.
func (h *Hermes) OnSent(f *transport.Flow, path int, bytes int) {
	h.Mon.OnSent(f.DstLeaf, path, bytes)
}

// OnAck implements transport.Balancer.
func (h *Hermes) OnAck(f *transport.Flow, ev transport.AckEvent) {
	h.Mon.OnDelivery(f.DstLeaf, ev.Path, ev.ECE, ev.RTT)
	if s := h.pairFail[pairKey{f.Dst, ev.Path}]; s != nil {
		s.consecTimeouts = 0
	}
}

// OnRetransmit implements transport.Balancer.
func (h *Hermes) OnRetransmit(f *transport.Flow, path int) {
	h.Mon.OnRetransmit(f.DstLeaf, path)
}

// OnFlowDone implements transport.Balancer.
func (h *Hermes) OnFlowDone(f *transport.Flow) {
	delete(h.lastReroute, f.ID)
}

// OnTimeout implements transport.Balancer: feeds both the rack-level
// monitor and the per-pair blackhole detector.
func (h *Hermes) OnTimeout(f *transport.Flow, path int) {
	if path < 0 {
		return
	}
	h.Mon.OnTimeout(f.DstLeaf, path)
	k := pairKey{f.Dst, path}
	s := h.pairFail[k]
	if s == nil {
		s = &pairState{}
		h.pairFail[k] = s
	}
	s.consecTimeouts++
	if s.consecTimeouts >= h.Mon.P.TimeoutsForBlackhole {
		// Quarantine rather than permanently condemn: a true blackhole
		// re-triggers within ~3 RTOs of the hold expiring, while a pair
		// that merely suffered congestion timeouts recovers. Permanent
		// verdicts cascade under extreme load (pair-paths vanish, load
		// concentrates, more timeouts follow).
		s.failedUntil = h.Mon.Net.Eng.Now() + h.Mon.P.FailedHold
		s.consecTimeouts = 0
	}
}
