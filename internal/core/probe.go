package core

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Prober implements §3.1.3: one probe agent per rack measures the paths to
// every other rack each interval, probing two random paths plus the
// previously best one (power of two choices with memory), and shares the
// results through the rack's Monitor. Probes ride the data queue so they
// sample the congestion data would see; echoes return at high priority.
type Prober struct {
	Mon *Monitor
	Rng *sim.RNG

	// Agent is the probing host of this rack (the paper picks one
	// hypervisor per rack to amortize overhead 100x).
	Agent *net.Host
	// RemoteAgents[d] is the probe agent of leaf d.
	RemoteAgents []*net.Host

	interval sim.Time
	timeout  sim.Time

	prevBest []int // per destination leaf
	nextID   uint64
	pending  map[uint64]*pendingProbe

	// ProbesSent / ProbeBytes quantify the Table 6 overhead.
	ProbesSent uint64
	ProbeBytes uint64
	ProbesLost uint64

	stopped bool
}

type pendingProbe struct {
	dstLeaf int
	path    int
	timer   *sim.Event
}

// NewProber wires the agent host's probe handlers and starts the periodic
// probing loop. Call once per rack after transport endpoints are attached.
func NewProber(mon *Monitor, rng *sim.RNG, agents []*net.Host) *Prober {
	p := &Prober{
		Mon:          mon,
		Rng:          rng,
		Agent:        agents[mon.SrcLeaf],
		RemoteAgents: agents,
		interval:     mon.P.ProbeInterval,
		timeout:      mon.P.ProbeTimeout,
		pending:      map[uint64]*pendingProbe{},
		prevBest:     make([]int, len(agents)),
	}
	for i := range p.prevBest {
		p.prevBest[i] = -1
	}
	// Echo handling: any probe reaching this agent is answered; any echo
	// reaching it resolves a pending measurement.
	p.Agent.Handle(net.ProbeEcho, p.onEcho)
	if p.interval > 0 {
		mon.Net.Eng.ScheduleKind(p.interval, sim.KindProbe, p.tick)
	}
	return p
}

// InstallProbeResponders makes every host answer probes with a
// high-priority echo carrying the probe's timestamp, path and CE mark.
// Responders are independent of probers, so they are installed fabric-wide.
func InstallProbeResponders(nw *net.Network) {
	for _, h := range nw.Hosts {
		h := h
		h.Handle(net.Probe, func(pkt *net.Packet) {
			echo := nw.AllocPacket()
			*echo = net.Packet{
				Kind:     net.ProbeEcho,
				Flow:     pkt.Flow,
				Src:      h.ID,
				Dst:      pkt.Src,
				Wire:     net.ProbeBytes,
				Path:     pkt.Path,
				EchoSent: pkt.SentAt,
				EchoPath: pkt.Path,
				EchoCE:   pkt.CE,
				SentAt:   pkt.SentAt,
			}
			h.Send(echo)
		})
	}
}

// PendingProbes returns the number of in-flight probe measurements.
func (p *Prober) PendingProbes() int { return len(p.pending) }

// Stop retires the prober: the periodic tick stops rescheduling and any
// in-flight probe timeouts resolve as no-ops. A what-if fork calls this on
// the outgoing scheme's probers; echo handlers stay installed but find no
// pending entries.
func (p *Prober) Stop() {
	p.stopped = true
	for id, pp := range p.pending {
		pp.timer.Cancel()
		delete(p.pending, id)
	}
}

func (p *Prober) tick() {
	if p.stopped {
		return
	}
	now := p.Mon.Net.Eng.Now()
	nw := p.Mon.Net
	for d := 0; d < nw.Cfg.Leaves; d++ {
		if d == p.Mon.SrcLeaf {
			continue
		}
		paths := nw.AvailablePaths(p.Mon.SrcLeaf, d)
		targets := p.chooseProbeSet(paths, d)
		for _, path := range targets {
			p.sendProbe(d, path, now)
		}
	}
	p.Mon.Net.Eng.ScheduleKind(p.interval, sim.KindProbe, p.tick)
}

// chooseProbeSet returns two random distinct paths plus the previously best
// one (deduplicated), per the power-of-two-choices-with-memory design.
func (p *Prober) chooseProbeSet(paths []int, dstLeaf int) []int {
	switch len(paths) {
	case 0:
		return nil
	case 1:
		return paths
	case 2:
		return paths
	}
	a, b := p.Rng.TwoDistinct(len(paths))
	set := []int{paths[a], paths[b]}
	if best := p.prevBest[dstLeaf]; best >= 0 && best != set[0] && best != set[1] {
		for _, q := range paths {
			if q == best {
				set = append(set, best)
				break
			}
		}
	}
	return set
}

func (p *Prober) sendProbe(dstLeaf, path int, now sim.Time) {
	p.nextID++
	id := p.nextID
	dst := p.RemoteAgents[dstLeaf]
	pp := &pendingProbe{dstLeaf: dstLeaf, path: path}
	pp.timer = p.Mon.Net.Eng.ScheduleKind(p.timeout, sim.KindProbe, func() {
		delete(p.pending, id)
		p.ProbesLost++
		p.Mon.OnProbeResult(dstLeaf, path, true, false, 0)
	})
	p.pending[id] = pp
	p.ProbesSent++
	p.ProbeBytes += net.ProbeBytes
	pkt := p.Mon.Net.AllocPacket()
	*pkt = net.Packet{
		Kind:   net.Probe,
		Flow:   id,
		Src:    p.Agent.ID,
		Dst:    dst.ID,
		Wire:   net.ProbeBytes,
		ECT:    true,
		Path:   path,
		SentAt: now,
	}
	p.Agent.Send(pkt)
}

func (p *Prober) onEcho(pkt *net.Packet) {
	pp, ok := p.pending[pkt.Flow]
	if !ok {
		return
	}
	delete(p.pending, pkt.Flow)
	pp.timer.Cancel()
	now := p.Mon.Net.Eng.Now()
	rtt := now - pkt.EchoSent
	p.Mon.OnProbeResult(pp.dstLeaf, pp.path, false, pkt.EchoCE, rtt)
	// Remember the best (lowest-RTT) probed path for the extra probe.
	best := p.prevBest[pp.dstLeaf]
	if best < 0 || p.Mon.State(pp.dstLeaf, pp.path).RTT() <= p.Mon.State(pp.dstLeaf, best).RTT() {
		p.prevBest[pp.dstLeaf] = pp.path
	}
}
