package core

// PathStateDump is one (dstLeaf, path) entry of a monitor's sensing table —
// the Table 3 variables plus the quarantine horizon and last reported
// characterization, in checkpoint-comparable form.
type PathStateDump struct {
	DstLeaf         int     `json:"dst_leaf"`
	Path            int     `json:"path"`
	ECN             float64 `json:"ecn"`
	RTT             float64 `json:"rtt"`
	ECNSamples      int     `json:"ecn_samples"`
	RTTSamples      int     `json:"rtt_samples"`
	WinPkts         int     `json:"win_pkts"`
	WinRetx         int     `json:"win_retx"`
	ConsecTimeouts  int     `json:"consec_timeouts"`
	ConsecProbeLoss int     `json:"consec_probe_loss"`
	FailedUntilNs   int64   `json:"failed_until_ns"`
	LastType        string  `json:"last_type"`
}

// MonitorDump is one rack monitor's full path-state table plus its event
// counters, in (dstLeaf, path) order.
type MonitorDump struct {
	SrcLeaf        int             `json:"src_leaf"`
	Reroutes       uint64          `json:"reroutes"`
	FailMarkEvents uint64          `json:"fail_mark_events"`
	Paths          []PathStateDump `json:"paths"`
}

// ProberDump is one rack prober's checkpoint-visible state: overhead
// counters, the count of in-flight measurements, and the per-destination
// previously-best path memory.
type ProberDump struct {
	SrcLeaf    int    `json:"src_leaf"`
	ProbesSent uint64 `json:"probes_sent"`
	ProbeBytes uint64 `json:"probe_bytes"`
	ProbesLost uint64 `json:"probes_lost"`
	Pending    int    `json:"pending"`
	PrevBest   []int  `json:"prev_best"`
}

// Dump captures the prober's state; read-only.
func (p *Prober) Dump() *ProberDump {
	return &ProberDump{
		SrcLeaf:    p.Mon.SrcLeaf,
		ProbesSent: p.ProbesSent,
		ProbeBytes: p.ProbeBytes,
		ProbesLost: p.ProbesLost,
		Pending:    len(p.pending),
		PrevBest:   append([]int(nil), p.prevBest...),
	}
}

// Dump captures the monitor's sensing state. Read-only; intra-rack rows
// (dstLeaf == SrcLeaf) are skipped, as no signal ever lands on them.
func (m *Monitor) Dump() *MonitorDump {
	d := &MonitorDump{SrcLeaf: m.SrcLeaf, Reroutes: m.Reroutes, FailMarkEvents: m.FailMarkEvents}
	for dst := range m.paths {
		if dst == m.SrcLeaf {
			continue
		}
		for s, ps := range m.paths[dst] {
			d.Paths = append(d.Paths, PathStateDump{
				DstLeaf:         dst,
				Path:            s,
				ECN:             ps.ecn,
				RTT:             ps.rtt,
				ECNSamples:      ps.ecnSamples,
				RTTSamples:      ps.rttSamples,
				WinPkts:         ps.winPkts,
				WinRetx:         ps.winRetx,
				ConsecTimeouts:  ps.consecTimeouts,
				ConsecProbeLoss: ps.consecProbeLoss,
				FailedUntilNs:   ps.failedUntil,
				LastType:        ps.lastType.String(),
			})
		}
	}
	return d
}
