package perf

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"github.com/hermes-repro/hermes/internal/timeseries"
)

// DefaultRuntimeInterval is the wall-clock sampling interval of the Go
// runtime sampler when Options.RuntimeIntervalMs is unset.
const DefaultRuntimeInterval = 50 * time.Millisecond

// runtimeSeriesCap bounds the sampler's flight-recorder ring: at the 50ms
// default it retains the last ~3.4 minutes of runtime history.
const runtimeSeriesCap = 4096

// RuntimeStats are the aggregates of one sampler window (one run, usually):
// peaks and deltas between Start and Stop.
type RuntimeStats struct {
	PeakHeapBytes  uint64
	GCCycles       uint32 // cycles completed during the window
	GCPauseNs      uint64 // stop-the-world pause ns during the window
	PeakGoroutines int
	GOMAXPROCS     int
	CPUUtilization float64 // mean busy fraction of GOMAXPROCS over the window
	Samples        int
	WallNs         int64
}

// RuntimeSampler watches the Go runtime on a wall-clock ticker while a
// simulation runs, recording heap bytes, GC activity, goroutine count and
// CPU utilization into a ring-capped timeseries.Columns flight recording.
// It is safe for concurrent use: the sampling goroutine owns the writes and
// Snapshot/Stop take the mutex.
//
// The sampler deliberately reads only Go runtime APIs — never simulation
// state — so it can run against the single-threaded engine without races.
type RuntimeSampler struct {
	interval time.Duration

	mu      sync.Mutex
	cols    *timeseries.Columns
	stats   RuntimeStats
	stopped bool

	startWall    time.Time
	startGC      uint32
	startPauseNs uint64
	cpuOK        bool
	cpuStartBusy float64 // cpu-seconds (total - idle) at Start

	stop chan struct{}
	done chan struct{}
}

var cpuSamples = []metrics.Sample{
	{Name: "/cpu/classes/total:cpu-seconds"},
	{Name: "/cpu/classes/idle:cpu-seconds"},
}

// readCPUBusy returns the process's cumulative busy cpu-seconds
// (total - idle across all Ps) and whether the runtime exposes the metric.
func readCPUBusy() (float64, bool) {
	s := make([]metrics.Sample, len(cpuSamples))
	copy(s, cpuSamples)
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 || s[1].Value.Kind() != metrics.KindFloat64 {
		return 0, false
	}
	return s[0].Value.Float64() - s[1].Value.Float64(), true
}

// StartRuntimeSampler begins sampling every interval (<= 0 uses
// DefaultRuntimeInterval). Call Stop to end the window and collect
// aggregates; Stop always folds in one final sample so even runs shorter
// than the interval observe the runtime at least twice.
func StartRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	s := &RuntimeSampler{
		interval: interval,
		cols:     &timeseries.Columns{Cap: runtimeSeriesCap},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.startWall = time.Now()
	s.startGC = ms.NumGC
	s.startPauseNs = ms.PauseTotalNs
	s.stats.GOMAXPROCS = runtime.GOMAXPROCS(0)
	s.cpuStartBusy, s.cpuOK = readCPUBusy()
	s.sampleLocked(&ms) // opening sample
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			s.mu.Lock()
			s.sampleLocked(&ms)
			s.mu.Unlock()
		}
	}
}

// sampleLocked appends one row; callers hold mu (or own the sampler
// exclusively, as Start does before the goroutine exists).
func (s *RuntimeSampler) sampleLocked(ms *runtime.MemStats) {
	now := time.Now()
	s.cols.Append(now.Sub(s.startWall).Nanoseconds())
	s.cols.Put("perf.heap_bytes", float64(ms.HeapAlloc))
	s.cols.Put("perf.gc_cycles", float64(ms.NumGC))
	s.cols.Put("perf.gc_pause_ns", float64(ms.PauseTotalNs))
	g := runtime.NumGoroutine()
	s.cols.Put("perf.goroutines", float64(g))
	if busy, ok := readCPUBusy(); ok && s.cpuOK {
		s.cols.Put("perf.cpu_busy_seconds", busy-s.cpuStartBusy)
	}
	s.stats.Samples++
	if ms.HeapAlloc > s.stats.PeakHeapBytes {
		s.stats.PeakHeapBytes = ms.HeapAlloc
	}
	if g > s.stats.PeakGoroutines {
		s.stats.PeakGoroutines = g
	}
	s.stats.GCCycles = ms.NumGC - s.startGC
	s.stats.GCPauseNs = ms.PauseTotalNs - s.startPauseNs
}

// Stop ends the window, takes a final sample, and returns the window's
// aggregates. It is idempotent: later calls return the same stats.
func (s *RuntimeSampler) Stop() *RuntimeStats {
	s.mu.Lock()
	if s.stopped {
		st := s.stats
		s.mu.Unlock()
		return &st
	}
	s.stopped = true
	s.mu.Unlock()

	close(s.stop)
	<-s.done

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampleLocked(&ms)
	s.stats.WallNs = time.Since(s.startWall).Nanoseconds()
	if busy, ok := readCPUBusy(); ok && s.cpuOK && s.stats.WallNs > 0 {
		wallSec := float64(s.stats.WallNs) / 1e9
		util := (busy - s.cpuStartBusy) / wallSec / float64(s.stats.GOMAXPROCS)
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		s.stats.CPUUtilization = util
	}
	st := s.stats
	return &st
}

// SeriesSnapshot copies the sampler's flight recording: aligned sample
// offsets (wall ns since Start) and named series, in Columns' sorted name
// order. Safe to call while sampling.
func (s *RuntimeSampler) SeriesSnapshot() (times []int64, series map[string][]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	times = s.cols.Times()
	series = make(map[string][]float64, len(s.cols.Names()))
	for _, n := range s.cols.Names() {
		series[n] = s.cols.Series(n)
	}
	return times, series
}
