package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile opens path and starts the CPU profiler, returning a stop
// function that flushes and closes the file. It is the one implementation
// behind every CLI's -cpuprofile flag so the open/defer-close handling
// cannot drift between binaries.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes the heap profile to path. Behind
// every CLI's -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	return f.Close()
}
