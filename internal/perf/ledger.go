package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// Fingerprint identifies the machine and build a ledger entry was measured
// on, so the comparator can flag cross-machine comparisons and a trajectory
// stays interpretable years later.
type Fingerprint struct {
	GOOS      string
	GOARCH    string
	NumCPU    int
	GoVersion string
	Revision  string `json:",omitempty"` // VCS revision (telemetry.Manifest)
	Dirty     bool   `json:",omitempty"` // VCS working tree had local edits
}

// HostFingerprint fills the machine half from the runtime; revision/dirty
// come from the caller (telemetry.BuildManifest keeps perf free of a
// telemetry import).
func HostFingerprint(revision string, dirty bool) Fingerprint {
	return Fingerprint{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Revision:  revision,
		Dirty:     dirty,
	}
}

// LedgerEntry is one benchmark measurement appended to the perf ledger
// (BENCH_perf.json). SamplesNsOp carries the per-repetition ns/op values so
// later comparisons can run a significance test instead of eyeballing two
// means.
type LedgerEntry struct {
	Name        string
	Date        string // RFC3339 UTC
	NsOp        float64
	BOp         int64
	AllocsOp    int64
	N           int       // b.N of the final repetition
	SamplesNsOp []float64 `json:",omitempty"`
	Fingerprint Fingerprint
	Note        string `json:",omitempty"`
}

// Ledger is the append-only benchmark trajectory. Entries are kept in
// append order: the history of one benchmark is every entry with its name,
// oldest first.
type Ledger struct {
	Entries []LedgerEntry
}

// LoadLedger reads a ledger file; a missing file is an empty ledger, not an
// error, so the first -perf run bootstraps the trajectory.
func LoadLedger(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Ledger{}, nil
	}
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("perf ledger %s: %w", path, err)
	}
	return &l, nil
}

// Append adds an entry to the trajectory.
func (l *Ledger) Append(e LedgerEntry) { l.Entries = append(l.Entries, e) }

// Save writes the ledger as indented JSON.
func (l *Ledger) Save(path string) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Latest returns the most recent entry for name, or nil.
func (l *Ledger) Latest(name string) *LedgerEntry {
	for i := len(l.Entries) - 1; i >= 0; i-- {
		if l.Entries[i].Name == name {
			return &l.Entries[i]
		}
	}
	return nil
}

// Names returns the distinct benchmark names present, sorted.
func (l *Ledger) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range l.Entries {
		if !seen[e.Name] {
			seen[e.Name] = true
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

// RegressionThresholdPct is the ns/op slowdown beyond which CI annotates a
// warning (it never fails the build: shared runners are noisy).
const RegressionThresholdPct = 10.0

// Comparison is the verdict of comparing a new measurement against a
// baseline entry of the same benchmark.
type Comparison struct {
	Name         string
	OldNsOp      float64
	NewNsOp      float64
	DeltaPct     float64 // positive = slower
	OldAllocsOp  int64
	NewAllocsOp  int64
	PValue       float64 // two-sided Mann-Whitney on SamplesNsOp; 1 when untestable
	Significant  bool    // p < 0.05
	Regression   bool    // slower than RegressionThresholdPct and significant (or untestable)
	CrossMachine bool    // fingerprints differ: take the delta with salt
}

// CompareEntries compares new against old (same benchmark). When both sides
// carry per-repetition samples a Mann-Whitney U test decides significance,
// benchstat-style; otherwise only the mean delta is reported and any
// over-threshold slowdown counts as a (low-confidence) regression.
func CompareEntries(old, new LedgerEntry) Comparison {
	c := Comparison{
		Name:        new.Name,
		OldNsOp:     old.NsOp,
		NewNsOp:     new.NsOp,
		OldAllocsOp: old.AllocsOp,
		NewAllocsOp: new.AllocsOp,
		PValue:      1,
	}
	if old.NsOp > 0 {
		c.DeltaPct = 100 * (new.NsOp - old.NsOp) / old.NsOp
	}
	c.CrossMachine = old.Fingerprint.GOOS != new.Fingerprint.GOOS ||
		old.Fingerprint.GOARCH != new.Fingerprint.GOARCH ||
		old.Fingerprint.NumCPU != new.Fingerprint.NumCPU
	testable := len(old.SamplesNsOp) >= 3 && len(new.SamplesNsOp) >= 3
	if testable {
		c.PValue = MannWhitneyP(old.SamplesNsOp, new.SamplesNsOp)
		c.Significant = c.PValue < 0.05
	}
	if c.DeltaPct > RegressionThresholdPct {
		// With samples we require significance; without, the mean delta is
		// all we have and the comparator errs toward warning.
		c.Regression = !testable || c.Significant
	}
	return c
}

// String renders a one-line benchstat-style verdict.
func (c Comparison) String() string {
	s := fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%%, p=%.3f", c.Name, c.OldNsOp, c.NewNsOp, c.DeltaPct, c.PValue)
	if c.Significant {
		s += ", significant"
	} else {
		s += ", not significant"
	}
	s += ")"
	if c.NewAllocsOp != c.OldAllocsOp {
		s += fmt.Sprintf(" allocs %d -> %d", c.OldAllocsOp, c.NewAllocsOp)
	}
	if c.CrossMachine {
		s += " [different machine]"
	}
	return s
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U test on
// two samples, using the normal approximation with tie correction (the same
// test benchstat uses for benchmark deltas). Degenerate inputs return 1.
func MannWhitneyP(x, y []float64) float64 {
	n1, n2 := float64(len(x)), float64(len(y))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// Rank the pooled samples, averaging ranks across ties.
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, len(x)+len(y))
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.fromX {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	n := n1 + n2
	mu := n1 * n2 / 2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all values tied
	}
	// Continuity-corrected z.
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	p := 2 * (1 - normalCDF(z))
	if p > 1 {
		p = 1
	}
	return p
}

func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
