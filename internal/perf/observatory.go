package perf

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Observatory aggregates perf run reports process-wide so a long-lived
// process (a bench sweep, a chaos matrix, statusd) can expose cumulative
// simulator performance: total events by kind, throughput of the last run,
// and a live Go runtime snapshot. It is safe for concurrent use — parallel
// sweeps publish from many goroutines.
type Observatory struct {
	mu        sync.Mutex
	runs      uint64
	events    uint64
	byKind    map[string]uint64
	queuePeak int
	peakHeap  uint64
	simNs     int64
	wallNs    int64
	last      *RunReport
}

// NewObservatory returns an empty observatory.
func NewObservatory() *Observatory {
	return &Observatory{byKind: map[string]uint64{}}
}

// AddRun folds one finished run's report into the aggregate.
func (o *Observatory) AddRun(r *RunReport) {
	if r == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.runs++
	o.events += r.EventsTotal
	for _, ks := range r.ByKind {
		o.byKind[ks.Kind] += ks.Count
	}
	if r.QueuePeak > o.queuePeak {
		o.queuePeak = r.QueuePeak
	}
	if r.PeakHeapBytes > o.peakHeap {
		o.peakHeap = r.PeakHeapBytes
	}
	o.simNs += r.SimNs
	o.wallNs += r.WallNs
	o.last = r
}

// RuntimeSnapshot is a point-in-time view of the Go runtime, taken at
// Summary/Metrics time so the observatory's export is always live even
// between runs.
type RuntimeSnapshot struct {
	HeapBytes  uint64
	GCCycles   uint32
	GCPauseNs  uint64
	Goroutines int
	GOMAXPROCS int
	NumCPU     int
	GoVersion  string
}

// ReadRuntimeSnapshot samples the Go runtime now.
func ReadRuntimeSnapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		HeapBytes:  ms.HeapAlloc,
		GCCycles:   ms.NumGC,
		GCPauseNs:  ms.PauseTotalNs,
		Goroutines: runtime.NumGoroutine(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// Summary is the /api/perf payload: cumulative run aggregates plus a live
// runtime snapshot and the last run's full report.
type Summary struct {
	RunsProfiled  uint64
	EventsTotal   uint64
	EventsByKind  map[string]uint64 `json:",omitempty"`
	QueuePeak     int
	PeakHeapBytes uint64
	SimNs         int64
	WallNs        int64
	SimPerWall    float64
	Runtime       RuntimeSnapshot
	LastRun       *RunReport `json:",omitempty"`
}

// Summary returns the aggregate view.
func (o *Observatory) Summary() Summary {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Summary{
		RunsProfiled:  o.runs,
		EventsTotal:   o.events,
		QueuePeak:     o.queuePeak,
		PeakHeapBytes: o.peakHeap,
		SimNs:         o.simNs,
		WallNs:        o.wallNs,
		Runtime:       ReadRuntimeSnapshot(),
		LastRun:       o.last,
	}
	if o.wallNs > 0 {
		s.SimPerWall = float64(o.simNs) / float64(o.wallNs)
	}
	if len(o.byKind) > 0 {
		s.EventsByKind = make(map[string]uint64, len(o.byKind))
		for k, v := range o.byKind {
			s.EventsByKind[k] = v
		}
	}
	return s
}

// Metric is one exposition-ready sample of the perf.* family. Names use the
// repo's dotted convention (perf.events_total); the exporter sanitizes them
// into Prometheus form.
type Metric struct {
	Name   string
	Type   string // "counter" or "gauge"
	Labels map[string]string
	Value  float64
}

// Metrics returns the perf.* family in deterministic order: aggregate run
// counters first, then per-kind counters sorted by kind, then the live
// runtime gauges.
func (o *Observatory) Metrics() []Metric {
	s := o.Summary()
	m := []Metric{
		{Name: "perf.runs_profiled_total", Type: "counter", Value: float64(s.RunsProfiled)},
		{Name: "perf.events_total", Type: "counter", Value: float64(s.EventsTotal)},
	}
	kinds := make([]string, 0, len(s.EventsByKind))
	for k := range s.EventsByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		m = append(m, Metric{
			Name: "perf.events_by_kind_total", Type: "counter",
			Labels: map[string]string{"kind": k},
			Value:  float64(s.EventsByKind[k]),
		})
	}
	m = append(m,
		Metric{Name: "perf.queue_peak", Type: "gauge", Value: float64(s.QueuePeak)},
		Metric{Name: "perf.heap_peak_bytes", Type: "gauge", Value: float64(s.PeakHeapBytes)},
		Metric{Name: "perf.sim_per_wall", Type: "gauge", Value: s.SimPerWall},
		Metric{Name: "perf.heap_bytes", Type: "gauge", Value: float64(s.Runtime.HeapBytes)},
		Metric{Name: "perf.gc_cycles_total", Type: "counter", Value: float64(s.Runtime.GCCycles)},
		Metric{Name: "perf.gc_pause_seconds_total", Type: "counter", Value: float64(s.Runtime.GCPauseNs) / 1e9},
		Metric{Name: "perf.goroutines", Type: "gauge", Value: float64(s.Runtime.Goroutines)},
		Metric{Name: "perf.gomaxprocs", Type: "gauge", Value: float64(s.Runtime.GOMAXPROCS)},
	)
	if s.LastRun != nil && s.LastRun.CPUUtilization > 0 {
		m = append(m, Metric{Name: "perf.cpu_utilization", Type: "gauge", Value: s.LastRun.CPUUtilization})
	}
	return m
}

// defaultObservatory is the process-wide fallback sink for runs whose
// Options carry no explicit Observatory, mirroring status.SetDefaultStatus.
var defaultObservatory atomic.Pointer[Observatory]

// SetDefault installs (or, with nil, clears) the process default
// observatory.
func SetDefault(o *Observatory) { defaultObservatory.Store(o) }

// Default returns the process default observatory, or nil.
func Default() *Observatory { return defaultObservatory.Load() }
