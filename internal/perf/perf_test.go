package perf

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hermes-repro/hermes/internal/sim"
)

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_perf.json")

	// A missing file is an empty ledger, not an error.
	l, err := LoadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries) != 0 {
		t.Fatalf("missing file produced %d entries", len(l.Entries))
	}

	fp := HostFingerprint("abc123", true)
	if fp.GOOS == "" || fp.NumCPU < 1 || fp.Revision != "abc123" || !fp.Dirty {
		t.Fatalf("fingerprint: %+v", fp)
	}
	l.Append(LedgerEntry{Name: "b.One", Date: "2026-01-01T00:00:00Z", NsOp: 100, Fingerprint: fp})
	l.Append(LedgerEntry{Name: "b.Two", Date: "2026-01-01T00:00:00Z", NsOp: 50, Fingerprint: fp})
	l.Append(LedgerEntry{Name: "b.One", Date: "2026-02-01T00:00:00Z", NsOp: 110, Fingerprint: fp})
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}

	l2, err := LoadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Entries) != 3 {
		t.Fatalf("reloaded %d entries, want 3", len(l2.Entries))
	}
	if got := l2.Latest("b.One"); got == nil || got.NsOp != 110 {
		t.Fatalf("Latest(b.One) = %+v", got)
	}
	if got := l2.Latest("b.Missing"); got != nil {
		t.Fatalf("Latest of absent benchmark = %+v", got)
	}
	if names := l2.Names(); len(names) != 2 || names[0] != "b.One" || names[1] != "b.Two" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCompareEntries(t *testing.T) {
	fp := HostFingerprint("", false)
	mk := func(ns float64, samples []float64) LedgerEntry {
		return LedgerEntry{Name: "b", NsOp: ns, SamplesNsOp: samples, Fingerprint: fp}
	}

	// Clear, sample-backed slowdown: significant regression.
	c := CompareEntries(
		mk(100, []float64{99, 100, 101, 100, 99}),
		mk(130, []float64{129, 130, 131, 130, 129}))
	if !c.Regression || !c.Significant || c.DeltaPct < 29 || c.DeltaPct > 31 {
		t.Fatalf("slowdown verdict: %+v", c)
	}

	// Same samples, same mean: no regression, not significant.
	c = CompareEntries(
		mk(100, []float64{99, 100, 101, 100, 99}),
		mk(100, []float64{99, 100, 101, 100, 99}))
	if c.Regression || c.Significant {
		t.Fatalf("no-change verdict: %+v", c)
	}

	// Speedup is never a regression.
	c = CompareEntries(
		mk(130, []float64{129, 130, 131}),
		mk(100, []float64{99, 100, 101}))
	if c.Regression || c.DeltaPct >= 0 {
		t.Fatalf("speedup verdict: %+v", c)
	}

	// Over threshold without samples: low-confidence regression (the
	// comparator errs toward warning).
	c = CompareEntries(mk(100, nil), mk(120, nil))
	if !c.Regression || c.Significant || c.PValue != 1 {
		t.Fatalf("untestable slowdown verdict: %+v", c)
	}

	// Under threshold: never a regression, samples or not.
	c = CompareEntries(mk(100, nil), mk(105, nil))
	if c.Regression {
		t.Fatalf("5%% delta flagged: %+v", c)
	}

	// Cross-machine comparisons are flagged.
	other := mk(100, nil)
	other.Fingerprint.NumCPU = fp.NumCPU + 1
	c = CompareEntries(other, mk(100, nil))
	if !c.CrossMachine {
		t.Fatalf("cross-machine not flagged: %+v", c)
	}
	if !strings.Contains(c.String(), "different machine") {
		t.Fatalf("String() hides the cross-machine flag: %s", c.String())
	}
}

func TestMannWhitneyP(t *testing.T) {
	// Fully separated samples: strong evidence of a difference.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	if p := MannWhitneyP(x, y); p >= 0.05 {
		t.Fatalf("disjoint samples p = %v, want < 0.05", p)
	}
	// Symmetry.
	if p1, p2 := MannWhitneyP(x, y), MannWhitneyP(y, x); p1 != p2 {
		t.Fatalf("asymmetric: %v vs %v", p1, p2)
	}
	// Identical samples are all ties: degenerate, p = 1.
	z := []float64{5, 5, 5}
	if p := MannWhitneyP(z, z); p != 1 {
		t.Fatalf("all-tied p = %v, want 1", p)
	}
	// Interleaved samples: no evidence.
	a := []float64{1, 3, 5, 7, 9, 11}
	b := []float64{2, 4, 6, 8, 10, 12}
	if p := MannWhitneyP(a, b); p < 0.5 {
		t.Fatalf("interleaved samples p = %v, want large", p)
	}
	// Degenerate inputs.
	if p := MannWhitneyP(nil, z); p != 1 {
		t.Fatalf("empty sample p = %v, want 1", p)
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	s := StartRuntimeSampler(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stats := s.Stop()
	if stats.Samples < 2 {
		t.Fatalf("Samples = %d, want >= 2 (opening + final)", stats.Samples)
	}
	if stats.WallNs <= 0 || stats.PeakHeapBytes == 0 || stats.GOMAXPROCS < 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.PeakGoroutines < 1 {
		t.Fatalf("PeakGoroutines = %d", stats.PeakGoroutines)
	}
	// Stop is idempotent and stable.
	again := s.Stop()
	if again.Samples != stats.Samples || again.WallNs != stats.WallNs {
		t.Fatalf("second Stop changed stats: %+v vs %+v", again, stats)
	}
	// The series snapshot carries the sampled columns.
	times, series := s.SeriesSnapshot()
	if len(times) < 2 {
		t.Fatalf("series snapshot has %d rows, want >= 2", len(times))
	}
	if vs := series["perf.heap_bytes"]; len(vs) != len(times) {
		t.Fatalf("perf.heap_bytes series missing or ragged (%d values, %d rows)", len(vs), len(times))
	}
}

func TestBuildRunReport(t *testing.T) {
	e := sim.NewEngine()
	p := e.EnableProfile(2)
	for i := 0; i < 10; i++ {
		e.ScheduleKind(int64(i), sim.KindPortTx, func() {})
	}
	e.ScheduleKind(20, sim.KindRTO, func() {})
	e.RunAll()

	r := BuildRunReport(p, int64(e.Now()), int64(5e6), &RuntimeStats{
		PeakHeapBytes: 1 << 20, GCCycles: 1, GOMAXPROCS: 4, Samples: 3, WallNs: 5e6,
	})
	if r.EventsTotal != 11 {
		t.Fatalf("EventsTotal = %d", r.EventsTotal)
	}
	if len(r.ByKind) != 2 || r.ByKind[0].Kind != "port_tx" || r.ByKind[0].Count != 10 {
		t.Fatalf("ByKind = %+v (want port_tx first by count)", r.ByKind)
	}
	if r.SimNs != int64(e.Now()) || r.WallNs != 5e6 {
		t.Fatalf("clocks: %+v", r)
	}
	if r.SimPerWall <= 0 || r.EventsPerSec <= 0 {
		t.Fatalf("rates: %+v", r)
	}
	var share float64
	for _, ks := range r.ByKind {
		share += ks.EstSharePct
	}
	if share < 99 || share > 101 {
		t.Fatalf("EstSharePct sums to %v, want ~100", share)
	}

	var sb strings.Builder
	r.RenderText(&sb)
	out := sb.String()
	for _, want := range []string{"port_tx", "rto", "events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderText missing %q:\n%s", want, out)
		}
	}
}

func TestObservatoryAggregation(t *testing.T) {
	o := NewObservatory()
	o.AddRun(&RunReport{EventsTotal: 10, QueuePeak: 5, SimNs: 100, WallNs: 50,
		ByKind: []KindStat{{Kind: "port_tx", Count: 10}}})
	o.AddRun(&RunReport{EventsTotal: 20, QueuePeak: 3, SimNs: 100, WallNs: 50,
		ByKind: []KindStat{{Kind: "port_tx", Count: 15}, {Kind: "rto", Count: 5}}})
	o.AddRun(nil) // ignored

	s := o.Summary()
	if s.RunsProfiled != 2 || s.EventsTotal != 30 || s.QueuePeak != 5 {
		t.Fatalf("summary: %+v", s)
	}
	if s.EventsByKind["port_tx"] != 25 || s.EventsByKind["rto"] != 5 {
		t.Fatalf("by kind: %v", s.EventsByKind)
	}
	if s.SimPerWall != 2 {
		t.Fatalf("SimPerWall = %v", s.SimPerWall)
	}

	ms := o.Metrics()
	byName := map[string]float64{}
	for _, m := range ms {
		key := m.Name
		if k, ok := m.Labels["kind"]; ok {
			key += "{" + k + "}"
		}
		byName[key] = m.Value
	}
	if byName["perf.events_total"] != 30 ||
		byName["perf.events_by_kind_total{port_tx}"] != 25 ||
		byName["perf.runs_profiled_total"] != 2 {
		t.Fatalf("metrics: %v", byName)
	}
}
