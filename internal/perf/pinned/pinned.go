// Package pinned holds the repo's pinned microbenchmark bodies: the hot-path
// measurements whose trajectory the perf ledger (BENCH_perf.json) tracks
// across PRs. The bodies live here — in a normal (non-test) package — so the
// same code runs under `go test -bench` via thin wrappers in the owning
// packages AND programmatically from `hermes-bench -perf` through
// testing.Benchmark. A pinned benchmark's name must stay stable forever:
// it is the join key of the ledger trajectory.
package pinned

import (
	"math/rand"
	"testing"

	hnet "github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Benchmark is one pinned microbenchmark.
type Benchmark struct {
	Name string // ledger key, e.g. "net.BenchmarkPacketForward"
	Fn   func(*testing.B)
}

// Benchmarks returns the pinned set in canonical order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "net.BenchmarkPacketForward", Fn: PacketForward},
		{Name: "net.BenchmarkPacketForwardPipelined", Fn: PacketForwardPipelined},
		{Name: "sim.BenchmarkEngineScheduleRun", Fn: EngineScheduleRun},
	}
}

// EngineScheduleRun measures raw engine scheduling + firing throughput with
// random delays over a bounded queue.
func EngineScheduleRun(b *testing.B) {
	e := sim.NewEngine()
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Time(r.Intn(1000)), func() {})
		if e.Pending() > 10000 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// benchFabric builds the smallest cross-leaf fabric that exercises the full
// forwarding hot path: host uplink -> leaf -> spine -> leaf -> host, four
// store-and-forward hops with two engine events each.
func benchFabric(b *testing.B) (*sim.Engine, *hnet.Network) {
	b.Helper()
	eng := sim.NewEngine()
	nw, err := hnet.NewLeafSpine(eng, sim.NewRNG(1), hnet.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10_000_000_000, FabricRateBps: 10_000_000_000,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng, nw
}

// PacketForward measures the allocation cost of forwarding one full-size
// data packet across the fabric (the simulator's dominant hot path). The
// alloc/op figure is the headline number of the ledger.
func PacketForward(b *testing.B) {
	eng, nw := benchFabric(b)
	delivered := 0
	nw.Hosts[2].Handle(hnet.Data, func(p *hnet.Packet) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &hnet.Packet{Kind: hnet.Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: hnet.MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
		eng.RunAll()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d packets", delivered, b.N)
	}
}

// PacketForwardPipelined keeps a window of packets in flight so the ports
// stay busy, amortizing engine bookkeeping the way a loaded run does.
func PacketForwardPipelined(b *testing.B) {
	eng, nw := benchFabric(b)
	delivered := 0
	nw.Hosts[2].Handle(hnet.Data, func(p *hnet.Packet) { delivered++ })
	b.ReportAllocs()
	b.ResetTimer()
	const window = 32
	for i := 0; i < b.N; i++ {
		pkt := &hnet.Packet{Kind: hnet.Data, Flow: uint64(i), Src: 0, Dst: 2, Wire: hnet.MaxPacketBytes, Path: i % 2}
		nw.Hosts[0].Send(pkt)
		if i%window == window-1 {
			eng.RunAll()
		}
	}
	eng.RunAll()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d packets", delivered, b.N)
	}
}
