// Package perf is the simulator's performance observatory: it watches the
// simulator itself rather than the simulated fabric. It aggregates three
// signal sources — the engine's per-event-kind self-profile (sim.Profile),
// a wall-clock Go runtime sampler (heap, GC, goroutines, CPU), and a
// persistent benchmark ledger (BENCH_perf.json) with a benchstat-style
// significance comparator — into per-run reports, a process-wide
// Observatory exported by internal/statusd, and regression verdicts for CI.
//
// Everything here deals in wall-clock time and machine state, which is why
// none of it may leak into the deterministic report/scorecard artifacts:
// perf output lives only in Result.Perf, the observatory, and the ledger.
package perf

import (
	"fmt"
	"io"
	"sort"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Options configures per-run self-profiling (Config.Perf on the facade).
// The zero value enables profiling with defaults.
type Options struct {
	// SampleEvery is the engine's wall-time sampling stride: 1 in N fired
	// events is timed. <= 0 uses sim.DefaultSampleEvery (64). Fire counts
	// are always exact; only time attribution is sampled.
	SampleEvery int `json:",omitempty"`

	// RuntimeIntervalMs is the wall-clock interval of the Go runtime
	// sampler in milliseconds. <= 0 uses 50ms.
	RuntimeIntervalMs int `json:",omitempty"`

	// Observatory receives the finished run's report for process-wide
	// aggregation and live export through statusd. Nil falls back to the
	// process default observatory (SetDefault), if one is installed.
	Observatory *Observatory `json:"-"`
}

// KindStat is one event kind's share of a profiled run.
type KindStat struct {
	Kind         string
	Count        uint64
	SampledFires uint64  `json:",omitempty"`
	SampledNs    int64   `json:",omitempty"`
	EstSharePct  float64 `json:",omitempty"` // share of attributed wall time
}

// RunReport is the per-run perf block carried in Result.Perf: where engine
// time went, how fast virtual time advanced against the wall clock, and
// what the Go runtime did meanwhile. It is wall-clock data — informative,
// machine-dependent, and deliberately excluded from deterministic reports.
type RunReport struct {
	EventsTotal uint64
	ByKind      []KindStat `json:",omitempty"`
	QueuePeak   int
	SampleEvery int

	SimNs        int64
	WallNs       int64
	SimPerWall   float64 // virtual ns advanced per wall ns (higher is faster)
	EventsPerSec float64 // fired events per wall second

	PeakHeapBytes  uint64
	GCCycles       uint32
	GCPauseNs      uint64
	GCTimeSharePct float64
	PeakGoroutines int     `json:",omitempty"`
	GOMAXPROCS     int     `json:",omitempty"`
	CPUUtilization float64 `json:",omitempty"` // mean busy fraction of GOMAXPROCS
	RuntimeSamples int     `json:",omitempty"`
}

// BuildRunReport assembles the per-run perf block from the engine profile,
// the run's virtual and wall durations, and the runtime sampler's
// aggregates (rs may be nil when no sampler ran).
func BuildRunReport(p *sim.Profile, simNs, wallNs int64, rs *RuntimeStats) *RunReport {
	r := &RunReport{
		EventsTotal: p.Total(),
		QueuePeak:   p.QueuePeak(),
		SampleEvery: p.SampleEvery(),
		SimNs:       simNs,
		WallNs:      wallNs,
	}
	if wallNs > 0 {
		r.SimPerWall = float64(simNs) / float64(wallNs)
		r.EventsPerSec = float64(r.EventsTotal) / (float64(wallNs) / 1e9)
	}
	var totalSampledNs int64
	for k := 0; k < sim.NumKinds; k++ {
		totalSampledNs += p.SampledNs(sim.Kind(k))
	}
	for k := 0; k < sim.NumKinds; k++ {
		kk := sim.Kind(k)
		if p.Count(kk) == 0 {
			continue
		}
		ks := KindStat{
			Kind:         kk.String(),
			Count:        p.Count(kk),
			SampledFires: p.SampledFires(kk),
			SampledNs:    p.SampledNs(kk),
		}
		if totalSampledNs > 0 {
			ks.EstSharePct = 100 * float64(ks.SampledNs) / float64(totalSampledNs)
		}
		r.ByKind = append(r.ByKind, ks)
	}
	sort.Slice(r.ByKind, func(i, j int) bool {
		if r.ByKind[i].Count != r.ByKind[j].Count {
			return r.ByKind[i].Count > r.ByKind[j].Count
		}
		return r.ByKind[i].Kind < r.ByKind[j].Kind
	})
	if rs != nil {
		r.PeakHeapBytes = rs.PeakHeapBytes
		r.GCCycles = rs.GCCycles
		r.GCPauseNs = rs.GCPauseNs
		r.PeakGoroutines = rs.PeakGoroutines
		r.GOMAXPROCS = rs.GOMAXPROCS
		r.CPUUtilization = rs.CPUUtilization
		r.RuntimeSamples = rs.Samples
		if wallNs > 0 {
			r.GCTimeSharePct = 100 * float64(rs.GCPauseNs) / float64(wallNs)
		}
	}
	return r
}

// RenderText writes the human-readable perf block the CLIs print.
func (r *RunReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "perf: %s events fired (queue peak %d), %s sim ns in %s wall ns (%.1fx realtime, %s events/sec)\n",
		humanCount(r.EventsTotal), r.QueuePeak,
		humanCount(uint64(r.SimNs)), humanCount(uint64(r.WallNs)),
		r.SimPerWall, humanCount(uint64(r.EventsPerSec)))
	if len(r.ByKind) > 0 {
		fmt.Fprintf(w, "  by kind (wall-time attribution sampled 1/%d):\n", r.SampleEvery)
		for _, ks := range r.ByKind {
			fmt.Fprintf(w, "    %-10s %12s fires", ks.Kind, humanCount(ks.Count))
			if ks.SampledFires > 0 {
				fmt.Fprintf(w, "  ~%5.1f%% of event time (%d sampled)", ks.EstSharePct, ks.SampledFires)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  runtime: peak heap %s, %d GC cycles (%.2f%% of wall in pauses)",
		humanBytes(r.PeakHeapBytes), r.GCCycles, r.GCTimeSharePct)
	if r.PeakGoroutines > 0 {
		fmt.Fprintf(w, ", %d goroutines peak / GOMAXPROCS %d", r.PeakGoroutines, r.GOMAXPROCS)
	}
	if r.CPUUtilization > 0 {
		fmt.Fprintf(w, ", %.0f%% CPU", 100*r.CPUUtilization)
	}
	fmt.Fprintln(w)
}

func humanCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e4:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
