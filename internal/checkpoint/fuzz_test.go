package checkpoint

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzDecode is the crash-resistance contract for the codec: Decode must
// never panic on arbitrary bytes, must only return the typed error taxonomy
// (ErrTruncated, *CorruptError, *VersionError), and anything it accepts must
// re-encode byte-identically after one decode-encode normalization — the
// "never a silently wrong resume" half of the satellite requirement.
func FuzzDecode(f *testing.F) {
	valid, err := sampleFile().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"hermes-ckpt","version":9}`))
	f.Add([]byte(strings.Replace(string(valid), `"version":1`, `"version":7`, 1)))
	f.Add([]byte(`{"magic":"hermes-ckpt","version":1,"config":{},"state":{}}`))
	f.Add([]byte("not json at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			if !errors.Is(err, ErrTruncated) && !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		// Accepted input: the envelope must be internally consistent...
		if ck.Magic != Magic || ck.Version != Version {
			t.Fatalf("accepted envelope with magic=%q version=%d", ck.Magic, ck.Version)
		}
		if SHA(ck.Config) != ck.ConfigSHA || SHA(ck.State) != ck.StateSHA {
			t.Fatal("accepted envelope whose hashes do not verify")
		}
		// ...and idempotent under the canonicalizing round trip: once
		// normalized by Encode, Decode+Encode is a fixed point.
		b1, err := ck.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted envelope failed: %v", err)
		}
		ck2, err := Decode(b1)
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v", err)
		}
		b2, err := ck2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzStateRoundTrip: restore(write(state)) is byte-identical for arbitrary
// section contents (valid JSON or not — raw sections are carried opaquely,
// so even hostile section bytes must round-trip exactly or be rejected).
func FuzzStateRoundTrip(f *testing.F) {
	f.Add(`{"now":1}`, `{"draws":2}`, `{"x":3}`, `{"y":4}`, `{"z":5}`, `{"w":6}`, `{"c":7}`)
	f.Add(`{}`, `{}`, `{}`, `{}`, ``, `{}`, ``)
	f.Add(`[1,2,3]`, `"s"`, `null`, `0`, `true`, `-1.5e3`, `[[]]`)
	f.Fuzz(func(t *testing.T, eng, rng, nw, tr, sch, wl, ch string) {
		s := &Snapshot{
			Engine:    json.RawMessage(eng),
			RNG:       json.RawMessage(rng),
			Net:       json.RawMessage(nw),
			Transport: json.RawMessage(tr),
			Scheme:    json.RawMessage(sch),
			Workload:  json.RawMessage(wl),
			Chaos:     json.RawMessage(ch),
		}
		state, err := EncodeState(s)
		if err != nil {
			return // non-JSON section bytes: rejection is the correct outcome
		}
		ck := &File{Seed: 1, SimTimeNs: 1, Config: json.RawMessage(`{}`), State: state}
		b, err := ck.Encode()
		if err != nil {
			t.Fatalf("encode after EncodeState accepted sections: %v", err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode of fresh encode: %v", err)
		}
		s2, err := got.DecodeState()
		if err != nil {
			t.Fatalf("state decode of fresh encode: %v", err)
		}
		// Byte identity section by section, modulo JSON normalization done
		// by EncodeState's single marshal (compact whitespace): re-encoding
		// the decoded snapshot must reproduce the stored state bytes.
		state2, err := EncodeState(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(state2) != string(state) {
			t.Fatalf("state round trip changed bytes:\n%s\n%s", state, state2)
		}
	})
}
