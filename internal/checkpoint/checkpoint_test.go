package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile() *File {
	state, err := EncodeState(&Snapshot{
		Engine:    json.RawMessage(`{"now":5000000,"seq":42}`),
		RNG:       json.RawMessage(`{"draws":17}`),
		Net:       json.RawMessage(`{"injected":100,"delivered":99}`),
		Transport: json.RawMessage(`{"next_flow_id":7}`),
		Scheme:    json.RawMessage(`{"name":"hermes"}`),
		Workload:  json.RawMessage(`{"started":12}`),
		Chaos:     json.RawMessage(`{"active":[]}`),
	})
	if err != nil {
		panic(err)
	}
	return &File{
		Seed:      11,
		SimTimeNs: 5e6,
		Config:    json.RawMessage(`{"scheme":"hermes","flows":100}`),
		State:     state,
	}
}

// TestRoundTrip is the codec contract: Encode then Decode yields the same
// envelope, and re-encoding is byte-identical (byte-stable format).
func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	b1, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Seed != f.Seed || g.SimTimeNs != f.SimTimeNs {
		t.Fatalf("decoded seed/time = %d/%d, want %d/%d", g.Seed, g.SimTimeNs, f.Seed, f.SimTimeNs)
	}
	if g.ConfigSHA != SHA(f.Config) || g.StateSHA != SHA(f.State) {
		t.Fatal("decoded hashes do not match section contents")
	}
	b2, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("re-encoding a decoded checkpoint changed its bytes")
	}
	s, err := g.DecodeState()
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(mustState(t, f), s); d != nil {
		t.Fatalf("round-tripped state diverged: %+v", d)
	}
}

func mustState(t *testing.T, f *File) *Snapshot {
	t.Helper()
	s, err := f.DecodeState()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	f := sampleFile()
	path := filepath.Join(dir, Filename(SHA(f.Config), f.SimTimeNs))
	n, err := WriteFile(path, f)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != st.Size() {
		t.Fatalf("WriteFile reported %d bytes, file has %d", n, st.Size())
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.SimTimeNs != f.SimTimeNs {
		t.Fatalf("read back t=%d, want %d", g.SimTimeNs, f.SimTimeNs)
	}
	// No temp droppings left behind by the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after one WriteFile, want 1", len(entries))
	}
}

// TestTruncatedRejected: every strict prefix of a valid file must decode to
// a typed error, never succeed and never panic. (The final-newline-stripped
// prefix is the one complete-JSON exception — still a valid checkpoint.)
func TestTruncatedRejected(t *testing.T) {
	b, err := sampleFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b)-1; cut++ {
		_, err := Decode(b[:cut])
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(b))
		}
		var ce *CorruptError
		if !errors.Is(err, ErrTruncated) && !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: untyped error %T: %v", cut, err, err)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty input: err = %v, want ErrTruncated", err)
	}
}

// TestCorruptionRejected: flipped bytes must be caught — by the JSON parser
// or by the integrity hash — with a typed error.
func TestCorruptionRejected(t *testing.T) {
	b, err := sampleFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(b) / 4, len(b) / 2, 3 * len(b) / 4, len(b) - 3} {
		mut := append([]byte(nil), b...)
		mut[cut] ^= 0x20
		f, err := Decode(mut)
		if err == nil {
			// A flip inside an ignorable region (e.g. turning a space) can
			// legitimately survive only if all hashes still verify.
			if SHA(f.Config) != f.ConfigSHA || SHA(f.State) != f.StateSHA {
				t.Fatalf("flip at %d accepted with broken hashes", cut)
			}
			continue
		}
		var ce *CorruptError
		var ve *VersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at %d: untyped error %T: %v", cut, err, err)
		}
	}
}

func TestVersionSkewRejected(t *testing.T) {
	b, err := sampleFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	skew := strings.Replace(string(b), `"version":1`, `"version":2`, 1)
	_, err = Decode([]byte(skew))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("version skew: err = %v, want *VersionError", err)
	}
	if ve.Got != 2 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}

	foreign := strings.Replace(string(b), `"magic":"hermes-ckpt"`, `"magic":"other-fmt"`, 1)
	var ce *CorruptError
	if _, err := Decode([]byte(foreign)); !errors.As(err, &ce) {
		t.Fatalf("foreign magic: err = %v, want *CorruptError", err)
	}
}

func TestHashMismatchRejected(t *testing.T) {
	f := sampleFile()
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Swap one state byte in a way that keeps the JSON valid: 17 -> 18.
	tampered := strings.Replace(string(b), `"draws":17`, `"draws":18`, 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found in encoded form")
	}
	var ce *CorruptError
	if _, err := Decode([]byte(tampered)); !errors.As(err, &ce) {
		t.Fatalf("tampered state: err = %v, want *CorruptError (hash mismatch)", err)
	}
}

func TestDiff(t *testing.T) {
	a := mustState(t, sampleFile())
	b := mustState(t, sampleFile())
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical snapshots diff: %+v", d)
	}
	b.RNG = json.RawMessage(`{"draws":99}`)
	b.Net = json.RawMessage(`{"injected":1,"delivered":1}`)
	d := Diff(a, b)
	if len(d) != 2 || d[0].Section != "net" || d[1].Section != "rng" {
		t.Fatalf("diff = %+v, want [net rng]", d)
	}
	err := &StateMismatchError{SimTimeNs: 5e6, Sections: d}
	if !strings.Contains(err.Error(), "net rng") {
		t.Fatalf("mismatch error %q does not name sections", err)
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); err == nil {
		t.Fatal("Latest on empty dir succeeded")
	}
	for _, at := range []int64{3e6, 9e6, 6e6} {
		f := sampleFile()
		f.SimTimeNs = at
		if _, err := WriteFile(filepath.Join(dir, Filename(SHA(f.Config), at)), f); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "junk.ckpt"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.SimTimeNs != 9e6 {
		t.Fatalf("Latest picked t=%d, want 9e6", f.SimTimeNs)
	}
}

// TestFilenameOrder: lexicographic file-name order equals time order, the
// property ls-based tooling relies on.
func TestFilenameOrder(t *testing.T) {
	sha := SHA([]byte("cfg"))
	a := Filename(sha, 999)
	b := Filename(sha, 20e6)
	if !(a < b) {
		t.Fatalf("filenames out of order: %q !< %q", a, b)
	}
}
