// Package checkpoint defines the on-disk codec for full-simulation
// snapshots: the `hermes-ckpt/v1` envelope. The simulator's event queue
// holds live closures, so a checkpoint is not a structural dump of the heap;
// it is a verified replay recipe. A File carries everything needed to
// rebuild the run (the complete facade Config and the seed), the virtual
// instant the snapshot was taken, and a Snapshot of every observable state
// section at that instant — engine clock and queue census, RNG stream
// position, fabric cable rates and port counters, transport flows with
// their RTO deadlines, scheme state (Hermes path tables, REPS entropy
// caches), workload cursor, and active chaos scopes. Restore replays the
// recipe to the instant and then diffs the re-captured state against the
// stored sections; any divergence is a typed StateMismatchError, never a
// silently wrong resume. Byte-identical resumes follow from the engine's
// determinism contract (same seed, same config, same event order).
//
// The package is deliberately stdlib-only and knows nothing about the
// simulator's types: every section is a pre-marshaled json.RawMessage, so
// the dependency arrow points from the simulation packages into here and
// never back.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Magic identifies a hermes checkpoint file; Version is the codec version
// this package writes and the only one it restores.
const (
	Magic   = "hermes-ckpt"
	Version = 1
)

// ErrTruncated reports a file that ends before the envelope is complete —
// the classic kill-during-write artifact. (WriteFile's temp-and-rename makes
// this unreachable for its own writes; the error exists for foreign files.)
var ErrTruncated = errors.New("checkpoint: truncated file")

// CorruptError reports a file that is not a valid checkpoint: bad JSON, a
// foreign magic string, a failed integrity hash, or missing sections.
type CorruptError struct {
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("checkpoint: corrupt: %s: %v", e.Reason, e.Err)
	}
	return "checkpoint: corrupt: " + e.Reason
}

func (e *CorruptError) Unwrap() error { return e.Err }

// VersionError reports a version-skewed file: a valid envelope written by a
// codec this package does not speak.
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: version %d not supported (this codec speaks v%d)", e.Got, e.Want)
}

// ConfigMismatchError reports a restore against a different configuration
// than the one the checkpoint was captured under. The SHAs are hex SHA-256
// of the canonical config JSON.
type ConfigMismatchError struct {
	Got, Want string
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("checkpoint: config fingerprint mismatch: file was captured under %s, restoring under %s",
		short(e.Want), short(e.Got))
}

// SectionDiff is one diverged state section: the name and both serialized
// values, for post-mortems.
type SectionDiff struct {
	Section string `json:"section"`
	Want    string `json:"want"`
	Got     string `json:"got"`
}

// StateMismatchError reports that replaying the checkpoint's recipe did not
// reproduce the captured state — the determinism contract is broken, so the
// restore is refused rather than resumed wrong.
type StateMismatchError struct {
	SimTimeNs int64
	Sections  []SectionDiff
}

func (e *StateMismatchError) Error() string {
	names := make([]string, len(e.Sections))
	for i, d := range e.Sections {
		names[i] = d.Section
	}
	return fmt.Sprintf("checkpoint: replay to t=%dns diverged from captured state in sections [%s]",
		e.SimTimeNs, strings.Join(names, " "))
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// Snapshot is the full observable simulation state at one instant, one
// pre-marshaled section per state-owning package. Field order is fixed and
// encoding/json emits struct fields in declaration order, so the serialized
// form is byte-stable.
type Snapshot struct {
	Engine    json.RawMessage `json:"engine"`
	RNG       json.RawMessage `json:"rng"`
	Net       json.RawMessage `json:"net"`
	Transport json.RawMessage `json:"transport"`
	Scheme    json.RawMessage `json:"scheme,omitempty"`
	Workload  json.RawMessage `json:"workload"`
	Chaos     json.RawMessage `json:"chaos,omitempty"`
}

// File is the hermes-ckpt envelope. Config is the complete run
// configuration (the replay recipe); ConfigSHA fingerprints it so restoring
// under a drifted config fails loudly; State is the marshaled Snapshot and
// StateSHA its integrity hash.
type File struct {
	Magic     string          `json:"magic"`
	Version   int             `json:"version"`
	ConfigSHA string          `json:"config_sha"`
	Seed      int64           `json:"seed"`
	SimTimeNs int64           `json:"sim_time_ns"`
	Config    json.RawMessage `json:"config"`
	State     json.RawMessage `json:"state"`
	StateSHA  string          `json:"state_sha"`
}

// SHA returns the hex SHA-256 of b — the fingerprint convention for both
// ConfigSHA and StateSHA.
func SHA(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// EncodeState marshals a snapshot into the canonical State bytes.
func EncodeState(s *Snapshot) (json.RawMessage, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal state: %w", err)
	}
	return b, nil
}

// DecodeState unmarshals the envelope's State section.
func (f *File) DecodeState() (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(f.State, &s); err != nil {
		return nil, &CorruptError{Reason: "state section", Err: err}
	}
	return &s, nil
}

// Encode validates and canonicalizes the envelope (stamping Magic, Version,
// ConfigSHA and StateSHA) and returns its serialized bytes. The same File
// always encodes to the same bytes.
func (f *File) Encode() ([]byte, error) {
	if len(f.Config) == 0 {
		return nil, &CorruptError{Reason: "empty config section"}
	}
	if len(f.State) == 0 {
		return nil, &CorruptError{Reason: "empty state section"}
	}
	f.Magic = Magic
	f.Version = Version
	f.ConfigSHA = SHA(f.Config)
	f.StateSHA = SHA(f.State)
	b, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses and verifies checkpoint bytes. Truncated input yields
// ErrTruncated, anything structurally wrong (bad JSON, wrong magic, hash
// mismatch, missing sections) a *CorruptError, and a valid envelope from a
// different codec a *VersionError — typed, never a panic.
func Decode(data []byte) (*File, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		var syn *json.SyntaxError
		if errors.As(err, &syn) && int(syn.Offset) >= len(trimRight(data)) {
			return nil, ErrTruncated
		}
		if strings.Contains(err.Error(), "unexpected end of JSON input") {
			return nil, ErrTruncated
		}
		return nil, &CorruptError{Reason: "envelope is not valid JSON", Err: err}
	}
	if f.Magic != Magic {
		return nil, &CorruptError{Reason: fmt.Sprintf("magic %q is not %q", f.Magic, Magic)}
	}
	if f.Version != Version {
		return nil, &VersionError{Got: f.Version, Want: Version}
	}
	if len(f.Config) == 0 {
		return nil, &CorruptError{Reason: "missing config section"}
	}
	if len(f.State) == 0 {
		return nil, &CorruptError{Reason: "missing state section"}
	}
	if got := SHA(f.Config); got != f.ConfigSHA {
		return nil, &CorruptError{Reason: fmt.Sprintf(
			"config hash %s does not match recorded %s", short(got), short(f.ConfigSHA))}
	}
	if got := SHA(f.State); got != f.StateSHA {
		return nil, &CorruptError{Reason: fmt.Sprintf(
			"state hash %s does not match recorded %s (bit rot or tamper)", short(got), short(f.StateSHA))}
	}
	if f.SimTimeNs < 0 {
		return nil, &CorruptError{Reason: fmt.Sprintf("negative sim time %d", f.SimTimeNs)}
	}
	return &f, nil
}

func trimRight(b []byte) []byte {
	for len(b) > 0 {
		switch b[len(b)-1] {
		case ' ', '\t', '\n', '\r':
			b = b[:len(b)-1]
		default:
			return b
		}
	}
	return b
}

// ReadFile loads and verifies a checkpoint from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data)
}

// WriteFile encodes the envelope and writes it atomically (temp file and
// rename), so a kill mid-write never leaves a truncated checkpoint behind.
// It returns the encoded size.
func WriteFile(path string, f *File) (int, error) {
	b, err := f.Encode()
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return len(b), nil
}

// Filename is the canonical checkpoint file name for a run at one instant:
// ckpt-<config sha prefix>-t<sim time ns>.ckpt. Zero-padding keeps
// lexicographic order equal to time order, and the config prefix keeps
// concurrent runs (a chaos matrix pool) from colliding in one directory.
func Filename(configSHA string, simTimeNs int64) string {
	return fmt.Sprintf("ckpt-%s-t%012d.ckpt", short(configSHA), simTimeNs)
}

// Latest scans dir for checkpoint files and returns the path of the one
// with the greatest sim time (ties broken by config fingerprint for
// determinism). Unreadable or foreign files are skipped; an empty directory
// is an error.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	type cand struct {
		path string
		at   int64
		sha  string
	}
	var best *cand
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		p := filepath.Join(dir, e.Name())
		f, err := ReadFile(p)
		if err != nil {
			continue
		}
		c := &cand{path: p, at: f.SimTimeNs, sha: f.ConfigSHA}
		if best == nil || c.at > best.at || (c.at == best.at && c.sha > best.sha) {
			best = c
		}
	}
	if best == nil {
		return "", fmt.Errorf("checkpoint: no valid checkpoint files in %s", dir)
	}
	return best.path, nil
}

// Diff compares two snapshots section by section and returns the diverged
// sections (nil when identical). Comparison is on the raw bytes: the dumps
// are produced by deterministic marshalers, so byte equality is the
// contract.
func Diff(want, got *Snapshot) []SectionDiff {
	var out []SectionDiff
	add := func(name string, w, g json.RawMessage) {
		if string(w) != string(g) {
			out = append(out, SectionDiff{Section: name, Want: string(w), Got: string(g)})
		}
	}
	add("engine", want.Engine, got.Engine)
	add("rng", want.RNG, got.RNG)
	add("net", want.Net, got.Net)
	add("transport", want.Transport, got.Transport)
	add("scheme", want.Scheme, got.Scheme)
	add("workload", want.Workload, got.Workload)
	add("chaos", want.Chaos, got.Chaos)
	sort.Slice(out, func(i, j int) bool { return out[i].Section < out[j].Section })
	return out
}
