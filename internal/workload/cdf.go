// Package workload generates the paper's traffic: flow sizes drawn from the
// empirical web-search [DCTCP, ref 6] and data-mining [VL2, ref 18]
// distributions, arriving as a Poisson process between random hosts under
// different leaves, with the rate set by a target load on the fabric
// bisection (the flow generator of ref [8]).
package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/hermes-repro/hermes/internal/sim"
)

// CDFPoint is one point of an empirical flow-size CDF.
type CDFPoint struct {
	Bytes int64
	Prob  float64 // cumulative probability at Bytes
}

// CDF is a piecewise-linear empirical distribution over flow sizes.
type CDF struct {
	Name   string
	points []CDFPoint
}

// maxCDFBytes caps flow sizes at 1 PiB: far above any real distribution, and
// small enough that interpolation arithmetic in Sample can never overflow.
const maxCDFBytes = int64(1) << 50

// NewCDF validates and builds a distribution. Points must be sorted by
// bytes, have non-decreasing probabilities, and end at probability 1.
func NewCDF(name string, points []CDFPoint) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs at least 2 points", name)
	}
	for i, p := range points {
		// The negated comparison also rejects NaN, which would otherwise
		// slip through and poison Sample/Mean.
		if !(p.Prob >= 0 && p.Prob <= 1) {
			return nil, fmt.Errorf("workload: CDF %q point %d probability %v out of range", name, i, p.Prob)
		}
		if p.Bytes < 0 || p.Bytes > maxCDFBytes {
			return nil, fmt.Errorf("workload: CDF %q point %d size %d out of range [0, 2^50]", name, i, p.Bytes)
		}
		if i > 0 {
			if p.Bytes <= points[i-1].Bytes {
				return nil, fmt.Errorf("workload: CDF %q bytes not increasing at point %d", name, i)
			}
			if p.Prob < points[i-1].Prob {
				return nil, fmt.Errorf("workload: CDF %q probability decreasing at point %d", name, i)
			}
		}
	}
	if last := points[len(points)-1]; last.Prob != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at probability 1, got %v", name, last.Prob)
	}
	cp := make([]CDFPoint, len(points))
	copy(cp, points)
	return &CDF{Name: name, points: cp}, nil
}

// MustCDF is NewCDF that panics on error; for package-level tables.
func MustCDF(name string, points []CDFPoint) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws a flow size by inverse-transform sampling with linear
// interpolation between points.
func (c *CDF) Sample(rng *sim.RNG) int64 {
	u := rng.Float64()
	pts := c.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	if i == 0 {
		return pts[0].Bytes
	}
	if i >= len(pts) {
		return pts[len(pts)-1].Bytes
	}
	lo, hi := pts[i-1], pts[i]
	if hi.Prob == lo.Prob {
		return hi.Bytes
	}
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
}

// Mean returns the distribution's expected flow size in bytes, assuming
// uniform interpolation within each segment.
func (c *CDF) Mean() float64 {
	var mean float64
	pts := c.points
	mean += float64(pts[0].Bytes) * pts[0].Prob
	for i := 1; i < len(pts); i++ {
		p := pts[i].Prob - pts[i-1].Prob
		mid := float64(pts[i-1].Bytes+pts[i].Bytes) / 2
		mean += p * mid
	}
	return mean
}

// Truncate returns a copy of the distribution capped at maxBytes: all mass
// above maxBytes collapses onto maxBytes. Used to bound simulation cost for
// the extremely heavy data-mining tail (documented in EXPERIMENTS.md).
func (c *CDF) Truncate(maxBytes int64) *CDF {
	var pts []CDFPoint
	for _, p := range c.points {
		if p.Bytes >= maxBytes {
			break
		}
		pts = append(pts, p)
	}
	pts = append(pts, CDFPoint{Bytes: maxBytes, Prob: 1})
	return MustCDF(c.Name+"-trunc", pts)
}

// Points returns a copy of the CDF points (for Fig 7 output).
func (c *CDF) Points() []CDFPoint {
	cp := make([]CDFPoint, len(c.points))
	copy(cp, c.points)
	return cp
}

// WebSearch is the DCTCP web-search flow-size distribution [6]: bursty, many
// small flows, ~30% of flows above 1 MB. Mean ≈ 1.6 MB.
var WebSearch = MustCDF("web-search", []CDFPoint{
	{Bytes: 1_000, Prob: 0},
	{Bytes: 10_000, Prob: 0.15},
	{Bytes: 20_000, Prob: 0.20},
	{Bytes: 30_000, Prob: 0.30},
	{Bytes: 50_000, Prob: 0.40},
	{Bytes: 80_000, Prob: 0.53},
	{Bytes: 200_000, Prob: 0.60},
	{Bytes: 1_000_000, Prob: 0.70},
	{Bytes: 2_000_000, Prob: 0.80},
	{Bytes: 5_000_000, Prob: 0.90},
	{Bytes: 10_000_000, Prob: 0.97},
	{Bytes: 30_000_000, Prob: 1},
})

// DataMining is the VL2 data-mining distribution [18]: extremely heavy
// tailed — about 80% of flows are under 10 KB while a few percent exceed
// 35 MB and carry ~95% of the bytes (§5.1 of the paper).
var DataMining = MustCDF("data-mining", []CDFPoint{
	{Bytes: 100, Prob: 0},
	{Bytes: 180, Prob: 0.10},
	{Bytes: 250, Prob: 0.20},
	{Bytes: 560, Prob: 0.30},
	{Bytes: 900, Prob: 0.40},
	{Bytes: 1_100, Prob: 0.50},
	{Bytes: 60_000, Prob: 0.60},
	{Bytes: 90_000, Prob: 0.70},
	{Bytes: 350_000, Prob: 0.80},
	{Bytes: 5_800_000, Prob: 0.90},
	{Bytes: 28_000_000, Prob: 0.95},
	{Bytes: 200_000_000, Prob: 0.98},
	{Bytes: 1_000_000_000, Prob: 1},
})

// ByName resolves a workload name ("web-search" or "data-mining").
func ByName(name string) (*CDF, error) {
	switch name {
	case "web-search", "websearch", "ws":
		return WebSearch, nil
	case "data-mining", "datamining", "dm":
		return DataMining, nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}

// ParseCDF reads an empirical distribution in the standard two-column text
// format used by the ns-2/ns-3 traffic generators this literature shares:
// one "<bytes> <cumulative-probability>" pair per line, '#' comments and
// blank lines ignored. (The three-column "<bytes> <bytes> <prob>" variant
// of Bai et al.'s generator is accepted too; the duplicate column is
// skipped.)
func ParseCDF(name string, r io.Reader) (*CDF, error) {
	var pts []CDFPoint
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("workload: %s line %d: want 2 or 3 columns, got %d", name, line, len(fields))
		}
		bytes, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: bad size %q", name, line, fields[0])
		}
		// Range-check before the int64 conversion: converting an
		// out-of-range float is implementation-defined in Go.
		if !(bytes >= 0 && bytes <= float64(maxCDFBytes)) {
			return nil, fmt.Errorf("workload: %s line %d: size %v out of range [0, 2^50]", name, line, bytes)
		}
		prob, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s line %d: bad probability %q", name, line, fields[len(fields)-1])
		}
		pts = append(pts, CDFPoint{Bytes: int64(bytes), Prob: prob})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	return NewCDF(name, pts)
}

// LoadCDFFile reads a distribution from a file via ParseCDF.
func LoadCDFFile(path string) (*CDF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseCDF(path, f)
}
