package workload

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Incast generates partition/aggregate microbursts: every Interval, FanIn
// random servers under other racks simultaneously send ChunkBytes to one
// random aggregator host. This is the §6 "burst avoidance" discussion made
// testable — Hermes needs at least one RTT to sense and react, so schemes
// with per-packet local decisions (DRILL) handle the burst itself better,
// while Hermes avoids placing the burst on already-bad paths.
type Incast struct {
	Net *net.Network
	Tr  *transport.Transport
	Rng *sim.RNG

	// FanIn is the number of simultaneous senders per incast event.
	FanIn int
	// ChunkBytes is the response size each sender transmits.
	ChunkBytes int64
	// Interval separates consecutive incast events.
	Interval sim.Time
	// Events bounds how many incasts to generate.
	Events int

	// OnDone, if set, is called with the completion time of each incast
	// (the time until the slowest chunk finished).
	OnDone func(event int, dur sim.Time)

	started int
}

// Start schedules the first incast event.
func (ic *Incast) Start() {
	if ic.FanIn <= 0 {
		ic.FanIn = 8
	}
	if ic.ChunkBytes <= 0 {
		ic.ChunkBytes = 64_000
	}
	if ic.Interval <= 0 {
		ic.Interval = 10 * sim.Millisecond
	}
	ic.Net.Eng.ScheduleKind(0, sim.KindArrival, ic.fire)
}

// Started returns the number of events generated so far.
func (ic *Incast) Started() int { return ic.started }

func (ic *Incast) fire() {
	if ic.started >= ic.Events {
		return
	}
	event := ic.started
	ic.started++

	hosts := len(ic.Net.Hosts)
	agg := ic.Rng.Intn(hosts)
	aggLeaf := ic.Net.LeafOf(agg)
	start := ic.Net.Eng.Now()

	remaining := ic.FanIn
	done := 0
	for remaining > 0 {
		src := ic.Rng.Intn(hosts)
		if ic.Net.LeafOf(src) == aggLeaf {
			continue // paper-style inter-rack traffic only
		}
		remaining--
		f := ic.Tr.StartFlow(src, agg, ic.ChunkBytes)
		_ = f
		done++
	}
	// Completion detection: poll until all chunks of this event finished.
	// The transport's OnFlowDone is owned by the experiment harness, so the
	// incast generator watches its own flows.
	flows := ic.collectRecent(done)
	var watch func()
	watch = func() {
		for _, f := range flows {
			if !f.Done {
				ic.Net.Eng.ScheduleKind(100*sim.Microsecond, sim.KindArrival, watch)
				return
			}
		}
		if ic.OnDone != nil {
			var end sim.Time
			for _, f := range flows {
				if f.EndAt > end {
					end = f.EndAt
				}
			}
			ic.OnDone(event, end-start)
		}
	}
	watch()

	if ic.started < ic.Events {
		ic.Net.Eng.ScheduleKind(ic.Interval, sim.KindArrival, ic.fire)
	}
}

// collectRecent grabs the n most recently started flows (the chunks just
// created above) from the transport's active set.
func (ic *Incast) collectRecent(n int) []*transport.Flow {
	flows := make([]*transport.Flow, 0, n)
	var maxID uint64
	for id := range ic.Tr.ActiveFlows() {
		if id > maxID {
			maxID = id
		}
	}
	for id := maxID; id > 0 && len(flows) < n; id-- {
		if f, ok := ic.Tr.ActiveFlows()[id]; ok {
			flows = append(flows, f)
		}
	}
	return flows
}
