package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

func TestCDFValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []CDFPoint
	}{
		{"too-few", []CDFPoint{{100, 1}}},
		{"non-increasing-bytes", []CDFPoint{{100, 0}, {100, 1}}},
		{"decreasing-prob", []CDFPoint{{100, 0.5}, {200, 0.2}, {300, 1}}},
		{"not-ending-at-1", []CDFPoint{{100, 0}, {200, 0.9}}},
		{"prob-out-of-range", []CDFPoint{{100, -0.1}, {200, 1}}},
	}
	for _, c := range cases {
		if _, err := NewCDF(c.name, c.pts); err == nil {
			t.Errorf("%s: invalid CDF accepted", c.name)
		}
	}
	if _, err := NewCDF("ok", []CDFPoint{{100, 0}, {1000, 1}}); err != nil {
		t.Fatalf("valid CDF rejected: %v", err)
	}
}

func TestSampleWithinBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, dist := range []*CDF{WebSearch, DataMining} {
		pts := dist.Points()
		lo, hi := pts[0].Bytes, pts[len(pts)-1].Bytes
		for i := 0; i < 10000; i++ {
			s := dist.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", dist.Name, s, lo, hi)
			}
		}
	}
}

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	rng := sim.NewRNG(2)
	for _, dist := range []*CDF{WebSearch, DataMining.Truncate(35_000_000)} {
		want := dist.Mean()
		var sum float64
		const n = 100_000
		for i := 0; i < n; i++ {
			sum += float64(dist.Sample(rng))
		}
		got := sum / n
		if got < 0.9*want || got > 1.1*want {
			t.Fatalf("%s: empirical mean %.0f vs analytic %.0f", dist.Name, got, want)
		}
	}
}

func TestWebSearchHeavyTail(t *testing.T) {
	// §5.1: web-search has ~30% of flows above 1 MB but they carry the
	// overwhelming majority of bytes.
	rng := sim.NewRNG(3)
	var total, tail float64
	big := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		s := float64(WebSearch.Sample(rng))
		total += s
		if s >= 1_000_000 {
			tail += s
			big++
		}
	}
	fracFlows := float64(big) / n
	fracBytes := tail / total
	if fracFlows < 0.25 || fracFlows > 0.35 {
		t.Fatalf("large-flow fraction = %.3f, want ~0.30", fracFlows)
	}
	if fracBytes < 0.90 {
		t.Fatalf("large flows carry %.2f of bytes, want > 0.90", fracBytes)
	}
}

func TestDataMiningSkew(t *testing.T) {
	// The data-mining tail (>= 28 MB here, ~35 MB in the paper) is ~5% of
	// flows but carries most bytes — the paper quotes 95% of bytes in 3.6%
	// of flows.
	rng := sim.NewRNG(4)
	var total, tail float64
	big := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		s := float64(DataMining.Sample(rng))
		total += s
		if s >= 28_000_000 {
			tail += s
			big++
		}
	}
	fracFlows := float64(big) / n
	if fracFlows < 0.03 || fracFlows > 0.07 {
		t.Fatalf("tail flow fraction = %.3f, want ~0.05", fracFlows)
	}
	if tail/total < 0.85 {
		t.Fatalf("tail carries %.2f of bytes, want > 0.85", tail/total)
	}
	// Half of the flows must be tiny (~1 KB or below).
	small := 0
	rng2 := sim.NewRNG(5)
	for i := 0; i < n; i++ {
		if DataMining.Sample(rng2) <= 1100 {
			small++
		}
	}
	if f := float64(small) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("tiny-flow fraction = %.3f, want ~0.50", f)
	}
}

func TestTruncate(t *testing.T) {
	tr := DataMining.Truncate(35_000_000)
	rng := sim.NewRNG(6)
	for i := 0; i < 50_000; i++ {
		if s := tr.Sample(rng); s > 35_000_000 {
			t.Fatalf("truncated sample %d exceeds cap", s)
		}
	}
	if tr.Mean() >= DataMining.Mean() {
		t.Fatal("truncation must reduce the mean")
	}
}

// Property: sampling is monotone in the uniform draw — a CDF inverse.
func TestSampleMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r1, r2 := sim.NewRNG(seed), sim.NewRNG(seed)
		// Same seed produces identical streams, so identical samples.
		for i := 0; i < 100; i++ {
			if WebSearch.Sample(r1) != WebSearch.Sample(r2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"web-search", "websearch", "ws"} {
		if d, err := ByName(n); err != nil || d != WebSearch {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	for _, n := range []string{"data-mining", "datamining", "dm"} {
		if d, err := ByName(n); err != nil || d != DataMining {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

type nullBalancer struct{ transport.BaseBalancer }

func (nullBalancer) Name() string                   { return "null" }
func (nullBalancer) SelectPath(*transport.Flow) int { return 0 }

func TestGeneratorPairsCrossLeaves(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer {
		return nullBalancer{}
	})
	gen := &Generator{Net: nw, Tr: tr, Rng: rng, Dist: WebSearch, Load: 0.3, MaxFlows: 300}
	seenSrc := map[int]bool{}
	gen.OnStart = func(f *transport.Flow) {
		if f.SrcLeaf == f.DstLeaf {
			t.Fatalf("intra-leaf pair generated: %d -> %d", f.Src, f.Dst)
		}
		seenSrc[f.SrcLeaf] = true
	}
	gen.Start()
	eng.Run(10 * sim.Second)
	if gen.Started() != 300 {
		t.Fatalf("generated %d/300 flows", gen.Started())
	}
	if len(seenSrc) != 4 {
		t.Fatalf("sources cover %d leaves, want 4", len(seenSrc))
	}
}

func TestGeneratorRateMatchesLoad(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(2)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer {
		return nullBalancer{}
	})
	var bytes int64
	gen := &Generator{Net: nw, Tr: tr, Rng: rng, Dist: WebSearch, Load: 0.5, MaxFlows: 600}
	gen.OnStart = func(f *transport.Flow) { bytes += f.Size }
	gen.Start()
	// Drain arrivals only; we do not care about flow completion here.
	for gen.Started() < 600 {
		eng.Run(eng.Now() + 100*sim.Millisecond)
	}
	// Offered rate = bytes*8/elapsed should be ~0.5 * bisection (20 Gbps).
	offered := float64(bytes) * 8 / float64(eng.Now()) * 1e9
	want := 0.5 * 20e9
	if offered < 0.8*want || offered > 1.25*want {
		t.Fatalf("offered %.3g bps, want ~%.3g", offered, want)
	}
}

func TestGeneratorBaseBisectionOverride(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	nw, _ := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	nw.SetFabricLink(0, 0, 0) // degrade the fabric
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer {
		return nullBalancer{}
	})
	g1 := &Generator{Net: nw, Tr: tr, Rng: rng, Dist: WebSearch, Load: 0.5, MaxFlows: 1}
	g1.Start()
	g2 := &Generator{Net: nw, Tr: tr, Rng: rng, Dist: WebSearch, Load: 0.5, MaxFlows: 1,
		BaseBisectionBps: 20e9}
	g2.Start()
	// The override must yield a shorter mean inter-arrival (higher rate).
	if g2.interMean >= g1.interMean {
		t.Fatalf("override interMean %v >= degraded %v", g2.interMean, g1.interMean)
	}
}

func TestParseCDF(t *testing.T) {
	in := `# comment
1000 0
50000 0.5

200000 1
`
	c, err := ParseCDF("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Points()); got != 3 {
		t.Fatalf("parsed %d points", got)
	}
	// Three-column variant.
	in3 := "1000 1000 0\n2000 2000 1\n"
	if _, err := ParseCDF("t3", strings.NewReader(in3)); err != nil {
		t.Fatal(err)
	}
	// Errors.
	for _, bad := range []string{"x 0.5\n1 1\n", "100 y\n200 1\n", "1 2 3 4\n", "100 0.5\n"} {
		if _, err := ParseCDF("bad", strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted malformed CDF %q", bad)
		}
	}
}

func TestLoadCDFFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dist.txt")
	if err := os.WriteFile(path, []byte("100 0\n1000 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCDFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if s := c.Sample(rng); s < 100 || s > 1000 {
			t.Fatalf("sample %d out of range", s)
		}
	}
	if _, err := LoadCDFFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestIncastDirect(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(4)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.New(nw, transport.DefaultOptions(), func(*net.Host) transport.Balancer {
		return nullBalancer{}
	})
	durs := map[int]sim.Time{}
	ic := &Incast{
		Net: nw, Tr: tr, Rng: rng,
		FanIn: 8, ChunkBytes: 32_000, Interval: 2 * sim.Millisecond, Events: 4,
		OnDone: func(ev int, d sim.Time) { durs[ev] = d },
	}
	ic.Start()
	eng.Run(sim.Second)
	if ic.Started() != 4 || len(durs) != 4 {
		t.Fatalf("events=%d completions=%d, want 4/4", ic.Started(), len(durs))
	}
	for ev, d := range durs {
		if d <= 0 {
			t.Fatalf("incast %d non-positive duration", ev)
		}
	}
	// Defaults fill in when unset.
	ic2 := &Incast{Net: nw, Tr: tr, Rng: rng, Events: 1}
	ic2.Start()
	eng.Run(eng.Now() + 100*sim.Millisecond)
	if ic2.Started() != 1 {
		t.Fatal("defaulted incast did not fire")
	}
}
