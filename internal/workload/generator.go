package workload

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// Generator produces an open-loop Poisson flow arrival process: sizes from
// the configured CDF, sources uniform over hosts, destinations uniform over
// hosts under a *different* leaf (the paper's generator, after ref [8]).
type Generator struct {
	Net  *net.Network
	Tr   *transport.Transport
	Rng  *sim.RNG
	Dist *CDF

	// Load is the offered load as a fraction of the fabric bisection
	// bandwidth (0..1].
	Load float64
	// BaseBisectionBps, when positive, overrides the bisection capacity the
	// load is normalized to. The paper normalizes load to the *intact*
	// fabric even in asymmetric and failure runs (§5.3.2-5.3.3).
	BaseBisectionBps int64
	// MaxFlows stops generation after this many arrivals.
	MaxFlows int
	// OnStart, if set, observes each generated flow.
	OnStart func(*transport.Flow)
	// StartFlowFn, if set, replaces Transport.StartFlow for each arrival
	// (used for MPTCP logical flows). OnStart is not called for these.
	StartFlowFn func(src, dst int, size int64)

	started   int
	meanBytes float64
	interMean float64 // mean inter-arrival in ns
}

// Start schedules the first arrival. It must be called once, before the
// engine runs.
func (g *Generator) Start() {
	g.meanBytes = g.Dist.Mean()
	bisection := float64(g.Net.BisectionBps()) // bits/s
	if g.BaseBisectionBps > 0 {
		bisection = float64(g.BaseBisectionBps)
	}
	flowsPerSec := g.Load * bisection / (g.meanBytes * 8)
	g.interMean = 1e9 / flowsPerSec
	g.Net.Eng.ScheduleKind(g.Rng.Exp(g.interMean), sim.KindArrival, g.arrival)
}

// Started returns the number of flows generated so far.
func (g *Generator) Started() int { return g.started }

func (g *Generator) arrival() {
	if g.started >= g.MaxFlows {
		return
	}
	src, dst := g.pickPair()
	size := g.Dist.Sample(g.Rng)
	if g.StartFlowFn != nil {
		g.StartFlowFn(src, dst, size)
	} else {
		f := g.Tr.StartFlow(src, dst, size)
		if g.OnStart != nil {
			g.OnStart(f)
		}
	}
	g.started++
	if g.started < g.MaxFlows {
		g.Net.Eng.ScheduleKind(g.Rng.Exp(g.interMean), sim.KindArrival, g.arrival)
	}
}

// pickPair draws a uniform source host and a uniform destination host under
// a different leaf.
func (g *Generator) pickPair() (src, dst int) {
	n := len(g.Net.Hosts)
	src = g.Rng.Intn(n)
	srcLeaf := g.Net.LeafOf(src)
	hpl := g.Net.Cfg.HostsPerLeaf
	// Choose among hosts not under srcLeaf.
	k := g.Rng.Intn(n - hpl)
	if k >= srcLeaf*hpl {
		k += hpl
	}
	return src, k
}
