package workload

import (
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
)

// FuzzParseCDF feeds arbitrary text through the CDF parser. Any distribution
// the parser accepts must then behave: samples stay inside the distribution's
// own support, the mean lands inside the support, and the same seed
// reproduces the same draw sequence.
func FuzzParseCDF(f *testing.F) {
	f.Add("1000 0\n10000 0.5\n30000 1\n", int64(1))
	f.Add("# comment\n100 100 0\n250 250 0.2\n900 900 1\n", int64(42))
	f.Add("5 0\n6 1\n", int64(7))
	f.Add("100 0\n200 0.5\n300 0.5\n400 1\n", int64(9)) // flat segment
	f.Fuzz(func(t *testing.T, text string, seed int64) {
		c, err := ParseCDF("fuzz", strings.NewReader(text))
		if err != nil {
			return // rejected input: nothing further to check
		}
		pts := c.Points()
		lo, hi := pts[0].Bytes, pts[len(pts)-1].Bytes
		if m := c.Mean(); !(m >= float64(lo) && m <= float64(hi)) {
			t.Fatalf("mean %v outside support [%d, %d]", m, lo, hi)
		}
		rng := sim.NewRNG(seed)
		draws := make([]int64, 64)
		for i := range draws {
			s := c.Sample(rng)
			if s < lo || s > hi {
				t.Fatalf("sample %d outside support [%d, %d]", s, lo, hi)
			}
			draws[i] = s
		}
		rng2 := sim.NewRNG(seed)
		for i := range draws {
			if s := c.Sample(rng2); s != draws[i] {
				t.Fatalf("draw %d not deterministic: %d vs %d", i, s, draws[i])
			}
		}
	})
}
