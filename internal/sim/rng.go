package sim

import "math/rand"

// RNG wraps math/rand with a deterministic seed and the handful of sampling
// helpers the simulator needs. Every randomized component draws from one RNG
// owned by the experiment so that a seed fully determines a run. The draw
// counter tracks the stream position: two RNGs with the same seed and the
// same draw count are in identical states, which lets a checkpoint verify a
// replayed RNG without exposing math/rand internals.
type RNG struct {
	r     *rand.Rand
	draws uint64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Draws returns the number of sampling calls made so far — the RNG stream
// position.
func (g *RNG) Draws() uint64 { return g.draws }

// Intn returns a uniform int in [0, n). n must be positive.
func (g *RNG) Intn(n int) int {
	g.draws++
	return g.r.Intn(n)
}

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 {
	g.draws++
	return g.r.Int63()
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 {
	g.draws++
	return g.r.Float64()
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson inter-arrival times. The result is at least 1 ns.
func (g *RNG) Exp(mean float64) Time {
	g.draws++
	v := g.r.ExpFloat64() * mean
	if v < 1 {
		v = 1
	}
	return Time(v)
}

// TwoDistinct returns two distinct uniform indices in [0, n). It panics if
// n < 2.
func (g *RNG) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("sim: TwoDistinct requires n >= 2")
	}
	g.draws++
	a := g.r.Intn(n)
	b := g.r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.draws++
	return g.r.Perm(n)
}
