package sim

import "testing"

// FuzzEventOps drives the engine through an arbitrary stream of
// schedule / cancel / cancel-then-reschedule / partial-run operations and
// asserts that the invariant checker stays clean and that exactly the
// non-cancelled events fire. Each input byte is one operation: the low two
// bits select the op, the high six bits are its argument.
func FuzzEventOps(f *testing.F) {
	f.Add([]byte{0x00, 0x14, 0x41, 0x02, 0x83, 0xc4, 0x10, 0xff})
	f.Add([]byte{0x01, 0x01, 0x01})                         // cancels with nothing live
	f.Add([]byte{0x00, 0x00, 0x02, 0x02, 0x06, 0x03})       // same-instant churn
	f.Add([]byte{0xfc, 0x00, 0x04, 0x08, 0x07, 0x0b, 0x0f}) // run interleaved with ops
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine()
		e.EnableChecks()
		type tracked struct {
			ev *Event
			at Time
		}
		// live holds events that are queued and not cancelled; fire callbacks
		// remove their own entry, mirroring the handle-clearing discipline
		// real timer holders (transport RTO, reorder timer) follow.
		var live []*tracked
		fired, expect := 0, 0
		remove := func(tr *tracked) {
			for i, o := range live {
				if o == tr {
					live = append(live[:i], live[i+1:]...)
					return
				}
			}
		}
		track := func(at Time, abs bool) {
			tr := &tracked{}
			fn := func() {
				fired++
				remove(tr)
			}
			if abs {
				tr.ev = e.At(at, fn)
			} else {
				tr.ev = e.Schedule(at, fn)
			}
			tr.at = tr.ev.At()
			live = append(live, tr)
		}
		for _, b := range data {
			arg := int(b >> 2)
			switch b & 3 {
			case 0: // schedule at now+arg
				track(Time(arg), false)
				expect++
			case 1: // cancel a live event
				if len(live) == 0 {
					continue
				}
				tr := live[arg%len(live)]
				tr.ev.Cancel()
				remove(tr)
				expect--
			case 2: // cancel then reschedule at the exact same timestamp
				if len(live) == 0 {
					continue
				}
				tr := live[arg%len(live)]
				at := tr.at
				tr.ev.Cancel()
				remove(tr)
				track(at, true)
			case 3: // advance the clock partially, firing due events
				e.Run(e.Now() + Time(arg))
			}
		}
		e.RunAll()
		if vs := e.Violations(); len(vs) > 0 {
			t.Fatalf("invariant violations: %v", vs)
		}
		if fired != expect {
			t.Fatalf("fired %d events, want %d", fired, expect)
		}
		if len(live) != 0 {
			t.Fatalf("%d tracked events never fired", len(live))
		}
	})
}
