package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time fired out of scheduling order: %v", got[:i+1])
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-100, func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards: %d", e.Now())
	}
}

func TestAtInPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Fatalf("past event fired at %d, want 100", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// TestCancelThenRescheduleSameTimestamp is the free-list regression test: a
// cancelled event must be recycled safely (only once popped, never while
// still queued), and an event rescheduled at the exact same timestamp —
// possibly reusing the recycled struct — must fire exactly once with no
// stale cancel state.
func TestCancelThenRescheduleSameTimestamp(t *testing.T) {
	e := NewEngine()
	var fired []string
	old := e.Schedule(10, func() { fired = append(fired, "old") })
	old.Cancel()
	repl := e.Schedule(10, func() { fired = append(fired, "new") })
	e.RunAll()
	if len(fired) != 1 || fired[0] != "new" {
		t.Fatalf("fired = %v, want [new]", fired)
	}
	if repl.Canceled() {
		t.Fatal("replacement event reports Canceled")
	}

	// Second round: the cancelled struct is now on the free list. Scheduling
	// at the same timestamp again must reuse it cleanly.
	if e.FreeEvents() == 0 {
		t.Fatal("cancelled+fired events were not recycled to the free list")
	}
	fired = nil
	again := e.At(e.Now(), func() { fired = append(fired, "again") })
	if again.Canceled() {
		t.Fatal("recycled event carries stale cancel state")
	}
	e.RunAll()
	if len(fired) != 1 || fired[0] != "again" {
		t.Fatalf("fired = %v, want [again]", fired)
	}
}

// TestEventRecycling pins the free-list behaviour the packet hot path relies
// on: after a warm-up, schedule/fire cycles reuse event structs instead of
// allocating.
func TestEventRecycling(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	if got := e.FreeEvents(); got != 100 {
		t.Fatalf("free list holds %d events after firing 100, want 100", got)
	}
	// Reuse: scheduling 100 more must drain the free list, not grow it.
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i), func() {})
	}
	if got := e.FreeEvents(); got != 0 {
		t.Fatalf("free list holds %d events after rescheduling 100, want 0", got)
	}
}

func TestScheduleCall(t *testing.T) {
	e := NewEngine()
	type box struct{ n int }
	b1, b2 := &box{}, &box{}
	e.ScheduleCall(5, func(a1, a2 any) {
		a1.(*box).n = 1
		a2.(*box).n = 2
	}, b1, b2)
	e.RunAll()
	if b1.n != 1 || b2.n != 2 {
		t.Fatalf("ScheduleCall args not delivered: %d %d", b1.n, b2.n)
	}
}

// TestScheduleCallOrderingWithSchedule verifies fn- and fn2-style events
// share one sequence space: same-instant events fire in scheduling order
// regardless of flavor.
func TestScheduleCallOrderingWithSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(5, func() { got = append(got, 0) })
	e.ScheduleCall(5, func(a1, _ any) { s := a1.(*[]int); *s = append(*s, 1) }, &got, nil)
	e.Schedule(5, func() { got = append(got, 2) })
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed-flavor same-instant order = %v", got)
		}
	}
}

func TestChecksCleanRun(t *testing.T) {
	e := NewEngine()
	e.EnableChecks()
	for i := 0; i < 50; i++ {
		d := Time(i % 7)
		e.Schedule(d, func() {})
	}
	ev := e.Schedule(3, func() { t.Fatal("cancelled event fired") })
	ev.Cancel()
	e.RunAll()
	if v := e.Violations(); len(v) != 0 {
		t.Fatalf("clean run recorded violations: %v", v)
	}
}

// TestChecksDetectBackwardsTime corrupts the clock directly (white-box) and
// confirms the checker notices the next event firing in the past.
func TestChecksDetectBackwardsTime(t *testing.T) {
	e := NewEngine()
	e.EnableChecks()
	e.Schedule(5, func() {})
	e.now = 50 // corrupt: pending event is now in the past
	e.RunAll()
	if v := e.Violations(); len(v) == 0 {
		t.Fatal("backwards-time violation not detected")
	}
}

// TestChecksDetectFireAfterCancel forges a cancelled event straight into the
// heap execution path (white-box) and confirms the state check trips.
func TestChecksDetectFireAfterCancel(t *testing.T) {
	e := NewEngine()
	e.EnableChecks()
	ev := e.Schedule(5, func() {})
	ev.state = stateFired // forge: simulates a use-after-free double fire
	e.RunAll()
	if v := e.Violations(); len(v) == 0 {
		t.Fatal("fire-in-wrong-state violation not detected")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(20, func() { fired = true })
	e.Schedule(10, func() { ev.Cancel() })
	e.RunAll()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run(10)
	if len(fired) != 2 {
		t.Fatalf("Run(10) fired %v, want events at 5 and 10", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d after Run(10)", e.Now())
	}
	e.Run(20)
	if len(fired) != 3 {
		t.Fatalf("second Run did not pick up the remaining event: %v", fired)
	}
}

func TestRunAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want horizon 1000", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: %d events fired", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestRecursiveScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(0, rec)
	n := e.RunAll()
	if depth != 100 || n != 100 {
		t.Fatalf("depth=%d fired=%d, want 100/100", depth, n)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %d, want 99", e.Now())
	}
}

// Property: for any set of random delays, events fire in non-decreasing
// timestamp order and the engine fires exactly len(delays) events.
func TestPropertyTimestampMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Run calls at arbitrary horizons fires every event
// exactly once, in order.
func TestPropertyChunkedRunEquivalent(t *testing.T) {
	f := func(delays []uint16, chunks []uint16) bool {
		if len(chunks) == 0 {
			chunks = []uint16{100}
		}
		e := NewEngine()
		count := 0
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { count++ })
		}
		for _, c := range chunks {
			e.Run(e.Now() + Time(c))
		}
		e.Run(max + 1)
		return count == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTwoDistinct(t *testing.T) {
	g := NewRNG(7)
	for n := 2; n < 10; n++ {
		for i := 0; i < 200; i++ {
			a, b := g.TwoDistinct(n)
			if a == b {
				t.Fatalf("TwoDistinct(%d) returned equal values %d", n, a)
			}
			if a < 0 || a >= n || b < 0 || b >= n {
				t.Fatalf("TwoDistinct(%d) out of range: %d %d", n, a, b)
			}
		}
	}
}

func TestTwoDistinctUniform(t *testing.T) {
	g := NewRNG(1)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		a, b := g.TwoDistinct(4)
		counts[a]++
		counts[b]++
	}
	// Each index should appear in about half of all draws.
	want := trials / 2
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("index %d drawn %d times, want ~%d", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(3)
	const mean = 1e6
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Exp(mean))
	}
	got := sum / n
	if got < 0.95*mean || got > 1.05*mean {
		t.Fatalf("Exp mean = %.0f, want ~%.0f", got, mean)
	}
}

func TestExpPositive(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := g.Exp(0.001); v < 1 {
			t.Fatalf("Exp returned %d < 1", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(5)
	p := g.Perm(32)
	seen := make([]bool, 32)
	for _, v := range p {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
