package sim_test

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/perf/pinned"
	"github.com/hermes-repro/hermes/internal/sim"
)

// The benchmark body lives in internal/perf/pinned so `hermes-bench -perf`
// can run the exact same code and append the result to the perf ledger.
func BenchmarkEngineScheduleRun(b *testing.B) { pinned.EngineScheduleRun(b) }

// TestEngineScheduleAllocGuard pins the engine's zero-allocation contract
// mechanically: a warm engine schedules and fires without touching the heap,
// with profiling off AND on (the profiled fire path uses only fixed arrays
// and time.Now, neither of which allocates).
func TestEngineScheduleAllocGuard(t *testing.T) {
	for _, mode := range []struct {
		name    string
		profile bool
	}{{"profile-off", false}, {"profile-on", true}} {
		t.Run(mode.name, func(t *testing.T) {
			e := sim.NewEngine()
			if mode.profile {
				e.EnableProfile(4)
			}
			// Warm the free list and heap capacity.
			for i := 0; i < 1000; i++ {
				e.ScheduleCall(sim.Time(i%37), func(a1, a2 any) {}, nil, nil)
			}
			e.RunAll()
			body := func() {
				for i := 0; i < 64; i++ {
					e.ScheduleCallKind(sim.Time(i%17), sim.KindPortTx, func(a1, a2 any) {}, nil, nil)
				}
				e.RunAll()
			}
			if got := testing.AllocsPerRun(100, body); got != 0 {
				t.Fatalf("warm schedule/fire allocs = %v, want 0", got)
			}
		})
	}
}
