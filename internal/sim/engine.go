// Package sim provides a deterministic, single-threaded, event-driven
// simulation engine used by the network model. Time is virtual and measured
// in integer nanoseconds; all events scheduled for the same instant fire in
// scheduling order, which makes runs with the same seed fully reproducible.
package sim

import "container/heap"

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time = int64

// Common duration units, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Event is a scheduled callback. The zero value is not usable; events are
// created by Engine.Schedule or Engine.At. An Event may be cancelled before
// it fires.
type Event struct {
	at       Time
	seq      uint64 // tie-break: preserves scheduling order at equal times
	index    int    // heap index, -1 once popped or cancelled
	fn       func()
	canceled bool
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the event loop. It is not safe for concurrent use; the entire
// simulation runs on one goroutine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, useful for
// instrumentation and benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay nanoseconds of virtual time. A negative delay
// is treated as zero. It returns a handle that can cancel the event.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. If t is in the past, the event fires
// at the current time (but never before events already due).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event is later than until. Events exactly
// at until are executed. It returns the number of events fired by this call.
func (e *Engine) Run(until Time) uint64 {
	start := e.fired
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < until && !e.stopped {
		// Advance the clock to the horizon even if no event lands on it, so
		// repeated Run calls observe monotonic time.
		e.now = until
	}
	return e.fired - start
}

// RunAll executes events until the queue drains or the engine is stopped.
func (e *Engine) RunAll() uint64 {
	start := e.fired
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := heap.Pop(&e.events).(*Event)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	return e.fired - start
}
