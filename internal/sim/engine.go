// Package sim provides a deterministic, single-threaded, event-driven
// simulation engine used by the network model. Time is virtual and measured
// in integer nanoseconds; all events scheduled for the same instant fire in
// scheduling order, which makes runs with the same seed fully reproducible.
//
// The engine is built for the packet-forwarding hot path: the pending-event
// queue is an inlined 4-ary heap (no container/heap interface boxing), fired
// and cancelled events are recycled through a free list, and ScheduleCall
// lets callers schedule a pre-bound function with two receiver arguments so
// the steady state performs no allocation at all.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time = int64

// Common duration units, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Event lifecycle states.
const (
	stateFree     uint8 = iota // on the engine free list (or zero value)
	stateQueued                // in the pending heap
	stateCanceled              // in the pending heap, will not fire
	stateFired                 // popped and executing/executed
)

// Event is a scheduled callback. The zero value is not usable; events are
// created by the Engine's Schedule/At/ScheduleCall methods. An Event may be
// cancelled before it fires.
//
// Handle lifetime: event structs are recycled through an engine-owned free
// list once they fire or once a cancelled event is popped from the queue.
// A handle is therefore only meaningful until its event fires or is
// cancelled; drop (nil out) stored handles at that point, exactly as the
// callback-clears-its-own-timer pattern in internal/transport does. Calling
// Cancel on a stale handle whose event already fired is a no-op until the
// engine reuses the struct, so holding handles past their event's lifetime
// is a bug (the Config.Checks invariant checker exists to catch the
// resulting double-fire/fire-after-cancel corruption).
type Event struct {
	at  Time
	seq uint64 // tie-break: preserves scheduling order at equal times

	// Exactly one of fn and fn2 is set. fn2 with its pre-bound arguments
	// avoids a closure allocation per scheduling on hot paths.
	fn     func()
	fn2    func(a1, a2 any)
	a1, a2 any

	state uint8
	kind  Kind // self-profiling attribution (see profile.go)
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents a queued event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e.state == stateQueued {
		e.state = stateCanceled
	}
}

// Canceled reports whether the event is currently cancelled and pending
// removal from the queue.
func (e *Event) Canceled() bool { return e.state == stateCanceled }

// Engine is the event loop. It is not safe for concurrent use; the entire
// simulation runs on one goroutine.
type Engine struct {
	now     Time
	events  []*Event // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	stopped bool
	fired   uint64

	// Free-list allocator: recycled events plus a block of never-used
	// structs carved out chunk-by-chunk to amortize allocation.
	free  []*Event
	chunk []Event

	// Invariant checking (EnableChecks): disabled by default so the hot
	// loop pays one predictable branch.
	checks     bool
	lastAt     Time
	lastSeq    uint64
	violations []string

	// Self-profiling (EnableProfile): nil by default so the hot loop pays
	// one predictable nil check.
	prof *Profile
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, useful for
// instrumentation and benchmarks.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Seq returns the next scheduling sequence number. Together with Now, Fired
// and Pending it fingerprints the engine's position in a run: two engines
// driven by the same deterministic program agree on all four at every
// instant, which is what checkpoint verification checks.
func (e *Engine) Seq() uint64 { return e.seq }

// PendingCensus returns the number of queued events per profiling kind,
// plus the count of cancelled events awaiting lazy removal — a structural
// fingerprint of the event queue that is invariant under heap layout.
// Scheduling and cancellation are both deterministic, so two engines driven
// by the same program agree on the census at every instant.
func (e *Engine) PendingCensus() (byKind [NumKinds]int, cancelled int) {
	for _, ev := range e.events {
		if ev.state == stateCanceled {
			cancelled++
			continue
		}
		byKind[ev.kind]++
	}
	return byKind, cancelled
}

// FreeEvents returns the current size of the event free list (allocation
// instrumentation for tests and benchmarks).
func (e *Engine) FreeEvents() int { return len(e.free) }

// EnableChecks turns on per-event invariant checking: virtual time must
// never move backwards, events at the same instant must fire in scheduling
// (sequence) order, and no cancelled or recycled event may fire. Violations
// are recorded, not panicked, so a harness can report them after the run.
func (e *Engine) EnableChecks() {
	e.checks = true
	e.lastAt = -1
}

// Violations returns the invariant violations recorded since EnableChecks.
func (e *Engine) Violations() []string { return e.violations }

func (e *Engine) alloc() *Event {
	if k := len(e.free); k > 0 {
		ev := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return ev
	}
	if len(e.chunk) == 0 {
		e.chunk = make([]Event, 256)
	}
	ev := &e.chunk[0]
	e.chunk = e.chunk[1:]
	return ev
}

// recycle returns a popped event to the free list. Events are recycled only
// after leaving the heap (fired, or cancelled and subsequently popped);
// releasing a still-queued event would let a reuse corrupt the heap.
func (e *Engine) recycle(ev *Event) {
	ev.fn, ev.fn2, ev.a1, ev.a2 = nil, nil, nil, nil
	ev.state = stateFree
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay nanoseconds of virtual time. A negative delay
// is treated as zero. It returns a handle that can cancel the event.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	return e.ScheduleKind(delay, KindOther, fn)
}

// ScheduleKind is Schedule with a profiling kind tag.
func (e *Engine) ScheduleKind(delay Time, k Kind, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.AtKind(e.now+delay, k, fn)
}

// At runs fn at absolute virtual time t. If t is in the past, the event fires
// at the current time (but never before events already due).
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtKind(t, KindOther, fn)
}

// AtKind is At with a profiling kind tag.
func (e *Engine) AtKind(t Time, k Kind, fn func()) *Event {
	ev := e.alloc()
	ev.fn = fn
	ev.kind = k
	e.enqueue(ev, t)
	return ev
}

// ScheduleCall runs fn(a1, a2) after delay nanoseconds of virtual time. It
// is the allocation-free flavor of Schedule: fn is typically a package-level
// function and the receiver travels in a1/a2 (boxing a pointer into an `any`
// does not allocate), so a warm engine schedules without touching the heap.
func (e *Engine) ScheduleCall(delay Time, fn func(a1, a2 any), a1, a2 any) *Event {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc()
	ev.fn2, ev.a1, ev.a2 = fn, a1, a2
	ev.kind = KindOther
	e.enqueue(ev, e.now+delay)
	return ev
}

// ScheduleCallKind is ScheduleCall with a profiling kind tag. The body is a
// copy of ScheduleCall rather than a delegation so both stay inlinable on
// the packet hot path.
func (e *Engine) ScheduleCallKind(delay Time, k Kind, fn func(a1, a2 any), a1, a2 any) *Event {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc()
	ev.fn2, ev.a1, ev.a2 = fn, a1, a2
	ev.kind = k
	e.enqueue(ev, e.now+delay)
	return ev
}

func (e *Engine) enqueue(ev *Event, t Time) {
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.seq = e.seq
	ev.state = stateQueued
	e.seq++
	e.push(ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event is later than until. Events exactly
// at until are executed. It returns the number of events fired by this call.
func (e *Engine) Run(until Time) uint64 {
	start := e.fired
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		e.pop()
		e.fire(next)
	}
	if e.now < until && !e.stopped {
		// Advance the clock to the horizon even if no event lands on it, so
		// repeated Run calls observe monotonic time.
		e.now = until
	}
	return e.fired - start
}

// RunAll executes events until the queue drains or the engine is stopped.
func (e *Engine) RunAll() uint64 {
	start := e.fired
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.pop()
		e.fire(next)
	}
	return e.fired - start
}

// fire executes one popped event (skipping cancelled ones) and recycles it.
// It reports whether the event actually ran.
func (e *Engine) fire(ev *Event) bool {
	if ev.state == stateCanceled {
		e.recycle(ev)
		return false
	}
	if e.checks {
		e.checkFire(ev)
	}
	e.now = ev.at
	e.fired++
	ev.state = stateFired
	if e.prof != nil {
		e.profiledFire(ev)
		return true
	}
	if ev.fn2 != nil {
		ev.fn2(ev.a1, ev.a2)
	} else {
		ev.fn()
	}
	e.recycle(ev)
	return true
}

func (e *Engine) checkFire(ev *Event) {
	if ev.at < e.now {
		e.violate("time moved backwards: event at %d fires at now=%d", ev.at, e.now)
	}
	if ev.at == e.lastAt && ev.seq <= e.lastSeq {
		e.violate("same-instant ordering broken: seq %d fired after seq %d at t=%d",
			ev.seq, e.lastSeq, ev.at)
	}
	if ev.state != stateQueued {
		e.violate("event in state %d fired (cancelled or recycled event executing)", ev.state)
	}
	e.lastAt, e.lastSeq = ev.at, ev.seq
}

// eventLess orders the heap by (timestamp, scheduling sequence).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push and pop maintain an implicit 4-ary min-heap in e.events. A 4-ary
// layout halves the tree depth of the binary heap and keeps each node's
// children in one cache line of pointers, and inlining the comparisons
// avoids container/heap's interface dispatch on every swap.
func (e *Engine) push(ev *Event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

func (e *Engine) pop() *Event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return root
}

func (e *Engine) violate(format string, args ...any) {
	e.violations = append(e.violations, fmt.Sprintf(format, args...))
}
