package sim

import "time"

// Kind classifies an event for the engine's self-profiler. Every scheduling
// call site tags its events with the layer that owns them (port transmission,
// propagation, retransmission timers, probes, workload arrivals, samplers,
// chaos injections) so a profiled run can attribute engine time by subsystem.
// The zero value KindOther covers untagged call sites.
type Kind uint8

const (
	KindOther     Kind = iota // untagged / miscellaneous
	KindPortTx                // port serialization finished (store-and-forward)
	KindPropagate             // link propagation delivery
	KindRTO                   // transport retransmission timeouts
	KindTimer                 // protocol timers (reorder, flowlet age, table decay)
	KindProbe                 // path probing and monitor scans
	KindArrival               // workload flow/packet arrivals
	KindSample                // telemetry sweeps and flight-recorder sampling
	KindChaos                 // chaos scenario injections and reverts

	// NumKinds is the number of distinct event kinds (array sizing).
	NumKinds = int(KindChaos) + 1
)

var kindNames = [NumKinds]string{
	"other", "port_tx", "propagate", "rto", "timer", "probe", "arrival",
	"sample", "chaos",
}

// String returns the stable snake_case name used in reports and metrics.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "other"
}

// KindNames returns the stable kind name table indexed by Kind.
func KindNames() [NumKinds]string { return kindNames }

// DefaultSampleEvery is the default wall-time sampling stride: one in every
// N fired events is timed with the wall clock. Counting is exact for every
// event; only the time attribution is sampled, which keeps the profiled hot
// path nearly as cheap as the unprofiled one.
const DefaultSampleEvery = 64

// Profile accumulates the engine's self-profiling state for one run. It is
// owned by the simulation goroutine — like the Engine itself it is not safe
// for concurrent use, and should be read only after Run/RunAll returns.
// All state lives in fixed arrays so the profiled fire path allocates
// nothing.
type Profile struct {
	sampleEvery int64
	countdown   int64

	counts       [NumKinds]uint64 // exact fire counts per kind
	sampledNs    [NumKinds]int64  // wall ns across sampled fires per kind
	sampledFires [NumKinds]uint64 // number of sampled fires per kind
	queuePeak    int              // high-water mark of the pending heap
}

// EnableProfile turns on engine self-profiling and returns the profile that
// will accumulate for the rest of the engine's life. sampleEvery sets the
// wall-time sampling stride (1 in N fired events is timed); values < 1 use
// DefaultSampleEvery. Calling EnableProfile twice returns the same profile.
//
// Cost model: with profiling off the fire path pays one nil check. With it
// on, every fire pays an array increment and a countdown; only the sampled
// 1-in-N fires call time.Now, so neither path allocates.
func (e *Engine) EnableProfile(sampleEvery int) *Profile {
	if e.prof != nil {
		return e.prof
	}
	if sampleEvery < 1 {
		sampleEvery = DefaultSampleEvery
	}
	e.prof = &Profile{sampleEvery: int64(sampleEvery), countdown: int64(sampleEvery)}
	return e.prof
}

// Profile returns the engine's profile, or nil when profiling is disabled.
func (e *Engine) Profile() *Profile { return e.prof }

// profiledFire is the instrumented twin of the tail of Engine.fire: it runs
// one non-cancelled event while accounting it to its kind, sampling wall
// time 1 in sampleEvery fires. The event's kind is copied out before the
// callback runs because the callback may recycle-and-reuse the struct.
func (e *Engine) profiledFire(ev *Event) {
	p := e.prof
	k := ev.kind
	if int(k) >= NumKinds {
		k = KindOther
	}
	p.counts[k]++
	// +1: the fired event just left the heap, so pending underestimates the
	// instantaneous depth by one.
	if d := len(e.events) + 1; d > p.queuePeak {
		p.queuePeak = d
	}
	p.countdown--
	if p.countdown > 0 {
		if ev.fn2 != nil {
			ev.fn2(ev.a1, ev.a2)
		} else {
			ev.fn()
		}
		e.recycle(ev)
		return
	}
	p.countdown = p.sampleEvery
	start := time.Now()
	if ev.fn2 != nil {
		ev.fn2(ev.a1, ev.a2)
	} else {
		ev.fn()
	}
	p.sampledNs[k] += int64(time.Since(start))
	p.sampledFires[k]++
	e.recycle(ev)
}

// SampleEvery returns the wall-time sampling stride.
func (p *Profile) SampleEvery() int { return int(p.sampleEvery) }

// Count returns the exact number of fired events of kind k.
func (p *Profile) Count(k Kind) uint64 { return p.counts[k] }

// SampledNs returns the total wall nanoseconds measured across the sampled
// fires of kind k. Multiply by SampleEvery for an estimate of the kind's
// total wall time.
func (p *Profile) SampledNs(k Kind) int64 { return p.sampledNs[k] }

// SampledFires returns how many fires of kind k were wall-timed.
func (p *Profile) SampledFires(k Kind) uint64 { return p.sampledFires[k] }

// QueuePeak returns the high-water mark of the pending-event heap observed
// while profiling (including the event being fired).
func (p *Profile) QueuePeak() int { return p.queuePeak }

// Total returns the exact total number of profiled event fires.
func (p *Profile) Total() uint64 {
	var t uint64
	for _, c := range p.counts {
		t += c
	}
	return t
}
