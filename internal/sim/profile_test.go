package sim

import "testing"

func TestProfileCountsByKind(t *testing.T) {
	e := NewEngine()
	p := e.EnableProfile(2)
	if p != e.EnableProfile(99) {
		t.Fatal("EnableProfile twice returned different profiles")
	}
	for i := 0; i < 10; i++ {
		e.ScheduleKind(Time(i), KindPortTx, func() {})
	}
	for i := 0; i < 5; i++ {
		e.ScheduleCallKind(Time(i), KindRTO, func(a1, a2 any) {}, nil, nil)
	}
	e.Schedule(3, func() {}) // untagged -> KindOther
	ev := e.ScheduleKind(4, KindChaos, func() {})
	ev.Cancel() // cancelled events must not be counted
	e.RunAll()

	if got := p.Count(KindPortTx); got != 10 {
		t.Fatalf("Count(KindPortTx) = %d, want 10", got)
	}
	if got := p.Count(KindRTO); got != 5 {
		t.Fatalf("Count(KindRTO) = %d, want 5", got)
	}
	if got := p.Count(KindOther); got != 1 {
		t.Fatalf("Count(KindOther) = %d, want 1", got)
	}
	if got := p.Count(KindChaos); got != 0 {
		t.Fatalf("cancelled event counted: Count(KindChaos) = %d", got)
	}
	if got := p.Total(); got != 16 {
		t.Fatalf("Total() = %d, want 16", got)
	}
	if got, want := p.Total(), e.Fired(); got != want {
		t.Fatalf("profile total %d != engine fired %d", got, want)
	}
	// Stride 2 over 16 fires: exactly 8 sampled, each with a wall timestamp.
	var sampled uint64
	for k := 0; k < NumKinds; k++ {
		sampled += p.SampledFires(Kind(k))
	}
	if sampled != 8 {
		t.Fatalf("sampled fires = %d, want 16/2 = 8", sampled)
	}
	if p.QueuePeak() < 1 || p.QueuePeak() > 17 {
		t.Fatalf("QueuePeak() = %d out of plausible range", p.QueuePeak())
	}
}

func TestProfileDoesNotChangeExecution(t *testing.T) {
	run := func(profile bool) []Time {
		e := NewEngine()
		if profile {
			e.EnableProfile(3)
		}
		var fired []Time
		for i := 0; i < 200; i++ {
			d := Time((i * 37) % 101)
			e.ScheduleKind(d, Kind(i%NumKinds), func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		return fired
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("profiled run fired %d events, unprofiled %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKindNamesStable(t *testing.T) {
	want := map[Kind]string{
		KindOther: "other", KindPortTx: "port_tx", KindPropagate: "propagate",
		KindRTO: "rto", KindTimer: "timer", KindProbe: "probe",
		KindArrival: "arrival", KindSample: "sample", KindChaos: "chaos",
	}
	for k, n := range want {
		if k.String() != n {
			t.Fatalf("Kind(%d).String() = %q, want %q (ledger/metric names must stay stable)", k, k.String(), n)
		}
	}
	if Kind(200).String() != "other" {
		t.Fatal("out-of-range kind must degrade to other")
	}
}
