// Package chaos turns the static failure injectors of internal/failure into
// a declarative scenario engine: a Scenario is a timeline of events — inject
// a failure at t1, clear it at t2, repeat a flap every period — over
// composable injectors that may overlap on the same switch or link. Every
// injector snapshots exactly what it changes and restores it on revert, so
// mid-run recovery is first-class, and all randomness flows through the
// run's seeded RNG, so a scenario is deterministic per seed. The recovery
// analysis (Compute) reads the flight recorder back out to score how fast a
// load balancing scheme detected, rerouted around, and re-converged after
// each activation — the §5.3 resilience questions the paper answers with
// testbed experiments.
package chaos

import (
	"fmt"
	"sort"

	"github.com/hermes-repro/hermes/internal/failure"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Env is the fabric surface injectors act on. Rng is the run's seeded RNG:
// random picks (spine -1) draw from it at apply time, so they are
// deterministic per seed and per event order.
type Env struct {
	Net *net.Network
	Rng *sim.RNG
}

// Scope names the fabric elements one activation touched, resolved after
// random picks. The recovery analysis uses it to attribute detection signals
// (path-state transitions) to the failure that caused them.
type Scope struct {
	Spines []int `json:"spines,omitempty"`
	Leaves []int `json:"leaves,omitempty"`
}

// HasPath reports whether a path (spine*cables+cable) between monitor leaf
// and destination leaf falls inside the scope. Every populated dimension
// must match — a blackhole scoped to spine 0 between leaves 0 and 1 does
// not claim transitions on spine 1 just because they share a leaf — and an
// empty scope matches everything.
func (s Scope) HasPath(leaf, dst, path, cables int) bool {
	if cables < 1 {
		cables = 1
	}
	if len(s.Spines) > 0 {
		spine := path / cables
		hit := false
		for _, sp := range s.Spines {
			if sp == spine {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	if len(s.Leaves) > 0 {
		hit := false
		for _, l := range s.Leaves {
			if l == leaf || l == dst {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Injector is one composable failure. Apply installs it; Revert must
// restore the exact pre-Apply state (link rates, drop hooks), so injectors
// snapshot whatever they change. The runner never overlaps activations of
// the same injector, so Apply/Revert alternate strictly.
type Injector interface {
	// Kind is the stable failure-kind string ("blackhole", "random-drop", ...).
	Kind() string
	// Label describes the activation for logs and scorecards.
	Label() string
	// Validate checks parameters against the fabric before the run starts.
	Validate(env Env) error
	// Apply installs the failure. Random picks resolve here.
	Apply(env Env) error
	// Revert restores the pre-Apply state.
	Revert(env Env)
	// Scope reports what the failure touched; valid after Apply.
	Scope() Scope
}

// pickSpine resolves a spine index: -1 draws uniformly from the run RNG.
func pickSpine(env Env, spine int) int {
	if spine < 0 {
		return env.Rng.Intn(env.Net.Cfg.Spines)
	}
	return spine
}

func checkSpine(env Env, spine int, kind string) error {
	if spine < -1 || spine >= env.Net.Cfg.Spines {
		return fmt.Errorf("chaos: %s: spine %d out of range [0, %d) (-1 = random)",
			kind, spine, env.Net.Cfg.Spines)
	}
	return nil
}

func checkLeaf(env Env, leaf int, kind, field string) error {
	if leaf < 0 || leaf >= env.Net.Cfg.Leaves {
		return fmt.Errorf("chaos: %s: %s %d out of range [0, %d)",
			kind, field, leaf, env.Net.Cfg.Leaves)
	}
	return nil
}

// Blackhole drops traffic between half of the host pairs of a rack pair at
// one spine switch (§5.3.3's TCAM-deficit blackhole).
type Blackhole struct {
	Spine            int // -1 = random at apply time
	SrcLeaf, DstLeaf int

	spine int
	inner *failure.Blackhole
}

func (b *Blackhole) Kind() string { return "blackhole" }

func (b *Blackhole) Label() string {
	return fmt.Sprintf("blackhole(spine=%d, racks %d<->%d)", b.spine, b.SrcLeaf, b.DstLeaf)
}

func (b *Blackhole) Validate(env Env) error {
	if err := checkSpine(env, b.Spine, "blackhole"); err != nil {
		return err
	}
	if err := checkLeaf(env, b.SrcLeaf, "blackhole", "SrcLeaf"); err != nil {
		return err
	}
	if err := checkLeaf(env, b.DstLeaf, "blackhole", "DstLeaf"); err != nil {
		return err
	}
	if b.SrcLeaf == b.DstLeaf {
		return fmt.Errorf("chaos: blackhole: SrcLeaf and DstLeaf are both %d; need a rack pair", b.SrcLeaf)
	}
	return nil
}

func (b *Blackhole) Apply(env Env) error {
	b.spine = pickSpine(env, b.Spine)
	b.inner = &failure.Blackhole{
		Spine: env.Net.Spines[b.spine],
		Match: failure.RackPairBlackhole(env.Net, b.SrcLeaf, b.DstLeaf),
	}
	b.inner.Install()
	return nil
}

func (b *Blackhole) Revert(env Env) { b.inner.Uninstall() }

func (b *Blackhole) Scope() Scope {
	return Scope{Spines: []int{b.spine}, Leaves: []int{b.SrcLeaf, b.DstLeaf}}
}

// SpineBlackhole silently drops every packet transiting one spine switch
// while all its links stay up — the worst §5.3.3-class failure: routing
// still advertises the paths, so hash-based schemes keep sending into the
// hole and spray-based schemes lose packets on every flow.
type SpineBlackhole struct {
	Spine int // -1 = random at apply time

	spine int
	inner *failure.Blackhole
}

func (b *SpineBlackhole) Kind() string { return "spine-blackhole" }

func (b *SpineBlackhole) Label() string {
	return fmt.Sprintf("spine-blackhole(spine=%d)", b.spine)
}

func (b *SpineBlackhole) Validate(env Env) error {
	return checkSpine(env, b.Spine, "spine-blackhole")
}

func (b *SpineBlackhole) Apply(env Env) error {
	b.spine = pickSpine(env, b.Spine)
	b.inner = &failure.Blackhole{
		Spine: env.Net.Spines[b.spine],
		Match: func(src, dst int) bool { return true },
	}
	b.inner.Install()
	return nil
}

func (b *SpineBlackhole) Revert(env Env) { b.inner.Uninstall() }

func (b *SpineBlackhole) Scope() Scope { return Scope{Spines: []int{b.spine}} }

// RandomDrop silently drops each packet transiting one spine with the given
// probability (§5.3.3's 2% malfunction).
type RandomDrop struct {
	Spine int // -1 = random at apply time
	Rate  float64

	spine int
	inner *failure.RandomDrop
}

func (r *RandomDrop) Kind() string { return "random-drop" }

func (r *RandomDrop) Label() string {
	return fmt.Sprintf("random-drop(spine=%d, rate=%g)", r.spine, r.Rate)
}

func (r *RandomDrop) Validate(env Env) error {
	if err := checkSpine(env, r.Spine, "random-drop"); err != nil {
		return err
	}
	if r.Rate <= 0 || r.Rate > 1 {
		return fmt.Errorf("chaos: random-drop: rate %g out of range (0, 1]", r.Rate)
	}
	return nil
}

func (r *RandomDrop) Apply(env Env) error {
	r.spine = pickSpine(env, r.Spine)
	r.inner = &failure.RandomDrop{Spine: env.Net.Spines[r.spine], Rate: r.Rate, Rng: env.Rng}
	r.inner.Install()
	return nil
}

func (r *RandomDrop) Revert(env Env) { r.inner.Uninstall() }

func (r *RandomDrop) Scope() Scope { return Scope{Spines: []int{r.spine}} }

// Link re-rates every cable of one leaf-spine link to Bps (0 = cut the
// link), restoring the exact per-cable rates on revert.
type Link struct {
	Leaf, Spine int
	Bps         int64

	saved []int64
}

func (l *Link) Kind() string {
	if l.Bps == 0 {
		return "cut-link"
	}
	return "degrade-link"
}

func (l *Link) Label() string {
	return fmt.Sprintf("%s(leaf=%d, spine=%d, bps=%d)", l.Kind(), l.Leaf, l.Spine, l.Bps)
}

func (l *Link) Validate(env Env) error {
	if err := checkLeaf(env, l.Leaf, l.Kind(), "leaf"); err != nil {
		return err
	}
	if l.Spine < 0 || l.Spine >= env.Net.Cfg.Spines {
		return fmt.Errorf("chaos: %s: spine %d out of range [0, %d)",
			l.Kind(), l.Spine, env.Net.Cfg.Spines)
	}
	if l.Bps < 0 {
		return fmt.Errorf("chaos: %s: negative rate %d", l.Kind(), l.Bps)
	}
	return nil
}

func (l *Link) Apply(env Env) error {
	nw := env.Net
	l.saved = l.saved[:0]
	for c := 0; c < nw.Cables(); c++ {
		l.saved = append(l.saved, nw.CableRate(l.Leaf, l.Spine, c))
	}
	nw.SetFabricLink(l.Leaf, l.Spine, l.Bps)
	return nil
}

func (l *Link) Revert(env Env) {
	for c, bps := range l.saved {
		env.Net.SetCable(l.Leaf, l.Spine, c, bps)
	}
}

func (l *Link) Scope() Scope {
	return Scope{Spines: []int{l.Spine}, Leaves: []int{l.Leaf}}
}

// CutCable removes one physical cable of a leaf-spine link (the testbed
// Fig 8b cut), restoring its rate on revert.
type CutCable struct {
	Leaf, Spine, Cable int

	saved int64
}

func (c *CutCable) Kind() string { return "cut-cable" }

func (c *CutCable) Label() string {
	return fmt.Sprintf("cut-cable(leaf=%d, spine=%d, cable=%d)", c.Leaf, c.Spine, c.Cable)
}

func (c *CutCable) Validate(env Env) error {
	if err := checkLeaf(env, c.Leaf, "cut-cable", "leaf"); err != nil {
		return err
	}
	if c.Spine < 0 || c.Spine >= env.Net.Cfg.Spines {
		return fmt.Errorf("chaos: cut-cable: spine %d out of range [0, %d)",
			c.Spine, env.Net.Cfg.Spines)
	}
	if c.Cable < 0 || c.Cable >= env.Net.Cables() {
		return fmt.Errorf("chaos: cut-cable: cable %d out of range [0, %d)",
			c.Cable, env.Net.Cables())
	}
	return nil
}

func (c *CutCable) Apply(env Env) error {
	c.saved = env.Net.CableRate(c.Leaf, c.Spine, c.Cable)
	env.Net.SetCable(c.Leaf, c.Spine, c.Cable, 0)
	return nil
}

func (c *CutCable) Revert(env Env) {
	env.Net.SetCable(c.Leaf, c.Spine, c.Cable, c.saved)
}

func (c *CutCable) Scope() Scope {
	return Scope{Spines: []int{c.Spine}, Leaves: []int{c.Leaf}}
}

// DegradeFraction re-rates a random fraction of all leaf-spine links to Bps
// (§5.3.2's 20%-of-links asymmetry), selected by the run RNG at apply time
// and restored exactly on revert.
type DegradeFraction struct {
	Fraction float64
	Bps      int64

	links [][2]int
	saved [][]int64
}

func (d *DegradeFraction) Kind() string { return "degrade" }

func (d *DegradeFraction) Label() string {
	return fmt.Sprintf("degrade(fraction=%g, bps=%d, links=%d)", d.Fraction, d.Bps, len(d.links))
}

func (d *DegradeFraction) Validate(env Env) error {
	if d.Fraction <= 0 || d.Fraction > 1 {
		return fmt.Errorf("chaos: degrade: fraction %g out of range (0, 1]", d.Fraction)
	}
	if d.Bps < 0 {
		return fmt.Errorf("chaos: degrade: negative rate %d", d.Bps)
	}
	return nil
}

func (d *DegradeFraction) Apply(env Env) error {
	nw := env.Net
	total := nw.Cfg.Leaves * nw.Cfg.Spines
	n := int(d.Fraction * float64(total))
	perm := env.Rng.Perm(total)
	d.links = d.links[:0]
	d.saved = d.saved[:0]
	for i := 0; i < n; i++ {
		l, s := perm[i]/nw.Cfg.Spines, perm[i]%nw.Cfg.Spines
		rates := make([]int64, nw.Cables())
		for c := range rates {
			rates[c] = nw.CableRate(l, s, c)
		}
		d.links = append(d.links, [2]int{l, s})
		d.saved = append(d.saved, rates)
		nw.SetFabricLink(l, s, d.Bps)
	}
	return nil
}

func (d *DegradeFraction) Revert(env Env) {
	for i, lk := range d.links {
		for c, bps := range d.saved[i] {
			env.Net.SetCable(lk[0], lk[1], c, bps)
		}
	}
}

func (d *DegradeFraction) Scope() Scope {
	var sc Scope
	spines := map[int]bool{}
	leaves := map[int]bool{}
	for _, lk := range d.links {
		leaves[lk[0]] = true
		spines[lk[1]] = true
	}
	for s := range spines {
		sc.Spines = append(sc.Spines, s)
	}
	for l := range leaves {
		sc.Leaves = append(sc.Leaves, l)
	}
	sort.Ints(sc.Spines)
	sort.Ints(sc.Leaves)
	return sc
}

// DegradeSpine re-rates every link of one spine switch (§2.1's
// heterogeneous-device asymmetry: one slower spine tier).
type DegradeSpine struct {
	Spine int // -1 = random at apply time
	Bps   int64

	spine int
	saved [][]int64 // per leaf, per cable
}

func (d *DegradeSpine) Kind() string { return "degrade-spine" }

func (d *DegradeSpine) Label() string {
	return fmt.Sprintf("degrade-spine(spine=%d, bps=%d)", d.spine, d.Bps)
}

func (d *DegradeSpine) Validate(env Env) error {
	if err := checkSpine(env, d.Spine, "degrade-spine"); err != nil {
		return err
	}
	if d.Bps < 0 {
		return fmt.Errorf("chaos: degrade-spine: negative rate %d", d.Bps)
	}
	return nil
}

func (d *DegradeSpine) Apply(env Env) error {
	nw := env.Net
	d.spine = pickSpine(env, d.Spine)
	d.saved = d.saved[:0]
	for l := 0; l < nw.Cfg.Leaves; l++ {
		rates := make([]int64, nw.Cables())
		for c := range rates {
			rates[c] = nw.CableRate(l, d.spine, c)
		}
		d.saved = append(d.saved, rates)
		nw.SetFabricLink(l, d.spine, d.Bps)
	}
	return nil
}

func (d *DegradeSpine) Revert(env Env) {
	for l, rates := range d.saved {
		for c, bps := range rates {
			env.Net.SetCable(l, d.spine, c, bps)
		}
	}
}

func (d *DegradeSpine) Scope() Scope { return Scope{Spines: []int{d.spine}} }

// SwitchDown takes a whole switch out of service: every attached fabric
// link is cut (packets en route to its ports drop as down-link drops) and a
// drop-all hook swallows anything already transiting the device — for a
// leaf, that includes intra-rack traffic. Revert restores the exact link
// rates and removes the hook.
type SwitchDown struct {
	Leaf  bool // true: Index is a leaf switch, false: a spine
	Index int  // -1 = random at apply time (spine or leaf per Leaf)

	index int
	hook  int
	saved [][]int64
}

func (s *SwitchDown) Kind() string {
	if s.Leaf {
		return "leaf-down"
	}
	return "spine-down"
}

func (s *SwitchDown) Label() string {
	return fmt.Sprintf("%s(index=%d)", s.Kind(), s.index)
}

func (s *SwitchDown) Validate(env Env) error {
	n := env.Net.Cfg.Spines
	if s.Leaf {
		n = env.Net.Cfg.Leaves
	}
	if s.Index < -1 || s.Index >= n {
		return fmt.Errorf("chaos: %s: index %d out of range [0, %d) (-1 = random)",
			s.Kind(), s.Index, n)
	}
	return nil
}

func (s *SwitchDown) Apply(env Env) error {
	nw := env.Net
	var sw *net.Switch
	s.saved = s.saved[:0]
	if s.Leaf {
		s.index = s.Index
		if s.index < 0 {
			s.index = env.Rng.Intn(nw.Cfg.Leaves)
		}
		sw = nw.Leaves[s.index]
		for sp := 0; sp < nw.Cfg.Spines; sp++ {
			rates := make([]int64, nw.Cables())
			for c := range rates {
				rates[c] = nw.CableRate(s.index, sp, c)
			}
			s.saved = append(s.saved, rates)
			nw.SetFabricLink(s.index, sp, 0)
		}
	} else {
		s.index = pickSpine(env, s.Index)
		sw = nw.Spines[s.index]
		for l := 0; l < nw.Cfg.Leaves; l++ {
			rates := make([]int64, nw.Cables())
			for c := range rates {
				rates[c] = nw.CableRate(l, s.index, c)
			}
			s.saved = append(s.saved, rates)
			nw.SetFabricLink(l, s.index, 0)
		}
	}
	s.hook = sw.AddDropFn(func(*net.Packet) bool { return true })
	return nil
}

func (s *SwitchDown) Revert(env Env) {
	nw := env.Net
	if s.Leaf {
		nw.Leaves[s.index].RemoveDropFn(s.hook)
		for sp, rates := range s.saved {
			for c, bps := range rates {
				nw.SetCable(s.index, sp, c, bps)
			}
		}
		return
	}
	nw.Spines[s.index].RemoveDropFn(s.hook)
	for l, rates := range s.saved {
		for c, bps := range rates {
			nw.SetCable(l, s.index, c, bps)
		}
	}
}

func (s *SwitchDown) Scope() Scope {
	if s.Leaf {
		return Scope{Leaves: []int{s.index}}
	}
	return Scope{Spines: []int{s.index}}
}
