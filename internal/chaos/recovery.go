package chaos

import (
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// Recovery computation defaults.
const (
	// DefaultBaselineWindowNs is how far before each onset the goodput
	// baseline is averaged.
	DefaultBaselineWindowNs = int64(5e6)
	// DefaultDipThreshold is the fractional goodput drop below baseline
	// that counts as a dip.
	DefaultDipThreshold = 0.10
	// DefaultSmooth is the centered moving-average window (samples) applied
	// to the goodput series before dip detection.
	DefaultSmooth = 9
)

// Options parameterizes Compute.
type Options struct {
	// Cables is the fabric's cables-per-link count (for mapping transition
	// path indices to spines).
	Cables int
	// TrafficEndNs clamps dip and re-convergence windows: past the last
	// flow arrival goodput falls to zero for every scheme, which is not a
	// failure dip. 0 = the recording's last sample.
	TrafficEndNs int64
	// BaselineWindowNs, DipThreshold, Smooth default to the package
	// constants when zero.
	BaselineWindowNs int64
	DipThreshold     float64
	Smooth           int
}

// EventRecovery scores one failure activation. Durations are -1 when the
// signal never appeared (e.g. a scheme with no failure detection never
// "detects"; a dip that never recovers has ReconvergeNs -1).
type EventRecovery struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Label   string `json:"label"`
	Cycle   int    `json:"cycle,omitempty"`
	OnsetNs int64  `json:"onset_ns"`
	ClearNs int64  `json:"clear_ns"` // -1 = never cleared

	// TimeToDetectNs is onset -> first in-scope path-state transition into a
	// degraded state, gray or failed (Hermes's sense-making; ordinary
	// congested transitions do not count; -1 for schemes without detection).
	TimeToDetectNs int64 `json:"time_to_detect_ns"`
	// TimeToRerouteNs is onset -> first increase of the Hermes
	// timeout+failure reroute counters (the first flow actually moved off
	// a sick path). Healthy-congestion RTOs can only shrink this value.
	TimeToRerouteNs int64 `json:"time_to_reroute_ns"`

	// BaselineGbps is the smoothed pre-onset goodput the dip is measured
	// against (0 when no baseline window exists, e.g. onset at t=0; dip
	// fields are -1/0 then).
	BaselineGbps float64 `json:"baseline_gbps"`
	// DipDepth is the worst fractional goodput drop below baseline during
	// the dip (0 = rode through; 1 = total stall).
	DipDepth float64 `json:"dip_depth"`
	// DipDurationNs is how long goodput stayed below the dip threshold
	// (0 = never dipped; clamped to the traffic window).
	DipDurationNs int64 `json:"dip_duration_ns"`
	// DipIntegralGbpsMs integrates the goodput deficit below baseline over
	// the dip: the capacity the failure actually cost, in Gbps·ms.
	DipIntegralGbpsMs float64 `json:"dip_integral_gbps_ms"`

	// ReconvergeNs is clear -> goodput back above the dip threshold
	// (-1 = never within the traffic window, or never cleared).
	ReconvergeNs int64 `json:"reconverge_ns"`
	// PathRestoreNs is clear -> first in-scope transition out of the
	// failed state (the scheme noticed the path came back; -1 = never:
	// sticky avoidance or no detection at all).
	PathRestoreNs int64 `json:"path_restore_ns"`
}

// Recovery is the per-run resilience report: one entry per activation.
type Recovery struct {
	Scenario     string          `json:"scenario"`
	TrafficEndNs int64           `json:"traffic_end_ns"`
	Events       []EventRecovery `json:"events"`
}

// Compute scores every activation in the log against the flight recording.
// It is a pure function of (recording, log, opts), so identical runs yield
// byte-identical recoveries.
func Compute(rec *timeseries.Recorder, log []*Applied, opts Options) *Recovery {
	if opts.BaselineWindowNs <= 0 {
		opts.BaselineWindowNs = DefaultBaselineWindowNs
	}
	if opts.DipThreshold <= 0 {
		opts.DipThreshold = DefaultDipThreshold
	}
	if opts.Smooth <= 0 {
		opts.Smooth = DefaultSmooth
	}
	if opts.Cables < 1 {
		opts.Cables = 1
	}

	times := rec.Times()
	if opts.TrafficEndNs <= 0 && len(times) > 0 {
		opts.TrafficEndNs = times[len(times)-1]
	}
	goodput := smooth(rec.Series("net.goodput_gbps"), opts.Smooth)
	reroutes := sumSeries(rec.Series("hermes.timeout_reroutes_total"),
		rec.Series("hermes.failure_reroutes_total"))

	out := &Recovery{TrafficEndNs: opts.TrafficEndNs}
	for _, a := range log {
		er := EventRecovery{
			Name: a.Name, Kind: a.Kind, Label: a.Label, Cycle: a.Cycle,
			OnsetNs: a.OnsetNs, ClearNs: a.ClearNs,
			TimeToDetectNs: -1, TimeToRerouteNs: -1,
			DipDurationNs: -1, ReconvergeNs: -1, PathRestoreNs: -1,
		}
		er.TimeToDetectNs = detect(rec.Transitions(), a, opts.Cables)
		er.TimeToRerouteNs = firstIncrease(times, reroutes, a.OnsetNs)
		scoreDip(&er, times, goodput, opts)
		if a.ClearNs >= 0 {
			er.PathRestoreNs = restore(rec.Transitions(), a, opts.Cables)
		}
		out.Events = append(out.Events, er)
	}
	return out
}

// smooth applies a centered moving average of window w (clamped odd).
func smooth(xs []float64, w int) []float64 {
	if len(xs) == 0 || w <= 1 {
		return xs
	}
	if w%2 == 0 {
		w++
	}
	half := w / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

func sumSeries(a, b []float64) []float64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i]
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

// detect returns onset -> first in-scope transition into a degraded state
// (gray or failed), -1 if none. Transitions into "congested" are ordinary
// load sensing, not failure detection, so they never count.
func detect(trs []timeseries.Transition, a *Applied, cables int) int64 {
	for _, tr := range trs {
		if tr.AtNs < a.OnsetNs || (tr.To != "gray" && tr.To != "failed") {
			continue
		}
		if a.Scope.HasPath(tr.Leaf, tr.Dst, tr.Path, cables) {
			return tr.AtNs - a.OnsetNs
		}
	}
	return -1
}

// restore returns clear -> first in-scope transition out of failed, -1 if
// none.
func restore(trs []timeseries.Transition, a *Applied, cables int) int64 {
	for _, tr := range trs {
		if tr.AtNs < a.ClearNs || tr.From != "failed" || tr.To == "failed" {
			continue
		}
		if a.Scope.HasPath(tr.Leaf, tr.Dst, tr.Path, cables) {
			return tr.AtNs - a.ClearNs
		}
	}
	return -1
}

// firstIncrease returns fromNs -> the first sample where the cumulative
// series exceeds its last pre-onset value, -1 if never. When the recorder's
// ring has already evicted every pre-onset sample the base is unknowable, so
// the answer is -1 rather than an eviction artifact.
func firstIncrease(times []int64, series []float64, fromNs int64) int64 {
	if len(series) == 0 || len(times) == 0 || times[0] > fromNs {
		return -1
	}
	base := 0.0
	for i, at := range times {
		if i >= len(series) {
			break
		}
		if at < fromNs {
			base = series[i]
			continue
		}
		if series[i] > base {
			return at - fromNs
		}
	}
	return -1
}

// scoreDip fills the goodput-dip block of er from the smoothed series.
func scoreDip(er *EventRecovery, times []int64, goodput []float64, opts Options) {
	if len(goodput) == 0 || len(times) == 0 {
		return
	}
	// Baseline: mean over [onset-window, onset).
	var sum float64
	var n int
	for i, at := range times {
		if i >= len(goodput) {
			break
		}
		if at >= er.OnsetNs-opts.BaselineWindowNs && at < er.OnsetNs {
			sum += goodput[i]
			n++
		}
	}
	if n < 3 || sum <= 0 {
		return // onset too early for a baseline; dip metrics stay unset
	}
	baseline := sum / float64(n)
	er.BaselineGbps = baseline
	floor := baseline * (1 - opts.DipThreshold)

	// Dip: first sub-floor sample in [onset, trafficEnd], until recovery.
	dipStart, dipEnd := -1, -1
	endIdx := -1
	for i, at := range times {
		if i >= len(goodput) || at > opts.TrafficEndNs {
			break
		}
		endIdx = i
		if at < er.OnsetNs {
			continue
		}
		if dipStart < 0 {
			if goodput[i] < floor {
				dipStart = i
			}
			continue
		}
		if dipEnd < 0 && goodput[i] >= floor {
			dipEnd = i
			break
		}
	}
	if dipStart < 0 {
		er.DipDurationNs = 0 // rode through the failure
	} else {
		if dipEnd < 0 {
			dipEnd = endIdx // still dipped when traffic ended
		}
		er.DipDurationNs = times[dipEnd] - times[dipStart]
		for i := dipStart; i <= dipEnd; i++ {
			if depth := (baseline - goodput[i]) / baseline; depth > er.DipDepth {
				er.DipDepth = depth
			}
			if i > dipStart {
				dt := float64(times[i] - times[i-1])
				deficit := baseline - (goodput[i]+goodput[i-1])/2
				if deficit > 0 {
					er.DipIntegralGbpsMs += deficit * dt / 1e6
				}
			}
		}
	}

	// Re-convergence after an explicit clear: goodput back above the floor.
	if er.ClearNs >= 0 && er.ClearNs <= opts.TrafficEndNs {
		for i, at := range times {
			if i >= len(goodput) || at > opts.TrafficEndNs {
				break
			}
			if at >= er.ClearNs && goodput[i] >= floor {
				er.ReconvergeNs = at - er.ClearNs
				break
			}
		}
	}
}
