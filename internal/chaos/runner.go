package chaos

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Applied is one activation of an injector: when it came up, when it was
// cleared (-1 = still active at run end), and what it touched. The recovery
// analysis scores each Applied independently.
type Applied struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Label   string `json:"label"`
	Cycle   int    `json:"cycle"` // 0 for one-shots, cycle number for repeats
	OnsetNs int64  `json:"onset_ns"`
	ClearNs int64  `json:"clear_ns"` // -1 while active at run end
	Scope   Scope  `json:"scope"`
}

// Runner schedules a Scenario's events on the simulation engine and keeps
// the activation log. Install before traffic starts; Finish after the run
// to collect scheduling errors (events that never fired because the run
// ended first, clears of inactive injections).
type Runner struct {
	Env      Env
	Scenario *Scenario

	// Log records every activation in onset order.
	Log []*Applied

	// OnEvent, when set, observes every activation (cleared=false, right
	// after Apply) and clear (cleared=true, right after Revert) — the hook
	// the facade uses to stamp chaos events into the telemetry audit log.
	OnEvent func(a *Applied, cleared bool)

	active map[string]*Applied
	fired  []bool
	errs   []error
}

// NewRunner builds a runner for the scenario over the fabric.
func NewRunner(env Env, s *Scenario) *Runner {
	return &Runner{Env: env, Scenario: s, active: map[string]*Applied{}}
}

// Install validates the scenario and schedules its events. Returns an error
// on a malformed scenario; nothing is scheduled in that case.
func (r *Runner) Install(eng *sim.Engine) error {
	s := r.Scenario
	s.normalize()
	if err := s.Validate(r.Env); err != nil {
		return err
	}
	r.fired = make([]bool, len(s.Events))
	for i := range s.Events {
		i := i
		eng.AtKind(s.Events[i].At, sim.KindChaos, func() { r.fire(eng, i, 0) })
	}
	return nil
}

func (r *Runner) fire(eng *sim.Engine, i, cycle int) {
	ev := &r.Scenario.Events[i]
	r.fired[i] = true
	now := eng.Now()

	if ev.Clear != "" {
		r.clear(ev.Clear, now)
		return
	}

	if r.active[ev.Name] != nil {
		r.errs = append(r.errs, fmt.Errorf(
			"chaos: event %q fired at %d while still active", ev.Name, now))
	} else if err := ev.Inject.Apply(r.Env); err != nil {
		r.errs = append(r.errs, fmt.Errorf("chaos: event %q at %d: %w", ev.Name, now, err))
	} else {
		rec := &Applied{
			Name: ev.Name, Kind: ev.Inject.Kind(), Label: ev.Inject.Label(),
			Cycle: cycle, OnsetNs: int64(now), ClearNs: -1, Scope: ev.Inject.Scope(),
		}
		r.Log = append(r.Log, rec)
		r.active[ev.Name] = rec
		if r.OnEvent != nil {
			r.OnEvent(rec, false)
		}
		if ev.Duration > 0 {
			eng.ScheduleKind(ev.Duration, sim.KindChaos, func() { r.clear(ev.Name, eng.Now()) })
		}
	}

	if ev.Every > 0 && (ev.Count == 0 || cycle+1 < ev.Count) {
		eng.ScheduleKind(ev.Every, sim.KindChaos, func() { r.fire(eng, i, cycle+1) })
	}
}

func (r *Runner) clear(name string, now sim.Time) {
	rec := r.active[name]
	if rec == nil {
		r.errs = append(r.errs, fmt.Errorf(
			"chaos: clear of %q at %d: not active", name, now))
		return
	}
	ev := r.eventByName(name)
	ev.Inject.Revert(r.Env)
	rec.ClearNs = int64(now)
	delete(r.active, name)
	if r.OnEvent != nil {
		r.OnEvent(rec, true)
	}
}

func (r *Runner) eventByName(name string) *Event {
	for i := range r.Scenario.Events {
		if r.Scenario.Events[i].Name == name && r.Scenario.Events[i].Inject != nil {
			return &r.Scenario.Events[i]
		}
	}
	return nil
}

// ActiveCount returns the number of currently applied injections.
func (r *Runner) ActiveCount() int { return len(r.active) }

// Dump is the runner's checkpoint-visible state: how many timeline events
// have fired, the full activation log so far, and the currently active
// scopes sorted by name. Everything in it is deterministic per seed.
type Dump struct {
	FiredEvents int        `json:"fired_events"`
	Log         []*Applied `json:"log"`
	Active      []*Applied `json:"active"`
}

// Dump captures the runner state; read-only. Active entries alias the Log
// records (same ClearNs=-1 view the recovery analysis sees).
func (r *Runner) Dump() *Dump {
	d := &Dump{}
	for _, f := range r.fired {
		if f {
			d.FiredEvents++
		}
	}
	d.Log = append(d.Log, r.Log...)
	for _, rec := range r.Log {
		if rec.ClearNs < 0 {
			d.Active = append(d.Active, rec)
		}
	}
	return d
}

// Finish collects the run-end errors: every one-shot event that never fired
// was scheduled past the end of the run — a scenario bug the caller must
// surface — plus any mid-run scheduling errors. Repeating events only need
// their first cycle to have fired.
func (r *Runner) Finish(now sim.Time) []error {
	errs := append([]error(nil), r.errs...)
	for i := range r.Scenario.Events {
		if r.fired[i] {
			continue
		}
		ev := &r.Scenario.Events[i]
		what := ev.Name
		if ev.Clear != "" {
			what = "clear of " + ev.Clear
		}
		errs = append(errs, fmt.Errorf(
			"chaos: scenario %q: event %q scheduled at %d never fired (run ended at %d)",
			r.Scenario.Name, what, ev.At, now))
	}
	return errs
}
