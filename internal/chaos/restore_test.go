package chaos

import (
	"encoding/json"
	"testing"

	"github.com/hermes-repro/hermes/internal/core"
	"github.com/hermes-repro/hermes/internal/lb"
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/transport"
)

// spreadBal deterministically spreads flows over paths so several paths
// carry armed RTO timers.
type spreadBal struct {
	transport.BaseBalancer
	npaths int
}

func (spreadBal) Name() string                       { return "spread" }
func (b spreadBal) SelectPath(f *transport.Flow) int { return int(f.ID) % b.npaths }
func (spreadBal) OnSent(*transport.Flow, int, int)   {}
func (spreadBal) OnFlowStart(*transport.Flow)        {}

// richEnv builds a fabric with live transport flows (armed RTO timers), a
// populated Hermes path-state table and warmed REPS entropy caches — the
// state surfaces the PR 5 contract test did not cover.
func richEnv(t *testing.T) (Env, *transport.Transport, *core.Monitor, *lb.Reps) {
	t.Helper()
	env := testEnv(t)
	nw := env.Net

	reps := lb.NewReps(nw, 0)
	tr := transport.New(nw, transport.DefaultOptions(), func(h *net.Host) transport.Balancer {
		return spreadBal{npaths: nw.NPaths()}
	})
	mon := core.NewMonitor(nw, 0, core.DefaultParams(nw))

	// Start cross-rack flows and run briefly: mid-flight flows carry pending
	// RTO timers at absolute virtual deadlines.
	for i := 0; i < 8; i++ {
		src := i % nw.Cfg.HostsPerLeaf                       // leaf 0
		dst := nw.Cfg.HostsPerLeaf*3 + i%nw.Cfg.HostsPerLeaf // leaf 3
		tr.StartFlow(src, dst, 200_000)
	}
	nw.Eng.Run(2 * sim.Millisecond)
	if tr.ActiveCount() == 0 {
		t.Fatal("test traffic drained before the contract check; raise flow sizes")
	}

	// Feed the monitor a deterministic signal mix so its table has EWMA
	// state, window counters and one quarantined path.
	for p := 0; p < nw.NPaths(); p++ {
		mon.OnSent(3, p, net.MSS)
		mon.OnDelivery(3, p, p%2 == 0, sim.Time(50_000+1000*p))
	}
	for i := 0; i < 4; i++ {
		mon.OnTimeout(3, 1)
	}
	mon.OnRetransmit(3, 2)

	// Warm the REPS caches through the balancer's own signal path.
	f := &transport.Flow{SrcLeaf: 0, DstLeaf: 3}
	for p := 0; p < nw.NPaths(); p++ {
		reps.OnAck(f, transport.AckEvent{Path: p})
	}
	reps.SelectPath(f)
	reps.OnTimeout(f, 0)
	return env, tr, mon, reps
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestInjectorsPreserveHigherLayerState extends the exact-restore contract
// beyond cable rates and drop hooks: an injector's Apply+Revert must leave
// the transport layer (flows and their RTO timers), the Hermes path-state
// tables and the REPS entropy caches byte-identically untouched — failures
// live in the fabric, never in the schemes' heads.
func TestInjectorsPreserveHigherLayerState(t *testing.T) {
	injectors := []Injector{
		&Blackhole{Spine: 1, SrcLeaf: 0, DstLeaf: 3},
		&SpineBlackhole{Spine: 2},
		&SpineBlackhole{Spine: -1},
		&RandomDrop{Spine: -1, Rate: 0.02},
		&Link{Leaf: 1, Spine: 2, Bps: 0},
		&Link{Leaf: 0, Spine: 0, Bps: 1e6},
		&CutCable{Leaf: 1, Spine: 1, Cable: 1},
		&DegradeFraction{Fraction: 0.25, Bps: 1e8},
		&DegradeSpine{Spine: 3, Bps: 1e8},
		&SwitchDown{Leaf: false, Index: 2},
		&SwitchDown{Leaf: true, Index: 1},
	}
	for _, inj := range injectors {
		env, tr, mon, reps := richEnv(t)
		beforeNet := mustJSON(t, env.Net.Dump())
		beforeTr := mustJSON(t, tr.Dump())
		beforeMon := mustJSON(t, mon.Dump())
		beforeReps := mustJSON(t, reps.Dump())

		if err := inj.Validate(env); err != nil {
			t.Fatalf("%T validate: %v", inj, err)
		}
		if err := inj.Apply(env); err != nil {
			t.Fatalf("%T apply: %v", inj, err)
		}
		inj.Revert(env)

		if got := mustJSON(t, tr.Dump()); got != beforeTr {
			t.Errorf("%s: transport state (flows/RTO timers) changed across Apply/Revert:\n before %s\n after  %s",
				inj.Kind(), beforeTr, got)
		}
		if got := mustJSON(t, mon.Dump()); got != beforeMon {
			t.Errorf("%s: Hermes path-state table changed across Apply/Revert:\n before %s\n after  %s",
				inj.Kind(), beforeMon, got)
		}
		if got := mustJSON(t, reps.Dump()); got != beforeReps {
			t.Errorf("%s: REPS entropy caches changed across Apply/Revert:\n before %s\n after  %s",
				inj.Kind(), beforeReps, got)
		}
		if got := mustJSON(t, env.Net.Dump()); got != beforeNet {
			t.Errorf("%s: fabric dump changed across Apply/Revert:\n before %s\n after  %s",
				inj.Kind(), beforeNet, got)
		}
	}
}
