package chaos

import (
	"strings"
	"testing"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	eng := sim.NewEngine()
	nw, err := net.NewLeafSpine(eng, sim.NewRNG(1), net.Config{
		Leaves: 4, Spines: 4, HostsPerLeaf: 4, CablesPerLink: 2,
		HostRateBps: 1e9, FabricRateBps: 1e9, HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Env{Net: nw, Rng: sim.NewRNG(2)}
}

// snapshotRates captures every cable rate of the fabric.
func snapshotRates(nw *net.Network) map[[3]int]int64 {
	out := map[[3]int]int64{}
	for l := 0; l < nw.Cfg.Leaves; l++ {
		for s := 0; s < nw.Cfg.Spines; s++ {
			for c := 0; c < nw.Cables(); c++ {
				out[[3]int{l, s, c}] = nw.CableRate(l, s, c)
			}
		}
	}
	return out
}

func dropFnCount(nw *net.Network) int {
	n := 0
	for _, sw := range nw.Leaves {
		n += sw.DropFnCount()
	}
	for _, sw := range nw.Spines {
		n += sw.DropFnCount()
	}
	return n
}

// TestInjectorsRestoreExactState is the clear/restore contract: after
// Apply+Revert every cable rate and every switch's drop-hook count must
// equal the pre-injection state, for every injector kind.
func TestInjectorsRestoreExactState(t *testing.T) {
	injectors := []Injector{
		&Blackhole{Spine: 1, SrcLeaf: 0, DstLeaf: 3},
		&SpineBlackhole{Spine: 2},
		&SpineBlackhole{Spine: -1},
		&RandomDrop{Spine: -1, Rate: 0.02},
		&Link{Leaf: 1, Spine: 2, Bps: 0},
		&Link{Leaf: 0, Spine: 0, Bps: 1e6},
		&CutCable{Leaf: 1, Spine: 1, Cable: 1},
		&DegradeFraction{Fraction: 0.25, Bps: 1e8},
		&DegradeSpine{Spine: 3, Bps: 1e8},
		&SwitchDown{Leaf: false, Index: 2},
		&SwitchDown{Leaf: true, Index: 1},
	}
	for _, inj := range injectors {
		env := testEnv(t)
		// Pre-degrade one unrelated cable so "restore" cannot be confused
		// with "reset to config default".
		env.Net.SetCable(3, 3, 1, 5e8)
		before := snapshotRates(env.Net)
		hooks := dropFnCount(env.Net)
		if err := inj.Validate(env); err != nil {
			t.Fatalf("%T validate: %v", inj, err)
		}
		if err := inj.Apply(env); err != nil {
			t.Fatalf("%T apply: %v", inj, err)
		}
		inj.Revert(env)
		after := snapshotRates(env.Net)
		for k, v := range before {
			if after[k] != v {
				t.Errorf("%s: cable %v = %d after revert, want %d", inj.Kind(), k, after[k], v)
			}
		}
		if got := dropFnCount(env.Net); got != hooks {
			t.Errorf("%s: %d drop hooks after revert, want %d", inj.Kind(), got, hooks)
		}
	}
}

// TestInjectorApplyRevertCycles exercises re-activation (flap cycles reuse
// one injector instance): state must round-trip every cycle.
func TestInjectorApplyRevertCycles(t *testing.T) {
	env := testEnv(t)
	inj := &Link{Leaf: 0, Spine: 1, Bps: 1e6}
	before := snapshotRates(env.Net)
	for cycle := 0; cycle < 3; cycle++ {
		if err := inj.Apply(env); err != nil {
			t.Fatal(err)
		}
		if got := env.Net.FabricLinkRate(0, 1); got != 2e6 {
			t.Fatalf("cycle %d: degraded link rate %d, want 2e6 (2 cables x 1e6)", cycle, got)
		}
		inj.Revert(env)
		for k, v := range before {
			if got := env.Net.CableRate(k[0], k[1], k[2]); got != v {
				t.Fatalf("cycle %d: cable %v = %d, want %d", cycle, k, got, v)
			}
		}
	}
}

func TestInjectorValidation(t *testing.T) {
	env := testEnv(t)
	bad := []Injector{
		&Blackhole{Spine: 4, SrcLeaf: 0, DstLeaf: 3},  // spine out of range
		&Blackhole{Spine: -2, SrcLeaf: 0, DstLeaf: 3}, // below -1
		&Blackhole{Spine: 0, SrcLeaf: 0, DstLeaf: 4},  // leaf out of range
		&Blackhole{Spine: 0, SrcLeaf: 2, DstLeaf: 2},  // same rack
		&SpineBlackhole{Spine: 4},
		&SpineBlackhole{Spine: -2},
		&RandomDrop{Spine: 0, Rate: -0.1},
		&RandomDrop{Spine: 0, Rate: 1.5},
		&Link{Leaf: -1, Spine: 0, Bps: 0},
		&Link{Leaf: 0, Spine: 9, Bps: 0},
		&Link{Leaf: 0, Spine: 0, Bps: -5},
		&CutCable{Leaf: 0, Spine: 0, Cable: 2}, // only 2 cables
		&DegradeFraction{Fraction: 0, Bps: 1e8},
		&DegradeFraction{Fraction: 1.2, Bps: 1e8},
		&DegradeSpine{Spine: 0, Bps: -1},
		&SwitchDown{Leaf: true, Index: 4},
		&SwitchDown{Leaf: false, Index: 17},
	}
	for _, inj := range bad {
		if err := inj.Validate(env); err == nil {
			t.Errorf("%T %+v: validation passed, want error", inj, inj)
		}
	}
}

// TestRunnerTimeline drives a two-failure scenario with overlap: a blackhole
// from 1ms to 5ms and a random drop from 2ms to 6ms, both on spine 0 — the
// co-residency the drop-hook chain exists for.
func TestRunnerTimeline(t *testing.T) {
	env := testEnv(t)
	sc := &Scenario{Name: "two-failures", Events: []Event{
		At(1*sim.Millisecond, "bh", &Blackhole{Spine: 0, SrcLeaf: 0, DstLeaf: 3}),
		At(2*sim.Millisecond, "rd", &RandomDrop{Spine: 0, Rate: 0.5}),
		ClearAt(5*sim.Millisecond, "bh"),
		ClearAt(6*sim.Millisecond, "rd"),
	}}
	r := NewRunner(env, sc)
	eng := env.Net.Eng
	if err := r.Install(eng); err != nil {
		t.Fatal(err)
	}
	eng.Run(3 * sim.Millisecond)
	if got := env.Net.Spines[0].DropFnCount(); got != 2 {
		t.Fatalf("spine0 has %d drop hooks during overlap, want 2", got)
	}
	if r.ActiveCount() != 2 {
		t.Fatalf("ActiveCount = %d during overlap, want 2", r.ActiveCount())
	}
	eng.Run(10 * sim.Millisecond)
	if got := env.Net.Spines[0].DropFnCount(); got != 0 {
		t.Fatalf("spine0 has %d drop hooks after clears, want 0", got)
	}
	if errs := r.Finish(eng.Now()); len(errs) != 0 {
		t.Fatalf("Finish errors: %v", errs)
	}
	if len(r.Log) != 2 {
		t.Fatalf("log has %d activations, want 2", len(r.Log))
	}
	bh := r.Log[0]
	if bh.Name != "bh" || bh.OnsetNs != 1e6 || bh.ClearNs != 5e6 {
		t.Fatalf("blackhole activation = %+v", *bh)
	}
	if len(bh.Scope.Spines) != 1 || bh.Scope.Spines[0] != 0 {
		t.Fatalf("blackhole scope = %+v", bh.Scope)
	}
}

// TestRunnerOnEvent: the observer hook sees every activation and clear, in
// timeline order, with the cleared flag distinguishing the two.
func TestRunnerOnEvent(t *testing.T) {
	env := testEnv(t)
	sc := &Scenario{Name: "observed", Events: []Event{
		At(1*sim.Millisecond, "bh", &Blackhole{Spine: 0, SrcLeaf: 0, DstLeaf: 3}),
		ClearAt(4*sim.Millisecond, "bh"),
	}}
	r := NewRunner(env, sc)
	type seen struct {
		name    string
		cleared bool
		at      int64
	}
	var events []seen
	r.OnEvent = func(a *Applied, cleared bool) {
		at := a.OnsetNs
		if cleared {
			at = a.ClearNs
		}
		events = append(events, seen{a.Name, cleared, at})
	}
	eng := env.Net.Eng
	if err := r.Install(eng); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * sim.Millisecond)
	want := []seen{{"bh", false, 1e6}, {"bh", true, 4e6}}
	if len(events) != len(want) {
		t.Fatalf("observed %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestRunnerFlap checks the repeating-event machinery that replaced
// failure.Flap: down Duration out of each Every, Count cycles, exact rate
// restoration between cycles.
func TestRunnerFlap(t *testing.T) {
	env := testEnv(t)
	sc := &Scenario{Name: "flap", Events: []Event{
		{At: 6 * sim.Millisecond, Name: "flap",
			Inject:   &Link{Leaf: 0, Spine: 1, Bps: 0},
			Duration: 4 * sim.Millisecond, Every: 10 * sim.Millisecond, Count: 3},
	}}
	r := NewRunner(env, sc)
	eng := env.Net.Eng
	if err := r.Install(eng); err != nil {
		t.Fatal(err)
	}
	// First dip spans 6..10ms.
	eng.Run(7 * sim.Millisecond)
	if env.Net.FabricLinkRate(0, 1) != 0 {
		t.Fatal("link not cut during first dip")
	}
	eng.Run(11 * sim.Millisecond)
	if env.Net.FabricLinkRate(0, 1) != 2e9 {
		t.Fatal("link not restored after first dip")
	}
	// After 3 cycles it must stay up forever.
	eng.Run(sim.Second)
	if env.Net.FabricLinkRate(0, 1) != 2e9 {
		t.Fatal("flapping did not stop after Count cycles")
	}
	if errs := r.Finish(eng.Now()); len(errs) != 0 {
		t.Fatalf("Finish errors: %v", errs)
	}
	if len(r.Log) != 3 {
		t.Fatalf("%d activations, want 3", len(r.Log))
	}
	for i, a := range r.Log {
		wantOn := int64(6e6 + float64(i)*10e6)
		if a.Cycle != i || a.OnsetNs != wantOn || a.ClearNs != wantOn+4e6 {
			t.Fatalf("cycle %d activation = %+v", i, *a)
		}
	}
}

// TestRunnerUnfiredEventErrors: one-shot events past run end must surface
// from Finish.
func TestRunnerUnfiredEventErrors(t *testing.T) {
	env := testEnv(t)
	sc := &Scenario{Name: "late", Events: []Event{
		At(1*sim.Millisecond, "bh", &Blackhole{Spine: 0, SrcLeaf: 0, DstLeaf: 3}),
		ClearAt(2*sim.Second, "bh"), // far past where the run will stop
	}}
	r := NewRunner(env, sc)
	eng := env.Net.Eng
	if err := r.Install(eng); err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * sim.Millisecond)
	errs := r.Finish(eng.Now())
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "never fired") {
		t.Fatalf("Finish = %v, want one never-fired error", errs)
	}
}

func TestScenarioValidation(t *testing.T) {
	env := testEnv(t)
	bh := func() Injector { return &Blackhole{Spine: 0, SrcLeaf: 0, DstLeaf: 3} }
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"negative onset", Scenario{Events: []Event{At(-1, "a", bh())}}, "negative onset"},
		{"empty event", Scenario{Events: []Event{{At: 1}}}, "neither"},
		{"clear unknown", Scenario{Events: []Event{ClearAt(5, "ghost")}}, "matches no inject"},
		{"clear before onset", Scenario{Events: []Event{
			At(10, "a", bh()), ClearAt(5, "a")}}, "before its onset"},
		{"duplicate name", Scenario{Events: []Event{
			At(1, "a", bh()), At(2, "a", &RandomDrop{Spine: 1, Rate: 0.1})}}, "already used"},
		{"repeat without duration", Scenario{Events: []Event{
			{At: 1, Name: "f", Inject: bh(), Every: 10}}}, "needs Duration"},
		{"overlapping cycles", Scenario{Events: []Event{
			{At: 1, Name: "f", Inject: bh(), Every: 10, Duration: 10}}}, "overlap"},
		{"count without every", Scenario{Events: []Event{
			{At: 1, Name: "f", Inject: bh(), Count: 2}}}, "without Every"},
		{"bad injector", Scenario{Events: []Event{
			At(1, "a", &RandomDrop{Spine: 99, Rate: 0.1})}}, "out of range"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate(env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	ok := Scenario{Name: "ok", Events: []Event{
		At(1*sim.Millisecond, "a", bh()),
		ClearAt(5*sim.Millisecond, "a"),
		{At: 2 * sim.Millisecond, Name: "f", Inject: &Link{Leaf: 0, Spine: 0, Bps: 0},
			Every: 10 * sim.Millisecond, Duration: 3 * sim.Millisecond, Count: 2},
	}}
	ok.normalize()
	if err := ok.Validate(env); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}
