package chaos

import (
	"testing"

	"github.com/hermes-repro/hermes/internal/sim"
	"github.com/hermes-repro/hermes/internal/timeseries"
)

// syntheticRecording builds a recorder whose goodput dips from 10 to 2 Gbps
// over [10ms, 30ms), with a Hermes detection transition at 12ms, a reroute
// counter step at 13ms, and a failed->good restoration at 42ms.
func syntheticRecording(t *testing.T) *timeseries.Recorder {
	t.Helper()
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 0, 0)
	now := func() int64 { return int64(eng.Now()) }
	rec.Register("net.goodput_gbps", func() float64 {
		if now() >= 10e6 && now() < 30e6 {
			return 2
		}
		return 10
	})
	rec.Register("hermes.timeout_reroutes_total", func() float64 {
		if now() >= 13e6 {
			return 4
		}
		return 0
	})
	rec.Register("hermes.failure_reroutes_total", func() float64 { return 0 })
	rec.AddTransition(timeseries.Transition{
		AtNs: 12e6, Leaf: 0, Dst: 1, Path: 0, From: "good", To: "failed", Cause: "timeout"})
	rec.AddTransition(timeseries.Transition{
		AtNs: 42e6, Leaf: 0, Dst: 1, Path: 0, From: "failed", To: "good", Cause: "hold-expired"})
	rec.Start()
	eng.Run(60 * sim.Millisecond)
	rec.Stop()
	return rec
}

func TestComputeRecovery(t *testing.T) {
	rec := syntheticRecording(t)
	log := []*Applied{{
		Name: "bh", Kind: "blackhole", Label: "blackhole(spine=0)",
		OnsetNs: 10e6, ClearNs: 30e6, Scope: Scope{Spines: []int{0}},
	}}
	r := Compute(rec, log, Options{Cables: 1, TrafficEndNs: 55e6, Smooth: 1})
	if len(r.Events) != 1 {
		t.Fatalf("%d events, want 1", len(r.Events))
	}
	e := r.Events[0]
	if e.TimeToDetectNs != 2e6 {
		t.Errorf("TimeToDetect = %d, want 2ms", e.TimeToDetectNs)
	}
	if e.TimeToRerouteNs != 3e6 {
		t.Errorf("TimeToReroute = %d, want 3ms", e.TimeToRerouteNs)
	}
	if e.BaselineGbps < 9.9 || e.BaselineGbps > 10.1 {
		t.Errorf("Baseline = %v, want ~10", e.BaselineGbps)
	}
	if e.DipDepth < 0.75 || e.DipDepth > 0.85 {
		t.Errorf("DipDepth = %v, want ~0.8", e.DipDepth)
	}
	// Dip spans 10..30ms of samples; duration ~20ms (sample-aligned).
	if e.DipDurationNs < 18e6 || e.DipDurationNs > 22e6 {
		t.Errorf("DipDuration = %d, want ~20ms", e.DipDurationNs)
	}
	// Deficit 8 Gbps for 20ms -> ~160 Gbps*ms.
	if e.DipIntegralGbpsMs < 140 || e.DipIntegralGbpsMs > 180 {
		t.Errorf("DipIntegral = %v, want ~160", e.DipIntegralGbpsMs)
	}
	if e.ReconvergeNs < 0 || e.ReconvergeNs > 2e6 {
		t.Errorf("Reconverge = %d, want within 2ms of clear", e.ReconvergeNs)
	}
	if e.PathRestoreNs != 12e6 {
		t.Errorf("PathRestore = %d, want 12ms (42ms - 30ms clear)", e.PathRestoreNs)
	}
}

// TestComputeRecoveryOutOfScope: transitions on other spines must not count
// as detection, and schemes with no transitions/reroutes report -1.
func TestComputeRecoveryOutOfScope(t *testing.T) {
	rec := syntheticRecording(t)
	log := []*Applied{{
		Name: "bh", Kind: "blackhole", OnsetNs: 10e6, ClearNs: -1,
		Scope: Scope{Spines: []int{3}}, // transition above is on spine 0
	}}
	r := Compute(rec, log, Options{Cables: 1, TrafficEndNs: 55e6, Smooth: 1})
	e := r.Events[0]
	if e.TimeToDetectNs != -1 {
		t.Errorf("out-of-scope TimeToDetect = %d, want -1", e.TimeToDetectNs)
	}
	if e.ReconvergeNs != -1 || e.PathRestoreNs != -1 {
		t.Errorf("uncleared event Reconverge/PathRestore = %d/%d, want -1/-1",
			e.ReconvergeNs, e.PathRestoreNs)
	}
}

// TestComputeRecoveryNoDip: a scheme that rides through reports a zero dip.
func TestComputeRecoveryNoDip(t *testing.T) {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 0, 0)
	rec.Register("net.goodput_gbps", func() float64 { return 10 })
	rec.Start()
	eng.Run(60 * sim.Millisecond)
	rec.Stop()
	log := []*Applied{{Name: "x", Kind: "random-drop", OnsetNs: 10e6, ClearNs: 30e6}}
	e := Compute(rec, log, Options{TrafficEndNs: 55e6}).Events[0]
	if e.DipDurationNs != 0 || e.DipDepth != 0 || e.DipIntegralGbpsMs != 0 {
		t.Errorf("flat goodput scored dip %d/%v/%v, want zeros",
			e.DipDurationNs, e.DipDepth, e.DipIntegralGbpsMs)
	}
	if e.ReconvergeNs != 0 {
		t.Errorf("Reconverge = %d, want 0 (already above floor at clear)", e.ReconvergeNs)
	}
}

// TestComputeRecoveryOnsetTooEarly: no pre-onset baseline window -> dip
// metrics stay unset rather than comparing against garbage.
func TestComputeRecoveryOnsetTooEarly(t *testing.T) {
	rec := syntheticRecording(t)
	log := []*Applied{{Name: "x", Kind: "cut-link", OnsetNs: 0, ClearNs: -1}}
	e := Compute(rec, log, Options{TrafficEndNs: 55e6}).Events[0]
	if e.BaselineGbps != 0 || e.DipDurationNs != -1 {
		t.Errorf("onset-at-0 baseline/dip = %v/%d, want 0/-1", e.BaselineGbps, e.DipDurationNs)
	}
}

func TestScopeHasPath(t *testing.T) {
	s := Scope{Spines: []int{1}}
	if !s.HasPath(0, 2, 2, 2) { // path 2, 2 cables -> spine 1
		t.Error("path on scoped spine not matched")
	}
	if s.HasPath(0, 2, 0, 2) { // path 0 -> spine 0
		t.Error("path on other spine matched")
	}
	if !(Scope{}).HasPath(0, 1, 5, 2) {
		t.Error("empty scope must match everything")
	}
	l := Scope{Leaves: []int{3}}
	if !l.HasPath(3, 1, 0, 1) || !l.HasPath(0, 3, 0, 1) || l.HasPath(0, 1, 0, 1) {
		t.Error("leaf scoping wrong")
	}
	// Both dimensions populated: ALL must match, else a rack-pair blackhole
	// would claim ambient transitions on healthy spines that share a leaf.
	both := Scope{Spines: []int{0}, Leaves: []int{0, 1}}
	if !both.HasPath(0, 1, 0, 1) {
		t.Error("spine+leaf match rejected")
	}
	if both.HasPath(0, 1, 1, 1) {
		t.Error("wrong spine accepted on a leaf match alone")
	}
	if both.HasPath(2, 3, 0, 1) {
		t.Error("wrong leaves accepted on a spine match alone")
	}
}

// TestDetectIgnoresCongestion: transitions into "congested" are load
// sensing, not failure detection — only gray/failed count.
func TestDetectIgnoresCongestion(t *testing.T) {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 0, 0)
	rec.AddTransition(timeseries.Transition{
		AtNs: 11e6, Leaf: 0, Dst: 1, Path: 0, From: "good", To: "congested", Cause: "ack"})
	rec.AddTransition(timeseries.Transition{
		AtNs: 14e6, Leaf: 0, Dst: 1, Path: 0, From: "congested", To: "gray", Cause: "verdict"})
	rec.Start()
	eng.Run(20 * sim.Millisecond)
	rec.Stop()
	log := []*Applied{{Name: "bh", Kind: "blackhole", OnsetNs: 10e6, ClearNs: -1,
		Scope: Scope{Spines: []int{0}}}}
	e := Compute(rec, log, Options{TrafficEndNs: 20e6}).Events[0]
	if e.TimeToDetectNs != 4e6 {
		t.Errorf("TimeToDetect = %d, want 4ms (the gray verdict, not the congested blip)",
			e.TimeToDetectNs)
	}
}

// TestComputeRecoveryEvictedOnset: when the ring has evicted every
// pre-onset sample, reroute attribution and dip metrics must report
// "unknown" (-1/unset) instead of eviction artifacts.
func TestComputeRecoveryEvictedOnset(t *testing.T) {
	eng := sim.NewEngine()
	rec := timeseries.NewRecorder(eng, sim.Millisecond, 8, 0) // keeps last 8 ms only
	now := func() int64 { return int64(eng.Now()) }
	rec.Register("net.goodput_gbps", func() float64 { return 10 })
	rec.Register("hermes.timeout_reroutes_total", func() float64 {
		if now() >= 12e6 {
			return 3
		}
		return 0
	})
	rec.Start()
	eng.Run(60 * sim.Millisecond)
	rec.Stop()
	if ts := rec.Times(); len(ts) == 0 || ts[0] <= 10e6 {
		t.Fatalf("ring retained pre-onset samples (%v); the test premise is wrong", ts)
	}
	log := []*Applied{{Name: "bh", Kind: "blackhole", OnsetNs: 10e6, ClearNs: -1}}
	e := Compute(rec, log, Options{TrafficEndNs: 55e6}).Events[0]
	if e.TimeToRerouteNs != -1 {
		t.Errorf("TimeToReroute = %d with evicted onset, want -1", e.TimeToRerouteNs)
	}
	if e.BaselineGbps != 0 || e.DipDurationNs != -1 {
		t.Errorf("baseline/dip = %v/%d with evicted onset, want 0/-1",
			e.BaselineGbps, e.DipDurationNs)
	}
}
