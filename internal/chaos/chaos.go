package chaos

import (
	"fmt"

	"github.com/hermes-repro/hermes/internal/sim"
)

// Event is one timeline entry of a Scenario: inject a failure at At (and
// optionally auto-clear it Duration later, or repeat it every Every), or
// clear a previously injected one by name.
type Event struct {
	// At is the virtual onset time.
	At sim.Time
	// Name identifies the activation for Clear references and the recovery
	// report. Empty names are auto-filled ("ev0", "ev1", ...) at install.
	Name string
	// Inject is the failure to apply; nil for clear-only events.
	Inject Injector
	// Clear names the inject event to revert; exclusive with Inject.
	Clear string
	// Duration auto-clears the injection this long after each onset
	// (0 = stays until an explicit Clear or run end). Required for
	// repeating events so cycles never overlap.
	Duration sim.Time
	// Every repeats the injection with this period (0 = one-shot). A flap
	// is Every+Duration: down for Duration out of each Every.
	Every sim.Time
	// Count bounds the repetitions when Every > 0 (0 = forever).
	Count int
}

// Scenario is a named failure timeline, deterministic per run seed.
type Scenario struct {
	Name   string
	Events []Event
}

// At builds an inject event.
func At(t sim.Time, name string, inj Injector) Event {
	return Event{At: t, Name: name, Inject: inj}
}

// ClearAt builds a clear event for a named injection.
func ClearAt(t sim.Time, name string) Event {
	return Event{At: t, Clear: name}
}

// normalize fills in auto-names for anonymous inject events.
func (s *Scenario) normalize() {
	for i := range s.Events {
		if s.Events[i].Inject != nil && s.Events[i].Name == "" {
			s.Events[i].Name = fmt.Sprintf("ev%d", i)
		}
	}
}

// Validate checks the timeline shape and every injector's parameters
// against the fabric. It must be called (via Runner.Install) before the
// run starts, so misconfigured scenarios fail fast instead of mid-run.
func (s *Scenario) Validate(env Env) error {
	names := map[string]int{}
	for i, ev := range s.Events {
		where := fmt.Sprintf("chaos: scenario %q event %d", s.Name, i)
		if ev.At < 0 {
			return fmt.Errorf("%s: negative onset %d", where, ev.At)
		}
		if ev.Inject != nil && ev.Clear != "" {
			return fmt.Errorf("%s: both Inject and Clear set", where)
		}
		if ev.Inject == nil && ev.Clear == "" {
			return fmt.Errorf("%s: neither Inject nor Clear set", where)
		}
		if ev.Every < 0 || ev.Duration < 0 || ev.Count < 0 {
			return fmt.Errorf("%s: negative Every/Duration/Count", where)
		}
		if ev.Every == 0 && ev.Count > 0 {
			return fmt.Errorf("%s: Count %d without Every", where, ev.Count)
		}
		if ev.Every > 0 {
			if ev.Inject == nil {
				return fmt.Errorf("%s: repeating clear events are not supported", where)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("%s: repeating event needs Duration (down time per cycle)", where)
			}
			if ev.Duration >= ev.Every {
				return fmt.Errorf("%s: Duration %d >= Every %d would overlap cycles",
					where, ev.Duration, ev.Every)
			}
		}
		if ev.Inject != nil {
			if prev, dup := names[ev.Name]; dup {
				return fmt.Errorf("%s: name %q already used by event %d", where, ev.Name, prev)
			}
			names[ev.Name] = i
			if err := ev.Inject.Validate(env); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
		}
	}
	for i, ev := range s.Events {
		if ev.Clear == "" {
			continue
		}
		j, ok := names[ev.Clear]
		if !ok {
			return fmt.Errorf("chaos: scenario %q event %d: Clear %q matches no inject event",
				s.Name, i, ev.Clear)
		}
		if s.Events[j].At >= ev.At {
			return fmt.Errorf("chaos: scenario %q event %d: clears %q before its onset",
				s.Name, i, ev.Clear)
		}
		if s.Events[j].Every > 0 {
			return fmt.Errorf("chaos: scenario %q event %d: cannot Clear repeating event %q (use Count)",
				s.Name, i, ev.Clear)
		}
	}
	return nil
}
