package transport

import (
	"testing"
	"testing/quick"

	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// Property: under any bounded random loss pattern that eventually stops,
// every flow completes, and the receiver's contiguous byte count equals the
// flow size exactly (no data corruption, duplication-induced overrun, or
// premature completion).
func TestPropertyFlowsCompleteUnderRandomLoss(t *testing.T) {
	f := func(seed int64, lossPct uint8, sizes []uint16) bool {
		loss := float64(lossPct%30) / 100 // 0-29% loss
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		nw, err := net.NewLeafSpine(eng, rng, net.Config{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelay: 1000, FabricDelay: 1000,
		})
		if err != nil {
			return false
		}
		// Random drops on both spines until 50 ms, then a clean network.
		for s := range nw.Spines {
			nw.Spines[s].AddDropFn(func(p *net.Packet) bool {
				return eng.Now() < 50*sim.Millisecond && rng.Float64() < loss
			})
		}
		bal := &fixedPathBalancer{}
		tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
		var flows []*Flow
		for i, sz := range sizes {
			flows = append(flows, tr.StartFlow(i%2, 2+i%2, int64(sz)+1))
		}
		eng.Run(5 * sim.Second)
		for _, fl := range flows {
			if !fl.Done {
				return false
			}
			if fl.AckedBytes() != fl.Size {
				return false
			}
			if fl.FCT() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative ACK progress is monotone and the congestion window
// never drops below one MSS, under arbitrary path flapping by the balancer.
func TestPropertyWindowInvariantsUnderPathFlapping(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		nw, err := net.NewLeafSpine(eng, rng, net.Config{
			Leaves: 2, Spines: 4, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 10e9,
			HostDelay: 1000, FabricDelay: 1000,
		})
		if err != nil {
			return false
		}
		bal := &flappingBalancer{rng: rng}
		opts := DefaultOptions()
		opts.ReorderTimeout = 300 * sim.Microsecond
		tr := New(nw, opts, func(h *net.Host) Balancer { return bal })
		fl := tr.StartFlow(0, 2, 3_000_000)

		prevAck := int64(0)
		ok := true
		var watch func()
		watch = func() {
			if fl.AckedBytes() < prevAck {
				ok = false
			}
			prevAck = fl.AckedBytes()
			if fl.Cwnd() < net.MSS {
				ok = false
			}
			if !fl.Done {
				eng.Schedule(50*sim.Microsecond, watch)
			}
		}
		watch()
		eng.Run(2 * sim.Second)
		return ok && fl.Done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

type flappingBalancer struct {
	BaseBalancer
	rng *sim.RNG
}

func (b *flappingBalancer) Name() string { return "flap" }
func (b *flappingBalancer) SelectPath(f *Flow) int {
	return b.rng.Intn(4) // new random path for every packet
}

// Property: the transport conserves work — total payload delivered to
// receivers never exceeds total payload sent, and completed flows acked
// exactly their size.
func TestPropertyConservation(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(11)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 4,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sentPayload, deliveredPayload int64
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	// Count wire-level payloads with a spine tap.
	for s := range nw.Spines {
		nw.Spines[s].AddDropFn(func(p *net.Packet) bool {
			if p.Kind == net.Data {
				deliveredPayload += int64(p.Payload) // counted at the core
			}
			return false
		})
	}
	var flows []*Flow
	for i := 0; i < 20; i++ {
		fl := tr.StartFlow(i%4, 4+i%4, int64(10_000*(i+1)))
		flows = append(flows, fl)
		sentPayload += fl.Size
	}
	eng.Run(2 * sim.Second)
	for _, fl := range flows {
		if !fl.Done {
			t.Fatal("flow unfinished on clean fabric")
		}
		if fl.AckedBytes() != fl.Size {
			t.Fatalf("acked %d != size %d", fl.AckedBytes(), fl.Size)
		}
	}
	// Core saw at least every unique payload byte once (retransmissions may
	// add more, never less).
	if deliveredPayload < sentPayload {
		t.Fatalf("core carried %d payload bytes < offered %d", deliveredPayload, sentPayload)
	}
}

func TestMPTCPDeliversExactly(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	nw, err := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 4, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	done := 0
	g := tr.StartMPTCP(0, 2, 5_000_000, 4)
	g.OnDone = func(*MPTCPGroup) { done++ }
	eng.Run(sim.Second)
	if !g.Done || done != 1 {
		t.Fatalf("group done=%v callbacks=%d", g.Done, done)
	}
	var acked int64
	for _, sf := range g.Subflows {
		if !sf.Done {
			t.Fatal("subflow unfinished after group completion")
		}
		acked += sf.AckedBytes()
	}
	if acked != g.Size {
		t.Fatalf("subflows acked %d bytes, logical size %d", acked, g.Size)
	}
	if g.FCT() <= 0 {
		t.Fatal("non-positive group FCT")
	}
}

func TestMPTCPSmallFlowSingleSubflow(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(5)
	nw, _ := net.NewLeafSpine(eng, rng, net.Config{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRateBps: 10e9, FabricRateBps: 10e9,
		HostDelay: 1000, FabricDelay: 1000,
	})
	bal := &fixedPathBalancer{}
	tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return bal })
	// A 10 KB flow fits in one chunk: only one subflow should exist.
	g := tr.StartMPTCP(0, 2, 10_000, 8)
	if len(g.Subflows) != 1 {
		t.Fatalf("%d subflows for a sub-chunk flow, want 1", len(g.Subflows))
	}
	eng.Run(sim.Second)
	if !g.Done {
		t.Fatal("small MPTCP flow unfinished")
	}
}

func TestMPTCPFasterThanSingleFlowOnParallelPaths(t *testing.T) {
	// On an otherwise idle 2-path fabric with a 2 Gbps bottleneck per path,
	// 2 subflows on distinct paths should beat a single path flow clearly.
	run := func(k int) sim.Time {
		eng := sim.NewEngine()
		rng := sim.NewRNG(6)
		nw, _ := net.NewLeafSpine(eng, rng, net.Config{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostRateBps: 10e9, FabricRateBps: 2e9,
			HostDelay: 1000, FabricDelay: 1000,
		})
		// Distinct fixed paths per subflow: path = flowID % 2.
		tr := New(nw, DefaultOptions(), func(h *net.Host) Balancer { return &modBalancer{} })
		if k == 0 {
			f := tr.StartFlow(0, 2, 20_000_000)
			eng.Run(2 * sim.Second)
			if !f.Done {
				t.Fatal("single flow unfinished")
			}
			return f.FCT()
		}
		g := tr.StartMPTCP(0, 2, 20_000_000, k)
		eng.Run(2 * sim.Second)
		if !g.Done {
			t.Fatal("mptcp unfinished")
		}
		return g.FCT()
	}
	single := run(0)
	multi := run(2)
	if float64(multi) > 0.7*float64(single) {
		t.Fatalf("MPTCP %v not clearly faster than single-path %v", multi, single)
	}
}

type modBalancer struct{ BaseBalancer }

func (modBalancer) Name() string           { return "mod" }
func (modBalancer) SelectPath(f *Flow) int { return int(f.ID % 2) }

func TestTimelySingleFlowReachesHighRate(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = Timely
	eng, _, tr, _ := testFabric(t, 2, opts)
	f := tr.StartFlow(0, 2, 50_000_000)
	eng.Run(2 * sim.Second)
	if !f.Done {
		t.Fatal("TIMELY flow did not finish")
	}
	gbps := float64(f.Size) * 8 / float64(f.FCT())
	if gbps < 4 {
		t.Fatalf("TIMELY goodput %.2f Gbps, want at least 4 on an idle 10G path", gbps)
	}
}

func TestTimelyBacksOffUnderContention(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = Timely
	eng, _, tr, _ := testFabric(t, 1, opts)
	// Two flows share one 10G spine path; both should finish and neither
	// should be starved (rate floor holds).
	f1 := tr.StartFlow(0, 2, 20_000_000)
	f2 := tr.StartFlow(1, 3, 20_000_000)
	eng.Run(3 * sim.Second)
	if !f1.Done || !f2.Done {
		t.Fatal("contending TIMELY flows did not finish")
	}
	a, b := float64(f1.FCT()), float64(f2.FCT())
	if a/b > 3 || b/a > 3 {
		t.Fatalf("grossly unfair TIMELY sharing: %v vs %v", f1.FCT(), f2.FCT())
	}
}
