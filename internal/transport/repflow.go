package transport

import "github.com/hermes-repro/hermes/internal/sim"

// RepFlow replicates latency-sensitive short flows: the sender opens two
// identical copies of the flow, each an ordinary DCTCP/Reno flow with its own
// flow id — under ECMP the copies hash independently, so with high
// probability they traverse diverse paths — and the first copy to deliver its
// last byte wins. The loser is cancelled immediately: its retransmission
// timer is disarmed and its sender state dropped, so a replica stranded on a
// failed or congested path can neither inflate the logical flow's completion
// time nor register spurious timeouts. Packets of the cancelled copy still in
// flight drain normally (delivered or dropped by the fabric), keeping the
// packet-conservation ledger exact; late ACKs for a cancelled flow find no
// sender state and are ignored.
//
// Flows at or above the replication threshold are not replicated — RepFlow's
// bandwidth overhead is confined to the short flows, which carry a tiny
// fraction of the bytes.

// DefaultRepFlowThreshold is the replicate-below size bound: flows smaller
// than 100 KB are cloned, matching the RepFlow paper's definition of "short".
const DefaultRepFlowThreshold = 100_000

// RepFlowGroup is one replicated logical flow: two hidden transport flows
// carrying the same payload, first completion wins.
type RepFlowGroup struct {
	Size     int64
	Src, Dst int
	StartAt  sim.Time
	EndAt    sim.Time
	Done     bool

	// Primary and Replica are the two copies; Winner points at whichever
	// delivered first (valid once Done).
	Primary, Replica *Flow
	Winner           *Flow

	// OnDone fires when the first copy completes, after the loser has been
	// cancelled.
	OnDone func(*RepFlowGroup)
}

// FCT returns the logical flow's completion time, valid once Done.
func (g *RepFlowGroup) FCT() sim.Time { return g.EndAt - g.StartAt }

// StartRepFlow opens a replicated flow of size bytes from src to dst. Both
// copies are hidden from Transport.OnFlowDone; completion is reported via the
// group's OnDone exactly once.
func (tr *Transport) StartRepFlow(src, dst int, size int64) *RepFlowGroup {
	g := &RepFlowGroup{Size: size, Src: src, Dst: dst, StartAt: tr.Eng.Now()}
	g.Primary = tr.startCopy(g, src, dst, size)
	g.Replica = tr.startCopy(g, src, dst, size)
	tr.RepFlowsStarted++
	return g
}

func (tr *Transport) startCopy(g *RepFlowGroup, src, dst int, size int64) *Flow {
	f := tr.StartFlow(src, dst, size)
	f.Hidden = true
	f.rep = g
	return f
}

// childDone races the two copies: the first caller wins the group and the
// loser is cancelled on the spot.
func (g *RepFlowGroup) childDone(f *Flow, now sim.Time) {
	if g.Done {
		return
	}
	g.Done = true
	g.EndAt = now
	g.Winner = f
	tr := f.ep.tr
	loser := g.Primary
	if f == g.Primary {
		loser = g.Replica
	} else {
		tr.ReplicaWins++
	}
	tr.CancelFlow(loser)
	if g.OnDone != nil {
		g.OnDone(g)
	}
}

// CancelFlow aborts an unfinished flow: it is marked Done+Cancelled, its RTO
// timer is disarmed (a cancelled replica must never count as a timeout or
// loss), and its sender state is dropped from the endpoint and the active
// registry. The flow does NOT report through Transport.OnFlowDone or the
// balancer-visible completion time; only Balancer.OnFlowDone runs, so
// per-flow balancer state is still released. In-flight packets drain through
// the fabric normally and conservation accounting is unaffected. No-op on
// nil, finished or already-cancelled flows.
func (tr *Transport) CancelFlow(f *Flow) {
	if f == nil || f.Done {
		return
	}
	f.Done = true
	f.Cancelled = true
	f.EndAt = tr.Eng.Now()
	if f.rtoTimer != nil {
		f.rtoTimer.Cancel()
		f.rtoTimer = nil
	}
	delete(f.ep.flows, f.ID)
	delete(tr.active, f.ID)
	tr.FlowsCancelled++
	tr.RedundantBytes += uint64(f.hiWater)
	f.ep.bal.OnFlowDone(f)
}
