package transport

import "github.com/hermes-repro/hermes/internal/telemetry"

// AttachTelemetry registers the transport's instruments on reg. The hot-path
// hooks (retransmits, RTOs, flow lifecycle, window and ECN-fraction samples)
// hold the returned instrument pointers directly; when this method is never
// called they stay nil and each hook costs one nil check.
func (tr *Transport) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	tr.telemFlowsStarted = reg.Counter("transport.flows_started")
	tr.telemFlowsDone = reg.Counter("transport.flows_finished")
	tr.telemRetx = reg.Counter("transport.retransmits_total")
	tr.telemRTO = reg.Counter("transport.timeouts_total")
	// Window samples in bytes, taken at every RTO and at flow completion.
	tr.telemCwnd = reg.Histogram("transport.cwnd_bytes",
		[]float64{1_500, 15_000, 75_000, 150_000, 750_000, 1_500_000})
	// Per-flow DCTCP alpha (smoothed ECN-marked fraction) at completion.
	tr.telemAlpha = reg.Histogram("transport.flow_ecn_fraction",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1})
	reg.GaugeFunc("transport.flows_active", func() float64 { return float64(len(tr.active)) })
}
