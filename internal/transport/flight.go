package transport

import (
	"sort"

	"github.com/hermes-repro/hermes/internal/timeseries"
)

// fctWindow bounds the recent-FCT ring behind the p99 probe: large enough
// that a sample interval's completions never dominate it, small enough that
// the probe's sort stays cheap.
const fctWindow = 512

// AttachFlightRecorder registers the transport's time-series surface on the
// flight recorder: active-flow count, total in-flight (sent-unacked) bytes,
// the cumulative loss counters, and a windowed p99 flow-completion time.
// All pull-style probes over state the transport already maintains; the
// per-packet path is untouched and flow completion pays one append into a
// fixed ring.
func (tr *Transport) AttachFlightRecorder(rec *timeseries.Recorder) {
	if rec == nil {
		return
	}
	rec.Register("transport.flows_active", func() float64 {
		return float64(len(tr.active))
	})
	rec.Register("transport.flows_finished", func() float64 {
		return float64(tr.finished)
	})
	rec.Register("transport.inflight_bytes", func() float64 {
		var t int64
		for _, f := range tr.active {
			t += f.sndNxt - f.cumAck
		}
		return float64(t)
	})
	rec.Register("transport.retransmits_total", func() float64 {
		return float64(tr.Retransmits)
	})
	rec.Register("transport.timeouts_total", func() float64 {
		return float64(tr.Timeouts)
	})
	tr.fctRing = make([]float64, fctWindow)
	scratch := make([]float64, 0, fctWindow)
	rec.Register("transport.fct_p99_ms", func() float64 {
		n := tr.fctRingLen
		if n == 0 {
			return 0
		}
		scratch = append(scratch[:0], tr.fctRing[:n]...)
		sort.Float64s(scratch)
		i := (99*n + 99) / 100 // ceil(0.99 n)
		if i > n {
			i = n
		}
		return scratch[i-1]
	})
}

// recordFCT appends one completed flow's FCT (milliseconds) to the ring.
func (tr *Transport) recordFCT(ms float64) {
	tr.fctRing[tr.fctRingPos] = ms
	tr.fctRingPos++
	if tr.fctRingPos == len(tr.fctRing) {
		tr.fctRingPos = 0
	}
	if tr.fctRingLen < len(tr.fctRing) {
		tr.fctRingLen++
	}
}
