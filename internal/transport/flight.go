package transport

import "github.com/hermes-repro/hermes/internal/timeseries"

// AttachFlightRecorder registers the transport's time-series surface on the
// flight recorder: active-flow count, total in-flight (sent-unacked) bytes,
// and the cumulative loss counters. All pull-style probes over state the
// transport already maintains, so the per-packet path is untouched.
func (tr *Transport) AttachFlightRecorder(rec *timeseries.Recorder) {
	if rec == nil {
		return
	}
	rec.Register("transport.flows_active", func() float64 {
		return float64(len(tr.active))
	})
	rec.Register("transport.flows_finished", func() float64 {
		return float64(tr.finished)
	})
	rec.Register("transport.inflight_bytes", func() float64 {
		var t int64
		for _, f := range tr.active {
			t += f.sndNxt - f.cumAck
		}
		return float64(t)
	})
	rec.Register("transport.retransmits_total", func() float64 {
		return float64(tr.Retransmits)
	})
	rec.Register("transport.timeouts_total", func() float64 {
		return float64(tr.Timeouts)
	})
}
