package transport

import (
	"github.com/hermes-repro/hermes/internal/net"
	"github.com/hermes-repro/hermes/internal/sim"
)

// rcvFlow is the receiver-side state of one flow. Segments are MSS-aligned,
// so a seq->end map suffices to track out-of-order data.
type rcvFlow struct {
	cumRecv int64
	segs    map[int64]int64 // out-of-order segment start -> end

	// Reordering-buffer state (enabled via Options.ReorderTimeout): while a
	// hole exists, duplicate ACKs are suppressed until the hole persists
	// past the timeout; then the buffer "releases" and dupACKs flow so that
	// genuine losses still trigger fast retransmit.
	reorderTimer *sim.Event
	reorderOpen  bool
}

func (ep *Endpoint) onData(pkt *net.Packet) {
	r := ep.rcv[pkt.Flow]
	if r == nil {
		r = &rcvFlow{segs: map[int64]int64{}}
		ep.rcv[pkt.Flow] = r
	}
	end := pkt.Seq + int64(pkt.Payload)
	progressed := false
	if end > r.cumRecv {
		if pkt.Seq <= r.cumRecv {
			r.cumRecv = end
			progressed = true
		} else if cur, ok := r.segs[pkt.Seq]; !ok || end > cur {
			r.segs[pkt.Seq] = end
		}
		// Coalesce any buffered segments now contiguous.
		for {
			advanced := false
			for s, e := range r.segs {
				if s <= r.cumRecv {
					if e > r.cumRecv {
						r.cumRecv = e
						progressed = true
					}
					delete(r.segs, s)
					advanced = true
				}
			}
			if !advanced {
				break
			}
		}
	} else {
		// Fully duplicate data (e.g. go-back-N after an RTO): re-ACK so the
		// sender's cumulative state advances.
		progressed = true
	}

	timeout := ep.tr.Opts.ReorderTimeout
	if timeout <= 0 {
		ep.sendAck(pkt, r)
		return
	}

	// Reordering buffer behaviour.
	if progressed {
		if len(r.segs) == 0 {
			r.reorderOpen = false
			if r.reorderTimer != nil {
				r.reorderTimer.Cancel()
				r.reorderTimer = nil
			}
		}
		ep.sendAck(pkt, r)
		return
	}
	if r.reorderOpen {
		// Hole outlived the timeout: behave like plain TCP (dupACK).
		ep.sendAck(pkt, r)
		return
	}
	if r.reorderTimer == nil {
		buffered := len(r.segs)
		// Copy the triggering packet: the fabric recycles *pkt into the
		// packet pool as soon as this handler returns, so the closure must
		// not retain the live pointer past delivery.
		trigger := *pkt
		r.reorderTimer = ep.tr.Eng.ScheduleKind(timeout, sim.KindTimer, func() {
			r.reorderTimer = nil
			if len(r.segs) == 0 {
				return
			}
			r.reorderOpen = true
			// Release the buffer: emit the dupACKs plain TCP would have
			// produced for the segments that arrived past the hole.
			n := len(r.segs)
			if buffered > n {
				n = buffered
			}
			if n > 8 {
				n = 8
			}
			for i := 0; i < n; i++ {
				ep.sendAck(&trigger, r)
			}
		})
	}
}

// sendAck emits a cumulative ACK echoing the triggering data packet's
// timestamp, path and CE bit. The ACK returns over the same path at high
// priority, as in the paper's switch configuration.
func (ep *Endpoint) sendAck(data *net.Packet, r *rcvFlow) {
	ack := ep.tr.Net.AllocPacket()
	*ack = net.Packet{
		Kind:      net.Ack,
		Flow:      data.Flow,
		Src:       data.Dst,
		Dst:       data.Src,
		Wire:      net.AckBytes,
		Path:      data.Path,
		AckSeq:    r.cumRecv,
		EchoSent:  data.SentAt,
		EchoPath:  data.Path,
		EchoCE:    data.CE,
		EchoQueue: data.QueueNs,
		Retx:      data.Retx,
		SentAt:    ep.tr.Eng.Now(),
	}
	ep.host.Send(ack)
}
